// A database implementor extends the rewriter (§4, §7): new ADT functions,
// a new method coded in C++, new rules in the rule language, and a custom
// block/sequence program — without touching the engine.
//
//   $ ./build/examples/custom_optimizer
#include <iostream>

#include "catalog/catalog.h"
#include "lera/printer.h"
#include "rewrite/engine.h"
#include "rules/merging.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"

int main() {
  using eds::term::Term;
  using eds::term::TermList;
  using eds::term::TermRef;
  using eds::value::Value;

  eds::catalog::Catalog catalog;
  {
    eds::catalog::TableDef sensors;
    sensors.name = "SENSORS";
    sensors.columns = {{"Id", catalog.types().int_type()},
                       {"Celsius", catalog.types().real_type()}};
    (void)catalog.CreateTable(std::move(sensors));
  }

  // 1. A new ADT function, registered in the catalog's function library.
  //    It participates in constant folding automatically.
  (void)catalog.functions().Register(
      "FAHRENHEIT",
      [](const std::vector<Value>& args) -> eds::Result<Value> {
        if (args.size() != 1 || !args[0].is_numeric()) {
          return eds::Status::TypeError("FAHRENHEIT expects a number");
        }
        return Value::Real(args[0].AsReal() * 9.0 / 5.0 + 32.0);
      });

  // 2. A new rule method in C++ (the paper's "external functions ...
  //    defined in the ADT function library"): rewrites FAHRENHEIT(x) ? k
  //    into x ? (k - 32) * 5/9 so the conversion never runs per row.
  eds::rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  (void)registry.RegisterMethod(
      "INVERT_FAHRENHEIT",
      [](const TermList& args, eds::term::Bindings* env,
         const eds::rewrite::RewriteContext& ctx) -> eds::Status {
        if (args.size() != 2 || !args[1]->is_variable()) {
          return eds::Status::InvalidArgument(
              "INVERT_FAHRENHEIT expects (k, out)");
        }
        auto k = eds::term::ApplySubstitution(args[0], *env);
        EDS_RETURN_IF_ERROR(k.status());
        auto v = eds::rewrite::TryEvalToValue(*k, ctx);
        if (!v.has_value() || !v->is_numeric()) {
          return eds::Status::InvalidArgument("threshold not constant");
        }
        env->SetVar(args[1]->var_name(),
                    Term::Real((v->AsReal() - 32.0) * 5.0 / 9.0));
        return eds::Status::OK();
      });

  // 3. New rules in the rule language, organized in blocks (§4.2). The
  //    domain rule runs before the stock merging rules.
  std::string source = std::string(R"(
    fahrenheit_gt :
      FAHRENHEIT(x) > k / ISA(k, CONSTANT)
      --> x > c / INVERT_FAHRENHEIT(k, c) ;
    fahrenheit_lt :
      FAHRENHEIT(x) < k / ISA(k, CONSTANT)
      --> x < c / INVERT_FAHRENHEIT(k, c) ;
  )") + eds::rules::MergingRuleSource() +
                       R"(
    block(domain, {fahrenheit_gt, fahrenheit_lt}, inf) ;
    block(merge, {search_merge, union_merge, union_collapse}, inf) ;
    seq({domain, merge}, 1) ;
  )";
  auto program = eds::ruledsl::CompileRuleSource(source, registry);
  if (!program.ok()) {
    std::cerr << "rule compilation failed: " << program.status() << "\n";
    return 1;
  }
  eds::rewrite::Engine engine(&catalog, &registry, std::move(*program));

  // 4. Rewrite a plan that filters on the converted value.
  auto plan = eds::term::ParseTerm(
      "SEARCH(LIST(SEARCH(LIST(RELATION('SENSORS')), ($1.1 > 0), "
      "LIST($1.1, $1.2))), (FAHRENHEIT($1.2) > 86.0), LIST($1.1))");
  if (!plan.ok()) {
    std::cerr << "parse failed: " << plan.status() << "\n";
    return 1;
  }
  eds::rewrite::RewriteOptions options;
  options.collect_trace = true;
  auto out = engine.Rewrite(*plan, options);
  if (!out.ok()) {
    std::cerr << "rewrite failed: " << out.status() << "\n";
    return 1;
  }

  std::cout << "before:\n"
            << eds::lera::FormatPlan(*plan) << "\nafter:\n"
            << eds::lera::FormatPlan(out->term) << "\ntrace:\n";
  for (const auto& entry : out->trace) {
    std::cout << "  [" << entry.block << "/" << entry.rule << "] "
              << entry.before->ToString() << "\n      --> "
              << entry.after->ToString() << "\n";
  }
  return 0;
}
