// The paper's running example end to end: the Fig. 2 film schema with
// objects and collections, the Fig. 3 query, the Fig. 4 nested view with
// an ALL quantifier, and the §6.1 integrity-constraint inconsistency.
//
//   $ ./build/examples/film_database
#include <iostream>

#include "exec/session.h"
#include "lera/printer.h"

namespace {

void PrintResult(const char* label, const eds::exec::QueryResult& result) {
  std::cout << "== " << label << " ==\n";
  for (const auto& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << (i > 0 ? " | " : "  ") << row[i];
    }
    std::cout << "\n";
  }
  std::cout << "  (" << result.rows.size() << " rows, "
            << result.rewrite_stats.applications
            << " rewrite rule applications)\n\n";
}

}  // namespace

int main() {
  using eds::value::Value;
  eds::exec::Session session;

  // Fig. 2's type and relation definitions (Title simplified to CHAR).
  eds::Status status = session.ExecuteScript(R"(
    TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction',
                                  'Western');
    TYPE Point TUPLE (ABS : REAL, ORD : REAL);
    TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR,
                              Caricature : LIST OF Point);
    TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
      FUNCTION IncreaseSalary(This Actor, Val NUMERIC);
    TYPE Text CHAR;
    TYPE SetCategory SET OF Category;
    TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory);
    TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor);
  )");
  if (!status.ok()) {
    std::cerr << "schema failed: " << status << "\n";
    return 1;
  }

  // Objects with identity live on the heap; rows reference them.
  auto quinn = session.NewObject("Actor", {{"Name", Value::String("Quinn")},
                                           {"Salary", Value::Int(12000)}});
  auto bob = session.NewObject("Actor", {{"Name", Value::String("Bob")},
                                         {"Salary", Value::Int(9000)}});
  auto eva = session.NewObject("Actor", {{"Name", Value::String("Eva")},
                                         {"Salary", Value::Int(15000)}});
  if (!quinn.ok() || !bob.ok() || !eva.ok()) {
    std::cerr << "object creation failed\n";
    return 1;
  }
  (void)session.ExecuteScript(R"(
    INSERT INTO FILM VALUES
      (1, 'Zorba', MakeSet('Adventure')),
      (2, 'Comedy Night', MakeSet('Comedy')),
      (3, 'Space Saga', MakeSet('Science Fiction', 'Adventure'));
  )");
  (void)session.InsertRow("APPEARS_IN", {Value::Int(1), *quinn});
  (void)session.InsertRow("APPEARS_IN", {Value::Int(1), *eva});
  (void)session.InsertRow("APPEARS_IN", {Value::Int(2), *bob});
  (void)session.InsertRow("APPEARS_IN", {Value::Int(3), *eva});

  // Fig. 3: attribute-as-function over object references.
  auto fig3 = session.Query(R"(
    SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
      AND MEMBER('Adventure', Categories))");
  if (!fig3.ok()) {
    std::cerr << "fig3 failed: " << fig3.status() << "\n";
    return 1;
  }
  PrintResult("Fig. 3: Quinn's adventure films", *fig3);
  std::cout << "optimized plan:\n"
            << eds::lera::FormatPlan(fig3->optimized_plan) << "\n";

  // Fig. 4: the nested view and the ALL quantifier.
  status = session.ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )");
  if (!status.ok()) {
    std::cerr << "view failed: " << status << "\n";
    return 1;
  }
  auto fig4 = session.Query(
      "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
      "AND ALL(Salary(Actors) > 10000)");
  if (!fig4.ok()) {
    std::cerr << "fig4 failed: " << fig4.status() << "\n";
    return 1;
  }
  PrintResult("Fig. 4: adventure films where every actor earns > 10000",
              *fig4);

  // §6.1: declare the Category domain constraint; an impossible membership
  // folds the whole qualification to FALSE before touching any data.
  status = session.AddConstraint("category_domain", R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )");
  if (!status.ok()) {
    std::cerr << "constraint failed: " << status << "\n";
    return 1;
  }
  auto cartoon = session.Query(
      "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
  if (!cartoon.ok()) {
    std::cerr << "cartoon query failed: " << cartoon.status() << "\n";
    return 1;
  }
  PrintResult("§6.1: MEMBER('Cartoon', Categories) is inconsistent",
              *cartoon);
  std::cout << "plan after semantic rewriting (note the FALSE "
               "qualification):\n"
            << eds::lera::FormatPlan(cartoon->optimized_plan)
            << "rows scanned during execution: "
            << cartoon->exec_stats.rows_scanned << "\n";
  return 0;
}
