// An interactive ESQL shell over the library: type DDL / INSERT / SELECT
// statements terminated by ';', inspect plans and rewrite traces.
//
//   $ ./build/examples/eds_shell            # interactive
//   $ ./build/examples/eds_shell script.sql # run a script, then interact
//   $ ./build/examples/eds_shell --trace-out=t.json script.sql
//       # record phase/rule/operator spans; open t.json in Perfetto
//
// Meta commands (no ';'):
//   \q                quit
//   \tables           list tables and views
//   \schema NAME      show a relation's columns
//   \plan SELECT ...  show raw + optimized plans without executing
//   \trace SELECT ... show the rewrite trace (rule by rule)
//   \stats SELECT ... show full engine statistics for a query's rewrite
//   \metrics SELECT ...  run the query, dump the unified metrics registry
//   \profile SELECT ...  run the query, rank rules by cumulative self time
//   \gov              show governor limits, trip tallies, and failpoints
//   \rules            show the generated optimizer's blocks
//   \norewrite        toggle the rewriter on/off for subsequent queries
//   \lint             lint the rule libraries + declared constraints
//   \verify           bounded soundness check of the same rule sets
//   \constraint NAME <rule text> ;   declare an integrity constraint
//
// With --threads=N the shell routes SELECTs through the srv::QueryService
// (N workers, plan cache, governor-aware admission); more commands
// come alive:
//   \cache [clear]    show (or drop) both cache layers (L0 exact-text +
//                     rewritten-plan)
//   \serve N SELECT ... submit N copies concurrently and report throughput
//   \top [N]          flight recorder: the last N served queries
//   \slow [N]         the N slowest queries in the recorder window
//   \metrics --prom   service metrics in Prometheus text format
// and --trace-out merges every worker's spans into one Chrome trace.
// Telemetry knobs: --slow-ms=N marks queries slower than N ms as slow
// (trace attached in \slow), --slow-log=FILE appends them as JSONL, and
// --telemetry-out=FILE writes a Prometheus snapshot every second.
//
// With --listen=PORT the shell becomes a network server: after running
// the script (schema/data setup), it serves the wire protocol
// (docs/network.md) until SIGINT/SIGTERM, then drains in-flight queries,
// takes the final persistence snapshot, and exits. Talk to it with
// tools/eds_client.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "exec/session.h"
#include "gov/failpoint.h"
#include "gov/governor.h"
#include "lera/printer.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "srv/service.h"
#include "verify/verify.h"

namespace {

// SIGINT/SIGTERM request a graceful stop of the --listen serve loop: the
// handler only flips a flag; the main thread drains and shuts down.
std::atomic<bool> g_shutdown_requested{false};

void RequestShutdown(int) { g_shutdown_requested.store(true); }

class Shell {
 public:
  // `sink` (may be null) records phase/rule/operator spans for every
  // statement; main() writes it out as Chrome trace JSON on exit.
  explicit Shell(eds::obs::TraceSink* sink) {
    session_.set_trace_sink(sink);
  }

  // Governor budgets applied to every subsequent query (--deadline-ms,
  // --max-nodes, --max-rows).
  void set_limits(const eds::gov::GovernorLimits& limits) {
    limits_ = limits;
  }

  // --threads=N: serve SELECTs through a QueryService worker pool with the
  // plan cache, instead of directly on the session. `collect_traces` gives
  // each worker its own sink for the merged trace written on exit.
  void set_threads(size_t threads, bool collect_traces) {
    threads_ = threads;
    collect_traces_ = collect_traces;
  }

  // Telemetry knobs applied when the service starts (--slow-ms,
  // --slow-log, --telemetry-out).
  void set_telemetry(uint64_t slow_ms, std::string slow_log_path,
                     std::string telemetry_out) {
    slow_ms_ = slow_ms;
    slow_log_path_ = std::move(slow_log_path);
    telemetry_out_ = std::move(telemetry_out);
  }

  // --persist=FILE: warm the plan caches from FILE at service start and
  // snapshot them back on shutdown (plus every interval_ms while serving,
  // when nonzero). See docs/persistence.md.
  void set_persist(std::string path, uint64_t interval_ms) {
    persist_path_ = std::move(path);
    persist_interval_ms_ = interval_ms;
  }

  // Stops the worker pool (if any); safe to call repeatedly. Must run
  // before worker_sinks() is read for the exit trace.
  void Shutdown() {
    if (service_ != nullptr) service_->Stop();
  }

  std::vector<const eds::obs::TraceSink*> worker_sinks() const {
    if (service_ == nullptr) return {};
    return service_->worker_sinks();
  }

  // --listen=PORT: serve the wire protocol until SIGINT/SIGTERM. On
  // signal: stop accepting, drain in-flight queries (their RESULT frames
  // are still delivered), close connections; the caller's Shutdown() then
  // stops the service, which takes the final persistence snapshot and the
  // last telemetry export.
  int ServeNetwork(const std::string& host, uint16_t port) {
    eds::srv::QueryService* service = EnsureService();
    if (service == nullptr) {
      std::cerr << "cannot serve: query service failed to start\n";
      return 1;
    }
    eds::net::ServerOptions options;
    options.host = host;
    options.port = port;
    eds::net::Server server(service, options);
    eds::Status status = server.Start();
    if (!status.ok()) {
      std::cerr << "cannot listen on " << host << ":" << port << ": "
                << status << "\n";
      return 1;
    }
    std::signal(SIGINT, RequestShutdown);
    std::signal(SIGTERM, RequestShutdown);
    std::cout << "listening on " << host << ":" << server.port()
              << " — connect with eds_client --port=" << server.port()
              << " (Ctrl-C drains and exits)\n";
    while (!g_shutdown_requested.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::cout << "\nshutdown requested: draining " << server.pending_queries()
              << " in-flight quer"
              << (server.pending_queries() == 1 ? "y" : "ies") << "\n";
    server.Shutdown(/*drain=*/true);
    const eds::net::ServerStats stats = server.GetStats();
    std::cout << "served " << stats.queries << " quer"
              << (stats.queries == 1 ? "y" : "ies") << " over "
              << stats.accepted << " connection(s)\n";
    return 0;
  }

  // Returns false on \q.
  bool HandleLine(const std::string& line) {
    if (eds::Trim(line).empty()) return true;
    if (line[0] == '\\') return HandleMeta(std::string(eds::Trim(line)));
    buffer_ += line;
    buffer_ += '\n';
    // Execute once the buffer holds a ';' terminated statement.
    if (line.find(';') != std::string::npos) {
      RunStatement(buffer_);
      buffer_.clear();
    }
    return true;
  }

  bool pending() const { return !buffer_.empty(); }

 private:
  bool HandleMeta(const std::string& line) {
    if (line == "\\q" || line == "\\quit") return false;
    if (line == "\\tables") {
      for (const auto& name : session_.catalog().TableNames()) {
        std::cout << "table " << name << "\n";
      }
      for (const auto& name : session_.catalog().ViewNames()) {
        std::cout << "view  " << name << "\n";
      }
      return true;
    }
    if (eds::StartsWith(line, "\\schema ")) {
      std::string name(eds::Trim(line.substr(8)));
      auto schema = session_.catalog().RelationSchema(name);
      if (!schema.ok()) {
        std::cout << schema.status() << "\n";
        return true;
      }
      for (const auto& field : *schema) {
        std::cout << "  " << field.name << " : " << field.type->ToString()
                  << "\n";
      }
      return true;
    }
    if (eds::StartsWith(line, "\\plan ")) {
      ShowPlan(line.substr(6), /*trace=*/false);
      return true;
    }
    if (eds::StartsWith(line, "\\trace ")) {
      ShowPlan(line.substr(7), /*trace=*/true);
      return true;
    }
    if (eds::StartsWith(line, "\\stats ")) {
      ShowStats(line.substr(7));
      return true;
    }
    if (line == "\\metrics --prom") {
      ShowPrometheus();
      return true;
    }
    if (eds::StartsWith(line, "\\metrics ")) {
      ShowMetrics(line.substr(9));
      return true;
    }
    if (line == "\\top" || eds::StartsWith(line, "\\top ")) {
      ShowRecorder(line.size() > 4 ? line.substr(5) : "", /*slowest=*/false);
      return true;
    }
    if (line == "\\slow" || eds::StartsWith(line, "\\slow ")) {
      ShowRecorder(line.size() > 5 ? line.substr(6) : "", /*slowest=*/true);
      return true;
    }
    if (eds::StartsWith(line, "\\profile ")) {
      ShowProfile(line.substr(9));
      return true;
    }
    if (line == "\\rules") {
      auto optimizer = session_.optimizer();
      if (!optimizer.ok()) {
        std::cout << optimizer.status() << "\n";
        return true;
      }
      for (const auto& block : (*optimizer)->engine().program().blocks) {
        std::cout << "block " << block.name << " (limit "
                  << (block.limit < 0 ? std::string("inf")
                                      : std::to_string(block.limit))
                  << ")\n";
        for (const auto& rule : block.rules) {
          std::cout << "  " << rule.name << "\n";
        }
      }
      return true;
    }
    if (line == "\\gov") {
      ShowGov();
      return true;
    }
    if (line == "\\cache" || line == "\\cache clear") {
      ShowCache(/*clear=*/line != "\\cache");
      return true;
    }
    if (eds::StartsWith(line, "\\serve ")) {
      ServeMany(line.substr(7));
      return true;
    }
    if (line == "\\lint") {
      RunLint();
      return true;
    }
    if (line == "\\verify") {
      RunVerify();
      return true;
    }
    if (line == "\\norewrite") {
      rewrite_ = !rewrite_;
      std::cout << "rewriting " << (rewrite_ ? "on" : "off") << "\n";
      return true;
    }
    if (eds::StartsWith(line, "\\constraint ")) {
      // \constraint name rule-text... ;
      std::string rest(eds::Trim(line.substr(12)));
      size_t space = rest.find(' ');
      if (space == std::string::npos) {
        std::cout << "usage: \\constraint NAME <rule> ;\n";
        return true;
      }
      std::string name = rest.substr(0, space);
      eds::Status status =
          session_.AddConstraint(name, rest.substr(space + 1));
      std::cout << (status.ok() ? "constraint added" : status.ToString())
                << "\n";
      return true;
    }
    std::cout << "unknown command: " << line << "\n";
    return true;
  }

  // Governor configuration, cumulative trip tallies, and armed failpoints.
  void ShowGov() {
    auto limit = [](uint64_t v) {
      return v == 0 ? std::string("unlimited") : std::to_string(v);
    };
    std::cout << "deadline_ms:  " << limit(limits_.deadline_ms) << "\n"
              << "max_nodes:    " << limit(limits_.max_term_nodes) << "\n"
              << "max_rows:     " << limit(limits_.max_rows) << "\n";
    eds::gov::TripCounters trips = eds::gov::CumulativeTripCounters();
    std::cout << "trips: deadline " << trips.deadline_trips
              << ", node_ceiling " << trips.node_ceiling_trips
              << ", row_ceiling " << trips.row_ceiling_trips
              << ", cancelled " << trips.cancel_trips << "\n";
    std::cout << "failpoints: " << eds::gov::FailPoints::Global().Describe()
              << "\n";
  }

  // Lints every built-in rule library plus the constraint rules generated
  // from this session's catalog, with catalog-aware ISA checks.
  void RunLint() {
    eds::rewrite::BuiltinRegistry builtins;
    builtins.InstallStandard();
    eds::magic::InstallMagicBuiltins(&builtins);
    eds::rules::InstallSemanticBuiltins(&builtins);
    eds::lint::LintOptions opts;
    opts.catalog = &session_.catalog();
    const std::pair<const char*, std::string> sources[] = {
        {"merging", eds::rules::MergingRuleSource()},
        {"permutation", eds::rules::PermutationRuleSource()},
        {"fixpoint", eds::rules::FixpointRuleSource()},
        {"simplify", eds::rules::SimplifyRuleSource()},
        {"implicit_knowledge", eds::rules::ImplicitKnowledgeRuleSource()},
        {"semantic_methods", eds::rules::SemanticMethodRuleSource()},
        {"extensions", eds::rules::ExtensionRuleSource()},
        {"constraints", eds::rules::ConstraintRuleSource(session_.catalog())},
    };
    size_t errors = 0, warnings = 0;
    for (const auto& [name, text] : sources) {
      eds::lint::LintReport report =
          eds::lint::LintSource(text, builtins, opts);
      errors += report.error_count();
      warnings += report.warning_count();
      for (const eds::lint::Diagnostic& d : report.diagnostics()) {
        std::cout << name << ": " << d.ToString() << "\n";
      }
    }
    std::cout << "lint: " << errors << " error(s), " << warnings
              << " warning(s)\n";
  }

  // Bounded soundness check (docs/rule_verify.md) of the same rule sets
  // \lint covers: built-in libraries plus this session's constraint rules.
  void RunVerify() {
    eds::rewrite::BuiltinRegistry builtins;
    builtins.InstallStandard();
    eds::magic::InstallMagicBuiltins(&builtins);
    eds::rules::InstallSemanticBuiltins(&builtins);
    const std::pair<const char*, std::string> sources[] = {
        {"merging", eds::rules::MergingRuleSource()},
        {"permutation", eds::rules::PermutationRuleSource()},
        {"fixpoint", eds::rules::FixpointRuleSource()},
        {"simplify", eds::rules::SimplifyRuleSource()},
        {"implicit_knowledge", eds::rules::ImplicitKnowledgeRuleSource()},
        {"semantic_methods", eds::rules::SemanticMethodRuleSource()},
        {"extensions", eds::rules::ExtensionRuleSource()},
        {"constraints", eds::rules::ConstraintRuleSource(session_.catalog())},
    };
    size_t errors = 0, warnings = 0;
    for (const auto& [name, text] : sources) {
      eds::verify::VerifySummary summary;
      eds::lint::LintReport report =
          eds::verify::VerifyLibrary(text, builtins, {}, &summary);
      errors += report.error_count();
      warnings += report.warning_count();
      for (const eds::lint::Diagnostic& d : report.diagnostics()) {
        std::cout << name << ": " << d.ToString() << "\n";
      }
      std::cout << name << ": " << summary.ToString() << "\n";
    }
    std::cout << "verify: " << errors << " error(s), " << warnings
              << " warning(s)\n";
  }

  // Lazily builds and starts the worker pool. The REPL is single-threaded
  // and every served SELECT is awaited before the next statement runs, so
  // DDL between serves happens while the workers are idle — within the
  // service's concurrency contract — and the epoch bump it causes simply
  // invalidates the cached plans.
  eds::srv::QueryService* EnsureService() {
    if (threads_ == 0) return nullptr;
    if (service_ == nullptr) {
      eds::srv::ServiceOptions options;
      options.workers = threads_;
      options.base_limits = limits_;
      options.collect_traces = collect_traces_;
      options.rewrite = rewrite_;
      options.slow_query_ns = slow_ms_ * 1'000'000ULL;
      options.slow_query_log_path = slow_log_path_;
      options.telemetry_export_path = telemetry_out_;
      options.persist_path = persist_path_;
      options.persist_interval_ms = persist_interval_ms_;
      service_ = std::make_unique<eds::srv::QueryService>(&session_, options);
      eds::Status status = service_->Start();
      if (!status.ok()) {
        std::cout << "cannot start query service: " << status << "\n";
        service_.reset();
        return nullptr;
      }
      std::cout << "query service: " << threads_ << " worker(s), cache "
                << service_->cache().shard_count() << " shard(s)\n";
      if (!persist_path_.empty()) {
        const eds::srv::LoadStats ls = service_->persist_load_stats();
        std::cout << "persist: " << persist_path_ << " warmed " << ls.ok
                  << " entr" << (ls.ok == 1 ? "y" : "ies") << " (skipped "
                  << ls.skipped << ", stale " << ls.stale << ")\n";
      }
    }
    return service_.get();
  }

  // Plan-cache stats (or eager invalidation with `clear`).
  void ShowCache(bool clear) {
    if (service_ == nullptr) {
      std::cout << "no query service (start the shell with --threads=N)\n";
      return;
    }
    if (clear) {
      service_->cache().InvalidateAll();
      service_->l0_cache().InvalidateAll();
      std::cout << "cache cleared\n";
      return;
    }
    eds::srv::PlanCache::Stats s = service_->cache().GetStats();
    std::cout << "entries:         " << s.entries << " (" << s.nodes
              << " nodes)\n"
              << "hits / misses:   " << s.hits << " / " << s.misses << "\n"
              << "inserts:         " << s.inserts << "\n"
              << "evictions:       " << s.evictions << "\n"
              << "insert failures: " << s.insert_failures << "\n"
              << "invalidations:   " << s.invalidations << "\n";
    eds::srv::L0Cache::Stats l0 = service_->l0_cache().GetStats();
    std::cout << "l0 (exact text): " << l0.entries << " entries, "
              << l0.hits << " / " << l0.misses << " hits / misses, "
              << l0.invalidations << " invalidated\n";
    eds::srv::ServiceStats ss = service_->GetStats();
    std::cout << "served: " << ss.completed << " ok, " << ss.failed
              << " failed, " << ss.rejected << " shed (max queue depth "
              << ss.max_queue_depth << ")\n";
  }

  // \top (recent) / \slow (ranked by serve time): renders the service's
  // flight recorder, one line per retained QueryRecord.
  void ShowRecorder(const std::string& rest, bool slowest) {
    if (service_ == nullptr || !service_->telemetry_enabled()) {
      std::cout << "no telemetry (start the shell with --threads=N)\n";
      return;
    }
    size_t limit = 10;
    std::string trimmed(eds::Trim(rest));
    if (!trimmed.empty()) {
      try {
        limit = std::stoull(trimmed);
      } catch (...) {
        std::cout << "usage: " << (slowest ? "\\slow" : "\\top") << " [N]\n";
        return;
      }
    }
    std::vector<eds::srv::QueryRecord> records =
        slowest ? service_->SlowestQueries(limit)
                : service_->RecentQueries(limit);
    if (records.empty()) {
      std::cout << "flight recorder empty\n";
      return;
    }
    std::cout << "  seq outcome wk queue_us serve_us     rows  query\n";
    for (const eds::srv::QueryRecord& r : records) {
      std::string text = r.text.substr(0, 48);
      for (char& c : text) {
        if (c == '\n' || c == '\t') c = ' ';
      }
      char line[128];
      std::snprintf(line, sizeof(line), "%5llu %-7s %2zu %8llu %8llu %8llu",
                    static_cast<unsigned long long>(r.seq),
                    eds::srv::CacheOutcomeName(r), r.worker_id,
                    static_cast<unsigned long long>(r.queue_ns / 1000),
                    static_cast<unsigned long long>(r.serve_ns / 1000),
                    static_cast<unsigned long long>(r.rows));
      std::cout << line << "  " << text;
      if (!r.ok) std::cout << "  [" << r.error << "]";
      if (r.slow) {
        std::cout << "  [slow" << (r.trace_json.empty() ? "" : ", trace")
                  << "]";
      }
      std::cout << "\n";
    }
    const eds::srv::ServiceStats ss = service_->GetStats();
    std::cout << "(" << records.size() << " of "
              << (ss.completed + ss.failed) << " served; "
              << service_->slow_queries_logged()
              << " slow queries logged)\n";
  }

  // \metrics --prom: the service's full metric surface (srv.*, cache.*,
  // srv.l0.*, gov.*, srv.latency.*) in Prometheus text exposition format.
  void ShowPrometheus() {
    eds::obs::MetricsRegistry registry;
    if (service_ != nullptr) {
      service_->ExportMetrics(&registry);
    } else {
      // Without a service only the process-wide producers exist.
      eds::obs::ExportInternerStats(eds::term::Interner::Global().GetStats(),
                                    &registry);
      eds::obs::ExportGovStats(eds::gov::CumulativeTripCounters(), &registry);
    }
    std::cout << registry.ToPrometheus();
  }

  // \serve N SELECT ... — submit N copies concurrently, await them all,
  // report wall time and cache behavior. The concurrency demo: copies
  // after the first hit the plan cache and skip the rewrite phase.
  void ServeMany(const std::string& rest) {
    eds::srv::QueryService* service = EnsureService();
    if (service == nullptr) {
      std::cout << "no query service (start the shell with --threads=N)\n";
      return;
    }
    std::istringstream in{rest};
    size_t copies = 0;
    in >> copies;
    std::string query;
    std::getline(in, query);
    query = std::string(eds::Trim(query));
    if (copies == 0 || query.empty()) {
      std::cout << "usage: \\serve N SELECT ...\n";
      return;
    }
    eds::srv::PlanCache::Stats before = service->cache().GetStats();
    uint64_t t0 = eds::obs::NowNs();
    std::vector<std::future<eds::Result<eds::srv::ServedQuery>>> futures;
    futures.reserve(copies);
    for (size_t i = 0; i < copies; ++i) futures.push_back(
        service->Submit(query));
    size_t ok = 0, failed = 0, hits = 0;
    for (auto& f : futures) {
      auto r = f.get();
      if (!r.ok()) {
        if (failed == 0) std::cout << r.status() << "\n";
        ++failed;
        continue;
      }
      ++ok;
      if (r->cache_hit) ++hits;
    }
    uint64_t wall_ns = eds::obs::NowNs() - t0;
    eds::srv::PlanCache::Stats after = service->cache().GetStats();
    std::cout << copies << " served in " << wall_ns / 1000 << " us (" << ok
              << " ok, " << failed << " failed); cache hits " << hits
              << ", misses " << (after.misses - before.misses) << "\n";
  }

  void ShowPlan(const std::string& query, bool trace) {
    auto raw = session_.Translate(query);
    if (!raw.ok()) {
      std::cout << raw.status() << "\n";
      return;
    }
    std::cout << "raw plan:\n" << eds::lera::FormatPlan(*raw);
    eds::rewrite::RewriteOptions options;
    options.collect_trace = trace;
    auto out = session_.Rewrite(*raw, options);
    if (!out.ok()) {
      std::cout << out.status() << "\n";
      return;
    }
    if (trace) {
      std::cout << "trace (" << out->trace.size() << " applications):\n";
      for (const auto& entry : out->trace) {
        std::cout << "  [" << entry.block << "/" << entry.rule << "]\n"
                  << "    " << entry.before->ToString() << "\n    --> "
                  << entry.after->ToString() << "\n";
      }
    }
    std::cout << "optimized plan (" << out->stats.applications
              << " rule applications, " << out->stats.condition_checks
              << " condition checks, " << out->stats.normal_form_hits
              << " normal-form hits):\n"
              << eds::lera::FormatPlan(out->term);
  }

  // Full engine statistics for one query, without executing it.
  void ShowStats(const std::string& query) {
    auto raw = session_.Translate(query);
    if (!raw.ok()) {
      std::cout << raw.status() << "\n";
      return;
    }
    auto out = session_.Rewrite(*raw);
    if (!out.ok()) {
      std::cout << out.status() << "\n";
      return;
    }
    const eds::rewrite::EngineStats& s = out->stats;
    std::cout << "passes:           " << s.passes << "\n"
              << "applications:     " << s.applications << "\n"
              << "condition checks: " << s.condition_checks << "\n"
              << "match attempts:   " << s.match_attempts << "\n"
              << "quick rejects:    " << s.quick_rejects << "\n"
              << "normal-form hits: " << s.normal_form_hits << "\n"
              << "cycle stops:      " << s.cycle_stops << "\n"
              << "safety stop:      " << (s.safety_stop ? "yes" : "no")
              << "\n"
              << "governor trip:    " << s.trip.ToString() << "\n";
    for (const auto& [rule, count] : s.applications_by_rule) {
      std::cout << "  " << rule << ": " << count << "\n";
    }
    if (s.safety_stop) {
      std::cout << "warning: rewrite stopped early at the max_applications "
                   "safety valve; the plan is correct but may be "
                   "under-optimized\n";
    }
    if (s.trip.tripped()) {
      std::cout << "warning: rewrite degraded by the query governor ("
                << s.trip.ToString() << ")\n";
    }
  }

  // Runs the query end to end with per-rule profiling on and dumps every
  // producer's statistics through the unified registry.
  void ShowMetrics(const std::string& query) {
    eds::exec::QueryOptions options;
    options.rewrite = rewrite_;
    options.rewrite_options.profile_rules = true;
    options.limits = limits_;
    auto result = session_.Query(eds::Trim(query), options);
    if (!result.ok()) {
      std::cout << result.status() << "\n";
      return;
    }
    eds::obs::MetricsRegistry registry;
    eds::obs::ExportEngineStats(result->rewrite_stats, &registry);
    eds::obs::ExportExecStats(result->exec_stats, &registry);
    eds::obs::ExportInternerStats(eds::term::Interner::Global().GetStats(),
                                  &registry);
    eds::obs::ExportGovStats(eds::gov::CumulativeTripCounters(), &registry);
    std::cout << registry.ToText();
    PrintWarnings(*result);
    const eds::exec::PhaseTimes& t = result->phase_times;
    std::cout << "phase times (us): parse " << t.parse_ns / 1000
              << ", translate " << t.translate_ns / 1000 << ", rewrite "
              << t.rewrite_ns / 1000 << ", schema " << t.schema_ns / 1000
              << ", exec " << t.exec_ns / 1000 << ", total "
              << t.total_ns / 1000 << "\n";
  }

  // Runs the query with per-rule profiling and ranks rules by cumulative
  // self time.
  void ShowProfile(const std::string& query) {
    eds::exec::QueryOptions options;
    options.rewrite = rewrite_;
    options.rewrite_options.profile_rules = true;
    options.limits = limits_;
    auto result = session_.Query(eds::Trim(query), options);
    if (!result.ok()) {
      std::cout << result.status() << "\n";
      return;
    }
    std::cout << eds::obs::FormatRuleProfiles(result->rewrite_stats,
                                              /*limit=*/10);
  }

  void RunStatement(const std::string& text) {
    std::string trimmed(eds::Trim(text));
    // SELECTs go through Query for results; everything else is a script.
    bool is_select = trimmed.size() >= 6 &&
                     eds::EqualsIgnoreCase(trimmed.substr(0, 6), "SELECT");
    if (!is_select) {
      eds::Status status = session_.ExecuteScript(text);
      std::cout << (status.ok() ? "ok" : status.ToString()) << "\n";
      return;
    }
    eds::exec::QueryResult owned;
    const eds::exec::QueryResult* shown = nullptr;
    std::string serve_note;
    if (eds::srv::QueryService* service = EnsureService()) {
      auto served = service->Submit(trimmed).get();
      if (!served.ok()) {
        std::cout << served.status() << "\n";
        return;
      }
      serve_note = std::string("; worker ") +
                   std::to_string(served->worker_id) +
                   (served->l0_hit        ? ", l0 hit"
                    : served->cache_hit ? ", cache hit"
                                        : ", cache miss");
      owned = std::move(served->result);
      shown = &owned;
    } else {
      eds::exec::QueryOptions options;
      options.rewrite = rewrite_;
      options.limits = limits_;
      auto result = session_.Query(trimmed, options);
      if (!result.ok()) {
        std::cout << result.status() << "\n";
        return;
      }
      owned = std::move(*result);
      shown = &owned;
    }
    const auto& result = *shown;
    // Header.
    for (size_t i = 0; i < result.columns.size(); ++i) {
      std::cout << (i > 0 ? " | " : "") << result.columns[i];
    }
    std::cout << "\n";
    for (const auto& row : result.rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::cout << (i > 0 ? " | " : "") << row[i];
      }
      std::cout << "\n";
    }
    std::cout << "(" << result.rows.size() << " rows; "
              << result.rewrite_stats.applications << " rewrites, "
              << result.exec_stats.rows_scanned << " rows scanned"
              << serve_note << ")\n";
    PrintWarnings(result);
  }

  // Degradation is never silent: every QueryResult warning (safety valve,
  // governor trip) prints after the rows.
  static void PrintWarnings(const eds::exec::QueryResult& result) {
    for (const std::string& w : result.warnings) {
      std::cout << "warning: " << w << "\n";
    }
  }

  eds::exec::Session session_;
  std::string buffer_;
  bool rewrite_ = true;
  eds::gov::GovernorLimits limits_;
  size_t threads_ = 0;
  bool collect_traces_ = false;
  uint64_t slow_ms_ = 0;
  std::string slow_log_path_;
  std::string telemetry_out_;
  std::string persist_path_;
  uint64_t persist_interval_ms_ = 0;
  std::unique_ptr<eds::srv::QueryService> service_;
};

}  // namespace

namespace {

// Writes the accumulated spans as Chrome trace JSON (Perfetto-loadable).
int WriteTrace(const eds::obs::TraceSink& sink, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write trace to " << path << "\n";
    return 1;
  }
  sink.WriteChromeTrace(out);
  std::cerr << "wrote " << sink.size() << " trace event(s) to " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string script_path;
  uint64_t threads = 0;
  uint64_t slow_ms = 0;
  std::string slow_log_path;
  std::string telemetry_out;
  std::string persist_path;
  uint64_t persist_interval_ms = 0;
  bool listen = false;
  uint64_t listen_port = 0;
  std::string listen_host = "127.0.0.1";
  eds::gov::GovernorLimits limits;
  auto parse_u64 = [](const std::string& text, uint64_t* out) {
    try {
      size_t pos = 0;
      unsigned long long v = std::stoull(text, &pos);
      if (pos != text.size()) return false;
      *out = v;
      return true;
    } catch (...) {
      return false;
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string kTraceOut = "--trace-out=";
    const std::string kDeadline = "--deadline-ms=";
    const std::string kMaxNodes = "--max-nodes=";
    const std::string kMaxRows = "--max-rows=";
    const std::string kThreads = "--threads=";
    const std::string kSlowMs = "--slow-ms=";
    const std::string kSlowLog = "--slow-log=";
    const std::string kTelemetryOut = "--telemetry-out=";
    const std::string kPersist = "--persist=";
    const std::string kPersistMs = "--persist-interval-ms=";
    const std::string kListen = "--listen=";
    const std::string kListenHost = "--listen-host=";
    bool bad = false;
    if (arg.rfind(kTraceOut, 0) == 0) {
      trace_path = arg.substr(kTraceOut.size());
      bad = trace_path.empty();
    } else if (arg.rfind(kSlowMs, 0) == 0) {
      bad = !parse_u64(arg.substr(kSlowMs.size()), &slow_ms);
    } else if (arg.rfind(kSlowLog, 0) == 0) {
      slow_log_path = arg.substr(kSlowLog.size());
      bad = slow_log_path.empty();
    } else if (arg.rfind(kTelemetryOut, 0) == 0) {
      telemetry_out = arg.substr(kTelemetryOut.size());
      bad = telemetry_out.empty();
    } else if (arg.rfind(kPersist, 0) == 0) {
      persist_path = arg.substr(kPersist.size());
      bad = persist_path.empty();
    } else if (arg.rfind(kPersistMs, 0) == 0) {
      bad = !parse_u64(arg.substr(kPersistMs.size()), &persist_interval_ms);
    } else if (arg.rfind(kListen, 0) == 0) {
      listen = true;
      bad = !parse_u64(arg.substr(kListen.size()), &listen_port) ||
            listen_port > 65535;
    } else if (arg.rfind(kListenHost, 0) == 0) {
      listen_host = arg.substr(kListenHost.size());
      bad = listen_host.empty();
    } else if (arg.rfind(kThreads, 0) == 0) {
      bad = !parse_u64(arg.substr(kThreads.size()), &threads);
    } else if (arg.rfind(kDeadline, 0) == 0) {
      bad = !parse_u64(arg.substr(kDeadline.size()), &limits.deadline_ms);
    } else if (arg.rfind(kMaxNodes, 0) == 0) {
      bad = !parse_u64(arg.substr(kMaxNodes.size()), &limits.max_term_nodes);
    } else if (arg.rfind(kMaxRows, 0) == 0) {
      bad = !parse_u64(arg.substr(kMaxRows.size()), &limits.max_rows);
    } else {
      script_path = arg;
    }
    if (bad) {
      std::cerr << "usage: eds_shell [--trace-out=FILE.json] [--threads=N] "
                   "[--deadline-ms=N] [--max-nodes=N] [--max-rows=N] "
                   "[--slow-ms=N] [--slow-log=FILE.jsonl] "
                   "[--telemetry-out=FILE.prom] [--persist=FILE.eds] "
                   "[--persist-interval-ms=N] [--listen=PORT "
                   "[--listen-host=H]] [script.sql]\n";
      return 1;
    }
  }
  // Persistence lives in the QueryService; --persist without --threads
  // gets the smallest pool that routes SELECTs through it. Serving over
  // the network wants real concurrency by default.
  if (!persist_path.empty() && threads == 0) threads = 1;
  if (listen && threads == 0) threads = 2;

  eds::obs::TraceSink sink;
  Shell shell(trace_path.empty() ? nullptr : &sink);
  shell.set_limits(limits);
  shell.set_threads(threads, /*collect_traces=*/!trace_path.empty());
  shell.set_telemetry(slow_ms, slow_log_path, telemetry_out);
  shell.set_persist(persist_path, persist_interval_ms);
  int exit_code = 0;
  bool done = false;
  if (!script_path.empty()) {
    std::ifstream file(script_path);
    if (!file) {
      std::cerr << "cannot open " << script_path << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(file, line)) {
      if (!shell.HandleLine(line)) break;
    }
    done = true;
  }
  if (listen) {
    // Script (if any) set up schema and data; now serve the wire protocol
    // until a signal arrives.
    exit_code = shell.ServeNetwork(listen_host,
                                   static_cast<uint16_t>(listen_port));
    done = true;
  }
  if (!done && !isatty(0)) {
    // Piped input: process and exit.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!shell.HandleLine(line)) break;
    }
    done = true;
  }
  if (!done) {
    std::cout << "eds shell — ESQL statements end with ';', \\q quits, "
                 "\\plan/\\trace/\\stats/\\metrics/\\profile inspect the "
                 "rewriter.\n";
    std::string line;
    while (true) {
      std::cout << (shell.pending() ? "   ... " : "esql> ") << std::flush;
      if (!std::getline(std::cin, line)) break;
      if (!shell.HandleLine(line)) break;
    }
  }
  // Stop the workers before their sinks are read; then write either the
  // single-session trace or the merged one (session = tid 1, workers 2+).
  shell.Shutdown();
  if (!trace_path.empty()) {
    std::vector<const eds::obs::TraceSink*> workers = shell.worker_sinks();
    if (workers.empty()) {
      exit_code = WriteTrace(sink, trace_path);
    } else {
      std::vector<eds::obs::SinkWithTid> sinks = {{&sink, 1}};
      for (size_t i = 0; i < workers.size(); ++i) {
        if (workers[i] != nullptr) {
          sinks.push_back({workers[i], static_cast<int>(i) + 2});
        }
      }
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write trace to " << trace_path << "\n";
        exit_code = 1;
      } else {
        eds::obs::WriteMergedChromeTrace(out, sinks);
        std::cerr << "wrote merged trace (" << sinks.size()
                  << " thread(s)) to " << trace_path << "\n";
      }
    }
  }
  return exit_code;
}
