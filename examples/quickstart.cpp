// Quickstart: define a schema, load data, run a query, and look at what
// the rule-based rewriter did to the plan.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "exec/session.h"
#include "lera/printer.h"

int main() {
  eds::exec::Session session;

  // 1. DDL and data through ESQL.
  eds::Status status = session.ExecuteScript(R"(
    CREATE TABLE EMP (Id : INT, Name : CHAR, Dept : CHAR, Salary : NUMERIC);
    INSERT INTO EMP VALUES
      (1, 'Ada',   'RESEARCH', 120),
      (2, 'Boole', 'RESEARCH',  90),
      (3, 'Codd',  'DATABASE', 150),
      (4, 'Date',  'DATABASE', 110);
    CREATE VIEW WellPaid (Name, Dept) AS
      SELECT Name, Dept FROM EMP WHERE Salary > 100;
  )");
  if (!status.ok()) {
    std::cerr << "setup failed: " << status << "\n";
    return 1;
  }

  // 2. A query over the view. The raw translation stacks a search over the
  //    view's search; the rewriter merges them (Fig. 7 of the paper).
  auto result = session.Query("SELECT Name FROM WellPaid WHERE Dept = "
                              "'DATABASE'");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "== raw plan (straight ESQL -> LERA translation) ==\n"
            << eds::lera::FormatPlan(result->raw_plan)
            << "\n== optimized plan ==\n"
            << eds::lera::FormatPlan(result->optimized_plan)
            << "\nrule applications: " << result->rewrite_stats.applications
            << "\n\n== results ==\n";
  for (const auto& row : result->rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << (i > 0 ? ", " : "") << result->columns[i] << " = "
                << row[i];
    }
    std::cout << "\n";
  }
  return 0;
}
