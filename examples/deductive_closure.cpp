// Deductive capabilities (Fig. 5 and §5.3): a recursive view, the fixpoint
// operator, and the Alexander/Magic-Sets rewrite that focuses the
// recursion on the query constant.
//
//   $ ./build/examples/deductive_closure
#include <iostream>

#include "exec/session.h"
#include "lera/printer.h"

int main() {
  using eds::value::Value;
  eds::exec::Session session;

  // A tournament graph: players beat each other along a chain with a few
  // upsets, and BETTER_THAN is its transitive closure (Fig. 5's view over
  // ids so the selection constant can seed the magic set).
  eds::Status status = session.ExecuteScript(R"(
    CREATE TABLE BEATS (Winner : INT, Loser : INT);
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )");
  if (!status.ok()) {
    std::cerr << "setup failed: " << status << "\n";
    return 1;
  }
  const int kPlayers = 60;
  for (int i = 1; i < kPlayers; ++i) {
    (void)session.InsertRow("BEATS", {Value::Int(i), Value::Int(i + 1)});
    if (i % 7 == 0) {  // a few upsets create extra paths
      (void)session.InsertRow("BEATS", {Value::Int(i + 1), Value::Int(i - 1)});
    }
  }

  const char* query = "SELECT W FROM BETTER_THAN WHERE L = 60";

  // Without the rewriter: the whole closure is computed, then filtered.
  eds::exec::QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = session.Query(query, no_rewrite);
  if (!raw.ok()) {
    std::cerr << "raw failed: " << raw.status() << "\n";
    return 1;
  }

  // With the rewriter: Fig. 9's rule detects the bound column and invokes
  // the Alexander method; only the cone of player 60 is computed.
  auto focused = session.Query(query);
  if (!focused.ok()) {
    std::cerr << "focused failed: " << focused.status() << "\n";
    return 1;
  }

  std::cout << "players dominating #60: " << focused->rows.size()
            << " (same as unfocused: " << raw->rows.size() << ")\n\n"
            << "unfocused fixpoint work: " << raw->exec_stats.fix_tuples
            << " tuples in " << raw->exec_stats.fix_iterations
            << " rounds\n"
            << "focused fixpoint work:   " << focused->exec_stats.fix_tuples
            << " tuples in " << focused->exec_stats.fix_iterations
            << " rounds\n\n"
            << "focused plan (note FIX BETTER_THAN#M, the magic "
               "fixpoint):\n"
            << eds::lera::FormatPlan(focused->optimized_plan);

  // Semi-naive vs naive iteration as an executor-level ablation.
  eds::exec::QueryOptions naive;
  naive.exec_options.seminaive = false;
  auto naive_result = session.Query(query, naive);
  if (naive_result.ok()) {
    std::cout << "\nnaive iteration qualification probes:     "
              << naive_result->exec_stats.qual_evaluations
              << "\nsemi-naive iteration qualification probes: "
              << focused->exec_stats.qual_evaluations << "\n";
  }
  return 0;
}
