// A classic deductive-database workload: bill-of-materials (part
// explosion). CONTAINS(Asm, Part) lists direct components; the recursive
// USES view computes all transitive components. Asking "what goes into one
// product?" is a bound query the Fig. 9 rewrite focuses: only that
// product's cone of the parts graph is explored.
//
//   $ ./build/examples/bill_of_materials
#include <iostream>

#include "exec/session.h"
#include "lera/printer.h"

int main() {
  using eds::value::Value;
  eds::exec::Session session;

  // The bilinear (USES ∘ USES) formulation focuses under *both* adornments
  // — "what is in product X" (Asm bound) and "where is part Y used" (Part
  // bound). A linear formulation (CONTAINS ∘ USES) would only focus in its
  // matching direction; see magic/magic.h.
  eds::Status status = session.ExecuteScript(R"(
    CREATE TABLE CONTAINS (Asm : INT, Part : INT);
    CREATE VIEW USES (Asm, Part) AS (
      SELECT Asm, Part FROM CONTAINS
      UNION
      SELECT U1.Asm, U2.Part FROM USES U1, USES U2 WHERE U1.Part = U2.Asm );
  )");
  if (!status.ok()) {
    std::cerr << "setup failed: " << status << "\n";
    return 1;
  }

  // A forest of products: part ids 1..kProducts are top-level products,
  // each a binary tree of sub-assemblies kLevels deep.
  const int kProducts = 12;
  const int kLevels = 6;
  int next_part = kProducts + 1;
  std::vector<int> frontier;
  for (int p = 1; p <= kProducts; ++p) frontier.push_back(p);
  for (int level = 0; level < kLevels; ++level) {
    std::vector<int> next_frontier;
    for (int assembly : frontier) {
      for (int c = 0; c < 2; ++c) {
        int part = next_part++;
        (void)session.InsertRow("CONTAINS",
                                {Value::Int(assembly), Value::Int(part)});
        if (level + 1 < kLevels && part % 3 != 0) {
          next_frontier.push_back(part);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  std::cout << "parts catalogue: " << next_part - 1 << " parts\n";

  // The bound query: full parts list of product 1.
  const char* query = "SELECT Part FROM USES WHERE Asm = 1";

  eds::exec::QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = session.Query(query, no_rewrite);
  auto focused = session.Query(query);
  if (!raw.ok() || !focused.ok()) {
    std::cerr << "query failed: "
              << (raw.ok() ? focused.status() : raw.status()) << "\n";
    return 1;
  }
  std::cout << "product 1 explodes into " << focused->rows.size()
            << " parts (unfocused agrees: " << raw->rows.size() << ")\n\n"
            << "unfocused: " << raw->exec_stats.fix_tuples
            << " fixpoint tuples, " << raw->exec_stats.qual_evaluations
            << " qualification probes\n"
            << "focused:   " << focused->exec_stats.fix_tuples
            << " fixpoint tuples, " << focused->exec_stats.qual_evaluations
            << " qualification probes\n\n"
            << "focused plan:\n"
            << eds::lera::FormatPlan(focused->optimized_plan);

  // Where is part 99 used? The other adornment direction.
  auto where_used = session.Query("SELECT Asm FROM USES WHERE Part = 99");
  if (where_used.ok()) {
    std::cout << "\npart 99 is used in " << where_used->rows.size()
              << " assemblies (" << where_used->exec_stats.fix_tuples
              << " fixpoint tuples explored)\n";
  }
  return 0;
}
