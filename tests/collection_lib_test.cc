#include "value/collection_lib.h"

#include "gtest/gtest.h"

namespace eds::value {
namespace {

const FunctionLibrary& Lib() { return FunctionLibrary::Default(); }

Value Call(const char* name, std::vector<Value> args) {
  auto r = Lib().Call(name, args);
  EXPECT_TRUE(r.ok()) << name << ": " << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

Status CallStatus(const char* name, std::vector<Value> args) {
  auto r = Lib().Call(name, args);
  return r.ok() ? Status::OK() : r.status();
}

TEST(CollectionLibTest, Arithmetic) {
  EXPECT_EQ(Call("ADD", {Value::Int(2), Value::Int(3)}), Value::Int(5));
  EXPECT_EQ(Call("SUB", {Value::Int(2), Value::Int(3)}), Value::Int(-1));
  EXPECT_EQ(Call("MUL", {Value::Int(4), Value::Int(3)}), Value::Int(12));
  EXPECT_EQ(Call("DIV", {Value::Int(7), Value::Int(2)}), Value::Int(3));
  EXPECT_EQ(Call("MOD", {Value::Int(7), Value::Int(2)}), Value::Int(1));
  EXPECT_EQ(Call("NEG", {Value::Int(5)}), Value::Int(-5));
  EXPECT_EQ(Call("ABS", {Value::Int(-5)}), Value::Int(5));
  EXPECT_EQ(Call("ABS", {Value::Real(-2.5)}), Value::Real(2.5));
}

TEST(CollectionLibTest, MixedArithmeticWidens) {
  Value r = Call("ADD", {Value::Int(1), Value::Real(0.5)});
  EXPECT_EQ(r.kind(), ValueKind::kReal);
  EXPECT_DOUBLE_EQ(r.AsReal(), 1.5);
}

TEST(CollectionLibTest, DivisionByZero) {
  EXPECT_EQ(CallStatus("DIV", {Value::Int(1), Value::Int(0)}).code(),
            StatusCode::kRuntimeError);
  EXPECT_EQ(CallStatus("MOD", {Value::Int(1), Value::Int(0)}).code(),
            StatusCode::kRuntimeError);
}

TEST(CollectionLibTest, Comparisons) {
  EXPECT_EQ(Call("EQ", {Value::Int(2), Value::Real(2.0)}),
            Value::Bool(true));
  EXPECT_EQ(Call("LT", {Value::Int(1), Value::Int(2)}), Value::Bool(true));
  EXPECT_EQ(Call("GE", {Value::String("b"), Value::String("a")}),
            Value::Bool(true));
  EXPECT_EQ(Call("NE", {Value::Int(1), Value::Int(1)}), Value::Bool(false));
}

TEST(CollectionLibTest, ComparisonWithNullIsNull) {
  EXPECT_TRUE(Call("EQ", {Value::Null(), Value::Int(1)}).is_null());
}

TEST(CollectionLibTest, ThreeValuedLogic) {
  EXPECT_EQ(Call("AND", {Value::Bool(false), Value::Null()}),
            Value::Bool(false));
  EXPECT_TRUE(Call("AND", {Value::Bool(true), Value::Null()}).is_null());
  EXPECT_EQ(Call("OR", {Value::Bool(true), Value::Null()}),
            Value::Bool(true));
  EXPECT_TRUE(Call("OR", {Value::Bool(false), Value::Null()}).is_null());
  EXPECT_TRUE(Call("NOT", {Value::Null()}).is_null());
  EXPECT_EQ(Call("NOT", {Value::Bool(false)}), Value::Bool(true));
}

TEST(CollectionLibTest, StringFunctions) {
  EXPECT_EQ(Call("CONCAT", {Value::String("ab"), Value::String("cd")}),
            Value::String("abcd"));
  EXPECT_EQ(Call("LENGTH", {Value::String("abc")}), Value::Int(3));
  EXPECT_EQ(Call("UPPER", {Value::String("Quinn")}), Value::String("QUINN"));
  EXPECT_EQ(Call("LOWER", {Value::String("Quinn")}), Value::String("quinn"));
}

TEST(CollectionLibTest, MemberOnAllCollectionKinds) {
  Value e = Value::Int(2);
  EXPECT_EQ(Call("MEMBER", {e, Value::Set({Value::Int(1), Value::Int(2)})}),
            Value::Bool(true));
  EXPECT_EQ(Call("MEMBER", {e, Value::Bag({Value::Int(2), Value::Int(2)})}),
            Value::Bool(true));
  EXPECT_EQ(Call("MEMBER", {e, Value::List({Value::Int(1)})}),
            Value::Bool(false));
  EXPECT_EQ(Call("MEMBER", {e, Value::Array({Value::Int(2)})}),
            Value::Bool(true));
}

TEST(CollectionLibTest, IsEmptyAndCount) {
  EXPECT_EQ(Call("ISEMPTY", {Value::Set({})}), Value::Bool(true));
  EXPECT_EQ(Call("ISEMPTY", {Value::List({Value::Int(1)})}),
            Value::Bool(false));
  EXPECT_EQ(Call("COUNT", {Value::Bag({Value::Int(1), Value::Int(1)})}),
            Value::Int(2));
}

TEST(CollectionLibTest, InsertRemovePreserveKind) {
  Value s = Call("INSERT", {Value::Int(2), Value::Set({Value::Int(1)})});
  EXPECT_EQ(s, Value::Set({Value::Int(1), Value::Int(2)}));
  // Inserting an existing element into a set is a no-op (canonical form).
  EXPECT_EQ(Call("INSERT", {Value::Int(1), s}), s);
  Value l = Call("REMOVE", {Value::Int(1), Value::List({Value::Int(1),
                                                        Value::Int(1)})});
  EXPECT_EQ(l, Value::List({Value::Int(1)}));  // removes one occurrence
}

TEST(CollectionLibTest, UnionIntersectionDifference) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(3)});
  EXPECT_EQ(Call("UNION", {a, b}),
            Value::Set({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Call("INTERSECTION", {a, b}), Value::Set({Value::Int(2)}));
  EXPECT_EQ(Call("DIFFERENCE", {a, b}), Value::Set({Value::Int(1)}));
}

TEST(CollectionLibTest, BagDifferenceCancelsPerOccurrence) {
  Value a = Value::Bag({Value::Int(1), Value::Int(1), Value::Int(2)});
  Value b = Value::Bag({Value::Int(1)});
  EXPECT_EQ(Call("DIFFERENCE", {a, b}),
            Value::Bag({Value::Int(1), Value::Int(2)}));
}

TEST(CollectionLibTest, Include) {
  Value a = Value::Set({Value::Int(1)});
  Value b = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(Call("INCLUDE", {a, b}), Value::Bool(true));
  EXPECT_EQ(Call("INCLUDE", {b, a}), Value::Bool(false));
}

TEST(CollectionLibTest, ChoiceDeterministic) {
  // CHOICE picks the least element so rewrites stay reproducible.
  EXPECT_EQ(Call("CHOICE", {Value::Set({Value::Int(3), Value::Int(1)})}),
            Value::Int(1));
  EXPECT_EQ(CallStatus("CHOICE", {Value::Set({})}).code(),
            StatusCode::kRuntimeError);
}

TEST(CollectionLibTest, SequenceFunctions) {
  Value l = Value::List({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(Call("APPEND", {l, Value::List({Value::Int(3)})}),
            Value::List({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Call("NTH", {l, Value::Int(2)}), Value::Int(2));
  EXPECT_EQ(CallStatus("NTH", {l, Value::Int(3)}).code(),
            StatusCode::kRuntimeError);
  EXPECT_EQ(Call("FIRST", {l}), Value::Int(1));
  EXPECT_EQ(Call("LAST", {l}), Value::Int(2));
  // APPEND rejects sets (order-free).
  EXPECT_EQ(CallStatus("APPEND", {Value::Set({}), l}).code(),
            StatusCode::kTypeError);
}

TEST(CollectionLibTest, Constructors) {
  EXPECT_EQ(Call("MAKESET", {Value::Int(2), Value::Int(2), Value::Int(1)}),
            Value::Set({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Call("MAKELIST", {Value::Int(2), Value::Int(1)}),
            Value::List({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(Call("MAKEBAG", {Value::Int(1), Value::Int(1)}),
            Value::Bag({Value::Int(1), Value::Int(1)}));
}

TEST(CollectionLibTest, ConvertFunctionsOfFig1) {
  // Fig. 1: converting a bag to a set removes duplicates.
  Value bag = Value::Bag({Value::Int(1), Value::Int(1), Value::Int(2)});
  EXPECT_EQ(Call("TOSET", {bag}), Value::Set({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Call("TOBAG", {Value::Set({Value::Int(1)})}),
            Value::Bag({Value::Int(1)}));
  EXPECT_EQ(Call("TOLIST", {bag}).kind(), ValueKind::kList);
}

TEST(CollectionLibTest, UnknownFunction) {
  EXPECT_EQ(CallStatus("NO_SUCH_FN", {}).code(), StatusCode::kNotFound);
}

TEST(CollectionLibTest, ArityErrors) {
  EXPECT_EQ(CallStatus("ADD", {Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CallStatus("MEMBER", {Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CollectionLibTest, UserExtension) {
  FunctionLibrary lib;
  FunctionLibrary::InstallBuiltins(&lib);
  // The database implementor registers a new ADT function (extensibility).
  ASSERT_TRUE(lib.Register("TWICE",
                           [](const std::vector<Value>& args) -> Result<Value> {
                             return Value::Int(args[0].AsInt() * 2);
                           })
                  .ok());
  auto r = lib.Call("twice", {Value::Int(21)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value::Int(42));
  // Duplicate registration rejected; ForceRegister overrides.
  EXPECT_EQ(lib.Register("TWICE", nullptr).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace eds::value
