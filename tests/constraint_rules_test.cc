// Fig. 10 — integrity constraints declared in the rule language (§6.1).
#include "gtest/gtest.h"
#include "lera/lera.h"
#include "rewrite/engine.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class ConstraintRulesTest : public ::testing::Test {
 protected:
  ConstraintRulesTest() { registry_.InstallStandard(); }

  std::unique_ptr<rewrite::Engine> MakeEngine(const std::string& source) {
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    if (!prog.ok()) return nullptr;
    return std::make_unique<rewrite::Engine>(&db_.session.catalog(),
                                             &registry_, std::move(*prog));
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
};

TEST_F(ConstraintRulesTest, Fig10PointConstraintsParse) {
  // The paper's Fig. 10 rules, verbatim modulo concrete syntax: second-
  // order F over a value of type Point adds the ABS/ORD positivity
  // constraints. (The original's `x E (...)` membership is MEMBER.)
  auto unit = ruledsl::ParseRuleSource(R"(
    ic_point_abs : ?F(x) / ISA(x, Point) --> ?F(x) AND ABS(x) > 0 / ;
    ic_point_ord : ?F(x) / ISA(x, Point) --> ?F(x) AND ORD(x) > 0 / ;
    ic_category : ?F(x) / ISA(x, Category)
      --> ?F(x) AND MEMBER(x, SET('Comedy', 'Adventure', 'Science Fiction',
                               'Western')) / ;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->rules.size(), 3u);
  for (const auto& r : unit->rules) {
    EXPECT_TRUE(rewrite::ValidateRule(r, registry_).ok()) << r.ToString();
  }
}

TEST_F(ConstraintRulesTest, DomainConstraintAddsPredicate) {
  // MEMBER(x, c) where c is a SetCategory attribute gains the enumeration
  // domain; a block limit controls the growth (§4.2 control story).
  auto engine = MakeEngine(R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
    block(semantic, {ic_category_domain}, 4) ;
    seq({semantic}, 1) ;
  )");
  ASSERT_NE(engine, nullptr);
  // FILM.Categories ($1.3) has type SetCategory: the rule fires (the type
  // oracle resolves the attribute through the SEARCH scope).
  auto out = engine->Rewrite(
      P("SEARCH(LIST(RELATION('FILM')), MEMBER('Cartoon', $1.3), "
        "LIST($1.2))"));
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->stats.applications, 1u);
  std::string s = out->term->ToString();
  EXPECT_NE(s.find("'Cartoon'"), std::string::npos);
  EXPECT_NE(s.find("'Western'"), std::string::npos);
}

TEST_F(ConstraintRulesTest, DoesNotFireOnOtherTypes) {
  auto engine = MakeEngine(R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy')) / ;
    block(semantic, {ic_category_domain}, 8) ;
    seq({semantic}, 1) ;
  )");
  ASSERT_NE(engine, nullptr);
  // APPEARS_IN has no SetCategory column; Person.Firstname is SET OF CHAR.
  auto out = engine->Rewrite(
      P("SEARCH(LIST(RELATION('APPEARS_IN')), "
        "MEMBER('X', FIELD(VALUE($1.2), 'Firstname')), LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 0u) << out->term->ToString();
}

TEST_F(ConstraintRulesTest, InconsistencyDetectedEndToEnd) {
  // §6.1's chain: domain constraint + constant folding + absorption turn
  // MEMBER('Cartoon', Categories) into FALSE.
  InstallSemanticBuiltins(&registry_);
  std::string source = R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )" + std::string(SimplifyRuleSource()) +
                       SemanticMethodRuleSource() + R"(
    block(semantic, {ic_category_domain}, 4) ;
    block(simplify, {eval_fold_1, eval_fold_2, and_false_r, and_false_l,
                     and_true_r, and_true_l, simplify_qual}, inf) ;
    seq({semantic, simplify}, 1) ;
  )";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(
      P("SEARCH(LIST(RELATION('FILM')), MEMBER('Cartoon', $1.3), "
        "LIST($1.2))"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(
      out->term,
      P("SEARCH(LIST(RELATION('FILM')), FALSE, LIST($1.2))")))
      << out->term->ToString();
}

TEST_F(ConstraintRulesTest, ConsistentMembershipSurvives) {
  InstallSemanticBuiltins(&registry_);
  std::string source = R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )" + std::string(SimplifyRuleSource()) +
                       SemanticMethodRuleSource() + R"(
    block(semantic, {ic_category_domain}, 4) ;
    block(simplify, {eval_fold_1, eval_fold_2, and_false_r, and_false_l,
                     and_true_r, and_true_l, simplify_qual}, inf) ;
    seq({semantic, simplify}, 1) ;
  )";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  // 'Adventure' IS in the domain: the added conjunct folds to TRUE and is
  // absorbed, leaving the original qualification intact.
  auto out = engine->Rewrite(
      P("SEARCH(LIST(RELATION('FILM')), MEMBER('Adventure', $1.3), "
        "LIST($1.2))"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(
      out->term,
      P("SEARCH(LIST(RELATION('FILM')), MEMBER('Adventure', $1.3), "
        "LIST($1.2))")))
      << out->term->ToString();
}

TEST_F(ConstraintRulesTest, CatalogConstraintsFlowIntoDefaultOptimizer) {
  // The session declares the constraint (rule text in the catalog, §6.1);
  // the generated optimizer picks it up.
  EDS_ASSERT_OK(db_.session.AddConstraint("category_domain", R"(
    ic_category_domain :
      MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )"));
  auto result = db_.session.Query(
      "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
  // The optimized plan's qualification is literally FALSE.
  auto qual = lera::SearchQual(result->optimized_plan);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("FALSE")));
  EXPECT_EQ(result->exec_stats.rows_scanned, 0u);
}

TEST_F(ConstraintRulesTest, BadConstraintTextFailsOptimizerBuild) {
  EDS_ASSERT_OK(db_.session.AddConstraint("broken", "not a rule"));
  auto opt = db_.session.optimizer();
  EXPECT_FALSE(opt.ok());
}

}  // namespace
}  // namespace eds::rules
