// Golden soundness sweep over every shipped rule library: zero EDS-Sxxx
// errors always, and the warning/note set is pinned to (id, rule) pairs so
// a library edit that introduces a divergence — or silently loses expected
// coverage — fails loudly. The pinned findings are themselves documentation:
//   EDS-S004  union_collapse / or_to_union / intersect_self change row
//             multiplicities (set-oriented operators, bag-level difference)
//   EDS-S006  eq_self / le_self / ge_self diverge only when NULLs are
//             present (the libraries' documented two-valued semantics)
//   EDS-S010  transitivity_include needs collection-typed operands no
//             generated instance supplies
#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint/diagnostic.h"
#include "magic/magic.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "verify/verify.h"

namespace eds::verify {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

using IdRule = std::pair<std::string, std::string>;

std::vector<IdRule> Findings(const lint::LintReport& report) {
  std::vector<IdRule> out;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    out.emplace_back(d.id, d.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct LibraryGolden {
  const char* name;
  std::string source;
  std::vector<IdRule> expected;  // sorted (id, rule) pairs
};

class BuiltinVerifyTest : public ::testing::TestWithParam<LibraryGolden> {};

TEST_P(BuiltinVerifyTest, NoSoundnessErrorsAndPinnedWarnings) {
  VerifySummary summary;
  lint::LintReport report =
      VerifyLibrary(GetParam().source, Registry(), {}, &summary);
  EXPECT_EQ(report.error_count(), 0u)
      << GetParam().name << ":\n"
      << report.ToString();
  EXPECT_EQ(Findings(report), GetParam().expected)
      << GetParam().name << ":\n"
      << report.ToString();
  EXPECT_GT(summary.rules, 0u);
  for (const lint::Diagnostic& d : report.diagnostics()) {
    EXPECT_TRUE(d.loc.known()) << GetParam().name << ": " << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shipped, BuiltinVerifyTest,
    ::testing::Values(
        LibraryGolden{"merging",
                      rules::MergingRuleSource(),
                      {{kVerifyMultiplicity, "union_collapse"}}},
        LibraryGolden{"permutation", rules::PermutationRuleSource(), {}},
        LibraryGolden{"fixpoint", rules::FixpointRuleSource(), {}},
        LibraryGolden{"simplify",
                      rules::SimplifyRuleSource(),
                      {{kVerifyNullOnly, "eq_self"},
                       {kVerifyNullOnly, "ge_self"},
                       {kVerifyNullOnly, "le_self"}}},
        LibraryGolden{"implicit_knowledge",
                      rules::ImplicitKnowledgeRuleSource(),
                      {{kVerifyNoCoverage, "transitivity_include"}}},
        LibraryGolden{"semantic_methods",
                      rules::SemanticMethodRuleSource(),
                      {}},
        LibraryGolden{"extensions",
                      rules::ExtensionRuleSource(),
                      {{kVerifyMultiplicity, "intersect_self"},
                       {kVerifyMultiplicity, "or_to_union"}}}),
    [](const ::testing::TestParamInfo<LibraryGolden>& info) {
      return info.param.name;
    });

// The acceptance budget from the issue: the full built-in sweep finishes
// well under 30 seconds in a default build. Sanitizer builds carry their
// own multipliers, so the wall-clock assertion only applies unsanitized.
TEST(BuiltinVerifySweep, FullSweepFinishesWithinBudget) {
  const std::string sources[] = {
      rules::MergingRuleSource(),       rules::PermutationRuleSource(),
      rules::FixpointRuleSource(),      rules::SimplifyRuleSource(),
      rules::ImplicitKnowledgeRuleSource(),
      rules::SemanticMethodRuleSource(), rules::ExtensionRuleSource(),
  };
  auto start = std::chrono::steady_clock::now();
  size_t errors = 0;
  for (const std::string& src : sources) {
    errors += VerifyLibrary(src, Registry()).error_count();
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(errors, 0u);
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !defined(EDS_SANITIZER_BUILD)
  EXPECT_LT(elapsed, 30000) << "built-in verification took " << elapsed
                            << "ms";
#else
  (void)elapsed;
#endif
}

}  // namespace
}  // namespace eds::verify
