// Fig. 11 — implicit semantic knowledge: transitivity, equality
// substitution; plus the CLOSE_PREDICATES method the default optimizer uses
// for the same inferences.
#include "rules/semantic.h"

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "rewrite/engine.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class ImplicitRulesTest : public ::testing::Test {
 protected:
  ImplicitRulesTest() {
    registry_.InstallStandard();
    InstallSemanticBuiltins(&registry_);
  }

  std::unique_ptr<rewrite::Engine> MakeEngine(const std::string& source) {
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    if (!prog.ok()) return nullptr;
    return std::make_unique<rewrite::Engine>(&db_.session.catalog(),
                                             &registry_, std::move(*prog));
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
};

TEST_F(ImplicitRulesTest, Fig11RulesCompile) {
  auto prog = ruledsl::CompileRuleSource(ImplicitKnowledgeRuleSource(),
                                         registry_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_EQ(prog->blocks.size(), 1u);
  EXPECT_EQ(prog->blocks[0].rules.size(), 4u);
}

TEST_F(ImplicitRulesTest, TransitivityOfEquality) {
  // Fig. 11 (1): x=y AND y=z gains x=z. Constraint-addition rules grow the
  // qualification and are controlled by a finite block budget — exactly the
  // §4.2/§7 story ("such rules may lead to long processing if the
  // application limit is too high"). One condition check suffices here.
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {transitivity_eq}, 1) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(P("($1.1 = $2.1) AND ($2.1 = $3.1)"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 1u);
  EXPECT_TRUE(term::Equals(
      out->term,
      P("(($1.1 = $2.1) AND ($2.1 = $3.1)) AND ($1.1 = $3.1)")));
}

TEST_F(ImplicitRulesTest, ZeroLimitDisablesGrowthRules) {
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {transitivity_eq}, 0) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(P("($1.1 = $2.1) AND ($2.1 = $3.1)"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 0u);
}

TEST_F(ImplicitRulesTest, GrowthRulesBoundedBySafetyValve) {
  // With saturation the sibling-invisible HAS_CONJUNCT guard cannot stop
  // re-derivation; the engine's safety valve must contain it (§7's
  // non-termination discussion).
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {transitivity_eq}, inf) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  rewrite::RewriteOptions options;
  options.max_applications = 10;
  auto out = engine->Rewrite(P("($1.1 = $2.1) AND ($2.1 = $3.1)"), options);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->stats.safety_stop);
  EXPECT_LE(out->stats.applications, 10u);
}

TEST_F(ImplicitRulesTest, TransitivityOfInclude) {
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {transitivity_include}, 1) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  // Subjects are literal SET terms, so the ISA(…, SET) constraints hold.
  auto out = engine->Rewrite(
      P("INCLUDE(SET(1), SET(1, 2)) AND INCLUDE(SET(1, 2), SET(1, 2, 3))"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 1u);
  std::string s = out->term->ToString();
  EXPECT_NE(s.find("INCLUDE(SET(1), SET(1, 2, 3))"), std::string::npos) << s;
}

TEST_F(ImplicitRulesTest, IncludeRuleGatedByIsaSet) {
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {transitivity_include}, 8) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  // LIST operands: the ISA(x, SET) constraints reject the match.
  auto out = engine->Rewrite(
      P("INCLUDE(LIST(1), LIST(1, 2)) AND INCLUDE(LIST(1, 2), "
        "LIST(1, 2, 3))"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 0u);
}

TEST_F(ImplicitRulesTest, EqualitySubstitution) {
  // Fig. 11 (2): (x = y) AND p(x) gains p(y).
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {eq_subst_1}, 1) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(P("($1.1 = $2.1) AND ISEMPTY($1.1)"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 1u);
  EXPECT_TRUE(term::Equals(
      out->term,
      P("(($1.1 = $2.1) AND ISEMPTY($1.1)) AND ISEMPTY($2.1)")));
}

TEST_F(ImplicitRulesTest, EqualitySubstitutionBinary) {
  std::string source = std::string(ImplicitKnowledgeRuleSource()) +
                       "block(b, {eq_subst_2}, 1) ;\n"
                       "seq({b}, 1) ;";
  auto engine = MakeEngine(source);
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(P("($1.1 = $2.1) AND ($1.1 > 5)"));
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->stats.applications, 1u);
  std::string s = out->term->ToString();
  EXPECT_NE(s.find("($2.1 > 5)"), std::string::npos) << s;
}

// ---- the CLOSE_PREDICATES method (robust closure for the pipeline) ----

class ClosePredicatesTest : public ImplicitRulesTest {
 protected:
  ClosePredicatesTest() {
    engine_ = MakeEngine(std::string(SemanticMethodRuleSource()) +
                         "block(b, {close_predicates}, inf) ;\n"
                         "seq({b}, 1) ;");
  }
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(ClosePredicatesTest, PropagatesConstantsThroughEqualities) {
  auto out = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('BEATS'), RELATION('BEATS')), "
        "(($1.2 = $2.1) AND ($2.1 = 5)), LIST($1.1, $2.2))"));
  ASSERT_TRUE(out.ok());
  auto qual = lera::SearchQual(out->term);
  ASSERT_TRUE(qual.ok());
  // Derived: $1.2 = 5.
  bool found = false;
  for (const TermRef& c : term::Conjuncts(*qual)) {
    if (term::Equals(c, P("$1.2 = 5"))) found = true;
  }
  EXPECT_TRUE(found) << (*qual)->ToString();
  // Fires once only (nothing further derivable).
  auto again = engine_->Rewrite(out->term);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.applications, 0u);
}

TEST_F(ClosePredicatesTest, ChainOfThreeEqualities) {
  auto out = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('DOMINATE')), ((($1.1 = $1.2) AND "
        "($1.2 = $1.3)) AND ($1.3 = 7)), LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  auto qual = lera::SearchQual(out->term);
  ASSERT_TRUE(qual.ok());
  int derived = 0;
  for (const TermRef& c : term::Conjuncts(*qual)) {
    if (term::Equals(c, P("$1.1 = 7")) || term::Equals(c, P("$1.2 = 7"))) {
      ++derived;
    }
  }
  EXPECT_EQ(derived, 2) << (*qual)->ToString();
}

TEST_F(ClosePredicatesTest, DetectsEqualityInconsistency) {
  auto out = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('BEATS')), (($1.1 = 3) AND ($1.1 = 4)), "
        "LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  auto qual = lera::SearchQual(out->term);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("FALSE"))) << (*qual)->ToString();
}

TEST_F(ClosePredicatesTest, DetectsComparisonContradictions) {
  // x < y with x and y in the same equality class.
  auto out = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('BEATS')), (($1.1 = $1.2) AND "
        "($1.1 < $1.2)), LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  auto qual = lera::SearchQual(out->term);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("FALSE"))) << (*qual)->ToString();
  // Constant bound violation: x = 3 AND x > 5.
  auto out2 = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('BEATS')), (($1.1 = 3) AND ($1.1 > 5)), "
        "LIST($1.1))"));
  ASSERT_TRUE(out2.ok());
  auto qual2 = lera::SearchQual(out2->term);
  ASSERT_TRUE(qual2.ok());
  EXPECT_TRUE(term::Equals(*qual2, P("FALSE"))) << (*qual2)->ToString();
}

TEST_F(ClosePredicatesTest, NoDerivationNoFiring) {
  auto out = engine_->Rewrite(
      P("SEARCH(LIST(RELATION('BEATS')), ($1.1 = $1.2), LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 0u);
}

TEST_F(ClosePredicatesTest, ClosedPlanEquivalent) {
  const char* query =
      "SEARCH(LIST(RELATION('BEATS'), RELATION('BEATS')), "
      "(($1.2 = $2.1) AND ($2.1 = 5)), LIST($1.1, $2.2))";
  TermRef raw = P(query);
  auto out = engine_->Rewrite(raw);
  ASSERT_TRUE(out.ok());
  auto raw_rows = db_.session.Run(raw);
  auto closed_rows = db_.session.Run(out->term);
  ASSERT_TRUE(raw_rows.ok());
  ASSERT_TRUE(closed_rows.ok());
  testutil::ExpectSameRows(*raw_rows, *closed_rows);
}

}  // namespace
}  // namespace eds::rules
