#include "types/registry.h"
#include "types/type.h"

#include "gtest/gtest.h"

namespace eds::types {
namespace {

TEST(TypeTest, ScalarFactoriesAndNames) {
  EXPECT_EQ(Type::MakeScalar(TypeKind::kInt)->ToString(), "INT");
  EXPECT_EQ(Type::MakeScalar(TypeKind::kChar)->ToString(), "CHAR");
  EXPECT_TRUE(Type::MakeScalar(TypeKind::kNumeric)->is_numeric());
  EXPECT_FALSE(Type::MakeScalar(TypeKind::kBool)->is_numeric());
}

TEST(TypeTest, CollectionHierarchyOfFig1) {
  // Fig. 1: set/bag/list/array are subtypes of collection.
  TypeRef collection = Type::MakeCollection(TypeKind::kCollection, nullptr);
  for (TypeKind k : {TypeKind::kSet, TypeKind::kBag, TypeKind::kList,
                     TypeKind::kArray}) {
    TypeRef c = Type::MakeCollection(k, Type::MakeScalar(TypeKind::kInt));
    EXPECT_TRUE(c->is_collection());
    EXPECT_TRUE(Isa(c, collection)) << c->ToString();
  }
  // But not between each other.
  TypeRef set = Type::MakeCollection(TypeKind::kSet, nullptr);
  TypeRef bag = Type::MakeCollection(TypeKind::kBag, nullptr);
  EXPECT_FALSE(Isa(set, bag));
  EXPECT_FALSE(Isa(bag, set));
}

TEST(TypeTest, CollectionElementCovariance) {
  TypeRef set_int =
      Type::MakeCollection(TypeKind::kSet, Type::MakeScalar(TypeKind::kInt));
  TypeRef set_num = Type::MakeCollection(TypeKind::kSet,
                                         Type::MakeScalar(TypeKind::kNumeric));
  EXPECT_TRUE(Isa(set_int, set_num));
  EXPECT_FALSE(Isa(set_num, set_int));
}

TEST(TypeTest, NumericWidening) {
  TypeRef i = Type::MakeScalar(TypeKind::kInt);
  TypeRef r = Type::MakeScalar(TypeKind::kReal);
  TypeRef n = Type::MakeScalar(TypeKind::kNumeric);
  EXPECT_TRUE(Isa(i, n));
  EXPECT_TRUE(Isa(i, r));
  EXPECT_TRUE(Isa(r, n));
  EXPECT_FALSE(Isa(n, i));
  EXPECT_FALSE(Isa(r, i));
}

TEST(TypeTest, AnyIsTop) {
  TypeRef any = Type::MakeScalar(TypeKind::kAny);
  EXPECT_TRUE(Isa(Type::MakeScalar(TypeKind::kInt), any));
  EXPECT_TRUE(Isa(Type::MakeCollection(TypeKind::kSet, nullptr), any));
}

TEST(TypeTest, EnumerationIsaChar) {
  TypeRef cat = Type::MakeEnumeration("Category", {"Comedy", "Western"});
  EXPECT_TRUE(Isa(cat, Type::MakeScalar(TypeKind::kChar)));
  EXPECT_FALSE(Isa(Type::MakeScalar(TypeKind::kChar), cat));
  EXPECT_EQ(cat->enum_values().size(), 2u);
}

TEST(TypeTest, ObjectSubtypeChain) {
  TypeRef person = Type::MakeObject(
      "Person", {{"Name", Type::MakeScalar(TypeKind::kChar)}}, nullptr);
  TypeRef actor = Type::MakeObject(
      "Actor", {{"Salary", Type::MakeScalar(TypeKind::kNumeric)}}, person);
  TypeRef star = Type::MakeObject("Star", {}, actor);
  EXPECT_TRUE(Isa(actor, person));
  EXPECT_TRUE(Isa(star, person));
  EXPECT_TRUE(Isa(star, actor));
  EXPECT_FALSE(Isa(person, actor));
}

TEST(TypeTest, ObjectFieldLookupWalksSupertypes) {
  TypeRef person = Type::MakeObject(
      "Person", {{"Name", Type::MakeScalar(TypeKind::kChar)}}, nullptr);
  TypeRef actor = Type::MakeObject(
      "Actor", {{"Salary", Type::MakeScalar(TypeKind::kNumeric)}}, person);
  ASSERT_NE(actor->FindField("Salary"), nullptr);
  ASSERT_NE(actor->FindField("name"), nullptr);  // case-insensitive, inherited
  EXPECT_EQ(actor->FindField("name")->type->kind(), TypeKind::kChar);
  EXPECT_EQ(actor->FindField("Missing"), nullptr);
}

TEST(TypeTest, TupleWidthSubtyping) {
  TypeRef narrow = Type::MakeTuple({{"A", Type::MakeScalar(TypeKind::kInt)}});
  TypeRef wide =
      Type::MakeTuple({{"A", Type::MakeScalar(TypeKind::kInt)},
                       {"B", Type::MakeScalar(TypeKind::kChar)}});
  EXPECT_TRUE(Isa(wide, narrow));
  EXPECT_FALSE(Isa(narrow, wide));
}

TEST(TypeTest, SameTypeStructuralVsNominal) {
  TypeRef t1 = Type::MakeTuple({{"A", Type::MakeScalar(TypeKind::kInt)}});
  TypeRef t2 = Type::MakeTuple({{"a", Type::MakeScalar(TypeKind::kInt)}});
  EXPECT_TRUE(SameType(t1, t2));  // field names case-insensitive
  TypeRef o1 = Type::MakeObject("A", {}, nullptr);
  TypeRef o2 = Type::MakeObject("B", {}, nullptr);
  EXPECT_FALSE(SameType(o1, o2));  // nominal
}

TEST(TypeTest, ToStringNestedCollections) {
  TypeRef t = Type::MakeCollection(
      TypeKind::kList,
      Type::MakeTuple({{"Pros", Type::MakeScalar(TypeKind::kInt)},
                       {"Cons", Type::MakeScalar(TypeKind::kInt)}}));
  EXPECT_EQ(t->ToString(), "LIST OF TUPLE (Pros : INT, Cons : INT)");
}

TEST(RegistryTest, BuiltinsPreRegistered) {
  TypeRegistry reg;
  for (const char* name :
       {"INT", "INTEGER", "REAL", "NUMERIC", "CHAR", "BOOLEAN", "COLLECTION",
        "ANY"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
  EXPECT_FALSE(reg.Contains("Actor"));
}

TEST(RegistryTest, LookupIsCaseInsensitive) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.RegisterEnumeration("Category", {"Comedy"}).ok());
  EXPECT_TRUE(reg.Contains("CATEGORY"));
  EXPECT_TRUE(reg.Contains("category"));
  ASSERT_TRUE(reg.Find("CaTeGoRy").ok());
}

TEST(RegistryTest, DuplicateRejected) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.RegisterTuple("P", {}).ok());
  EXPECT_EQ(reg.RegisterTuple("p", {}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, ObjectRequiresObjectSupertype) {
  TypeRegistry reg;
  auto bad = reg.RegisterObject("X", {}, reg.int_type());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(RegistryTest, AliasKeepsStructureAndName) {
  TypeRegistry reg;
  TypeRef list_char =
      Type::MakeCollection(TypeKind::kList, reg.char_type());
  ASSERT_TRUE(reg.RegisterAlias("Text", list_char).ok());
  auto found = reg.Find("TEXT");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->kind(), TypeKind::kList);
  EXPECT_EQ((*found)->name(), "Text");
  EXPECT_TRUE(SameType(*found, list_char));
}

TEST(RegistryTest, EmptyEnumerationRejected) {
  TypeRegistry reg;
  EXPECT_EQ(reg.RegisterEnumeration("E", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryTest, NamesSorted) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.RegisterTuple("Zz", {}).ok());
  auto names = reg.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace eds::types
