#ifndef EDS_TESTS_LERA_CORPUS_H_
#define EDS_TESTS_LERA_CORPUS_H_

// Shared LERA plan corpus over the soundness verifier's corner databases
// (src/verify/instance.h): V0/V1/V2 (A, B), VE (empty), VS (S CHAR, N),
// VEDGE/CLO. Exercises comparisons against NULL (three-valued), duplicate
// rows (bag vs set semantics), empty inputs, strings, explicit operators,
// and a transitive-closure fixpoint. Used by the columnar/row differential
// suite (vec_diff_test.cc) and the term print->parse round-trip property
// suite (term_roundtrip_test.cc).

namespace eds::testutil {

inline constexpr const char* kLeraCorpus[] = {
    // Single-input scans: comparisons, AND/OR/NOT, constant quals.
    "SEARCH(LIST(RELATION('V0')), TRUE, LIST($1.1, $1.2))",
    "SEARCH(LIST(RELATION('V0')), FALSE, LIST($1.1))",
    "SEARCH(LIST(RELATION('V0')), ($1.1 < $1.2), LIST($1.1, $1.2))",
    "SEARCH(LIST(RELATION('V0')), (($1.1 < $1.2) AND ($1.1 = $1.1)), "
    "LIST($1.2, $1.1))",
    "SEARCH(LIST(RELATION('V1')), (($1.1 = 1) OR ($1.2 = 2)), "
    "LIST($1.1, $1.2))",
    "SEARCH(LIST(RELATION('V1')), (NOT ($1.1 = 1)), LIST($1.1))",
    // Equi joins (hash kernel), residual conjuncts, pure cross joins.
    "SEARCH(LIST(RELATION('V0'), RELATION('V1')), ($1.2 = $2.1), "
    "LIST($1.1, $2.2))",
    "SEARCH(LIST(RELATION('V0'), RELATION('V1')), "
    "(($1.2 = $2.1) AND ($1.1 < $2.2)), LIST($1.1, $2.2))",
    "SEARCH(LIST(RELATION('V0'), RELATION('V1')), ($1.1 < $2.2), "
    "LIST($1.1, $2.2))",
    "SEARCH(LIST(RELATION('V0'), RELATION('V1'), RELATION('V2')), "
    "(($1.2 = $2.1) AND ($2.2 = $3.1)), LIST($1.1, $3.2))",
    "SEARCH(LIST(RELATION('V0'), RELATION('V1')), "
    "(($1.1 = $2.1) OR ($1.2 = $2.2)), LIST($1.1, $2.1))",
    // Empty-input corners.
    "SEARCH(LIST(RELATION('VE')), ($1.1 = 1), LIST($1.1))",
    "SEARCH(LIST(RELATION('V0'), RELATION('VE')), ($1.1 = $2.1), "
    "LIST($1.1, $2.2))",
    // Strings.
    "SEARCH(LIST(RELATION('VS')), ($1.2 > 1), LIST($1.1, $1.2))",
    "SEARCH(LIST(RELATION('VS'), RELATION('VS')), ($1.1 = $2.1), "
    "LIST($1.1, $1.2, $2.2))",
    // Explicit operators: FILTER / PROJECT / JOIN / DEDUP / set ops.
    "FILTER(RELATION('V0'), ($1.1 > 1))",
    "PROJECT(RELATION('V0'), LIST($1.2, $1.1))",
    "JOIN(RELATION('V0'), RELATION('V1'), ($1.2 = $2.1))",
    "JOIN(RELATION('V0'), RELATION('V1'), ($1.1 < $2.1))",
    "DEDUP(SEARCH(LIST(RELATION('V0')), TRUE, LIST($1.1)))",
    "DEDUP(RELATION('V0'))",
    "UNION(SET(RELATION('V0'), RELATION('V1')))",
    "DIFFERENCE(RELATION('V0'), RELATION('V1'))",
    "INTERSECT(RELATION('V0'), RELATION('V1'))",
    // Fixpoint: transitive closure over the verifier's graph, semi-naive
    // deltas flowing through the vectorized SEARCH.
    "FIX(RELATION('CLO'), UNION(SET("
    "SEARCH(LIST(RELATION('VEDGE')), TRUE, LIST($1.1, $1.2)), "
    "SEARCH(LIST(RELATION('CLO'), RELATION('CLO')), ($1.2 = $2.1), "
    "LIST($1.1, $2.2)))))",
};

}  // namespace eds::testutil

#endif  // EDS_TESTS_LERA_CORPUS_H_
