// The serving layer: fingerprinting, the sharded plan cache, admission
// control, and the cached query pipeline. Deterministic tests run with
// workers=0 and pump the queue on the test thread; the threaded paths live
// in srv_stress_test.cc.
#include <sstream>

#include "esql/parser.h"
#include "esql/translator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "srv/fingerprint.h"
#include "srv/plan_cache.h"
#include "srv/service.h"
#include "term/term.h"
#include "testutil.h"

namespace eds::srv {
namespace {

using value::Value;

// Translates one SELECT against the FilmDb catalog without rewriting.
term::TermRef RawPlan(exec::Session* session, const std::string& esql) {
  auto stmt = esql::ParseStatement(esql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  esql::Translator translator(&session->catalog());
  auto plan = translator.TranslateQuery(*stmt->select);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// ---------------- fingerprinting ----------------

TEST(FingerprintTest, LiteralVariantsShareOneTemplate) {
  testutil::FilmDb db;
  term::TermRef a =
      RawPlan(&db.session, "SELECT Winner FROM BEATS WHERE Winner > 7");
  term::TermRef b =
      RawPlan(&db.session, "SELECT Winner FROM BEATS WHERE Winner > 3");
  Fingerprint fa = FingerprintPlan(a);
  Fingerprint fb = FingerprintPlan(b);
  ASSERT_TRUE(fa.parameterized);
  ASSERT_TRUE(fb.parameterized);
  // Hash-consing makes structurally identical templates pointer-identical.
  EXPECT_EQ(fa.tmpl.get(), fb.tmpl.get());
  ASSERT_EQ(fa.params.size(), 1u);
  ASSERT_EQ(fb.params.size(), 1u);
  EXPECT_EQ(fa.params[0]->constant(), Value::Int(7));
  EXPECT_EQ(fb.params[0]->constant(), Value::Int(3));
}

TEST(FingerprintTest, StructuralConstantsStayInline) {
  testutil::FilmDb db;
  term::TermRef raw =
      RawPlan(&db.session, "SELECT Winner FROM BEATS WHERE Winner > 7");
  Fingerprint fp = FingerprintPlan(raw);
  std::string tmpl = fp.tmpl->ToString();
  // The relation name survives; the literal became a $CQ parameter.
  EXPECT_NE(tmpl.find("BEATS"), std::string::npos) << tmpl;
  EXPECT_NE(tmpl.find(kParamPrefix), std::string::npos) << tmpl;
  EXPECT_EQ(tmpl.find("7"), std::string::npos) << tmpl;
}

TEST(FingerprintTest, DistinctOccurrencesGetDistinctParameters) {
  testutil::FilmDb db;
  // Two occurrences of the same literal value must not alias: a rule
  // firing off "these two constants are equal" would bake that accident
  // into the template.
  term::TermRef raw = RawPlan(
      &db.session, "SELECT Winner FROM BEATS WHERE Winner > 5 AND Loser > 5");
  Fingerprint fp = FingerprintPlan(raw);
  ASSERT_EQ(fp.params.size(), 2u);
  std::string tmpl = fp.tmpl->ToString();
  EXPECT_NE(tmpl.find("$CQ0"), std::string::npos) << tmpl;
  EXPECT_NE(tmpl.find("$CQ1"), std::string::npos) << tmpl;
}

TEST(FingerprintTest, InstantiateRoundTripsToRawPlan) {
  testutil::FilmDb db;
  term::TermRef raw = RawPlan(
      &db.session,
      "SELECT Title FROM FILM WHERE Numf > 1 AND Title <> 'Zorba'");
  Fingerprint fp = FingerprintPlan(raw);
  ASSERT_TRUE(fp.parameterized);
  auto back = InstantiatePlan(fp.tmpl, fp.params);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->get(), raw.get());  // hash-consed: same node
}

TEST(FingerprintTest, RecursivePlansAreLiteralSensitive) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  term::TermRef raw =
      RawPlan(&db.session, "SELECT W FROM BETTER_THAN WHERE W = 1");
  Fingerprint fp = FingerprintPlan(raw);
  // FIX plans keep literals inline: magic-set adornment depends on them.
  EXPECT_FALSE(fp.parameterized);
  EXPECT_EQ(fp.tmpl.get(), raw.get());
  EXPECT_TRUE(fp.params.empty());
}

TEST(FingerprintTest, InstantiateRejectsMissingParameter) {
  // A malformed cache entry: normal form mentions $CQ1 but only one
  // parameter was extracted. Callers treat this as a miss.
  term::TermRef nf = term::Term::Apply(
      "EQ", {term::Term::Var("$CQ0"), term::Term::Var("$CQ1")});
  term::TermList params = {term::Term::Constant(Value::Int(1))};
  auto r = InstantiatePlan(nf, params);
  EXPECT_FALSE(r.ok());
}

// ---------------- plan cache ----------------

PlanCache::Key MakeKey(const term::TermRef& tmpl, uint64_t cat = 0,
                       uint64_t rules = 0) {
  return PlanCache::Key{tmpl, cat, rules};
}

term::TermRef T(int i) {
  return term::Term::Apply("PLAN", {term::Term::Constant(Value::Int(i))});
}

TEST(PlanCacheTest, HitAfterInsertMissBefore) {
  PlanCache cache;
  term::TermRef tmpl = T(1);
  EXPECT_FALSE(cache.Lookup(MakeKey(tmpl)).has_value());
  cache.Insert(MakeKey(tmpl), T(100));
  auto hit = cache.Lookup(MakeKey(tmpl));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get(), T(100).get());
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.nodes, 0u);
}

TEST(PlanCacheTest, EpochMismatchMisses) {
  PlanCache cache;
  term::TermRef tmpl = T(1);
  cache.Insert(MakeKey(tmpl, /*cat=*/1, /*rules=*/1), T(100));
  EXPECT_TRUE(cache.Lookup(MakeKey(tmpl, 1, 1)).has_value());
  // DDL bumped the catalog epoch: the entry stops matching.
  EXPECT_FALSE(cache.Lookup(MakeKey(tmpl, 2, 1)).has_value());
  // A rule-library change does the same.
  EXPECT_FALSE(cache.Lookup(MakeKey(tmpl, 1, 2)).has_value());
}

TEST(PlanCacheTest, LruEvictionUnderNodeCeiling) {
  PlanCache::Config config;
  config.shards = 1;  // one shard so the ceiling applies to all entries
  config.max_nodes = 12;  // each entry charges 2 + 2 = 4 nodes
  PlanCache cache(config);
  cache.Insert(MakeKey(T(1)), T(101));
  cache.Insert(MakeKey(T(2)), T(102));
  cache.Insert(MakeKey(T(3)), T(103));
  // Touch T(1) so T(2) is the least recently used.
  EXPECT_TRUE(cache.Lookup(MakeKey(T(1))).has_value());
  cache.Insert(MakeKey(T(4)), T(104));
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.nodes, 12u);
  EXPECT_FALSE(cache.Lookup(MakeKey(T(2))).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(T(1))).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(T(4))).has_value());
}

TEST(PlanCacheTest, OversizedEntryStillCached) {
  PlanCache::Config config;
  config.shards = 1;
  config.max_nodes = 1;  // smaller than any entry
  PlanCache cache(config);
  cache.Insert(MakeKey(T(1)), T(101));
  // The lone entry survives even though it exceeds the budget.
  EXPECT_TRUE(cache.Lookup(MakeKey(T(1))).has_value());
}

TEST(PlanCacheTest, InsertRefreshesExistingKey) {
  PlanCache cache;
  cache.Insert(MakeKey(T(1)), T(101));
  cache.Insert(MakeKey(T(1)), T(102));  // racing double-miss refresh
  auto hit = cache.Lookup(MakeKey(T(1)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get(), T(102).get());
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(PlanCacheTest, InvalidateAllDropsEverything) {
  PlanCache cache;
  cache.Insert(MakeKey(T(1)), T(101));
  cache.Insert(MakeKey(T(2)), T(102));
  cache.InvalidateAll();
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_FALSE(cache.Lookup(MakeKey(T(1))).has_value());
}

TEST(PlanCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  PlanCache::Config config;
  config.shards = 5;
  PlanCache cache(config);
  EXPECT_EQ(cache.shard_count(), 8u);
  config.shards = 0;
  PlanCache one(config);
  EXPECT_EQ(one.shard_count(), 1u);
}

// ---------------- admission policy ----------------

TEST(DeriveLimitsTest, IdleQueueGrantsFullBudget) {
  gov::GovernorLimits base;
  base.deadline_ms = 1000;
  base.max_term_nodes = 100000;
  base.max_rows = 5000;
  gov::GovernorLimits got = DeriveLimits(base, 0, 64, true);
  EXPECT_EQ(got.deadline_ms, 1000u);
  EXPECT_EQ(got.max_term_nodes, 100000u);
  EXPECT_EQ(got.max_rows, 5000u);
  EXPECT_EQ(got.cancel, nullptr);
}

TEST(DeriveLimitsTest, SaturatedQueueGrantsQuarterBudget) {
  gov::GovernorLimits base;
  base.deadline_ms = 1000;
  base.max_term_nodes = 100000;
  base.max_rows = 5000;
  gov::GovernorLimits got = DeriveLimits(base, 64, 64, true);
  EXPECT_EQ(got.deadline_ms, 250u);
  EXPECT_EQ(got.max_term_nodes, 25000u);
  // Row ceiling is a result-size bound, not a load knob.
  EXPECT_EQ(got.max_rows, 5000u);
}

TEST(DeriveLimitsTest, UnlimitedStaysUnlimitedAndAdaptiveCanBeOff) {
  gov::GovernorLimits base;  // all zero: unlimited
  gov::GovernorLimits got = DeriveLimits(base, 64, 64, true);
  EXPECT_EQ(got.deadline_ms, 0u);
  EXPECT_EQ(got.max_term_nodes, 0u);
  base.deadline_ms = 100;
  got = DeriveLimits(base, 64, 64, false);
  EXPECT_EQ(got.deadline_ms, 100u);  // verbatim when not adaptive
}

// ---------------- the service (workers=0, pumped) ----------------

ServiceOptions PumpedOptions() {
  ServiceOptions options;
  options.workers = 0;
  return options;
}

Result<ServedQuery> PumpOne(QueryService* service,
                            std::future<Result<ServedQuery>> future) {
  EXPECT_TRUE(service->ServeQueuedForTesting());
  return future.get();
}

TEST(QueryServiceTest, ServesSameRowsAsDirectSession) {
  testutil::FilmDb db;
  const char* q = "SELECT Winner, Loser FROM BEATS WHERE Winner > 7";
  auto direct = db.session.Query(q);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  auto served = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->result.columns, direct->columns);
  EXPECT_EQ(served->result.rows, direct->rows);
  EXPECT_FALSE(served->cache_hit);
  EXPECT_TRUE(served->cache_stored);
  service.Stop();
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(QueryServiceTest, WarmCacheSkipsRewriteAndStaysCorrect) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());

  auto first = PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 7"));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->result.phase_times.rewrite_ns, 0u);

  // Different literal, same template: a hit, with the *right* answer for
  // the new literal.
  auto second = PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 3"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.phase_times.rewrite_ns, 0u);
  auto direct = db.session.Query("SELECT Winner FROM BEATS WHERE Winner > 3");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(second->result.rows, direct->rows);
  EXPECT_NE(second->result.rows, first->result.rows);

  PlanCache::Stats cs = service.cache().GetStats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_GE(cs.misses, 1u);
}

TEST(QueryServiceTest, DdlBumpsEpochAndInvalidatesLazily) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  auto first = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->cache_stored);

  // With workers=0 nothing runs concurrently, so DDL between pumps is
  // within the service's concurrency contract.
  uint64_t epoch_before = db.session.catalog().epoch();
  EDS_ASSERT_OK(db.session.ExecuteScript("CREATE TABLE EPOCH_T (A : INT);"));
  EXPECT_GT(db.session.catalog().epoch(), epoch_before);

  auto second = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);  // stale entry stopped matching
  EXPECT_EQ(second->result.rows, first->result.rows);
}

TEST(QueryServiceTest, QueueFullShedsLoad) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.queue_capacity = 2;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  auto f1 = service.Submit("SELECT Winner FROM BEATS");
  auto f2 = service.Submit("SELECT Loser FROM BEATS");
  auto f3 = service.Submit("SELECT Winner FROM BEATS");  // shed
  auto r3 = f3.get();
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r3.status().message().find("load shed"), std::string::npos);
  while (service.ServeQueuedForTesting()) {
  }
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
}

TEST(QueryServiceTest, AdmissionScalesGrantedBudgetByLoad) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.queue_capacity = 2;
  options.base_limits.deadline_ms = 1000;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  auto f1 = service.Submit("SELECT Winner FROM BEATS");  // queue depth 0
  auto f2 = service.Submit("SELECT Winner FROM BEATS");  // queue depth 1
  while (service.ServeQueuedForTesting()) {
  }
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->granted.deadline_ms, 1000u);
  EXPECT_LT(r2->granted.deadline_ms, 1000u);  // admitted under load
}

TEST(QueryServiceTest, SubmitBeforeStartAndAfterStopFails) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EXPECT_FALSE(service.Submit("SELECT Winner FROM BEATS").get().ok());
  EDS_ASSERT_OK(service.Start());
  service.Stop();
  EXPECT_FALSE(service.Submit("SELECT Winner FROM BEATS").get().ok());
}

TEST(QueryServiceTest, StopDrainsQueuedWorkWithError) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  auto f = service.Submit("SELECT Winner FROM BEATS");
  service.Stop();
  auto r = f.get();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("stopping"), std::string::npos);
}

TEST(QueryServiceTest, CancelledWhileQueuedFailsFast) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  gov::CancelToken cancel;
  auto f = service.Submit("SELECT Winner FROM BEATS", &cancel);
  cancel.Cancel();
  auto r = PumpOne(&service, std::move(f));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("cancelled"), std::string::npos);
}

TEST(QueryServiceTest, CacheDisabledAlwaysRewrites) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.use_cache = false;
  options.use_l0 = false;  // L0 would short-circuit the repeat below
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  for (int i = 0; i < 2; ++i) {
    auto r = PumpOne(&service,
                     service.Submit("SELECT Winner FROM BEATS WHERE "
                                    "Winner > 7"));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->cache_hit);
    EXPECT_TRUE(r->cache_bypass);
    EXPECT_GT(r->result.phase_times.rewrite_ns, 0u);
  }
  PlanCache::Stats cs = service.cache().GetStats();
  EXPECT_EQ(cs.hits + cs.misses + cs.inserts, 0u);
}

TEST(QueryServiceTest, RecursiveQueriesCacheOnExactMatch) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  ServiceOptions recursive_options = PumpedOptions();
  recursive_options.use_l0 = false;  // exercise the structural cache layer
  QueryService service(&db.session, recursive_options);
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT W FROM BETTER_THAN WHERE W = 1";
  auto first = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  // Same literal: exact-match hit (FIX plans skip parameterization).
  auto second = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.rows, first->result.rows);
  // Different literal: distinct template, a miss.
  auto third = PumpOne(
      &service, service.Submit("SELECT W FROM BETTER_THAN WHERE W = 2"));
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
}

// ---------------- the L0 exact-text cache ----------------

TEST(L0CacheTest, NormalizeCollapsesLexicalNoise) {
  // Case folds, whitespace collapses, comments vanish...
  EXPECT_EQ(NormalizeQueryText("select  Winner\n FROM beats -- hm\n"),
            "SELECT WINNER FROM BEATS");
  EXPECT_EQ(NormalizeQueryText("SELECT WINNER FROM BEATS"),
            NormalizeQueryText("  select\twinner\n\nfrom  Beats  "));
  // ...but string literals pass through verbatim, '' doubling included.
  EXPECT_EQ(NormalizeQueryText("SELECT t FROM f WHERE t = 'a  b'"),
            "SELECT T FROM F WHERE T = 'a  b'");
  EXPECT_NE(NormalizeQueryText("SELECT t FROM f WHERE t = 'abc'"),
            NormalizeQueryText("SELECT t FROM f WHERE t = 'ABC'"));
  EXPECT_EQ(NormalizeQueryText("SELECT 'it''s  fine' FROM f"),
            "SELECT 'it''s  fine' FROM F");
  // Different literals stay different keys (that is what L1 is for).
  EXPECT_NE(NormalizeQueryText("SELECT w FROM b WHERE w > 7"),
            NormalizeQueryText("SELECT w FROM b WHERE w > 3"));
}

TEST(QueryServiceTest, L0HitSkipsFrontHalfOfPipeline) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner, Loser FROM BEATS WHERE Winner > 7";
  auto first = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->l0_hit);
  EXPECT_GT(first->result.phase_times.parse_ns, 0u);

  // Lexical variants of the same text hit L0: parse/translate/rewrite/
  // schema never run, and the answer is byte-identical.
  auto second = PumpOne(
      &service,
      service.Submit("select winner,  Loser\nFROM beats WHERE winner > 7"));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->l0_hit);
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(second->result.phase_times.parse_ns, 0u);
  EXPECT_EQ(second->result.phase_times.translate_ns, 0u);
  EXPECT_EQ(second->result.phase_times.rewrite_ns, 0u);
  EXPECT_EQ(second->result.phase_times.schema_ns, 0u);
  EXPECT_GT(second->result.phase_times.exec_ns, 0u);
  EXPECT_EQ(second->result.rows, first->result.rows);
  EXPECT_EQ(second->result.columns, first->result.columns);

  L0Cache::Stats ls = service.l0_cache().GetStats();
  EXPECT_EQ(ls.hits, 1u);
  EXPECT_EQ(ls.misses, 1u);
  EXPECT_EQ(ls.inserts, 1u);
  EXPECT_EQ(ls.entries, 1u);
}

TEST(QueryServiceTest, L0EntriesDieOnEpochBump) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  ASSERT_TRUE(PumpOne(&service, service.Submit(q)).ok());
  // DDL bumps the catalog epoch (safe here: workers=0, nothing in flight).
  EDS_ASSERT_OK(db.session.ExecuteScript("CREATE TABLE L0T (X:INT);"));
  auto after = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->l0_hit);  // stale entry dropped, full pipeline reran
  L0Cache::Stats ls = service.l0_cache().GetStats();
  EXPECT_EQ(ls.hits, 0u);
  EXPECT_EQ(ls.invalidations, 1u);
  // The rerun repopulated L0 under the new epoch.
  auto warm = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->l0_hit);
}

TEST(QueryServiceTest, L0EvictsLeastRecentlyUsedAtCapacity) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.l0_capacity = 1;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  const char* a = "SELECT Winner FROM BEATS WHERE Winner > 7";
  const char* b = "SELECT Loser FROM BEATS WHERE Loser > 2";
  ASSERT_TRUE(PumpOne(&service, service.Submit(a)).ok());
  ASSERT_TRUE(PumpOne(&service, service.Submit(b)).ok());  // evicts `a`
  auto again = PumpOne(&service, service.Submit(a));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->l0_hit);
  L0Cache::Stats ls = service.l0_cache().GetStats();
  EXPECT_GE(ls.evictions, 1u);
  EXPECT_EQ(ls.entries, 1u);
}

TEST(QueryServiceTest, L0DisabledNeverConsultsTheCache) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.use_l0 = false;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  ASSERT_TRUE(PumpOne(&service, service.Submit(q)).ok());
  auto repeat = PumpOne(&service, service.Submit(q));
  ASSERT_TRUE(repeat.ok());
  EXPECT_FALSE(repeat->l0_hit);
  L0Cache::Stats ls = service.l0_cache().GetStats();
  EXPECT_EQ(ls.hits + ls.misses + ls.inserts, 0u);
}

TEST(QueryServiceTest, MetricsExportersUseDottedNames) {
  obs::MetricsRegistry registry;
  PlanCache::Stats cs;
  cs.hits = 3;
  ServiceStats ss;
  ss.admitted = 5;
  ExportCacheStats(cs, &registry);
  ExportServiceStats(ss, &registry);
  L0Cache::Stats ls;
  ls.hits = 2;
  ExportL0Stats(ls, &registry);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("cache.hits"), std::string::npos) << json;
  EXPECT_NE(json.find("srv.admitted"), std::string::npos) << json;
  EXPECT_NE(json.find("srv.l0.hits"), std::string::npos) << json;
}

TEST(QueryServiceTest, MergedTraceCarriesWorkerTids) {
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 1;
  options.collect_traces = true;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  auto r = service.Submit("SELECT Winner FROM BEATS WHERE Winner > 7").get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  service.Stop();
  std::ostringstream os;
  service.WriteMergedTrace(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("srv.query"), std::string::npos);
  EXPECT_NE(json.find("phase.parse"), std::string::npos);
}

}  // namespace
}  // namespace eds::srv
