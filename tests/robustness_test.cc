// Malformed-input corpus: truncated, garbage, and adversarial text fed to
// every parser-facing entry point (ESQL statements and scripts, the rule
// DSL, the term parser). The contract: a clean error Status every time —
// no crash, no hang, no undefined behavior. The ASan/UBSan preset
// (EDS_SANITIZE) turns this suite into a memory-safety check too.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "rewrite/builtins.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds {
namespace {

// ESQL fragments that must be rejected: truncations of valid statements,
// unbalanced nesting, stray tokens, embedded NULs, and deep recursion.
std::vector<std::string> BadEsql() {
  std::vector<std::string> corpus = {
      "",
      ";",
      "SELECT",
      "SELECT ;",
      "SELECT FROM",
      "SELECT Title FROM",
      "SELECT Title FROM FILM WHERE",
      "SELECT Title FROM FILM WHERE Numf =",
      "SELECT Title FROM FILM WHERE Numf = 1 AND",
      "SELECT Title FROM FILM GROUP",
      "SELECT Title FILM",
      "SELECT , FROM FILM",
      "SELECT Title FROM FILM WHERE ((Numf = 1)",
      "SELECT Title FROM FILM WHERE (Numf = 1))",
      "SELECT Title FROM FILM WHERE Numf = 'unterminated",
      "SELECT Title FROM FILM WHERE EXISTS",
      "SELECT Title FROM FILM WHERE FORALL X IN",
      "CREATE TABLE",
      "CREATE TABLE T",
      "CREATE TABLE T (",
      "CREATE TABLE T (A : )",
      "CREATE TABLE T (A INT",  // missing ':' and ')'
      "CREATE VIEW V AS",
      "CREATE VIEW V (A) AS SELECT",
      "TYPE",
      "TYPE X ENUMERATION OF",
      "TYPE X ENUMERATION OF ('a',",
      "INSERT INTO",
      "INSERT INTO FILM VALUES",
      "INSERT INTO FILM VALUES (",
      "INSERT INTO FILM VALUES (1, 'x'",
      "DROP TABLE FILM",  // not a statement this grammar knows
      "\x01\x02\xff garbage \xfe",
      "SELECT Title FROM FILM WHERE Numf = \x00 1",
  };
  // A pathologically nested expression: must error (or parse) without
  // exhausting the stack.
  std::string deep = "SELECT Title FROM FILM WHERE ";
  for (int i = 0; i < 2000; ++i) deep += "(";
  deep += "Numf = 1";
  corpus.push_back(deep);
  return corpus;
}

TEST(RobustnessTest, MalformedEsqlStatementsReturnStatus) {
  testutil::FilmDb db;
  for (const std::string& text : BadEsql()) {
    SCOPED_TRACE(text.substr(0, 60));
    auto result = db.session.Query(text);
    EXPECT_FALSE(result.ok());
  }
}

TEST(RobustnessTest, MalformedEsqlScriptsReturnStatus) {
  // Through ExecuteScript the same corpus must also fail cleanly, both
  // alone and preceded by a valid statement (mid-script failure). Entries
  // that reduce to empty statements are skipped: the script grammar
  // (correctly) treats stray semicolons as no-ops.
  for (const std::string& text : BadEsql()) {
    if (text.empty() || text == ";") continue;
    SCOPED_TRACE(text.substr(0, 60));
    testutil::FilmDb db;
    EXPECT_FALSE(db.session.ExecuteScript(text + ";").ok());
    EXPECT_FALSE(
        db.session
            .ExecuteScript("CREATE TABLE OKT (A : INT); " + text + ";")
            .ok());
  }
}

TEST(RobustnessTest, MalformedRuleDslReturnsStatus) {
  rewrite::BuiltinRegistry builtins;
  builtins.InstallStandard();
  // Truncations and corruptions of the real grammar
  //   name : LHS / constraints --> RHS / methods ;
  //   block(name, {rules}, limit) ;   seq({blocks}, limit) ;
  const char* corpus[] = {
      "r1",
      "r1 :",
      "r1 : FILTER(z, f)",
      "r1 : FILTER(z, f) /",
      "r1 : FILTER(z, f) / -->",
      "r1 : FILTER(z, f) / --> SEARCH(",
      "r1 : FILTER(z, f) / --> SEARCH(LIST(z), f, p) /",
      "r1 : FILTER(z, f) / --> SEARCH(LIST(z), f, p) / SCHEMA(z",
      "r1 : FILTER(z, f) / --> SEARCH(LIST(z), f, p) / SCHEMA(z, p",
      "r1 FILTER(z, f) / --> x / ;",
      ": FILTER(z, f) / --> x / ;",
      "r1 : / --> x / ;",
      "r1 : FILTER($1., f) / --> x / ;",
      "r1 : FILTER('unterminated, f) / --> x / ;",
      "block",
      "block(",
      "block(b1",
      "block(b1, {r1}",
      "block(b1, {r1}, )",
      "block(b1, {r1}, -1) ;",
      "block(b1, {missing_rule}, 1) ;",
      "seq(",
      "seq({b1}",
      "seq({b1}, inf) ; seq({b1}, 1) ;",
      "seq({undeclared_block}, 1) ;",
      "\xde\xad\xbe\xef",
  };
  for (const char* text : corpus) {
    SCOPED_TRACE(text);
    auto program = ruledsl::CompileRuleSource(text, builtins);
    EXPECT_FALSE(program.ok());
  }
}

TEST(RobustnessTest, MalformedTermsReturnStatus) {
  const char* corpus[] = {
      "",
      "(",
      ")",
      "SEARCH(",
      "SEARCH(LIST(RELATION('R')), TRUE",
      "SEARCH(LIST(RELATION('R')), TRUE, LIST($1.1)))",
      "RELATION(",
      "RELATION('R'",
      "RELATION('unterminated)",
      "$",
      "$1",
      "$1.",
      "$.1",
      "F(,)",
      "F(a,,b)",
      "F(a b)",
      "'lone string",
      "123abc(",
  };
  for (const char* text : corpus) {
    SCOPED_TRACE(text);
    auto term = term::ParseTerm(text);
    EXPECT_FALSE(term.ok());
  }
  // Deep nesting must not exhaust the stack.
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "F(";
  auto term = term::ParseTerm(deep);
  EXPECT_FALSE(term.ok());
}

TEST(RobustnessTest, ValidStatementsStillWorkAfterErrorStorm) {
  // Error handling must not corrupt session state: after the whole bad
  // corpus, a normal query still answers.
  testutil::FilmDb db;
  for (const std::string& text : BadEsql()) {
    (void)db.session.Query(text);
  }
  auto result = db.session.Query("SELECT Title FROM FILM WHERE Numf = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace eds
