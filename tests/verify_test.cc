// Unit tests for the rule soundness verifier: environment construction,
// instance generation, strict plan typing, clean/diverging rule verdicts,
// determinism, and the registration-time hooks in the compiler and
// exec::Session.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "rules/semantic.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"
#include "verify/instance.h"
#include "verify/verify.h"

namespace eds::verify {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

// --- environment -----------------------------------------------------------

TEST(VerifyEnvTest, BuildsCornerDatabases) {
  auto env = VerifyEnv::Create(42, 3);
  EDS_ASSERT_OK_RESULT(env);
  ASSERT_EQ((*env)->instances().size(), 7u);  // base dups nulls empty rand0-2
  EXPECT_EQ((*env)->instances()[0].name, "base");
  EXPECT_EQ((*env)->instances()[3].name, "empty");
  EXPECT_TRUE((*env)->catalog().HasTable("V0"));
  EXPECT_TRUE((*env)->catalog().HasTable("VS"));
}

TEST(VerifyEnvTest, SnapshotRoundTripsThroughMaterialize) {
  auto env = VerifyEnv::Create(42, 0);
  EDS_ASSERT_OK_RESULT(env);
  VerifyEnv::Snapshot snap = (*env)->SnapshotOf(0);
  auto db = (*env)->Materialize(snap);
  EDS_ASSERT_OK_RESULT(db);
  auto t = (*db)->GetTable("V0");
  EDS_ASSERT_OK_RESULT(t);
  EXPECT_EQ((*t)->rows().size(), 3u);
  EXPECT_NE(VerifyEnv::Describe(snap, 8).find("V0:"), std::string::npos);
}

// --- strict plan typing ----------------------------------------------------

TEST(TypeCheckPlanTest, AcceptsWellTypedAndRejectsRuntimeTypeErrors) {
  auto env = VerifyEnv::Create(42, 0);
  EDS_ASSERT_OK_RESULT(env);
  auto good = term::ParseTerm(
      "SEARCH(LIST(RELATION('V0')), ($1.1 = 1), LIST($1.1, $1.2))");
  EDS_ASSERT_OK_RESULT(good);
  EDS_EXPECT_OK(TypeCheckPlan(*good, (*env)->catalog()));

  // lera::InferExprType types NOT(<numeric>) as bool, but the executor's
  // function library raises TypeError at runtime — the strict checker must
  // reject it statically.
  auto bad = term::ParseTerm(
      "SEARCH(LIST(RELATION('V0')), NOT ($1.1), LIST($1.1, $1.2))");
  EDS_ASSERT_OK_RESULT(bad);
  EXPECT_FALSE(TypeCheckPlan(*bad, (*env)->catalog()).ok());
}

// --- instance generation ---------------------------------------------------

rewrite::Rule ParseOneRule(const std::string& text) {
  auto unit = ruledsl::ParseRuleSource(text);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_EQ(unit->rules.size(), 1u);
  return unit->rules[0];
}

TEST(InstantiatorTest, GeneratesTypedGroundInstances) {
  auto env = VerifyEnv::Create(42, 3);
  EDS_ASSERT_OK_RESULT(env);
  rewrite::Rule rule =
      ParseOneRule("r : SEARCH(i, f, p) / --> SEARCH(i, f, p) / ;");
  Instantiator inst(env->get(), 42);
  std::vector<RuleInstance> instances;
  EDS_ASSERT_OK(inst.Generate(rule, 24, &instances));
  ASSERT_GT(instances.size(), 8u);
  for (const RuleInstance& ri : instances) {
    EXPECT_TRUE(term::IsGround(ri.plan)) << ri.plan->ToString();
    EDS_EXPECT_OK(TypeCheckPlan(ri.plan, (*env)->catalog()));
    EXPECT_FALSE(ri.binding.empty());
  }
}

TEST(InstantiatorTest, WrapsQualSubjectsIntoExecutablePlans) {
  auto env = VerifyEnv::Create(42, 3);
  EDS_ASSERT_OK_RESULT(env);
  rewrite::Rule rule = ParseOneRule("r : (f AND g) / --> (g AND f) / ;");
  Instantiator inst(env->get(), 42);
  std::vector<RuleInstance> instances;
  EDS_ASSERT_OK(inst.Generate(rule, 24, &instances));
  ASSERT_FALSE(instances.empty());
  for (const RuleInstance& ri : instances) {
    EXPECT_EQ(ri.plan->functor(), "SEARCH") << ri.plan->ToString();
    EXPECT_NE(ri.plan, ri.subject);
  }
}

// --- verdicts --------------------------------------------------------------

TEST(VerifyRuleTest, SoundRuleProducesNoFindings) {
  rewrite::Rule rule = ParseOneRule("and_comm : (f AND g) / --> (g AND f) / ;");
  lint::LintReport report;
  RuleVerdict verdict;
  EDS_ASSERT_OK(VerifyRule(rule, Registry(), {}, &report, &verdict));
  EXPECT_TRUE(report.empty()) << report.ToString();
  EXPECT_GT(verdict.fired, 0u);
  EXPECT_GT(verdict.checked, 0u);
  EXPECT_FALSE(verdict.divergence);
}

TEST(VerifyRuleTest, DivergingRuleReportsCounterexample) {
  rewrite::Rule rule =
      ParseOneRule("lt_true : (x < y) / --> TRUE / ;");
  lint::LintReport report;
  RuleVerdict verdict;
  EDS_ASSERT_OK(VerifyRule(rule, Registry(), {}, &report, &verdict));
  ASSERT_EQ(report.error_count(), 1u) << report.ToString();
  std::vector<lint::Diagnostic> hits = report.WithId(kVerifyDivergence);
  ASSERT_FALSE(hits.empty());
  const lint::Diagnostic& d = hits[0];
  EXPECT_EQ(d.rule, "lt_true");
  EXPECT_NE(d.message.find("database:"), std::string::npos);
  EXPECT_NE(d.message.find("lhs rows:"), std::string::npos);
  EXPECT_NE(d.message.find("rhs rows:"), std::string::npos);
  EXPECT_TRUE(verdict.divergence);
}

TEST(VerifyRuleTest, DeterministicAcrossRuns) {
  rewrite::Rule rule =
      ParseOneRule("lt_true : (x < y) / --> TRUE / ;");
  lint::LintReport a, b;
  EDS_ASSERT_OK(VerifyRule(rule, Registry(), {}, &a));
  EDS_ASSERT_OK(VerifyRule(rule, Registry(), {}, &b));
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(VerifyLibraryTest, ParseFailureReportsS000) {
  lint::LintReport report = VerifyLibrary("this is not a rule", Registry());
  ASSERT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.diagnostics()[0].id, kVerifyInvalidRule);
}

TEST(VerifyProgramTest, DeduplicatesRulesAcrossBlocks) {
  auto unit = ruledsl::ParseRuleSource(
      "r : (f AND g) / --> (g AND f) / ;\n"
      "block(a, {r}, inf) ;\nblock(b, {r}, inf) ;\nseq({a, b}, 2) ;");
  EDS_ASSERT_OK_RESULT(unit);
  auto program = ruledsl::CompileProgram(*unit, Registry());
  EDS_ASSERT_OK_RESULT(program);
  lint::LintReport report;
  VerifySummary summary;
  EDS_ASSERT_OK(
      VerifyProgram(*program, Registry(), {}, &report, &summary));
  EXPECT_EQ(summary.rules, 1u);  // one distinct rule despite two blocks
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// --- compiler hook ---------------------------------------------------------

TEST(CompilerHookTest, RunVerifyAppendsSoundnessFindings) {
  lint::LintReport report;
  ruledsl::CompileOptions opts;
  opts.diagnostics = &report;
  opts.run_verify = true;
  auto program = ruledsl::CompileRuleSource(
      "lt_true : (x < y) / --> TRUE / ;", Registry(), opts);
  EDS_ASSERT_OK_RESULT(program);  // verification never fails the compile
  EXPECT_GE(report.error_count(), 1u) << report.ToString();
  EXPECT_FALSE(report.WithId(kVerifyDivergence).empty());
}

// --- session hook ----------------------------------------------------------

TEST(SessionHookTest, LintFindingsSurfaceWithoutRejecting) {
  exec::Session session;
  lint::LintReport report;
  exec::ConstraintOptions opts;
  opts.diagnostics = &report;
  // Unparseable text still registers (diagnosed at optimizer build), but
  // the parse failure is surfaced as a lint line at registration time.
  EDS_ASSERT_OK(session.AddConstraint("broken", "not a rule", opts));
  EXPECT_FALSE(report.WithId(lint::kLintParseError).empty())
      << report.ToString();
}

TEST(SessionHookTest, VerifyRejectsUnsoundConstraint) {
  exec::Session session;
  lint::LintReport report;
  exec::ConstraintOptions opts;
  opts.diagnostics = &report;
  opts.run_verify = true;
  Status s = session.AddConstraint(
      "bogus", "lt_true : (x < y) / --> TRUE / ;", opts);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("soundness"), std::string::npos)
      << s.ToString();
  EXPECT_FALSE(report.WithId(kVerifyDivergence).empty()) << report.ToString();
  // The rejected constraint must not have reached the catalog.
  EXPECT_TRUE(session.catalog().constraints().empty());
}

TEST(SessionHookTest, VerifyAcceptsSoundConstraint) {
  exec::Session session;
  exec::ConstraintOptions opts;
  opts.run_verify = true;
  lint::LintReport report;
  opts.diagnostics = &report;
  EDS_ASSERT_OK(session.AddConstraint(
      "comm", "and_comm : (f AND g) / --> (g AND f) / ;", opts));
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_EQ(session.catalog().constraints().size(), 1u);
}

}  // namespace
}  // namespace eds::verify
