// Tracing + metrics invariants: span nesting well-formedness, per-rule
// aggregates vs engine statistics, Chrome trace-event JSON validity (via a
// minimal JSON parser below), metrics-registry unification, and the
// guarantee that observability never changes rewrite outcomes.
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lera/schema.h"
#include "lint/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds {
namespace {

using exec::QueryOptions;
using obs::TraceEvent;
using obs::TraceSink;

// ---- a minimal JSON parser -------------------------------------------
// Just enough to validate the writers' output without external deps:
// objects, arrays, strings (with escapes), numbers, true/false/null.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Eat(':')) return false;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              bool hex = (h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                         (h >= 'A' && h <= 'F');
              if (!hex) return false;
            }
            pos_ += 4;
            out->push_back('?');  // code point fidelity is not under test
            break;
          }
          default: return false;
        }
        continue;
      }
      // Raw control characters are invalid inside JSON strings — this is
      // exactly what JsonEscape must prevent.
      if (static_cast<unsigned char>(c) < 0x20) return false;
      out->push_back(c);
    }
    return false;
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [&](const char* lit) {
      size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      return true;
    }
    if (match("null")) return true;
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- fixtures ---------------------------------------------------------

// Fig. 2 schema/data plus the Fig. 4 nested view and the Fig. 5
// transitive-closure view: one query exercising rewrite depth, one
// exercising fixpoint execution.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() {
    EDS_EXPECT_OK(db_.session.ExecuteScript(R"(
      CREATE VIEW FilmActors (Title, Categories, Actors) AS
        SELECT Title, Categories, MakeSet(Refactor)
        FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf
        GROUP BY Title, Categories;
      CREATE VIEW BETTER_THAN (W, L) AS (
        SELECT Winner, Loser FROM BEATS
        UNION
        SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
        WHERE B1.L = B2.W );
    )"));
  }

  exec::Session& session() { return db_.session; }

  static const char* NestedQuery() {
    return "SELECT Title FROM FilmActors WHERE "
           "MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000)";
  }
  static const char* FixpointQuery() {
    return "SELECT L FROM BETTER_THAN WHERE W = 1";
  }

  testutil::FilmDb db_;
};

size_t CountCategory(const TraceSink& sink, const std::string& cat) {
  size_t n = 0;
  for (const TraceEvent& e : sink.events()) {
    if (cat == e.category) ++n;
  }
  return n;
}

// ---- span mechanics ---------------------------------------------------

TEST(TraceSinkTest, SpansRecordDepthAndContainment) {
  TraceSink sink;
  {
    obs::Span outer(&sink, "outer", "test");
    {
      obs::Span inner(&sink, "inner", "test");
      inner.Arg("k", std::string("v"));
    }
  }
  ASSERT_EQ(sink.size(), 2u);
  // Completion order: children precede parents.
  const TraceEvent& inner = sink.events()[0];
  const TraceEvent& outer = sink.events()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].first, "k");
  EXPECT_EQ(sink.depth(), 0);
}

TEST(TraceSinkTest, NullSinkIsANoop) {
  obs::Span span(nullptr, "never", "test");
  span.Arg("k", static_cast<int64_t>(1));
  span.Finish();  // second Finish via destructor must also be harmless
}

TEST(TraceSinkTest, RecordCompleteUsesAbsoluteTimes) {
  TraceSink sink;
  uint64_t t0 = obs::NowNs();
  uint64_t t1 = t0 + 500;
  sink.RecordComplete("leaf", "rule", t0, t1, {{"a", "b"}});
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].dur_ns, 500u);
  EXPECT_EQ(sink.events()[0].name, "leaf");
}

// ---- rewrite-engine invariants ----------------------------------------

TEST_F(ObsTest, RuleSpanCountMatchesTraceAndStats) {
  auto plan = session().Translate(NestedQuery());
  ASSERT_TRUE(plan.ok()) << plan.status();
  TraceSink sink;
  rewrite::RewriteOptions options;
  options.collect_trace = true;
  options.trace_sink = &sink;
  options.profile_rules = true;
  auto out = session().Rewrite(*plan, options);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_GT(out->stats.applications, 0u);

  // One TraceEntry, one "rule" span, and one profiled application per fire.
  EXPECT_EQ(out->trace.size(), out->stats.applications);
  EXPECT_EQ(CountCategory(sink, "rule"), out->stats.applications);
  size_t profiled = 0;
  for (const auto& [name, prof] : out->stats.rule_profiles) {
    EXPECT_GE(prof.match_attempts, prof.applications) << name;
    profiled += static_cast<size_t>(prof.applications);
  }
  EXPECT_EQ(profiled, out->stats.applications);
  // The engine emits pass and block spans around the rule spans.
  EXPECT_GT(CountCategory(sink, "rewrite"), 0u);
}

TEST_F(ObsTest, SpanNestingIsWellFormed) {
  TraceSink sink;
  session().set_trace_sink(&sink);
  QueryOptions options;
  options.rewrite_options.profile_rules = true;
  auto r1 = session().Query(NestedQuery(), options);
  auto r2 = session().Query(FixpointQuery(), options);
  session().set_trace_sink(nullptr);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_GT(sink.size(), 0u);

  // No two spans may partially overlap: for any pair, either disjoint or
  // one contains the other (single-threaded scoped instrumentation).
  const auto& events = sink.events();
  for (size_t i = 0; i < events.size(); ++i) {
    uint64_t a0 = events[i].start_ns, a1 = a0 + events[i].dur_ns;
    EXPECT_GE(events[i].depth, 0);
    for (size_t j = i + 1; j < events.size(); ++j) {
      uint64_t b0 = events[j].start_ns, b1 = b0 + events[j].dur_ns;
      bool disjoint = a1 <= b0 || b1 <= a0;
      bool a_in_b = b0 <= a0 && a1 <= b1;
      bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << events[i].name << " [" << a0 << "," << a1 << ") vs "
          << events[j].name << " [" << b0 << "," << b1 << ")";
    }
  }
  // Every phase produced a span; two queries ran.
  for (const char* phase : {"phase.parse", "phase.translate", "phase.rewrite",
                            "phase.schema", "phase.execute"}) {
    size_t n = 0;
    for (const TraceEvent& e : events) {
      if (e.name == phase) ++n;
    }
    EXPECT_EQ(n, 2u) << phase;
  }
  // The fixpoint query iterated: round spans exist.
  size_t rounds = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "exec.fix.round") ++rounds;
  }
  EXPECT_GT(rounds, 1u);
}

TEST_F(ObsTest, PerRuleTimeSumsWithinRewritePhaseSpan) {
  TraceSink sink;
  session().set_trace_sink(&sink);
  QueryOptions options;
  options.rewrite_options.profile_rules = true;
  auto result = session().Query(NestedQuery(), options);
  session().set_trace_sink(nullptr);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->rewrite_stats.rule_profiles.empty());

  const TraceEvent* rewrite_phase = nullptr;
  for (const TraceEvent& e : sink.events()) {
    if (e.name == "phase.rewrite") rewrite_phase = &e;
  }
  ASSERT_NE(rewrite_phase, nullptr);
  // Per-rule self times are disjoint sub-intervals of the rewrite phase, so
  // their sum cannot exceed the phase span.
  int64_t sum_ns = 0;
  for (const auto& [name, prof] : result->rewrite_stats.rule_profiles) {
    EXPECT_GE(prof.ns, 0) << name;
    sum_ns += prof.ns;
  }
  EXPECT_GT(sum_ns, 0);
  EXPECT_LE(static_cast<uint64_t>(sum_ns), rewrite_phase->dur_ns);
  // And the always-on phase clock agrees with the span.
  EXPECT_GT(result->phase_times.rewrite_ns, 0u);
  EXPECT_GT(result->phase_times.total_ns, 0u);
}

TEST_F(ObsTest, ObservabilityDoesNotChangeOutcomes) {
  auto plan = session().Translate(NestedQuery());
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto plain = session().Rewrite(*plan);
  ASSERT_TRUE(plain.ok()) << plain.status();

  TraceSink sink;
  rewrite::RewriteOptions options;
  options.trace_sink = &sink;
  options.profile_rules = true;
  auto traced = session().Rewrite(*plan, options);
  ASSERT_TRUE(traced.ok()) << traced.status();

  // Hash-consing makes identity literal: the same optimized plan is the
  // same node.
  EXPECT_EQ(plain->term.get(), traced->term.get());
  EXPECT_EQ(plain->stats.applications, traced->stats.applications);
  EXPECT_EQ(plain->stats.condition_checks, traced->stats.condition_checks);

  // Execution results are identical with a sink attached.
  auto rows_plain = session().Query(FixpointQuery());
  TraceSink exec_sink;
  session().set_trace_sink(&exec_sink);
  auto rows_traced = session().Query(FixpointQuery());
  session().set_trace_sink(nullptr);
  ASSERT_TRUE(rows_plain.ok()) << rows_plain.status();
  ASSERT_TRUE(rows_traced.ok()) << rows_traced.status();
  EXPECT_EQ(rows_plain->rows, rows_traced->rows);
}

// ---- JSON output ------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonIsValidAndComplete) {
  TraceSink sink;
  session().set_trace_sink(&sink);
  QueryOptions options;
  options.rewrite_options.profile_rules = true;
  ASSERT_TRUE(session().Query(NestedQuery(), options).ok());
  session().set_trace_sink(nullptr);

  std::string json = sink.ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json.substr(0, 400);
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), sink.size());
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->kind, JsonValue::Kind::kString);
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete events
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      const JsonValue* v = e.Find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_EQ(v->kind, JsonValue::Kind::kNumber) << field;
      EXPECT_GE(v->number, 0.0) << field;
    }
  }
}

TEST(TraceSinkTest, JsonEscapesHostileSpanNames) {
  TraceSink sink;
  {
    obs::Span span(&sink, std::string("quote\" slash\\ ctrl\n end"), "test");
    span.Arg("k", std::string("\t\"v\"\\"));
  }
  std::string json = sink.ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].Find("name")->str, "quote\" slash\\ ctrl\n end");
}

// ---- metrics registry -------------------------------------------------

TEST_F(ObsTest, MetricsRegistryUnifiesAllProducers) {
  QueryOptions options;
  options.rewrite_options.profile_rules = true;
  auto result = session().Query(NestedQuery(), options);
  ASSERT_TRUE(result.ok()) << result.status();

  obs::MetricsRegistry registry;
  obs::ExportEngineStats(result->rewrite_stats, &registry);
  obs::ExportExecStats(result->exec_stats, &registry);
  obs::ExportInternerStats(term::Interner::Global().GetStats(), &registry);

  for (const char* name :
       {"rewrite.applications", "rewrite.match_attempts",
        "rewrite.quick_rejects", "rewrite.expr_type_hits",
        "rewrite.expr_type_misses", "exec.rows_scanned", "exec.rows_output",
        "interner.hits", "interner.entries"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  EXPECT_EQ(registry.Get("rewrite.applications"),
            static_cast<double>(result->rewrite_stats.applications));
  EXPECT_EQ(registry.Get("exec.rows_scanned"),
            static_cast<double>(result->exec_stats.rows_scanned));
  // Per-rule aggregates were exported (profile_rules was on).
  bool has_rule_metric = false;
  for (const auto& [name, value] : registry.values()) {
    if (name.rfind("rewrite.rule.", 0) == 0) has_rule_metric = true;
  }
  EXPECT_TRUE(has_rule_metric);

  // The JSON export is valid JSON mirroring the registry.
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->object.size(), registry.values().size());

  // The profile table ranks by self time and is renderable.
  auto ranked = obs::RankRuleProfiles(result->rewrite_stats);
  ASSERT_FALSE(ranked.empty());
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second.ns, ranked[i].second.ns);
  }
  EXPECT_NE(obs::FormatRuleProfiles(result->rewrite_stats, 5).find("rule"),
            std::string::npos);
}

// ---- InferExprType memo ----------------------------------------------

TEST_F(ObsTest, ExprTypeMemoCachesByNodeAndScope) {
  std::vector<lera::Schema> inputs = {
      {types::Field{"N", session().catalog().types().int_type()}}};
  auto expr = term::ParseTerm("ADD(ATTR(1, 1), 3)");
  ASSERT_TRUE(expr.ok());
  lera::ExprTypeMemo memo;
  auto t1 = lera::InferExprType(*expr, inputs, session().catalog(), nullptr,
                                nullptr, &memo, /*scope_key=*/7);
  ASSERT_TRUE(t1.ok()) << t1.status();
  size_t misses_after_first = memo.misses();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(memo.hits(), 0u);

  auto t2 = lera::InferExprType(*expr, inputs, session().catalog(), nullptr,
                                nullptr, &memo, /*scope_key=*/7);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(memo.hits(), 1u);  // the root apply hit; no re-walk
  EXPECT_EQ(memo.misses(), misses_after_first);
  EXPECT_EQ((*t1).get(), (*t2).get());

  // A different scope key is a different memo dimension.
  auto t3 = lera::InferExprType(*expr, inputs, session().catalog(), nullptr,
                                nullptr, &memo, /*scope_key=*/8);
  ASSERT_TRUE(t3.ok());
  EXPECT_GT(memo.misses(), misses_after_first);
}

// ---- lint UnifyMemo ---------------------------------------------------

TEST(UnifyMemoTest, MemoizedVerdictsMatchUnmemoized) {
  rewrite::BuiltinRegistry reg;
  reg.InstallStandard();
  auto T = [](const char* text) {
    auto t = term::ParseTerm(text);
    EXPECT_TRUE(t.ok()) << text;
    return *t;
  };
  std::vector<term::TermRef> lhs = {
      T("DEDUP(x)"), T("UNION(SET(a, b*))"), T("FILTER(r, EQ(c, c))"),
      T("LIST(x*, a)"), T("SEARCH(i, p, q)")};
  std::vector<term::TermRef> rhs = {
      T("DEDUP(UNION(SET(u, v)))"), T("FILTER(DEDUP(r), EQ(a, b))"),
      T("SEARCH(LIST(r), p, q)"), T("PROJECT(r, LIST(e))"), T("LIST(a, b)")};

  lint::UnifyMemo memo;
  for (const auto& l : lhs) {
    for (const auto& r : rhs) {
      bool plain = lint::ProducesMatchFor(r, l, reg);
      bool memoized = lint::ProducesMatchFor(r, l, reg, &memo);
      EXPECT_EQ(plain, memoized) << r->ToString() << " vs " << l->ToString();
    }
  }
  // Replaying the matrix hits the cache.
  size_t hits_before = memo.hits();
  for (const auto& l : lhs) {
    for (const auto& r : rhs) {
      (void)lint::ProducesMatchFor(r, l, reg, &memo);
    }
  }
  EXPECT_GT(memo.hits(), hits_before);
  EXPECT_GT(memo.size(), 0u);
}

// ---- registry JSON hardening ------------------------------------------

TEST(MetricsRegistryTest, ToJsonEscapesHostileNames) {
  obs::MetricsRegistry registry;
  registry.Counter("plain.name", 7);
  registry.Counter("quote\".back\\slash", 1);
  registry.Counter("ctrl\nchars\there", 2);
  std::string json = registry.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->object.size(), 3u);
  const JsonValue* hostile = metrics->Find("quote\".back\\slash");
  ASSERT_NE(hostile, nullptr);
  EXPECT_EQ(hostile->number, 1.0);
  ASSERT_NE(metrics->Find("ctrl\nchars\there"), nullptr);
}

TEST(MetricsRegistryTest, ToJsonRendersNonFiniteGaugesAsNull) {
  obs::MetricsRegistry registry;
  registry.Gauge("g.nan", std::nan(""));
  registry.Gauge("g.inf", std::numeric_limits<double>::infinity());
  registry.Gauge("g.fine", 1.5);
  std::string json = registry.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("g.nan")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(metrics->Find("g.inf")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(metrics->Find("g.fine")->number, 1.5);
}

// ---- merged-trace edge cases ------------------------------------------

TEST(MergedTraceTest, EmptySinkListYieldsValidEmptyTrace) {
  std::ostringstream os;
  obs::WriteMergedChromeTrace(os, {});
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root)) << os.str();
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST(MergedTraceTest, NullAndEmptySinksAreSkipped) {
  TraceSink with_events;
  { obs::Span span(&with_events, "only", "test"); }
  TraceSink empty;
  std::ostringstream os;
  obs::WriteMergedChromeTrace(
      os, {{nullptr, 1}, {&empty, 2}, {&with_events, 3}});
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root)) << os.str();
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].Find("name")->str, "only");
  EXPECT_EQ(events->array[0].Find("tid")->number, 3.0);
}

TEST(TraceSinkTest, AppendFromRebasesOntoTargetOrigin) {
  TraceSink target;
  { obs::Span span(&target, "own", "test"); }
  TraceSink scratch;  // constructed later: larger origin_ns
  ASSERT_GE(scratch.origin_ns(), target.origin_ns());
  { obs::Span span(&scratch, "borrowed", "test"); }
  const uint64_t scratch_rel = scratch.events()[0].start_ns;

  target.AppendFrom(scratch);
  ASSERT_EQ(target.size(), 2u);
  const TraceEvent& copied = target.events()[1];
  EXPECT_EQ(copied.name, "borrowed");
  // Rebased: scratch-relative time plus the origin gap, exactly.
  EXPECT_EQ(copied.start_ns,
            scratch_rel + (scratch.origin_ns() - target.origin_ns()));
  // The borrowed event starts no earlier than the later sink's creation.
  EXPECT_GE(copied.start_ns, scratch.origin_ns() - target.origin_ns());
  // Source is untouched.
  EXPECT_EQ(scratch.size(), 1u);
}

}  // namespace
}  // namespace eds
