// Golden lint over every shipped rule library: zero errors always, and the
// warning set is pinned down to (id, rule) pairs so a library edit that
// introduces a new finding — or silences an expected one — fails loudly.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/optimizer.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"

namespace eds::lint {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

using IdRule = std::pair<std::string, std::string>;

std::vector<IdRule> Findings(const LintReport& report) {
  std::vector<IdRule> out;
  for (const Diagnostic& d : report.diagnostics()) {
    out.emplace_back(d.id, d.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct LibraryGolden {
  const char* name;
  std::string source;
  std::vector<IdRule> expected;  // sorted (id, rule) pairs
};

class BuiltinLintTest : public ::testing::TestWithParam<LibraryGolden> {};

TEST_P(BuiltinLintTest, NoErrorsAndExpectedWarnings) {
  LintReport report = LintSource(GetParam().source, Registry());
  EXPECT_EQ(report.error_count(), 0u)
      << GetParam().name << ":\n"
      << report.ToString();
  EXPECT_EQ(Findings(report), GetParam().expected)
      << GetParam().name << ":\n"
      << report.ToString();
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_TRUE(d.loc.known()) << GetParam().name << ": " << d.ToString();
  }
}

// Every expected finding today is an EDS-L010 divergence warning: the
// shipped saturation libraries contain genuine rewrite cycles (equality
// transitivity, predicate closure, push/unfold pairs) that terminate for
// semantic reasons the syntactic size measure cannot see. They are exactly
// the rules the paper runs under finite block budgets.
INSTANTIATE_TEST_SUITE_P(
    Shipped, BuiltinLintTest,
    ::testing::Values(
        LibraryGolden{"merging", rules::MergingRuleSource(), {}},
        LibraryGolden{"permutation",
                      rules::PermutationRuleSource(),
                      {{kLintDivergence, "push_search_union"}}},
        LibraryGolden{"fixpoint",
                      rules::FixpointRuleSource(),
                      {{kLintDivergence, "push_search_fixpoint"}}},
        LibraryGolden{"simplify", rules::SimplifyRuleSource(), {}},
        LibraryGolden{"implicit_knowledge",
                      rules::ImplicitKnowledgeRuleSource(),
                      {{kLintDivergence, "eq_subst_1"},
                       {kLintDivergence, "transitivity_eq"},
                       {kLintDivergence, "transitivity_include"}}},
        LibraryGolden{"semantic_methods",
                      rules::SemanticMethodRuleSource(),
                      {{kLintDivergence, "close_predicates"}}},
        LibraryGolden{"extensions",
                      rules::ExtensionRuleSource(),
                      {{kLintDivergence, "push_search_difference"}}}),
    [](const ::testing::TestParamInfo<LibraryGolden>& info) {
      return info.param.name;
    });

TEST(BuiltinLintTest, DefaultOptimizerProgramHasNoLintErrors) {
  catalog::Catalog cat;
  auto optimizer = rules::MakeDefaultOptimizer(&cat);
  ASSERT_TRUE(optimizer.ok()) << optimizer.status();
  LintOptions opts;
  opts.catalog = &cat;
  LintReport report;
  AnalyzeProgram((*optimizer)->engine().program(), (*optimizer)->builtins(),
                 opts, &report);
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
}

TEST(BuiltinLintTest, ConstraintRulesLintCleanly) {
  catalog::Catalog cat;
  std::string source = rules::ConstraintRuleSource(cat);
  LintOptions opts;
  opts.catalog = &cat;
  LintReport report = LintSource(source, Registry(), opts);
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
}

}  // namespace
}  // namespace eds::lint
