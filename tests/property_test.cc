// Property-based suites (parameterized gtest):
//   * term print/parse round-trips over generated random terms;
//   * the default optimizer preserves query semantics over generated graph
//     data of varying sizes and selection constants;
//   * set/bag algebra laws hold for the collection library.
#include <random>

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "term/parser.h"
#include "testutil.h"
#include "value/collection_lib.h"

namespace eds {
namespace {

// ---- random term generation ----

term::TermRef RandomTerm(std::mt19937* rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth <= 0 ? 2 : 6);
  std::uniform_int_distribution<int> small(0, 99);
  std::uniform_int_distribution<int> arity(0, 3);
  static const char* functors[] = {"F", "G", "SEARCH", "MEMBER", "LIST",
                                   "SET", "ADD"};
  switch (kind(*rng)) {
    case 0:
      return term::Term::Int(small(*rng));
    case 1:
      return term::Term::Str("s" + std::to_string(small(*rng)));
    case 2: {
      const char* vars[] = {"x", "y", "z"};
      return term::Term::Var(vars[small(*rng) % 3]);
    }
    case 3:
      return term::Term::Attr(1 + small(*rng) % 3, 1 + small(*rng) % 4);
    case 4:
      return term::Term::Bool(small(*rng) % 2 == 0);
    default: {
      int n = arity(*rng);
      term::TermList args;
      for (int i = 0; i < n; ++i) {
        args.push_back(RandomTerm(rng, depth - 1));
      }
      return term::Term::Apply(functors[small(*rng) % 7], std::move(args));
    }
  }
}

class TermRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(TermRoundTripTest, PrintParsePrintIsStable) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    term::TermRef t = RandomTerm(&rng, 4);
    std::string text = t->ToString();
    auto back = term::ParseTerm(text);
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    EXPECT_TRUE(term::Equals(t, *back))
        << text << " reparsed as " << (*back)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermRoundTripTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// ---- hash-consing invariants over random terms ----

// This generator draws constants, variables, and functors from small fixed
// pools and never mixes Int/Real payloads, so structural equality implies
// canonical-pointer identity (the one place interning is *allowed* to keep
// deep-equal twins apart is value-equivalent constants of different
// numeric kinds, which it cannot produce here).
TEST_P(TermRoundTripTest, InternedPointerEqualityMatchesDeepEquals) {
  std::mt19937 rng(GetParam() + 17);
  std::vector<term::TermRef> pool;
  for (int i = 0; i < 60; ++i) pool.push_back(RandomTerm(&rng, 3));
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i; j < pool.size(); ++j) {
      const term::TermRef& a = pool[i];
      const term::TermRef& b = pool[j];
      const bool deep = term::DeepEquals(a, b);
      EXPECT_EQ(a.get() == b.get(), deep)
          << a->ToString() << " vs " << b->ToString();
      EXPECT_EQ(term::Equals(a, b), deep);
      if (deep) {
        EXPECT_EQ(term::Hash(a), term::Hash(b));
      }
    }
  }
}

TEST_P(TermRoundTripTest, CachedFactsMatchDeepRecomputation) {
  std::mt19937 rng(GetParam() + 29);
  for (int i = 0; i < 80; ++i) {
    term::TermRef t = RandomTerm(&rng, 4);
    EXPECT_EQ(t->structural_hash(), term::DeepHash(t)) << t->ToString();
    EXPECT_EQ(term::CountNodes(t), term::DeepCountNodes(t)) << t->ToString();
    EXPECT_EQ(term::IsGround(t), term::DeepIsGround(t)) << t->ToString();
    // Reparsing the printed form must come back as the same canonical node.
    auto back = term::ParseTerm(t->ToString());
    ASSERT_TRUE(back.ok()) << t->ToString();
    EXPECT_EQ(back->get(), t.get()) << t->ToString();
  }
}

// ---- rewrite preserves semantics over generated data ----

struct GraphCase {
  int nodes;
  int edges_per_node;
  int seed;
};

class RewritePreservationTest : public ::testing::TestWithParam<GraphCase> {
 protected:
  void LoadGraph() {
    const GraphCase& gc = GetParam();
    std::mt19937 rng(gc.seed);
    std::uniform_int_distribution<int> node(1, gc.nodes);
    EXPECT_TRUE(db_.session
                    .ExecuteScript(
                        "CREATE TABLE EDGE (Src : INT, Dst : INT);"
                        "CREATE VIEW REACH (A, B) AS ("
                        "  SELECT Src, Dst FROM EDGE"
                        "  UNION"
                        "  SELECT R1.A, R2.B FROM REACH R1, REACH R2"
                        "  WHERE R1.B = R2.A );")
                    .ok());
    for (int n = 1; n <= gc.nodes; ++n) {
      for (int e = 0; e < gc.edges_per_node; ++e) {
        EXPECT_TRUE(db_.session
                        .InsertRow("EDGE", {value::Value::Int(n),
                                            value::Value::Int(node(rng))})
                        .ok());
      }
    }
  }

  void ExpectEquivalent(const std::string& query) {
    exec::QueryOptions no_rewrite;
    no_rewrite.rewrite = false;
    auto raw = db_.session.Query(query, no_rewrite);
    ASSERT_TRUE(raw.ok()) << query << ": " << raw.status().ToString();
    auto optimized = db_.session.Query(query);
    ASSERT_TRUE(optimized.ok())
        << query << ": " << optimized.status().ToString();
    testutil::ExpectSameRows(raw->rows, optimized->rows);
  }

  testutil::FilmDb db_;
};

TEST_P(RewritePreservationTest, SelectionsOverClosure) {
  LoadGraph();
  const GraphCase& gc = GetParam();
  std::mt19937 rng(gc.seed + 1);
  std::uniform_int_distribution<int> node(1, gc.nodes);
  for (int i = 0; i < 4; ++i) {
    int k = node(rng);
    ExpectEquivalent("SELECT A FROM REACH WHERE B = " + std::to_string(k));
    ExpectEquivalent("SELECT B FROM REACH WHERE A = " + std::to_string(k));
  }
  ExpectEquivalent("SELECT Src FROM EDGE WHERE Dst = Src");
}

TEST_P(RewritePreservationTest, JoinsAndUnionsOverEdges) {
  LoadGraph();
  ExpectEquivalent(
      "SELECT E1.Src, E2.Dst FROM EDGE E1, EDGE E2 WHERE E1.Dst = E2.Src "
      "AND E2.Dst = 1");
  ExpectEquivalent(
      "SELECT Src FROM EDGE WHERE Src > 2 UNION "
      "SELECT Dst FROM EDGE WHERE Dst <= 2");
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, RewritePreservationTest,
    ::testing::Values(GraphCase{4, 1, 11}, GraphCase{6, 2, 22},
                      GraphCase{8, 2, 33}, GraphCase{10, 3, 44},
                      GraphCase{12, 1, 55}));

// ---- random qualifications: the optimizer must preserve semantics ----

class QualPreservationTest : public ::testing::TestWithParam<int> {
 protected:
  // A random boolean expression over BEATS' two INT columns.
  std::string RandomQual(std::mt19937* rng, int depth) {
    std::uniform_int_distribution<int> kind(0, depth <= 0 ? 1 : 4);
    std::uniform_int_distribution<int> column(0, 1);
    std::uniform_int_distribution<int> constant(0, 12);
    static const char* kCols[] = {"Winner", "Loser"};
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    std::uniform_int_distribution<int> op(0, 5);
    switch (kind(*rng)) {
      case 0:  // column vs constant
        return std::string(kCols[column(*rng)]) + " " + kOps[op(*rng)] +
               " " + std::to_string(constant(*rng));
      case 1:  // column vs column
        return std::string(kCols[column(*rng)]) + " " + kOps[op(*rng)] +
               " " + kCols[column(*rng)];
      case 2:
        return "(" + RandomQual(rng, depth - 1) + " AND " +
               RandomQual(rng, depth - 1) + ")";
      case 3:
        return "(" + RandomQual(rng, depth - 1) + " OR " +
               RandomQual(rng, depth - 1) + ")";
      default:
        return "NOT (" + RandomQual(rng, depth - 1) + ")";
    }
  }

  testutil::FilmDb db_;
};

TEST_P(QualPreservationTest, RandomQualificationsSurviveOptimization) {
  std::mt19937 rng(GetParam());
  exec::QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  for (int i = 0; i < 25; ++i) {
    std::string query = "SELECT Winner, Loser FROM BEATS WHERE " +
                        RandomQual(&rng, 3);
    auto raw = db_.session.Query(query, no_rewrite);
    ASSERT_TRUE(raw.ok()) << query << ": " << raw.status().ToString();
    auto optimized = db_.session.Query(query);
    ASSERT_TRUE(optimized.ok())
        << query << ": " << optimized.status().ToString();
    testutil::ExpectSameRows(raw->rows, optimized->rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualPreservationTest,
                         ::testing::Values(5, 23, 101, 777, 31337));

// ---- random LERA plans: structural rewriting preserves semantics ----

class PlanPreservationTest : public ::testing::TestWithParam<int> {
 protected:
  // A random relational plan over BEATS/DOMINATE (both through FilmDb),
  // built from FILTER / PROJECT / UNION / DEDUP / DIFFERENCE / INTERSECT /
  // SEARCH so the normalization + merging + pushdown rules all get
  // exercised. Plans keep two INT-comparable columns throughout so set
  // operations stay union-compatible.
  term::TermRef RandomPlan(std::mt19937* rng, int depth) {
    std::uniform_int_distribution<int> kind(0, depth <= 0 ? 0 : 6);
    std::uniform_int_distribution<int> constant(0, 12);
    std::uniform_int_distribution<int> column(1, 2);
    switch (kind(*rng)) {
      case 1:
        return lera::Filter(RandomPlan(rng, depth - 1),
                            term::Term::Apply(
                                term::kGt,
                                {term::Term::Attr(1, column(*rng)),
                                 term::Term::Int(constant(*rng))}));
      case 2:
        return lera::Project(RandomPlan(rng, depth - 1),
                             {term::Term::Attr(1, 2),
                              term::Term::Attr(1, 1)});
      case 3:
        return lera::UnionN(
            {RandomPlan(rng, depth - 1), RandomPlan(rng, depth - 1)});
      case 4:
        return lera::Dedup(RandomPlan(rng, depth - 1));
      case 5:
        return lera::Difference(RandomPlan(rng, depth - 1),
                                RandomPlan(rng, depth - 1));
      case 6:
        return lera::Search(
            {RandomPlan(rng, depth - 1)},
            term::Term::Apply(term::kLe,
                              {term::Term::Attr(1, 1),
                               term::Term::Int(constant(*rng))}),
            {term::Term::Attr(1, 1), term::Term::Attr(1, 2)});
      default:
        return lera::Search({lera::Relation("BEATS")}, term::Term::True(),
                            {term::Term::Attr(1, 1),
                             term::Term::Attr(1, 2)});
    }
  }

  testutil::FilmDb db_;
};

TEST_P(PlanPreservationTest, RandomPlansSurviveOptimization) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    term::TermRef plan = RandomPlan(&rng, 4);
    ASSERT_TRUE(lera::Validate(plan).ok()) << plan->ToString();
    auto raw_rows = db_.session.Run(plan);
    ASSERT_TRUE(raw_rows.ok()) << plan->ToString() << ": "
                               << raw_rows.status().ToString();
    auto rewritten = db_.session.Rewrite(plan);
    ASSERT_TRUE(rewritten.ok()) << plan->ToString();
    auto new_rows = db_.session.Run(rewritten->term);
    ASSERT_TRUE(new_rows.ok()) << rewritten->term->ToString() << ": "
                               << new_rows.status().ToString();
    // Set-level equivalence (bag multiplicities may legitimately differ
    // only where DEDUP/UNION already force set semantics; compare as
    // sets, which is what ESQL-level DISTINCT observes).
    testutil::ExpectSameRows(*raw_rows, *new_rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPreservationTest,
                         ::testing::Values(2, 19, 404, 8080));

// ---- algebraic laws of the collection library ----

class CollectionLawsTest : public ::testing::TestWithParam<int> {
 protected:
  value::Value RandomSet(std::mt19937* rng) {
    std::uniform_int_distribution<int> size(0, 6);
    std::uniform_int_distribution<int> elem(0, 9);
    std::vector<value::Value> elems;
    int n = size(*rng);
    for (int i = 0; i < n; ++i) elems.push_back(value::Value::Int(elem(*rng)));
    return value::Value::Set(std::move(elems));
  }

  value::Value Call(const char* name, std::vector<value::Value> args) {
    auto r = value::FunctionLibrary::Default().Call(name, args);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    return r.ok() ? *r : value::Value::Null();
  }
};

TEST_P(CollectionLawsTest, SetAlgebraLaws) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    value::Value a = RandomSet(&rng), b = RandomSet(&rng),
                 c = RandomSet(&rng);
    // Commutativity and associativity of union / intersection.
    EXPECT_EQ(Call("UNION", {a, b}), Call("UNION", {b, a}));
    EXPECT_EQ(Call("INTERSECTION", {a, b}), Call("INTERSECTION", {b, a}));
    EXPECT_EQ(Call("UNION", {Call("UNION", {a, b}), c}),
              Call("UNION", {a, Call("UNION", {b, c})}));
    // Idempotence.
    EXPECT_EQ(Call("UNION", {a, a}), a);
    EXPECT_EQ(Call("INTERSECTION", {a, a}), a);
    // A \ B ⊆ A and (A \ B) ∩ B = ∅.
    EXPECT_EQ(Call("INCLUDE", {Call("DIFFERENCE", {a, b}), a}),
              value::Value::Bool(true));
    EXPECT_EQ(Call("ISEMPTY",
                   {Call("INTERSECTION", {Call("DIFFERENCE", {a, b}), b})}),
              value::Value::Bool(true));
    // |A ∪ B| + |A ∩ B| = |A| + |B|.
    EXPECT_EQ(Call("COUNT", {Call("UNION", {a, b})}).AsInt() +
                  Call("COUNT", {Call("INTERSECTION", {a, b})}).AsInt(),
              Call("COUNT", {a}).AsInt() + Call("COUNT", {b}).AsInt());
    // Conversion: TOSET(TOBAG(a)) = a.
    EXPECT_EQ(Call("TOSET", {Call("TOBAG", {a})}), a);
    // Membership after insert / remove.
    value::Value e = value::Value::Int(5);
    EXPECT_EQ(Call("MEMBER", {e, Call("INSERT", {e, a})}),
              value::Value::Bool(true));
    EXPECT_EQ(Call("MEMBER", {e, Call("REMOVE", {e, a})}),
              value::Value::Bool(false));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectionLawsTest,
                         ::testing::Values(3, 17, 256, 4096));

}  // namespace
}  // namespace eds
