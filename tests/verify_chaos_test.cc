// Fault injection through the verifier's EDS_FAIL_POINT sites. The
// invariant under test: an injected infrastructure failure must degrade the
// verdict to "inconclusive" (EDS-S011 note) — it must never surface as a
// false EDS-S001 "unsound", and it must never silently certify an unsound
// rule as clean without the inconclusive marker.
#include <string>

#include "gov/failpoint.h"
#include "gtest/gtest.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "rules/semantic.h"
#include "ruledsl/parser.h"
#include "testutil.h"
#include "verify/verify.h"

namespace eds::verify {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

constexpr const char* kSoundRule = "and_comm : (f AND g) / --> (g AND f) / ;";
constexpr const char* kUnsoundRule =
    "drop_predicate : SEARCH(i, f AND g, p) / --> SEARCH(i, f, p) / ;";

rewrite::Rule ParseOne(const std::string& text) {
  auto unit = ruledsl::ParseRuleSource(text);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  return unit->rules.at(0);
}

class VerifyChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { gov::FailPoints::Global().Clear(); }
  void TearDown() override { gov::FailPoints::Global().Clear(); }
};

TEST_F(VerifyChaosTest, InstanceGenerationFaultIsInconclusive) {
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("verify.instance=error"));
  lint::LintReport report;
  RuleVerdict verdict;
  EDS_ASSERT_OK(
      VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &report, &verdict));
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  ASSERT_EQ(report.WithId(kVerifyInconclusive).size(), 1u)
      << report.ToString();
  EXPECT_TRUE(verdict.inconclusive);
  EXPECT_FALSE(verdict.divergence);
}

TEST_F(VerifyChaosTest, ExecutionFaultIsInconclusiveNotUnsound) {
  // Every execution attempt fails: even a genuinely unsound rule must come
  // back "inconclusive", never falsely confirmed or falsely certified.
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("verify.execute=error"));
  lint::LintReport report;
  RuleVerdict verdict;
  EDS_ASSERT_OK(
      VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &report, &verdict));
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_TRUE(verdict.inconclusive);
  EXPECT_GT(verdict.fired, 0u);
  EXPECT_EQ(verdict.checked, 0u);
  ASSERT_EQ(report.WithId(kVerifyInconclusive).size(), 1u)
      << report.ToString();
}

TEST_F(VerifyChaosTest, SingleExecutionFaultStillFindsTheDivergence) {
  // Only the first execution trips; the scan recovers on later databases
  // and still pins the unsound rule.
  EDS_ASSERT_OK(
      gov::FailPoints::Global().Configure("verify.execute=error@1"));
  lint::LintReport report;
  EDS_ASSERT_OK(VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &report));
  EXPECT_EQ(report.WithId(kVerifyDivergence).size(), 1u)
      << report.ToString();
}

TEST_F(VerifyChaosTest, SoundRuleStaysCleanUnderMinimizerFault) {
  // The minimizer is never reached for a sound rule; arming its site must
  // not perturb a clean verdict.
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("verify.minimize=error"));
  lint::LintReport report;
  EDS_ASSERT_OK(VerifyRule(ParseOne(kSoundRule), Registry(), {}, &report));
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST_F(VerifyChaosTest, MinimizerFaultKeepsUnminimizedCounterexample) {
  // A tripped minimizer keeps the full counterexample database — a bigger
  // witness is still a true one, so the S001 verdict stands.
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("verify.minimize=error"));
  lint::LintReport report;
  EDS_ASSERT_OK(VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &report));
  auto hits = report.WithId(kVerifyDivergence);
  ASSERT_EQ(hits.size(), 1u) << report.ToString();
  const std::string& msg = hits[0].message;
  size_t db_pos = msg.find("database:");
  size_t lhs_pos = msg.find("lhs rows:");
  ASSERT_NE(db_pos, std::string::npos);
  ASSERT_NE(lhs_pos, std::string::npos);
  size_t rows = 0;
  for (size_t i = db_pos; i < lhs_pos; ++i) {
    if (msg[i] == '(') ++rows;
  }
  EXPECT_GT(rows, 2u) << msg;  // the un-shrunk corner db, not a 1-row witness
}

TEST_F(VerifyChaosTest, VerdictRecoversOnceFaultsClear) {
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("verify.execute=error"));
  lint::LintReport faulted;
  EDS_ASSERT_OK(VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &faulted));
  EXPECT_EQ(faulted.error_count(), 0u);

  gov::FailPoints::Global().Clear();
  lint::LintReport clean;
  EDS_ASSERT_OK(VerifyRule(ParseOne(kUnsoundRule), Registry(), {}, &clean));
  EXPECT_EQ(clean.WithId(kVerifyDivergence).size(), 1u)
      << clean.ToString();
}

}  // namespace
}  // namespace eds::verify
