// Execution engine: storage, expression evaluation, operators.
#include "exec/executor.h"

#include "gtest/gtest.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::exec {
namespace {

using term::TermRef;
using value::Value;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(StorageTest, TableArityChecked) {
  Table t(2);
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StorageTest, ObjectHeapRoundTrip) {
  ObjectHeap heap;
  Value ref = heap.New("Actor", Value::NamedTuple({"Name"},
                                                  {Value::String("Quinn")}));
  ASSERT_EQ(ref.kind(), value::ValueKind::kObjectRef);
  auto obj = heap.Get(ref.AsObjectRef());
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->type_name, "Actor");
  EXPECT_EQ(*(*obj)->state.FindField("Name"), Value::String("Quinn"));
  // Update in place; references stay valid (object identity).
  EXPECT_TRUE(heap.Update(ref.AsObjectRef(),
                          Value::NamedTuple({"Name"},
                                            {Value::String("Anthony")}))
                  .ok());
  obj = heap.Get(ref.AsObjectRef());
  EXPECT_EQ(*(*obj)->state.FindField("Name"), Value::String("Anthony"));
  // Dangling references fail.
  EXPECT_FALSE(heap.Get(99).ok());
  EXPECT_FALSE(heap.Update(0, Value::Null()).ok());
}

TEST(StorageTest, DatabaseTables) {
  Database db;
  EXPECT_TRUE(db.CreateTable("T", 2).ok());
  EXPECT_EQ(db.CreateTable("t", 1).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.GetTable("U").ok());
}

class ExecTest : public ::testing::Test {
 protected:
  Rows Run(const char* plan, ExecOptions options = {}) {
    Executor executor(&db_.session.catalog(), &db_.session.db(), options);
    auto rows = executor.Execute(P(plan));
    EXPECT_TRUE(rows.ok()) << plan << ": " << rows.status().ToString();
    stats_ = executor.stats();
    return rows.ok() ? *rows : Rows{};
  }

  testutil::FilmDb db_;
  ExecStats stats_;
};

TEST_F(ExecTest, ScanBaseTable) {
  Rows rows = Run("RELATION('FILM')");
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(stats_.rows_scanned, 3u);
}

TEST_F(ExecTest, ViewReferenceEvaluatesDefinition) {
  EDS_ASSERT_OK(db_.session.ExecuteScript(
      "CREATE VIEW Winners (W) AS SELECT Winner FROM BEATS;"));
  Rows rows = Run("RELATION('Winners')");
  EXPECT_EQ(rows.size(), 9u);
}

TEST_F(ExecTest, UnknownRelationFails) {
  Executor executor(&db_.session.catalog(), &db_.session.db(), {});
  EXPECT_EQ(executor.Execute(P("RELATION('GHOST')")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExecTest, SearchSelectProject) {
  Rows rows = Run(
      "SEARCH(LIST(RELATION('BEATS')), ($1.1 > 7), LIST($1.2))");
  ASSERT_EQ(rows.size(), 2u);  // winners 8, 9
  EXPECT_EQ(rows[0][0], Value::Int(9));
  EXPECT_EQ(rows[1][0], Value::Int(10));
}

TEST_F(ExecTest, SearchJoinWithEagerPruning) {
  Rows rows = Run(
      "SEARCH(LIST(RELATION('BEATS'), RELATION('BEATS')), "
      "(($1.1 = 1) AND ($1.2 = $2.1)), LIST($1.1, $2.2))");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(3));  // 1 -> 2 -> 3
  // Eager conjunct evaluation: level-1 conjunct prunes before the join
  // level, so far fewer than 9 * 9 qualification probes happen.
  EXPECT_LT(stats_.qual_evaluations, 30u);
}

TEST_F(ExecTest, ConstantFalseShortCircuits) {
  Rows rows = Run("SEARCH(LIST(RELATION('BEATS')), FALSE, LIST($1.1))");
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(stats_.rows_scanned, 0u);
}

TEST_F(ExecTest, ObjectNavigation) {
  // FIELD(VALUE(ref), 'Name') dereferences the heap.
  Rows rows = Run(
      "SEARCH(LIST(RELATION('APPEARS_IN')), "
      "(FIELD(VALUE($1.2), 'Name') = 'Quinn'), "
      "LIST($1.1, FIELD(VALUE($1.2), 'Salary')))");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1], Value::Int(12000));
}

TEST_F(ExecTest, FieldAutoDereferencesObjects) {
  // FIELD directly on an object reference also works (the executor applies
  // the type conversion, §3.3).
  Rows rows = Run(
      "SEARCH(LIST(RELATION('APPEARS_IN')), TRUE, "
      "LIST(FIELD($1.2, 'Name')))");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(ExecTest, CollectionFunctionsInQualifications) {
  Rows rows = Run(
      "SEARCH(LIST(RELATION('FILM')), MEMBER('Adventure', $1.3), "
      "LIST($1.2))");
  ASSERT_EQ(rows.size(), 2u);  // Zorba and Space Saga
}

TEST_F(ExecTest, UnionDeduplicates) {
  Rows rows = Run("UNION(SET(RELATION('BEATS'), RELATION('BEATS')))");
  EXPECT_EQ(rows.size(), 9u);
}

TEST_F(ExecTest, DifferenceAndIntersect) {
  Rows rows = Run(
      "DIFFERENCE(RELATION('BEATS'), SEARCH(LIST(RELATION('BEATS')), "
      "($1.1 > 5), LIST($1.1, $1.2)))");
  EXPECT_EQ(rows.size(), 5u);
  rows = Run(
      "INTERSECT(RELATION('BEATS'), SEARCH(LIST(RELATION('BEATS')), "
      "($1.1 > 5), LIST($1.1, $1.2)))");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(ExecTest, FilterProjectJoinBasicOps) {
  Rows rows = Run("FILTER(RELATION('BEATS'), ($1.1 = 3))");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 2u);
  rows = Run("PROJECT(RELATION('BEATS'), LIST($1.2, $1.1))");
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows[0][0], Value::Int(2));
  rows = Run(
      "JOIN(RELATION('BEATS'), RELATION('BEATS'), ($1.2 = $2.1))");
  EXPECT_EQ(rows.size(), 8u);  // chain compositions
}

TEST_F(ExecTest, NestGroupsIntoSets) {
  Rows rows = Run("NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')");
  ASSERT_EQ(rows.size(), 3u);  // films 1, 2, 3
  // Film 1 groups two actor references.
  for (const Row& r : rows) {
    if (r[0] == Value::Int(1)) {
      ASSERT_EQ(r[1].kind(), value::ValueKind::kSet);
      EXPECT_EQ(r[1].size(), 2u);
    }
  }
}

TEST_F(ExecTest, UnnestInvertsNest) {
  Rows nested = Run("NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')");
  Rows unnested =
      Run("UNNEST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors'), 2)");
  Rows original = Run("RELATION('APPEARS_IN')");
  testutil::ExpectSameRows(unnested, original);
  EXPECT_LT(nested.size(), unnested.size());
}

TEST_F(ExecTest, NestMultipleColumns) {
  // Nesting two columns produces a set of pairs.
  Rows rows = Run("NEST(RELATION('BEATS'), LIST(1, 2), 'Pairs')");
  ASSERT_EQ(rows.size(), 1u);  // no non-nested columns: one group
  ASSERT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(rows[0][0].size(), 9u);
  EXPECT_EQ(rows[0][0].elements()[0].kind(), value::ValueKind::kTuple);
}

TEST_F(ExecTest, QuantifiersOverNestedSets) {
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW FA (Numf, Actors) AS
      SELECT Numf, MakeSet(Refactor) FROM APPEARS_IN GROUP BY Numf;
  )"));
  // Film 1 has Quinn (12000) and Eva (15000): ALL > 10000 holds. Film 2
  // has Bob (9000): fails.
  Rows rows = Run(
      "SEARCH(LIST(RELATION('FA')), "
      "FORALL($1.2, (FIELD(VALUE(ELEM()), 'Salary') > 10000)), "
      "LIST($1.1))");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[1][0], Value::Int(3));
  rows = Run(
      "SEARCH(LIST(RELATION('FA')), "
      "EXISTS($1.2, (FIELD(VALUE(ELEM()), 'Name') = 'Bob')), LIST($1.1))");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(2));
}

TEST_F(ExecTest, ExpressionErrorsSurface) {
  Executor executor(&db_.session.catalog(), &db_.session.db(), {});
  // ATTR out of range.
  EXPECT_FALSE(
      executor.Execute(P("SEARCH(LIST(RELATION('BEATS')), ($1.9 = 1), "
                         "LIST($1.1))"))
          .ok());
  // Unknown function.
  EXPECT_FALSE(
      executor.Execute(P("SEARCH(LIST(RELATION('BEATS')), NOFN($1.1), "
                         "LIST($1.1))"))
          .ok());
  // VALUE on a non-object.
  EXPECT_FALSE(
      executor.Execute(P("SEARCH(LIST(RELATION('BEATS')), TRUE, "
                         "LIST(VALUE($1.1)))"))
          .ok());
}

TEST_F(ExecTest, ThreeValuedWhereSemantics) {
  // NULL qualification results exclude the row rather than erroring.
  EDS_ASSERT_OK(db_.session.ExecuteScript("CREATE TABLE N (A : INT);"));
  EDS_ASSERT_OK(db_.session.InsertRow("N", {Value::Null()}));
  EDS_ASSERT_OK(db_.session.InsertRow("N", {Value::Int(5)}));
  Rows rows = Run("SEARCH(LIST(RELATION('N')), ($1.1 > 1), LIST($1.1))");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(5));
}

}  // namespace
}  // namespace eds::exec
