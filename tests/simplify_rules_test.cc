// Fig. 12 — predicate simplification rules.
#include "rules/simplify.h"

#include "gtest/gtest.h"
#include "rewrite/engine.h"
#include "rules/semantic.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class SimplifyRulesTest : public ::testing::Test {
 protected:
  SimplifyRulesTest() {
    registry_.InstallStandard();
    InstallSemanticBuiltins(&registry_);
    std::string source =
        std::string(SimplifyRuleSource()) + SemanticMethodRuleSource();
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    engine_ = std::make_unique<rewrite::Engine>(
        &db_.session.catalog(), &registry_, std::move(*prog));
  }

  TermRef Rewrite(const char* query) {
    auto out = engine_->Rewrite(P(query));
    EXPECT_TRUE(out.ok()) << out.status();
    return out.ok() ? out->term : nullptr;
  }

  void ExpectSimplifies(const char* from, const char* to) {
    TermRef out = Rewrite(from);
    EXPECT_TRUE(term::Equals(out, P(to)))
        << from << " simplified to " << out->ToString() << ", want " << to;
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(SimplifyRulesTest, BooleanAbsorption) {
  ExpectSimplifies("F($1.1) AND TRUE", "F($1.1)");
  ExpectSimplifies("TRUE AND F($1.1)", "F($1.1)");
  ExpectSimplifies("F($1.1) AND FALSE", "FALSE");
  ExpectSimplifies("FALSE AND F($1.1)", "FALSE");
  ExpectSimplifies("F($1.1) OR TRUE", "TRUE");
  ExpectSimplifies("F($1.1) OR FALSE", "F($1.1)");
  ExpectSimplifies("NOT(NOT(F($1.1)))", "F($1.1)");
  ExpectSimplifies("F($1.1) AND F($1.1)", "F($1.1)");
  ExpectSimplifies("F($1.1) OR F($1.1)", "F($1.1)");
}

TEST_F(SimplifyRulesTest, SelfComparisons) {
  ExpectSimplifies("$1.1 = $1.1", "TRUE");
  ExpectSimplifies("$1.1 <> $1.1", "FALSE");
  ExpectSimplifies("$1.1 < $1.1", "FALSE");
  ExpectSimplifies("$1.1 <= $1.1", "TRUE");
  ExpectSimplifies("$1.1 > $1.1", "FALSE");
  ExpectSimplifies("$1.1 >= $1.1", "TRUE");
}

TEST_F(SimplifyRulesTest, AdjacentContradictions) {
  // Fig. 12's x > y AND x <= y case.
  ExpectSimplifies("($1.1 > $2.1) AND ($1.1 <= $2.1)", "FALSE");
  ExpectSimplifies("($1.1 <= $2.1) AND ($1.1 > $2.1)", "FALSE");
  ExpectSimplifies("($1.1 < $2.1) AND ($1.1 >= $2.1)", "FALSE");
  ExpectSimplifies("($1.1 = $2.1) AND ($1.1 <> $2.1)", "FALSE");
}

TEST_F(SimplifyRulesTest, SubZeroBecomesEquality) {
  // Fig. 12: x - y = 0 --> x = y.
  ExpectSimplifies("($1.1 - $2.1) = 0", "$1.1 = $2.1");
}

TEST_F(SimplifyRulesTest, ConstantFoldingViaEvaluate) {
  // Fig. 12's last rule: F(x, y) with constant arguments evaluates.
  ExpectSimplifies("G(2 + 3)", "G(5)");
  ExpectSimplifies("G('a' = 'b')", "G(FALSE)");
  ExpectSimplifies("G(ABS(0 - 7))", "G(7)");
  // Folding cascades with absorption.
  ExpectSimplifies("F($1.1) AND (1 > 2)", "FALSE");
}

TEST_F(SimplifyRulesTest, DomainInconsistencyFromSection61) {
  // §6.1's example: MEMBER('Cartoon', {'Comedy', ...}) is false.
  ExpectSimplifies(
      "F($1.1) AND MEMBER('Cartoon', SET('Comedy', 'Adventure', "
      "'Science Fiction', 'Western'))",
      "FALSE");
}

TEST_F(SimplifyRulesTest, StructuralWrappersNotFolded) {
  // The eval_fold guard: LIST/SET nodes under operators keep their shape.
  ExpectSimplifies("NEST(RELATION('APPEARS_IN'), LIST(2), 'A')",
                   "NEST(RELATION('APPEARS_IN'), LIST(2), 'A')");
}

TEST_F(SimplifyRulesTest, AttrsNotFolded) {
  ExpectSimplifies("$1.1 = 5", "$1.1 = 5");
  ExpectSimplifies("$1.1 + 1 = 5", "$1.1 + 1 = 5");
}

TEST_F(SimplifyRulesTest, SimplifyQualMethodCleansSearch) {
  // Non-adjacent duplicate and a TRUE conjunct inside a SEARCH: only the
  // SIMPLIFY_QUAL method (not the adjacent-pair rules) can see both.
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('BEATS')), (($1.1 = 3) AND ($1.2 = 4)) AND "
      "($1.1 = 3), LIST($1.1))");
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('BEATS')), ($1.1 = 3) AND ($1.2 = 4), "
        "LIST($1.1))")));
}

TEST_F(SimplifyRulesTest, WholeQualificationTrueVanishes) {
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('BEATS')), ($1.1 = $1.1) AND (1 < 2), "
      "LIST($1.1))");
  EXPECT_TRUE(term::Equals(
      out, P("SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1))")));
}

TEST_F(SimplifyRulesTest, SimplifiedPlansAreEquivalent) {
  const char* query =
      "SEARCH(LIST(RELATION('BEATS')), (($1.1 > 2) AND TRUE) AND "
      "(($1.1 > 2) OR FALSE), LIST($1.1, $1.2))";
  TermRef raw = P(query);
  TermRef simplified = Rewrite(query);
  ASSERT_FALSE(term::Equals(raw, simplified));
  auto raw_rows = db_.session.Run(raw);
  auto simp_rows = db_.session.Run(simplified);
  ASSERT_TRUE(raw_rows.ok());
  ASSERT_TRUE(simp_rows.ok());
  testutil::ExpectSameRows(*raw_rows, *simp_rows);
}

TEST_F(SimplifyRulesTest, FalseQualShortCircuitsExecution) {
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('BEATS')), ($1.1 > $2.1) AND ($1.1 <= $2.1), "
      "LIST($1.1))");
  exec::ExecStats stats;
  auto rows = db_.session.Run(out, {}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(stats.rows_scanned, 0u);  // inputs never materialized
}

}  // namespace
}  // namespace eds::rules
