// The extensibility story (§1, §4, §7): a database implementor adds new ADT
// functions, new rule methods, and new rewriting rules without touching the
// rewriter's core.
#include "gtest/gtest.h"
#include "rewrite/engine.h"
#include "rules/merging.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds {
namespace {

using term::TermRef;
using value::Value;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(ExtensibilityTest, UserAdtFunctionUsableEverywhere) {
  testutil::FilmDb db;
  // Register a DISTANCE function on Point-like tuples in the catalog's
  // function library; it becomes usable in queries and in constant folding.
  EDS_ASSERT_OK(db.session.catalog().functions().Register(
      "MANHATTAN",
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2 || !args[0].is_numeric() ||
            !args[1].is_numeric()) {
          return Status::TypeError("MANHATTAN expects two numbers");
        }
        double d = args[0].AsReal() - args[1].AsReal();
        return Value::Real(d < 0 ? -d : d);
      }));
  auto result =
      db.session.Query("SELECT Winner FROM BEATS WHERE "
                       "MANHATTAN(Winner, Loser) = 1.0");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 9u);
}

TEST(ExtensibilityTest, UserFunctionConstantFoldsThroughEvaluate) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.catalog().functions().Register(
      "ANSWER", [](const std::vector<Value>&) -> Result<Value> {
        return Value::Int(42);
      }));
  // MANHATTAN-like constants fold away in the rewriter: the qualification
  // ANSWER(0) = 42 disappears entirely.
  auto result = db.session.Query(
      "SELECT Winner FROM BEATS WHERE ANSWER(0) = 42 AND Winner = 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
  std::string plan = result->optimized_plan->ToString();
  EXPECT_EQ(plan.find("ANSWER"), std::string::npos) << plan;
}

TEST(ExtensibilityTest, UserRuleWithUserMethod) {
  // The implementor registers a method SWAP (an "external function
  // programmed in C", §4.1) and a rule using it.
  testutil::FilmDb db;
  rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  EDS_ASSERT_OK(registry.RegisterMethod(
      "SWAP",
      [](const term::TermList& args, term::Bindings* env,
         const rewrite::RewriteContext&) -> Status {
        if (args.size() != 3 || !args[2]->is_variable()) {
          return Status::InvalidArgument("SWAP expects (a, b, out)");
        }
        auto a = term::ApplySubstitution(args[0], *env);
        auto b = term::ApplySubstitution(args[1], *env);
        EDS_RETURN_IF_ERROR(a.status());
        EDS_RETURN_IF_ERROR(b.status());
        env->SetVar(args[2]->var_name(),
                    term::Term::Apply("PAIR", {*b, *a}));
        return Status::OK();
      }));
  auto prog = ruledsl::CompileRuleSource(
      "swap_pairs : PAIR(x, y) / x = 1 --> out / SWAP(x, y, out) ;",
      registry);
  ASSERT_TRUE(prog.ok()) << prog.status();
  rewrite::Engine engine(&db.session.catalog(), &registry, std::move(*prog));
  auto out = engine.Rewrite(P("PAIR(1, 2)"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(out->term, P("PAIR(2, 1)")));
}

TEST(ExtensibilityTest, UserTermFunction) {
  testutil::FilmDb db;
  rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  EDS_ASSERT_OK(registry.RegisterTermFunction(
      "REVERSE",
      [](const term::TermList& args,
         const rewrite::RewriteContext&) -> Result<term::TermRef> {
        term::TermList out(args.rbegin(), args.rend());
        return term::Term::List(std::move(out));
      }));
  // Reversal oscillates under saturation, so the block gets a budget of
  // one condition check — the meta-rule control doing its job (§4.2).
  auto prog = ruledsl::CompileRuleSource(
      "rev : F(LIST(x*)) / --> F(REVERSE(x*)) / ;\n"
      "block(once, {rev}, 1) ;\n"
      "seq({once}, 1) ;",
      registry);
  ASSERT_TRUE(prog.ok()) << prog.status();
  rewrite::Engine engine(&db.session.catalog(), &registry, std::move(*prog));
  auto out = engine.Rewrite(P("F(LIST(a, b, c))"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(out->term, P("F(LIST(c, b, a))")));
}

TEST(ExtensibilityTest, CustomBlockProgramReplacesDefault) {
  // "Changing block definitions or the list of blocks in the sequence
  // meta-rule may completely change the generated optimizer" (§4.2): a
  // merging-only optimizer leaves unions untouched.
  testutil::FilmDb db;
  rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  std::string source = std::string(rules::MergingRuleSource()) +
                       "block(merge_only, {search_merge}, inf) ;\n"
                       "seq({merge_only}, 1) ;";
  auto prog = ruledsl::CompileRuleSource(source, registry);
  ASSERT_TRUE(prog.ok()) << prog.status();
  rewrite::Engine engine(&db.session.catalog(), &registry, std::move(*prog));
  const char* query =
      "SEARCH(LIST(UNION(SET(RELATION('A'), RELATION('B')))), ($1.1 = 1), "
      "LIST($1.1))";
  auto out = engine.Rewrite(P(query));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(out->term, P(query)));  // no push rules loaded
}

TEST(ExtensibilityTest, UserRuleRunsInsideSessionOptimizerViaConstraints) {
  // The catalog constraint channel accepts arbitrary DSL rules — here a
  // domain-specific rewrite that turns a user predicate into a cheaper one.
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.AddConstraint("cheap_eq", R"(
    winner_self : ($1.1 = $1.1) AND f / --> f / ;
  )"));
  auto result = db.session.Query(
      "SELECT Winner FROM BEATS WHERE Winner = Winner AND Loser = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace eds
