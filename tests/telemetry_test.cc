// Serving telemetry: the log-bucketed latency histogram (bucket math,
// quantile error bound, lock-free concurrent recording), the flight
// recorder ring, slow-query capture with retroactive traces, Prometheus
// text exposition, and the QueryService wiring that ties them together.
// Service tests run pumped (workers=0) so latencies are injected
// deterministically via ServiceOptions::test_delay_marker.
#include <atomic>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "srv/service.h"
#include "srv/telemetry.h"
#include "testutil.h"

namespace eds::srv {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;

// ---------------- histogram bucket math ----------------

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < 2 * Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  std::vector<uint64_t> probes = {0, 1, 31, 32, 33, 47, 48, 63, 64, 100,
                                  1000, 4095, 4096, 4097, 1u << 20,
                                  (1u << 20) + 12345, uint64_t{1} << 40,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : probes) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << v;
    EXPECT_GE(Histogram::BucketUpperBound(idx), v) << v;
  }
}

TEST(HistogramTest, BucketIndexIsMonotoneAndContiguous) {
  // Walk every bucket boundary: index must never decrease as values grow,
  // and consecutive buckets must tile the axis with no gap or overlap.
  size_t prev = Histogram::BucketIndex(0);
  EXPECT_EQ(prev, 0u);
  for (size_t idx = 1; idx < Histogram::kBuckets; ++idx) {
    uint64_t lower = Histogram::BucketLowerBound(idx);
    EXPECT_EQ(Histogram::BucketUpperBound(idx - 1) + 1, lower) << idx;
    EXPECT_EQ(Histogram::BucketIndex(lower), idx);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(idx)), idx);
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(HistogramTest, CountSumMaxAreExact) {
  Histogram h;
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 7);
    sum += v * 7;
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, 700u);
  EXPECT_DOUBLE_EQ(snap.mean(), static_cast<double>(sum) / 100.0);
  // p100 clamps to the observed max exactly, not a bucket bound.
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 700u);
}

TEST(HistogramTest, QuantileRelativeErrorIsBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    uint64_t exact =
        static_cast<uint64_t>(q * 1000.0 + 0.9999);  // ceil(q * count)
    uint64_t got = snap.ValueAtQuantile(q);
    // Upper-bucket-bound estimate: never below the true order statistic,
    // and within the 1/kSubCount log-linear relative-error bound.
    EXPECT_GE(got, exact) << q;
    EXPECT_LE(got, exact + exact / Histogram::kSubCount + 1) << q;
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZeros) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

// Run under the tsan preset this is the data-race check for the sharded
// relaxed-atomic record path; under any preset it checks the cross-shard
// tally invariant (count == sum of bucket counts, sum and max exact).
TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((i % 1000) + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.max, 999u + kThreads - 1);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (i % 1000) + static_cast<uint64_t>(t);
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

// ---------------- Prometheus text exposition ----------------

TEST(PrometheusTest, RendersTypedAndSanitizedMetrics) {
  MetricsRegistry registry;
  registry.Counter("srv.completed", 42);
  registry.Gauge("srv.latency.serve.p99", 1234.5);
  std::string out = registry.ToPrometheus();
  EXPECT_NE(out.find("# TYPE srv_completed counter"), std::string::npos)
      << out;
  EXPECT_NE(out.find("srv_completed 42"), std::string::npos) << out;
  EXPECT_NE(out.find("# TYPE srv_latency_serve_p99 gauge"), std::string::npos)
      << out;
  // No dotted names may survive sanitization.
  for (size_t pos = 0; (pos = out.find("srv.", pos)) != std::string::npos;
       ++pos) {
    FAIL() << "unsanitized name at " << pos << ": " << out;
  }
}

TEST(PrometheusTest, HistogramSeriesIsCumulativeAndEndsAtInf) {
  MetricsRegistry registry;
  Histogram h;
  for (uint64_t v = 1; v <= 500; ++v) h.Record(v * 3);
  registry.Histogram("srv.latency.serve", h.Snapshot());
  std::string out = registry.ToPrometheus();
  EXPECT_NE(out.find("# TYPE srv_latency_serve histogram"), std::string::npos)
      << out;
  EXPECT_NE(out.find("srv_latency_serve_sum"), std::string::npos) << out;
  EXPECT_NE(out.find("srv_latency_serve_count 500"), std::string::npos) << out;

  // Walk the _bucket series: le strictly increasing, counts cumulative
  // (non-decreasing), final +Inf bucket equal to the total count.
  std::istringstream lines(out);
  std::string line;
  double prev_le = -1.0;
  uint64_t prev_count = 0;
  uint64_t inf_count = 0;
  size_t buckets = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "srv_latency_serve_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    ++buckets;
    size_t quote = line.find('"', prefix.size());
    ASSERT_NE(quote, std::string::npos) << line;
    std::string le = line.substr(prefix.size(), quote - prefix.size());
    uint64_t count = std::stoull(line.substr(line.find('}') + 2));
    EXPECT_GE(count, prev_count) << line;
    prev_count = count;
    if (le == "+Inf") {
      inf_count = count;
    } else {
      double le_value = std::stod(le);
      EXPECT_GT(le_value, prev_le) << line;
      prev_le = le_value;
    }
  }
  EXPECT_GT(buckets, 2u) << out;
  EXPECT_EQ(inf_count, 500u) << out;
}

// ---------------- flight recorder ----------------

QueryRecord MakeRecord(const std::string& text, uint64_t serve_ns) {
  QueryRecord rec;
  rec.text = text;
  rec.serve_ns = serve_ns;
  return rec;
}

TEST(FlightRecorderTest, BoundsRetentionAndStampsSeq) {
  FlightRecorder recorder(4);
  for (int i = 1; i <= 10; ++i) {
    uint64_t seq = recorder.Add(MakeRecord("q" + std::to_string(i), i));
    EXPECT_EQ(seq, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(recorder.total_added(), 10u);
  std::vector<QueryRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);  // capacity bound
  // Newest first, seq monotone in admission order.
  EXPECT_EQ(recent[0].seq, 10u);
  EXPECT_EQ(recent[1].seq, 9u);
  EXPECT_EQ(recent[3].seq, 7u);
  EXPECT_EQ(recorder.Recent(2).size(), 2u);
}

TEST(FlightRecorderTest, SlowestRanksByServeTime) {
  FlightRecorder recorder(8);
  recorder.Add(MakeRecord("fast", 5));
  recorder.Add(MakeRecord("slowest", 50));
  recorder.Add(MakeRecord("middle", 20));
  std::vector<QueryRecord> slowest = recorder.Slowest(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].text, "slowest");
  EXPECT_EQ(slowest[1].text, "middle");
}

TEST(FlightRecorderTest, CapacityZeroCountsWithoutRetaining) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.Add(MakeRecord("a", 1)), 1u);
  EXPECT_EQ(recorder.Add(MakeRecord("b", 2)), 2u);
  EXPECT_TRUE(recorder.Recent().empty());
  EXPECT_EQ(recorder.total_added(), 2u);
}

// ---------------- record JSON + slow log ----------------

TEST(QueryRecordJsonTest, EscapesTextAndEmbedsTraceVerbatim) {
  QueryRecord rec;
  rec.seq = 7;
  rec.text = "SELECT \"x\\y\"";
  rec.slow = true;
  rec.trace_json = "{\"traceEvents\":[]}\n";
  std::string json = QueryRecordToJson(rec);
  EXPECT_NE(json.find("\"text\":\"SELECT \\\"x\\\\y\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"slow\":true"), std::string::npos) << json;
  // Embedded as a JSON object, trailing newline stripped, no escaping.
  EXPECT_NE(json.find("\"trace\":{\"traceEvents\":[]}"), std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_EQ(json.back(), '}');
}

TEST(QueryRecordJsonTest, FailedQueryCarriesErrorAndOutcome) {
  QueryRecord rec;
  rec.ok = false;
  rec.error = "RuntimeError: boom";
  EXPECT_STREQ(CacheOutcomeName(rec), "error");
  std::string json = QueryRecordToJson(rec);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\":\"RuntimeError: boom\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"outcome\":\"error\""), std::string::npos) << json;
  // No trace key without a captured trace.
  EXPECT_EQ(json.find("\"trace\":"), std::string::npos) << json;
}

TEST(QueryRecordJsonTest, OutcomeNamesFollowCachePrecedence) {
  QueryRecord rec;
  EXPECT_STREQ(CacheOutcomeName(rec), "miss");
  rec.cache_hit = true;
  EXPECT_STREQ(CacheOutcomeName(rec), "tmpl");
  rec.l0_hit = true;  // L0 outranks the template cache
  EXPECT_STREQ(CacheOutcomeName(rec), "l0");
  rec.ok = false;  // errors outrank everything
  EXPECT_STREQ(CacheOutcomeName(rec), "error");
}

TEST(SlowQueryLogTest, AppendsOneJsonLinePerRecord) {
  std::string path = testing::TempDir() + "/eds_slow_log_test.jsonl";
  std::remove(path.c_str());
  SlowQueryLog log(path);
  EXPECT_EQ(log.appended(), 0u);
  EDS_ASSERT_OK(log.Append(MakeRecord("SELECT 1", 100)));
  EDS_ASSERT_OK(log.Append(MakeRecord("SELECT 2", 200)));
  EXPECT_EQ(log.appended(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

// ---------------- service wiring (workers=0, pumped) ----------------

ServiceOptions PumpedOptions() {
  ServiceOptions options;
  options.workers = 0;
  return options;
}

Result<ServedQuery> PumpOne(QueryService* service,
                            std::future<Result<ServedQuery>> future) {
  EXPECT_TRUE(service->ServeQueuedForTesting());
  return future.get();
}

TEST(ServiceTelemetryTest, RecorderTracksOutcomesNewestFirst) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  EXPECT_TRUE(service.telemetry_enabled());

  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  EDS_ASSERT_OK_RESULT(PumpOne(&service, service.Submit(q)));
  EDS_ASSERT_OK_RESULT(PumpOne(&service, service.Submit(q)));

  std::vector<QueryRecord> recent = service.RecentQueries();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_STREQ(CacheOutcomeName(recent[0]), "l0");   // newest: exact repeat
  EXPECT_STREQ(CacheOutcomeName(recent[1]), "miss");  // first sighting
  EXPECT_EQ(recent[1].seq, 1u);
  EXPECT_EQ(recent[0].seq, 2u);
  EXPECT_NE(recent[1].template_hash, 0u);  // miss path fingerprints
  EXPECT_EQ(recent[0].template_hash, 0u);  // L0 path never fingerprints
  EXPECT_EQ(recent[1].text, q);
  EXPECT_GT(recent[1].serve_ns, 0u);
  EXPECT_GT(recent[1].phases.total_ns, 0u);
  service.Stop();
}

TEST(ServiceTelemetryTest, TemplateHitSharesTheMissesHash) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1")));
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 2")));
  std::vector<QueryRecord> recent = service.RecentQueries();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_STREQ(CacheOutcomeName(recent[0]), "tmpl");
  EXPECT_NE(recent[0].template_hash, 0u);
  // Same structure, different literal: the workload grouping key matches.
  EXPECT_EQ(recent[0].template_hash, recent[1].template_hash);
  service.Stop();
}

TEST(ServiceTelemetryTest, TelemetryOffCostsAndRecordsNothing) {
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.telemetry = false;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  EXPECT_FALSE(service.telemetry_enabled());
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 7")));
  EXPECT_TRUE(service.RecentQueries().empty());
  EXPECT_TRUE(service.SlowestQueries(5).empty());
  EXPECT_EQ(service.slow_queries_logged(), 0u);

  MetricsRegistry registry;
  service.ExportMetrics(&registry);
  EXPECT_TRUE(registry.Has("srv.submitted"));  // tallies still export
  EXPECT_FALSE(registry.Has("srv.latency.serve.count"));
  EXPECT_FALSE(registry.Has("srv.flight_recorder.total"));
  service.Stop();
}

TEST(ServiceTelemetryTest, FailedQueryRecordedAsError) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  auto future = service.Submit("SELECT Nope FROM NOWHERE");
  auto served = PumpOne(&service, std::move(future));
  EXPECT_FALSE(served.ok());

  std::vector<QueryRecord> recent = service.RecentQueries();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_FALSE(recent[0].ok);
  EXPECT_STREQ(CacheOutcomeName(recent[0]), "error");
  EXPECT_FALSE(recent[0].error.empty());
  service.Stop();
}

// The acceptance pin: inject a known delay, assert it shows up in the
// latency quantiles, the slowest-queries view, the attached trace, and
// the JSONL slow log.
TEST(ServiceTelemetryTest, InjectedSlowQueryIsCapturedEndToEnd) {
  constexpr uint64_t kDelayNs = 20'000'000;  // 20ms
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.test_delay_marker = "777";
  options.test_delay_ns = kDelayNs;
  options.slow_query_ns = kDelayNs / 2;
  options.slow_query_log_path =
      testing::TempDir() + "/eds_telemetry_slow.jsonl";
  std::remove(options.slow_query_log_path.c_str());
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());

  for (int i = 0; i < 8; ++i) {
    EDS_ASSERT_OK_RESULT(PumpOne(
        &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > " +
                                 std::to_string(i))));
  }
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service,
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 777")));

  // The slowest retained query is the delayed one, flagged slow, with its
  // retroactively captured span trace attached.
  std::vector<QueryRecord> slowest = service.SlowestQueries(1);
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_NE(slowest[0].text.find("777"), std::string::npos);
  EXPECT_TRUE(slowest[0].slow);
  EXPECT_GE(slowest[0].serve_ns, kDelayNs);
  ASSERT_FALSE(slowest[0].trace_json.empty());
  EXPECT_NE(slowest[0].trace_json.find("srv.injected_delay"),
            std::string::npos)
      << slowest[0].trace_json;

  // None of the fast queries were flagged.
  for (const QueryRecord& rec : service.RecentQueries()) {
    if (rec.text.find("777") == std::string::npos) EXPECT_FALSE(rec.slow);
  }

  // The latency quantiles see the injection: p50 stays fast, p99 and max
  // absorb the delayed query (9 samples: p99 is the slowest, p50 is not).
  MetricsRegistry registry;
  service.ExportMetrics(&registry);
  EXPECT_EQ(registry.Get("srv.latency.serve.count"), 9.0);
  EXPECT_LT(registry.Get("srv.latency.serve.p50"),
            static_cast<double>(kDelayNs));
  EXPECT_GE(registry.Get("srv.latency.serve.p99"),
            static_cast<double>(kDelayNs));
  EXPECT_GE(registry.Get("srv.latency.serve.max"),
            static_cast<double>(kDelayNs));
  EXPECT_EQ(registry.Get("srv.slow_queries.logged"), 1.0);

  // And the JSONL log has exactly the one slow line, trace included.
  EXPECT_EQ(service.slow_queries_logged(), 1u);
  std::ifstream in(options.slow_query_log_path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"trace\":"), std::string::npos) << line;
  EXPECT_NE(line.find("777"), std::string::npos) << line;
  EXPECT_FALSE(std::getline(in, line));  // exactly one
  service.Stop();
  std::remove(options.slow_query_log_path.c_str());
}

TEST(ServiceTelemetryTest, P99MultipleFlagsOutlierAfterWarmup) {
  constexpr uint64_t kDelayNs = 50'000'000;  // 50ms, >> any fast serve p99
  testutil::FilmDb db;
  ServiceOptions options = PumpedOptions();
  options.test_delay_marker = "777";
  options.test_delay_ns = kDelayNs;
  options.slow_query_p99_multiple = 3.0;  // no absolute threshold
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());

  // 40 fast queries establish the trailing p99 (the policy needs >= 32
  // samples before the relative threshold can fire at all).
  for (int i = 0; i < 40; ++i) {
    EDS_ASSERT_OK_RESULT(PumpOne(
        &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > " +
                                 std::to_string(i % 10))));
  }
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service,
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 777")));

  std::vector<QueryRecord> recent = service.RecentQueries(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_NE(recent[0].text.find("777"), std::string::npos);
  EXPECT_TRUE(recent[0].slow);
  EXPECT_FALSE(recent[0].trace_json.empty());
  service.Stop();
}

TEST(ServiceTelemetryTest, ExportMetricsCoversEverySurface) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  EDS_ASSERT_OK_RESULT(PumpOne(&service, service.Submit(q)));
  EDS_ASSERT_OK_RESULT(PumpOne(&service, service.Submit(q)));

  MetricsRegistry registry;
  service.ExportMetrics(&registry);
  for (const char* name :
       {"srv.submitted", "srv.admitted", "srv.completed", "srv.failed",
        "srv.queue_depth", "srv.max_queue_depth", "srv.flight_recorder.total",
        "srv.slow_queries.logged", "cache.hits", "cache.misses",
        "srv.l0.hits", "srv.l0.misses", "gov.deadline_trips",
        "srv.latency.queue.count", "srv.latency.serve.p50",
        "srv.latency.serve.p90", "srv.latency.serve.p99",
        "srv.latency.serve.max", "srv.latency.serve.l0_hit.count",
        "srv.latency.execute.count"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  EXPECT_EQ(registry.Get("srv.completed"), 2.0);
  EXPECT_EQ(registry.Get("srv.queue_depth"), 0.0);
  EXPECT_EQ(registry.Get("srv.flight_recorder.total"), 2.0);
  EXPECT_EQ(registry.Get("srv.l0.hits"), 1.0);
  // One L0 hit, one miss: the serve split buckets each exactly once.
  EXPECT_EQ(registry.Get("srv.latency.serve.l0_hit.count"), 1.0);
  EXPECT_EQ(registry.Get("srv.latency.serve.miss.count"), 1.0);
  // The L0 hit skipped the parser, so parse has one sample, not two.
  EXPECT_EQ(registry.Get("srv.latency.parse.count"), 1.0);
  service.Stop();
}

TEST(ServiceTelemetryTest, WriteTelemetrySnapshotRendersPrometheus) {
  testutil::FilmDb db;
  QueryService service(&db.session, PumpedOptions());
  EDS_ASSERT_OK(service.Start());
  EDS_ASSERT_OK_RESULT(PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 7")));

  std::string path = testing::TempDir() + "/eds_telemetry_snapshot.prom";
  EDS_ASSERT_OK(service.WriteTelemetrySnapshot(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string out = buffer.str();
  EXPECT_EQ(out.rfind("# TYPE", 0), 0u) << out.substr(0, 80);
  EXPECT_NE(out.find("srv_completed 1"), std::string::npos);
  EXPECT_NE(out.find("srv_latency_serve_count 1"), std::string::npos);
  EXPECT_NE(out.find("srv_latency_serve_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  service.Stop();
  std::remove(path.c_str());
}

// The periodic exporter thread: the final snapshot written at Stop() must
// reflect the full tally even if no interval ever elapsed.
TEST(ServiceTelemetryTest, ExportThreadWritesFinalSnapshotOnStop) {
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 1;
  options.telemetry_export_path =
      testing::TempDir() + "/eds_telemetry_periodic.prom";
  options.telemetry_export_interval_ms = 3'600'000;  // only the Stop() write
  std::remove(options.telemetry_export_path.c_str());
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  auto future =
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 7");
  auto served = future.get();
  EDS_ASSERT_OK_RESULT(served);
  service.Stop();

  std::ifstream in(options.telemetry_export_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("srv_completed 1"), std::string::npos)
      << buffer.str();
  std::remove(options.telemetry_export_path.c_str());
}

}  // namespace
}  // namespace eds::srv
