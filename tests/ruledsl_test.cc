#include "ruledsl/compiler.h"
#include "ruledsl/lexer.h"
#include "ruledsl/parser.h"

#include "gtest/gtest.h"
#include "rewrite/engine.h"
#include "term/parser.h"

namespace eds::ruledsl {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    return r;
  }();
  return *reg;
}

TEST(LexerTest, StripCommentsRespectsStrings) {
  EXPECT_EQ(StripComments("a # comment\nb"), "a          \nb");
  // '#' inside a string literal is not a comment.
  std::string s = StripComments("x : F('#') / --> y / ;");
  EXPECT_NE(s.find("'#'"), std::string::npos);
}

TEST(ParserTest, MinimalRule) {
  auto unit = ParseRuleSource("collapse : UNION(SET(x)) / --> x / ;");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->rules.size(), 1u);
  const rewrite::Rule& r = unit->rules[0];
  EXPECT_EQ(r.name, "collapse");
  EXPECT_TRUE(r.constraints.empty());
  EXPECT_TRUE(r.methods.empty());
  EXPECT_TRUE(term::Equals(r.rhs, term::ParseTerm("x").value()));
}

TEST(ParserTest, ConstraintsAndMethods) {
  auto unit = ParseRuleSource(R"(
    dedup : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE
            --> F(SET(x*)) / ;
    fold : ?F(x, y) / ISA(x, CONSTANT), ISA(y, CONSTANT)
           --> a / EVALUATE(?F(x, y), a) ;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->rules.size(), 2u);
  EXPECT_EQ(unit->rules[0].constraints.size(), 2u);
  ASSERT_EQ(unit->rules[1].methods.size(), 1u);
  EXPECT_EQ(unit->rules[1].methods[0].name, "EVALUATE");
  EXPECT_EQ(unit->rules[1].methods[0].args.size(), 2u);
}

TEST(ParserTest, ConstraintsJoinedWithAnd) {
  // Fig. 11 writes constraints joined by "and"; a single AND-ed constraint
  // term is equivalent to comma-separated ones.
  auto unit = ParseRuleSource(R"(
    r : INCLUDE(x, y) / ISA(x, SET) AND ISA(y, SET) --> INCLUDE(x, y) / ;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->rules[0].constraints.size(), 1u);
  EXPECT_TRUE(unit->rules[0].constraints[0]->IsApply(term::kAnd, 2));
}

TEST(ParserTest, BlockAndSeq) {
  auto unit = ParseRuleSource(R"(
    a : F(x) / --> G(x) / ;
    b : G(x) / --> H(x) / ;
    block(first, {a}, inf) ;
    block(second, {a, b}, 10) ;
    seq({first, second}, 2) ;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->blocks.size(), 2u);
  EXPECT_EQ(unit->blocks[0].name, "first");
  EXPECT_EQ(unit->blocks[0].limit, rewrite::kSaturate);
  EXPECT_EQ(unit->blocks[1].limit, 10);
  EXPECT_EQ(unit->blocks[1].rule_names.size(), 2u);
  ASSERT_TRUE(unit->seq.has_value());
  EXPECT_EQ(unit->seq->limit, 2);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRuleSource("nocolon F(x) / --> x / ;").ok());
  EXPECT_FALSE(ParseRuleSource("r : F(x) --> x / ;").ok());   // missing '/'
  EXPECT_FALSE(ParseRuleSource("r : F(x) / --> x / ").ok());  // missing ';'
  EXPECT_FALSE(ParseRuleSource("block(b, {a}, -1) ;").ok());
  EXPECT_FALSE(ParseRuleSource("seq({a}, inf) ; seq({a}, 1) ;").ok());
}

TEST(ParserTest, PaperFig6ExampleRule) {
  // "F(SET(x*, G(y, f))) / MEMBER(y, x*), f=TRUE --> F(x*) /" — §4.1's
  // syntactically-correct example (RHS written F(SET(x*)) since our F
  // keeps its SET wrapper explicit).
  auto unit = ParseRuleSource(
      "example : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE "
      "--> F(SET(x*)) / ;");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(
      rewrite::ValidateRule(unit->rules[0], Registry()).ok());
}

TEST(CompilerTest, ImplicitSingleBlock) {
  auto prog = CompileRuleSource(R"(
    a : F(x) / --> G(x) / ;
    b : G(x) / --> H(x) / ;
  )",
                                Registry());
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_EQ(prog->blocks.size(), 1u);
  EXPECT_EQ(prog->blocks[0].rules.size(), 2u);
  EXPECT_EQ(prog->blocks[0].limit, rewrite::kSaturate);
  EXPECT_EQ(prog->seq_limit, 1);
}

TEST(CompilerTest, BlocksResolveRuleNames) {
  auto prog = CompileRuleSource(R"(
    a : F(x) / --> G(x) / ;
    block(only_a, {a}, 5) ;
  )",
                                Registry());
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_EQ(prog->blocks.size(), 1u);
  EXPECT_EQ(prog->blocks[0].limit, 5);
}

TEST(CompilerTest, SameRuleInSeveralBlocks) {
  // §4.2: "the same rule may appear in different blocks and the same block
  // may be executed several times."
  auto prog = CompileRuleSource(R"(
    a : F(x) / --> G(x) / ;
    block(b1, {a}, inf) ;
    block(b2, {a}, inf) ;
    seq({b1, b2, b1}, 3) ;
  )",
                                Registry());
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_EQ(prog->blocks.size(), 3u);
  EXPECT_EQ(prog->seq_limit, 3);
}

TEST(CompilerTest, UnknownRuleInBlock) {
  auto prog = CompileRuleSource("block(b, {ghost}, 1) ;", Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kNotFound);
}

TEST(CompilerTest, UnknownMethodRejected) {
  auto prog = CompileRuleSource(
      "r : F(x) / --> y / NO_SUCH_METHOD(x, y) ;", Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kNotFound);
}

TEST(CompilerTest, UnboundRhsVariableRejected) {
  auto prog =
      CompileRuleSource("r : F(x) / --> G(y) / ;", Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerTest, UnboundConstraintVariableRejected) {
  auto prog = CompileRuleSource(
      "r : F(x) / y = TRUE --> F(x) / ;", Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerTest, MethodOutputsSatisfyRhs) {
  auto prog = CompileRuleSource(
      "r : F(x) / --> G(out) / EVALUATE(x, out) ;", Registry());
  ASSERT_TRUE(prog.ok()) << prog.status();
}

TEST(CompilerTest, TwoCollVarsInSetPatternRejected) {
  auto prog = CompileRuleSource(
      "r : F(SET(x*, y*)) / --> F(SET(x*, y*)) / ;", Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerTest, DuplicateRuleNameRejected) {
  auto prog = CompileRuleSource(R"(
    a : F(x) / --> x / ;
    a : G(x) / --> x / ;
  )",
                                Registry());
  EXPECT_EQ(prog.status().code(), StatusCode::kAlreadyExists);
}

TEST(CompilerTest, RuleToStringShowsAllSections) {
  auto unit = ParseRuleSource(
      "fold : ?F(x, y) / ISA(x, CONSTANT) --> a / EVALUATE(?F(x, y), a) ;");
  ASSERT_TRUE(unit.ok());
  std::string s = unit->rules[0].ToString();
  EXPECT_NE(s.find("fold"), std::string::npos);
  EXPECT_NE(s.find("-->"), std::string::npos);
  EXPECT_NE(s.find("EVALUATE"), std::string::npos);
}

}  // namespace
}  // namespace eds::ruledsl
