#include "lera/lera.h"

#include "gtest/gtest.h"
#include "lera/printer.h"
#include "lera/schema.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::lera {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(LeraTest, ConstructorsProduceCanonicalTerms) {
  TermRef s = Search({Relation("FILM")}, term::Term::True(),
                     {Attr(1, 1), Attr(1, 2)});
  EXPECT_TRUE(term::Equals(
      s, P("SEARCH(LIST(RELATION('FILM')), TRUE, LIST($1.1, $1.2))")));
  EXPECT_TRUE(IsSearch(s));
  EXPECT_TRUE(term::Equals(UnionN({Relation("A"), Relation("B")}),
                           P("UNION(SET(RELATION('A'), RELATION('B')))")));
  EXPECT_TRUE(term::Equals(Fix("BT", Relation("D")),
                           P("FIX(RELATION('BT'), RELATION('D'))")));
  EXPECT_TRUE(term::Equals(Nest(Relation("T"), {2, 3}, "S"),
                           P("NEST(RELATION('T'), LIST(2, 3), 'S')")));
  EXPECT_TRUE(term::Equals(FieldAccess(ValueOf(Attr(1, 2)), "Salary"),
                           P("FIELD(VALUE($1.2), 'Salary')")));
}

TEST(LeraTest, Recognizers) {
  EXPECT_TRUE(IsRelation(P("RELATION('X')")));
  EXPECT_FALSE(IsRelation(P("RELATION(1)")));
  EXPECT_FALSE(IsRelation(P("REL('X')")));
  EXPECT_TRUE(IsAttr(P("$3.4")));
  EXPECT_FALSE(IsAttr(P("ATTR(x, 1)")));
  EXPECT_TRUE(IsUnion(P("UNION(SET(RELATION('A')))")));
  EXPECT_FALSE(IsUnion(P("UNION(LIST(RELATION('A')))")));
  EXPECT_TRUE(IsFix(P("FIX(RELATION('R'), RELATION('B'))")));
  EXPECT_FALSE(IsFix(P("FIX(x, RELATION('B'))")));
}

TEST(LeraTest, Accessors) {
  TermRef s = P("SEARCH(LIST(RELATION('A'), RELATION('B')), ($1.1 = $2.1), "
                "LIST($1.2))");
  auto inputs = SearchInputs(s);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 2u);
  auto qual = SearchQual(s);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("$1.1 = $2.1")));
  auto name = RelationName((*inputs)[0]);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "A");
  auto attr = GetAttr(P("$2.3"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->input, 2);
  EXPECT_EQ(attr->column, 3);
}

TEST(LeraTest, ValidateAcceptsWellFormedTrees) {
  for (const char* text : {
           "RELATION('T')",
           "SEARCH(LIST(RELATION('T')), ($1.1 > 5), LIST($1.1))",
           "UNION(SET(RELATION('A'), RELATION('B')))",
           "DIFFERENCE(RELATION('A'), RELATION('B'))",
           "FIX(RELATION('R'), UNION(SET(RELATION('B'), "
           "SEARCH(LIST(RELATION('R'), RELATION('R')), ($1.2 = $2.1), "
           "LIST($1.1, $2.2)))))",
           "NEST(RELATION('T'), LIST(2), 'S')",
           "UNNEST(RELATION('T'), 2)",
           "FILTER(RELATION('T'), ($1.1 = 1))",
           "PROJECT(RELATION('T'), LIST($1.1))",
           "JOIN(RELATION('A'), RELATION('B'), ($1.1 = $2.1))",
       }) {
    EXPECT_TRUE(Validate(P(text)).ok()) << text;
  }
}

TEST(LeraTest, ValidateRejectsMalformedTrees) {
  for (const char* text : {
           "SEARCH(LIST(), TRUE, LIST($1.1))",          // no inputs
           "SEARCH(LIST(RELATION('T')), TRUE, LIST())", // no projections
           "SEARCH(RELATION('T'), TRUE, LIST($1.1))",   // inputs not LIST
           "UNION(SET())",                              // empty union
           "UNION(LIST(RELATION('T')))",                // not a SET
           "SEARCH(LIST(x), TRUE, LIST($1.1))",         // variable in query
           "SEARCH(LIST(1), TRUE, LIST($1.1))",         // constant as input
           "FIX(RELATION('R'), 1)",                     // constant body
           "SEARCH(LIST(RELATION('T')), ($0.1 = 1), LIST($1.1))",  // bad idx
       }) {
    EXPECT_FALSE(Validate(P(text)).ok()) << text;
  }
}

TEST(LeraTest, CollectAndMapAttrs) {
  TermRef e = P("($1.1 = $2.3) AND MEMBER($2.1, SET('x'))");
  std::vector<AttrRef> attrs;
  CollectAttrs(e, &attrs);
  ASSERT_EQ(attrs.size(), 3u);
  TermRef shifted = MapAttrs(e, [](int64_t i, int64_t j) {
    return term::Term::Attr(i + 10, j);
  });
  EXPECT_TRUE(term::Equals(
      shifted, P("($11.1 = $12.3) AND MEMBER($12.1, SET('x'))")));
  // Identity mapping preserves structure (fresh ATTR nodes, equal term).
  TermRef same = MapAttrs(e, [](int64_t i, int64_t j) {
    return term::Term::Attr(i, j);
  });
  EXPECT_TRUE(term::Equals(same, e));
  // Attr-free subtrees are shared untouched.
  TermRef no_attrs = P("MEMBER('x', SET('a'))");
  EXPECT_EQ(MapAttrs(no_attrs, [](int64_t i, int64_t j) {
              return term::Term::Attr(i, j);
            }).get(),
            no_attrs.get());
}

class SchemaTest : public ::testing::Test {
 protected:
  SchemaTest() : db_() {}
  testutil::FilmDb db_;
  const catalog::Catalog& cat() { return db_.session.catalog(); }
};

TEST_F(SchemaTest, BaseRelation) {
  auto s = InferSchema(P("RELATION('FILM')"), cat());
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ((*s)[0].name, "Numf");
  EXPECT_EQ((*s)[2].type->kind(), types::TypeKind::kSet);
}

TEST_F(SchemaTest, SearchProjectionNamesAndTypes) {
  auto s = InferSchema(
      P("SEARCH(LIST(RELATION('FILM'), RELATION('APPEARS_IN')), "
        "($1.1 = $2.1), LIST($1.2, FIELD(VALUE($2.2), 'Salary')))"),
      cat());
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ((*s)[0].name, "Title");
  EXPECT_EQ((*s)[1].name, "Salary");
  EXPECT_TRUE((*s)[1].type->is_numeric());
}

TEST_F(SchemaTest, NestSchema) {
  auto s = InferSchema(P("NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')"),
                       cat());
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ((*s)[0].name, "Numf");
  EXPECT_EQ((*s)[1].name, "Actors");
  ASSERT_EQ((*s)[1].type->kind(), types::TypeKind::kSet);
  EXPECT_EQ((*s)[1].type->element()->name(), "Actor");
}

TEST_F(SchemaTest, UnnestInvertsNest) {
  auto s = InferSchema(
      P("UNNEST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors'), 2)"), cat());
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ((*s)[1].name, "Actors");
  EXPECT_EQ((*s)[1].type->name(), "Actor");
}

TEST_F(SchemaTest, UnionTakesFirstBranchSchema) {
  auto s = InferSchema(
      P("UNION(SET(RELATION('BEATS'), RELATION('BEATS')))"), cat());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->size(), 2u);
}

TEST_F(SchemaTest, FixUsesBaseBranch) {
  auto s = InferSchema(
      P("FIX(RELATION('TC'), UNION(SET(RELATION('BEATS'), "
        "SEARCH(LIST(RELATION('TC'), RELATION('TC')), ($1.2 = $2.1), "
        "LIST($1.1, $2.2)))))"),
      cat());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ((*s)[0].name, "Winner");
}

TEST_F(SchemaTest, SchemaEnvOverridesCatalog) {
  SchemaEnv env;
  env["GHOST"] = {types::Field{"X", cat().types().int_type()}};
  auto s = InferSchema(P("RELATION('GHOST')"), cat(), &env);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)[0].name, "X");
  EXPECT_FALSE(InferSchema(P("RELATION('GHOST')"), cat()).ok());
}

TEST_F(SchemaTest, ExprTypes) {
  std::vector<Schema> inputs = {
      {types::Field{"N", cat().types().int_type()},
       types::Field{"S", types::Type::MakeCollection(
                             types::TypeKind::kSet,
                             cat().types().char_type())}}};
  auto check = [&](const char* text, types::TypeKind kind) {
    auto t = InferExprType(P(text), inputs, cat());
    ASSERT_TRUE(t.ok()) << text << ": " << t.status();
    EXPECT_EQ((*t)->kind(), kind) << text;
  };
  check("$1.1", types::TypeKind::kInt);
  check("$1.1 + 1", types::TypeKind::kInt);
  check("$1.1 + 1.5", types::TypeKind::kReal);
  check("$1.1 = 3", types::TypeKind::kBool);
  check("MEMBER('a', $1.2)", types::TypeKind::kBool);
  check("COUNT($1.2)", types::TypeKind::kInt);
  check("CHOICE($1.2)", types::TypeKind::kChar);
  check("MAKESET($1.1)", types::TypeKind::kSet);
  check("FORALL($1.2, ELEM() = 'x')", types::TypeKind::kBool);
  check("TUPLE($1.1, 'a')", types::TypeKind::kTuple);
}

TEST_F(SchemaTest, ExprTypeErrors) {
  std::vector<Schema> inputs = {{types::Field{"N", cat().types().int_type()}}};
  EXPECT_FALSE(InferExprType(P("$1.2"), inputs, cat()).ok());   // bad column
  EXPECT_FALSE(InferExprType(P("$2.1"), inputs, cat()).ok());   // bad input
  EXPECT_FALSE(InferExprType(P("ELEM()"), inputs, cat()).ok()); // no elem
  EXPECT_FALSE(
      InferExprType(P("VALUE($1.1)"), inputs, cat()).ok());     // non-object
  EXPECT_FALSE(
      InferExprType(P("FIELD($1.1, 'X')"), inputs, cat()).ok());
}

TEST_F(SchemaTest, PlanPrinterShowsTree) {
  std::string plan = FormatPlan(
      P("SEARCH(LIST(RELATION('FILM')), ($1.1 = 1), LIST($1.2))"));
  EXPECT_NE(plan.find("SEARCH [($1.1 = 1)]"), std::string::npos);
  EXPECT_NE(plan.find("RELATION FILM"), std::string::npos);
  EXPECT_NE(plan.find("-> $1.2"), std::string::npos);
}

}  // namespace
}  // namespace eds::lera
