#include "rewrite/engine.h"

#include "gtest/gtest.h"
#include "ruledsl/compiler.h"
#include "term/interner.h"
#include "term/parser.h"

namespace eds::rewrite {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { registry_.InstallStandard(); }

  // Builds an engine from DSL source.
  std::unique_ptr<Engine> MakeEngine(const std::string& source) {
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    if (!prog.ok()) return nullptr;
    auto engine =
        std::make_unique<Engine>(&catalog_, &registry_, std::move(*prog));
    EXPECT_TRUE(engine->ValidateProgram().ok());
    return engine;
  }

  TermRef RewriteWith(const std::string& source, const char* query,
                      EngineStats* stats = nullptr,
                      const RewriteOptions& options = {}) {
    auto engine = MakeEngine(source);
    if (engine == nullptr) return nullptr;
    auto out = engine->Rewrite(P(query), options);
    EXPECT_TRUE(out.ok()) << out.status();
    if (!out.ok()) return nullptr;
    if (stats != nullptr) *stats = out->stats;
    return out->term;
  }

  catalog::Catalog catalog_;
  BuiltinRegistry registry_;
};

TEST_F(EngineTest, AppliesSimpleRuleEverywhere) {
  TermRef out = RewriteWith("g : F(x) / --> G(x) / ;", "H(F(1), F(F(2)))");
  EXPECT_TRUE(term::Equals(out, P("H(G(1), G(G(2)))")));
}

TEST_F(EngineTest, SaturationRunsToFixpoint) {
  EngineStats stats;
  TermRef out = RewriteWith(
      "peel : S(S(x)) / --> S(x) / ;", "S(S(S(S(S(z())))))", &stats);
  EXPECT_TRUE(term::Equals(out, P("S(z())")));
  EXPECT_EQ(stats.applications, 4u);
}

TEST_F(EngineTest, ConstraintGatesApplication) {
  TermRef out = RewriteWith(
      "only_one : F(x) / x = 1 --> G(x) / ;", "H(F(1), F(2))");
  EXPECT_TRUE(term::Equals(out, P("H(G(1), F(2))")));
}

TEST_F(EngineTest, ConstraintEvaluationErrorMeansNotApplicable) {
  // ISA over an unknown type errors; the rule must simply not fire.
  TermRef out = RewriteWith(
      "r : F(x) / ISA(x, NoSuchType) --> G(x) / ;", "F(1)");
  EXPECT_TRUE(term::Equals(out, P("F(1)")));
}

TEST_F(EngineTest, MethodFailureMeansNotApplicable) {
  TermRef out = RewriteWith(
      "r : F(x) / --> a / EVALUATE(x, a) ;", "H(F(1 + 2), F($1.1))");
  // F(1+2) folds; F($1.1) does not (EVALUATE fails -> rule skipped).
  EXPECT_TRUE(term::Equals(out, P("H(3, F($1.1))")));
}

TEST_F(EngineTest, MatchBacktracksWhenConstraintRejects) {
  // x* / y* split: only the split with y = b() passes the constraint.
  TermRef out = RewriteWith(
      "pick : F(LIST(x*, y, v*)) / y = B() --> G(y) / ;",
      "F(LIST(A(), B(), C()))");
  EXPECT_TRUE(term::Equals(out, P("G(B())")));
}

TEST_F(EngineTest, NoOpRewriteRejected) {
  // RHS identical to LHS: must not loop, must not count as application.
  EngineStats stats;
  TermRef out =
      RewriteWith("id : F(x) / --> F(x) / ;", "F(1)", &stats);
  EXPECT_TRUE(term::Equals(out, P("F(1)")));
  EXPECT_EQ(stats.applications, 0u);
}

TEST_F(EngineTest, BlockBudgetCountsConditionChecks) {
  // §4.2: each rule-condition check decrements the block budget. With a
  // budget of 1, only the first matching position rewrites.
  EngineStats stats;
  TermRef out = RewriteWith(
      "g : F(x) / --> G(x) / ;\n"
      "block(b, {g}, 1) ;",
      "H(F(1), F(2))", &stats);
  EXPECT_TRUE(term::Equals(out, P("H(G(1), F(2))")));
  EXPECT_EQ(stats.condition_checks, 1u);
}

TEST_F(EngineTest, ZeroBudgetDisablesBlock) {
  // §7: "a 0 limit can then be given to all blocks of the query rewriter."
  TermRef out = RewriteWith(
      "g : F(x) / --> G(x) / ;\n"
      "block(b, {g}, 0) ;",
      "F(1)");
  EXPECT_TRUE(term::Equals(out, P("F(1)")));
}

TEST_F(EngineTest, BlocksRunInSequence) {
  TermRef out = RewriteWith(
      "fg : F(x) / --> G(x) / ;\n"
      "gh : G(x) / --> H(x) / ;\n"
      "block(first, {fg}, inf) ;\n"
      "block(second, {gh}, inf) ;\n"
      "seq({first, second}, 1) ;",
      "F(1)");
  EXPECT_TRUE(term::Equals(out, P("H(1)")));
}

TEST_F(EngineTest, SeqLimitBoundsPasses) {
  // Each pass: ping turns A into B (budget 1 check), pong turns B into A.
  // One pass ends at B... the sequence repeats until the limit or until a
  // pass changes nothing.
  EngineStats stats;
  TermRef out = RewriteWith(
      "up : A(x) / --> B(x) / ;\n"
      "down : B(x) / --> A(x) / ;\n"
      "block(ping, {up}, 1) ;\n"
      "block(pong, {down}, 0) ;\n"
      "seq({ping, pong}, 4) ;",
      "A(1)", &stats);
  EXPECT_TRUE(term::Equals(out, P("B(1)")));
  // Pass 2+ applies nothing new (A is gone), so the loop stops early.
  EXPECT_LE(stats.passes, 4u);
}

TEST_F(EngineTest, CycleGuardStopsOscillation) {
  // A -> B and B -> A oscillate; the per-block cycle guard detects the
  // revisit and stops the block instead of burning the whole budget.
  EngineStats stats;
  TermRef out = RewriteWith(
      "up : A(x) / --> B(x) / ;\n"
      "down : B(x) / --> A(x) / ;",
      "A(1)", &stats);
  ASSERT_NE(out, nullptr);
  EXPECT_GE(stats.cycle_stops, 1u);
  EXPECT_LE(stats.applications, 4u);
  EXPECT_FALSE(stats.safety_stop);
}

TEST_F(EngineTest, SafetyValveStopsRunawayRules) {
  // G(x) -> G(G(x)) grows forever; the safety valve must stop it.
  RewriteOptions options;
  options.max_applications = 25;
  EngineStats stats;
  TermRef out = RewriteWith(
      "grow : G(x) / --> G(G(x)) / ;", "G(1)", &stats, options);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(stats.safety_stop);
  EXPECT_LE(stats.applications, 25u);
}

TEST_F(EngineTest, DynamicBudgetScalesWithQuerySize) {
  // §7: limits allocated by query complexity. With budget_per_node, a tiny
  // query gets a tiny budget (the growth rule barely fires) while a larger
  // query gets proportionally more checks.
  const char* source =
      "grow : F(x) / --> F(G(x)) / ;\n"
      "block(b, {grow}, 1) ;\n"  // static limit 1, overridden dynamically
      "seq({b}, 1) ;";
  RewriteOptions options;
  options.budget_per_node = 1.0;
  EngineStats small_stats, big_stats;
  RewriteWith(source, "F(1)", &small_stats, options);
  RewriteWith(source, "H(F(1), F(2), F(3), F(4), F(5), F(6))", &big_stats,
              options);
  EXPECT_GT(big_stats.condition_checks, small_stats.condition_checks);
  // Zero per-node keeps the static limit.
  RewriteOptions static_options;
  EngineStats static_stats;
  RewriteWith(source, "H(F(1), F(2), F(3), F(4), F(5), F(6))",
              &static_stats, static_options);
  EXPECT_EQ(static_stats.condition_checks, 1u);
}

TEST_F(EngineTest, DynamicBudgetLeavesSaturationBlocksAlone) {
  RewriteOptions options;
  options.budget_per_node = 0.001;  // would round to ~0 if applied
  EngineStats stats;
  TermRef out = RewriteWith(
      "peel : S(S(x)) / --> S(x) / ;", "S(S(S(z())))", &stats, options);
  EXPECT_TRUE(term::Equals(out, P("S(z())")));  // still saturated
}

TEST_F(EngineTest, RuleOrderWithinBlockIsPriority) {
  TermRef out = RewriteWith(
      "first : F(x) / --> G(x) / ;\n"
      "second : F(x) / --> H(x) / ;",
      "F(1)");
  EXPECT_TRUE(term::Equals(out, P("G(1)")));
}

TEST_F(EngineTest, IndexPreservesPriorityAcrossGenericRules) {
  // A functor-variable rule declared before a specific rule must keep its
  // priority under the per-block functor index.
  TermRef out = RewriteWith(
      "generic_first : ?F(x) / ISA(?F(x), CONSTANT) --> c / "
      "EVALUATE(?F(x), c) ;\n"
      "specific : NEG(x) / --> WRAPPED(x) / ;",
      "K(NEG(5), NEG($1.1))");
  // NEG(5) folds via the earlier generic rule; NEG($1.1) is not foldable,
  // so the later specific rule wraps it.
  EXPECT_TRUE(term::Equals(out, P("K(-5, WRAPPED($1.1))")))
      << out->ToString();
}

TEST_F(EngineTest, VariableRootedRuleMatchesNonApplyNodes) {
  // A bare-variable left term fires on constants too (indexed in the
  // var-only candidate list). Constrained to 5 so it terminates.
  TermRef out = RewriteWith(
      "const5 : x / x = 5 --> FIVE() / ;", "G(5, 6)");
  EXPECT_TRUE(term::Equals(out, P("G(FIVE(), 6)")));
}

TEST_F(EngineTest, TraceRecordsApplications) {
  RewriteOptions options;
  options.collect_trace = true;
  auto engine = MakeEngine(
      "g : F(x) / --> G(x) / ;\n"
      "h : G(x) / --> H(x) / ;");
  ASSERT_NE(engine, nullptr);
  auto out = engine->Rewrite(P("F(1)"), options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->trace.size(), 2u);
  EXPECT_EQ(out->trace[0].rule, "g");
  EXPECT_TRUE(term::Equals(out->trace[0].before, P("F(1)")));
  EXPECT_TRUE(term::Equals(out->trace[0].after, P("G(1)")));
  EXPECT_EQ(out->trace[1].rule, "h");
}

TEST_F(EngineTest, StatsPerRule) {
  EngineStats stats;
  RewriteWith(
      "g : F(x) / --> G(x) / ;\n"
      "h : G(x) / --> H(x) / ;",
      "K(F(1), F(2))", &stats);
  EXPECT_EQ(stats.applications_by_rule.at("g"), 2u);
  EXPECT_EQ(stats.applications_by_rule.at("h"), 2u);
}

TEST_F(EngineTest, TopDownOuterFirst) {
  // Both the outer and inner F(x) match; top-down means the outer rewrite
  // wins and absorbs the inner one.
  EngineStats stats;
  TermRef out = RewriteWith(
      "wrap : F(x) / --> DONE(x) / ;", "F(F(1))", &stats);
  EXPECT_TRUE(term::Equals(out, P("DONE(DONE(1))")));
  // Outer first: trace would show F(F(1)) -> DONE(F(1)) -> DONE(DONE(1)).
  EXPECT_EQ(stats.applications, 2u);
}

TEST_F(EngineTest, PaperDedupExample) {
  // §4.1's rule: F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*).
  TermRef out = RewriteWith(
      "dedup : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*)) "
      "/ ;",
      "F(SET(A(), G(A(), TRUE), B()))");
  EXPECT_TRUE(term::Equals(out, P("F(SET(A(), B()))")));
}

TEST_F(EngineTest, NormalFormMemoSkipsUntouchedSubtrees) {
  // After the first application the search restarts from the root; the
  // subtree already proven redex-free (DEEP(...)) must be skipped by the
  // normal-form memo instead of re-matched, on that restart and on every
  // later sequence pass.
  EngineStats stats;
  TermRef out = RewriteWith(
      "a2b : A(x) / --> B(x) / ;\n"
      "block(b, {a2b}, inf) ;\n"
      "seq({b}, 2) ;",
      "H(DEEP(C(C(C(C(1))))), A(1), A(2))", &stats);
  EXPECT_TRUE(term::Equals(out, P("H(DEEP(C(C(C(C(1))))), B(1), B(2))")));
  EXPECT_EQ(stats.applications, 2u);
  EXPECT_GT(stats.normal_form_hits, 0u);
  // The counters decompose: every candidate considered is either quickly
  // rejected or pays a full condition check.
  EXPECT_EQ(stats.match_attempts,
            stats.quick_rejects + stats.condition_checks);
}

TEST_F(EngineTest, CycleGuardImmuneToHashCollisions) {
  // Seed bug regression: the old guard kept a set of 64-bit deep hashes of
  // every intermediate query term, so a colliding pair caused a spurious
  // cycle stop. Force the worst case — the input's hash equals the
  // rewritten term's hash — and require a clean, stop-free application.
  auto engine = MakeEngine("ab : A(q) / --> B(q) / ;");
  ASSERT_NE(engine, nullptr);
  TermRef target = P("B(1)");
  TermRef query =
      term::testing::CloneWithHashForTesting(P("A(1)"), term::Hash(target));
  ASSERT_EQ(term::Hash(query), term::Hash(target));
  auto out = engine->Rewrite(query);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(term::Equals(out->term, target));
  EXPECT_EQ(out->stats.applications, 1u);
  EXPECT_EQ(out->stats.cycle_stops, 0u);
}

TEST_F(EngineTest, CycleGuardStillStopsRealOscillation) {
  // The pointer-based guard must keep catching genuine A -> B -> A cycles
  // even when the interner is collapsed to a single hash bucket.
  term::Interner::SetDegenerateBucketsForTesting(true);
  EngineStats stats;
  TermRef out = RewriteWith(
      "up : A(x) / --> B(x) / ;\n"
      "down : B(x) / --> A(x) / ;",
      "A(7)", &stats);
  term::Interner::SetDegenerateBucketsForTesting(false);
  ASSERT_NE(out, nullptr);
  EXPECT_GE(stats.cycle_stops, 1u);
  EXPECT_FALSE(stats.safety_stop);
}

}  // namespace
}  // namespace eds::rewrite
