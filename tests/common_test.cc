#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

#include "gtest/gtest.h"

namespace eds {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::TypeError("bad"); };
  auto wrapper = [&]() -> Status {
    EDS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kTypeError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto makes = []() -> Result<std::string> { return std::string("hi"); };
  auto fails = []() -> Result<std::string> {
    return Status::RuntimeError("no");
  };
  auto use = [&](bool ok) -> Result<size_t> {
    EDS_ASSIGN_OR_RETURN(std::string s, ok ? makes() : fails());
    return s.size();
  };
  ASSERT_TRUE(use(true).ok());
  EXPECT_EQ(*use(true), 2u);
  EXPECT_EQ(use(false).status().code(), StatusCode::kRuntimeError);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringsTest, CaseFolding) {
  EXPECT_EQ(ToUpperAscii("MakeSet"), "MAKESET");
  EXPECT_EQ(ToLowerAscii("MakeSet"), "makeset");
  EXPECT_TRUE(EqualsIgnoreCase("select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selects"));
}

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SEARCH(...)", "SEARCH"));
  EXPECT_FALSE(StartsWith("SEA", "SEARCH"));
}

}  // namespace
}  // namespace eds
