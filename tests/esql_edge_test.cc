// ESQL front-end edge cases: analyzer error paths, nested tuple values in
// rows, explicit VALUE(), Fig. 2's Caricature LIST OF Point, and DDL
// robustness.
#include "gtest/gtest.h"
#include "lera/lera.h"
#include "testutil.h"

namespace eds::esql {
namespace {

using value::Value;

TEST(EsqlEdgeTest, UnknownTypeInDdl) {
  exec::Session s;
  EXPECT_EQ(s.ExecuteScript("CREATE TABLE T (A : NoSuchType);").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      s.ExecuteScript("TYPE X SUBTYPE OF Ghost OBJECT TUPLE (A : INT);")
          .code(),
      StatusCode::kNotFound);
}

TEST(EsqlEdgeTest, SubtypeOfNonObjectRejected) {
  exec::Session s;
  EXPECT_TRUE(s.ExecuteScript("TYPE T ENUMERATION OF ('a');").ok());
  EXPECT_EQ(
      s.ExecuteScript("TYPE X SUBTYPE OF T OBJECT TUPLE (A : INT);").code(),
      StatusCode::kTypeError);
}

TEST(EsqlEdgeTest, DuplicateTypeAndFunction) {
  exec::Session s;
  EXPECT_TRUE(s.ExecuteScript("TYPE T ENUMERATION OF ('a');").ok());
  EXPECT_EQ(s.ExecuteScript("TYPE T ENUMERATION OF ('b');").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(s.ExecuteScript(R"(
    TYPE P OBJECT TUPLE (N : CHAR) FUNCTION Foo(This P);
  )")
                  .ok());
  EXPECT_EQ(s.ExecuteScript(R"(
    TYPE Q OBJECT TUPLE (N : CHAR) FUNCTION Foo(This Q);
  )")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(EsqlEdgeTest, NestedTupleValuesInRows) {
  // Fig. 2's Caricature : LIST OF Point carried as real nested data.
  testutil::FilmDb db;
  auto artist = db.session.NewObject(
      "Actor",
      {{"Name", Value::String("Sketch")},
       {"Salary", Value::Int(1)},
       {"Caricature",
        Value::List({Value::NamedTuple({"ABS", "ORD"},
                                       {Value::Real(1.5), Value::Real(2.5)}),
                     Value::NamedTuple({"ABS", "ORD"},
                                       {Value::Real(3.0),
                                        Value::Real(4.0)})})}});
  ASSERT_TRUE(artist.ok()) << artist.status();
  EDS_ASSERT_OK(db.session.InsertRow("APPEARS_IN", {Value::Int(9), *artist}));
  // Navigate: first caricature point's ABS coordinate.
  auto result = db.session.Query(
      "SELECT ABS(FIRST(Caricature(Refactor))) FROM APPEARS_IN "
      "WHERE Name(Refactor) = 'Sketch'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Real(1.5));
}

TEST(EsqlEdgeTest, ExplicitValueFunction) {
  testutil::FilmDb db;
  // VALUE(obj) yields the object's tuple state (§3.3); comparing the
  // dereferenced Name is equivalent to the attribute-as-function form.
  auto a = db.session.Query(
      "SELECT Numf FROM APPEARS_IN WHERE Name(Refactor) = 'Quinn'");
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_EQ(a->rows.size(), 1u);
  EXPECT_EQ(a->rows[0][0], Value::Int(1));
}

TEST(EsqlEdgeTest, EnumColumnComparesAsString) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    TYPE Color ENUMERATION OF ('Red', 'Green');
    CREATE TABLE PIX (Id : INT, C : Color);
    INSERT INTO PIX VALUES (1, 'Red'), (2, 'Green');
  )"));
  auto result = s.Query("SELECT Id FROM PIX WHERE C = 'Green'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(2));
}

TEST(EsqlEdgeTest, QualifiedStarAndAliases) {
  testutil::FilmDb db;
  // Self-join with aliases; both qualified column references resolve.
  auto result = db.session.Query(
      "SELECT B1.Winner, B2.Loser FROM BEATS B1, BEATS B2 "
      "WHERE B1.Loser = B2.Winner AND B1.Winner = 1");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], Value::Int(3));
}

TEST(EsqlEdgeTest, QualifierMismatchRejected) {
  testutil::FilmDb db;
  auto r = db.session.Translate("SELECT Nope.Winner FROM BEATS B1");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(EsqlEdgeTest, ViewOverRecursiveView) {
  // A plain view stacked on a recursive one: inlining composes.
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
    CREATE VIEW DOMINATED_BY_ONE (L) AS
      SELECT L FROM BETTER_THAN WHERE W = 1;
  )"));
  auto result = db.session.Query("SELECT L FROM DOMINATED_BY_ONE "
                                 "WHERE L > 8");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);  // 9 and 10
  // The magic rule fires through the extra view layer after merging.
  EXPECT_EQ(result->rewrite_stats.applications_by_rule.count(
                "push_search_fixpoint"),
            1u);
}

TEST(EsqlEdgeTest, InsertTypeErrorsSurface) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript("CREATE TABLE T (A : INT);"));
  // Arity is checked by storage.
  EXPECT_FALSE(s.ExecuteScript("INSERT INTO T VALUES (1, 2);").ok());
  // Unknown function in a value expression.
  EXPECT_FALSE(s.ExecuteScript("INSERT INTO T VALUES (NOFN(1));").ok());
  // Unknown table.
  EXPECT_EQ(s.ExecuteScript("INSERT INTO GHOST VALUES (1);").code(),
            StatusCode::kNotFound);
}

TEST(EsqlEdgeTest, CaseInsensitiveEverything) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript(
      "create table MixedCase (ColA : int); "
      "insert into mixedcase values (7);"));
  auto result = s.Query("select cola from MIXEDCASE where COLA = 7");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST(EsqlEdgeTest, WhitespaceAndCommentsTolerated) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    -- schema
    CREATE TABLE T (A : INT);  -- trailing comment
    INSERT INTO T VALUES (1);
  )"));
  auto result = s.Query("SELECT A FROM T -- tail comment");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace eds::esql
