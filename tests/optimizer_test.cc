// The generated default optimizer (rules/optimizer.h): pipeline structure,
// option knobs, and the §7 budget trade-off.
#include "rules/optimizer.h"

#include "gtest/gtest.h"
#include "lera/printer.h"
#include "testutil.h"

namespace eds::rules {
namespace {

TEST(OptimizerTest, DefaultPipelineStructure) {
  testutil::FilmDb db;
  auto opt = MakeDefaultOptimizer(&db.session.catalog());
  ASSERT_TRUE(opt.ok()) << opt.status();
  const rewrite::RewriteProgram& program = (*opt)->engine().program();
  std::vector<std::string> names;
  for (const auto& block : program.blocks) names.push_back(block.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"normalize", "merge", "semantic",
                                      "simplify", "push", "merge_again"}));
  EXPECT_EQ(program.seq_limit, 2);
}

TEST(OptimizerTest, DisableSemantic) {
  testutil::FilmDb db;
  OptimizerOptions options;
  options.enable_semantic = false;
  auto opt = MakeDefaultOptimizer(&db.session.catalog(), options);
  ASSERT_TRUE(opt.ok());
  for (const auto& block : (*opt)->engine().program().blocks) {
    EXPECT_NE(block.name, "semantic");
  }
}

TEST(OptimizerTest, DisableMagic) {
  testutil::FilmDb db;
  OptimizerOptions options;
  options.enable_magic = false;
  auto opt = MakeDefaultOptimizer(&db.session.catalog(), options);
  ASSERT_TRUE(opt.ok());
  for (const auto& block : (*opt)->engine().program().blocks) {
    for (const auto& rule : block.rules) {
      EXPECT_NE(rule.name, "push_search_fixpoint");
    }
  }
}

TEST(OptimizerTest, ZeroSemanticLimitMeansNoSemanticWork) {
  // §7: "Simple queries ... a 0 limit can then be given to all blocks."
  testutil::FilmDb db;
  EXPECT_TRUE(db.session
                  .AddConstraint("cat_domain", R"(
    ic_cat : MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )")
                  .ok());
  OptimizerOptions options;
  options.semantic_limit = 0;
  auto opt = MakeDefaultOptimizer(&db.session.catalog(), options);
  ASSERT_TRUE(opt.ok());
  auto raw = db.session.Translate(
      "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
  ASSERT_TRUE(raw.ok());
  auto out = (*opt)->Rewrite(*raw);
  ASSERT_TRUE(out.ok());
  // Without the semantic block budget, the inconsistency goes undetected.
  std::string plan = out->term->ToString();
  EXPECT_NE(plan.find("MEMBER('Cartoon'"), std::string::npos) << plan;
}

TEST(OptimizerTest, BudgetTradeoffMonotoneQuality) {
  // The §7 trade-off surface: higher semantic budgets never lose
  // detections. With enough budget the inconsistent query folds to FALSE.
  testutil::FilmDb db;
  EXPECT_TRUE(db.session
                  .AddConstraint("cat_domain", R"(
    ic_cat : MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )")
                  .ok());
  auto raw = db.session.Translate(
      "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
  ASSERT_TRUE(raw.ok());
  bool detected_with_large_budget = false;
  size_t small_checks = 0, large_checks = 0;
  for (int64_t budget : {0, 64}) {
    OptimizerOptions options;
    options.semantic_limit = budget;
    auto opt = MakeDefaultOptimizer(&db.session.catalog(), options);
    ASSERT_TRUE(opt.ok());
    auto out = (*opt)->Rewrite(*raw);
    ASSERT_TRUE(out.ok());
    bool detected =
        out->term->ToString().find("FALSE") != std::string::npos;
    if (budget == 0) {
      EXPECT_FALSE(detected);
      small_checks = out->stats.condition_checks;
    } else {
      detected_with_large_budget = detected;
      large_checks = out->stats.condition_checks;
    }
  }
  EXPECT_TRUE(detected_with_large_budget);
  EXPECT_GT(large_checks, small_checks);  // budget buys work
}

TEST(OptimizerTest, SeqLimitSecondPassMergesAfterPush) {
  // §5.3: search merging pays off again after pushing selections through
  // fixpoints; the 2-pass sequence re-merges what push created.
  testutil::FilmDb db;
  EXPECT_TRUE(db.session
                  .ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )")
                  .ok());
  auto result = db.session.Query("SELECT W FROM BETTER_THAN WHERE L = 10");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rewrite_stats.passes, 2u);
  EXPECT_GE(result->rewrite_stats.applications_by_rule["search_merge"], 1u);
}

TEST(OptimizerTest, RewriteOptionsFlowThrough) {
  testutil::FilmDb db;
  auto opt = MakeDefaultOptimizer(&db.session.catalog());
  ASSERT_TRUE(opt.ok());
  auto raw = db.session.Translate("SELECT Winner FROM BEATS");
  ASSERT_TRUE(raw.ok());
  rewrite::RewriteOptions options;
  options.collect_trace = true;
  auto out = (*opt)->Rewrite(*raw, options);
  ASSERT_TRUE(out.ok());
  // Trivial query: nothing to do, empty trace.
  EXPECT_TRUE(out->trace.empty());
  EXPECT_EQ(out->stats.applications, 0u);
}

}  // namespace
}  // namespace eds::rules
