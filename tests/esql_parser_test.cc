#include "esql/parser.h"

#include "esql/lexer.h"
#include "gtest/gtest.h"

namespace eds::esql {
namespace {

Statement Parse(const char* text) {
  auto r = ParseStatement(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : Statement{};
}

TEST(EsqlLexerTest, TokensAndComments) {
  auto toks = LexEsql("SELECT x -- comment\nFROM t; 'a''b' 1.5 <= <>");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kIdent, TokenKind::kIdent,
                TokenKind::kIdent, TokenKind::kSemicolon, TokenKind::kString,
                TokenKind::kReal, TokenKind::kLe, TokenKind::kNe,
                TokenKind::kEnd}));
  EXPECT_EQ((*toks)[5].text, "a'b");
  EXPECT_DOUBLE_EQ((*toks)[6].real_value, 1.5);
}

TEST(EsqlLexerTest, Errors) {
  EXPECT_FALSE(LexEsql("'unterminated").ok());
  EXPECT_FALSE(LexEsql("SELECT @").ok());
}

TEST(EsqlParserTest, Fig2TypeDefinitions) {
  Statement s = Parse(
      "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', "
      "'Science Fiction', 'Western')");
  EXPECT_EQ(s.kind, StatementKind::kCreateType);
  EXPECT_EQ(s.name, "Category");
  ASSERT_EQ(s.type->kind, TypeExprKind::kEnum);
  EXPECT_EQ(s.type->enum_values.size(), 4u);

  s = Parse("TYPE Point TUPLE (ABS : REAL, ORD : REAL)");
  ASSERT_EQ(s.type->kind, TypeExprKind::kTuple);
  EXPECT_EQ(s.type->fields.size(), 2u);
  EXPECT_EQ(s.type->fields[0].name, "ABS");

  s = Parse(
      "TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR, "
      "Caricature : LIST OF Point)");
  ASSERT_EQ(s.type->kind, TypeExprKind::kObject);
  EXPECT_TRUE(s.type->supertype.empty());
  ASSERT_EQ(s.type->fields.size(), 3u);
  EXPECT_EQ(s.type->fields[1].type->kind, TypeExprKind::kCollection);
  EXPECT_EQ(s.type->fields[1].type->collection_kind, types::TypeKind::kSet);
  EXPECT_EQ(s.type->fields[2].type->element->name, "Point");

  s = Parse(
      "TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) "
      "FUNCTION IncreaseSalary(This Actor, Val NUMERIC)");
  ASSERT_EQ(s.type->kind, TypeExprKind::kObject);
  EXPECT_EQ(s.type->supertype, "Person");
  ASSERT_EQ(s.functions.size(), 1u);
  EXPECT_EQ(s.functions[0].name, "IncreaseSalary");
  ASSERT_EQ(s.functions[0].params.size(), 2u);
  EXPECT_EQ(s.functions[0].params[0].name, "This");
  EXPECT_EQ(s.functions[0].params[0].type->name, "Actor");

  s = Parse("TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT)");
  ASSERT_EQ(s.type->kind, TypeExprKind::kCollection);
  EXPECT_EQ(s.type->collection_kind, types::TypeKind::kList);
  EXPECT_EQ(s.type->element->kind, TypeExprKind::kTuple);
}

TEST(EsqlParserTest, CreateTableBothColumnSyntaxes) {
  Statement s = Parse(
      "CREATE TABLE FILM (Numf : NUMERIC, Title Text, Categories : "
      "SetCategory)");
  EXPECT_EQ(s.kind, StatementKind::kCreateTable);
  ASSERT_EQ(s.columns.size(), 3u);
  EXPECT_EQ(s.columns[1].name, "Title");
  EXPECT_EQ(s.columns[1].type->name, "Text");
}

TEST(EsqlParserTest, SelectWithJoinWhere) {
  // Fig. 3's query.
  Statement s = Parse(R"(
    SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
      AND MEMBER('Adventure', Categories)
  )");
  EXPECT_EQ(s.kind, StatementKind::kSelect);
  ASSERT_EQ(s.select->cores.size(), 1u);
  const SelectCore& core = s.select->cores[0];
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_EQ(core.items[0].expr->kind, ExprKind::kColumnRef);
  EXPECT_EQ(core.items[2].expr->kind, ExprKind::kCall);
  EXPECT_EQ(core.items[2].expr->name, "Salary");
  ASSERT_EQ(core.from.size(), 2u);
  EXPECT_EQ(core.from[0].name, "FILM");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->name, "AND");
}

TEST(EsqlParserTest, AliasesInFrom) {
  Statement s =
      Parse("SELECT B1.W FROM BETTER_THAN B1, BETTER_THAN AS B2 WHERE "
            "B1.L = B2.W");
  const SelectCore& core = s.select->cores[0];
  ASSERT_EQ(core.from.size(), 2u);
  EXPECT_EQ(core.from[0].alias, "B1");
  EXPECT_EQ(core.from[1].alias, "B2");
  EXPECT_EQ(core.items[0].expr->qualifier, "B1");
}

TEST(EsqlParserTest, GroupByAndQuantifier) {
  // Fig. 4's view and query shapes.
  Statement s = Parse(R"(
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories
  )");
  EXPECT_EQ(s.select->cores[0].group_by.size(), 2u);

  s = Parse(
      "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
      "AND ALL(Salary(Actors) > 10000)");
  const ExprPtr& where = s.select->cores[0].where;
  ASSERT_EQ(where->name, "AND");
  const ExprPtr& quant = where->args[1];
  EXPECT_EQ(quant->kind, ExprKind::kQuantifier);
  EXPECT_TRUE(quant->universal);
  EXPECT_EQ(quant->args[0]->name, "GT");
}

TEST(EsqlParserTest, RecursiveViewWithUnion) {
  // Fig. 5's view.
  Statement s = Parse(R"(
    CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS (
      SELECT Refactor1, Refactor2 FROM DOMINATE
      UNION
      SELECT B1.Refactor1, B2.Refactor2 FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.Refactor2 = B2.Refactor1 )
  )");
  EXPECT_EQ(s.kind, StatementKind::kCreateView);
  EXPECT_EQ(s.name, "BETTER_THAN");
  EXPECT_EQ(s.view_columns,
            (std::vector<std::string>{"Refactor1", "Refactor2"}));
  ASSERT_EQ(s.select->cores.size(), 2u);
  EXPECT_EQ(s.select->cores[1].from[0].name, "BETTER_THAN");
}

TEST(EsqlParserTest, InsertMultiRowWithConstructors) {
  Statement s = Parse(
      "INSERT INTO FILM VALUES (1, 'Zorba', MakeSet('Adventure')), "
      "(2, 'X', MakeSet('Comedy', 'Western'))");
  EXPECT_EQ(s.kind, StatementKind::kInsert);
  EXPECT_EQ(s.name, "FILM");
  ASSERT_EQ(s.insert_rows.size(), 2u);
  EXPECT_EQ(s.insert_rows[0].size(), 3u);
  EXPECT_EQ(s.insert_rows[1][2]->name, "MakeSet");
}

TEST(EsqlParserTest, SelectDistinct) {
  Statement s = Parse("SELECT DISTINCT Winner FROM BEATS");
  EXPECT_TRUE(s.select->cores[0].distinct);
  s = Parse("SELECT Winner FROM BEATS");
  EXPECT_FALSE(s.select->cores[0].distinct);
  // DISTINCT is per core in a UNION.
  s = Parse("SELECT DISTINCT A FROM T UNION SELECT B FROM U");
  EXPECT_TRUE(s.select->cores[0].distinct);
  EXPECT_FALSE(s.select->cores[1].distinct);
}

TEST(EsqlParserTest, StatementSourceCaptured) {
  auto stmts = ParseScript(
      "CREATE TABLE T (A : INT);\n  SELECT A FROM T;");
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts->size(), 2u);
  EXPECT_EQ((*stmts)[0].source, "CREATE TABLE T (A : INT);");
  EXPECT_EQ((*stmts)[1].source, "SELECT A FROM T;");
}

TEST(EsqlParserTest, SelectStarAndArithmetic) {
  Statement s = Parse("SELECT * FROM BEATS WHERE Winner + 1 = Loser * 2");
  EXPECT_EQ(s.select->cores[0].items[0].expr->kind, ExprKind::kStar);
  const ExprPtr& where = s.select->cores[0].where;
  EXPECT_EQ(where->name, "EQ");
  EXPECT_EQ(where->args[0]->name, "ADD");
  EXPECT_EQ(where->args[1]->name, "MUL");
}

TEST(EsqlParserTest, ScriptParsesMultipleStatements) {
  auto stmts = ParseScript(R"(
    TYPE T ENUMERATION OF ('a');
    TABLE X (A : INT);
    INSERT INTO X VALUES (1);
    SELECT A FROM X;
  )");
  ASSERT_TRUE(stmts.ok()) << stmts.status();
  EXPECT_EQ(stmts->size(), 4u);
}

TEST(EsqlParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a").ok());           // missing FROM
  EXPECT_FALSE(ParseStatement("CREATE VIEW v AS").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t (1)").ok());  // missing VALUES
  EXPECT_FALSE(ParseStatement("TYPE T SUBTYPE OF X SET OF INT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t; SELECT b FROM u").ok());
  EXPECT_FALSE(ParseStatement("").ok());
}

}  // namespace
}  // namespace eds::esql
