// Differential suite for the columnar batch executor: the row engine is
// the oracle (docs/executor.md). Every plan here runs twice — vectorized
// on and off — and the outputs must be byte-identical *sequences*: same
// rows, same order, same value kinds. Two corpora:
//   * an ESQL corpus over the FilmDb schema, with the rewriter both on and
//     off (four pipeline variants per query), and
//   * LERA plans over the soundness verifier's corner databases
//     (src/verify/instance.h): duplicates, NULLs, empties, seeded random
//     fills — the corners where 3VL and bag semantics diverge first.
// The suite also proves it is not vacuous: the vectorized runs must report
// batch work (exec.batches > 0) and zero fallbacks on supported shapes.
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "term/parser.h"
#include "lera_corpus.h"
#include "testutil.h"
#include "verify/instance.h"

namespace eds::exec {
namespace {

using term::TermRef;

// Byte-identical sequences: order matters, value kinds matter (Int(2) and
// Real(2.0) compare equal but are different bytes on the wire).
void ExpectSameSequence(const Rows& vec, const Rows& row,
                        const std::string& label) {
  ASSERT_EQ(vec.size(), row.size()) << label;
  for (size_t i = 0; i < vec.size(); ++i) {
    ASSERT_EQ(vec[i].size(), row[i].size()) << label << " row " << i;
    for (size_t j = 0; j < vec[i].size(); ++j) {
      EXPECT_EQ(vec[i][j].kind(), row[i][j].kind())
          << label << " row " << i << " col " << j;
      EXPECT_EQ(value::Compare(vec[i][j], row[i][j]), 0)
          << label << " row " << i << " col " << j << ": "
          << vec[i][j].ToString() << " vs " << row[i][j].ToString();
    }
  }
}

// ---------------- ESQL corpus over FilmDb ----------------

const char* kEsqlCorpus[] = {
    "SELECT Winner FROM BEATS",
    "SELECT Winner, Loser FROM BEATS WHERE Winner > 3",
    "SELECT Winner FROM BEATS WHERE Winner > 2 AND Loser < 9",
    "SELECT Winner FROM BEATS WHERE Winner = 1 OR Loser = 10",
    "SELECT B1.Winner, B2.Loser FROM BEATS B1, BEATS B2 "
    "WHERE B1.Loser = B2.Winner",
    "SELECT B1.Winner, B2.Loser FROM BEATS B1, BEATS B2 "
    "WHERE B1.Loser = B2.Winner AND B1.Winner > 2",
    "SELECT Numf, Title FROM FILM WHERE Title <> 'Zorba'",
    "SELECT F.Title FROM FILM F, APPEARS_IN A WHERE F.Numf = A.Numf",
    "SELECT F.Title, B.Loser FROM FILM F, BEATS B WHERE F.Numf = B.Winner",
    "SELECT Numf FROM FILM WHERE Numf < 3",
};

TEST(VecDiffTest, EsqlCorpusMatchesRowEngine) {
  testutil::FilmDb db;
  size_t vec_batches = 0;
  for (const char* esql : kEsqlCorpus) {
    for (bool rewrite : {true, false}) {
      QueryOptions on, off;
      on.rewrite = off.rewrite = rewrite;
      on.exec_options.vectorized = true;
      off.exec_options.vectorized = false;
      auto vec = db.session.Query(esql, on);
      auto row = db.session.Query(esql, off);
      ASSERT_TRUE(vec.ok()) << esql << ": " << vec.status().ToString();
      ASSERT_TRUE(row.ok()) << esql << ": " << row.status().ToString();
      const std::string label =
          std::string(esql) + (rewrite ? " [rewrite]" : " [raw]");
      ExpectSameSequence(vec->rows, row->rows, label);
      EXPECT_EQ(vec->exec_stats.vec_fallbacks, 0u) << label;
      EXPECT_EQ(row->exec_stats.batches, 0u) << label;  // oracle stays scalar
      vec_batches += vec->exec_stats.batches;
    }
  }
  // Not vacuous: the corpus exercised the kernels.
  EXPECT_GT(vec_batches, 0u);
}

TEST(VecDiffTest, RecursiveViewMatchesRowEngine) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  for (const char* esql :
       {"SELECT W, L FROM BETTER_THAN",
        "SELECT W FROM BETTER_THAN WHERE L = 10"}) {
    QueryOptions on, off;
    on.exec_options.vectorized = true;
    off.exec_options.vectorized = false;
    auto vec = db.session.Query(esql, on);
    auto row = db.session.Query(esql, off);
    ASSERT_TRUE(vec.ok()) << esql << ": " << vec.status().ToString();
    ASSERT_TRUE(row.ok()) << esql << ": " << row.status().ToString();
    ExpectSameSequence(vec->rows, row->rows, esql);
    EXPECT_EQ(vec->exec_stats.vec_fallbacks, 0u) << esql;
  }
}

// ---------------- LERA plans over the verifier's corner databases -------

TEST(VecDiffTest, LeraCorpusMatchesRowEngineOnCornerDatabases) {
  auto env = verify::VerifyEnv::Create(/*seed=*/42, /*random_databases=*/4);
  EDS_ASSERT_OK(env.status());
  size_t vec_batches = 0;
  size_t vec_fallbacks = 0;
  for (const char* text : testutil::kLeraCorpus) {
    auto plan = term::ParseTerm(text);
    ASSERT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    for (const auto& instance : (*env)->instances()) {
      ExecOptions on, off;
      on.vectorized = true;
      off.vectorized = false;
      Executor vec_exec(&(*env)->catalog(), instance.db.get(), on);
      Executor row_exec(&(*env)->catalog(), instance.db.get(), off);
      Result<Rows> vec = vec_exec.Execute(*plan);
      Result<Rows> row = row_exec.Execute(*plan);
      const std::string label = std::string(text) + " @" + instance.name;
      // The engines must agree on success; on error the fallback contract
      // guarantees the row path's error is the one surfaced.
      ASSERT_EQ(vec.ok(), row.ok())
          << label << ": " << (vec.ok() ? row.status() : vec.status())
                 .ToString();
      if (!vec.ok()) continue;
      ExpectSameSequence(*vec, *row, label);
      EXPECT_EQ(row_exec.stats().batches, 0u) << label;
      vec_batches += vec_exec.stats().batches;
      vec_fallbacks += vec_exec.stats().vec_fallbacks;
    }
  }
  EXPECT_GT(vec_batches, 0u);
  // Every corpus shape is kernel-supported: nothing fell back to the oracle.
  EXPECT_EQ(vec_fallbacks, 0u);
}

// The ExecStats charge model must not depend on which engine ran: logical
// qualification counts and scan counts are engine-invariant (the span args
// batch_count/rows_per_batch carry the kernel-level detail instead).
TEST(VecDiffTest, ScanAndOutputTalliesMatchRowEngine) {
  testutil::FilmDb db;
  auto plan = term::ParseTerm(
      "SEARCH(LIST(RELATION('BEATS'), RELATION('BEATS')), "
      "($1.2 = $2.1), LIST($1.1, $2.2))");
  ASSERT_TRUE(plan.ok());
  ExecStats vec_stats, row_stats;
  ExecOptions on, off;
  on.vectorized = true;
  off.vectorized = false;
  ASSERT_TRUE(db.session.Run(*plan, on, &vec_stats).ok());
  ASSERT_TRUE(db.session.Run(*plan, off, &row_stats).ok());
  EXPECT_EQ(vec_stats.rows_scanned, row_stats.rows_scanned);
  EXPECT_EQ(vec_stats.rows_output, row_stats.rows_output);
  EXPECT_GT(vec_stats.batches, 0u);
  EXPECT_EQ(row_stats.batches, 0u);
}

}  // namespace
}  // namespace eds::exec
