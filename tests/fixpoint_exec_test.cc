// FIX evaluation: naive vs semi-naive, shapes, and safety limits.
#include "gtest/gtest.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::exec {
namespace {

using term::TermRef;
using value::Value;

TermRef P(const std::string& text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

const char* kTcOverBeats =
    "FIX(RELATION('TC'), UNION(SET("
    "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
    "SEARCH(LIST(RELATION('TC'), RELATION('TC')), ($1.2 = $2.1), "
    "LIST($1.1, $2.2)))))";

class FixpointExecTest : public ::testing::Test {
 protected:
  Rows Run(const std::string& plan, ExecOptions options = {}) {
    Executor executor(&db_.session.catalog(), &db_.session.db(), options);
    auto rows = executor.Execute(P(plan));
    EXPECT_TRUE(rows.ok()) << plan << ": " << rows.status().ToString();
    stats_ = executor.stats();
    return rows.ok() ? *rows : Rows{};
  }

  testutil::FilmDb db_;
  ExecStats stats_;
};

TEST_F(FixpointExecTest, TransitiveClosureOfChain) {
  // BEATS is the chain 1->2->...->10: closure has 9+8+...+1 = 45 pairs.
  Rows rows = Run(kTcOverBeats);
  EXPECT_EQ(rows.size(), 45u);
}

TEST_F(FixpointExecTest, NaiveAndSeminaiveAgree) {
  ExecOptions naive;
  naive.seminaive = false;
  Rows a = Run(kTcOverBeats, naive);
  size_t naive_iterations = stats_.fix_iterations;
  Rows b = Run(kTcOverBeats);
  testutil::ExpectSameRows(a, b);
  EXPECT_GT(naive_iterations, 0u);
}

TEST_F(FixpointExecTest, SeminaiveDoesLessJoinWork) {
  ExecOptions naive;
  naive.seminaive = false;
  Run(kTcOverBeats, naive);
  size_t naive_quals = stats_.qual_evaluations;
  Run(kTcOverBeats);
  size_t semi_quals = stats_.qual_evaluations;
  // Naive re-joins the full relation every round; semi-naive joins deltas.
  EXPECT_LT(semi_quals, naive_quals);
}

TEST_F(FixpointExecTest, CyclicGraphTerminates) {
  EDS_ASSERT_OK(db_.session.ExecuteScript("CREATE TABLE CYC (A:INT, B:INT);"));
  for (int i = 0; i < 5; ++i) {
    EDS_ASSERT_OK(db_.session.InsertRow(
        "CYC", {Value::Int(i), Value::Int((i + 1) % 5)}));
  }
  const char* plan =
      "FIX(RELATION('T2'), UNION(SET("
      "SEARCH(LIST(RELATION('CYC')), TRUE, LIST($1.1, $1.2)), "
      "SEARCH(LIST(RELATION('T2'), RELATION('T2')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2)))))";
  Rows rows = Run(plan);
  EXPECT_EQ(rows.size(), 25u);  // complete digraph on the 5-cycle
  ExecOptions naive;
  naive.seminaive = false;
  Rows naive_rows = Run(plan, naive);
  testutil::ExpectSameRows(rows, naive_rows);
}

TEST_F(FixpointExecTest, RightLinearShape) {
  const char* plan =
      "FIX(RELATION('R'), UNION(SET("
      "SEARCH(LIST(RELATION('BEATS')), ($1.1 = 1), LIST($1.1, $1.2)), "
      "SEARCH(LIST(RELATION('R'), RELATION('BEATS')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2)))))";
  Rows rows = Run(plan);
  EXPECT_EQ(rows.size(), 9u);  // (1,2)...(1,10)
}

TEST_F(FixpointExecTest, FixWithNonSearchBranchFallsBackToNaive) {
  // The recursive branch is wrapped oddly (FILTER over a search), so
  // semi-naive detection bails out and naive evaluation still works.
  const char* plan =
      "FIX(RELATION('R'), UNION(SET("
      "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
      "FILTER(SEARCH(LIST(RELATION('R'), RELATION('BEATS')), "
      "($1.2 = $2.1), LIST($1.1, $2.2)), TRUE))))";
  Rows rows = Run(plan);
  EXPECT_EQ(rows.size(), 45u);
}

TEST_F(FixpointExecTest, EmptyBaseYieldsEmptyFixpoint) {
  EDS_ASSERT_OK(db_.session.ExecuteScript("CREATE TABLE E (A:INT, B:INT);"));
  const char* plan =
      "FIX(RELATION('R'), UNION(SET("
      "SEARCH(LIST(RELATION('E')), TRUE, LIST($1.1, $1.2)), "
      "SEARCH(LIST(RELATION('R'), RELATION('E')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2)))))";
  Rows rows = Run(plan);
  EXPECT_TRUE(rows.empty());
}

TEST_F(FixpointExecTest, IterationLimitGuards) {
  // An ever-growing fixpoint (adds W+1 each round, no natural bound) trips
  // the iteration limit instead of hanging.
  ExecOptions options;
  options.max_fix_iterations = 5;
  Executor executor(&db_.session.catalog(), &db_.session.db(), options);
  auto rows = executor.Execute(P(
      "FIX(RELATION('G'), UNION(SET("
      "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
      "SEARCH(LIST(RELATION('G')), TRUE, LIST($1.1 + 1, $1.2)))))"));
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FixpointExecTest, NestedFixpointsViaShadowing) {
  // A FIX whose base is itself a FIX (the magic transform produces this
  // shape: FIX over a seeded base).
  std::string inner = kTcOverBeats;
  std::string plan =
      "FIX(RELATION('OUTER'), UNION(SET("
      "SEARCH(LIST(" + inner + "), ($1.1 = 1), LIST($1.1, $1.2)), "
      "SEARCH(LIST(RELATION('OUTER'), RELATION('BEATS')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2)))))";
  Rows rows = Run(plan);
  EXPECT_EQ(rows.size(), 9u);
}

TEST_F(FixpointExecTest, Fig5EndToEndThroughSession) {
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  auto result = db_.session.Query("SELECT W FROM BETTER_THAN WHERE L = 10");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 9u);
  // And without the rewriter (unfocused) the answer is identical.
  QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = db_.session.Query("SELECT W FROM BETTER_THAN WHERE L = 10",
                               no_rewrite);
  ASSERT_TRUE(raw.ok());
  testutil::ExpectSameRows(result->rows, raw->rows);
  // The focused plan accumulates an order of magnitude fewer tuples.
  EXPECT_LT(result->exec_stats.fix_tuples, raw->exec_stats.fix_tuples);
}

}  // namespace
}  // namespace eds::exec
