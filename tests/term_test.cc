#include "term/term.h"

#include "gtest/gtest.h"
#include "term/interner.h"
#include "term/parser.h"
#include "term/substitution.h"

namespace eds::term {
namespace {

TermRef P(const char* text) {
  auto r = ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(TermTest, FactoriesAndAccessors) {
  TermRef t = Term::Apply("F", {Term::Int(1), Term::Var("x")});
  ASSERT_TRUE(t->is_apply());
  EXPECT_EQ(t->functor(), "F");
  EXPECT_EQ(t->arity(), 2u);
  EXPECT_TRUE(t->arg(0)->is_constant());
  EXPECT_TRUE(t->arg(1)->is_variable());
  EXPECT_EQ(t->arg(1)->var_name(), "x");
}

TEST(TermTest, FunctorsCanonicalizedUpper) {
  EXPECT_EQ(Term::Apply("search", {})->functor(), "SEARCH");
  EXPECT_TRUE(Term::Apply("and", {Term::True(), Term::True()})
                  ->IsApply(kAnd, 2));
}

TEST(TermTest, EqualsAndCompare) {
  EXPECT_TRUE(Equals(P("F(x, 1)"), P("F(x, 1)")));
  EXPECT_FALSE(Equals(P("F(x, 1)"), P("F(x, 2)")));
  EXPECT_FALSE(Equals(P("F(x)"), P("G(x)")));
  EXPECT_FALSE(Equals(P("F(x)"), P("F(x, x)")));
  EXPECT_NE(Compare(P("F(1)"), P("F(2)")), 0);
  EXPECT_EQ(Compare(P("F(1)"), P("F(1)")), 0);
}

TEST(TermTest, HashConsistentWithEquals) {
  EXPECT_EQ(Hash(P("SEARCH(LIST(x), f, a)")), Hash(P("SEARCH(LIST(x), f, a)")));
  EXPECT_NE(Hash(P("F(1)")), Hash(P("F(2)")));
}

TEST(TermTest, IsGround) {
  EXPECT_TRUE(IsGround(P("F(1, 'a', TRUE)")));
  EXPECT_FALSE(IsGround(P("F(x)")));
  EXPECT_FALSE(IsGround(P("F(LIST(y*))")));
}

TEST(TermTest, CollectVariables) {
  std::vector<std::string> vars, coll;
  CollectVariables(P("F(x, G(y, x), LIST(z*, w))"), &vars, &coll);
  EXPECT_EQ(vars, (std::vector<std::string>{"x", "y", "w"}));
  EXPECT_EQ(coll, (std::vector<std::string>{"z"}));
}

TEST(TermTest, CollectVariablesIncludesFunctorVars) {
  std::vector<std::string> vars, coll;
  CollectVariables(P("?F(x)"), &vars, &coll);
  EXPECT_EQ(vars, (std::vector<std::string>{"?F", "x"}));
}

TEST(TermTest, CountNodes) {
  EXPECT_EQ(CountNodes(P("x")), 1u);
  EXPECT_EQ(CountNodes(P("F(x, G(1))")), 4u);
}

TEST(TermTest, WithArgsReusesUnchanged) {
  TermRef t = P("F(x, y)");
  TermRef same = WithArgs(t, {t->arg(0), t->arg(1)});
  EXPECT_EQ(same.get(), t.get());
  TermRef changed = WithArgs(t, {t->arg(1), t->arg(0)});
  EXPECT_NE(changed.get(), t.get());
  EXPECT_TRUE(Equals(changed, P("F(y, x)")));
}

TEST(TermTest, ConjunctsFlattenNestedAnd) {
  TermList cs = Conjuncts(P("(a AND b) AND (c AND d)"));
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_TRUE(Equals(cs[0], P("a")));
  EXPECT_TRUE(Equals(cs[3], P("d")));
  // A non-AND term is its own single conjunct.
  EXPECT_EQ(Conjuncts(P("x = y")).size(), 1u);
}

TEST(TermTest, MakeConjunction) {
  EXPECT_TRUE(Equals(MakeConjunction({}), Term::True()));
  EXPECT_TRUE(Equals(MakeConjunction({P("a")}), P("a")));
  EXPECT_TRUE(Equals(MakeConjunction({P("a"), P("b"), P("c")}),
                     P("(a AND b) AND c")));
}

TEST(TermPrintTest, InfixForms) {
  EXPECT_EQ(P("x = y")->ToString(), "(x = y)");
  EXPECT_EQ(P("x <= 3")->ToString(), "(x <= 3)");
  EXPECT_EQ(P("a AND b OR c")->ToString(), "((a AND b) OR c)");
  EXPECT_EQ(P("NOT x")->ToString(), "NOT(x)");
}

TEST(TermPrintTest, AttrRefs) {
  EXPECT_EQ(Term::Attr(1, 2)->ToString(), "$1.2");
  EXPECT_EQ(P("$2.3 = 'Quinn'")->ToString(), "($2.3 = 'Quinn')");
}

TEST(TermPrintTest, CollectionVariables) {
  EXPECT_EQ(P("F(SET(x*, G(y)))")->ToString(), "F(SET(x*, G(y)))");
}

TEST(TermParseTest, RoundTrip) {
  for (const char* text : {
           "SEARCH(LIST(RELATION('FILM')), ($1.1 = 10), LIST($1.2))",
           "F(SET(x*, G(y, f)))",
           "((x > y) AND NOT(MEMBER('Cartoon', c)))",
           "FIX(RELATION('BT'), UNION(SET(a, b)))",
           "(($1.1 + 2) * 3)",
           "?F(x, y)",
           "TUPLE(1, 'a', TRUE)",
       }) {
    TermRef t = P(text);
    ASSERT_NE(t, nullptr) << text;
    TermRef back = P(t->ToString().c_str());
    ASSERT_NE(back, nullptr) << t->ToString();
    EXPECT_TRUE(Equals(t, back)) << text << " vs " << t->ToString();
  }
}

TEST(TermParseTest, NegativeNumbersFold) {
  EXPECT_TRUE(Equals(P("-5"), Term::Int(-5)));
  EXPECT_TRUE(Equals(P("-2.5"), Term::Real(-2.5)));
  EXPECT_TRUE(Equals(P("-x"), Term::Apply("NEG", {Term::Var("x")})));
}

TEST(TermParseTest, StringEscapes) {
  TermRef t = P("'it''s'");
  ASSERT_TRUE(t->is_constant());
  EXPECT_EQ(t->constant().AsString(), "it's");
}

TEST(TermParseTest, Precedence) {
  // Comparison binds tighter than AND, arithmetic tighter than comparison.
  EXPECT_TRUE(
      Equals(P("x + 1 > y AND z = 2"), P("((x + 1) > y) AND (z = 2)")));
}

TEST(TermParseTest, Errors) {
  EXPECT_FALSE(ParseTerm("F(").ok());
  EXPECT_FALSE(ParseTerm("F(x)) extra").ok());
  EXPECT_FALSE(ParseTerm("'unterminated").ok());
  EXPECT_FALSE(ParseTerm("$1.").ok());
  EXPECT_FALSE(ParseTerm("").ok());
}

TEST(SubstitutionTest, BindVarConsistency) {
  Bindings env;
  EXPECT_TRUE(env.BindVar("x", P("F(1)")));
  EXPECT_TRUE(env.BindVar("x", P("F(1)")));   // same term: ok
  EXPECT_FALSE(env.BindVar("x", P("F(2)")));  // conflicting: rejected
}

TEST(SubstitutionTest, ApplySubstitutionSplicesCollVars) {
  Bindings env;
  env.SetVar("y", P("c"));
  env.SetCollVar("x", {P("a"), P("b")});
  auto out = ApplySubstitution(P("F(LIST(x*, y))"), env);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Equals(*out, P("F(LIST(a, b, c))")));
}

TEST(SubstitutionTest, EmptyCollVarSplicesNothing) {
  Bindings env;
  env.SetCollVar("x", {});
  auto out = ApplySubstitution(P("F(LIST(x*))"), env);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Equals(*out, P("F(LIST())")));
}

TEST(SubstitutionTest, UnboundVariableIsError) {
  Bindings env;
  EXPECT_FALSE(ApplySubstitution(P("F(x)"), env).ok());
  EXPECT_FALSE(ApplySubstitution(P("F(LIST(x*))"), env).ok());
}

TEST(SubstitutionTest, FunctorVariableResolves) {
  Bindings env;
  env.SetVar("?F", Term::Str("MEMBER"));
  env.SetVar("x", P("1"));
  env.SetVar("y", P("s"));
  auto out = ApplySubstitution(P("?F(x, y)"), env);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Equals(*out, P("MEMBER(1, s)")));
}

TEST(SubstitutionTest, SharedSubtreesReused) {
  Bindings env;
  TermRef ground = P("G(1, 2)");
  auto out = ApplySubstitution(ground, env);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->get(), ground.get());  // untouched tree is shared
}

TEST(SubstitutionTest, BindingsToString) {
  Bindings env;
  env.SetVar("x", P("F(1)"));
  env.SetCollVar("y", {P("a")});
  EXPECT_EQ(env.ToString(), "{x := F(1), y* := [a]}");
}

// ---- hash-consing ----

TEST(InternerTest, StructurallyEqualTermsArePointerIdentical) {
  TermRef a = Term::Apply("F", {Term::Int(1), Term::Var("x")});
  TermRef b = Term::Apply("f", {Term::Int(1), Term::Var("x")});
  EXPECT_EQ(a.get(), b.get());  // functor case-folds before interning
  EXPECT_EQ(P("SEARCH(LIST(RELATION('R')), G($1.1), LIST($1.2))").get(),
            P("SEARCH(LIST(RELATION('R')), G($1.1), LIST($1.2))").get());
  EXPECT_NE(P("F(1)").get(), P("F(2)").get());
  EXPECT_NE(Term::Var("x").get(), Term::CollVar("x").get());
}

TEST(InternerTest, CachedFactsMatchDeepRecomputation) {
  for (const char* text :
       {"1", "x", "F(G(1, 'a'), SET(x, y*, 2), ?H(x))",
        "SEARCH(LIST(RELATION('R')), AND($1.1 = 5, MEMBER(1, SET(1, 2))), "
        "LIST($1.2))"}) {
    TermRef t = P(text);
    EXPECT_EQ(t->structural_hash(), DeepHash(t)) << text;
    EXPECT_EQ(t->node_count(), DeepCountNodes(t)) << text;
    EXPECT_EQ(t->ground(), DeepIsGround(t)) << text;
    EXPECT_TRUE(t->interned()) << text;
  }
}

TEST(InternerTest, PatternFreeExcludesFunctorVariables) {
  EXPECT_TRUE(P("F(G(1), 'a')")->pattern_free());
  EXPECT_FALSE(P("F(x)")->pattern_free());
  EXPECT_FALSE(P("F(y*)")->pattern_free());
  // ?H(1) is ground by the IsGround definition (no variable *nodes*) but
  // not pattern-free: substitution resolves the functor variable.
  TermRef fv = P("?H(1)");
  EXPECT_TRUE(fv->ground());
  EXPECT_FALSE(fv->pattern_free());
  EXPECT_FALSE(P("F(?H(1))")->pattern_free());
}

TEST(InternerTest, IntAndRealInternSeparatelyButCompareEqual) {
  TermRef i = Term::Int(2);
  TermRef r = Term::Real(2.0);
  EXPECT_NE(i.get(), r.get());  // exact payloads differ: kInt vs kReal
  EXPECT_TRUE(Equals(i, r));    // but value::Compare says equal
  EXPECT_EQ(Hash(i), Hash(r));  // so their hashes must agree too
  EXPECT_EQ(Compare(i, r), 0);
}

TEST(InternerTest, HitsAndMissesAreCounted) {
  Interner& interner = Interner::Global();
  Interner::Stats before = interner.GetStats();
  TermRef fresh = Term::Apply("INTERNERTESTONLY", {Term::Int(7)});
  Interner::Stats after_fresh = interner.GetStats();
  EXPECT_GT(after_fresh.misses, before.misses);
  TermRef again = Term::Apply("INTERNERTESTONLY", {Term::Int(7)});
  Interner::Stats after_again = interner.GetStats();
  EXPECT_EQ(again.get(), fresh.get());
  EXPECT_GT(after_again.hits, after_fresh.hits);
}

TEST(InternerTest, SweepReclaimsDeadEntries) {
  Interner& interner = Interner::Global();
  interner.Sweep();  // start from a clean table
  size_t live = interner.GetStats().entries;
  {
    TermRef doomed = Term::Apply("SWEEPTESTONLY", {Term::Int(1), P("G(2)")});
    EXPECT_GE(interner.GetStats().entries, live + 1);
  }
  interner.Sweep();
  // The SWEEPTESTONLY node died with its last reference; G(2)/2 may
  // survive via other live terms, but the table cannot have grown.
  TermRef recreated = Term::Apply("SWEEPTESTONLY", {Term::Int(1), P("G(2)")});
  EXPECT_TRUE(recreated->interned());
}

TEST(InternerTest, DegenerateBucketsStayCorrect) {
  Interner::SetDegenerateBucketsForTesting(true);
  TermRef a = Term::Apply("DEGENTESTONLY", {Term::Int(1)});
  TermRef b = Term::Apply("DEGENTESTONLY", {Term::Int(1)});
  TermRef c = Term::Apply("DEGENTESTONLY", {Term::Int(2)});
  Interner::SetDegenerateBucketsForTesting(false);
  EXPECT_EQ(a.get(), b.get());  // dedup is exact even with one bucket
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->structural_hash(), DeepHash(a));
  // Nodes interned while degenerate unify with normally-bucketed twins
  // through Equals (never through pointer identity across the switch).
  EXPECT_TRUE(Equals(a, b));
}

TEST(InternerTest, CloneWithForcedHashIsUninterned) {
  TermRef orig = P("F(G(1), 2)");
  TermRef clone = testing::CloneWithHashForTesting(orig, 42u);
  EXPECT_NE(clone.get(), orig.get());
  EXPECT_FALSE(clone->interned());
  EXPECT_EQ(clone->structural_hash(), 42u);
  EXPECT_EQ(clone->node_count(), orig->node_count());
  EXPECT_TRUE(DeepEquals(clone, orig));
  // A forced-collision pair: structurally different, hashes equal.
  TermRef other = testing::CloneWithHashForTesting(P("H(9)"), 42u);
  EXPECT_EQ(clone->structural_hash(), other->structural_hash());
  EXPECT_FALSE(DeepEquals(clone, other));
  EXPECT_FALSE(Equals(clone, other));  // deep fallback resolves the clash
}

}  // namespace
}  // namespace eds::term
