// Threaded serving-layer suites: N workers x M queries asserting results
// identical to the single-threaded pipeline, interner contention, and
// chaos in the cache insert path. Run these under the tsan preset — they
// are the repo's data-race detector — and under asan like everything else.
#include <string>
#include <thread>
#include <vector>

#include "gov/failpoint.h"
#include "gtest/gtest.h"
#include "srv/service.h"
#include "term/interner.h"
#include "term/term.h"
#include "testutil.h"

namespace eds::srv {
namespace {

using value::Value;

// The workload: literal variants over a few templates, cycled so every
// template is served by several threads and hits the cache after its first
// miss.
std::vector<std::string> MakeWorkload(size_t n) {
  std::vector<std::string> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0:
        queries.push_back("SELECT Winner FROM BEATS WHERE Winner > " +
                          std::to_string(i % 9));
        break;
      case 1:
        queries.push_back("SELECT Winner, Loser FROM BEATS WHERE Loser < " +
                          std::to_string(1 + (i % 9)));
        break;
      case 2:
        queries.push_back("SELECT Title FROM FILM WHERE Numf > " +
                          std::to_string(i % 3));
        break;
      default:
        queries.push_back(
            "SELECT Numf FROM FILM WHERE Title <> 'Zorba' AND Numf < " +
            std::to_string(1 + (i % 4)));
        break;
    }
  }
  return queries;
}

class SrvStressTest : public ::testing::Test {
 protected:
  void SetUp() override { gov::FailPoints::Global().Clear(); }
  void TearDown() override { gov::FailPoints::Global().Clear(); }
};

// N worker threads x M queries: every served result must be byte-identical
// to the single-threaded Session::Query answer for the same statement.
TEST_F(SrvStressTest, ConcurrentResultsMatchSingleThreadedPipeline) {
  testutil::FilmDb db;
  const size_t kQueries = 120;
  std::vector<std::string> workload = MakeWorkload(kQueries);

  // Reference answers first, single-threaded.
  std::vector<exec::QueryResult> expected;
  expected.reserve(workload.size());
  for (const std::string& q : workload) {
    auto r = db.session.Query(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    expected.push_back(*std::move(r));
  }

  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = kQueries;  // no shedding in the comparison run
  options.use_l0 = false;  // the plan-cache hit tally below is the point
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());

  std::vector<std::future<Result<ServedQuery>>> futures;
  futures.reserve(workload.size());
  for (const std::string& q : workload) futures.push_back(service.Submit(q));
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << workload[i] << ": " << r.status().ToString();
    EXPECT_EQ(r->result.columns, expected[i].columns) << workload[i];
    EXPECT_EQ(r->result.rows, expected[i].rows) << workload[i];
  }
  service.Stop();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.admitted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  PlanCache::Stats cs = service.cache().GetStats();
  // Four templates, many literal variants: the cache must carry the bulk.
  EXPECT_GT(cs.hits, kQueries / 2);
}

// Multiple client threads submitting against a small queue: shed requests
// fail with ResourceExhausted, everything admitted completes correctly.
TEST_F(SrvStressTest, ConcurrentSubmittersWithLoadShedding) {
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());

  const size_t kThreads = 4;
  const size_t kPerThread = 25;
  std::vector<std::thread> clients;
  std::vector<uint64_t> ok_counts(kThreads, 0);
  std::vector<uint64_t> shed_counts(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        auto r = service
                     .Submit("SELECT Winner FROM BEATS WHERE Winner > " +
                             std::to_string(i % 9))
                     .get();
        if (r.ok()) {
          ++ok_counts[t];
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
          ++shed_counts[t];
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  service.Stop();

  uint64_t ok_total = 0, shed_total = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    ok_total += ok_counts[t];
    shed_total += shed_counts[t];
  }
  EXPECT_EQ(ok_total + shed_total, kThreads * kPerThread);
  EXPECT_GT(ok_total, 0u);
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, ok_total);
  EXPECT_EQ(stats.rejected, shed_total);
  EXPECT_LE(stats.max_queue_depth, options.queue_capacity);
}

// Chaos: every cache insert fails. The service degrades to a plain rewrite
// per query — same answers, zero hits, counted insert failures.
TEST_F(SrvStressTest, CacheInsertChaosDegradesToNormalRewrite) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(
      gov::FailPoints::Global().Configure("srv.cache.insert=error"));
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.use_l0 = false;  // every repeat must reach the plan cache
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());

  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  auto direct = db.session.Query(q);
  ASSERT_TRUE(direct.ok());
  for (int i = 0; i < 6; ++i) {
    auto r = service.Submit(q).get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->cache_hit);  // nothing ever lands in the cache
    EXPECT_EQ(r->result.rows, direct->rows);
  }
  service.Stop();
  PlanCache::Stats cs = service.cache().GetStats();
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.entries, 0u);
  EXPECT_EQ(cs.insert_failures, 6u);
}

// Chaos only on the first insert: the second serve repopulates and later
// serves hit — a transient insert failure heals itself.
TEST_F(SrvStressTest, TransientInsertFailureHeals) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(
      gov::FailPoints::Global().Configure("srv.cache.insert=once"));
  ServiceOptions options;
  options.workers = 1;
  options.use_l0 = false;  // every repeat must reach the plan cache
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());
  const char* q = "SELECT Winner FROM BEATS WHERE Winner > 7";
  for (int i = 0; i < 3; ++i) {
    auto r = service.Submit(q).get();
    ASSERT_TRUE(r.ok());
  }
  service.Stop();
  PlanCache::Stats cs = service.cache().GetStats();
  EXPECT_EQ(cs.insert_failures, 1u);
  EXPECT_EQ(cs.inserts, 1u);
  EXPECT_GE(cs.hits, 1u);
}

// Hammer the sharded interner from several threads: identical structures
// built concurrently must intern to one node, and distinct streams must
// not corrupt each other. (Run under tsan: this is satellite coverage for
// the per-shard mutex split.)
TEST_F(SrvStressTest, InternerConcurrentHashConsing) {
  const size_t kThreads = 4;
  const size_t kTerms = 400;
  std::vector<std::vector<term::TermRef>> built(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      built[t].reserve(kTerms);
      for (size_t i = 0; i < kTerms; ++i) {
        // Same structure on every thread for even i; thread-distinct for
        // odd i (contention plus divergence on one table).
        int64_t v = (i % 2 == 0) ? static_cast<int64_t>(i)
                                 : static_cast<int64_t>(t * 1000 + i);
        built[t].push_back(term::Term::Apply(
            "NODE", {term::Term::Int(v),
                     term::Term::Apply("INNER", {term::Term::Int(v / 2)})}));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t i = 0; i < kTerms; i += 2) {
    for (size_t t = 1; t < kThreads; ++t) {
      ASSERT_EQ(built[0][i].get(), built[t][i].get())
          << "hash-consing diverged at term " << i;
    }
  }
  term::Interner::Stats stats = term::Interner::Global().GetStats();
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.hits, 0u);  // the even-i duplicates were consed
}

}  // namespace
}  // namespace eds::srv
