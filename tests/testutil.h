#ifndef EDS_TESTS_TESTUTIL_H_
#define EDS_TESTS_TESTUTIL_H_

#include <string>
#include <vector>

#include "exec/session.h"
#include "gtest/gtest.h"

namespace eds::testutil {

// gtest helpers for Status/Result.
#define EDS_ASSERT_OK(expr)                                         \
  do {                                                              \
    const auto& _s = (expr);                                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                          \
  } while (false)

#define EDS_ASSERT_OK_RESULT(expr)                                  \
  do {                                                              \
    const auto& _r = (expr);                                        \
    ASSERT_TRUE(_r.ok()) << _r.status().ToString();                 \
  } while (false)

#define EDS_EXPECT_OK(expr)                                         \
  do {                                                              \
    const auto& _s = (expr);                                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                          \
  } while (false)

// The paper's Fig. 2 schema (adapted: Title is CHAR, DOMINATE drops Score;
// a BEATS table of plain ids supports the magic-sets experiments).
inline const char* FilmSchemaDdl() {
  return R"(
    TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western');
    TYPE Point TUPLE (ABS : REAL, ORD : REAL);
    TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point);
    TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
      FUNCTION IncreaseSalary(This Actor, Val NUMERIC);
    TYPE Text CHAR;
    TYPE SetCategory SET OF Category;
    TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory);
    TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor);
    TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor);
    TABLE BEATS (Winner : NUMERIC, Loser : NUMERIC);
  )";
}

// Loads the Fig. 2 schema plus a small deterministic data set:
//   actors:   Quinn (12000), Bob (9000), Eva (15000)
//   films:    1 Zorba {Adventure} [Quinn, Eva], 2 Comedy Night {Comedy}
//             [Bob], 3 Space Saga {Science Fiction, Adventure} [Eva]
//   dominate: Bob > Quinn (film 1), Quinn > Eva (film 1)
//   beats:    the chain 1->2->...->10
struct FilmDb {
  exec::Session session;
  value::Value quinn, bob, eva;

  FilmDb() {
    auto status = session.ExecuteScript(FilmSchemaDdl());
    if (!status.ok()) ADD_FAILURE() << status.ToString();
    auto mk = [this](const char* name, int salary) {
      auto obj = session.NewObject(
          "Actor", {{"Name", value::Value::String(name)},
                    {"Salary", value::Value::Int(salary)}});
      if (!obj.ok()) {
        ADD_FAILURE() << obj.status().ToString();
        return value::Value::Null();
      }
      return *obj;
    };
    quinn = mk("Quinn", 12000);
    bob = mk("Bob", 9000);
    eva = mk("Eva", 15000);
    using value::Value;
    auto ins = [this](const char* t, exec::Row row) {
      auto s = session.InsertRow(t, std::move(row));
      if (!s.ok()) ADD_FAILURE() << s.ToString();
    };
    ins("FILM", {Value::Int(1), Value::String("Zorba"),
                 Value::Set({Value::String("Adventure")})});
    ins("FILM", {Value::Int(2), Value::String("Comedy Night"),
                 Value::Set({Value::String("Comedy")})});
    ins("FILM",
        {Value::Int(3), Value::String("Space Saga"),
         Value::Set({Value::String("Science Fiction"),
                     Value::String("Adventure")})});
    ins("APPEARS_IN", {Value::Int(1), quinn});
    ins("APPEARS_IN", {Value::Int(1), eva});
    ins("APPEARS_IN", {Value::Int(2), bob});
    ins("APPEARS_IN", {Value::Int(3), eva});
    ins("DOMINATE", {Value::Int(1), bob, quinn});
    ins("DOMINATE", {Value::Int(1), quinn, eva});
    for (int i = 1; i < 10; ++i) {
      ins("BEATS", {Value::Int(i), Value::Int(i + 1)});
    }
  }
};

// Sorted-row equality: both results as sets.
inline void ExpectSameRows(exec::Rows a, exec::Rows b) {
  exec::DedupRows(&a);
  exec::DedupRows(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j])
          << "row " << i << " col " << j << ": " << a[i][j].ToString()
          << " vs " << b[i][j].ToString();
    }
  }
}

}  // namespace eds::testutil

#endif  // EDS_TESTS_TESTUTIL_H_
