// Each lint pass has a minimal failing fixture producing its diagnostic
// (with a source location), plus a clean program that produces none. The
// analysis predicates (MayUnify, IsSizeDecreasing, Subsumes, SCC) are
// exercised directly as well: they are the load-bearing approximations.
#include "lint/lint.h"

#include "catalog/catalog.h"
#include "gtest/gtest.h"
#include "lint/analysis.h"
#include "magic/magic.h"
#include "rules/semantic.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"

namespace eds::lint {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

LintReport Lint(std::string_view source, const LintOptions& opts = {}) {
  return LintSource(source, Registry(), opts);
}

term::TermRef T(const std::string& text) {
  auto t = term::ParseTerm(text);
  EXPECT_TRUE(t.ok()) << text << ": " << t.status();
  return *t;
}

// ---- fixtures: one per diagnostic -------------------------------------

TEST(LintTest, CleanProgramHasNoDiagnostics) {
  LintReport report = Lint(R"(
dedup_dedup : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
dedup_union : DEDUP(UNION(x)) / --> UNION(x) / ;
)");
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(LintTest, DivergentPairWarns) {
  LintReport report = Lint(R"(
ping : DEDUP(UNION(x)) / --> UNION(DEDUP(x)) / ;
pong : UNION(DEDUP(x)) / --> DEDUP(UNION(x)) / ;
)");
  auto found = report.WithId(kLintDivergence);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].severity, Severity::kWarning);
  EXPECT_EQ(found[0].rule, "ping");
  EXPECT_NE(found[0].message.find("'pong'"), std::string::npos);
  EXPECT_EQ(found[0].loc.line, 2);
  EXPECT_EQ(found[0].loc.column, 1);
}

TEST(LintTest, SelfLoopWarns) {
  LintReport report = Lint(R"(
swap : EQ(a, b) / --> EQ(b, a) / ;
)");
  auto found = report.WithId(kLintDivergence);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "swap");
}

TEST(LintTest, SizeDecreasingRuleSuppressesDivergence) {
  // The self-loop provably shrinks the term, so saturation terminates.
  LintReport report = Lint(R"(
collapse : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
)");
  EXPECT_TRUE(report.WithId(kLintDivergence).empty()) << report.ToString();
}

TEST(LintTest, FiniteBlockLimitSuppressesDivergence) {
  LintReport report = Lint(R"(
swap : EQ(a, b) / --> EQ(b, a) / ;
block(bounded, {swap}, 4) ;
)");
  EXPECT_TRUE(report.WithId(kLintDivergence).empty()) << report.ToString();
}

TEST(LintTest, UnreferencedRuleWarns) {
  LintReport report = Lint(R"(
used : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
orphan : DEDUP(UNION(x)) / --> UNION(x) / ;
block(main, {used}, inf) ;
)");
  auto found = report.WithId(kLintUnreferencedRule);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "orphan");
  EXPECT_EQ(found[0].loc.line, 3);
}

TEST(LintTest, UnreachableFunctorWarns) {
  LintReport report = Lint(R"(
dead : FROBNICATE(x) / --> DEDUP(x) / ;
)");
  auto found = report.WithId(kLintUnreachableFunctor);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "dead");
  EXPECT_NE(found[0].message.find("FROBNICATE"), std::string::npos);
}

TEST(LintTest, RuleOutputMakesFunctorReachable) {
  // A second rule constructs FROBNICATE, so the first is no longer dead.
  LintReport report = Lint(R"(
consumer : FROBNICATE(x) / --> DEDUP(x) / ;
producer : DEDUP(UNION(x)) / --> FROBNICATE(x) / ;
)");
  EXPECT_TRUE(report.WithId(kLintUnreachableFunctor).empty())
      << report.ToString();
}

TEST(LintTest, ExtraConstructorsExemptFromUnreachable) {
  LintOptions opts;
  opts.extra_constructors = {"FROBNICATE"};
  LintReport report =
      Lint("dead : FROBNICATE(x) / --> DEDUP(x) / ;", opts);
  EXPECT_TRUE(report.WithId(kLintUnreachableFunctor).empty())
      << report.ToString();
}

TEST(LintTest, OverfullPatternIsImpossible) {
  // SEARCH always has exactly three arguments.
  LintReport report = Lint(R"(
bad : SEARCH(a, b, c, d) / --> a / ;
)");
  auto found = report.WithId(kLintImpossiblePattern);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].severity, Severity::kError);
  EXPECT_EQ(found[0].rule, "bad");
  EXPECT_EQ(found[0].loc.line, 2);
}

TEST(LintTest, ShadowedRuleWarns) {
  LintReport report = Lint(R"(
general : DEDUP(x) / --> x / ;
specific : DEDUP(UNION(x)) / --> UNION(x) / ;
)");
  auto found = report.WithId(kLintShadowedRule);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "specific");
  EXPECT_NE(found[0].message.find("'general'"), std::string::npos);
  EXPECT_EQ(found[0].loc.line, 3);
}

TEST(LintTest, GuardedRuleDoesNotShadow) {
  // The general rule can decline its match, letting the specific one run.
  LintReport report = Lint(R"(
general : DEDUP(x) / ISA(x, SET) --> x / ;
specific : DEDUP(UNION(x)) / --> UNION(x) / ;
)");
  EXPECT_TRUE(report.WithId(kLintShadowedRule).empty()) << report.ToString();
}

TEST(LintTest, NonLinearPatternDoesNotShadowDistinctOne) {
  // EQ(x, x) only matches equal argument pairs: not more general than
  // EQ(a, b). Subsumption must respect binding consistency.
  LintReport report = Lint(R"(
refl : EQ(x, x) / --> TRUE / ;
other : EQ(DEDUP(a), UNION(b)) / --> FALSE / ;
)");
  EXPECT_TRUE(report.WithId(kLintShadowedRule).empty()) << report.ToString();
}

TEST(LintTest, DisjointIsaKindsAreUnsatisfiable) {
  LintReport report = Lint(R"(
bad : DEDUP(i) / ISA(i, SET) AND ISA(i, LIST) --> i / ;
)");
  auto found = report.WithId(kLintUnsatisfiableConstraint);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].severity, Severity::kError);
  EXPECT_EQ(found[0].rule, "bad");
  EXPECT_EQ(found[0].loc.line, 2);
}

TEST(LintTest, CompatibleIsaKindsAreFine) {
  LintReport report = Lint(R"(
ok : DEDUP(i) / ISA(i, SET) --> i / ;
)");
  EXPECT_TRUE(report.WithId(kLintUnsatisfiableConstraint).empty())
      << report.ToString();
}

TEST(LintTest, UnknownCatalogTypeIsUnsatisfiable) {
  catalog::Catalog cat;
  LintOptions opts;
  opts.catalog = &cat;
  LintReport report =
      Lint("bad : DEDUP(i) / ISA(i, NO_SUCH_TYPE) --> i / ;", opts);
  auto found = report.WithId(kLintUnsatisfiableConstraint);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_NE(found[0].message.find("NO_SUCH_TYPE"), std::string::npos);
}

TEST(LintTest, UnusedMethodOutputWarns) {
  LintReport report = Lint(R"(
wasted : FILTER(z, f) / --> z / SCHEMA(z, p) ;
)");
  auto found = report.WithId(kLintUnusedMethodOutput);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "wasted");
  EXPECT_NE(found[0].message.find("'p'"), std::string::npos);
  EXPECT_EQ(found[0].loc.line, 2);
}

TEST(LintTest, MethodOutputUsedByLaterMethodIsFine) {
  LintReport report = Lint(R"(
chained : FILTER(z, f) / --> SEARCH(LIST(z), f, p2) /
  SCHEMA(z, p), SHIFT_ATTRS(p, z, z, p2) ;
)");
  EXPECT_TRUE(report.WithId(kLintUnusedMethodOutput).empty())
      << report.ToString();
}

TEST(LintTest, CollectionVarMatchingOnlyEmptyWarns) {
  // SEARCH's three fixed arguments are taken; x* can only be empty.
  LintReport report = Lint(R"(
squeezed : SEARCH(a, b, c, x*) / --> SEARCH(a, b, c) / ;
)");
  auto found = report.WithId(kLintEmptyCollectionVar);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "squeezed");
}

TEST(LintTest, MalformedRhsConstructorWarns) {
  LintReport report = Lint(R"(
bad_build : FILTER(a, b) / --> DEDUP(a, b) / ;
)");
  auto found = report.WithId(kLintMalformedConstructor);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "bad_build");
  EXPECT_NE(found[0].message.find("DEDUP"), std::string::npos);
}

TEST(LintTest, VariadicConstructorsAreNotArityChecked) {
  LintReport report = Lint(R"(
ok : UNION(SET(a, b, c)) / --> UNION(SET(a, b)) / ;
)");
  EXPECT_TRUE(report.WithId(kLintMalformedConstructor).empty())
      << report.ToString();
  EXPECT_TRUE(report.WithId(kLintImpossiblePattern).empty())
      << report.ToString();
}

// ---- unit-level diagnostics -------------------------------------------

TEST(LintTest, ParseErrorIsReportedWithLocation) {
  LintReport report = Lint("broken :::");
  auto found = report.WithId(kLintParseError);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].severity, Severity::kError);
  EXPECT_TRUE(found[0].loc.known());
}

TEST(LintTest, InvalidRuleIsReportedAndExcluded) {
  LintReport report = Lint(R"(
bad : DEDUP(x) / --> x / NO_SUCH_METHOD(x) ;
)");
  auto found = report.WithId(kLintInvalidRule);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "bad");
  // The invalid rule is skipped by the analysis passes, not re-reported.
  EXPECT_EQ(report.error_count(), 1u) << report.ToString();
}

TEST(LintTest, DuplicateRuleNameIsAnError) {
  LintReport report = Lint(R"(
twin : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
twin : DEDUP(UNION(x)) / --> UNION(x) / ;
)");
  auto found = report.WithId(kLintDuplicateName);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].loc.line, 3);
}

TEST(LintTest, UnknownBlockReferenceIsAnError) {
  LintReport report = Lint(R"(
real : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
block(main, {real, ghost}, inf) ;
)");
  auto found = report.WithId(kLintUnknownReference);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_NE(found[0].message.find("'ghost'"), std::string::npos);
  EXPECT_EQ(found[0].block, "main");
  EXPECT_EQ(found[0].loc.line, 3);
}

TEST(LintTest, SeqReferencingUnknownBlockIsAnError) {
  LintReport report = Lint(R"(
real : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
block(main, {real}, inf) ;
seq({main, phantom}, 1) ;
)");
  auto found = report.WithId(kLintUnknownReference);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_NE(found[0].message.find("'phantom'"), std::string::npos);
}

TEST(LintTest, DiagnosticsAreSortedByLocation) {
  LintReport report = Lint(R"(
wasted : FILTER(z, f) / --> z / SCHEMA(z, p) ;
dead : FROBNICATE(x) / --> DEDUP(x) / ;
)");
  ASSERT_GE(report.size(), 2u) << report.ToString();
  for (size_t i = 1; i < report.size(); ++i) {
    EXPECT_LE(report.diagnostics()[i - 1].loc.offset,
              report.diagnostics()[i].loc.offset);
  }
}

// ---- compiler integration ---------------------------------------------

TEST(LintTest, CompileReportsDroppedRules) {
  auto unit = ruledsl::ParseRuleSource(R"(
used : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
orphan : DEDUP(UNION(x)) / --> UNION(x) / ;
block(main, {used}, inf) ;
)");
  ASSERT_TRUE(unit.ok()) << unit.status();
  LintReport report;
  ruledsl::CompileOptions opts;
  opts.diagnostics = &report;
  auto program = ruledsl::CompileProgram(*unit, Registry(), opts);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->blocks.size(), 1u);
  EXPECT_EQ(program->blocks[0].rules.size(), 1u);
  auto found = report.WithId(kLintUnreferencedRule);
  ASSERT_EQ(found.size(), 1u) << report.ToString();
  EXPECT_EQ(found[0].rule, "orphan");
}

TEST(LintTest, CompileWithRunLintAnalyzesTheProgram) {
  LintReport report;
  ruledsl::CompileOptions opts;
  opts.diagnostics = &report;
  opts.run_lint = true;
  auto program = ruledsl::CompileRuleSource(
      "swap : EQ(a, b) / --> EQ(b, a) / ;", Registry(), opts);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(report.WithId(kLintDivergence).size(), 1u) << report.ToString();
}

TEST(LintTest, CompileWithoutDiagnosticsStillDropsSilently) {
  auto program = ruledsl::CompileRuleSource(R"(
used : DEDUP(DEDUP(x)) / --> DEDUP(x) / ;
orphan : DEDUP(UNION(x)) / --> UNION(x) / ;
block(main, {used}, inf) ;
)",
                                            Registry());
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->blocks.size(), 1u);
  EXPECT_EQ(program->blocks[0].rules.size(), 1u);
}

TEST(LintTest, AnalyzeProgramWorksOnCompiledPrograms) {
  auto program = ruledsl::CompileRuleSource(
      "swap : EQ(a, b) / --> EQ(b, a) / ;", Registry());
  ASSERT_TRUE(program.ok()) << program.status();
  LintReport report;
  AnalyzeProgram(*program, Registry(), LintOptions{}, &report);
  EXPECT_EQ(report.WithId(kLintDivergence).size(), 1u) << report.ToString();
}

// ---- analysis predicates ----------------------------------------------

TEST(LintAnalysisTest, PatternWeightCountsNodesNotCollectionVars) {
  EXPECT_EQ(PatternWeight(T("DEDUP(UNION(x))")), 3u);
  EXPECT_EQ(PatternWeight(T("LIST(x*)")), 1u);
  EXPECT_EQ(PatternWeight(T("c")), 1u);
}

TEST(LintAnalysisTest, MayUnifyBasics) {
  const auto& reg = Registry();
  EXPECT_TRUE(MayUnify(T("DEDUP(x)"), T("DEDUP(UNION(y))"), reg));
  EXPECT_FALSE(MayUnify(T("DEDUP(x)"), T("UNION(y)"), reg));
  EXPECT_TRUE(MayUnify(T("LIST(x*, a)"), T("LIST(b, c, d)"), reg));
  EXPECT_FALSE(MayUnify(T("LIST(a, b)"), T("LIST(c, d, e)"), reg));
  // Term functions are wildcards: their result shape is unknown.
  EXPECT_TRUE(MayUnify(T("APPEND(x*, y*)"), T("LIST(a)"), reg));
}

TEST(LintAnalysisTest, IsSizeDecreasing) {
  const auto& reg = Registry();
  rewrite::Rule shrink;
  shrink.lhs = T("DEDUP(DEDUP(x))");
  shrink.rhs = T("DEDUP(x)");
  EXPECT_TRUE(IsSizeDecreasing(shrink, reg));

  rewrite::Rule swap;
  swap.lhs = T("EQ(a, b)");
  swap.rhs = T("EQ(b, a)");
  EXPECT_FALSE(IsSizeDecreasing(swap, reg));

  rewrite::Rule dup;  // duplicates x: substitution can grow the term
  dup.lhs = T("DEDUP(DEDUP(x))");
  dup.rhs = T("EQ(x, x)");
  EXPECT_FALSE(IsSizeDecreasing(dup, reg));
}

TEST(LintAnalysisTest, SubsumesRespectsBindingConsistency) {
  EXPECT_TRUE(Subsumes(T("DEDUP(x)"), T("DEDUP(UNION(y))")));
  EXPECT_TRUE(Subsumes(T("EQ(x, x)"), T("EQ(DEDUP(a), DEDUP(a))")));
  EXPECT_FALSE(Subsumes(T("EQ(x, x)"), T("EQ(DEDUP(a), UNION(b))")));
  EXPECT_FALSE(Subsumes(T("DEDUP(UNION(y))"), T("DEDUP(x)")));
}

TEST(LintAnalysisTest, StronglyConnectedComponents) {
  // 0 -> 1 -> 2 -> 0 plus an isolated 3.
  std::vector<std::vector<int>> adj = {{1}, {2}, {0}, {}};
  auto sccs = StronglyConnectedComponents(adj);
  ASSERT_EQ(sccs.size(), 2u);
  bool saw_cycle = false;
  for (const auto& scc : sccs) {
    if (scc.size() == 3) {
      saw_cycle = true;
      EXPECT_EQ(scc, (std::vector<int>{0, 1, 2}));
    }
  }
  EXPECT_TRUE(saw_cycle);
}

}  // namespace
}  // namespace eds::lint
