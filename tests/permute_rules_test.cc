// Fig. 8 — operation permutation rules (push search through union / nest).
#include "rules/permutation.h"

#include <functional>

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "rewrite/engine.h"
#include "rules/merging.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class PermuteRulesTest : public ::testing::Test {
 protected:
  PermuteRulesTest() {
    registry_.InstallStandard();
    // Permutation rules need union_collapse from the merging library.
    std::string source = std::string(PermutationRuleSource()) +
                         MergingRuleSource() +
                         "block(push, {push_search_union, push_search_nest, "
                         "union_collapse}, inf) ;\n"
                         "seq({push}, 1) ;";
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    engine_ = std::make_unique<rewrite::Engine>(
        &db_.session.catalog(), &registry_, std::move(*prog));
  }

  TermRef Rewrite(const char* query) {
    auto out = engine_->Rewrite(P(query));
    EXPECT_TRUE(out.ok()) << out.status();
    return out.ok() ? out->term : nullptr;
  }

  void ExpectEquivalent(const char* query) {
    TermRef raw = P(query);
    TermRef pushed = Rewrite(query);
    auto raw_rows = db_.session.Run(raw);
    auto pushed_rows = db_.session.Run(pushed);
    ASSERT_TRUE(raw_rows.ok()) << raw_rows.status();
    ASSERT_TRUE(pushed_rows.ok()) << pushed_rows.status();
    testutil::ExpectSameRows(*raw_rows, *pushed_rows);
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(PermuteRulesTest, PushThroughBinaryUnion) {
  // Fig. 8's first rule: a search over a union becomes a union of
  // searches.
  TermRef out = Rewrite(
      "SEARCH(LIST(UNION(SET(RELATION('A'), RELATION('B')))), ($1.1 = 1), "
      "LIST($1.2))");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(term::Equals(
      out,
      P("UNION(SET(SEARCH(LIST(RELATION('A')), ($1.1 = 1), LIST($1.2)), "
        "SEARCH(LIST(RELATION('B')), ($1.1 = 1), LIST($1.2))))"))
      || term::Equals(
             out,
             P("UNION(SET(SEARCH(LIST(RELATION('B')), ($1.1 = 1), "
               "LIST($1.2)), SEARCH(LIST(RELATION('A')), ($1.1 = 1), "
               "LIST($1.2))))")));
}

TEST_F(PermuteRulesTest, PushThroughNaryUnionPeelsAllBranches) {
  TermRef out = Rewrite(
      "SEARCH(LIST(UNION(SET(RELATION('A'), RELATION('B'), RELATION('C')))), "
      "($1.1 = 1), LIST($1.1))");
  ASSERT_NE(out, nullptr);
  // No SEARCH-over-UNION may remain anywhere.
  std::function<bool(const TermRef&)> has_search_over_union =
      [&](const TermRef& t) -> bool {
    if (lera::IsSearch(t)) {
      auto inputs = lera::SearchInputs(t);
      if (inputs.ok()) {
        for (const TermRef& in : *inputs) {
          if (lera::IsUnion(in)) return true;
        }
      }
    }
    if (t->is_apply()) {
      for (const TermRef& a : t->args()) {
        if (has_search_over_union(a)) return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(has_search_over_union(out));
}

TEST_F(PermuteRulesTest, PushThroughUnionPreservesSiblingPositions) {
  // The union is the second of two inputs; attribute references must stay
  // valid in both branches.
  ExpectEquivalent(
      "SEARCH(LIST(RELATION('FILM'), UNION(SET(RELATION('BEATS'), "
      "RELATION('BEATS')))), (($1.1 = $2.1) AND ($2.2 = 4)), "
      "LIST($1.2, $2.2))");
}

TEST_F(PermuteRulesTest, PushThroughUnionEquivalence) {
  ExpectEquivalent(
      "SEARCH(LIST(UNION(SET(RELATION('BEATS'), RELATION('DOMINATE')))), "
      "($1.1 = 1), LIST($1.1, $1.2))");
}

TEST_F(PermuteRulesTest, PushThroughNestMovesPushableConjuncts) {
  // NEST(APPEARS_IN, [2], 'Actors') produces (Numf, Actors); the Numf
  // conjunct is pushable, the set-valued one is not (REFER constraint).
  TermRef out = Rewrite(
      "SEARCH(LIST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')), "
      "(($1.1 = 1) AND ISEMPTY($1.2)), LIST($1.1))");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(NEST(SEARCH(LIST(RELATION('APPEARS_IN')), ($1.1 = 1), "
        "LIST($1.1, $1.2)), LIST(2), 'Actors')), ISEMPTY($1.2), "
        "LIST($1.1))")));
}

TEST_F(PermuteRulesTest, PushThroughNestDoesNotFireOnNestedAttrs) {
  // The only conjunct touches the nested column: nothing to push.
  const char* query =
      "SEARCH(LIST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')), "
      "ISEMPTY($1.2), LIST($1.1))";
  TermRef out = Rewrite(query);
  EXPECT_TRUE(term::Equals(out, P(query)));
}

TEST_F(PermuteRulesTest, PushThroughNestEquivalence) {
  ExpectEquivalent(
      "SEARCH(LIST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')), "
      "($1.1 = 1), LIST($1.1, $1.2))");
}

TEST_F(PermuteRulesTest, PushThroughNestTerminates) {
  // A second pass must not fire again (SPLIT_QUAL finds nothing pushable
  // in the residual qualification).
  const char* query =
      "SEARCH(LIST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')), "
      "($1.1 = 1), LIST($1.1))";
  TermRef once = Rewrite(query);
  auto out2 = engine_->Rewrite(once);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->stats.applications, 0u) << out2->term->ToString();
}

TEST_F(PermuteRulesTest, NestPushReducesGroupingWork) {
  // The pushed plan nests fewer rows: observable via executor stats.
  const char* query =
      "SEARCH(LIST(NEST(RELATION('APPEARS_IN'), LIST(2), 'Actors')), "
      "($1.1 = 1), LIST($1.1, $1.2))";
  TermRef raw = P(query);
  TermRef pushed = Rewrite(query);
  exec::ExecStats raw_stats, pushed_stats;
  ASSERT_TRUE(db_.session.Run(raw, {}, &raw_stats).ok());
  ASSERT_TRUE(db_.session.Run(pushed, {}, &pushed_stats).ok());
  // Raw nests all 4 APPEARS_IN rows then filters; pushed filters first.
  EXPECT_LT(pushed_stats.qual_evaluations, raw_stats.qual_evaluations + 3);
}

}  // namespace
}  // namespace eds::rules
