// Property suite for the persistence serialization contract: a term's
// printed form (Term::ToString) must parse back (term::ParseTerm) to the
// *pointer-identical* hash-consed term. The persisted plan-cache file
// (srv/persist.h) stores terms as text and reads them through the parser,
// so any term that breaks this round trip would come back as a different
// plan — the save path skips such terms, and this suite pins down that
// the terms that actually flow through the caches never need skipping.
//
// Corpora:
//   * every shipped rule library's patterns, constraints, and replacements
//     (the terms the optimizer is made of),
//   * the shared LERA plan corpus (lera_corpus.h),
//   * fingerprint templates + parameter lists of translated FilmDb
//     queries (the exact objects the plan cache persists), and
//   * constructed constant edge cases (quote escaping, real printing).
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lera_corpus.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "ruledsl/parser.h"
#include "srv/fingerprint.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::term {
namespace {

// The property: print -> parse -> the same interned node. Pointer identity
// is strictly stronger than structural equality and is exactly what the
// plan cache keys on.
void ExpectRoundTrip(const TermRef& t, const std::string& context) {
  ASSERT_NE(t, nullptr) << context;
  const std::string text = t->ToString();
  Result<TermRef> parsed = ParseTerm(text);
  ASSERT_TRUE(parsed.ok()) << context << ": " << text << ": "
                           << parsed.status().ToString();
  EXPECT_EQ(parsed->get(), t.get())
      << context << ": " << text << " reparsed to " << (*parsed)->ToString();
}

TEST(TermRoundTripTest, EveryShippedRuleLibraryRoundTrips) {
  const std::pair<const char*, const char*> sources[] = {
      {"merging", rules::MergingRuleSource()},
      {"permutation", rules::PermutationRuleSource()},
      {"fixpoint", rules::FixpointRuleSource()},
      {"simplify", rules::SimplifyRuleSource()},
      {"implicit", rules::ImplicitKnowledgeRuleSource()},
      {"semantic_methods", rules::SemanticMethodRuleSource()},
      {"extensions", rules::ExtensionRuleSource()},
  };
  size_t terms = 0;
  for (const auto& [name, source] : sources) {
    auto unit = ruledsl::ParseRuleSource(source);
    ASSERT_TRUE(unit.ok()) << name << ": " << unit.status();
    for (const rewrite::Rule& rule : unit->rules) {
      const std::string context = std::string(name) + "/" + rule.name;
      ExpectRoundTrip(rule.lhs, context + " lhs");
      ExpectRoundTrip(rule.rhs, context + " rhs");
      terms += 2;
      for (const TermRef& c : rule.constraints) {
        ExpectRoundTrip(c, context + " constraint");
        ++terms;
      }
      for (const rewrite::MethodCall& m : rule.methods) {
        for (const TermRef& a : m.args) {
          ExpectRoundTrip(a, context + " method arg");
          ++terms;
        }
      }
    }
  }
  EXPECT_GT(terms, 100u);  // the corpus is not vacuous
}

TEST(TermRoundTripTest, LeraCorpusRoundTrips) {
  for (const char* text : testutil::kLeraCorpus) {
    Result<TermRef> plan = ParseTerm(text);
    ASSERT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    ExpectRoundTrip(*plan, text);
  }
}

TEST(TermRoundTripTest, FingerprintTemplatesAndParamsRoundTrip) {
  testutil::FilmDb db;
  const char* queries[] = {
      "SELECT Numf FROM FILM WHERE Numf > 1;",
      "SELECT Title FROM FILM WHERE Title = 'Zorba';",
      "SELECT F.Title, Name(A.Refactor) FROM FILM F, APPEARS_IN A "
      "WHERE F.Numf = A.Numf AND Salary(A.Refactor) > 10000;",
      "SELECT Numf FROM FILM WHERE Numf > 0.5 AND Numf < 2.5;",
      "SELECT Name(Refactor1) FROM DOMINATE WHERE Numf = 1;",
  };
  for (const char* esql : queries) {
    auto raw = db.session.Translate(esql);
    ASSERT_TRUE(raw.ok()) << esql << ": " << raw.status().ToString();
    srv::Fingerprint fp = srv::FingerprintPlan(*raw);
    // The template (with its $CQi parameter variables) and every extracted
    // literal are exactly what a persisted plan record contains.
    ExpectRoundTrip(fp.tmpl, std::string(esql) + " template");
    for (size_t i = 0; i < fp.params.size(); ++i) {
      ExpectRoundTrip(fp.params[i],
                      std::string(esql) + " $CQ" + std::to_string(i));
    }
    ExpectRoundTrip(*raw, std::string(esql) + " raw plan");
  }
}

TEST(TermRoundTripTest, ParameterVariablesParse) {
  // $CQi variables print as "$CQ0" — the lexer must read the reserved '$'
  // prefix back as a variable, not an attribute reference.
  TermRef v = Term::Var("$CQ0");
  ExpectRoundTrip(v, "$CQ0");
  TermRef inside =
      Term::Apply("FILTER", {Term::Relation("R"),
                             Term::Eq(Term::Attr(1, 1), Term::Var("$CQ7"))});
  ExpectRoundTrip(inside, "FILTER with param var");
}

TEST(TermRoundTripTest, ConstantEdgeCasesRoundTrip) {
  ExpectRoundTrip(Term::Str("plain"), "plain string");
  ExpectRoundTrip(Term::Str("O'Brien"), "embedded quote");
  ExpectRoundTrip(Term::Str("''"), "only quotes");
  ExpectRoundTrip(Term::Str(""), "empty string");
  ExpectRoundTrip(Term::Int(0), "zero");
  ExpectRoundTrip(Term::Int(-42), "negative int");
  ExpectRoundTrip(Term::Int(INT64_MAX), "int64 max");
  ExpectRoundTrip(Term::Real(0.5), "half");
  ExpectRoundTrip(Term::Real(1.0), "whole real stays real");
  ExpectRoundTrip(Term::Real(0.1), "decimal 0.1");
  ExpectRoundTrip(Term::Real(1234567.25), "large real");
  ExpectRoundTrip(Term::Real(0.0000001), "tiny real");
  ExpectRoundTrip(Term::Bool(true), "TRUE");
  ExpectRoundTrip(Term::Bool(false), "FALSE");
}

TEST(TermRoundTripTest, LossyTermsFailLoudlyNotSilently) {
  // Terms the text format cannot represent faithfully must fail the round
  // trip (the persistence layer detects this and skips them) — they must
  // never parse back as a DIFFERENT term.
  const TermRef null_term = Term::Constant(value::Value::Null());
  Result<TermRef> reparsed = ParseTerm(null_term->ToString());
  if (reparsed.ok()) {
    EXPECT_NE(reparsed->get(), null_term.get())
        << "NULL constants round-tripping would obsolete the save-time "
           "skip; update persist.cc if this is now supported";
  }
}

}  // namespace
}  // namespace eds::term
