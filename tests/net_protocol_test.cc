// Wire-protocol framing and body codecs: round trips, streaming
// reassembly from partial reads, and the codec chaos patterns (oversize
// lengths, truncation, bit flips, garbage) landing on NextFrame — the
// exact function every byte from the network goes through.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/protocol.h"

namespace eds::net {
namespace {

std::string OneFrame(MsgType type, uint64_t request_id,
                     const std::string& body) {
  std::string out;
  AppendFrame(type, request_id, body, &out);
  return out;
}

TEST(NetFraming, RoundTripsOneFrame) {
  std::string buffer = OneFrame(MsgType::kQuery, 42, "payload");
  Frame frame;
  std::string why;
  ASSERT_EQ(NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, &why),
            FrameStatus::kOk)
      << why;
  EXPECT_EQ(frame.type, MsgType::kQuery);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.body, "payload");
  EXPECT_TRUE(buffer.empty());  // consumed
}

TEST(NetFraming, ExtractsBackToBackFrames) {
  std::string buffer = OneFrame(MsgType::kHello, 1, "a") +
                       OneFrame(MsgType::kStats, 2, "") +
                       OneFrame(MsgType::kGoodbye, 3, "ccc");
  std::vector<Frame> frames;
  Frame frame;
  while (NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, nullptr) ==
         FrameStatus::kOk) {
    frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kHello);
  EXPECT_EQ(frames[1].request_id, 2u);
  EXPECT_EQ(frames[2].body, "ccc");
}

// Streaming reassembly: feed the frame one byte at a time; every prefix
// must report kNeedMore, the final byte completes the frame.
TEST(NetFraming, ReassemblesFromSingleByteReads) {
  const std::string wire = OneFrame(MsgType::kExec, 7, "CREATE TABLE t;");
  std::string buffer;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer += wire[i];
    ASSERT_EQ(NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, nullptr),
              FrameStatus::kNeedMore)
        << "at byte " << i;
  }
  buffer += wire.back();
  ASSERT_EQ(NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, nullptr),
            FrameStatus::kOk);
  EXPECT_EQ(frame.body, "CREATE TABLE t;");
}

TEST(NetFraming, OversizeLengthIsBad) {
  std::string buffer = OneFrame(MsgType::kQuery, 1, std::string(2048, 'x'));
  Frame frame;
  std::string why;
  EXPECT_EQ(NextFrame(&buffer, /*max_frame_bytes=*/1024, &frame, &why),
            FrameStatus::kBad);
  EXPECT_NE(why.find("oversize"), std::string::npos) << why;
}

// Every single-bit flip in the frame must be detected: either the CRC
// catches it, the length turns oversize, or the truncated tail reads as
// kNeedMore — never a silently-wrong frame, never a crash.
TEST(NetFraming, EveryBitFlipIsDetected) {
  const std::string wire = OneFrame(MsgType::kQuery, 99, "SELECT 1;");
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string buffer = wire;
      buffer[byte] = static_cast<char>(buffer[byte] ^ (1 << bit));
      Frame frame;
      FrameStatus st =
          NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, nullptr);
      if (st == FrameStatus::kOk) {
        // Only acceptable if the flip turned the length smaller AND the
        // CRC of the shorter payload happened to match — a 2^-32 event
        // the CRC contract does not cover. Fail loudly if it happens.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " produced a valid frame";
      }
    }
  }
}

TEST(NetFraming, TruncatedFrameWaitsForMore) {
  std::string wire = OneFrame(MsgType::kResult, 5, "abcdefgh");
  wire.resize(wire.size() - 3);  // torn mid-payload
  Frame frame;
  EXPECT_EQ(NextFrame(&wire, kDefaultMaxFrameBytes, &frame, nullptr),
            FrameStatus::kNeedMore);
}

TEST(NetFraming, UnknownMessageTypeIsBad) {
  // Type 0 and type 200 are outside the enum range.
  for (uint8_t bad_type : {uint8_t{0}, uint8_t{200}}) {
    std::string buffer;
    AppendFrame(static_cast<MsgType>(bad_type), 1, "x", &buffer);
    Frame frame;
    std::string why;
    EXPECT_EQ(NextFrame(&buffer, kDefaultMaxFrameBytes, &frame, &why),
              FrameStatus::kBad);
    EXPECT_NE(why.find("unknown"), std::string::npos) << why;
  }
}

// Deterministic garbage: NextFrame must classify arbitrary bytes as
// kNeedMore or kBad without reading out of bounds (the asan preset turns
// this into a memory-safety check).
TEST(NetFraming, GarbageNeverCrashes) {
  uint64_t state = 0x2545F4914F6CDD1DULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state & 0xFF);
  };
  for (int round = 0; round < 200; ++round) {
    std::string buffer;
    const size_t len = 1 + (static_cast<size_t>(next()) & 0x3F);
    for (size_t i = 0; i < len; ++i) buffer += next();
    Frame frame;
    FrameStatus st = NextFrame(&buffer, 4096, &frame, nullptr);
    EXPECT_TRUE(st == FrameStatus::kNeedMore || st == FrameStatus::kBad);
  }
}

// ---- body codecs ----

TEST(NetBodies, HelloRoundTrip) {
  Hello in;
  in.version = kProtocolVersion;
  in.client_name = "stress-7";
  in.tenant = "analytics";
  Result<Hello> out = DecodeHello(EncodeHello(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->version, in.version);
  EXPECT_EQ(out->client_name, "stress-7");
  EXPECT_EQ(out->tenant, "analytics");
}

TEST(NetBodies, HelloOkRoundTrip) {
  HelloOk in;
  in.session_id = 17;
  in.server_info = "eds/test";
  Result<HelloOk> out = DecodeHelloOk(EncodeHelloOk(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->session_id, 17u);
  EXPECT_EQ(out->server_info, "eds/test");
}

TEST(NetBodies, QueryExecCancelRoundTrip) {
  Result<QueryMsg> q = DecodeQuery(EncodeQuery({"SELECT Winner FROM BEATS"}));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->esql, "SELECT Winner FROM BEATS");
  Result<ExecMsg> e = DecodeExec(EncodeExec({"CREATE TABLE t (x INT);"}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->script, "CREATE TABLE t (x INT);");
  CancelMsg c;
  c.target_request = 12345;
  Result<CancelMsg> c2 = DecodeCancel(EncodeCancel(c));
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->target_request, 12345u);
}

TEST(NetBodies, ResultRoundTripWithRows) {
  ResultMsg in;
  in.ok = true;
  in.columns = {"Winner", "Loser"};
  in.rows = {{"1", "2"}, {"3", "4"}, {"5", "6"}};
  in.l0_hit = true;
  in.catalog_epoch = 3;
  in.rules_epoch = 8;
  in.serve_ns = 123456;
  Result<ResultMsg> out = DecodeResult(EncodeResult(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->ok);
  EXPECT_EQ(out->columns, in.columns);
  EXPECT_EQ(out->rows, in.rows);
  EXPECT_TRUE(out->l0_hit);
  EXPECT_FALSE(out->cache_hit);
  EXPECT_EQ(out->catalog_epoch, 3u);
  EXPECT_EQ(out->rules_epoch, 8u);
  EXPECT_EQ(out->serve_ns, 123456u);
}

TEST(NetBodies, ResultRoundTripError) {
  ResultMsg in;
  in.ok = false;
  in.error = "no such relation: NOPE";
  Result<ResultMsg> out = DecodeResult(EncodeResult(in));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->error, "no such relation: NOPE");
}

// A corrupt row/column count must fail cleanly, not allocate gigabytes or
// read past the body.
TEST(NetBodies, CorruptCountsFailCleanly) {
  ResultMsg in;
  in.ok = true;
  in.columns = {"a"};
  in.rows = {{"1"}};
  std::string body = EncodeResult(in);
  // Column count lives right after ok(1)+l0(1)+cache(1)+3x u64(24).
  const size_t ncols_at = 1 + 1 + 1 + 24;
  ASSERT_LT(ncols_at + 4, body.size());
  std::string corrupt = body;
  corrupt[ncols_at] = static_cast<char>(0xFF);
  corrupt[ncols_at + 1] = static_cast<char>(0xFF);
  corrupt[ncols_at + 2] = static_cast<char>(0xFF);
  corrupt[ncols_at + 3] = static_cast<char>(0x7F);
  Result<ResultMsg> out = DecodeResult(corrupt);
  EXPECT_FALSE(out.ok());
}

// A ragged row (hand-built ResultMsg whose row width disagrees with the
// column count) must not desync the stream: the encoder pads short rows
// and truncates long ones to exactly columns.size() cells.
TEST(NetBodies, RaggedRowsArePaddedOrTruncated) {
  ResultMsg in;
  in.ok = true;
  in.columns = {"a", "b"};
  in.rows = {{"1"}, {"2", "3", "SPILL"}, {"4", "5"}};
  Result<ResultMsg> out = DecodeResult(EncodeResult(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 3u);
  EXPECT_EQ(out->rows[0], (std::vector<std::string>{"1", ""}));
  EXPECT_EQ(out->rows[1], (std::vector<std::string>{"2", "3"}));
  EXPECT_EQ(out->rows[2], (std::vector<std::string>{"4", "5"}));
}

TEST(NetBodies, TrailingBytesAfterResultRejected) {
  ResultMsg in;
  in.ok = true;
  in.columns = {"a"};
  in.rows = {};
  std::string body = EncodeResult(in) + "junk";
  EXPECT_FALSE(DecodeResult(body).ok());
}

TEST(NetBodies, StatsAndErrorRoundTrip) {
  Result<StatsResult> s =
      DecodeStatsResult(EncodeStatsResult({"# TYPE x counter\nx 1\n"}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->prometheus, "# TYPE x counter\nx 1\n");
  Result<ErrorMsg> e = DecodeError(EncodeError({"bad frame"}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->message, "bad frame");
}

}  // namespace
}  // namespace eds::net
