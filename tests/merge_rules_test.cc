// Fig. 7 — operation merging rules, plus the basic-operator normalization.
#include "rules/merging.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "rewrite/engine.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class MergeRulesTest : public ::testing::Test {
 protected:
  MergeRulesTest() {
    registry_.InstallStandard();
    auto prog = ruledsl::CompileRuleSource(MergingRuleSource(), registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    engine_ = std::make_unique<rewrite::Engine>(
        &db_.session.catalog(), &registry_, std::move(*prog));
  }

  TermRef Rewrite(const char* query) {
    auto out = engine_->Rewrite(P(query));
    EXPECT_TRUE(out.ok()) << out.status();
    return out.ok() ? out->term : nullptr;
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(MergeRulesTest, SearchMergeFlattensTwoSearches) {
  // Outer selects from the inner's projection; after merging the outer
  // attribute references go through the inner projection list.
  TermRef out = Rewrite(
      "SEARCH(LIST(SEARCH(LIST(RELATION('FILM')), ($1.1 > 1), "
      "LIST($1.2, $1.3))), MEMBER('Adventure', $1.2), LIST($1.1))");
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('FILM')), MEMBER('Adventure', $1.3) AND "
        "($1.1 > 1), LIST($1.2))")));
}

TEST_F(MergeRulesTest, SearchMergeKeepsSiblingInputs) {
  // The inner search sits between two other inputs; the paper's rule moves
  // the inner inputs to the end (append(x*, v*, z)).
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('FILM'), SEARCH(LIST(RELATION('BEATS')), "
      "($1.1 = 5), LIST($1.1, $1.2)), RELATION('APPEARS_IN')), "
      "(($1.1 = $3.1) AND ($2.1 = $3.1)), LIST($2.2))");
  ASSERT_NE(out, nullptr);
  // New input order: FILM, APPEARS_IN, BEATS.
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('FILM'), RELATION('APPEARS_IN'), "
        "RELATION('BEATS')), ((($1.1 = $2.1) AND ($3.1 = $2.1)) AND "
        "($3.1 = 5)), LIST($3.2))")));
}

TEST_F(MergeRulesTest, SearchMergeCascades) {
  // A three-deep stack of searches collapses to one (saturation).
  TermRef out = Rewrite(
      "SEARCH(LIST(SEARCH(LIST(SEARCH(LIST(RELATION('BEATS')), ($1.1 > 0), "
      "LIST($1.1, $1.2))), ($1.2 < 99), LIST($1.1, $1.2))), ($1.1 = 3), "
      "LIST($1.2))");
  ASSERT_NE(out, nullptr);
  // One search over the base relation remains.
  ASSERT_TRUE(lera::IsSearch(out));
  auto inputs = lera::SearchInputs(out);
  ASSERT_TRUE(inputs.ok());
  ASSERT_EQ(inputs->size(), 1u);
  EXPECT_TRUE(lera::IsRelation((*inputs)[0]));
}

TEST_F(MergeRulesTest, SearchMergeRemapsExpressionsInsideProjections) {
  TermRef out = Rewrite(
      "SEARCH(LIST(SEARCH(LIST(RELATION('APPEARS_IN')), TRUE, "
      "LIST($1.2))), TRUE, LIST(FIELD(VALUE($1.1), 'Salary')))");
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('APPEARS_IN')), TRUE AND TRUE, "
        "LIST(FIELD(VALUE($1.2), 'Salary')))")));
}

TEST_F(MergeRulesTest, UnionMergeFlattens) {
  // Fig. 7: UNION(SET(x*, UNION(z))) --> UNION(set-union(x*, z)).
  TermRef out = Rewrite(
      "UNION(SET(RELATION('A'), UNION(SET(RELATION('B'), RELATION('C')))))");
  EXPECT_TRUE(term::Equals(
      out, P("UNION(SET(RELATION('A'), RELATION('B'), RELATION('C')))")));
}

TEST_F(MergeRulesTest, UnionMergeHandlesDeepNesting) {
  // Flattening yields a two-branch union; SET argument order is not
  // significant (the rules fire in either order depending on traversal).
  TermRef out = Rewrite(
      "UNION(SET(UNION(SET(UNION(SET(RELATION('A'))), RELATION('B')))))");
  ASSERT_NE(out, nullptr);
  auto inputs = lera::UnionInputs(out);
  ASSERT_TRUE(inputs.ok()) << out->ToString();
  ASSERT_EQ(inputs->size(), 2u);
  std::vector<std::string> names;
  for (const TermRef& in : *inputs) {
    auto n = lera::RelationName(in);
    ASSERT_TRUE(n.ok());
    names.push_back(*n);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B"}));
}

TEST_F(MergeRulesTest, UnionCollapseSingleton) {
  EXPECT_TRUE(term::Equals(Rewrite("UNION(SET(RELATION('A')))"),
                           P("RELATION('A')")));
}

TEST_F(MergeRulesTest, FilterProjectJoinNormalizeIntoSearch) {
  TermRef out = Rewrite("FILTER(RELATION('BEATS'), ($1.1 = 3))");
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('BEATS')), ($1.1 = 3), LIST($1.1, $1.2))")));

  out = Rewrite("PROJECT(RELATION('BEATS'), LIST($1.2))");
  EXPECT_TRUE(term::Equals(
      out, P("SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.2))")));

  out = Rewrite(
      "JOIN(RELATION('BEATS'), RELATION('BEATS'), ($1.2 = $2.1))");
  EXPECT_TRUE(term::Equals(
      out,
      P("SEARCH(LIST(RELATION('BEATS'), RELATION('BEATS')), ($1.2 = $2.1), "
        "LIST($1.1, $1.2, $2.1, $2.2))")));
}

TEST_F(MergeRulesTest, FilterOverProjectOverJoinBecomesOneSearch) {
  // The full normalization + merging pipeline on a basic-operator tree.
  TermRef out = Rewrite(
      "FILTER(PROJECT(JOIN(RELATION('BEATS'), RELATION('BEATS'), "
      "($1.2 = $2.1)), LIST($1.1, $2.2)), ($1.1 = 1))");
  ASSERT_TRUE(lera::IsSearch(out));
  auto inputs = lera::SearchInputs(out);
  ASSERT_TRUE(inputs.ok());
  ASSERT_EQ(inputs->size(), 2u);
  EXPECT_TRUE(lera::IsRelation((*inputs)[0]));
  EXPECT_TRUE(lera::IsRelation((*inputs)[1]));
}

TEST_F(MergeRulesTest, MergedPlanIsSemanticallyEquivalent) {
  // Execute raw vs merged and compare result sets.
  const char* query =
      "SEARCH(LIST(SEARCH(LIST(RELATION('BEATS')), ($1.1 > 2), "
      "LIST($1.1, $1.2))), ($1.2 < 9), LIST($1.1))";
  TermRef raw = P(query);
  TermRef merged = Rewrite(query);
  ASSERT_FALSE(term::Equals(raw, merged));
  auto raw_rows = db_.session.Run(raw);
  auto merged_rows = db_.session.Run(merged);
  ASSERT_TRUE(raw_rows.ok());
  ASSERT_TRUE(merged_rows.ok());
  testutil::ExpectSameRows(*raw_rows, *merged_rows);
}

TEST_F(MergeRulesTest, ViewStackFromEsqlMergesToOneSearch) {
  // CREATE VIEW over a view over a table; the translated query is a stack
  // of searches that must merge into one ("unnecessary temporary relations
  // are removed", §5.1).
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW BigWins (Winner, Loser) AS
      SELECT Winner, Loser FROM BEATS WHERE Winner > 2;
    CREATE VIEW BigWinners (W) AS
      SELECT Winner FROM BigWins WHERE Loser < 9;
  )"));
  auto raw = db_.session.Translate("SELECT W FROM BigWinners WHERE W > 3");
  ASSERT_TRUE(raw.ok()) << raw.status();
  auto out = engine_->Rewrite(*raw);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(lera::IsSearch(out->term));
  auto inputs = lera::SearchInputs(out->term);
  ASSERT_TRUE(inputs.ok());
  ASSERT_EQ(inputs->size(), 1u);
  EXPECT_TRUE(lera::IsRelation((*inputs)[0]));  // merged down to BEATS
  // And the results agree.
  auto raw_rows = db_.session.Run(*raw);
  auto merged_rows = db_.session.Run(out->term);
  ASSERT_TRUE(raw_rows.ok());
  ASSERT_TRUE(merged_rows.ok());
  testutil::ExpectSameRows(*raw_rows, *merged_rows);
}

}  // namespace
}  // namespace eds::rules
