// SELECT DISTINCT / the DEDUP operator: translation, execution, rewrite
// identities, and pushdown.
#include "gtest/gtest.h"
#include "lera/lera.h"
#include "lera/schema.h"
#include "rewrite/engine.h"
#include "rules/extensions.h"
#include "rules/merging.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds {
namespace {

using term::TermRef;
using value::Value;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(DistinctTest, TranslatesToDedup) {
  testutil::FilmDb db;
  auto t = db.session.Translate("SELECT DISTINCT Winner FROM BEATS");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(term::Equals(
      *t, P("DEDUP(SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1)))")));
  EDS_ASSERT_OK(lera::Validate(*t));
}

TEST(DistinctTest, SchemaPassesThrough) {
  testutil::FilmDb db;
  auto t = db.session.Translate("SELECT DISTINCT Winner, Loser FROM BEATS");
  ASSERT_TRUE(t.ok());
  auto schema = lera::InferSchema(*t, db.session.catalog());
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->size(), 2u);
  EXPECT_EQ((*schema)[0].name, "Winner");
}

TEST(DistinctTest, RemovesDuplicatesAtExecution) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    CREATE TABLE T (A : INT, B : INT);
    INSERT INTO T VALUES (1, 10), (1, 20), (2, 30), (2, 30);
  )"));
  auto all = s.Query("SELECT A FROM T");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 4u);  // bag semantics without DISTINCT
  auto distinct = s.Query("SELECT DISTINCT A FROM T");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->rows.size(), 2u);
  auto rows = s.Query("SELECT DISTINCT A, B FROM T");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
}

TEST(DistinctTest, DistinctWithGroupBy) {
  testutil::FilmDb db;
  auto result = db.session.Query(
      "SELECT DISTINCT Numf, MakeSet(Refactor) FROM APPEARS_IN "
      "GROUP BY Numf");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(DistinctTest, DedupIdentitiesInDefaultOptimizer) {
  testutil::FilmDb db;
  // DISTINCT over a UNION: the UNION already deduplicates, so the DEDUP
  // vanishes in the optimized plan.
  auto result = db.session.Query(
      "SELECT DISTINCT Winner FROM BEATS WHERE Winner > 8 "
      "UNION SELECT Loser FROM BEATS WHERE Loser < 3");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->optimized_plan->ToString().find("DEDUP"),
            std::string::npos)
      << result->optimized_plan->ToString();
}

TEST(DistinctTest, NestedDedupCollapses) {
  testutil::FilmDb db;
  auto opt = db.session.optimizer();
  ASSERT_TRUE(opt.ok());
  auto out = (*opt)->Rewrite(
      P("DEDUP(DEDUP(SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1))))"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(
      out->term,
      P("DEDUP(SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1)))")));
}

TEST(DistinctTest, PushSearchBelowDedup) {
  testutil::FilmDb db;
  rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  std::string source = std::string(rules::ExtensionRuleSource()) +
                       rules::MergingRuleSource() +
                       "block(b, {push_search_dedup, search_merge}, inf) ;\n"
                       "seq({b}, 1) ;";
  auto prog = ruledsl::CompileRuleSource(source, registry);
  ASSERT_TRUE(prog.ok()) << prog.status();
  rewrite::Engine engine(&db.session.catalog(), &registry, std::move(*prog));
  const char* query =
      "SEARCH(LIST(DEDUP(RELATION('BEATS'))), ($1.1 = 3), "
      "LIST($1.1, $1.2))";
  auto out = engine.Rewrite(P(query));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(
      out->term,
      P("SEARCH(LIST(DEDUP(SEARCH(LIST(RELATION('BEATS')), ($1.1 = 3), "
        "LIST($1.1, $1.2)))), TRUE, LIST($1.1, $1.2))")))
      << out->term->ToString();
  // Equivalence.
  auto raw_rows = db.session.Run(P(query));
  auto pushed_rows = db.session.Run(out->term);
  ASSERT_TRUE(raw_rows.ok());
  ASSERT_TRUE(pushed_rows.ok());
  testutil::ExpectSameRows(*raw_rows, *pushed_rows);
}

TEST(DistinctTest, DistinctEquivalentRawVsOptimized) {
  exec::Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    CREATE TABLE T (A : INT, B : INT);
    INSERT INTO T VALUES (1, 1), (1, 2), (2, 1), (2, 2), (1, 1);
    CREATE VIEW V (A) AS SELECT A FROM T WHERE B > 1;
  )"));
  exec::QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  for (const char* q : {"SELECT DISTINCT A FROM V",
                        "SELECT DISTINCT A FROM T WHERE B = 1"}) {
    auto raw = s.Query(q, no_rewrite);
    auto opt = s.Query(q);
    ASSERT_TRUE(raw.ok()) << raw.status();
    ASSERT_TRUE(opt.ok()) << opt.status();
    testutil::ExpectSameRows(raw->rows, opt->rows);
  }
}

}  // namespace
}  // namespace eds
