// Plan-cache persistence (srv/persist.h + srv/codec.h): codec units, the
// save/load round trip, hotness ranking, epoch staleness, load-time
// differential verification, and the warm-restart stress test — a second
// service booted from the persisted file must serve the same workload with
// >= 90% template-cache hits, zero rewrite time on hits, and byte-identical
// rows. Kill-mid-write and corrupt-file suites live in
// persist_chaos_test.cc.
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "srv/codec.h"
#include "srv/persist.h"
#include "srv/service.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::srv {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "eds_persist_" + name;
}

// ---------------- codec ----------------

TEST(CodecTest, Crc32MatchesKnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // the classic check value
}

TEST(CodecTest, EncoderDecoderRoundTrip) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU8(7);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutString("hello 'world'");
  enc.PutString("");

  Decoder dec(buf, /*max_string_bytes=*/1024);
  auto u8 = dec.GetU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 7u);
  auto u32 = dec.GetU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  auto u64 = dec.GetU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  auto s = dec.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello 'world'");
  auto empty = dec.GetString();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "");
  EXPECT_TRUE(dec.done());
  EXPECT_FALSE(dec.GetU8().ok());  // past the end
}

TEST(CodecTest, DecoderRejectsLyingLengths) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU32(1000);  // string length prefix with no bytes behind it
  Decoder dec(buf, 1 << 20);
  EXPECT_FALSE(dec.GetString().ok());

  // A length past the string cap is rejected before any allocation.
  std::string big;
  Encoder enc2(&big);
  enc2.PutString(std::string(100, 'x'));
  Decoder capped(big, /*max_string_bytes=*/10);
  EXPECT_FALSE(capped.GetString().ok());
}

TEST(CodecTest, FileHeaderRoundTrip) {
  FileHeader header;
  header.catalog_epoch = 42;
  header.rules_epoch = 7;
  std::string buf;
  EncodeFileHeader(header, &buf);
  ASSERT_EQ(buf.size(), FileHeader::kEncodedSize);
  auto decoded = DecodeFileHeader(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, FileHeader::kVersion);
  EXPECT_EQ(decoded->catalog_epoch, 42u);
  EXPECT_EQ(decoded->rules_epoch, 7u);
}

TEST(CodecTest, FileHeaderRejectsDamage) {
  FileHeader header;
  std::string buf;
  EncodeFileHeader(header, &buf);
  EXPECT_FALSE(DecodeFileHeader("").ok());
  EXPECT_FALSE(DecodeFileHeader(buf.substr(0, 10)).ok());
  std::string bad_magic = buf;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeFileHeader(bad_magic).ok());
  std::string bit_flip = buf;
  bit_flip[9] ^= 0x40;  // inside the flags word: CRC must catch it
  EXPECT_FALSE(DecodeFileHeader(bit_flip).ok());
}

TEST(CodecTest, RecordFramingSkipsBadCrcAndStopsOnTorn) {
  std::string buf;
  AppendRecord("first", &buf);
  const size_t second_start = buf.size();
  AppendRecord("second", &buf);
  AppendRecord("third", &buf);

  // Rot the second payload: its frame stays readable, its CRC does not.
  std::string rotten = buf;
  rotten[second_start + 8] ^= 0x01;
  size_t pos = 0;
  RecordRead r = ReadRecord(rotten, &pos, 1 << 20);
  ASSERT_EQ(r.status, RecordStatus::kOk);
  EXPECT_EQ(r.payload, "first");
  r = ReadRecord(rotten, &pos, 1 << 20);
  EXPECT_EQ(r.status, RecordStatus::kBadCrc);  // consumed, read continues
  r = ReadRecord(rotten, &pos, 1 << 20);
  ASSERT_EQ(r.status, RecordStatus::kOk);
  EXPECT_EQ(r.payload, "third");
  EXPECT_EQ(ReadRecord(rotten, &pos, 1 << 20).status, RecordStatus::kEnd);

  // Truncate mid-record: the read stops, the prefix survives.
  std::string torn = buf.substr(0, second_start + 3);
  pos = 0;
  EXPECT_EQ(ReadRecord(torn, &pos, 1 << 20).status, RecordStatus::kOk);
  EXPECT_EQ(ReadRecord(torn, &pos, 1 << 20).status, RecordStatus::kTorn);

  // A length prefix claiming more than the cap is torn, not an allocation.
  std::string giant;
  Encoder enc(&giant);
  enc.PutU32(0xFFFFFFFFu);
  enc.PutU32(0);
  pos = 0;
  EXPECT_EQ(ReadRecord(giant, &pos, 1 << 20).status, RecordStatus::kTorn);
}

// ---------------- save / load round trip ----------------

ServiceOptions PersistOptionsFor(const std::string& path, bool use_l0 = true) {
  ServiceOptions options;
  options.workers = 0;
  options.use_l0 = use_l0;
  options.persist_path = path;
  return options;
}

Result<ServedQuery> PumpOne(QueryService* service,
                            std::future<Result<ServedQuery>> future) {
  EXPECT_TRUE(service->ServeQueuedForTesting());
  return future.get();
}

TEST(PersistTest, SaveLoadRoundTripPreservesRecords) {
  const std::string path = TempPath("roundtrip.eds");
  std::remove(path.c_str());
  testutil::FilmDb db;
  QueryService service(&db.session, PersistOptionsFor(path));
  EDS_ASSERT_OK(service.Start());
  for (int k = 1; k <= 4; ++k) {
    auto served = PumpOne(
        &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > " +
                                 std::to_string(k)));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
  }
  EDS_ASSERT_OK(service.SavePersistNow());
  service.Stop();

  PersistOptions opts;
  LoadStats stats;
  auto image = LoadPersistFile(path, opts, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_FALSE(stats.torn_tail);
  // Four literal variants share one template; four exact texts are four
  // L0 entries.
  EXPECT_GE(image->plans.size(), 1u);
  EXPECT_EQ(image->l0.size(), 4u);
  EXPECT_EQ(image->header.catalog_epoch, db.session.catalog().epoch());
  EXPECT_EQ(image->header.rules_epoch, db.session.rules_epoch());
  // Hit counts survived: the shared template was hit 3 times after its
  // insert (4 queries, first was the miss).
  EXPECT_EQ(image->plans[0].hits, 3u);
  std::remove(path.c_str());
}

TEST(PersistTest, TopKKeepsTheHottestEntries) {
  PlanCache cache;
  L0Cache l0(16);
  auto mk = [](const std::string& text) {
    auto t = term::ParseTerm(text);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return *t;
  };
  const char* plans[] = {
      "FILTER(RELATION('A'), ($1.1 > 1))",
      "FILTER(RELATION('B'), ($1.1 > 1))",
      "FILTER(RELATION('C'), ($1.1 > 1))",
  };
  const uint64_t hits[] = {5, 11, 2};
  for (int i = 0; i < 3; ++i) {
    PlanCache::Key key;
    key.tmpl = mk(plans[i]);
    cache.Insert(key, mk(plans[i]), /*rewrite_ns=*/100, {},
                 /*seed_hits=*/hits[i]);
  }
  PersistOptions opts;
  opts.top_k = 2;
  FileHeader header;
  SaveStats stats;
  CacheImage image = BuildCacheImage(cache, l0, header, opts, &stats);
  ASSERT_EQ(image.plans.size(), 2u);
  EXPECT_EQ(image.plans[0].hits, 11u);  // hottest first
  EXPECT_EQ(image.plans[1].hits, 5u);
}

TEST(PersistTest, StaleEpochsLoadNothing) {
  const std::string path = TempPath("stale.eds");
  std::remove(path.c_str());
  testutil::FilmDb db;
  QueryService service(&db.session, PersistOptionsFor(path));
  EDS_ASSERT_OK(service.Start());
  auto served = PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 5"));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  service.Stop();  // writes the final snapshot

  PersistOptions opts;
  LoadStats stats;
  auto image = LoadPersistFile(path, opts, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const size_t records = image->plans.size() + image->l0.size();
  ASSERT_GT(records, 0u);
  PlanCache cache;
  L0Cache l0(16);
  // An epoch bump (DDL after the save) strands every record.
  size_t installed = WarmServiceCaches(
      *image, &db.session, &cache, &l0, db.session.catalog().epoch() + 1,
      db.session.rules_epoch(), opts, &stats);
  EXPECT_EQ(installed, 0u);
  EXPECT_EQ(stats.stale, records);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  std::remove(path.c_str());
}

TEST(PersistTest, VerifyLoadRejectsDivergentPlans) {
  testutil::FilmDb db;
  CacheImage image;
  image.header.catalog_epoch = db.session.catalog().epoch();
  image.header.rules_epoch = db.session.rules_epoch();
  // A consistent entry: raw and "optimized" agree.
  PersistedL0 good;
  good.key = "GOOD";
  good.raw_text = "SEARCH(LIST(RELATION('BEATS')), ($1.1 > 3), LIST($1.1))";
  good.plan_text = good.raw_text;
  good.columns = {"Winner"};
  image.l0.push_back(good);
  // A divergent entry: the "optimized" plan returns different rows — the
  // exact corruption differential verification exists to catch.
  PersistedL0 bad = good;
  bad.key = "BAD";
  bad.plan_text = "SEARCH(LIST(RELATION('BEATS')), ($1.1 > 7), LIST($1.1))";
  image.l0.push_back(bad);

  PersistOptions opts;
  opts.verify_load = true;
  LoadStats stats;
  PlanCache cache;
  L0Cache l0(16);
  size_t installed = WarmServiceCaches(
      image, &db.session, &cache, &l0, db.session.catalog().epoch(),
      db.session.rules_epoch(), opts, &stats);
  EXPECT_EQ(installed, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  // Only the consistent entry is servable.
  EXPECT_TRUE(l0.Lookup("GOOD", db.session.catalog().epoch(),
                        db.session.rules_epoch())
                  .has_value());
  EXPECT_FALSE(l0.Lookup("BAD", db.session.catalog().epoch(),
                         db.session.rules_epoch())
                   .has_value());
}

TEST(PersistTest, OversizeL0KeysAreNeverPersisted) {
  // A key past the L0 length cap is rejected at insert time (counted), so
  // it can never reach the persisted file.
  L0Cache l0(16, /*max_key_bytes=*/32);
  const std::string normalized =
      NormalizeQueryText(std::string(100, 'X'), l0.max_key_bytes());
  EXPECT_GT(normalized.size(), l0.max_key_bytes());
  L0Cache::Entry entry;
  l0.Insert(normalized, entry);
  EXPECT_EQ(l0.GetStats().oversize_rejects, 1u);
  EXPECT_EQ(l0.Snapshot().size(), 0u);
}

// ---------------- warm restart ----------------

// The tentpole acceptance test: persist under one service, boot a second
// service from the file, and require >= 90% template-cache hits with zero
// rewrite time and byte-identical rows. L0 is off so every query exercises
// the *structural* cache (the L0 path is covered separately below).
TEST(PersistRestartTest, WarmRestartHitsTemplateCacheAndMatchesColdResults) {
  const std::string path = TempPath("restart.eds");
  std::remove(path.c_str());
  std::vector<std::string> workload;
  for (int k = 0; k < 10; ++k) {
    workload.push_back("SELECT Winner FROM BEATS WHERE Winner > " +
                       std::to_string(k));
  }
  for (int k = 1; k <= 5; ++k) {
    workload.push_back("SELECT Loser FROM BEATS WHERE Loser < " +
                       std::to_string(k));
  }
  workload.push_back("SELECT Title FROM FILM WHERE Numf = 2");

  // Cold run: every template is a miss, then persist at Stop().
  std::vector<exec::Rows> cold_rows;
  {
    testutil::FilmDb db;
    QueryService service(&db.session,
                         PersistOptionsFor(path, /*use_l0=*/false));
    EDS_ASSERT_OK(service.Start());
    size_t cold_hits = 0;
    for (const std::string& q : workload) {
      auto served = PumpOne(&service, service.Submit(q));
      ASSERT_TRUE(served.ok()) << q << ": " << served.status().ToString();
      cold_rows.push_back(served->result.rows);
      if (served->cache_hit) ++cold_hits;
    }
    EXPECT_EQ(cold_hits, workload.size() - 3);  // 3 distinct templates
    service.Stop();
  }

  // Warm restart: a fresh session replays the same DDL (same epochs), and
  // the service warms from the file before serving.
  {
    testutil::FilmDb db;
    QueryService service(&db.session,
                         PersistOptionsFor(path, /*use_l0=*/false));
    EDS_ASSERT_OK(service.Start());
    LoadStats load = service.persist_load_stats();
    EXPECT_GT(load.ok, 0u);
    EXPECT_EQ(load.stale, 0u);
    EXPECT_EQ(load.rejected, 0u);

    size_t hits = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      auto served = PumpOne(&service, service.Submit(workload[i]));
      ASSERT_TRUE(served.ok())
          << workload[i] << ": " << served.status().ToString();
      if (served->cache_hit) {
        ++hits;
        // A warm hit never ran the rewrite phase.
        EXPECT_EQ(served->result.phase_times.rewrite_ns, 0u) << workload[i];
      }
      // Byte-identical rows vs the cold run (same order, same values).
      EXPECT_EQ(served->result.rows, cold_rows[i]) << workload[i];
    }
    EXPECT_GE(hits * 100, workload.size() * 90)
        << hits << "/" << workload.size() << " warm template hits";
    service.Stop();
  }
  std::remove(path.c_str());
}

TEST(PersistRestartTest, WarmRestartServesL0HitsBeforeTheParser) {
  const std::string path = TempPath("restart_l0.eds");
  std::remove(path.c_str());
  const std::string q = "SELECT Winner, Loser FROM BEATS WHERE Winner > 7";
  exec::Rows cold;
  {
    testutil::FilmDb db;
    QueryService service(&db.session, PersistOptionsFor(path));
    EDS_ASSERT_OK(service.Start());
    auto served = PumpOne(&service, service.Submit(q));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    cold = served->result.rows;
    service.Stop();
  }
  {
    testutil::FilmDb db;
    QueryService service(&db.session, PersistOptionsFor(path));
    EDS_ASSERT_OK(service.Start());
    auto served = PumpOne(&service, service.Submit(q));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served->l0_hit) << "exact text should hit L0 on arrival";
    EXPECT_EQ(served->result.rows, cold);
    EXPECT_EQ(served->result.phase_times.parse_ns, 0u);
    service.Stop();
  }
  std::remove(path.c_str());
}

TEST(PersistRestartTest, PersistMetricsAreExported) {
  const std::string path = TempPath("metrics.eds");
  std::remove(path.c_str());
  testutil::FilmDb db;
  QueryService service(&db.session, PersistOptionsFor(path));
  EDS_ASSERT_OK(service.Start());
  auto served = PumpOne(
      &service, service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1"));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EDS_ASSERT_OK(service.SavePersistNow());
  obs::MetricsRegistry registry;
  service.ExportMetrics(&registry);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("persist_load_ok"), std::string::npos) << prom;
  EXPECT_NE(prom.find("persist_save_count"), std::string::npos) << prom;
  service.Stop();
  SaveStats saves = service.persist_save_stats();
  EXPECT_GT(saves.plans + saves.l0, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eds::srv
