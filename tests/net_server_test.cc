// The TCP front end, end to end over loopback: handshake, concurrent
// clients proving byte-identical results vs in-process serving, DDL under
// load over the wire, client cancellation, fail-point connection kills
// (net.accept / net.read / net.write), and graceful shutdown. Run under
// the asan AND tsan presets — the server is poller + worker handoff, so
// this suite is the repo's network data-race detector.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gov/failpoint.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "srv/service.h"
#include "testutil.h"

namespace eds::net {
namespace {

// Server + service over the FilmDb, on an ephemeral loopback port.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override { gov::FailPoints::Global().Clear(); }
  void TearDown() override {
    gov::FailPoints::Global().Clear();
    if (server_ != nullptr) server_->Shutdown(true);
    if (service_ != nullptr) service_->Stop();
  }

  void StartServer(srv::ServiceOptions service_options = {},
                   ServerOptions server_options = {}) {
    if (service_options.workers == 0) service_options.workers = 3;
    service_ = std::make_unique<srv::QueryService>(&db_.session,
                                                   service_options);
    ASSERT_TRUE(service_->Start().ok());
    server_ = std::make_unique<Server>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<Client> Dial(const std::string& tenant = "") {
    Client::Options options;
    options.port = server_->port();
    options.tenant = tenant;
    auto client = Client::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    if (!client.ok()) return nullptr;
    return std::move(*client);
  }

  testutil::FilmDb db_;
  std::unique_ptr<srv::QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, HandshakeAssignsSessions) {
  ServerOptions options;
  options.server_info = "eds-test/1";
  StartServer({}, options);
  auto a = Dial();
  auto b = Dial();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->hello().server_info, "eds-test/1");
  EXPECT_NE(a->session_id(), b->session_id());
  EXPECT_EQ(server_->active_connections(), 2u);
  ASSERT_TRUE(a->Goodbye().ok());
  ASSERT_TRUE(b->Goodbye().ok());
}

TEST_F(NetServerTest, QueryOverWireMatchesInProcess) {
  StartServer();
  const std::string q = "SELECT Winner, Loser FROM BEATS WHERE Winner > 3";
  // In-process reference, rendered through the same RenderServed path.
  auto reference = service_->Submit(q).get();
  ASSERT_TRUE(reference.ok());
  ResultMsg expected = RenderServed(*reference);

  auto client = Dial();
  ASSERT_NE(client, nullptr);
  auto wire = client->Query(q);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(wire->ok) << wire->error;
  EXPECT_EQ(wire->columns, expected.columns);
  EXPECT_EQ(wire->rows, expected.rows);
  EXPECT_EQ(wire->catalog_epoch, expected.catalog_epoch);
  EXPECT_EQ(wire->rules_epoch, expected.rules_epoch);
}

TEST_F(NetServerTest, QueryErrorsTravelAsFailedResults) {
  StartServer();
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  auto r = client->Query("SELECT X FROM NO_SUCH_TABLE");
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // transport ok
  EXPECT_FALSE(r->ok);                           // query failed
  EXPECT_FALSE(r->error.empty());
  // The connection survives a failed query.
  auto again = client->Query("SELECT Winner FROM BEATS WHERE Winner > 8");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok);
}

// The acceptance bar: >=4 clients x >=100 queries over TCP, result bags
// byte-identical to single-threaded in-process serving.
TEST_F(NetServerTest, ConcurrentClientsMatchSerialInProcessServing) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kQueries = 100;
  std::vector<std::string> workload;
  for (int i = 0; i < kQueries; ++i) {
    switch (i % 3) {
      case 0:
        workload.push_back("SELECT Winner FROM BEATS WHERE Winner > " +
                           std::to_string(i % 9));
        break;
      case 1:
        workload.push_back("SELECT Title FROM FILM WHERE Numf > " +
                           std::to_string(i % 3));
        break;
      default:
        workload.push_back("SELECT Winner, Loser FROM BEATS WHERE Loser < " +
                           std::to_string(1 + (i % 9)));
        break;
    }
  }
  // Single-threaded in-process reference, rendered through the same
  // functions the server uses.
  std::vector<std::vector<std::vector<std::string>>> expected;
  expected.reserve(workload.size());
  for (const std::string& q : workload) {
    auto r = db_.session.Query(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    std::vector<std::vector<std::string>> rows;
    for (const exec::Row& row : r->rows) rows.push_back(RenderRow(row));
    std::sort(rows.begin(), rows.end());
    expected.push_back(std::move(rows));
  }

  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = Dial();
      if (client == nullptr) {
        failures[c] = kQueries;
        return;
      }
      for (size_t i = 0; i < workload.size(); ++i) {
        auto r = client->Query(workload[i]);
        if (!r.ok() || !r->ok) {
          ++failures[c];
          continue;
        }
        std::vector<std::vector<std::string>> rows = r->rows;
        std::sort(rows.begin(), rows.end());
        if (rows != expected[i]) ++mismatches[c];
      }
      (void)client->Goodbye();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
  const ServerStats stats = server_->GetStats();
  EXPECT_GE(stats.queries, static_cast<uint64_t>(kClients * kQueries));
  // The RESULT frame reaches the client before the worker's pending-table
  // bookkeeping completes, so drain the counter rather than snapshot it.
  for (int i = 0; i < 100 && server_->pending_queries() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->pending_queries(), 0u);
}

// DDL over the wire while another client's delayed queries are in flight:
// the pinned queries drain on the old snapshot (old epoch, correct rows),
// EXEC returns promptly, and post-DDL queries see the new epoch.
TEST_F(NetServerTest, DdlUnderLoadOverTheWire) {
  srv::ServiceOptions service_options;
  service_options.test_delay_marker = "BEATS";
  service_options.test_delay_ns = 150'000'000ULL;
  StartServer(service_options);

  auto slow = Dial();
  auto admin = Dial();
  ASSERT_NE(slow, nullptr);
  ASSERT_NE(admin, nullptr);

  const std::string q = "SELECT Winner FROM BEATS WHERE Winner > 2";
  auto pre = db_.session.Query(q);
  ASSERT_TRUE(pre.ok());
  std::vector<std::vector<std::string>> expected;
  for (const exec::Row& row : pre->rows) expected.push_back(RenderRow(row));
  std::sort(expected.begin(), expected.end());
  const uint64_t old_epoch = service_->current_snapshot()->catalog_epoch;

  // Pipeline two delayed queries, give the workers time to pin them.
  auto id1 = slow->SendQuery(q);
  auto id2 = slow->SendQuery(q);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const auto ddl_start = std::chrono::steady_clock::now();
  auto exec = admin->Exec("TABLE WIRE_DDL (x : NUMERIC);");
  const auto ddl_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - ddl_start)
                          .count();
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->ok) << exec->error;
  EXPECT_GT(exec->catalog_epoch, old_epoch);
  EXPECT_LT(ddl_ms, 120) << "EXEC blocked behind in-flight queries";

  // Post-DDL query from the admin connection sees the new epoch.
  auto fresh = admin->Query("SELECT Numf FROM FILM WHERE Numf > 1");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->ok) << fresh->error;
  EXPECT_GT(fresh->catalog_epoch, old_epoch);

  // The delayed queries drain on the old snapshot, byte-identical.
  for (int i = 0; i < 2; ++i) {
    auto resp = slow->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->result.ok) << resp->result.error;
    EXPECT_EQ(resp->result.catalog_epoch, old_epoch);
    std::vector<std::vector<std::string>> rows = resp->result.rows;
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, expected);
  }
}

TEST_F(NetServerTest, CancelKillsInFlightQuery) {
  srv::ServiceOptions service_options;
  service_options.base_limits.deadline_ms = 30'000;  // arm the guard
  service_options.test_delay_marker = "BEATS";
  service_options.test_delay_ns = 200'000'000ULL;
  StartServer(service_options);
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  auto id = client->SendQuery("SELECT Winner FROM BEATS WHERE Winner > 1");
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client->SendCancel(*id).ok());
  auto resp = client->ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, *id);
  // The cancel token fired while the query slept; the governor trips it
  // at the next chokepoint.
  ASSERT_FALSE(resp->result.ok);
  EXPECT_NE(resp->result.error.find("cancel"), std::string::npos)
      << resp->result.error;
  EXPECT_GE(server_->GetStats().cancels, 1u);
}

TEST_F(NetServerTest, StatsOverTheWire) {
  StartServer();
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Query("SELECT Winner FROM BEATS WHERE Winner > 5").ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("net_accepted"), std::string::npos);
  EXPECT_NE(stats->find("srv_snapshot_publishes"), std::string::npos);
  EXPECT_NE(stats->find("net_queries"), std::string::npos);
}

TEST_F(NetServerTest, MalformedFrameGetsErrorAndClose) {
  StartServer();
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  // A length prefix far beyond the frame cap followed by junk.
  std::string garbage = "\xff\xff\xff\x7f then arbitrary bytes";
  ASSERT_TRUE(client->SendRaw(garbage).ok());
  // The server answers ERROR and closes; the client surfaces either.
  auto r = client->Query("SELECT Winner FROM BEATS WHERE Winner > 1");
  EXPECT_FALSE(r.ok());
  // The server is still healthy for new connections.
  auto fresh = Dial();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Query("SELECT Winner FROM BEATS WHERE Winner > 1").ok());
  EXPECT_GE(server_->GetStats().protocol_errors, 1u);
}

TEST_F(NetServerTest, DuplicateHelloIsAProtocolError) {
  StartServer();
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  Hello again;
  again.client_name = "imposter";
  std::string frame;
  AppendFrame(MsgType::kHello, 9, EncodeHello(again), &frame);
  ASSERT_TRUE(client->SendRaw(frame).ok());
  auto r = client->Query("SELECT Winner FROM BEATS WHERE Winner > 1");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(server_->GetStats().protocol_errors, 1u);
}

TEST_F(NetServerTest, ConnectionLimitRejectsPolitely) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer({}, options);
  auto first = Dial();
  ASSERT_NE(first, nullptr);
  Client::Options copts;
  copts.port = server_->port();
  auto second = Client::Connect(copts);
  // Either the ERROR frame arrives ("connection limit") or the close's
  // RST beats it — both are a failed connect.
  ASSERT_FALSE(second.ok());
  EXPECT_GE(server_->GetStats().rejected, 1u);
  // Closing the first frees the slot.
  ASSERT_TRUE(first->Goodbye().ok());
  for (int i = 0; i < 50; ++i) {
    if (server_->active_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto third = Dial();
  EXPECT_NE(third, nullptr);
}

// ---- fail-point connection kills: the server never wedges or leaks ----

TEST_F(NetServerTest, AcceptFailPointDropsOneConnection) {
  StartServer();
  gov::FailPoints::Global().Configure("net.accept=error");
  Client::Options copts;
  copts.port = server_->port();
  auto doomed = Client::Connect(copts);
  EXPECT_FALSE(doomed.ok());  // connection closed before HELLO_OK
  gov::FailPoints::Global().Clear();
  auto fine = Dial();
  ASSERT_NE(fine, nullptr);
  EXPECT_TRUE(fine->Query("SELECT Winner FROM BEATS WHERE Winner > 1").ok());
  EXPECT_GE(server_->GetStats().accept_errors, 1u);
  EXPECT_EQ(server_->active_connections(), 1u);  // no leaked session
}

TEST_F(NetServerTest, ReadFailPointKillsConnectionMidMessage) {
  StartServer();
  auto victim = Dial();
  ASSERT_NE(victim, nullptr);
  gov::FailPoints::Global().Configure("net.read=error");
  auto id = victim->SendQuery("SELECT Winner FROM BEATS WHERE Winner > 1");
  ASSERT_TRUE(id.ok());  // bytes sent; the server's read explodes
  auto resp = victim->ReadResponse();
  EXPECT_FALSE(resp.ok());  // connection died
  gov::FailPoints::Global().Clear();
  // No wedge, no leak: sessions drain and new clients serve fine.
  for (int i = 0; i < 100; ++i) {
    if (server_->active_connections() == 0 &&
        server_->pending_queries() == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->active_connections(), 0u);
  EXPECT_EQ(server_->pending_queries(), 0u);
  EXPECT_GE(server_->GetStats().read_errors, 1u);
  auto fresh = Dial();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Query("SELECT Winner FROM BEATS WHERE Winner > 1").ok());
}

TEST_F(NetServerTest, WriteFailPointKillsConnectionOnResponse) {
  StartServer();
  auto victim = Dial();
  ASSERT_NE(victim, nullptr);
  gov::FailPoints::Global().Configure("net.write=error@1");
  auto r = victim->Query("SELECT Winner FROM BEATS WHERE Winner > 1");
  EXPECT_FALSE(r.ok());  // RESULT write was injected to fail; conn closed
  gov::FailPoints::Global().Clear();
  for (int i = 0; i < 100; ++i) {
    if (server_->active_connections() == 0 &&
        server_->pending_queries() == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->active_connections(), 0u);
  EXPECT_EQ(server_->pending_queries(), 0u);
  EXPECT_GE(server_->GetStats().write_errors, 1u);
  auto fresh = Dial();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Query("SELECT Winner FROM BEATS WHERE Winner > 1").ok());
}

// Graceful shutdown with drain: in-flight queries still get their RESULT
// frames; afterwards the port stops accepting.
TEST_F(NetServerTest, GracefulShutdownDrainsInFlight) {
  srv::ServiceOptions service_options;
  service_options.test_delay_marker = "BEATS";
  service_options.test_delay_ns = 120'000'000ULL;
  StartServer(service_options);
  auto client = Dial();
  ASSERT_NE(client, nullptr);
  auto id = client->SendQuery("SELECT Winner FROM BEATS WHERE Winner > 2");
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  std::thread shutdown([&] { server_->Shutdown(/*drain=*/true); });
  auto resp = client->ReadResponse();
  shutdown.join();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->result.ok) << resp->result.error;
  EXPECT_EQ(server_->pending_queries(), 0u);

  Client::Options copts;
  copts.port = server_->port();
  EXPECT_FALSE(Client::Connect(copts).ok());
}

// A client that connects, floods requests, and never reads a single reply:
// the write deadline must fail the stalled send and close that one
// connection instead of wedging the poller (STATS replies are written
// inline from the poller thread) — and Shutdown in TearDown must still
// complete.
TEST_F(NetServerTest, SlowReaderHitsWriteTimeoutWithoutWedgingPoller) {
  ServerOptions options;
  options.write_timeout_ms = 200;
  StartServer({}, options);

  // Raw socket with a tiny receive buffer so the reply path fills the
  // kernel buffers after a handful of STATS_RESULT frames.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Hello hello;
  hello.client_name = "flood";
  std::string frame;
  AppendFrame(MsgType::kHello, 1, EncodeHello(hello), &frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  char buf[256];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);  // HELLO_OK (unparsed)

  // Flood STATS requests and never read a reply. The server answers each
  // inline from the poller until the buffers fill; then the deadline
  // fires and the connection is torn down.
  std::string one;
  AppendFrame(MsgType::kStats, 2, "", &one);
  std::string burst;
  for (int i = 0; i < 100; ++i) burst += one;
  for (int i = 0; i < 20; ++i) {
    if (::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL) < 0) break;
  }

  for (int i = 0; i < 400 && server_->active_connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->active_connections(), 0u);
  EXPECT_GE(server_->GetStats().write_errors, 1u);
  ::close(fd);
  // The poller survived: a fresh client connects and serves.
  auto fresh = Dial();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Query("SELECT Winner FROM BEATS WHERE Winner > 1").ok());
}

// Shutdown(drain=true) against a client that keeps pipelining QUERYs: the
// drain must terminate (new QUERYs are refused with a failed RESULT), so
// this test completing at all is the assertion — a regression hangs it.
TEST_F(NetServerTest, DrainTerminatesAgainstPipeliningClient) {
  srv::ServiceOptions service_options;
  service_options.test_delay_marker = "BEATS";
  service_options.test_delay_ns = 60'000'000ULL;
  StartServer(service_options);
  auto client = Dial();
  ASSERT_NE(client, nullptr);

  std::atomic<bool> stop{false};
  std::thread pipeliner([&] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      if (!client->SendQuery("SELECT Winner FROM BEATS WHERE Winner > 3")
               .ok()) {
        break;  // connection closed by the completed shutdown
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Shutdown(/*drain=*/true);
  stop.store(true);
  pipeliner.join();
  EXPECT_EQ(server_->pending_queries(), 0u);
  // The drain window saw at least one QUERY turned away.
  EXPECT_GE(server_->GetStats().drain_rejected, 1u);
}

// Tenant ids key per-tenant server state, so an oversize one is refused
// at the handshake.
TEST_F(NetServerTest, OversizeTenantIdRejectedAtHello) {
  StartServer();
  Client::Options copts;
  copts.port = server_->port();
  copts.tenant = std::string(kMaxTenantIdBytes + 1, 't');
  EXPECT_FALSE(Client::Connect(copts).ok());
  EXPECT_GE(server_->GetStats().protocol_errors, 1u);
  // A tenant id at the cap is fine.
  auto ok = Dial(std::string(kMaxTenantIdBytes, 't'));
  EXPECT_NE(ok, nullptr);
}

TEST_F(NetServerTest, TenantRidesHelloIntoAdmission) {
  StartServer();
  auto client = Dial("analytics");
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Query("SELECT Winner FROM BEATS WHERE Winner > 7").ok());
  srv::ServiceStats stats = service_->GetStats();
  EXPECT_EQ(stats.tenant_admitted["analytics"], 1u);
}

}  // namespace
}  // namespace eds::net
