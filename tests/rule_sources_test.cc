// Meta-test: every shipped rule-library source compiles standalone against
// the full builtin registry, and every rule validates. Guards against
// regressions when editing the DSL strings.
#include "gtest/gtest.h"
#include "magic/magic.h"
#include "rewrite/engine.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "ruledsl/compiler.h"
#include "ruledsl/parser.h"

namespace eds::rules {
namespace {

rewrite::BuiltinRegistry& FullRegistry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

struct NamedSource {
  const char* name;
  const char* source;
};

class RuleSourcesTest : public ::testing::TestWithParam<NamedSource> {};

TEST_P(RuleSourcesTest, ParsesAndValidates) {
  auto unit = ruledsl::ParseRuleSource(GetParam().source);
  ASSERT_TRUE(unit.ok()) << GetParam().name << ": " << unit.status();
  EXPECT_FALSE(unit->rules.empty()) << GetParam().name;
  for (const rewrite::Rule& rule : unit->rules) {
    EXPECT_TRUE(rewrite::ValidateRule(rule, FullRegistry()).ok())
        << GetParam().name << " / " << rule.ToString();
  }
}

TEST_P(RuleSourcesTest, CompilesToAProgram) {
  auto program =
      ruledsl::CompileRuleSource(GetParam().source, FullRegistry());
  ASSERT_TRUE(program.ok()) << GetParam().name << ": " << program.status();
  EXPECT_FALSE(program->blocks.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shipped, RuleSourcesTest,
    ::testing::Values(NamedSource{"merging", MergingRuleSource()},
                      NamedSource{"permutation", PermutationRuleSource()},
                      NamedSource{"fixpoint", FixpointRuleSource()},
                      NamedSource{"simplify", SimplifyRuleSource()},
                      NamedSource{"implicit", ImplicitKnowledgeRuleSource()},
                      NamedSource{"semantic_methods",
                                  SemanticMethodRuleSource()},
                      NamedSource{"extensions", ExtensionRuleSource()}),
    [](const ::testing::TestParamInfo<NamedSource>& info) {
      return info.param.name;
    });

TEST(RuleSourcesTest, AllSourcesTogetherHaveUniqueNames) {
  std::string all = std::string(MergingRuleSource()) +
                    PermutationRuleSource() + FixpointRuleSource() +
                    SimplifyRuleSource() + ImplicitKnowledgeRuleSource() +
                    SemanticMethodRuleSource() + ExtensionRuleSource();
  auto program = ruledsl::CompileRuleSource(all, FullRegistry());
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->blocks.size(), 1u);
  EXPECT_GE(program->blocks[0].rules.size(), 45u);
}

}  // namespace
}  // namespace eds::rules
