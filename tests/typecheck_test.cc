// Insert-time type checking (§6.1: inserted data must satisfy the declared
// axioms — including enumeration domains and object subtyping).
#include "exec/typecheck.h"

#include "gtest/gtest.h"
#include "testutil.h"

namespace eds::exec {
namespace {

using types::Type;
using types::TypeKind;
using types::TypeRef;
using value::Value;

class TypecheckTest : public ::testing::Test {
 protected:
  Status Check(const Value& v, const TypeRef& t) {
    return CheckValueAgainstType(v, t, &db_.session.db().heap(),
                                 &db_.session.catalog().types());
  }
  TypeRef Find(const char* name) {
    auto t = db_.session.catalog().types().Find(name);
    EXPECT_TRUE(t.ok()) << name;
    return t.ok() ? *t : nullptr;
  }
  testutil::FilmDb db_;
};

TEST_F(TypecheckTest, Scalars) {
  EDS_ASSERT_OK(Check(Value::Int(1), Find("INT")));
  EDS_ASSERT_OK(Check(Value::Int(1), Find("NUMERIC")));
  EDS_ASSERT_OK(Check(Value::Real(1.5), Find("REAL")));
  EDS_ASSERT_OK(Check(Value::Int(1), Find("REAL")));  // widening
  EDS_ASSERT_OK(Check(Value::String("x"), Find("CHAR")));
  EXPECT_FALSE(Check(Value::Real(1.5), Find("INT")).ok());
  EXPECT_FALSE(Check(Value::String("x"), Find("NUMERIC")).ok());
  EXPECT_FALSE(Check(Value::Int(0), Find("BOOLEAN")).ok());
}

TEST_F(TypecheckTest, NullAcceptedEverywhere) {
  EDS_ASSERT_OK(Check(Value::Null(), Find("INT")));
  EDS_ASSERT_OK(Check(Value::Null(), Find("Actor")));
  EDS_ASSERT_OK(Check(Value::Null(), Find("SetCategory")));
}

TEST_F(TypecheckTest, EnumerationDomain) {
  TypeRef category = Find("Category");
  EDS_ASSERT_OK(Check(Value::String("Comedy"), category));
  Status bad = Check(Value::String("Cartoon"), category);
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
  EXPECT_NE(bad.message().find("enumeration domain"), std::string::npos);
}

TEST_F(TypecheckTest, CollectionsCheckKindAndElements) {
  TypeRef set_category = Find("SetCategory");
  EDS_ASSERT_OK(Check(Value::Set({Value::String("Western")}), set_category));
  // Wrong collection kind.
  EXPECT_FALSE(Check(Value::List({Value::String("Western")}), set_category)
                   .ok());
  // Element outside the enum domain.
  EXPECT_FALSE(Check(Value::Set({Value::String("Cartoon")}), set_category)
                   .ok());
  // COLLECTION root accepts any kind.
  TypeRef collection =
      Type::MakeCollection(TypeKind::kCollection, nullptr);
  EDS_ASSERT_OK(Check(Value::Bag({Value::Int(1)}), collection));
  EXPECT_FALSE(Check(Value::Int(1), collection).ok());
}

TEST_F(TypecheckTest, TuplesByNameAndPosition) {
  TypeRef point = Find("Point");
  EDS_ASSERT_OK(Check(
      Value::NamedTuple({"ABS", "ORD"}, {Value::Real(1), Value::Real(2)}),
      point));
  EDS_ASSERT_OK(
      Check(Value::Tuple({Value::Real(1), Value::Real(2)}), point));
  EXPECT_FALSE(Check(Value::Tuple({Value::Real(1)}), point).ok());  // arity
  EXPECT_FALSE(
      Check(Value::NamedTuple({"ABS", "NOPE"},
                              {Value::Real(1), Value::Real(2)}),
            point)
          .ok());
  EXPECT_FALSE(
      Check(Value::Tuple({Value::String("x"), Value::Real(2)}), point).ok());
}

TEST_F(TypecheckTest, ObjectSubtypingThroughHeap) {
  // db_.quinn is an Actor; Actor SUBTYPE OF Person.
  EDS_ASSERT_OK(Check(db_.quinn, Find("Actor")));
  EDS_ASSERT_OK(Check(db_.quinn, Find("Person")));
  // A bare Person is not an Actor.
  auto person = db_.session.NewObject(
      "Person", {{"Name", Value::String("Somebody")}});
  ASSERT_TRUE(person.ok());
  EXPECT_FALSE(Check(*person, Find("Actor")).ok());
  // Dangling reference.
  EXPECT_FALSE(Check(Value::ObjectRef(9999), Find("Actor")).ok());
  // Non-reference value against an object type.
  EXPECT_FALSE(Check(Value::Int(1), Find("Actor")).ok());
}

TEST_F(TypecheckTest, InsertRowEnforcesSchema) {
  // Enum domain violation through the public API.
  Status bad = db_.session.InsertRow(
      "FILM", {Value::Int(9), Value::String("X"),
               Value::Set({Value::String("Cartoon")})});
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
  EXPECT_NE(bad.message().find("Categories"), std::string::npos);
  // Object column takes only Actors (or subtypes).
  Status bad2 = db_.session.InsertRow(
      "APPEARS_IN", {Value::Int(1), Value::Int(42)});
  EXPECT_EQ(bad2.code(), StatusCode::kTypeError);
}

TEST_F(TypecheckTest, EsqlInsertEnforcesSchema) {
  Status bad = db_.session.ExecuteScript(
      "INSERT INTO FILM VALUES (9, 'X', MakeSet('Cartoon'));");
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
  EDS_ASSERT_OK(db_.session.ExecuteScript(
      "INSERT INTO FILM VALUES (9, 'X', MakeSet('Western'));"));
}

TEST_F(TypecheckTest, RowArityMismatch) {
  Status bad = db_.session.InsertRow("BEATS", {Value::Int(1)});
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace eds::exec
