// Extension rule library: pushdown through set operations and disjunction
// splitting — the "rules added over time" story of §7.
#include "rules/extensions.h"

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "rewrite/engine.h"
#include "rules/merging.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rules {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class ExtensionRulesTest : public ::testing::Test {
 protected:
  ExtensionRulesTest() {
    registry_.InstallStandard();
    std::string source = std::string(ExtensionRuleSource()) +
                         MergingRuleSource() +
                         "block(ext, {push_search_difference, "
                         "push_search_intersect, or_to_union, "
                         "intersect_self, difference_self, union_collapse, "
                         "union_merge, search_merge}, inf) ;\n"
                         "seq({ext}, 1) ;";
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    engine_ = std::make_unique<rewrite::Engine>(
        &db_.session.catalog(), &registry_, std::move(*prog));
  }

  TermRef Rewrite(const char* query) {
    auto out = engine_->Rewrite(P(query));
    EXPECT_TRUE(out.ok()) << out.status();
    return out.ok() ? out->term : nullptr;
  }

  void ExpectEquivalent(const char* query) {
    TermRef raw = P(query);
    TermRef rewritten = Rewrite(query);
    auto raw_rows = db_.session.Run(raw);
    auto new_rows = db_.session.Run(rewritten);
    ASSERT_TRUE(raw_rows.ok()) << raw_rows.status();
    ASSERT_TRUE(new_rows.ok()) << new_rows.status();
    testutil::ExpectSameRows(*raw_rows, *new_rows);
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(ExtensionRulesTest, PushThroughDifferenceBothSides) {
  TermRef out = Rewrite(
      "SEARCH(LIST(DIFFERENCE(RELATION('BEATS'), RELATION('DOMINATE'))), "
      "($1.1 = 3), LIST($1.1, $1.2))");
  ASSERT_NE(out, nullptr);
  // Both DIFFERENCE sides gained the filter; the merging rules then merge
  // the branch searches into the base relations.
  std::string text = out->ToString();
  EXPECT_NE(text.find("DIFFERENCE"), std::string::npos) << text;
  // The residual outer qualification is TRUE.
  auto qual = lera::SearchQual(out);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("TRUE"))) << text;
}

TEST_F(ExtensionRulesTest, DifferenceEquivalence) {
  // BEATS \ (BEATS where Winner > 5), filtered.
  ExpectEquivalent(
      "SEARCH(LIST(DIFFERENCE(RELATION('BEATS'), "
      "SEARCH(LIST(RELATION('BEATS')), ($1.1 > 5), LIST($1.1, $1.2)))), "
      "($1.2 < 5), LIST($1.1))");
}

TEST_F(ExtensionRulesTest, PushThroughIntersectLeftSide) {
  TermRef out = Rewrite(
      "SEARCH(LIST(INTERSECT(RELATION('BEATS'), RELATION('BEATS'))), "
      "($1.1 = 3), LIST($1.1, $1.2))");
  ASSERT_NE(out, nullptr);
  auto qual = lera::SearchQual(out);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("TRUE"))) << out->ToString();
}

TEST_F(ExtensionRulesTest, IntersectEquivalence) {
  ExpectEquivalent(
      "SEARCH(LIST(INTERSECT(RELATION('BEATS'), RELATION('BEATS'))), "
      "($1.1 > 4), LIST($1.2))");
}

TEST_F(ExtensionRulesTest, OrSplitsIntoUnion) {
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('BEATS')), (($1.1 = 1) OR ($1.2 = 9)), "
      "LIST($1.1, $1.2))");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(lera::IsUnion(out)) << out->ToString();
  auto inputs = lera::UnionInputs(out);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 2u);
}

TEST_F(ExtensionRulesTest, OrSplitEquivalenceUnderSetSemantics) {
  ExpectEquivalent(
      "SEARCH(LIST(RELATION('BEATS')), (($1.1 < 3) OR ($1.1 > 7)), "
      "LIST($1.1, $1.2))");
  // Overlapping disjuncts: set semantics absorb the duplicates.
  ExpectEquivalent(
      "SEARCH(LIST(RELATION('BEATS')), (($1.1 < 5) OR ($1.1 < 8)), "
      "LIST($1.1, $1.2))");
}

TEST_F(ExtensionRulesTest, NestedOrsSplitRecursively) {
  TermRef out = Rewrite(
      "SEARCH(LIST(RELATION('BEATS')), ((($1.1 = 1) OR ($1.1 = 2)) OR "
      "($1.1 = 3)), LIST($1.1))");
  ASSERT_NE(out, nullptr);
  // Fully split: a union whose branches have no OR in their quals. The
  // union_merge rule flattens the nesting.
  EXPECT_TRUE(lera::IsUnion(out)) << out->ToString();
  auto inputs = lera::UnionInputs(out);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 3u) << out->ToString();
}

TEST_F(ExtensionRulesTest, SelfIdentities) {
  EXPECT_TRUE(term::Equals(
      Rewrite("INTERSECT(RELATION('BEATS'), RELATION('BEATS'))"),
      P("RELATION('BEATS')")));
  TermRef out = Rewrite(
      "DIFFERENCE(RELATION('BEATS'), RELATION('BEATS'))");
  ASSERT_NE(out, nullptr);
  auto qual = lera::SearchQual(out);
  ASSERT_TRUE(qual.ok());
  EXPECT_TRUE(term::Equals(*qual, P("FALSE")));
  auto rows = db_.session.Run(out);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExtensionRulesTest, DifferencePushReducesWork) {
  const char* query =
      "SEARCH(LIST(DIFFERENCE(RELATION('BEATS'), RELATION('DOMINATE'))), "
      "($1.1 = 3), LIST($1.1, $1.2))";
  TermRef raw = P(query);
  TermRef pushed = Rewrite(query);
  exec::ExecStats raw_stats, pushed_stats;
  ASSERT_TRUE(db_.session.Run(raw, {}, &raw_stats).ok());
  ASSERT_TRUE(db_.session.Run(pushed, {}, &pushed_stats).ok());
  // Pushed plan filters before the set difference's dedup/compare work.
  EXPECT_LE(pushed_stats.rows_output, raw_stats.rows_output);
}

TEST_F(ExtensionRulesTest, MixedTreeEndToEnd) {
  ExpectEquivalent(
      "SEARCH(LIST(DIFFERENCE(UNION(SET(RELATION('BEATS'), "
      "RELATION('DOMINATE'))), RELATION('DOMINATE'))), "
      "(($1.1 = 2) OR ($1.2 = 3)), LIST($1.1, $1.2))");
}

}  // namespace
}  // namespace eds::rules
