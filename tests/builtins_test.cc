#include "rewrite/builtins.h"

#include "catalog/catalog.h"
#include "gtest/gtest.h"
#include "term/parser.h"

namespace eds::rewrite {
namespace {

using term::Bindings;
using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class BuiltinsTest : public ::testing::Test {
 protected:
  BuiltinsTest() {
    registry_.InstallStandard();
    ctx_.catalog = &catalog_;
    // A two-column table for SCHEMA / SPLIT_QUAL.
    catalog::TableDef t;
    t.name = "T";
    t.columns = {{"A", catalog_.types().int_type()},
                 {"B", catalog_.types().char_type()}};
    EXPECT_TRUE(catalog_.CreateTable(std::move(t)).ok());
    catalog::TableDef u;
    u.name = "U";
    u.columns = {{"C", catalog_.types().int_type()},
                 {"D", catalog_.types().int_type()},
                 {"E", catalog_.types().char_type()}};
    EXPECT_TRUE(catalog_.CreateTable(std::move(u)).ok());
  }

  Result<bool> Eval(const char* constraint, const Bindings& env) {
    return EvalConstraint(P(constraint), env, ctx_);
  }

  catalog::Catalog catalog_;
  BuiltinRegistry registry_;
  RewriteContext ctx_;
};

// ---- constraint evaluation ----

TEST_F(BuiltinsTest, BooleanConnectives) {
  Bindings env;
  EXPECT_TRUE(*Eval("TRUE AND TRUE", env));
  EXPECT_FALSE(*Eval("TRUE AND FALSE", env));
  EXPECT_TRUE(*Eval("FALSE OR TRUE", env));
  EXPECT_TRUE(*Eval("NOT FALSE", env));
}

TEST_F(BuiltinsTest, GroundComparisonsFold) {
  Bindings env;
  EXPECT_TRUE(*Eval("1 < 2", env));
  EXPECT_FALSE(*Eval("'a' = 'b'", env));
  EXPECT_TRUE(*Eval("2 + 3 = 5", env));
}

TEST_F(BuiltinsTest, EqFallsBackToStructuralEquality) {
  Bindings env;
  env.SetVar("f", P("($1.1 = 10)"));
  env.SetVar("g", P("($1.1 = 10)"));
  env.SetVar("h", P("($1.1 = 11)"));
  EXPECT_TRUE(*Eval("f = g", env));
  EXPECT_FALSE(*Eval("f = h", env));
  EXPECT_TRUE(*Eval("f <> h", env));
  // The paper's f = TRUE test against a bound qualification.
  env.SetVar("t", P("TRUE"));
  EXPECT_TRUE(*Eval("t = TRUE", env));
}

TEST_F(BuiltinsTest, MemberOverCollVarBinding) {
  Bindings env;
  env.SetCollVar("x", {P("G(1)"), P("H(2)")});
  env.SetVar("y", P("G(1)"));
  env.SetVar("z", P("G(9)"));
  EXPECT_TRUE(*Eval("MEMBER(y, x*)", env));
  EXPECT_FALSE(*Eval("MEMBER(z, x*)", env));
}

TEST_F(BuiltinsTest, MemberOverLiteralSetTerm) {
  Bindings env;
  env.SetVar("x", P("'Cartoon'"));
  EXPECT_FALSE(*Eval("MEMBER(x, SET('Comedy', 'Western'))", env));
  env.SetVar("x2", P("'Comedy'"));
  EXPECT_TRUE(*Eval("MEMBER(x2, SET('Comedy', 'Western'))", env));
}

TEST_F(BuiltinsTest, IsaConstantMeansFoldable) {
  Bindings env;
  env.SetVar("c", P("5"));
  env.SetVar("e", P("2 + 3"));       // foldable expression
  env.SetVar("a", P("$1.1"));        // attribute: not constant
  EXPECT_TRUE(*Eval("ISA(c, CONSTANT)", env));
  EXPECT_TRUE(*Eval("ISA(e, CONSTANT)", env));
  EXPECT_FALSE(*Eval("ISA(a, CONSTANT)", env));
}

TEST_F(BuiltinsTest, IsaCollectionKinds) {
  Bindings env;
  env.SetVar("s", P("SET(1, 2)"));
  env.SetVar("l", P("LIST(1)"));
  EXPECT_TRUE(*Eval("ISA(s, SET)", env));
  EXPECT_TRUE(*Eval("ISA(s, COLLECTION)", env));
  EXPECT_FALSE(*Eval("ISA(s, LIST)", env));
  EXPECT_TRUE(*Eval("ISA(l, LIST)", env));
}

TEST_F(BuiltinsTest, IsaNamedTypeViaOracle) {
  // Scope-aware oracle: pretend the subject has the named type.
  auto point = catalog_.types().RegisterTuple(
      "Point", {{"ABS", catalog_.types().real_type()},
                {"ORD", catalog_.types().real_type()}});
  ASSERT_TRUE(point.ok());
  ctx_.type_of = [&](const TermRef& t) -> Result<types::TypeRef> {
    if (t->is_apply() && t->functor() == "P") return *point;
    return catalog_.types().int_type();
  };
  Bindings env;
  env.SetVar("x", P("P()"));
  env.SetVar("y", P("Q()"));
  EXPECT_TRUE(*Eval("ISA(x, Point)", env));
  EXPECT_FALSE(*Eval("ISA(y, Point)", env));
  EXPECT_TRUE(*Eval("ISA(y, NUMERIC)", env));  // INT isa NUMERIC
}

TEST_F(BuiltinsTest, IsaUnknownTypeIsError) {
  Bindings env;
  env.SetVar("x", P("1"));
  EXPECT_FALSE(Eval("ISA(x, NoSuchType)", env).ok());
}

TEST_F(BuiltinsTest, RefersOnlyAndNoref) {
  Bindings env;
  env.SetVar("q", P("($2.1 = 5) AND ($2.2 = $1.1)"));
  EXPECT_TRUE(*Eval("REFERS_ONLY(q, 2, LIST(1, 2))", env));
  EXPECT_FALSE(*Eval("REFERS_ONLY(q, 2, LIST(1))", env));
  EXPECT_FALSE(*Eval("NOREF(q, 1)", env));
  EXPECT_TRUE(*Eval("NOREF(q, 3)", env));
}

TEST_F(BuiltinsTest, HasConjunct) {
  Bindings env;
  env.SetVar("f", P("(a AND (x = y)) AND b"));
  env.SetVar("c", P("x = y"));
  env.SetVar("d", P("x = z"));
  EXPECT_TRUE(*Eval("HAS_CONJUNCT(f, c)", env));
  EXPECT_FALSE(*Eval("HAS_CONJUNCT(f, d)", env));
}

TEST_F(BuiltinsTest, UnevaluableConstraintIsError) {
  Bindings env;
  env.SetVar("x", P("$1.1"));
  EXPECT_FALSE(Eval("SOMEFN(x)", env).ok());
}

// ---- TryEvalToValue / ValueToTerm ----

TEST_F(BuiltinsTest, TryEvalFoldsLiteralsAndFunctions) {
  auto v = TryEvalToValue(P("MEMBER('a', SET('a', 'b'))"), ctx_);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, value::Value::Bool(true));
  EXPECT_FALSE(TryEvalToValue(P("$1.1 + 1"), ctx_).has_value());
  auto tup = TryEvalToValue(P("TUPLE(1, 'a')"), ctx_);
  ASSERT_TRUE(tup.has_value());
  EXPECT_EQ(tup->kind(), value::ValueKind::kTuple);
}

TEST_F(BuiltinsTest, ValueToTermRoundTrip) {
  value::Value v = value::Value::Set({value::Value::Int(1)});
  TermRef t = ValueToTerm(v);
  ASSERT_TRUE(t->is_constant());
  EXPECT_EQ(t->constant(), v);
}

// ---- methods ----

TEST_F(BuiltinsTest, MethodEvaluateFoldsAndBinds) {
  Bindings env;
  env.SetVar("x", P("2"));
  env.SetVar("y", P("3"));
  ASSERT_TRUE(registry_
                  .InvokeMethod("EVALUATE", {P("x + y"), P("out")}, &env,
                                ctx_)
                  .ok());
  EXPECT_TRUE(term::Equals(*env.LookupVar("out"), P("5")));
}

TEST_F(BuiltinsTest, MethodEvaluateFailsOnNonFoldable) {
  Bindings env;
  env.SetVar("x", P("$1.1"));
  EXPECT_FALSE(registry_
                   .InvokeMethod("EVALUATE", {P("x + 1"), P("out")}, &env,
                                 ctx_)
                   .ok());
}

TEST_F(BuiltinsTest, MethodSchemaSingleInput) {
  Bindings env;
  env.SetVar("z", P("RELATION('T')"));
  ASSERT_TRUE(
      registry_.InvokeMethod("SCHEMA", {P("z"), P("p")}, &env, ctx_).ok());
  EXPECT_TRUE(term::Equals(*env.LookupVar("p"), P("LIST($1.1, $1.2)")));
}

TEST_F(BuiltinsTest, MethodSchemaInputList) {
  Bindings env;
  env.SetVar("a", P("RELATION('T')"));
  env.SetVar("b", P("RELATION('U')"));
  ASSERT_TRUE(registry_
                  .InvokeMethod("SCHEMA", {P("LIST(a, b)"), P("p")}, &env,
                                ctx_)
                  .ok());
  EXPECT_TRUE(term::Equals(
      *env.LookupVar("p"), P("LIST($1.1, $1.2, $2.1, $2.2, $2.3)")));
}

TEST_F(BuiltinsTest, MethodPosition) {
  Bindings env;
  env.SetCollVar("x", {P("a"), P("b"), P("c")});
  ASSERT_TRUE(
      registry_.InvokeMethod("POSITION", {P("x*"), P("pos")}, &env, ctx_)
          .ok());
  EXPECT_TRUE(term::Equals(*env.LookupVar("pos"), P("4")));
}

TEST_F(BuiltinsTest, MethodMergeSubstRemapsAttrs) {
  // Outer inputs: LIST(x*, inner, v*) with |x*|=1, |v*|=1; inner has
  // |z|=2 inputs and projections b = [$1.2, $2.1].
  Bindings env;
  env.SetCollVar("x", {P("RELATION('T')")});
  env.SetCollVar("v", {P("RELATION('U')")});
  env.SetVar("z", P("LIST(RELATION('A'), RELATION('B'))"));
  env.SetVar("b", P("LIST($1.2, $2.1)"));
  env.SetVar("f", P("($1.1 = $2.2) AND ($3.1 = 7)"));
  ASSERT_TRUE(registry_
                  .InvokeMethod("MERGE_SUBST",
                                {P("f"), P("x*"), P("v*"), P("z"), P("b"),
                                 P("out")},
                                &env, ctx_)
                  .ok());
  // $1.1 (in x*) unchanged; $2.2 (inner col 2) -> b[2]=$2.1 shifted by
  // |x*|+|v*|=2 -> $4.1; $3.1 (in v*) shifts left -> $2.1.
  EXPECT_TRUE(term::Equals(*env.LookupVar("out"),
                           P("($1.1 = $4.1) AND ($2.1 = 7)")));
}

TEST_F(BuiltinsTest, MethodMergeSubstRejectsBadProjectionIndex) {
  Bindings env;
  env.SetCollVar("x", {});
  env.SetCollVar("v", {});
  env.SetVar("z", P("LIST(RELATION('A'))"));
  env.SetVar("b", P("LIST($1.1)"));
  env.SetVar("f", P("$1.5 = 1"));  // inner has only 1 projection
  EXPECT_FALSE(registry_
                   .InvokeMethod("MERGE_SUBST",
                                 {P("f"), P("x*"), P("v*"), P("z"), P("b"),
                                  P("out")},
                                 &env, ctx_)
                   .ok());
}

TEST_F(BuiltinsTest, MethodSplitQual) {
  // NEST(U, [2], 'S'): output columns are U.C, U.E, then the set. A
  // conjunct on output col 1 (U.C) is pushable; one on col 3 (the set) or
  // on another input is not.
  Bindings env;
  env.SetVar("f", P("($1.1 = 5) AND (MEMBER(1, $1.3) AND ($2.1 = $1.2))"));
  env.SetVar("z", P("RELATION('U')"));
  ASSERT_TRUE(registry_
                  .InvokeMethod("SPLIT_QUAL",
                                {P("f"), P("1"), P("z"), P("LIST(2)"),
                                 P("fi"), P("fj")},
                                &env, ctx_)
                  .ok());
  // Pushed conjunct renumbered to U's own columns: output col 1 -> input
  // col 1 (C).
  EXPECT_TRUE(term::Equals(*env.LookupVar("fi"), P("$1.1 = 5")));
  EXPECT_TRUE(term::Equals(*env.LookupVar("fj"),
                           P("MEMBER(1, $1.3) AND ($2.1 = $1.2)")));
}

TEST_F(BuiltinsTest, MethodSplitQualRenumbersThroughGaps) {
  // Nested col 1: output col 1 = input col 2, output col 2 = input col 3.
  Bindings env;
  env.SetVar("f", P("$1.2 = 'x'"));
  env.SetVar("z", P("RELATION('U')"));
  ASSERT_TRUE(registry_
                  .InvokeMethod("SPLIT_QUAL",
                                {P("f"), P("1"), P("z"), P("LIST(1)"),
                                 P("fi"), P("fj")},
                                &env, ctx_)
                  .ok());
  EXPECT_TRUE(term::Equals(*env.LookupVar("fi"), P("$1.3 = 'x'")));
  EXPECT_TRUE(term::Equals(*env.LookupVar("fj"), P("TRUE")));
}

TEST_F(BuiltinsTest, MethodSplitQualFailsWhenNothingPushable) {
  Bindings env;
  env.SetVar("f", P("$2.1 = 5"));
  env.SetVar("z", P("RELATION('U')"));
  EXPECT_FALSE(registry_
                   .InvokeMethod("SPLIT_QUAL",
                                 {P("f"), P("1"), P("z"), P("LIST(2)"),
                                  P("fi"), P("fj")},
                                 &env, ctx_)
                   .ok());
}

// ---- term functions ----

TEST_F(BuiltinsTest, TermFunctionsSplice) {
  Bindings env;  // unused
  auto out = EvalTermFunctions(
      P("SEARCH(APPEND(LIST(a, b), c, LIST(d)), f, SET_UNION(SET(x), SET(y, "
        "z)))"),
      registry_, ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(term::Equals(
      *out, P("SEARCH(LIST(a, b, c, d), f, SET(x, y, z))")));
}

TEST_F(BuiltinsTest, UnknownMethodIsNotFound) {
  Bindings env;
  EXPECT_EQ(registry_.InvokeMethod("NO_SUCH", {}, &env, ctx_).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(registry_.HasMethod("NO_SUCH"));
  EXPECT_TRUE(registry_.HasMethod("evaluate"));  // case-insensitive
  EXPECT_TRUE(registry_.HasTermFunction("append"));
}

TEST_F(BuiltinsTest, RegistryRejectsDuplicates) {
  EXPECT_EQ(registry_.RegisterMethod("EVALUATE", nullptr).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry_.RegisterTermFunction("APPEND", nullptr).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace eds::rewrite
