// Fig. 9 — fixpoint reduction: adornments and the Alexander/Magic method.
#include "magic/magic.h"

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "magic/adornment.h"
#include "rewrite/engine.h"
#include "rules/fixpoint.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::magic {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

// The bilinear transitive-closure body over BEATS (Fig. 5's BETTER_THAN).
const char* kTcBody =
    "UNION(SET(SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
    "SEARCH(LIST(RELATION('TC'), RELATION('TC')), ($1.2 = $2.1), "
    "LIST($1.1, $2.2))))";

TEST(AdornmentTest, DetectsBoundColumns) {
  Adornment a = ComputeAdornment(
      P("(($1.2 = 10) AND ($2.1 = 'x')) AND ($1.1 = $2.2)"), 1);
  ASSERT_EQ(a.bound.size(), 1u);
  EXPECT_EQ(a.bound[0].column, 2);
  EXPECT_EQ(a.bound[0].constant, value::Value::Int(10));
  EXPECT_EQ(a.Signature(2), "fb");
}

TEST(AdornmentTest, ConstantOnEitherSide) {
  Adornment a = ComputeAdornment(P("7 = $1.1"), 1);
  ASSERT_EQ(a.bound.size(), 1u);
  EXPECT_EQ(a.bound[0].column, 1);
  EXPECT_EQ(a.Signature(2), "bf");
}

TEST(AdornmentTest, IgnoresOtherInputsAndNonEq) {
  Adornment a = ComputeAdornment(P("($2.1 = 5) AND ($1.1 > 3)"), 1);
  EXPECT_FALSE(a.AnyBound());
  EXPECT_EQ(a.Signature(3), "fff");
}

TEST(AdornmentTest, MultipleBoundColumns) {
  Adornment a = ComputeAdornment(P("($1.1 = 1) AND ($1.2 = 2)"), 1);
  EXPECT_EQ(a.bound.size(), 2u);
  EXPECT_EQ(a.Signature(2), "bb");
}

TEST(MagicTest, ReferencesRelation) {
  EXPECT_TRUE(ReferencesRelation(P(kTcBody), "TC"));
  EXPECT_TRUE(ReferencesRelation(P(kTcBody), "tc"));  // case-insensitive
  EXPECT_FALSE(ReferencesRelation(P(kTcBody), "OTHER"));
}

TEST(MagicTest, BilinearTcForward) {
  Adornment a;
  a.bound.push_back(BoundColumn{1, value::Value::Int(3)});
  auto out = AlexanderTransform("TC", P(kTcBody), a);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(term::Equals(
      *out,
      P("FIX(RELATION('TC#M'), UNION(SET("
        "SEARCH(LIST(SEARCH(LIST(RELATION('BEATS')), TRUE, "
        "LIST($1.1, $1.2))), ($1.1 = 3), LIST($1.1, $1.2)), "
        "SEARCH(LIST(RELATION('TC#M'), SEARCH(LIST(RELATION('BEATS')), "
        "TRUE, LIST($1.1, $1.2))), ($1.2 = $2.1), LIST($1.1, $2.2)))))")));
}

TEST(MagicTest, BilinearTcBackward) {
  Adornment a;
  a.bound.push_back(BoundColumn{2, value::Value::Int(10)});
  auto out = AlexanderTransform("TC", P(kTcBody), a);
  ASSERT_TRUE(out.ok()) << out.status();
  // Backward: the base relation extends on the left of the magic set.
  auto body = lera::FixBody(*out);
  ASSERT_TRUE(body.ok());
  auto branches = lera::UnionInputs(*body);
  ASSERT_TRUE(branches.ok());
  bool found_backward_step = false;
  for (const TermRef& b : *branches) {
    if (!lera::IsSearch(b)) continue;
    auto inputs = lera::SearchInputs(b);
    if (inputs.ok() && inputs->size() == 2 &&
        lera::IsRelation((*inputs)[1]) &&
        *lera::RelationName((*inputs)[1]) == "TC#M") {
      found_backward_step = true;
    }
  }
  EXPECT_TRUE(found_backward_step);
}

TEST(MagicTest, RightLinearNeedsColumn1) {
  const char* body =
      "UNION(SET(RELATION('BASE'), "
      "SEARCH(LIST(RELATION('R'), RELATION('EDGE')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2))))";
  Adornment bound1, bound2;
  bound1.bound.push_back(BoundColumn{1, value::Value::Int(1)});
  bound2.bound.push_back(BoundColumn{2, value::Value::Int(1)});
  EXPECT_TRUE(AlexanderTransform("R", P(body), bound1).ok());
  EXPECT_EQ(AlexanderTransform("R", P(body), bound2).status().code(),
            StatusCode::kUnsupported);
}

TEST(MagicTest, LeftLinearNeedsColumn2) {
  const char* body =
      "UNION(SET(RELATION('BASE'), "
      "SEARCH(LIST(RELATION('EDGE'), RELATION('R')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2))))";
  Adornment bound1, bound2;
  bound1.bound.push_back(BoundColumn{1, value::Value::Int(1)});
  bound2.bound.push_back(BoundColumn{2, value::Value::Int(1)});
  EXPECT_EQ(AlexanderTransform("R", P(body), bound1).status().code(),
            StatusCode::kUnsupported);
  EXPECT_TRUE(AlexanderTransform("R", P(body), bound2).ok());
}

TEST(MagicTest, GeneralLinearArbitraryArity) {
  // Arity-3 linear recursion with a label column: R(a, b, label) over
  // labelled edges, extending on the right. Column 1 passes through the
  // recursive occurrence; column 2 comes from the edge input.
  const char* body =
      "UNION(SET(RELATION('LEDGE'), "
      "SEARCH(LIST(RELATION('R'), RELATION('LEDGE')), "
      "(($1.2 = $2.1) AND ($1.3 = $2.3)), LIST($1.1, $2.2, $1.3))))";
  Adornment bound1, bound2, bound3;
  bound1.bound.push_back(BoundColumn{1, value::Value::Int(5)});
  bound2.bound.push_back(BoundColumn{2, value::Value::Int(5)});
  bound3.bound.push_back(BoundColumn{3, value::Value::String("x")});
  // Column 1 passes through (projs[0] = $1.1): focusable.
  auto out1 = AlexanderTransform("R", P(body), bound1);
  ASSERT_TRUE(out1.ok()) << out1.status();
  EXPECT_TRUE(term::Equals(
      *out1,
      P("FIX(RELATION('R#M'), UNION(SET("
        "SEARCH(LIST(RELATION('LEDGE')), ($1.1 = 5), "
        "LIST($1.1, $1.2, $1.3)), "
        "SEARCH(LIST(RELATION('R#M'), RELATION('LEDGE')), "
        "(($1.2 = $2.1) AND ($1.3 = $2.3)), "
        "LIST($1.1, $2.2, $1.3)))))")))
      << (*out1)->ToString();
  // Column 2 comes from the edge input: not focusable.
  EXPECT_EQ(AlexanderTransform("R", P(body), bound2).status().code(),
            StatusCode::kUnsupported);
  // Column 3 passes through ($1.3) but at a different column index (3 vs
  // projs[2] = ATTR(1, 3) — same index, so focusable too).
  EXPECT_TRUE(AlexanderTransform("R", P(body), bound3).ok());
}

TEST(MagicTest, MultipleBoundColumnsSeedTogether) {
  const char* body =
      "UNION(SET(RELATION('LEDGE'), "
      "SEARCH(LIST(RELATION('R'), RELATION('LEDGE')), "
      "(($1.2 = $2.1) AND ($1.3 = $2.3)), LIST($1.1, $2.2, $1.3))))";
  Adornment both;
  both.bound.push_back(BoundColumn{1, value::Value::Int(5)});
  both.bound.push_back(BoundColumn{3, value::Value::String("x")});
  auto out = AlexanderTransform("R", P(body), both);
  ASSERT_TRUE(out.ok()) << out.status();
  // The base seed carries both selections.
  std::string s = (*out)->ToString();
  EXPECT_NE(s.find("($1.1 = 5)"), std::string::npos) << s;
  EXPECT_NE(s.find("($1.3 = 'x')"), std::string::npos) << s;
}

TEST(MagicTest, LinearWithExtraInputs) {
  // R joins two non-recursive inputs per step.
  const char* body =
      "UNION(SET(RELATION('BASE3'), "
      "SEARCH(LIST(RELATION('R'), RELATION('E1'), RELATION('E2')), "
      "(($1.2 = $2.1) AND ($2.2 = $3.1)), LIST($1.1, $3.2))))";
  Adornment bound1;
  bound1.bound.push_back(BoundColumn{1, value::Value::Int(1)});
  auto out = AlexanderTransform("R", P(body), bound1);
  ASSERT_TRUE(out.ok()) << out.status();
  std::string s = (*out)->ToString();
  EXPECT_NE(s.find("RELATION('R#M'), RELATION('E1'), RELATION('E2')"),
            std::string::npos)
      << s;
}

TEST(MagicTest, GeneralLinearExecutesCorrectly) {
  // Labelled-edge reachability end to end: the focused plan agrees with
  // the unfocused one and explores only the bound label + source cone.
  testutil::FilmDb db;
  EXPECT_TRUE(db.session
                  .ExecuteScript(R"(
    CREATE TABLE LEDGE (Src : INT, Dst : INT, Label : CHAR);
    CREATE VIEW LPATH (Src, Dst, Label) AS (
      SELECT Src, Dst, Label FROM LEDGE
      UNION
      SELECT P.Src, E.Dst, P.Label FROM LPATH P, LEDGE E
      WHERE P.Dst = E.Src AND P.Label = E.Label );
  )")
                  .ok());
  using value::Value;
  for (int i = 1; i < 12; ++i) {
    for (const char* label : {"a", "b"}) {
      EXPECT_TRUE(db.session
                      .InsertRow("LEDGE", {Value::Int(i), Value::Int(i + 1),
                                           Value::String(label)})
                      .ok());
    }
  }
  const char* query =
      "SELECT Dst FROM LPATH WHERE Src = 1 AND Label = 'a'";
  exec::QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = db.session.Query(query, no_rewrite);
  auto focused = db.session.Query(query);
  ASSERT_TRUE(raw.ok()) << raw.status();
  ASSERT_TRUE(focused.ok()) << focused.status();
  testutil::ExpectSameRows(raw->rows, focused->rows);
  EXPECT_EQ(raw->rows.size(), 11u);
  EXPECT_EQ(focused->rewrite_stats.applications_by_rule.count(
                "push_search_fixpoint"),
            1u);
  // Unfocused: both labels' full closures (2 * 66 pairs); focused: the
  // 'a'-cone from node 1 only.
  EXPECT_LT(focused->exec_stats.fix_tuples * 5,
            raw->exec_stats.fix_tuples);
}

TEST(MagicTest, UnsupportedShapesRejected) {
  Adornment a;
  a.bound.push_back(BoundColumn{1, value::Value::Int(1)});
  // Not a union.
  EXPECT_FALSE(AlexanderTransform("R", P("RELATION('R')"), a).ok());
  // Three branches.
  EXPECT_FALSE(
      AlexanderTransform(
          "R",
          P("UNION(SET(RELATION('A'), RELATION('B'), RELATION('R')))"), a)
          .ok());
  // Recursive branch is not a chain composition.
  EXPECT_FALSE(
      AlexanderTransform(
          "R",
          P("UNION(SET(RELATION('B'), SEARCH(LIST(RELATION('R'), "
            "RELATION('R')), ($1.1 = $2.1), LIST($1.1, $2.2))))"),
          a)
          .ok());
  // No bound column at all.
  EXPECT_EQ(
      AlexanderTransform("R", P(kTcBody), Adornment{}).status().code(),
      StatusCode::kUnsupported);
}

TEST(MagicTest, AlreadyFocusedFixpointNotRefocused) {
  Adornment a;
  a.bound.push_back(BoundColumn{1, value::Value::Int(1)});
  EXPECT_EQ(AlexanderTransform("TC#M", P(kTcBody), a).status().code(),
            StatusCode::kUnsupported);
}

class FixpointRuleTest : public ::testing::Test {
 protected:
  FixpointRuleTest() {
    registry_.InstallStandard();
    InstallMagicBuiltins(&registry_);
    auto prog = ruledsl::CompileRuleSource(rules::FixpointRuleSource(),
                                           registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    engine_ = std::make_unique<rewrite::Engine>(
        &db_.session.catalog(), &registry_, std::move(*prog));
  }

  testutil::FilmDb db_;
  rewrite::BuiltinRegistry registry_;
  std::unique_ptr<rewrite::Engine> engine_;
};

TEST_F(FixpointRuleTest, Fig9RuleFiresOnBoundSelection) {
  std::string query =
      "SEARCH(LIST(FIX(RELATION('TC'), " + std::string(kTcBody) +
      ")), ($1.2 = 10), LIST($1.1))";
  auto out = engine_->Rewrite(P(query.c_str()));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications_by_rule.count("push_search_fixpoint"),
            1u);
  // The focused fixpoint replaces the original one.
  EXPECT_TRUE(ReferencesRelation(out->term, "TC#M"));
}

TEST_F(FixpointRuleTest, RuleDoesNotFireWithoutSelection) {
  std::string query = "SEARCH(LIST(FIX(RELATION('TC'), " +
                      std::string(kTcBody) + ")), ($1.1 = $1.2), LIST($1.1))";
  auto out = engine_->Rewrite(P(query.c_str()));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.applications, 0u);
}

TEST_F(FixpointRuleTest, RuleDoesNotLoopOnFocusedFixpoint) {
  std::string query = "SEARCH(LIST(FIX(RELATION('TC'), " +
                      std::string(kTcBody) + ")), ($1.2 = 10), LIST($1.1))";
  auto once = engine_->Rewrite(P(query.c_str()));
  ASSERT_TRUE(once.ok());
  auto twice = engine_->Rewrite(once->term);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->stats.applications, 0u);
}

TEST_F(FixpointRuleTest, FocusedPlanEquivalentAndCheaper) {
  std::string query = "SEARCH(LIST(FIX(RELATION('TC'), " +
                      std::string(kTcBody) + ")), ($1.2 = 10), LIST($1.1))";
  TermRef raw = P(query.c_str());
  auto out = engine_->Rewrite(raw);
  ASSERT_TRUE(out.ok());
  exec::ExecStats raw_stats, focused_stats;
  auto raw_rows = db_.session.Run(raw, {}, &raw_stats);
  auto focused_rows = db_.session.Run(out->term, {}, &focused_stats);
  ASSERT_TRUE(raw_rows.ok()) << raw_rows.status();
  ASSERT_TRUE(focused_rows.ok()) << focused_rows.status();
  testutil::ExpectSameRows(*raw_rows, *focused_rows);
  EXPECT_EQ(raw_rows->size(), 9u);  // all of 1..9 reach 10
  // The chain 1..10 has 45 closure tuples; the backward cone of 10 has 9.
  EXPECT_EQ(raw_stats.fix_tuples, 45u);
  EXPECT_EQ(focused_stats.fix_tuples, 9u);
}

}  // namespace
}  // namespace eds::magic
