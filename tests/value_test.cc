#include "value/value.h"

#include "gtest/gtest.h"

namespace eds::value {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Scalars) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("Quinn").AsString(), "Quinn");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::ObjectRef(7).AsObjectRef(), 7u);
}

TEST(ValueTest, IntWidensToReal) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsReal(), 3.0);
}

TEST(ValueTest, SetsCanonicalizeSortedUnique) {
  Value s = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3),
                        Value::Int(2)});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.elements()[0], Value::Int(1));
  EXPECT_EQ(s.elements()[2], Value::Int(3));
}

TEST(ValueTest, BagsKeepDuplicatesSorted) {
  Value b = Value::Bag({Value::Int(3), Value::Int(1), Value::Int(3)});
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.elements()[1], Value::Int(3));
}

TEST(ValueTest, ListsPreserveOrder) {
  Value l = Value::List({Value::Int(3), Value::Int(1)});
  EXPECT_EQ(l.elements()[0], Value::Int(3));
}

TEST(ValueTest, SetEqualityIgnoresConstructionOrder) {
  Value a = Value::Set({Value::String("x"), Value::String("y")});
  Value b = Value::Set({Value::String("y"), Value::String("x")});
  EXPECT_EQ(a, b);
}

TEST(ValueTest, NumericComparisonAcrossKinds) {
  EXPECT_EQ(Value::Int(2), Value::Real(2.0));
  EXPECT_LT(Value::Int(2), Value::Real(2.5));
  EXPECT_LT(Value::Real(1.5), Value::Int(2));
}

TEST(ValueTest, KindRankOrdering) {
  // null < bool < numeric < string < tuple < set.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::String(""));
  EXPECT_LT(Value::String("zzz"), Value::Tuple({}));
  EXPECT_LT(Value::Tuple({}), Value::Set({}));
}

TEST(ValueTest, TupleFieldsByPositionAndName) {
  Value t = Value::NamedTuple({"Name", "Salary"},
                              {Value::String("Quinn"), Value::Int(12000)});
  EXPECT_EQ(t.TupleSize(), 2u);
  EXPECT_EQ(t.Field(0), Value::String("Quinn"));
  const Value* by_name = t.FindField("salary");  // case-insensitive
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(*by_name, Value::Int(12000));
  EXPECT_EQ(t.FindField("Missing"), nullptr);
}

TEST(ValueTest, PositionalTupleHasNoNamedFields) {
  Value t = Value::Tuple({Value::Int(1)});
  EXPECT_EQ(t.FindField("x"), nullptr);
}

TEST(ValueTest, DeepCompareNestedCollections) {
  Value a = Value::List({Value::Set({Value::Int(1), Value::Int(2)})});
  Value b = Value::List({Value::Set({Value::Int(2), Value::Int(1)})});
  Value c = Value::List({Value::Set({Value::Int(1), Value::Int(3)})});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(Value::String("it's").ToString(), "'it's'");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1, 2}");
  EXPECT_EQ(Value::Bag({Value::Int(1), Value::Int(1)}).ToString(),
            "{|1, 1|}");
  EXPECT_EQ(Value::List({Value::Int(1)}).ToString(), "[1]");
  EXPECT_EQ(Value::ObjectRef(3).ToString(), "<oid:3>");
  EXPECT_EQ(Value::NamedTuple({"A"}, {Value::Int(1)}).ToString(), "(A: 1)");
  EXPECT_EQ(Value::Tuple({Value::Int(1), Value::Int(2)}).ToString(),
            "(1, 2)");
}

TEST(ValueTest, CopyIsShallowShared) {
  Value s = Value::Set({Value::Int(1), Value::Int(2)});
  Value copy = s;
  EXPECT_EQ(&s.elements(), &copy.elements());  // shared payload
}

}  // namespace
}  // namespace eds::value
