// Chaos suite: deterministic fault injection (gov::FailPoints) and query
// governor (gov::QueryGuard) behavior. The contract under test: every
// injected failure surfaces as a clean Status — never a crash or a leak —
// and every governor degradation still produces correct results.
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gov/failpoint.h"
#include "gov/governor.h"
#include "gtest/gtest.h"
#include "term/interner.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds {
namespace {

using exec::ExecOptions;
using exec::ExecStats;
using exec::QueryOptions;
using exec::Rows;
using term::TermRef;

TermRef P(const std::string& text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

// Transitive closure over FilmDb's BEATS chain 1->...->10 (45 pairs).
const char* kTcOverBeats =
    "FIX(RELATION('TC'), UNION(SET("
    "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
    "SEARCH(LIST(RELATION('TC'), RELATION('TC')), ($1.2 = $2.1), "
    "LIST($1.1, $2.2)))))";

// A fixpoint with no natural bound (adds Winner+1 each round): runs until
// some valve stops it.
const char* kDivergentFix =
    "FIX(RELATION('G'), UNION(SET("
    "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
    "SEARCH(LIST(RELATION('G')), TRUE, LIST($1.1 + 1, $1.2)))))";

// All failpoint state is process-global; every test starts and ends clean.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { gov::FailPoints::Global().Clear(); }
  void TearDown() override { gov::FailPoints::Global().Clear(); }
};

// ---------------- failpoint registry semantics ----------------

TEST_F(ChaosTest, UnarmedRegistryIsInert) {
  EXPECT_FALSE(gov::FailPoints::AnyArmed());
  EDS_ASSERT_OK(gov::FailPoints::Global().Hit("chaos.nothing"));
}

TEST_F(ChaosTest, EnvSpecArmsOnFirstCheck) {
  // The EDS_FAILPOINTS path: the spec is read and applied on the first
  // armed-check after (re)initialization. Regression test for a
  // self-deadlock this path once had (env application re-locking the
  // registry mutex) — a hang here trips the ctest TIMEOUT.
  ::setenv("EDS_FAILPOINTS", "chaos.env.site=error@2", 1);
  gov::FailPoints::ResetForTesting();
  EXPECT_TRUE(gov::FailPoints::AnyArmed());
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Hit("chaos.env.site"));
  EXPECT_EQ(fp.Hit("chaos.env.site").code(), StatusCode::kRuntimeError);
  ::unsetenv("EDS_FAILPOINTS");
  gov::FailPoints::ResetForTesting();
  EXPECT_FALSE(gov::FailPoints::AnyArmed());
}

TEST_F(ChaosTest, ErrorFiresOnEveryHit) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.a=error"));
  EXPECT_TRUE(gov::FailPoints::AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status s = fp.Hit("chaos.a");
    EXPECT_EQ(s.code(), StatusCode::kRuntimeError);
    EXPECT_NE(s.message().find("chaos.a"), std::string::npos);
  }
  EXPECT_EQ(fp.hits("chaos.a"), 3u);
}

TEST_F(ChaosTest, ErrorAtNFiresOnlyOnTheNthHit) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.b=error@3"));
  EDS_ASSERT_OK(fp.Hit("chaos.b"));
  EDS_ASSERT_OK(fp.Hit("chaos.b"));
  EXPECT_FALSE(fp.Hit("chaos.b").ok());
  EDS_ASSERT_OK(fp.Hit("chaos.b"));
  EXPECT_EQ(fp.hits("chaos.b"), 4u);
}

TEST_F(ChaosTest, OnceIsErrorAtOne) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.c=once"));
  EXPECT_FALSE(fp.Hit("chaos.c").ok());
  EDS_ASSERT_OK(fp.Hit("chaos.c"));
}

TEST_F(ChaosTest, OffDisarmsButKeepsCounting) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.d=error"));
  EXPECT_FALSE(fp.Hit("chaos.d").ok());
  EDS_ASSERT_OK(fp.Configure("chaos.d=off"));
  EDS_ASSERT_OK(fp.Hit("chaos.d"));
  EXPECT_EQ(fp.hits("chaos.d"), 2u);
}

TEST_F(ChaosTest, UnconfiguredSitesCountWhileAnythingIsArmed) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.sentinel=error"));
  EDS_ASSERT_OK(fp.Hit("chaos.bystander"));
  EXPECT_EQ(fp.hits("chaos.bystander"), 1u);
}

TEST_F(ChaosTest, MalformedSpecsRejectAtomically) {
  auto& fp = gov::FailPoints::Global();
  for (const char* bad : {"noequals", "=error", "x=", "x=boom", "x=error@",
                          "x=error@0", "x=error@1x"}) {
    EXPECT_FALSE(fp.Configure(bad).ok()) << bad;
  }
  // Nothing from the rejected specs armed anything.
  EXPECT_FALSE(gov::FailPoints::AnyArmed());
  // A partially-bad multi-pair spec changes nothing either.
  EXPECT_FALSE(fp.Configure("chaos.good=error, chaos.bad=nope").ok());
  EXPECT_FALSE(gov::FailPoints::AnyArmed());
}

TEST_F(ChaosTest, DescribeListsConfiguredSites) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.e=error@2"));
  std::string desc = fp.Describe();
  EXPECT_NE(desc.find("chaos.e"), std::string::npos);
  EXPECT_NE(desc.find("error@2"), std::string::npos);
}

// ---------------- QueryGuard unit behavior ----------------

TEST_F(ChaosTest, UnarmedGuardNeverTrips) {
  gov::QueryGuard guard;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(guard.Check());
  EXPECT_FALSE(guard.AddRows(1u << 30));
  EXPECT_FALSE(guard.tripped());
}

TEST_F(ChaosTest, DeadlineTripsAndIsSticky) {
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.deadline_ms = 1;
  guard.Arm(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is only probed every kStride checks; a couple of strides of
  // calls guarantee a probe after the deadline passed.
  bool tripped = false;
  for (int i = 0; i < 256 && !tripped; ++i) tripped = guard.Check();
  ASSERT_TRUE(tripped);
  EXPECT_EQ(guard.trip().kind, gov::TripKind::kDeadline);
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kResourceExhausted);
  // Sticky: every later check reports the same trip immediately.
  EXPECT_TRUE(guard.Check());
  EXPECT_TRUE(guard.AddRows(0));
  EXPECT_EQ(guard.trip().kind, gov::TripKind::kDeadline);
}

TEST_F(ChaosTest, CancellationIsSeenOnTheNextCheck) {
  gov::CancelToken token;
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.cancel = &token;
  guard.Arm(limits);
  EXPECT_FALSE(guard.Check());
  token.Cancel();
  // Cancellation is checked on every call, not stride-amortized.
  EXPECT_TRUE(guard.Check());
  EXPECT_EQ(guard.trip().kind, gov::TripKind::kCancelled);
}

TEST_F(ChaosTest, RowCeilingTripsOnCumulativeRows) {
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.max_rows = 100;
  guard.Arm(limits);
  EXPECT_FALSE(guard.AddRows(60));
  EXPECT_FALSE(guard.AddRows(40));  // exactly at the ceiling: not over
  EXPECT_TRUE(guard.AddRows(1));
  EXPECT_EQ(guard.trip().kind, gov::TripKind::kRowCeiling);
}

TEST_F(ChaosTest, RearmResetsTripState) {
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.max_rows = 1;
  guard.Arm(limits);
  EXPECT_TRUE(guard.AddRows(2));
  limits.max_rows = 0;
  guard.Arm(limits);
  EXPECT_FALSE(guard.tripped());
  EXPECT_FALSE(guard.AddRows(1000));
}

// ---------------- governor through the executor ----------------

TEST_F(ChaosTest, DeadlineStopsRunawayFixpoint) {
  // kDivergentFix never reaches a fixpoint; without the governor only the
  // (huge) iteration valve would stop it. A 50ms deadline must.
  testutil::FilmDb db;
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.deadline_ms = 50;
  guard.Arm(limits);
  ExecOptions options;
  options.guard = &guard;
  ExecStats stats;
  auto before = gov::CumulativeTripCounters();
  auto rows = db.session.Run(P(kDivergentFix), options, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rows.status().message().find("query governor"),
            std::string::npos);
  // Partial statistics survive the trip.
  EXPECT_GT(stats.fix_iterations, 0u);
  EXPECT_GT(gov::CumulativeTripCounters().deadline_trips,
            before.deadline_trips);
}

TEST_F(ChaosTest, RowCeilingFailsExecutionWithPartialStats) {
  testutil::FilmDb db;
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.max_rows = 20;  // the closure alone has 45 pairs
  guard.Arm(limits);
  ExecOptions options;
  options.guard = &guard;
  ExecStats stats;
  auto before = gov::CumulativeTripCounters();
  auto rows = db.session.Run(P(kTcOverBeats), options, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rows.status().message().find("row_ceiling"), std::string::npos);
  EXPECT_GT(stats.rows_scanned, 0u);
  EXPECT_GT(gov::CumulativeTripCounters().row_ceiling_trips,
            before.row_ceiling_trips);
}

TEST_F(ChaosTest, CancelledExecutionFailsFast) {
  testutil::FilmDb db;
  gov::CancelToken token;
  token.Cancel();
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.cancel = &token;
  guard.Arm(limits);
  ExecOptions options;
  options.guard = &guard;
  auto rows = db.session.Run(P(kTcOverBeats), options);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rows.status().message().find("cancelled"), std::string::npos);
}

// ---------------- governor through the rewriter ----------------

// A recursive labelled-path view plus a bound query: drives the magic
// rules (ADORNMENT/ALEXANDER), search merging (MERGE_SUBST/SCHEMA), and
// constant handling (EVALUATE) through a single statement.
class ChaosRewriteTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
      CREATE TABLE LEDGE (Src : INT, Dst : INT, Label : CHAR);
      CREATE VIEW LPATH (Src, Dst, Label) AS (
        SELECT Src, Dst, Label FROM LEDGE
        UNION
        SELECT P.Src, E.Dst, P.Label FROM LPATH P, LEDGE E
        WHERE P.Dst = E.Src AND P.Label = E.Label );
    )"));
    using value::Value;
    for (int i = 1; i < 12; ++i) {
      for (const char* label : {"a", "b"}) {
        EDS_ASSERT_OK(db_.session.InsertRow(
            "LEDGE",
            {Value::Int(i), Value::Int(i + 1), Value::String(label)}));
      }
    }
  }

  Rows Baseline() {
    QueryOptions no_rewrite;
    no_rewrite.rewrite = false;
    auto r = db_.session.Query(kQuery, no_rewrite);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows : Rows{};
  }

  static constexpr const char* kQuery =
      "SELECT Dst FROM LPATH WHERE Src = 1 AND Label = 'a'";
  testutil::FilmDb db_;
};

TEST_F(ChaosRewriteTest, MethodFailuresDegradeRewritesNotResults) {
  Rows baseline = Baseline();
  ASSERT_EQ(baseline.size(), 11u);

  // Discovery: arm an unrelated sentinel so every EDS_FAIL_POINT site the
  // query crosses records a hit, then rerun injecting a failure at each
  // site that actually fired. A failing method rejects its rule's
  // candidate binding — the rewrite gets weaker, never wrong.
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("chaos.sentinel=error"));
  {
    auto full = db_.session.Query(kQuery);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    testutil::ExpectSameRows(baseline, full->rows);
  }
  const char* kSites[] = {
      "rewrite.method.EVALUATE",    "rewrite.method.SCHEMA",
      "rewrite.method.MERGE_SUBST", "rewrite.method.SHIFT_ATTRS",
      "rewrite.method.SPLIT_QUAL",  "rewrite.method.ADORNMENT",
      "rewrite.method.ALEXANDER",
  };
  std::vector<std::string> exercised;
  for (const char* site : kSites) {
    if (fp.hits(site) > 0) exercised.push_back(site);
  }
  // The magic transform alone guarantees ADORNMENT and ALEXANDER attempts.
  ASSERT_GE(exercised.size(), 2u);

  for (const std::string& site : exercised) {
    SCOPED_TRACE(site);
    fp.Clear();
    EDS_ASSERT_OK(fp.Configure(site + "=error"));
    auto degraded = db_.session.Query(kQuery);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    testutil::ExpectSameRows(baseline, degraded->rows);
  }
}

TEST_F(ChaosRewriteTest, IntermittentMethodFailureIsAlsoSafe) {
  Rows baseline = Baseline();
  auto& fp = gov::FailPoints::Global();
  // Fail only the third EVALUATE attempt: exercises the partially-failed
  // middle of a run rather than a uniformly dead method.
  EDS_ASSERT_OK(fp.Configure("rewrite.method.EVALUATE=error@3"));
  auto degraded = db_.session.Query(kQuery);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  testutil::ExpectSameRows(baseline, degraded->rows);
}

TEST_F(ChaosRewriteTest, InternerSweepPressureKeepsCanonicality) {
  Rows baseline = Baseline();
  auto& fp = gov::FailPoints::Global();
  // Force a compacting sweep on every fresh-term allocation: reclamation
  // at maximum pressure. Results and hash-consing must both survive.
  EDS_ASSERT_OK(fp.Configure("term.interner.sweep=error"));
  auto stressed = db_.session.Query(kQuery);
  ASSERT_TRUE(stressed.ok()) << stressed.status().ToString();
  testutil::ExpectSameRows(baseline, stressed->rows);
  EXPECT_GT(fp.hits("term.interner.sweep"), 0u);
  // Canonicality: equal structure still interns to the same node.
  TermRef a = P("SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1))");
  TermRef b = P("SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1))");
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(ChaosRewriteTest, ExecOperatorFailureSurfacesCleanly) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("exec.operator=error"));
  auto r = db_.session.Query(kQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(r.status().message().find("injected failure"),
            std::string::npos);
  // A mid-plan operator failure (not the first) unwinds just as cleanly.
  // Count how often a clean run crosses the site (the sentinel keeps the
  // registry armed so unconfigured sites record hits), then inject at a
  // hit in the middle of the plan rather than hard-coding an index that
  // would rot when the optimizer changes the plan shape.
  fp.Clear();
  EDS_ASSERT_OK(fp.Configure("chaos.sentinel=error"));
  auto clean = db_.session.Query(kQuery);
  EDS_ASSERT_OK(clean.status());
  uint64_t evals = fp.hits("exec.operator");
  ASSERT_GE(evals, 2u);
  fp.Clear();
  EDS_ASSERT_OK(fp.Configure("exec.operator=error@" +
                             std::to_string((evals + 1) / 2)));
  r = db_.session.Query(kQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
}

TEST_F(ChaosRewriteTest, FixpointRoundFailureSurfacesCleanly) {
  auto& fp = gov::FailPoints::Global();
  EDS_ASSERT_OK(fp.Configure("exec.fix.round=error@2"));
  auto rows = db_.session.Run(P(kTcOverBeats));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kRuntimeError);
}

TEST_F(ChaosRewriteTest, CancelledRewriteDegradesToBestSoFar) {
  Rows baseline = Baseline();
  auto plan = db_.session.Translate(kQuery);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  gov::CancelToken token;
  token.Cancel();  // cancelled before the rewrite even starts
  gov::QueryGuard guard;
  gov::GovernorLimits limits;
  limits.cancel = &token;
  guard.Arm(limits);
  rewrite::RewriteOptions options;
  options.guard = &guard;
  auto before = gov::CumulativeTripCounters();
  auto outcome = db_.session.Rewrite(*plan, options);
  // Degradation, not an error: the outcome carries the best-so-far term
  // (here: the raw plan, untouched) and the structured trip reason.
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->stats.trip.kind, gov::TripKind::kCancelled);
  EXPECT_EQ(outcome->stats.applications, 0u);
  EXPECT_GT(gov::CumulativeTripCounters().cancel_trips, before.cancel_trips);

  auto rows = db_.session.Run(outcome->term);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  testutil::ExpectSameRows(baseline, *rows);
}

TEST_F(ChaosRewriteTest, NodeCeilingDegradesRewriteButStillAnswers) {
  Rows baseline = Baseline();
  QueryOptions options;
  options.limits.max_term_nodes = 1;  // any real rewrite blows this
  auto before = gov::CumulativeTripCounters();
  auto governed = db_.session.Query(kQuery, options);
  // The node ceiling is a rewrite-phase budget: the query still answers,
  // correctly, with a structured trip + warning instead of silence.
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  testutil::ExpectSameRows(baseline, governed->rows);
  EXPECT_EQ(governed->rewrite_trip.kind, gov::TripKind::kNodeCeiling);
  ASSERT_FALSE(governed->warnings.empty());
  EXPECT_NE(governed->warnings[0].find("node_ceiling"), std::string::npos);
  EXPECT_GT(gov::CumulativeTripCounters().node_ceiling_trips,
            before.node_ceiling_trips);
}

TEST_F(ChaosRewriteTest, PreCancelledQueryFailsEndToEnd) {
  // Through Query(), a cancellation observed in the rewrite phase degrades
  // that phase AND fails execution at its first chokepoint: cancelled
  // means "stop working", not "answer slowly".
  gov::CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.limits.cancel = &token;
  auto r = db_.session.Query(kQuery, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("cancelled"), std::string::npos);
}

TEST_F(ChaosRewriteTest, SafetyStopSurfacesAsWarning) {
  Rows baseline = Baseline();
  QueryOptions options;
  options.rewrite_options.max_applications = 1;
  auto r = db_.session.Query(kQuery, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  testutil::ExpectSameRows(baseline, r->rows);
  EXPECT_TRUE(r->rewrite_stats.safety_stop);
  ASSERT_FALSE(r->warnings.empty());
  EXPECT_NE(r->warnings[0].find("max_applications"), std::string::npos);
}

TEST_F(ChaosRewriteTest, GenerousLimitsChangeNothing) {
  // A governed query with room to spare returns exactly what an
  // ungoverned one does — no trips, no warnings.
  auto ungoverned = db_.session.Query(kQuery);
  ASSERT_TRUE(ungoverned.ok());
  QueryOptions options;
  options.limits.deadline_ms = 60000;
  options.limits.max_term_nodes = 50'000'000;
  options.limits.max_rows = 50'000'000;
  auto governed = db_.session.Query(kQuery, options);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  testutil::ExpectSameRows(ungoverned->rows, governed->rows);
  EXPECT_FALSE(governed->rewrite_trip.tripped());
  EXPECT_TRUE(governed->warnings.empty());
}

}  // namespace
}  // namespace eds
