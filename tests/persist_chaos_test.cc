// Chaos suite for plan-cache persistence: kill-mid-write via the
// persist.save / persist.rename / persist.load.record fail points, plus a
// corrupt-file corpus (truncation at every offset, bit flips, garbage
// headers, lying lengths, nested-term bombs). The invariant throughout:
// the loader NEVER crashes and never admits a damaged record — bad input
// costs counted skips, not correctness. Run under the asan preset, every
// corrupt input doubles as a memory/UB check.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gov/failpoint.h"
#include "gtest/gtest.h"
#include "srv/codec.h"
#include "srv/persist.h"
#include "srv/service.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::srv {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "eds_persist_chaos_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Serves a few queries through a pumped service with persistence on and
// returns the persisted file's bytes (Stop() writes the final snapshot).
std::string PersistedWorkloadBytes(const std::string& path) {
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 0;
  options.persist_path = path;
  QueryService service(&db.session, options);
  EXPECT_TRUE(service.Start().ok());
  for (int k = 1; k <= 3; ++k) {
    auto future = service.Submit("SELECT Winner FROM BEATS WHERE Winner > " +
                                 std::to_string(k));
    EXPECT_TRUE(service.ServeQueuedForTesting());
    auto served = future.get();
    EXPECT_TRUE(served.ok()) << served.status().ToString();
  }
  service.Stop();
  return ReadFileBytes(path);
}

class PersistChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { gov::FailPoints::Global().Clear(); }
};

// ---------------- fail points: kill mid-write ----------------

TEST_F(PersistChaosTest, SaveFailPointLeavesThePreviousFileIntact) {
  const std::string path = TempPath("save_fp.eds");
  std::remove(path.c_str());
  const std::string good = PersistedWorkloadBytes(path);
  ASSERT_FALSE(good.empty());

  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("persist.save=error"));
  Status failed = WriteFileAtomic(path, "replacement bytes");
  EXPECT_FALSE(failed.ok());
  // The previous file is byte-for-byte untouched and still loads.
  EXPECT_EQ(ReadFileBytes(path), good);
  gov::FailPoints::Global().Clear();
  LoadStats stats;
  auto image = LoadPersistFile(path, PersistOptions{}, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_GT(image->plans.size() + image->l0.size(), 0u);
  EXPECT_EQ(stats.skipped, 0u);
  std::remove(path.c_str());
}

TEST_F(PersistChaosTest, RenameFailPointLeavesNoTmpAndThePreviousFile) {
  const std::string path = TempPath("rename_fp.eds");
  std::remove(path.c_str());
  const std::string good = PersistedWorkloadBytes(path);

  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("persist.rename=error"));
  Status failed = WriteFileAtomic(path, "replacement bytes");
  EXPECT_FALSE(failed.ok());
  gov::FailPoints::Global().Clear();
  EXPECT_EQ(ReadFileBytes(path), good);
  // The tmp file was cleaned up, not leaked.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST_F(PersistChaosTest, LoadRecordFailPointSkipsAndCounts) {
  const std::string path = TempPath("load_fp.eds");
  std::remove(path.c_str());
  (void)PersistedWorkloadBytes(path);
  LoadStats clean_stats;
  auto clean = LoadPersistFile(path, PersistOptions{}, &clean_stats);
  ASSERT_TRUE(clean.ok());
  const size_t records = clean->plans.size() + clean->l0.size();
  ASSERT_GT(records, 1u);

  // The second record dies at the fail point; everything else loads.
  EDS_ASSERT_OK(
      gov::FailPoints::Global().Configure("persist.load.record=error@2"));
  LoadStats stats;
  auto image = LoadPersistFile(path, PersistOptions{}, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->plans.size() + image->l0.size(), records - 1);
  EXPECT_EQ(stats.skipped, 1u);
  std::remove(path.c_str());
}

// A mid-write crash is an arbitrary prefix of the new file only if the
// writer is not atomic; WriteFileAtomic never exposes one. This test
// simulates the non-atomic worst case anyway (a copied or NFS-mangled
// file): every possible truncation of a valid file must load as a clean
// prefix — no crash, no partial record admitted.
TEST_F(PersistChaosTest, EveryTruncationLoadsTheSurvivingPrefix) {
  const std::string path = TempPath("trunc_src.eds");
  std::remove(path.c_str());
  const std::string good = PersistedWorkloadBytes(path);
  LoadStats full_stats;
  auto full = LoadPersistFile(path, PersistOptions{}, &full_stats);
  ASSERT_TRUE(full.ok());
  const size_t full_records = full->plans.size() + full->l0.size();
  ASSERT_GT(full_records, 0u);

  const std::string cut_path = TempPath("trunc.eds");
  for (size_t len = 0; len <= good.size(); ++len) {
    WriteFileBytes(cut_path, good.substr(0, len));
    LoadStats stats;
    auto image = LoadPersistFile(cut_path, PersistOptions{}, &stats);
    if (len < FileHeader::kEncodedSize) {
      EXPECT_FALSE(image.ok()) << "len=" << len;
      continue;
    }
    ASSERT_TRUE(image.ok()) << "len=" << len << ": "
                            << image.status().ToString();
    const size_t records = image->plans.size() + image->l0.size();
    EXPECT_LE(records, full_records) << "len=" << len;
    if (len < good.size()) {
      EXPECT_TRUE(stats.torn_tail || records < full_records ||
                  stats.skipped > 0)
          << "len=" << len << " silently ignored missing bytes";
    } else {
      EXPECT_EQ(records, full_records);
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// Restarting a service from a kill-mid-write artifact: whatever prefix
// survived must warm the caches without failing Start().
TEST_F(PersistChaosTest, ServiceStartsWarmFromATruncatedFile) {
  const std::string path = TempPath("trunc_start.eds");
  std::remove(path.c_str());
  const std::string good = PersistedWorkloadBytes(path);
  // Cut mid-way through the record region.
  WriteFileBytes(path, good.substr(0, FileHeader::kEncodedSize +
                                          (good.size() / 2)));
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 0;
  options.persist_path = path;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(service.Start());  // a damaged file is never a boot failure
  auto future = service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1");
  ASSERT_TRUE(service.ServeQueuedForTesting());
  auto served = future.get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  service.Stop();
  std::remove(path.c_str());
}

// ---------------- corrupt-file corpus ----------------

TEST_F(PersistChaosTest, BitFlipsNeverCrashAndNeverAdmitDamage) {
  const std::string path = TempPath("flip_src.eds");
  std::remove(path.c_str());
  const std::string good = PersistedWorkloadBytes(path);
  LoadStats full_stats;
  auto full = LoadPersistFile(path, PersistOptions{}, &full_stats);
  ASSERT_TRUE(full.ok());
  const size_t full_records = full->plans.size() + full->l0.size();

  const std::string flip_path = TempPath("flip.eds");
  for (size_t i = 0; i < good.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string flipped = good;
      flipped[i] = static_cast<char>(flipped[i] ^ mask);
      WriteFileBytes(flip_path, flipped);
      LoadStats stats;
      auto image = LoadPersistFile(flip_path, PersistOptions{}, &stats);
      if (!image.ok()) continue;  // header damage: clean refusal
      // A record either loads intact or is dropped; the total can only
      // shrink. (A flip inside term *text* still CRC-mismatches.)
      EXPECT_LE(image->plans.size() + image->l0.size(), full_records)
          << "flip at byte " << i;
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST_F(PersistChaosTest, GarbageHeadersAreRefused) {
  const std::string path = TempPath("garbage.eds");
  // Deterministic pseudo-garbage (xorshift), several sizes including the
  // empty file and exactly-header-sized noise.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state & 0xFF);
  };
  for (size_t size : {0u, 1u, 16u, 31u, 32u, 33u, 100u, 4096u}) {
    std::string noise;
    noise.reserve(size);
    for (size_t i = 0; i < size; ++i) noise += next();
    WriteFileBytes(path, noise);
    LoadStats stats;
    auto image = LoadPersistFile(path, PersistOptions{}, &stats);
    // A garbage header must be a clean error (magic or CRC), never a
    // crash; surviving by fluke would require forging a CRC32.
    EXPECT_FALSE(image.ok()) << "size=" << size;
  }
  std::remove(path.c_str());
}

TEST_F(PersistChaosTest, LyingRecordLengthsAreTornNotAllocated) {
  FileHeader header;
  std::string file;
  EncodeFileHeader(header, &file);
  // Frame declaring a 4 GiB payload backed by 4 bytes.
  Encoder enc(&file);
  enc.PutU32(0xFFFFFFF0u);
  enc.PutU32(0);
  file += "ha!!";
  const std::string path = TempPath("liar.eds");
  WriteFileBytes(path, file);
  LoadStats stats;
  auto image = LoadPersistFile(path, PersistOptions{}, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->plans.size() + image->l0.size(), 0u);
  EXPECT_TRUE(stats.torn_tail);
  std::remove(path.c_str());
}

// A record whose framing and CRC are VALID but whose payload declares
// strings longer than the cap: the decoder must refuse before allocating.
TEST_F(PersistChaosTest, OversizeStringsInsideValidRecordsAreSkipped) {
  FileHeader header;
  std::string file;
  EncodeFileHeader(header, &file);
  std::string payload;
  Encoder enc(&payload);
  enc.PutU8(1);  // plan record
  enc.PutU64(0);
  enc.PutU64(0);
  enc.PutU32(0x7FFFFFFFu);  // tmpl "length": 2 GiB
  AppendRecord(payload, &file);
  const std::string path = TempPath("oversize.eds");
  WriteFileBytes(path, file);
  LoadStats stats;
  auto image = LoadPersistFile(path, PersistOptions{}, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->plans.size(), 0u);
  EXPECT_EQ(stats.skipped, 1u);
  std::remove(path.c_str());
}

// Nested-term bombs: records whose term text is pathological. The parser's
// recursion bound rejects deep nesting; the node-count cap rejects wide
// bombs. Both are counted skips at warm time, never crashes.
TEST_F(PersistChaosTest, NestedTermBombsAreRejectedAtWarmTime) {
  testutil::FilmDb db;
  CacheImage image;
  image.header.catalog_epoch = db.session.catalog().epoch();
  image.header.rules_epoch = db.session.rules_epoch();

  // Deep: F(F(F(...1...))) — thousands of levels.
  std::string deep;
  const int depth = 50000;
  for (int i = 0; i < depth; ++i) deep += "F(";
  deep += "1";
  for (int i = 0; i < depth; ++i) deep += ")";
  PersistedL0 bomb;
  bomb.key = "BOMB";
  bomb.raw_text = deep;
  bomb.plan_text = "RELATION('BEATS')";
  image.l0.push_back(bomb);

  // Wide: a LIST with more nodes than the cap allows.
  std::string wide = "LIST(1";
  for (int i = 0; i < 2000; ++i) wide += ", 1";
  wide += ")";
  PersistedPlan fat;
  fat.tmpl_text = wide;
  fat.nf_text = wide;
  image.plans.push_back(fat);

  PersistOptions opts;
  opts.max_term_nodes = 1000;
  LoadStats stats;
  PlanCache cache;
  L0Cache l0(16);
  size_t installed = WarmServiceCaches(
      image, &db.session, &cache, &l0, db.session.catalog().epoch(),
      db.session.rules_epoch(), opts, &stats);
  EXPECT_EQ(installed, 0u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(l0.GetStats().entries, 0u);
}

// The periodic snapshot thread + fail point: a failing background save is
// counted, does not wedge Stop(), and the service keeps serving.
TEST_F(PersistChaosTest, FailingBackgroundSavesNeverWedgeTheService) {
  const std::string path = TempPath("bg.eds");
  std::remove(path.c_str());
  testutil::FilmDb db;
  ServiceOptions options;
  options.workers = 1;
  options.persist_path = path;
  options.persist_interval_ms = 5;
  QueryService service(&db.session, options);
  EDS_ASSERT_OK(gov::FailPoints::Global().Configure("persist.save=error"));
  EDS_ASSERT_OK(service.Start());
  auto served =
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1").get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  // Let at least one background tick fire into the fail point.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  gov::FailPoints::Global().Clear();
  service.Stop();  // the final (now-healthy) save succeeds
  LoadStats stats;
  auto image = LoadPersistFile(path, PersistOptions{}, &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_GT(image->plans.size() + image->l0.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eds::srv
