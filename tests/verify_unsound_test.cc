// Corpus of deliberately wrong rewrite rules, each pinned to the EDS-Sxxx
// diagnostic the verifier must raise for it. Every divergence finding must
// carry a printable counterexample (minimized database + lhs/rhs rows +
// literal binding) so a rule author can replay the failure by hand.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "rules/semantic.h"
#include "testutil.h"
#include "verify/verify.h"

namespace eds::verify {
namespace {

rewrite::BuiltinRegistry& Registry() {
  static rewrite::BuiltinRegistry* reg = [] {
    auto* r = new rewrite::BuiltinRegistry();
    r->InstallStandard();
    magic::InstallMagicBuiltins(r);
    rules::InstallSemanticBuiltins(r);
    return r;
  }();
  return *reg;
}

struct UnsoundRule {
  const char* name;        // rule name, also the test label
  const char* source;      // one-rule library text
  const char* expect_id;   // the EDS-Sxxx id the verifier must pin on it
};

class UnsoundCorpusTest : public ::testing::TestWithParam<UnsoundRule> {};

TEST_P(UnsoundCorpusTest, FlaggedWithExpectedIdAndCounterexample) {
  const UnsoundRule& p = GetParam();
  lint::LintReport report = VerifyLibrary(p.source, Registry());
  std::vector<lint::Diagnostic> hits = report.WithId(p.expect_id);
  ASSERT_EQ(hits.size(), 1u) << p.name << ":\n" << report.ToString();
  const lint::Diagnostic& d = hits[0];
  EXPECT_EQ(d.rule, p.name);
  // Every divergence/multiplicity finding replays by hand: it names the
  // database, shows both result sets, and carries the literal binding.
  EXPECT_NE(d.message.find("instance:"), std::string::npos) << d.ToString();
  EXPECT_NE(d.message.find("binding:"), std::string::npos) << d.ToString();
  if (p.expect_id == std::string(kVerifyDivergence)) {
    EXPECT_NE(d.message.find("database:"), std::string::npos) << d.ToString();
    EXPECT_NE(d.message.find("lhs rows:"), std::string::npos) << d.ToString();
    EXPECT_NE(d.message.find("rhs rows:"), std::string::npos) << d.ToString();
    EXPECT_EQ(report.error_count(), 1u) << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, UnsoundCorpusTest,
    ::testing::Values(
        // Dropping a conjunct weakens the qualification: extra rows.
        UnsoundRule{"drop_predicate",
                    "drop_predicate : SEARCH(i, f AND g, p) / "
                    "--> SEARCH(i, f, p) / ;",
                    kVerifyDivergence},
        // Swapping inputs without remapping $1/$2 references.
        UnsoundRule{"swap_join_sides",
                    "swap_join_sides : SEARCH(LIST(x, y), f, p) / "
                    "--> SEARCH(LIST(y, x), f, p) / ;",
                    kVerifyDivergence},
        // Losing duplicate elimination preserves the set, not the bag.
        UnsoundRule{"drop_dedup",
                    "drop_dedup : DEDUP(x) / --> x / ;",
                    kVerifyMultiplicity},
        // Forgetting a union branch loses its rows.
        UnsoundRule{"drop_union_branch",
                    "drop_union_branch : UNION(SET(x, y)) / --> x / ;",
                    kVerifyDivergence},
        // Strengthening the qualification drops rows the query asked for.
        UnsoundRule{"strengthen_filter",
                    "strengthen_filter : SEARCH(i, f, p) / "
                    "--> SEARCH(i, f AND ($1.1 = 1), p) / ;",
                    kVerifyDivergence},
        // Reversing a comparison is not an identity.
        UnsoundRule{"flip_lt",
                    "flip_lt : (x < y) / --> (y < x) / ;",
                    kVerifyDivergence}),
    [](const ::testing::TestParamInfo<UnsoundRule>& info) {
      return info.param.name;
    });

// The minimizer must shrink the drop_predicate counterexample database: the
// full 'base' corner has 3+ rows per table; a single-table single-digit
// witness is enough to show the dropped conjunct.
TEST(UnsoundMinimizeTest, CounterexampleDatabasesAreMinimized) {
  lint::LintReport report = VerifyLibrary(
      "drop_predicate : SEARCH(i, f AND g, p) / --> SEARCH(i, f, p) / ;",
      Registry());
  std::vector<lint::Diagnostic> hits = report.WithId(kVerifyDivergence);
  ASSERT_EQ(hits.size(), 1u) << report.ToString();
  const std::string& msg = hits[0].message;
  size_t db_pos = msg.find("database:");
  size_t lhs_pos = msg.find("lhs rows:");
  ASSERT_NE(db_pos, std::string::npos);
  ASSERT_NE(lhs_pos, std::string::npos);
  // Count rows in the minimized database: tuples print as "(a, b)".
  size_t rows = 0;
  for (size_t i = db_pos; i < lhs_pos; ++i) {
    if (msg[i] == '(') ++rows;
  }
  EXPECT_LE(rows, 2u) << msg;
}

}  // namespace
}  // namespace eds::verify
