// ESQL -> LERA translation (§3, §5): Fig. 2 DDL analysis and Fig. 3/4/5
// query translation, including the type-checking function rules (FIELD /
// VALUE insertion) and quantifier capture.
#include "esql/translator.h"

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "lera/schema.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::esql {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class TranslateTest : public ::testing::Test {
 protected:
  TermRef Translate(const char* esql) {
    auto t = db_.session.Translate(esql);
    EXPECT_TRUE(t.ok()) << esql << ": " << t.status().ToString();
    return t.ok() ? *t : nullptr;
  }

  Status TranslateError(const char* esql) {
    auto t = db_.session.Translate(esql);
    return t.ok() ? Status::OK() : t.status();
  }

  testutil::FilmDb db_;
};

TEST_F(TranslateTest, Fig2DdlPopulatesCatalog) {
  const auto& cat = db_.session.catalog();
  EXPECT_TRUE(cat.HasTable("FILM"));
  EXPECT_TRUE(cat.HasTable("APPEARS_IN"));
  auto actor = cat.types().Find("Actor");
  ASSERT_TRUE(actor.ok());
  EXPECT_TRUE((*actor)->is_object());
  EXPECT_EQ((*actor)->supertype()->name(), "Person");
  ASSERT_NE((*actor)->FindField("Name"), nullptr);  // inherited
  // The declared ADT function signature is registered.
  EXPECT_NE(cat.FindFunctionSig("IncreaseSalary"), nullptr);
  // Enumeration registered with its values.
  auto category = cat.types().Find("Category");
  ASSERT_TRUE(category.ok());
  EXPECT_EQ((*category)->enum_values().size(), 4u);
}

TEST_F(TranslateTest, Fig3QueryTranslatesToTheSearchOfSection31) {
  // The paper translates Fig. 3 to:
  //   search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn' ∧
  //          member('Adventure', 2.3)], (2.2, 2.3, salary(1.2)))
  // Our FROM order is (FILM, APPEARS_IN), so indices mirror; name/salary
  // unfold into the generic FIELD(VALUE(...)) per §3.3.
  TermRef t = Translate(R"(
    SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
      AND MEMBER('Adventure', Categories)
  )");
  EXPECT_TRUE(term::Equals(
      t,
      P("SEARCH(LIST(RELATION('FILM'), RELATION('APPEARS_IN')), "
        "((($1.1 = $2.1) AND (FIELD(VALUE($2.2), 'Name') = 'Quinn')) AND "
        "MEMBER('Adventure', $1.3)), "
        "LIST($1.2, $1.3, FIELD(VALUE($2.2), 'Salary')))")))
      << t->ToString();
}

TEST_F(TranslateTest, UnqualifiedColumnsResolveUniquely) {
  TermRef t = Translate("SELECT Winner FROM BEATS WHERE Loser = 3");
  EXPECT_TRUE(term::Equals(
      t,
      P("SEARCH(LIST(RELATION('BEATS')), ($1.2 = 3), LIST($1.1))")));
}

TEST_F(TranslateTest, AmbiguousColumnRejected) {
  // Numf exists in FILM and APPEARS_IN.
  Status s = TranslateError("SELECT Numf FROM FILM, APPEARS_IN");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(TranslateTest, UnknownColumnAndRelationRejected) {
  EXPECT_EQ(TranslateError("SELECT Nope FROM FILM").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(TranslateError("SELECT X FROM NO_SUCH").code(),
            StatusCode::kNotFound);
}

TEST_F(TranslateTest, SelectStarExpandsAllColumns) {
  TermRef t = Translate("SELECT * FROM BEATS");
  auto projs = lera::SearchProjections(t);
  ASSERT_TRUE(projs.ok());
  EXPECT_EQ(projs->size(), 2u);
  t = Translate("SELECT * FROM BEATS B1, BEATS B2 WHERE B1.Loser = "
                "B2.Winner");
  projs = lera::SearchProjections(t);
  ASSERT_TRUE(projs.ok());
  EXPECT_EQ(projs->size(), 4u);
}

TEST_F(TranslateTest, TupleFieldAccessWithoutValue) {
  // Point is a value tuple type: no VALUE dereference is inserted.
  EDS_ASSERT_OK(db_.session.ExecuteScript(
      "CREATE TABLE SHAPES (Id : INT, Origin : Point);"));
  TermRef t = Translate("SELECT ABS(Origin) FROM SHAPES");
  EXPECT_TRUE(term::Equals(
      t,
      P("SEARCH(LIST(RELATION('SHAPES')), TRUE, "
        "LIST(FIELD($1.2, 'ABS')))")));
}

TEST_F(TranslateTest, GroupByMakeSetBecomesNest) {
  // Fig. 4's view body.
  TermRef t = Translate(R"(
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories
  )");
  EXPECT_TRUE(term::Equals(
      t,
      P("NEST(SEARCH(LIST(RELATION('FILM'), RELATION('APPEARS_IN')), "
        "($1.1 = $2.1), LIST($1.2, $1.3, $2.2)), LIST(3), 'RefactorS')")))
      << t->ToString();
}

TEST_F(TranslateTest, GroupByRestrictions) {
  // Collected item must come last.
  EXPECT_EQ(TranslateError("SELECT MakeSet(Refactor), Numf FROM APPEARS_IN "
                           "GROUP BY Numf")
                .code(),
            StatusCode::kUnsupported);
  // Select items must match GROUP BY expressions.
  EXPECT_EQ(TranslateError("SELECT Title, MakeSet(Refactor) FROM FILM, "
                           "APPEARS_IN GROUP BY Categories")
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(TranslateTest, QuantifierCapturesCollectionDomain) {
  // Fig. 4's query over the nested view: ALL(Salary(Actors) > 10000)
  // ranges over the set-valued Actors attribute.
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"));
  TermRef t = Translate(
      "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
      "AND ALL(Salary(Actors) > 10000)");
  ASSERT_NE(t, nullptr);
  std::string s = t->ToString();
  EXPECT_NE(s.find("FORALL($1.3, (FIELD(VALUE(ELEM()), 'Salary') > 10000))"),
            std::string::npos)
      << s;
}

TEST_F(TranslateTest, ExistQuantifier) {
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW FA2 (Numf, Actors) AS
      SELECT Numf, MakeSet(Refactor) FROM APPEARS_IN GROUP BY Numf;
  )"));
  TermRef t = Translate(
      "SELECT Numf FROM FA2 WHERE EXIST(Name(Actors) = 'Quinn')");
  std::string s = t->ToString();
  EXPECT_NE(s.find("EXISTS($1.2, (FIELD(VALUE(ELEM()), 'Name') = 'Quinn'))"),
            std::string::npos)
      << s;
}

TEST_F(TranslateTest, QuantifierWithoutDomainRejected) {
  EXPECT_EQ(TranslateError("SELECT Winner FROM BEATS WHERE ALL(Winner > 1)")
                .code(),
            StatusCode::kTypeError);
}

TEST_F(TranslateTest, ViewInliningIsQueryModification) {
  // [Stonebraker76]: the view reference is replaced by its definition; the
  // raw translation therefore contains a nested SEARCH, not a RELATION.
  EDS_ASSERT_OK(db_.session.ExecuteScript(
      "CREATE VIEW Winners (W) AS SELECT Winner FROM BEATS;"));
  TermRef t = Translate("SELECT W FROM Winners WHERE W > 3");
  ASSERT_TRUE(lera::IsSearch(t));
  auto inputs = lera::SearchInputs(t);
  ASSERT_TRUE(inputs.ok());
  EXPECT_TRUE(lera::IsSearch((*inputs)[0]));
}

TEST_F(TranslateTest, Fig5RecursiveViewBecomesFix) {
  EDS_ASSERT_OK(db_.session.ExecuteScript(R"(
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  auto view = db_.session.catalog().FindView("BETTER_THAN");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE((*view)->is_recursive);
  ASSERT_EQ((*view)->columns.size(), 2u);
  EXPECT_EQ((*view)->columns[0].name, "W");
  EXPECT_TRUE(term::Equals(
      (*view)->definition,
      P("FIX(RELATION('BETTER_THAN'), UNION(SET("
        "SEARCH(LIST(RELATION('BEATS')), TRUE, LIST($1.1, $1.2)), "
        "SEARCH(LIST(RELATION('BETTER_THAN'), RELATION('BETTER_THAN')), "
        "($1.2 = $2.1), LIST($1.1, $2.2)))))")))
      << (*view)->definition->ToString();
}

TEST_F(TranslateTest, RecursiveViewNeedsBaseBranch) {
  Status s = db_.session.ExecuteScript(R"(
    CREATE VIEW LOOP_ONLY (A, B) AS
      SELECT B1.A, B1.B FROM LOOP_ONLY B1;
  )");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(TranslateTest, ViewColumnCountMismatchRejected) {
  Status s = db_.session.ExecuteScript(
      "CREATE VIEW BadCols (A, B, C) AS SELECT Winner FROM BEATS;");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(TranslateTest, UnionQueryTranslates) {
  TermRef t = Translate(
      "SELECT Winner FROM BEATS UNION SELECT Loser FROM BEATS");
  ASSERT_TRUE(lera::IsUnion(t));
  auto inputs = lera::UnionInputs(t);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 2u);
}

TEST_F(TranslateTest, TranslationValidatesAndInfersSchema) {
  TermRef t = Translate(
      "SELECT Title, Salary(Refactor) FROM FILM, APPEARS_IN "
      "WHERE FILM.Numf = APPEARS_IN.Numf");
  EDS_ASSERT_OK(lera::Validate(t));
  auto schema = lera::InferSchema(t, db_.session.catalog());
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->size(), 2u);
  EXPECT_EQ((*schema)[0].name, "Title");
  EXPECT_EQ((*schema)[1].name, "Salary");
}

}  // namespace
}  // namespace eds::esql
