// The Session facade: scripts, queries, objects, constraints.
#include "exec/session.h"

#include "gtest/gtest.h"
#include "lera/lera.h"
#include "testutil.h"

namespace eds::exec {
namespace {

using value::Value;

TEST(SessionTest, DdlScriptPopulatesCatalogAndStorage) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    CREATE TABLE T (A : INT, B : CHAR);
    INSERT INTO T VALUES (1, 'x'), (2, 'y');
  )"));
  EXPECT_TRUE(s.catalog().HasTable("T"));
  auto table = s.db().GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 2u);
}

TEST(SessionTest, InsertEvaluatesConstructorExpressions) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    CREATE TABLE T (A : INT, S : SET OF CHAR);
    INSERT INTO T VALUES (1 + 1, MakeSet('a', 'b', 'a'));
  )"));
  auto table = s.db().GetTable("T");
  ASSERT_TRUE(table.ok());
  const Row& row = (*table)->rows()[0];
  EXPECT_EQ(row[0], Value::Int(2));
  EXPECT_EQ(row[1], Value::Set({Value::String("a"), Value::String("b")}));
}

TEST(SessionTest, InsertRejectsColumnRefs) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript("CREATE TABLE T (A : INT);"));
  EXPECT_EQ(s.ExecuteScript("INSERT INTO T VALUES (SomeColumn);").code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, InsertArityMismatchRejected) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript("CREATE TABLE T (A : INT, B : INT);"));
  EXPECT_FALSE(s.ExecuteScript("INSERT INTO T VALUES (1);").ok());
}

TEST(SessionTest, QueryReturnsColumnsAndPlans) {
  testutil::FilmDb db;
  auto result = db.session.Query("SELECT Winner, Loser FROM BEATS WHERE "
                                 "Winner > 7");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->columns,
            (std::vector<std::string>{"Winner", "Loser"}));
  EXPECT_EQ(result->rows.size(), 2u);
  ASSERT_NE(result->raw_plan, nullptr);
  ASSERT_NE(result->optimized_plan, nullptr);
}

TEST(SessionTest, RewriteToggle) {
  testutil::FilmDb db;
  QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = db.session.Query("SELECT Winner FROM BEATS", no_rewrite);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->rewrite_stats.applications, 0u);
  EXPECT_TRUE(term::Equals(raw->raw_plan, raw->optimized_plan));
}

TEST(SessionTest, NewObjectChecksTypeAndFields) {
  testutil::FilmDb db;
  EXPECT_EQ(db.session.NewObject("NoSuchType", {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.session.NewObject("Text", {}).status().code(),
            StatusCode::kTypeError);  // not an object type
  EXPECT_EQ(db.session
                .NewObject("Actor", {{"Wrong", Value::Int(1)}})
                .status()
                .code(),
            StatusCode::kTypeError);
  // Inherited fields are accepted.
  auto obj = db.session.NewObject(
      "Actor", {{"Name", Value::String("N")}, {"Salary", Value::Int(1)}});
  EXPECT_TRUE(obj.ok());
}

TEST(SessionTest, ObjectSharingAcrossRows) {
  // The same actor object appears in two rows; updating it through the
  // heap is visible from both (object identity, §2.1).
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript(R"(
    TYPE Actor OBJECT TUPLE (Name : CHAR, Salary : NUMERIC);
    CREATE TABLE CAST1 (Ref : Actor);
    CREATE TABLE CAST2 (Ref : Actor);
  )"));
  auto quinn = s.NewObject("Actor", {{"Name", Value::String("Quinn")},
                                     {"Salary", Value::Int(100)}});
  ASSERT_TRUE(quinn.ok());
  EDS_ASSERT_OK(s.InsertRow("CAST1", {*quinn}));
  EDS_ASSERT_OK(s.InsertRow("CAST2", {*quinn}));
  EDS_ASSERT_OK(s.db().heap().Update(
      quinn->AsObjectRef(),
      Value::NamedTuple({"Name", "Salary"},
                        {Value::String("Quinn"), Value::Int(999)})));
  for (const char* q : {"SELECT Salary(Ref) FROM CAST1",
                        "SELECT Salary(Ref) FROM CAST2"}) {
    auto r = s.Query(q);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0], Value::Int(999));
  }
}

TEST(SessionTest, ConstraintInvalidatesOptimizer) {
  testutil::FilmDb db;
  auto opt1 = db.session.optimizer();
  ASSERT_TRUE(opt1.ok());
  rules::Optimizer* before = *opt1;
  EDS_ASSERT_OK(db.session.AddConstraint("c1", R"(
    dummy_ic : MEMBER(x, c) / ISA(c, SetCategory)
      --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                         'Science Fiction', 'Western')) / ;
  )"));
  auto opt2 = db.session.optimizer();
  ASSERT_TRUE(opt2.ok());
  EXPECT_NE(before, *opt2);  // regenerated
}

TEST(SessionTest, DuplicateDdlRejected) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript("CREATE TABLE T (A : INT);"));
  EXPECT_EQ(s.ExecuteScript("CREATE TABLE T (A : INT);").code(),
            StatusCode::kAlreadyExists);
  EDS_ASSERT_OK(s.ExecuteScript("CREATE VIEW V (A) AS SELECT A FROM T;"));
  EXPECT_EQ(s.ExecuteScript("CREATE TABLE V (A : INT);").code(),
            StatusCode::kAlreadyExists);
}

TEST(SessionTest, QueryOverUndefinedTableFails) {
  Session s;
  EXPECT_FALSE(s.Query("SELECT X FROM GHOST").ok());
}

// Fig. 4 end to end: the nested view, its query, and result correctness
// with and without rewriting.
TEST(SessionTest, Fig4NestedViewEndToEnd) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"));
  const char* query =
      "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
      "AND ALL(Salary(Actors) > 10000)";
  auto optimized = db.session.Query(query);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  QueryOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto raw = db.session.Query(query, no_rewrite);
  ASSERT_TRUE(raw.ok()) << raw.status();
  // Zorba {Adventure} has Quinn(12000) + Eva(15000): qualifies.
  // Space Saga {SF, Adventure} has Eva only: qualifies.
  ASSERT_EQ(raw->rows.size(), 2u);
  testutil::ExpectSameRows(optimized->rows, raw->rows);
  testutil::ExpectSameRows(
      raw->rows,
      {{Value::String("Zorba")}, {Value::String("Space Saga")}});
  // The optimizer pushed the MEMBER conjunct below the NEST.
  EXPECT_GE(optimized->rewrite_stats.applications_by_rule.count(
                "push_search_nest"),
            0u);
}

}  // namespace
}  // namespace eds::exec
