#include "rewrite/match.h"

#include "gtest/gtest.h"
#include "term/parser.h"

namespace eds::rewrite {
namespace {

using term::Bindings;
using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(MatchTest, ConstantsMatchEqualConstants) {
  Bindings env;
  EXPECT_TRUE(MatchFirst(P("1"), P("1"), &env));
  EXPECT_FALSE(MatchFirst(P("1"), P("2"), &env));
  EXPECT_FALSE(MatchFirst(P("'a'"), P("1"), &env));
}

TEST(MatchTest, VariableBindsAnything) {
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("x"), P("SEARCH(LIST(a()), f(), p())"), &env));
  EXPECT_TRUE(term::Equals(*env.LookupVar("x"),
                           P("SEARCH(LIST(a()), f(), p())")));
}

TEST(MatchTest, NonLinearPatternRequiresEqualSubterms) {
  Bindings env;
  EXPECT_TRUE(MatchFirst(P("F(x, x)"), P("F(G(1), G(1))"), &env));
  EXPECT_FALSE(MatchFirst(P("F(x, x)"), P("F(G(1), G(2))"), &env));
}

TEST(MatchTest, FunctorAndArityMustAgree) {
  Bindings env;
  EXPECT_FALSE(MatchFirst(P("F(x)"), P("G(1)"), &env));
  EXPECT_FALSE(MatchFirst(P("F(x)"), P("F(1, 2)"), &env));
  EXPECT_FALSE(MatchFirst(P("F(x)"), P("'constant'"), &env));
}

TEST(MatchTest, CollectionVariableAbsorbsSubsequence) {
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("F(LIST(x*, G(y), v*))"),
                         P("F(LIST(a(), b(), G(1), c()))"), &env));
  const auto* xs = env.LookupCollVar("x");
  const auto* vs = env.LookupCollVar("v");
  ASSERT_NE(xs, nullptr);
  ASSERT_NE(vs, nullptr);
  EXPECT_EQ(xs->size(), 2u);
  EXPECT_EQ(vs->size(), 1u);
  EXPECT_TRUE(term::Equals(*env.LookupVar("y"), P("1")));
}

TEST(MatchTest, CollectionVariableMayBeEmpty) {
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("F(LIST(x*, G(y)))"), P("F(LIST(G(1)))"), &env));
  EXPECT_TRUE(env.LookupCollVar("x")->empty());
}

TEST(MatchTest, BacktracksOverSplitPoints) {
  // x* must absorb two elements so that the following G(y) aligns.
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("F(LIST(x*, G(y), H(z)))"),
                         P("F(LIST(G(1), G(2), H(3)))"), &env));
  EXPECT_TRUE(term::Equals(*env.LookupVar("y"), P("2")));
  EXPECT_EQ(env.LookupCollVar("x")->size(), 1u);
}

TEST(MatchTest, EnumeratesAlternativesUntilCallbackAccepts) {
  // Reject the first split (x* empty), accept the next.
  int calls = 0;
  bool accepted =
      Match(P("F(LIST(x*, y*))"), P("F(LIST(a(), b()))"), Bindings(),
            [&calls](const Bindings& env) {
              ++calls;
              return env.LookupCollVar("x")->size() == 1;
            });
  EXPECT_TRUE(accepted);
  EXPECT_EQ(calls, 2);  // shortest-first: |x|=0 rejected, |x|=1 accepted
}

TEST(MatchTest, SetPatternMatchesModuloPermutation) {
  // Paper example: F(SET(x*, G(y, f))) — G may sit anywhere in the set.
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("F(SET(x*, G(y, f)))"),
                         P("F(SET(a(), G(1, TRUE), b()))"), &env));
  EXPECT_TRUE(term::Equals(*env.LookupVar("y"), P("1")));
  EXPECT_EQ(env.LookupCollVar("x")->size(), 2u);
}

TEST(MatchTest, SetPatternWithoutCollVarNeedsExactElements) {
  Bindings env;
  EXPECT_TRUE(MatchFirst(P("UNION(SET(u, v))"),
                         P("UNION(SET(a(), b()))"), &env));
  EXPECT_FALSE(MatchFirst(P("UNION(SET(u, v))"),
                          P("UNION(SET(a(), b(), c()))"), &env));
  EXPECT_FALSE(MatchFirst(P("UNION(SET(u, v))"), P("UNION(SET(a()))"), &env));
}

TEST(MatchTest, SetPatternDistinctElementsPerSubpattern) {
  // Two concrete sub-patterns cannot claim the same subject element.
  Bindings env;
  EXPECT_FALSE(MatchFirst(P("F(SET(G(x), G(y)))"), P("F(SET(G(1)))"), &env));
  EXPECT_TRUE(
      MatchFirst(P("F(SET(G(x), G(y)))"), P("F(SET(G(1), G(2)))"), &env));
}

TEST(MatchTest, SetBacktracksAcrossAssignments) {
  // G(x, 2) must pick the element where the second arg is 2.
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("F(SET(x*, G(y, 2)))"),
                         P("F(SET(G(1, 1), G(5, 2)))"), &env));
  EXPECT_TRUE(term::Equals(*env.LookupVar("y"), P("5")));
}

TEST(MatchTest, FunctorVariableBindsName) {
  Bindings env;
  ASSERT_TRUE(MatchFirst(P("?F(x)"), P("ABS(p)"), &env));
  EXPECT_EQ((*env.LookupVar("?F"))->constant().AsString(), "ABS");
  EXPECT_TRUE(term::Equals(*env.LookupVar("x"), P("p")));
  // Arity still matters.
  EXPECT_FALSE(MatchFirst(P("?F(x)"), P("G(1, 2)"), &env));
}

TEST(MatchTest, FunctorVariableNonLinear) {
  Bindings env;
  EXPECT_TRUE(MatchFirst(P("AND(?F(x), ?F(y))"), P("AND(G(1), G(2))"), &env));
  EXPECT_FALSE(
      MatchFirst(P("AND(?F(x), ?F(y))"), P("AND(G(1), H(2))"), &env));
}

TEST(MatchTest, SeedBindingsConstrainTheMatch) {
  Bindings seed;
  seed.SetVar("x", P("1"));
  bool matched = Match(P("F(x)"), P("F(2)"), seed,
                       [](const Bindings&) { return true; });
  EXPECT_FALSE(matched);
  EXPECT_TRUE(Match(P("F(x)"), P("F(1)"), seed,
                    [](const Bindings&) { return true; }));
}

TEST(MatchTest, DeepNestedPattern) {
  Bindings env;
  ASSERT_TRUE(MatchFirst(
      P("SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)"),
      P("SEARCH(LIST(SEARCH(LIST(RELATION('T')), TRUE, LIST($1.1)), "
        "RELATION('U')), ($1.1 = $2.1), LIST($1.1))"),
      &env));
  EXPECT_TRUE(term::Equals(*env.LookupVar("z"), P("LIST(RELATION('T'))")));
  EXPECT_EQ(env.LookupCollVar("x")->size(), 0u);
  EXPECT_EQ(env.LookupCollVar("v")->size(), 1u);
}

}  // namespace
}  // namespace eds::rewrite
