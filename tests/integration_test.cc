// Integration: every query in the catalog of paper examples gives the same
// result set raw and optimized, through the full pipeline
// (parse -> translate -> rewrite with the default optimizer -> execute).
#include "gtest/gtest.h"
#include "lera/printer.h"
#include "testutil.h"

namespace eds {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    EXPECT_TRUE(db_.session
                    .ExecuteScript(R"(
      CREATE VIEW FilmActors (Title, Categories, Actors) AS
        SELECT Title, Categories, MakeSet(Refactor)
        FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf
        GROUP BY Title, Categories;
      CREATE VIEW BETTER_THAN (W, L) AS (
        SELECT Winner, Loser FROM BEATS
        UNION
        SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
        WHERE B1.L = B2.W );
      CREATE VIEW AdventureFilms (Numf, Title) AS
        SELECT Numf, Title FROM FILM
        WHERE MEMBER('Adventure', Categories);
      CREATE VIEW AllPairs (A, B) AS (
        SELECT Winner, Loser FROM BEATS
        UNION
        SELECT Numf, Numf FROM FILM );
    )")
                    .ok());
  }

  void ExpectEquivalent(const char* query) {
    exec::QueryOptions no_rewrite;
    no_rewrite.rewrite = false;
    auto raw = db_.session.Query(query, no_rewrite);
    ASSERT_TRUE(raw.ok()) << query << ": " << raw.status().ToString();
    auto optimized = db_.session.Query(query);
    ASSERT_TRUE(optimized.ok())
        << query << ": " << optimized.status().ToString();
    testutil::ExpectSameRows(raw->rows, optimized->rows);
  }

  testutil::FilmDb db_;
};

TEST_F(IntegrationTest, Fig3Query) {
  ExpectEquivalent(R"(
    SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
      AND MEMBER('Adventure', Categories))");
}

TEST_F(IntegrationTest, Fig4Query) {
  ExpectEquivalent(
      "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
      "AND ALL(Salary(Actors) > 10000)");
}

TEST_F(IntegrationTest, Fig5Query) {
  ExpectEquivalent("SELECT W FROM BETTER_THAN WHERE L = 10");
}

TEST_F(IntegrationTest, ViewOverViewStacks) {
  ExpectEquivalent(
      "SELECT Title FROM AdventureFilms WHERE Numf > 1");
}

TEST_F(IntegrationTest, JoinThroughView) {
  ExpectEquivalent(R"(
    SELECT F.Title, Name(Refactor)
    FROM AdventureFilms F, APPEARS_IN
    WHERE F.Numf = APPEARS_IN.Numf)");
}

TEST_F(IntegrationTest, QueryOverUnionView) {
  ExpectEquivalent("SELECT A FROM AllPairs WHERE B = 2");
}

TEST_F(IntegrationTest, RecursiveViewJoinedWithBase) {
  ExpectEquivalent(R"(
    SELECT B.W, F.Title
    FROM BETTER_THAN B, FILM F
    WHERE B.L = F.Numf AND B.W = 1)");
}

TEST_F(IntegrationTest, UnionQuery) {
  ExpectEquivalent(
      "SELECT Winner FROM BEATS WHERE Winner > 5 "
      "UNION SELECT Loser FROM BEATS WHERE Loser < 4");
}

TEST_F(IntegrationTest, ConstantArithmetic) {
  ExpectEquivalent(
      "SELECT Winner + 1, Winner * 2 FROM BEATS WHERE Winner = 2 + 1");
}

TEST_F(IntegrationTest, QuantifiersBothWays) {
  ExpectEquivalent(
      "SELECT Title FROM FilmActors WHERE EXIST(Name(Actors) = 'Bob')");
  ExpectEquivalent(
      "SELECT Title FROM FilmActors WHERE NOT ALL(Salary(Actors) > 10000)");
}

TEST_F(IntegrationTest, EqualityChainClosesAndPushes) {
  // The semantic block derives B1.L = 10, which the fixpoint rule uses.
  ExpectEquivalent(R"(
    SELECT B1.W FROM BETTER_THAN B1, BEATS
    WHERE B1.L = BEATS.Winner AND BEATS.Winner = 10)");
}

TEST_F(IntegrationTest, InconsistentQueryReturnsEmptyFast) {
  auto result = db_.session.Query(
      "SELECT Title FROM FILM WHERE Numf > 5 AND Numf <= 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->exec_stats.rows_scanned, 0u);
}

TEST_F(IntegrationTest, OptimizerMergesViewIndirection) {
  auto result = db_.session.Query(
      "SELECT Title FROM AdventureFilms WHERE Numf = 1");
  ASSERT_TRUE(result.ok());
  // The optimized plan is a single search over FILM.
  std::string plan = lera::FormatPlan(result->optimized_plan);
  EXPECT_EQ(plan.find("SEARCH"), 0u) << plan;
  EXPECT_NE(plan.find("RELATION FILM"), std::string::npos) << plan;
  EXPECT_EQ(result->rewrite_stats.applications_by_rule.count("search_merge"),
            1u);
}

TEST_F(IntegrationTest, MagicAppliedThroughFullPipeline) {
  auto result = db_.session.Query("SELECT W FROM BETTER_THAN WHERE L = 10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewrite_stats.applications_by_rule.count(
                "push_search_fixpoint"),
            1u)
      << lera::FormatPlan(result->optimized_plan);
  EXPECT_EQ(result->rows.size(), 9u);
}

TEST_F(IntegrationTest, StressManyQueriesStayConsistent) {
  // A small sweep of generated selections over BEATS and the closure.
  for (int bound = 1; bound <= 10; ++bound) {
    std::string q1 = "SELECT Winner FROM BEATS WHERE Loser = " +
                     std::to_string(bound);
    ExpectEquivalent(q1.c_str());
    std::string q2 =
        "SELECT W FROM BETTER_THAN WHERE L = " + std::to_string(bound);
    ExpectEquivalent(q2.c_str());
    std::string q3 =
        "SELECT L FROM BETTER_THAN WHERE W = " + std::to_string(bound);
    ExpectEquivalent(q3.c_str());
  }
}

}  // namespace
}  // namespace eds
