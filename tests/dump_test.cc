// Schema dump / reload round-trips and the Explain report.
#include "gtest/gtest.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::exec {
namespace {

using value::Value;

TEST(DumpTest, SchemaRoundTripsThroughFreshSession) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"));
  std::string dump = db.session.DumpSchema();

  Session fresh;
  EDS_ASSERT_OK(fresh.ExecuteScript(dump));
  // Same relations, same columns, same types.
  for (const std::string& name : db.session.catalog().RelationNamesInOrder()) {
    auto original = db.session.catalog().RelationSchema(name);
    auto reloaded = fresh.catalog().RelationSchema(name);
    ASSERT_TRUE(original.ok()) << name;
    ASSERT_TRUE(reloaded.ok()) << name << " missing after reload\n" << dump;
    ASSERT_EQ(original->size(), reloaded->size()) << name;
    for (size_t i = 0; i < original->size(); ++i) {
      EXPECT_EQ((*original)[i].name, (*reloaded)[i].name) << name;
      EXPECT_TRUE(types::SameType((*original)[i].type, (*reloaded)[i].type))
          << name << "." << (*original)[i].name << ": "
          << (*original)[i].type->ToString() << " vs "
          << (*reloaded)[i].type->ToString();
    }
  }
  // Subtyping survived: Actor is still a Person.
  auto actor = fresh.catalog().types().Find("Actor");
  auto person = fresh.catalog().types().Find("Person");
  ASSERT_TRUE(actor.ok());
  ASSERT_TRUE(person.ok());
  EXPECT_TRUE(types::Isa(*actor, *person));
  // The function signature reattached.
  EXPECT_NE(fresh.catalog().FindFunctionSig("IncreaseSalary"), nullptr);
  // Queries run against the reloaded schema (with fresh data).
  EDS_ASSERT_OK(
      fresh.InsertRow("BEATS", {Value::Int(1), Value::Int(2)}));
  auto result = fresh.Query("SELECT W FROM BETTER_THAN WHERE L = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST(DumpTest, DumpIsIdempotent) {
  testutil::FilmDb db;
  std::string dump1 = db.session.DumpSchema();
  Session fresh;
  EDS_ASSERT_OK(fresh.ExecuteScript(dump1));
  std::string dump2 = fresh.DumpSchema();
  EXPECT_EQ(dump1, dump2);
}

TEST(DumpTest, ViewWithoutSourceDumpsAsComment) {
  Session s;
  EDS_ASSERT_OK(s.ExecuteScript("CREATE TABLE T (A : INT);"));
  catalog::ViewDef def;
  def.name = "RAWVIEW";
  def.columns = {{"A", s.catalog().types().int_type()}};
  auto parsed = term::ParseTerm(
      "SEARCH(LIST(RELATION('T')), TRUE, LIST($1.1))");
  ASSERT_TRUE(parsed.ok());
  def.definition = *parsed;
  EDS_ASSERT_OK(s.catalog().CreateView(std::move(def)));
  std::string dump = s.DumpSchema();
  EXPECT_NE(dump.find("-- view RAWVIEW"), std::string::npos) << dump;
  // Still loadable (the comment is skipped).
  Session fresh;
  EDS_ASSERT_OK(fresh.ExecuteScript(dump));
}

TEST(DumpTest, ExplainShowsTraceAndPlans) {
  testutil::FilmDb db;
  EDS_ASSERT_OK(db.session.ExecuteScript(
      "CREATE VIEW Winners (W) AS SELECT Winner FROM BEATS WHERE "
      "Winner > 2;"));
  auto report = db.session.Explain("SELECT W FROM Winners WHERE W < 9");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("== raw plan =="), std::string::npos);
  EXPECT_NE(report->find("== rewrite trace"), std::string::npos);
  EXPECT_NE(report->find("search_merge"), std::string::npos) << *report;
  EXPECT_NE(report->find("== optimized plan =="), std::string::npos);
}

TEST(DumpTest, ExplainOnBadQueryFails) {
  Session s;
  EXPECT_FALSE(s.Explain("SELECT X FROM GHOST").ok());
}

}  // namespace
}  // namespace eds::exec
