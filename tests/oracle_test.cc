// The engine's scope-aware type oracle: ISA constraints on attribute
// references resolve against the enclosing operator's input schemas, for
// every operator kind that carries scalar arguments (SEARCH, FILTER, JOIN,
// PROJECT), including object subtyping and nested tuple types.
#include "gtest/gtest.h"
#include "rewrite/engine.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"
#include "testutil.h"

namespace eds::rewrite {
namespace {

using term::TermRef;

TermRef P(const char* text) {
  auto r = term::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() {
    registry_.InstallStandard();
    EXPECT_TRUE(db_.session
                    .ExecuteScript(
                        "CREATE TABLE SHAPES (Id : INT, Origin : Point);")
                    .ok());
  }

  // A tagging rule: wraps any x of the given type in MARKED(x).
  std::unique_ptr<Engine> TaggerFor(const std::string& type_name) {
    std::string source = "tag : ?F(x) / ISA(x, " + type_name +
                         "), NOT MEMBER(?F, LIST('MARKED')) "
                         "--> ?F(MARKED(x)) / ;\n"
                         "block(b, {tag}, 64) ;\nseq({b}, 1) ;";
    auto prog = ruledsl::CompileRuleSource(source, registry_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    return std::make_unique<Engine>(&db_.session.catalog(), &registry_,
                                    std::move(*prog));
  }

  bool Marks(Engine* engine, const char* query) {
    auto out = engine->Rewrite(P(query));
    EXPECT_TRUE(out.ok()) << out.status();
    return out.ok() &&
           out->term->ToString().find("MARKED") != std::string::npos;
  }

  testutil::FilmDb db_;
  BuiltinRegistry registry_;
};

TEST_F(OracleTest, AttrTypeInSearchQual) {
  auto tagger = TaggerFor("Point");
  // SHAPES.Origin ($1.2) is a Point; FILM.Numf is not.
  EXPECT_TRUE(Marks(tagger.get(),
                    "SEARCH(LIST(RELATION('SHAPES')), G($1.2), "
                    "LIST($1.1))"));
  EXPECT_FALSE(Marks(tagger.get(),
                     "SEARCH(LIST(RELATION('FILM')), G($1.1), "
                     "LIST($1.1))"));
}

TEST_F(OracleTest, AttrTypeInFilterAndJoinAndProject) {
  auto tagger = TaggerFor("Point");
  EXPECT_TRUE(Marks(tagger.get(), "FILTER(RELATION('SHAPES'), G($1.2))"));
  EXPECT_TRUE(Marks(tagger.get(),
                    "JOIN(RELATION('FILM'), RELATION('SHAPES'), G($2.2))"));
  EXPECT_TRUE(Marks(tagger.get(),
                    "PROJECT(RELATION('SHAPES'), LIST(G($1.2)))"));
  // In a JOIN, input 1's columns are FILM's — not Points.
  EXPECT_FALSE(Marks(tagger.get(),
                     "JOIN(RELATION('FILM'), RELATION('SHAPES'), G($1.2))"));
}

TEST_F(OracleTest, SubtypeSatisfiesSupertypeIsa) {
  // APPEARS_IN.Refactor is an Actor, Actor SUBTYPE OF Person: ISA(x,
  // Person) holds for the attribute.
  auto tagger = TaggerFor("Person");
  EXPECT_TRUE(Marks(tagger.get(),
                    "SEARCH(LIST(RELATION('APPEARS_IN')), G($1.2), "
                    "LIST($1.1))"));
  // The reverse is false: a Person-typed column is not an Actor.
  EXPECT_TRUE(db_.session
                  .ExecuteScript("CREATE TABLE PEOPLE (Ref : Person);")
                  .ok());
  auto actor_tagger = TaggerFor("Actor");
  EXPECT_FALSE(Marks(actor_tagger.get(),
                     "SEARCH(LIST(RELATION('PEOPLE')), G($1.1), "
                     "LIST($1.1))"));
}

TEST_F(OracleTest, FieldAccessTypesResolve) {
  // FIELD(VALUE($1.2), 'Salary') is NUMERIC in the scope of APPEARS_IN.
  auto tagger = TaggerFor("NUMERIC");
  EXPECT_TRUE(Marks(tagger.get(),
                    "SEARCH(LIST(RELATION('APPEARS_IN')), "
                    "G(FIELD(VALUE($1.2), 'Salary')), LIST($1.1))"));
}

TEST_F(OracleTest, CollectionKindFromSchema) {
  // FILM.Categories is SET OF Category: ISA SET and ISA COLLECTION hold.
  auto set_tagger = TaggerFor("SET");
  EXPECT_TRUE(Marks(set_tagger.get(),
                    "SEARCH(LIST(RELATION('FILM')), G($1.3), LIST($1.1))"));
  auto list_tagger = TaggerFor("LIST");
  EXPECT_FALSE(Marks(list_tagger.get(),
                     "SEARCH(LIST(RELATION('FILM')), G($1.3), "
                     "LIST($1.1))"));
}

TEST_F(OracleTest, NoScopeNoMatch) {
  // Outside any operator scope, an ATTR's type is unknown: ISA fails and
  // the rule does not fire (instead of guessing).
  auto tagger = TaggerFor("Point");
  EXPECT_FALSE(Marks(tagger.get(), "G($1.2)"));
}

TEST_F(OracleTest, ScopeFollowsNestedOperators) {
  // The inner search's qualification sees the inner inputs (SHAPES),
  // even though the outer search's inputs differ.
  auto tagger = TaggerFor("Point");
  auto out = tagger->Rewrite(P(
      "SEARCH(LIST(SEARCH(LIST(RELATION('SHAPES')), G($1.2), LIST($1.1))), "
      "H($1.1), LIST($1.1))"));
  ASSERT_TRUE(out.ok());
  std::string s = out->term->ToString();
  // Only the inner G($1.2) is marked; the outer H($1.1) is over INT.
  EXPECT_NE(s.find("G(MARKED($1.2))"), std::string::npos) << s;
  EXPECT_EQ(s.find("H(MARKED"), std::string::npos) << s;
}

TEST_F(OracleTest, RewriteOutcomesAreCanonicalAndDeterministic) {
  // With hash-consed terms, rewriting the same query twice must yield not
  // just byte-identical plans but the *same canonical node* — normal-form
  // caching and pointer guards never change the outcome, they only skip
  // work. Exercised over every query shape this suite uses.
  const char* queries[] = {
      "SEARCH(LIST(RELATION('SHAPES')), G($1.2), LIST($1.1))",
      "SEARCH(LIST(RELATION('FILM')), G($1.3), LIST($1.1))",
      "FILTER(RELATION('SHAPES'), G($1.2))",
      "JOIN(RELATION('SHAPES'), RELATION('FILM'), G($1.2))",
      "PROJECT(RELATION('SHAPES'), LIST(G($1.2)))",
      "G($1.2)",
      "SEARCH(LIST(SEARCH(LIST(RELATION('SHAPES')), G($1.2), LIST($1.1))), "
      "H($1.1), LIST($1.1))",
  };
  auto tagger = TaggerFor("Point");
  for (const char* query : queries) {
    auto first = tagger->Rewrite(P(query));
    auto second = tagger->Rewrite(P(query));
    ASSERT_TRUE(first.ok() && second.ok()) << query;
    EXPECT_EQ(first->term.get(), second->term.get()) << query;
    EXPECT_EQ(first->term->ToString(), second->term->ToString()) << query;
    EXPECT_EQ(first->stats.applications, second->stats.applications)
        << query;
  }
}

}  // namespace
}  // namespace eds::rewrite
