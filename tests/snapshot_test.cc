// Snapshot-isolated serving: ServingSnapshot immutability, atomic
// publication on DDL, snapshot pinning (in-flight queries drain on the
// snapshot they were admitted under while DDL publishes the successor),
// epoch-keyed cache invalidation, and per-tenant weighted admission.
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "gtest/gtest.h"
#include "srv/service.h"
#include "srv/snapshot.h"
#include "testutil.h"

namespace eds::srv {
namespace {

using value::Value;

ServiceOptions ThreadedOptions(size_t workers) {
  ServiceOptions options;
  options.workers = workers;
  return options;
}

// ---------------- snapshot construction ----------------

TEST(SnapshotTest, BuildClonesTheCatalog) {
  testutil::FilmDb db;
  Result<SnapshotRef> snap =
      BuildSnapshot(db.session.catalog(), db.session.optimizer_options(),
                    db.session.rules_epoch());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_NE((*snap)->catalog, nullptr);
  ASSERT_NE((*snap)->optimizer, nullptr);
  EXPECT_EQ((*snap)->catalog_epoch, db.session.catalog().epoch());
  // The clone is frozen: later DDL on the live catalog is invisible to it.
  ASSERT_TRUE(db.session.ExecuteScript("TABLE LATER (x : NUMERIC);").ok());
  EXPECT_TRUE(db.session.catalog().FindTable("LATER").ok());
  EXPECT_FALSE((*snap)->catalog->FindTable("LATER").ok());
  EXPECT_NE((*snap)->catalog_epoch, db.session.catalog().epoch());
}

TEST(SnapshotTest, PublisherSwapsAtomically) {
  testutil::FilmDb db;
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.Current(), nullptr);
  Result<SnapshotRef> a =
      BuildSnapshot(db.session.catalog(), db.session.optimizer_options(), 0);
  ASSERT_TRUE(a.ok());
  publisher.Publish(*a);
  EXPECT_EQ(publisher.Current(), *a);
  EXPECT_EQ(publisher.publish_count(), 1u);
  Result<SnapshotRef> b =
      BuildSnapshot(db.session.catalog(), db.session.optimizer_options(), 1);
  ASSERT_TRUE(b.ok());
  publisher.Publish(*b);
  EXPECT_EQ(publisher.Current(), *b);
  EXPECT_EQ(publisher.publish_count(), 2u);
  // The old ref stays valid for whoever pinned it (shared ownership).
  EXPECT_NE((*a)->catalog, nullptr);
}

// ---------------- ApplyDdl publication ----------------

TEST(SnapshotTest, ApplyDdlPublishesNewSnapshot) {
  testutil::FilmDb db;
  QueryService service(&db.session, ThreadedOptions(1));
  ASSERT_TRUE(service.Start().ok());
  SnapshotRef before = service.current_snapshot();
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(service.ApplyDdl("TABLE EXTRA (x : NUMERIC);").ok());
  SnapshotRef after = service.current_snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before, after);
  EXPECT_GT(after->catalog_epoch, before->catalog_epoch);
  EXPECT_TRUE(after->catalog->FindTable("EXTRA").ok());
  EXPECT_FALSE(before->catalog->FindTable("EXTRA").ok());
  EXPECT_EQ(service.GetStats().ddl_applied, 1u);
  service.Stop();
}

TEST(SnapshotTest, ApplyDdlRejectsSelect) {
  testutil::FilmDb db;
  QueryService service(&db.session, ThreadedOptions(1));
  ASSERT_TRUE(service.Start().ok());
  Status s = service.ApplyDdl("SELECT Winner FROM BEATS;");
  EXPECT_FALSE(s.ok());
  // Nothing was applied and no new snapshot published for a rejected
  // script.
  EXPECT_EQ(service.GetStats().ddl_applied, 0u);
  service.Stop();
}

TEST(SnapshotTest, DirectSessionDdlWhileIdleIsPickedUpOnNextSubmit) {
  testutil::FilmDb db;
  QueryService service(&db.session, ThreadedOptions(1));
  ASSERT_TRUE(service.Start().ok());
  const uint64_t epoch_before = service.current_snapshot()->catalog_epoch;
  // The legacy pattern (shell DDL between serves, workers idle): mutate
  // the live session directly, then submit — MaybeRefreshSnapshot notices
  // the epoch divergence at admission.
  ASSERT_TRUE(db.session.ExecuteScript("TABLE SIDE (x : NUMERIC);").ok());
  auto served =
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1").get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_GT(served->catalog_epoch, epoch_before);
  EXPECT_EQ(served->catalog_epoch, db.session.catalog().epoch());
  service.Stop();
}

// ---------------- DDL under load: the drain guarantee ----------------

// In-flight queries pinned to the pre-DDL snapshot must complete with
// byte-identical results while ApplyDdl runs and returns WITHOUT waiting
// for them; queries submitted after see the new epoch.
TEST(SnapshotTest, DdlUnderLoadDrainsWithoutBlocking) {
  testutil::FilmDb db;
  ServiceOptions options = ThreadedOptions(3);
  // Queries mentioning BEATS sleep 150ms inside the serve, holding their
  // pinned snapshot in flight while the test applies DDL.
  options.test_delay_marker = "BEATS";
  options.test_delay_ns = 150'000'000ULL;
  QueryService service(&db.session, options);
  ASSERT_TRUE(service.Start().ok());
  const uint64_t old_epoch = service.current_snapshot()->catalog_epoch;

  // The expected rows, computed before any concurrency.
  auto expected = db.session.Query("SELECT Winner FROM BEATS WHERE Winner > 2");
  ASSERT_TRUE(expected.ok());

  std::vector<std::future<Result<ServedQuery>>> inflight;
  for (int i = 0; i < 3; ++i) {
    inflight.push_back(
        service.Submit("SELECT Winner FROM BEATS WHERE Winner > 2"));
  }
  // Give the workers time to dequeue and enter the injected delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Schema DDL never takes the serve gate: it must return while the
  // delayed queries are still sleeping (i.e. in well under 150ms).
  const auto ddl_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(service.ApplyDdl("TABLE MID_DDL (x : NUMERIC);").ok());
  const auto ddl_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - ddl_start)
                          .count();
  EXPECT_LT(ddl_ms, 120) << "schema DDL blocked behind in-flight queries";

  // A post-DDL query (no marker -> no delay) sees the new epoch.
  auto fresh = service.Submit("SELECT Numf FROM FILM WHERE Numf > 1").get();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_GT(fresh->catalog_epoch, old_epoch);

  // The pinned queries drain on the OLD snapshot, byte-identical.
  for (auto& f : inflight) {
    auto served = f.get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->catalog_epoch, old_epoch);
    testutil::ExpectSameRows(served->result.rows, expected->rows);
  }
  service.Stop();
}

// Both cache tiers key on the snapshot epochs: after DDL the old entries
// are dropped exactly once per reused key, then the new-epoch entries
// serve hits again.
TEST(SnapshotTest, BothCacheTiersInvalidateExactlyOnceAcrossDdl) {
  testutil::FilmDb db;
  QueryService service(&db.session, ThreadedOptions(1));
  ASSERT_TRUE(service.Start().ok());
  const std::string q = "SELECT Winner FROM BEATS WHERE Winner > 4";

  // Populate both tiers, then prove hits.
  ASSERT_TRUE(service.Submit(q).get().ok());
  auto warm = service.Submit(q).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->l0_hit);

  const uint64_t plan_inv_before = service.cache().GetStats().invalidations;
  const uint64_t l0_inv_before = service.l0_cache().GetStats().invalidations;

  // The plan cache sweeps its stale-epoch entry at snapshot publication
  // (DropStale inside ApplyDdl) — eagerly, because the epoch in the key
  // makes the entry unreachable the moment the publish lands.
  ASSERT_TRUE(service.ApplyDdl("TABLE CACHE_DDL (x : NUMERIC);").ok());
  EXPECT_EQ(service.cache().GetStats().invalidations, plan_inv_before + 1);

  // The L0 tier drops its stale entry lazily at the first post-DDL lookup
  // of the same text; both tiers then repopulate under the new epochs.
  auto miss = service.Submit(q).get();
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->l0_hit);
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_EQ(service.l0_cache().GetStats().invalidations, l0_inv_before + 1);
  EXPECT_EQ(service.cache().GetStats().invalidations, plan_inv_before + 1);

  // Second serve: hits again, and no further invalidations — exactly once.
  auto hit = service.Submit(q).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->l0_hit);
  EXPECT_EQ(service.l0_cache().GetStats().invalidations, l0_inv_before + 1);
  EXPECT_EQ(service.cache().GetStats().invalidations, plan_inv_before + 1);
  service.Stop();
}

// ---------------- per-tenant weighted admission ----------------

TEST(TenantAdmissionTest, WeightOneReproducesBasePolicy) {
  gov::GovernorLimits base_limits;
  base_limits.deadline_ms = 1000;
  for (size_t depth : {size_t{0}, size_t{10}, size_t{32}, size_t{63}}) {
    gov::GovernorLimits base = DeriveLimits(base_limits, depth, 64, true);
    gov::GovernorLimits weighted =
        DeriveLimits(base_limits, depth, 64, true, 1.0);
    EXPECT_EQ(base.deadline_ms, weighted.deadline_ms) << "depth " << depth;
    EXPECT_EQ(base.max_rows, weighted.max_rows) << "depth " << depth;
  }
}

TEST(TenantAdmissionTest, LighterWeightTightensBudgetsUnderLoad) {
  gov::GovernorLimits base_limits;
  base_limits.deadline_ms = 1000;
  // At half capacity a weight-0.25 tenant sees the load as if the queue
  // were 4x fuller: its derived deadline must be strictly shorter than the
  // default tenant's.
  gov::GovernorLimits heavy = DeriveLimits(base_limits, 32, 64, true, 1.0);
  gov::GovernorLimits light = DeriveLimits(base_limits, 32, 64, true, 0.25);
  EXPECT_LT(light.deadline_ms, heavy.deadline_ms);
  EXPECT_LT(light.deadline_ms, base_limits.deadline_ms);
  // Nonpositive weights fall back to the default share rather than
  // dividing by zero.
  gov::GovernorLimits zero = DeriveLimits(base_limits, 32, 64, true, 0.0);
  EXPECT_EQ(zero.deadline_ms, heavy.deadline_ms);
}

TEST(TenantAdmissionTest, PerTenantAdmissionsAreCounted) {
  testutil::FilmDb db;
  ServiceOptions options = ThreadedOptions(1);
  options.tenant_weights["analytics"] = 0.5;
  QueryService service(&db.session, options);
  ASSERT_TRUE(service.Start().ok());
  SubmitOptions analytics;
  analytics.tenant = "analytics";
  ASSERT_TRUE(
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1", analytics)
          .get()
          .ok());
  ASSERT_TRUE(
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 2").get().ok());
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.tenant_admitted["analytics"], 1u);
  EXPECT_EQ(stats.tenant_admitted[""], 1u);
  service.Stop();
}

// Tenant ids are client-supplied (HELLO), so the per-tenant tally must not
// grow without bound: past kMaxTrackedTenants distinct ids, unconfigured
// newcomers fold into "other" — while configured tenants always keep
// their own entry.
TEST(TenantAdmissionTest, TenantStatsCardinalityIsBounded) {
  testutil::FilmDb db;
  ServiceOptions options = ThreadedOptions(1);
  options.tenant_weights["vip"] = 2.0;
  QueryService service(&db.session, options);
  ASSERT_TRUE(service.Start().ok());
  const size_t kExtra = 10;
  for (size_t i = 0; i < kMaxTrackedTenants + kExtra; ++i) {
    SubmitOptions opts;
    opts.tenant = "mint-" + std::to_string(i);
    ASSERT_TRUE(
        service.Submit("SELECT Winner FROM BEATS WHERE Winner > 1", opts)
            .get()
            .ok());
  }
  // A configured tenant arriving after the cap still tracks individually.
  SubmitOptions vip;
  vip.tenant = "vip";
  ASSERT_TRUE(
      service.Submit("SELECT Winner FROM BEATS WHERE Winner > 2", vip)
          .get()
          .ok());
  ServiceStats stats = service.GetStats();
  // kMaxTrackedTenants minted ids + "other" + "vip"; never one entry per
  // minted id.
  EXPECT_LE(stats.tenant_admitted.size(), kMaxTrackedTenants + 2);
  EXPECT_EQ(stats.tenant_admitted["other"], kExtra);
  EXPECT_EQ(stats.tenant_admitted["vip"], 1u);
  service.Stop();
}

}  // namespace
}  // namespace eds::srv
