// eds_lint — standalone linter for rule-language source files.
//
//   $ eds_lint rules.edsr              # lint one or more files
//   $ eds_lint -                       # lint stdin
//   $ eds_lint --builtin               # lint the built-in rule libraries
//   $ eds_lint --werror rules.edsr     # warnings fail the run too
//
// Pass toggles: --no-divergence --no-dead --no-shadowing --no-hygiene.
// Exit status: 0 clean (or warnings only), 1 lint errors, 2 usage/IO error.
//
// The linter assumes the standard builtin registry (standard methods +
// magic + semantic): a rule file calling methods outside that set reports
// EDS-L001. Catalog-dependent ISA type checks are off here — there is no
// catalog on the command line.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "magic/magic.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"

namespace {

struct NamedSource {
  std::string name;
  std::string text;
};

std::vector<NamedSource> BuiltinSources() {
  return {
      {"merging", eds::rules::MergingRuleSource()},
      {"permutation", eds::rules::PermutationRuleSource()},
      {"fixpoint", eds::rules::FixpointRuleSource()},
      {"simplify", eds::rules::SimplifyRuleSource()},
      {"implicit_knowledge", eds::rules::ImplicitKnowledgeRuleSource()},
      {"semantic_methods", eds::rules::SemanticMethodRuleSource()},
      {"extensions", eds::rules::ExtensionRuleSource()},
  };
}

int Usage() {
  std::cerr
      << "usage: eds_lint [options] <file.edsr ... | - | --builtin>\n"
         "  --builtin        lint the built-in rule libraries\n"
         "  --werror         treat warnings as errors (exit 1)\n"
         "  --no-divergence  --no-dead  --no-shadowing  --no-hygiene\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  eds::lint::LintOptions opts;
  bool werror = false;
  bool builtin = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--builtin") {
      builtin = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-divergence") {
      opts.check_divergence = false;
    } else if (arg == "--no-dead") {
      opts.check_dead_rules = false;
    } else if (arg == "--no-shadowing") {
      opts.check_shadowing = false;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg == "--no-hygiene") {
      opts.check_hygiene = false;
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (!builtin && paths.empty()) return Usage();

  std::vector<NamedSource> sources;
  if (builtin) sources = BuiltinSources();
  for (const std::string& path : paths) {
    NamedSource src;
    src.name = path;
    if (path == "-") {
      src.name = "<stdin>";
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      src.text = buf.str();
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      src.text = buf.str();
    }
    sources.push_back(std::move(src));
  }

  eds::rewrite::BuiltinRegistry builtins;
  builtins.InstallStandard();
  eds::magic::InstallMagicBuiltins(&builtins);
  eds::rules::InstallSemanticBuiltins(&builtins);

  size_t errors = 0, warnings = 0;
  for (const NamedSource& src : sources) {
    eds::lint::LintReport report =
        eds::lint::LintSource(src.text, builtins, opts);
    errors += report.error_count();
    warnings += report.warning_count();
    for (const eds::lint::Diagnostic& d : report.diagnostics()) {
      std::cout << src.name << ": " << d.ToString() << "\n";
    }
  }
  std::cout << sources.size() << " unit(s), " << errors << " error(s), "
            << warnings << " warning(s)\n";
  return (errors > 0 || (werror && warnings > 0)) ? 1 : 0;
}
