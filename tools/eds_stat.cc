// eds_stat — serving-telemetry inspector: runs an ESQL workload through
// the srv::QueryService and reports what the serving layer observed.
//
//   $ eds_stat workload.sql                   # Prometheus text to stdout
//   $ eds_stat --format=text workload.sql     # aligned name/value lines
//   $ eds_stat --format=json workload.sql     # {"metrics":{...}}
//   $ eds_stat --repeat=50 --top=10 workload.sql
//       # serve each SELECT 50x (warms both cache layers, fills the
//       # latency histograms), then print the 10 slowest flight-recorder
//       # entries after the metrics
//   $ eds_stat --slow-ms=5 --slow-log=slow.jsonl workload.sql
//
// DDL / INSERT statements in the script run directly on the session;
// every SELECT is submitted to the service (--threads workers, plan
// cache + L0 on). The metrics output is the full ExportMetrics surface:
// srv.*, srv.latency.*, cache.*, srv.l0.*, gov.*.
// Exit status: 0 on success, 1 if any statement failed, 2 usage/IO error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "exec/session.h"
#include "obs/metrics.h"
#include "srv/service.h"

namespace {

int Usage() {
  std::cerr
      << "usage: eds_stat [options] <script.sql | ->\n"
         "  --threads=N      worker pool size (default 2)\n"
         "  --repeat=N       serve each SELECT N times (default 1)\n"
         "  --format=F       prom (default) | text | json\n"
         "  --top=N          also print the N slowest recorded queries\n"
         "  --slow-ms=N      slow-query threshold in milliseconds\n"
         "  --slow-log=FILE  append slow queries to FILE as JSONL\n";
  return 2;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  try {
    size_t pos = 0;
    unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

// ';'-terminated statements, comments-free ESQL (the shell's convention).
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    current += c;
    if (c == ';') {
      std::string trimmed(eds::Trim(current));
      if (!trimmed.empty() && trimmed != ";") out.push_back(trimmed);
      current.clear();
    }
  }
  std::string tail(eds::Trim(current));
  if (!tail.empty()) out.push_back(tail + ";");
  return out;
}

bool IsSelect(const std::string& stmt) {
  return stmt.size() >= 6 && eds::EqualsIgnoreCase(stmt.substr(0, 6), "SELECT");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t threads = 2;
  uint64_t repeat = 1;
  uint64_t top = 0;
  uint64_t slow_ms = 0;
  std::string slow_log;
  std::string format = "prom";
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string kThreads = "--threads=";
    const std::string kRepeat = "--repeat=";
    const std::string kFormat = "--format=";
    const std::string kTop = "--top=";
    const std::string kSlowMs = "--slow-ms=";
    const std::string kSlowLog = "--slow-log=";
    if (arg.rfind(kThreads, 0) == 0) {
      if (!ParseU64(arg.substr(kThreads.size()), &threads)) return Usage();
    } else if (arg.rfind(kRepeat, 0) == 0) {
      if (!ParseU64(arg.substr(kRepeat.size()), &repeat) || repeat == 0) {
        return Usage();
      }
    } else if (arg.rfind(kFormat, 0) == 0) {
      format = arg.substr(kFormat.size());
      if (format != "prom" && format != "text" && format != "json") {
        return Usage();
      }
    } else if (arg.rfind(kTop, 0) == 0) {
      if (!ParseU64(arg.substr(kTop.size()), &top)) return Usage();
    } else if (arg.rfind(kSlowMs, 0) == 0) {
      if (!ParseU64(arg.substr(kSlowMs.size()), &slow_ms)) return Usage();
    } else if (arg.rfind(kSlowLog, 0) == 0) {
      slow_log = arg.substr(kSlowLog.size());
      if (slow_log.empty()) return Usage();
    } else if (!script_path.empty() || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      script_path = arg;
    }
  }
  if (script_path.empty()) return Usage();

  std::string text;
  if (script_path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(script_path);
    if (!file) {
      std::cerr << "cannot open " << script_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  eds::exec::Session session;
  eds::srv::ServiceOptions options;
  options.workers = threads;
  options.slow_query_ns = slow_ms * 1'000'000ULL;
  options.slow_query_log_path = slow_log;
  eds::srv::QueryService service(&session, options);

  bool failed = false;
  bool service_started = false;
  for (const std::string& stmt : SplitStatements(text)) {
    if (!IsSelect(stmt)) {
      eds::Status status = session.ExecuteScript(stmt);
      if (!status.ok()) {
        std::cerr << status << "\n";
        failed = true;
      }
      continue;
    }
    if (!service_started) {
      eds::Status status = service.Start();
      if (!status.ok()) {
        std::cerr << "cannot start query service: " << status << "\n";
        return 2;
      }
      service_started = true;
    }
    std::vector<std::future<eds::Result<eds::srv::ServedQuery>>> futures;
    futures.reserve(repeat);
    for (uint64_t i = 0; i < repeat; ++i) {
      futures.push_back(service.Submit(stmt));
    }
    for (auto& f : futures) {
      eds::Result<eds::srv::ServedQuery> served = f.get();
      if (!served.ok()) {
        std::cerr << served.status() << "\n";
        failed = true;
      }
    }
  }
  service.Stop();

  eds::obs::MetricsRegistry registry;
  service.ExportMetrics(&registry);
  if (format == "prom") {
    std::cout << registry.ToPrometheus();
  } else if (format == "json") {
    std::cout << registry.ToJson() << "\n";
  } else {
    std::cout << registry.ToText();
  }

  if (top > 0) {
    std::cout << "# slowest " << top << " of "
              << service.RecentQueries().size() << " recorded\n";
    for (const eds::srv::QueryRecord& r : service.SlowestQueries(top)) {
      std::cout << "# " << QueryRecordToJson(r) << "\n";
    }
  }
  return failed ? 1 : 0;
}
