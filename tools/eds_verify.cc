// eds_verify — bounded semantic equivalence checker for rule files.
//
//   $ eds_verify rules.edsr            # verify one or more files
//   $ eds_verify -                     # verify stdin
//   $ eds_verify --builtin             # verify the built-in rule libraries
//   $ eds_verify --werror rules.edsr   # warnings fail the run too
//
// For every rule the verifier instantiates the LHS over small generated
// databases (duplicate / NULL / empty corners plus seeded random fills),
// applies the rule once, executes both sides, and reports divergence as
// EDS-Sxxx diagnostics with a minimized counterexample. This is
// falsification, not proof — see docs/rule_verify.md.
//
// Exit status: 0 sound within bounds (or warnings only), 1 soundness
// errors, 2 usage/IO error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "magic/magic.h"
#include "rules/extensions.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "verify/verify.h"

namespace {

struct NamedSource {
  std::string name;
  std::string text;
};

std::vector<NamedSource> BuiltinSources() {
  return {
      {"merging", eds::rules::MergingRuleSource()},
      {"permutation", eds::rules::PermutationRuleSource()},
      {"fixpoint", eds::rules::FixpointRuleSource()},
      {"simplify", eds::rules::SimplifyRuleSource()},
      {"implicit_knowledge", eds::rules::ImplicitKnowledgeRuleSource()},
      {"semantic_methods", eds::rules::SemanticMethodRuleSource()},
      {"extensions", eds::rules::ExtensionRuleSource()},
  };
}

int Usage() {
  std::cerr << "usage: eds_verify [options] <file.edsr ... | - | --builtin>\n"
               "  --builtin       verify the built-in rule libraries\n"
               "  --werror        treat warnings as errors (exit 1)\n"
               "  --seed N        instance-generation seed (default 42)\n"
               "  --no-minimize   keep full counterexample databases\n"
               "  --no-notes      suppress EDS-S010/EDS-S011 notes\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  eds::verify::VerifyOptions opts;
  bool werror = false;
  bool builtin = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--builtin") {
      builtin = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (arg == "--no-notes") {
      opts.report_coverage_notes = false;
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (!builtin && paths.empty()) return Usage();

  std::vector<NamedSource> sources;
  if (builtin) sources = BuiltinSources();
  for (const std::string& path : paths) {
    NamedSource src;
    src.name = path;
    if (path == "-") {
      src.name = "<stdin>";
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      src.text = buf.str();
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      src.text = buf.str();
    }
    sources.push_back(std::move(src));
  }

  eds::rewrite::BuiltinRegistry builtins;
  builtins.InstallStandard();
  eds::magic::InstallMagicBuiltins(&builtins);
  eds::rules::InstallSemanticBuiltins(&builtins);

  size_t errors = 0, warnings = 0;
  for (const NamedSource& src : sources) {
    eds::verify::VerifySummary summary;
    eds::lint::LintReport report =
        eds::verify::VerifyLibrary(src.text, builtins, opts, &summary);
    errors += report.error_count();
    warnings += report.warning_count();
    for (const eds::lint::Diagnostic& d : report.diagnostics()) {
      std::cout << src.name << ": " << d.ToString() << "\n";
    }
    std::cout << src.name << ": " << summary.ToString() << "\n";
  }
  std::cout << sources.size() << " unit(s), " << errors << " error(s), "
            << warnings << " warning(s)\n";
  return (errors > 0 || (werror && warnings > 0)) ? 1 : 0;
}
