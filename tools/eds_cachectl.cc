// eds_cachectl — persisted plan-cache file inspector (srv/persist.h).
//
//   $ eds_cachectl dump cache.eds          # header + every record, text
//   $ eds_cachectl verify cache.eds        # checksums + parse round trip
//   $ eds_cachectl compact cache.eds       # rewrite: drop bad records
//   $ eds_cachectl compact --top-k=64 cache.eds
//
// dump prints the file header and each record's kind, hit count, and term
// text — the format is ToString'd terms, so the output is directly
// greppable for a template or relation name.
//
// verify re-checks everything a warm-starting service would: the header
// magic/CRC/version, every record's CRC and framing, and that every term
// text parses back to a term that reprints to the same text (the
// round-trip contract save time enforced). Epoch staleness cannot be
// checked without the live session, so the epochs are printed for the
// operator to compare.
//
// compact loads the file (skipping whatever is broken) and atomically
// rewrites it containing only the surviving, parseable records — the tool
// to run after a verify reports corruption, or to shrink a file with
// --top-k.
//
// Exit status: 0 clean; 1 the file is damaged (verify: any skipped /
// torn / unparseable record; compact: nothing salvageable); 2 usage or
// I/O error.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "srv/codec.h"
#include "srv/persist.h"
#include "term/parser.h"

namespace {

using eds::Result;
using eds::Status;
using eds::srv::CacheImage;
using eds::srv::LoadStats;
using eds::srv::PersistedL0;
using eds::srv::PersistedPlan;
using eds::srv::PersistOptions;

int Usage() {
  std::cerr << "usage: eds_cachectl <dump|verify|compact> [options] <file>\n"
               "  --top-k=N   compact: keep only the N hottest entries per "
               "cache\n";
  return 2;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  try {
    size_t pos = 0;
    unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

void PrintHeader(const CacheImage& image, const LoadStats& stats) {
  std::cout << "header: version=" << image.header.version
            << " catalog_epoch=" << image.header.catalog_epoch
            << " rules_epoch=" << image.header.rules_epoch << "\n"
            << "records: plans=" << image.plans.size()
            << " l0=" << image.l0.size() << " skipped=" << stats.skipped
            << (stats.torn_tail ? " (torn tail)" : "") << "\n";
}

// Checks that `text` parses and reprints to itself — the loader will only
// admit records for which this holds, so verify flags them now.
bool TermTextOk(const std::string& text, const char* what, size_t index) {
  Result<eds::term::TermRef> parsed = eds::term::ParseTerm(text);
  if (!parsed.ok()) {
    std::cout << "BAD " << what << "[" << index
              << "]: " << parsed.status().ToString() << "\n";
    return false;
  }
  if ((*parsed)->ToString() != text) {
    std::cout << "BAD " << what << "[" << index
              << "]: text does not round-trip\n";
    return false;
  }
  return true;
}

int Dump(const CacheImage& image, const LoadStats& stats) {
  PrintHeader(image, stats);
  size_t i = 0;
  for (const PersistedPlan& plan : image.plans) {
    std::cout << "plan[" << i++ << "] hits=" << plan.hits
              << " rewrite_ns=" << plan.rewrite_ns << "\n"
              << "  template: " << plan.tmpl_text << "\n"
              << "  normal:   " << plan.nf_text << "\n";
    for (size_t p = 0; p < plan.param_texts.size(); ++p) {
      std::cout << "  $CQ" << p << " = " << plan.param_texts[p] << "\n";
    }
  }
  i = 0;
  for (const PersistedL0& entry : image.l0) {
    std::cout << "l0[" << i++ << "] hits=" << entry.hits << "\n"
              << "  key:  " << entry.key << "\n"
              << "  raw:  " << entry.raw_text << "\n"
              << "  plan: " << entry.plan_text << "\n"
              << "  columns:";
    for (const std::string& c : entry.columns) std::cout << " " << c;
    std::cout << "\n";
  }
  return stats.skipped != 0 || stats.torn_tail ? 1 : 0;
}

int Verify(const CacheImage& image, const LoadStats& stats) {
  PrintHeader(image, stats);
  uint64_t bad = stats.skipped + (stats.torn_tail ? 1 : 0);
  size_t i = 0;
  for (const PersistedPlan& plan : image.plans) {
    if (!TermTextOk(plan.tmpl_text, "plan.template", i)) ++bad;
    if (!TermTextOk(plan.nf_text, "plan.normal", i)) ++bad;
    for (const std::string& p : plan.param_texts) {
      if (!TermTextOk(p, "plan.param", i)) ++bad;
    }
    ++i;
  }
  i = 0;
  for (const PersistedL0& entry : image.l0) {
    if (!TermTextOk(entry.raw_text, "l0.raw", i)) ++bad;
    if (!TermTextOk(entry.plan_text, "l0.plan", i)) ++bad;
    ++i;
  }
  if (bad == 0) {
    std::cout << "OK\n";
    return 0;
  }
  std::cout << "CORRUPT: " << bad << " problem(s)\n";
  return 1;
}

int Compact(const std::string& path, CacheImage image, const LoadStats& stats,
            const PersistOptions& options) {
  // Keep only records the loader would admit: parseable, round-tripping
  // text. The hit ranking is preserved by construction (records were
  // written hottest-first).
  CacheImage clean;
  clean.header = image.header;
  for (PersistedPlan& plan : image.plans) {
    if (options.top_k != 0 && clean.plans.size() >= options.top_k) break;
    bool ok = TermTextOk(plan.tmpl_text, "plan.template", clean.plans.size()) &&
              TermTextOk(plan.nf_text, "plan.normal", clean.plans.size());
    for (const std::string& p : plan.param_texts) {
      ok = ok && TermTextOk(p, "plan.param", clean.plans.size());
    }
    if (ok) clean.plans.push_back(std::move(plan));
  }
  for (PersistedL0& entry : image.l0) {
    if (options.top_k != 0 && clean.l0.size() >= options.top_k) break;
    bool ok = TermTextOk(entry.raw_text, "l0.raw", clean.l0.size()) &&
              TermTextOk(entry.plan_text, "l0.plan", clean.l0.size());
    if (ok) clean.l0.push_back(std::move(entry));
  }
  if (clean.plans.empty() && clean.l0.empty() &&
      !(image.plans.empty() && image.l0.empty())) {
    std::cerr << "eds_cachectl: nothing salvageable in " << path << "\n";
    return 1;
  }
  std::string bytes = eds::srv::EncodeCacheImage(clean, options);
  Status written = eds::srv::WriteFileAtomic(path, bytes);
  if (!written.ok()) {
    std::cerr << "eds_cachectl: " << written.ToString() << "\n";
    return 2;
  }
  std::cout << "compacted: plans=" << clean.plans.size()
            << " l0=" << clean.l0.size() << " bytes=" << bytes.size()
            << (stats.skipped != 0 || stats.torn_tail
                    ? " (dropped damaged records)"
                    : "")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::string path;
  PersistOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--top-k=", 0) == 0) {
      uint64_t v = 0;
      if (!ParseU64(arg.substr(8), &v)) return Usage();
      options.top_k = static_cast<size_t>(v);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (command.empty()) {
      command = arg;
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty() ||
      (command != "dump" && command != "verify" && command != "compact")) {
    return Usage();
  }

  LoadStats stats;
  Result<CacheImage> image = eds::srv::LoadPersistFile(path, options, &stats);
  if (!image.ok()) {
    std::cerr << "eds_cachectl: " << image.status().ToString() << "\n";
    // An unreadable header is corruption for verify purposes, a hard I/O
    // error otherwise.
    return command == "verify" &&
                   image.status().code() != eds::StatusCode::kNotFound
               ? 1
               : 2;
  }
  if (command == "dump") return Dump(*image, stats);
  if (command == "verify") return Verify(*image, stats);
  return Compact(path, std::move(image).value(), stats, options);
}
