// eds_client — command-line client for an EDS network server
// (eds_shell --listen=PORT), speaking the wire protocol of docs/network.md.
//
//   $ eds_client --port=7432 --query="SELECT * FROM dept;"
//   $ eds_client --port=7432 --exec="CREATE TABLE t (x INT);"
//   $ eds_client --port=7432 --stats            # Prometheus text
//   $ eds_client --port=7432 script.sql         # SELECTs query, rest EXECs
//   $ echo "SELECT 1 + 1;" | eds_client --port=7432 -
//   $ eds_client --port=7432                    # interactive (tty)
//
// Options: --host=H (default 127.0.0.1), --tenant=T (weighted admission
// id), --name=S (client name on HELLO). Exit status: 0 on success, 1 if
// any statement failed, 2 on usage/connection errors.
#include <unistd.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "net/client.h"

namespace {

int Usage() {
  std::cerr << "usage: eds_client --port=P [--host=H] [--tenant=T] "
               "[--name=S]\n"
               "                  [--query=ESQL | --exec=SCRIPT | --stats | "
               "script.sql | -]\n";
  return 2;
}

// ';'-terminated statements (the shell's convention).
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    current += c;
    if (c == ';') {
      std::string trimmed(eds::Trim(current));
      if (!trimmed.empty() && trimmed != ";") out.push_back(trimmed);
      current.clear();
    }
  }
  std::string tail(eds::Trim(current));
  if (!tail.empty()) out.push_back(tail + ";");
  return out;
}

bool IsSelect(const std::string& stmt) {
  return stmt.size() >= 6 && eds::EqualsIgnoreCase(stmt.substr(0, 6), "SELECT");
}

void PrintResult(const eds::net::ResultMsg& r) {
  if (!r.ok) {
    std::cout << "error: " << r.error << "\n";
    return;
  }
  if (!r.columns.empty()) {
    for (size_t i = 0; i < r.columns.size(); ++i) {
      std::cout << (i == 0 ? "" : "\t") << r.columns[i];
    }
    std::cout << "\n";
  }
  for (const std::vector<std::string>& row : r.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << (i == 0 ? "" : "\t") << row[i];
    }
    std::cout << "\n";
  }
  std::cout << r.rows.size() << " row(s)";
  if (r.l0_hit) {
    std::cout << "  [l0 hit]";
  } else if (r.cache_hit) {
    std::cout << "  [plan-cache hit]";
  }
  std::cout << "  epoch " << r.catalog_epoch << "/" << r.rules_epoch << "  "
            << r.serve_ns / 1000 << " us\n";
}

// Runs one statement: SELECTs go through QUERY, everything else through
// EXEC (DDL/INSERT). Returns false if the statement failed.
bool RunStatement(eds::net::Client* client, const std::string& stmt) {
  if (IsSelect(stmt)) {
    eds::Result<eds::net::ResultMsg> r = client->Query(stmt);
    if (!r.ok()) {
      std::cout << "error: " << r.status().message() << "\n";
      return false;
    }
    PrintResult(*r);
    return r->ok;
  }
  eds::Result<eds::net::ResultMsg> r = client->Exec(stmt);
  if (!r.ok()) {
    std::cout << "error: " << r.status().message() << "\n";
    return false;
  }
  if (!r->ok) {
    std::cout << "error: " << r->error << "\n";
    return false;
  }
  std::cout << "ok  epoch " << r->catalog_epoch << "/" << r->rules_epoch
            << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  eds::net::Client::Options options;
  options.client_name = "eds_client";
  bool have_port = false;
  bool want_stats = false;
  std::string query;
  std::string exec;
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string kHost = "--host=";
    const std::string kPort = "--port=";
    const std::string kTenant = "--tenant=";
    const std::string kName = "--name=";
    const std::string kQuery = "--query=";
    const std::string kExec = "--exec=";
    if (arg.rfind(kHost, 0) == 0) {
      options.host = arg.substr(kHost.size());
    } else if (arg.rfind(kPort, 0) == 0) {
      try {
        unsigned long v = std::stoul(arg.substr(kPort.size()));
        if (v == 0 || v > 65535) return Usage();
        options.port = static_cast<uint16_t>(v);
        have_port = true;
      } catch (...) {
        return Usage();
      }
    } else if (arg.rfind(kTenant, 0) == 0) {
      options.tenant = arg.substr(kTenant.size());
    } else if (arg.rfind(kName, 0) == 0) {
      options.client_name = arg.substr(kName.size());
    } else if (arg.rfind(kQuery, 0) == 0) {
      query = arg.substr(kQuery.size());
    } else if (arg.rfind(kExec, 0) == 0) {
      exec = arg.substr(kExec.size());
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      script_path = arg;
    }
  }
  if (!have_port) return Usage();

  eds::Result<std::unique_ptr<eds::net::Client>> connected =
      eds::net::Client::Connect(options);
  if (!connected.ok()) {
    std::cerr << "cannot connect to " << options.host << ":" << options.port
              << ": " << connected.status().message() << "\n";
    return 2;
  }
  std::unique_ptr<eds::net::Client> client = std::move(*connected);
  int exit_code = 0;

  if (want_stats) {
    eds::Result<std::string> stats = client->Stats();
    if (!stats.ok()) {
      std::cerr << "stats: " << stats.status().message() << "\n";
      return 1;
    }
    std::cout << *stats;
  } else if (!query.empty()) {
    if (!RunStatement(client.get(), query)) exit_code = 1;
  } else if (!exec.empty()) {
    if (!RunStatement(client.get(), exec)) exit_code = 1;
  } else if (!script_path.empty() || !isatty(0)) {
    std::stringstream buffer;
    if (script_path.empty() || script_path == "-") {
      buffer << std::cin.rdbuf();
    } else {
      std::ifstream file(script_path);
      if (!file) {
        std::cerr << "cannot open " << script_path << "\n";
        return 2;
      }
      buffer << file.rdbuf();
    }
    for (const std::string& stmt : SplitStatements(buffer.str())) {
      if (!RunStatement(client.get(), stmt)) exit_code = 1;
    }
  } else {
    std::cout << "connected to " << options.host << ":" << options.port
              << " (session " << client->session_id() << ", server \""
              << client->hello().server_info
              << "\") — statements end with ';', \\q quits, \\stats scrapes\n";
    std::string line;
    std::string pending;
    while (true) {
      std::cout << (pending.empty() ? "esql> " : "   ... ") << std::flush;
      if (!std::getline(std::cin, line)) break;
      std::string trimmed(eds::Trim(line));
      if (pending.empty() && (trimmed == "\\q" || trimmed == "\\quit")) break;
      if (pending.empty() && trimmed == "\\stats") {
        eds::Result<std::string> stats = client->Stats();
        if (stats.ok()) {
          std::cout << *stats;
        } else {
          std::cout << "stats: " << stats.status().message() << "\n";
        }
        continue;
      }
      pending += line + "\n";
      if (trimmed.empty() || trimmed.back() != ';') continue;
      for (const std::string& stmt : SplitStatements(pending)) {
        if (!RunStatement(client.get(), stmt)) exit_code = 1;
      }
      pending.clear();
    }
  }
  if (eds::Status bye = client->Goodbye(); !bye.ok()) {
    // The server may already be gone; a failed goodbye is not a failure
    // of the user's statements.
    std::cerr << "goodbye: " << bye.message() << "\n";
  }
  return exit_code;
}
