// Experiments Fig. 10 + Fig. 11 — semantic rewriting:
//   * integrity-constraint addition detecting inconsistencies statically
//     (the §6.1 'Cartoon' example): execution cost collapses to zero;
//   * the CLOSE_PREDICATES equality closure deriving constants that enable
//     the fixpoint reduction (semantic rules feeding syntactic ones).
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;
using eds::benchutil::MakeGraphDb;

const char* kCategoryDomainConstraint = R"(
  ic_category_domain :
    MEMBER(x, c) / ISA(c, SetCategory)
    --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                       'Science Fiction', 'Western')) / ;
)";

// Fig. 10: the inconsistent membership with and without the semantic
// block. Without it the scan runs; with it the plan is FALSE.
void BM_Inconsistency(benchmark::State& state, bool semantic) {
  auto session = MakeFilmDb(static_cast<int>(state.range(0)));
  Check(session->AddConstraint("category_domain", kCategoryDomainConstraint),
        "constraint");
  eds::exec::QueryOptions options;
  options.rewrite = semantic;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)",
        options);
    Check(result.status(), "query");
    if (!result->rows.empty()) {
      state.SkipWithError("inconsistent query returned rows");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Inconsistent_Raw(benchmark::State& state) {
  BM_Inconsistency(state, false);
}
void BM_Inconsistent_Semantic(benchmark::State& state) {
  BM_Inconsistency(state, true);
}
BENCHMARK(BM_Inconsistent_Raw)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_Inconsistent_Semantic)->Arg(1000)->Arg(10000)->Arg(50000);

// A *consistent* membership pays the semantic-rewriting cost without an
// execution win: the other side of the §7 trade-off.
void BM_Consistent(benchmark::State& state, bool semantic) {
  auto session = MakeFilmDb(static_cast<int>(state.range(0)));
  Check(session->AddConstraint("category_domain", kCategoryDomainConstraint),
        "constraint");
  eds::exec::QueryOptions options;
  options.rewrite = semantic;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Title FROM FILM WHERE MEMBER('Adventure', Categories)",
        options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Consistent_Raw(benchmark::State& state) {
  BM_Consistent(state, false);
}
void BM_Consistent_Semantic(benchmark::State& state) {
  BM_Consistent(state, true);
}
BENCHMARK(BM_Consistent_Raw)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Consistent_Semantic)->Arg(1000)->Arg(10000);

// Fig. 11 (transitivity / constant propagation): the selection constant is
// written on a *join* column, not on the fixpoint output. Only the
// CLOSE_PREDICATES closure derives B.L = n, which then lets Fig. 9's rule
// focus the recursion — without the semantic block the fixpoint stays
// unfocused.
void BM_TransitivityEnablesMagic(benchmark::State& state, bool semantic) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(nodes);
  std::string query =
      "SELECT B.W FROM BETTER_THAN B, BEATS "
      "WHERE B.L = BEATS.Winner AND BEATS.Winner = " +
      std::to_string(nodes - 1);
  eds::exec::QueryOptions options;
  options.rewrite = true;
  // Ablate by rebuilding the optimizer with/without the semantic block.
  eds::rules::OptimizerOptions opt_options;
  opt_options.enable_semantic = semantic;
  auto session2 = std::make_unique<eds::exec::Session>(opt_options);
  // Rebuild the same data in the ablated session.
  (void)session;  // schema source of truth below
  Check(session2->ExecuteScript(R"(
    CREATE TABLE BEATS (Winner : INT, Loser : INT);
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"),
        "schema");
  using eds::value::Value;
  for (int i = 1; i < nodes; ++i) {
    Check(session2->InsertRow("BEATS", {Value::Int(i), Value::Int(i + 1)}),
          "edge");
  }
  for (auto _ : state) {
    auto result = session2->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
    state.counters["magic_fired"] = static_cast<double>(
        result->rewrite_stats.applications_by_rule.count(
            "push_search_fixpoint"));
  }
}
void BM_JoinConst_NoSemantic(benchmark::State& state) {
  BM_TransitivityEnablesMagic(state, false);
}
void BM_JoinConst_Semantic(benchmark::State& state) {
  BM_TransitivityEnablesMagic(state, true);
}
BENCHMARK(BM_JoinConst_NoSemantic)->Arg(16)->Arg(32);
BENCHMARK(BM_JoinConst_Semantic)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
