// Cold-start vs warm-restart A/B for the persistent plan cache
// (srv/persist.h): the restart benches build a fresh QueryService per
// iteration and serve the same literal-variant workload — cold pays one
// full parse+rewrite per template, warm loads the persisted file at
// Start() and serves every query from the restored caches (rewrite_ns=0
// on hits). The save/load benches isolate the file I/O halves: snapshot
// encode+fsync+rename cost and paranoid-loader cost per record.
#include <cstdio>
#include <string>

#include "benchutil.h"
#include "srv/persist.h"
#include "srv/service.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeFilmDb;
using eds::srv::LoadPersistFile;
using eds::srv::LoadStats;
using eds::srv::PersistOptions;
using eds::srv::QueryService;
using eds::srv::ServiceOptions;

// Same shape as bench_serve's workload: a handful of templates, many
// literal variants, so a warmed template cache hits on (almost) all of it.
std::string WorkloadQuery(size_t i) {
  switch (i % 3) {
    case 0:
      return "SELECT Title FROM FILM WHERE Numf > " + std::to_string(i % 40) +
             " AND Numf < " + std::to_string(60 + (i % 40));
    case 1:
      return "SELECT Numf FROM FILM WHERE MEMBER('Adventure', Categories) "
             "AND Numf < " +
             std::to_string(20 + (i % 30));
    default:
      return "SELECT F.Title FROM FILM F, APPEARS_IN A WHERE "
             "F.Numf = A.Numf AND F.Numf = " +
             std::to_string(1 + (i % 50));
  }
}

constexpr size_t kWorkload = 48;

std::string BenchPersistPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp ? tmp : "/tmp") + "/eds_bench_persist.eds";
}

// Serves the workload through `service` (workers=0, pumped inline) and
// returns the total rewrite time spent.
uint64_t ServeWorkload(QueryService& service) {
  uint64_t rewrite_ns = 0;
  for (size_t i = 0; i < kWorkload; ++i) {
    auto future = service.Submit(WorkloadQuery(i));
    if (!service.ServeQueuedForTesting()) {
      throw std::runtime_error("queue unexpectedly empty");
    }
    auto served = future.get();
    Check(served.status(), "serve");
    rewrite_ns += served->result.phase_times.rewrite_ns;
    benchmark::DoNotOptimize(served->result.rows);
  }
  return rewrite_ns;
}

// Writes the persisted-cache file the warm benches restart from: one
// service serves the workload once and snapshots at Stop().
void SeedPersistFile(eds::exec::Session* session, const std::string& path) {
  std::remove(path.c_str());
  ServiceOptions options;
  options.workers = 0;
  options.persist_path = path;
  QueryService service(session, options);
  Check(service.Start(), "seed start");
  ServeWorkload(service);
  service.Stop();
}

// The tentpole A/B: process restart with and without a persisted cache
// file. Each iteration is one "restart": construct, Start (warm loads the
// file here), serve the workload, Stop.
void BM_RestartColdVsWarm(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  auto session = MakeFilmDb(100);
  const std::string path = BenchPersistPath();
  if (warm) SeedPersistFile(session.get(), path);
  uint64_t rewrite_ns = 0;
  uint64_t hits = 0, misses = 0, loaded = 0;
  for (auto _ : state) {
    ServiceOptions options;
    options.workers = 0;
    if (warm) {
      options.persist_path = path;
      options.persist_interval_ms = 0;  // measure Start()+serve, not ticks
    }
    QueryService service(session.get(), options);
    Check(service.Start(), "start");
    rewrite_ns = ServeWorkload(service);
    // A warm restart serves from both restored tiers — most queries hit
    // the L0 exact-text cache before the template cache is even consulted —
    // so the hit rate sums the tiers.
    auto cs = service.cache().GetStats();
    auto l0 = service.l0_cache().GetStats();
    hits = cs.hits + l0.hits;
    misses = cs.misses;
    loaded = service.persist_load_stats().ok;
    // Stop() persists again on the warm path; that rewrite of the file is
    // part of what a real restart pays, so it stays inside the timing.
    service.Stop();
  }
  state.counters["rewrite_ns"] = static_cast<double>(rewrite_ns);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
  state.counters["hit_rate"] =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  benchmark::DoNotOptimize(loaded);
  if (warm) std::remove(path.c_str());
}
BENCHMARK(BM_RestartColdVsWarm)
    ->Arg(0)  // cold: empty caches, every template pays the rewrite
    ->Arg(1)  // warm: caches restored from the persisted file at Start()
    ->ArgNames({"warm"});

// Snapshot cost: one SavePersistNow() per iteration over populated caches
// (serialize + CRC + tmp write + fsync + rename). This is what a periodic
// persist tick costs the service.
void BM_PersistSave(benchmark::State& state) {
  auto session = MakeFilmDb(100);
  const std::string path = BenchPersistPath();
  std::remove(path.c_str());
  ServiceOptions options;
  options.workers = 0;
  options.persist_path = path;
  QueryService service(session.get(), options);
  Check(service.Start(), "start");
  ServeWorkload(service);
  for (auto _ : state) {
    Check(service.SavePersistNow(), "save");
  }
  state.counters["saved_plans"] =
      static_cast<double>(service.persist_save_stats().plans);
  service.Stop();
  std::remove(path.c_str());
}
BENCHMARK(BM_PersistSave);

// Paranoid-loader cost: decode + CRC-check + parse every record of a
// seeded file, without installing anything (the pure trust-nothing read).
void BM_PersistLoad(benchmark::State& state) {
  auto session = MakeFilmDb(100);
  const std::string path = BenchPersistPath();
  SeedPersistFile(session.get(), path);
  size_t records = 0;
  for (auto _ : state) {
    LoadStats stats;
    auto image = CheckResult(LoadPersistFile(path, PersistOptions{}, &stats),
                             "load");
    records = image.plans.size() + image.l0.size();
    benchmark::DoNotOptimize(image);
  }
  state.counters["rows_out"] = static_cast<double>(records);
  std::remove(path.c_str());
}
BENCHMARK(BM_PersistLoad);

}  // namespace

BENCHMARK_MAIN();
