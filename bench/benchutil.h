#ifndef EDS_BENCH_BENCHUTIL_H_
#define EDS_BENCH_BENCHUTIL_H_

#include <memory>
#include <random>
#include <string>

#include "benchmark/benchmark.h"
#include "exec/session.h"

namespace eds::benchutil {

// Aborts the benchmark on error — setup failures must be loud.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::string message = std::string(what) + ": " + status.ToString();
    throw std::runtime_error(message);
  }
}

template <typename T>
T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    throw std::runtime_error(std::string(what) + ": " +
                             r.status().ToString());
  }
  return std::move(r).value();
}

// A film database scaled to `films` films, 4 actors per film on average,
// with ~20% adventure films. Deterministic.
inline std::unique_ptr<exec::Session> MakeFilmDb(int films) {
  auto session = std::make_unique<exec::Session>();
  Check(session->ExecuteScript(R"(
    TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction',
                                  'Western');
    TYPE Person OBJECT TUPLE (Name : CHAR);
    TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC);
    TYPE SetCategory SET OF Category;
    TABLE FILM (Numf : NUMERIC, Title : CHAR, Categories : SetCategory);
    TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor);
  )"),
        "film schema");
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> salary(5000, 20000);
  std::uniform_int_distribution<int> cat(0, 3);
  static const char* kCats[] = {"Comedy", "Adventure", "Science Fiction",
                                "Western"};
  using value::Value;
  // A pool of actors, ~1 per film.
  std::vector<Value> actors;
  for (int i = 0; i < films; ++i) {
    actors.push_back(CheckResult(
        session->NewObject("Actor",
                           {{"Name", Value::String("A" + std::to_string(i))},
                            {"Salary", Value::Int(salary(rng))}}),
        "actor"));
  }
  for (int f = 1; f <= films; ++f) {
    std::vector<Value> cats = {Value::String(kCats[cat(rng)])};
    if (f % 5 == 0) cats.push_back(Value::String("Adventure"));
    Check(session->InsertRow(
              "FILM", {Value::Int(f), Value::String("F" + std::to_string(f)),
                       Value::Set(std::move(cats))}),
          "film row");
    for (int a = 0; a < 4; ++a) {
      Check(session->InsertRow(
                "APPEARS_IN",
                {Value::Int(f),
                 actors[static_cast<size_t>((f * 7 + a * 13) % films)]}),
            "appears_in row");
    }
  }
  return session;
}

// A chain graph 1 -> 2 -> ... -> n in table BEATS with the Fig. 5
// transitive-closure view BETTER_THAN(W, L). With `extra_edges`, adds
// deterministic skip edges for denser closures.
inline std::unique_ptr<exec::Session> MakeGraphDb(int nodes,
                                                  int extra_edges = 0) {
  auto session = std::make_unique<exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE BEATS (Winner : INT, Loser : INT);
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"),
        "graph schema");
  using value::Value;
  for (int i = 1; i < nodes; ++i) {
    Check(session->InsertRow("BEATS", {Value::Int(i), Value::Int(i + 1)}),
          "edge");
  }
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> node(1, nodes);
  for (int e = 0; e < extra_edges; ++e) {
    int a = node(rng), b = node(rng);
    if (a == b) continue;
    Check(session->InsertRow("BEATS", {Value::Int(a), Value::Int(b)}),
          "extra edge");
  }
  return session;
}

// Runs one query and reports executor-side work as counters, plus the
// per-phase wall times (ns of the last iteration) so BENCH trajectories
// carry a phase breakdown alongside ns/op.
inline void ReportExecWork(benchmark::State& state,
                           const exec::QueryResult& result) {
  state.counters["rows_out"] = static_cast<double>(result.rows.size());
  state.counters["rows_scanned"] =
      static_cast<double>(result.exec_stats.rows_scanned);
  state.counters["qual_evals"] =
      static_cast<double>(result.exec_stats.qual_evaluations);
  state.counters["fix_tuples"] =
      static_cast<double>(result.exec_stats.fix_tuples);
  state.counters["rewrites"] =
      static_cast<double>(result.rewrite_stats.applications);
  state.counters["rewrite_ns"] =
      static_cast<double>(result.phase_times.rewrite_ns);
  state.counters["exec_ns"] = static_cast<double>(result.phase_times.exec_ns);
}

}  // namespace eds::benchutil

#endif  // EDS_BENCH_BENCHUTIL_H_
