// Experiment §4.2 / §7 — the control trade-off: rewrite time and resulting
// plan quality as a function of the semantic block's budget ("if one stops
// too early ... the logical optimization can actually complicate the
// query"; "limits can even be adjusted"). Plus matcher micro-benchmarks
// (the per-condition-check cost that the budget counts).
#include "benchutil.h"

#include "rewrite/match.h"
#include "rules/optimizer.h"
#include "term/parser.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;

const char* kCategoryDomainConstraint = R"(
  ic_category_domain :
    MEMBER(x, c) / ISA(c, SetCategory)
    --> MEMBER(x, c) AND MEMBER(x, SET('Comedy', 'Adventure',
                                       'Science Fiction', 'Western')) / ;
)";

// Budget sweep: semantic_limit from 0 to large; counters report whether
// the inconsistency was detected (plan quality) and the condition checks
// spent (rewrite cost). The paper's trade-off: cost rises with the limit;
// quality jumps once the budget suffices.
void BM_SemanticBudget(benchmark::State& state) {
  const int64_t budget = state.range(0);
  auto session = MakeFilmDb(500);
  Check(session->AddConstraint("category_domain", kCategoryDomainConstraint),
        "constraint");
  eds::rules::OptimizerOptions options;
  options.semantic_limit = budget;
  auto optimizer =
      eds::rules::MakeDefaultOptimizer(&session->catalog(), options);
  Check(optimizer.status(), "optimizer");
  auto raw = session->Translate(
      "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
  Check(raw.status(), "translate");
  for (auto _ : state) {
    auto out = (*optimizer)->Rewrite(*raw);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    state.counters["cond_checks"] =
        static_cast<double>(out->stats.condition_checks);
    state.counters["detected"] =
        out->term->ToString().find("FALSE") != std::string::npos ? 1 : 0;
  }
}
BENCHMARK(BM_SemanticBudget)->Arg(0)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

// End-to-end time (rewrite + execute) under the same sweep: the optimum
// sits at a moderate budget, the paper's recommended operating point.
void BM_SemanticBudgetEndToEnd(benchmark::State& state) {
  const int64_t budget = state.range(0);
  eds::rules::OptimizerOptions options;
  options.semantic_limit = budget;
  auto session = std::make_unique<eds::exec::Session>(options);
  Check(session->ExecuteScript(R"(
    TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction',
                                  'Western');
    TYPE SetCategory SET OF Category;
    TABLE FILM (Numf : NUMERIC, Title : CHAR, Categories : SetCategory);
  )"),
        "schema");
  using eds::value::Value;
  for (int f = 1; f <= 5000; ++f) {
    Check(session->InsertRow(
              "FILM", {Value::Int(f), Value::String("F"),
                       Value::Set({Value::String("Comedy")})}),
          "row");
  }
  Check(session->AddConstraint("category_domain", kCategoryDomainConstraint),
        "constraint");
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)");
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    state.counters["rows_scanned"] =
        static_cast<double>(result->exec_stats.rows_scanned);
  }
}
BENCHMARK(BM_SemanticBudgetEndToEnd)->Arg(0)->Arg(8)->Arg(512);

// ---- matcher micro-benchmarks: the unit the budget counts ----

void BM_MatchSimple(benchmark::State& state) {
  auto pattern = eds::term::ParseTerm("F(x, G(y))").value();
  auto subject = eds::term::ParseTerm("F(1, G(2))").value();
  for (auto _ : state) {
    eds::term::Bindings env;
    bool m = eds::rewrite::MatchFirst(pattern, subject, &env);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchSimple);

void BM_MatchCollectionVarSplits(benchmark::State& state) {
  // x* / v* splits over an n-element list: the backtracking cost.
  const int n = static_cast<int>(state.range(0));
  std::string subject_text = "F(LIST(";
  for (int i = 0; i < n; ++i) {
    subject_text += (i ? ", e" : "e") + std::to_string(i) + "()";
  }
  subject_text += ", G(1)))";
  auto pattern = eds::term::ParseTerm("F(LIST(x*, G(y), v*))").value();
  auto subject = eds::term::ParseTerm(subject_text).value();
  for (auto _ : state) {
    eds::term::Bindings env;
    bool m = eds::rewrite::MatchFirst(pattern, subject, &env);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchCollectionVarSplits)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_MatchSetPermutation(benchmark::State& state) {
  // SET patterns try assignments: G(y, 2) must be located among n decoys.
  const int n = static_cast<int>(state.range(0));
  std::string subject_text = "F(SET(";
  for (int i = 0; i < n; ++i) {
    subject_text += (i ? ", G(e" : "G(e") + std::to_string(i) + "(), 1)";
  }
  subject_text += ", G(t(), 2)))";
  auto pattern = eds::term::ParseTerm("F(SET(x*, G(y, 2)))").value();
  auto subject = eds::term::ParseTerm(subject_text).value();
  for (auto _ : state) {
    eds::term::Bindings env;
    bool m = eds::rewrite::MatchFirst(pattern, subject, &env);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchSetPermutation)->Arg(2)->Arg(8)->Arg(32);

void BM_MatchDeepQueryNoMatch(benchmark::State& state) {
  // The common case during traversal: a rule that does not match; the
  // QuickReject path must keep this cheap.
  auto pattern = eds::term::ParseTerm(
                     "SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)")
                     .value();
  auto subject =
      eds::term::ParseTerm(
          "SEARCH(LIST(RELATION('A'), RELATION('B')), ($1.1 = $2.1), "
          "LIST($1.1))")
          .value();
  for (auto _ : state) {
    eds::term::Bindings env;
    bool m = eds::rewrite::MatchFirst(pattern, subject, &env);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchDeepQueryNoMatch);

}  // namespace

BENCHMARK_MAIN();
