// Experiment Fig. 8 — operation permutation: pushing a search through a
// UNION (fewer rows survive the per-branch filters before the union's
// duplicate elimination) and through a NEST (fewer rows get grouped).
// Sweeps input size; the win grows with the filtered-away fraction.
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::value::Value;

// Two part tables and a union view over them.
std::unique_ptr<eds::exec::Session> MakeUnionDb(int rows_per_branch) {
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE CURRENT_ORDERS (Id : INT, Amount : INT);
    CREATE TABLE ARCHIVED_ORDERS (Id : INT, Amount : INT);
    CREATE VIEW ALL_ORDERS (Id, Amount) AS (
      SELECT Id, Amount FROM CURRENT_ORDERS
      UNION
      SELECT Id, Amount FROM ARCHIVED_ORDERS );
  )"),
        "union schema");
  for (int i = 0; i < rows_per_branch; ++i) {
    Check(session->InsertRow("CURRENT_ORDERS",
                             {Value::Int(i), Value::Int(i % 100)}),
          "current");
    Check(session->InsertRow("ARCHIVED_ORDERS",
                             {Value::Int(i + rows_per_branch),
                              Value::Int(i % 100)}),
          "archived");
  }
  return session;
}

void BM_PushThroughUnion(benchmark::State& state, bool rewrite) {
  auto session = MakeUnionDb(static_cast<int>(state.range(0)));
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result =
        session->Query("SELECT Id FROM ALL_ORDERS WHERE Id = 7", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Union_Raw(benchmark::State& state) {
  BM_PushThroughUnion(state, false);
}
void BM_Union_Pushed(benchmark::State& state) {
  BM_PushThroughUnion(state, true);
}
BENCHMARK(BM_Union_Raw)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Union_Pushed)->Arg(100)->Arg(1000)->Arg(10000);

// Selectivity sweep at fixed size: Amount = k selects 1% of rows per k;
// Amount < k sweeps from selective to non-selective, showing where pushing
// stops paying (the crossover: with ~100% selectivity the pushed and raw
// plans do the same work, so the rewrite gain approaches zero but never
// goes negative on this executor).
void BM_Union_SelectivitySweep(benchmark::State& state, bool rewrite) {
  auto session = MakeUnionDb(5000);
  const int threshold = static_cast<int>(state.range(0));
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  std::string query = "SELECT Id FROM ALL_ORDERS WHERE Amount < " +
                      std::to_string(threshold);
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_UnionSweep_Raw(benchmark::State& state) {
  BM_Union_SelectivitySweep(state, false);
}
void BM_UnionSweep_Pushed(benchmark::State& state) {
  BM_Union_SelectivitySweep(state, true);
}
BENCHMARK(BM_UnionSweep_Raw)->Arg(1)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK(BM_UnionSweep_Pushed)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// Push through NEST: the nested view groups APPEARS_IN rows per film; a
// selective predicate on the film id moves below the NEST.
void BM_PushThroughNest(benchmark::State& state, bool rewrite) {
  auto session = eds::benchutil::MakeFilmDb(static_cast<int>(state.range(0)));
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmCast (Numf, Actors) AS
      SELECT Numf, MakeSet(Refactor) FROM APPEARS_IN GROUP BY Numf;
  )"),
        "nest view");
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Numf FROM FilmCast WHERE Numf = 3", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Nest_Raw(benchmark::State& state) { BM_PushThroughNest(state, false); }
void BM_Nest_Pushed(benchmark::State& state) {
  BM_PushThroughNest(state, true);
}
BENCHMARK(BM_Nest_Raw)->Arg(100)->Arg(1000)->Arg(5000);
BENCHMARK(BM_Nest_Pushed)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
