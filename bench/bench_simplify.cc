// Experiment Fig. 12 — predicate simplification: rewrite cost and
// execution payoff for qualifications with foldable subexpressions,
// redundant conjuncts, and contradictions, swept over conjunct count.
#include "benchutil.h"

#include "rewrite/engine.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;

// Builds a qualification with `n` conjuncts: a mix of real predicates,
// constant-foldable noise (i+1 > i), and duplicates.
std::string NoisyQual(int n) {
  std::string qual = "Numf > 0";
  for (int i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0:
        qual += " AND " + std::to_string(i + 1) + " > " + std::to_string(i);
        break;
      case 1:
        qual += " AND Numf > 0";  // duplicate
        break;
      default:
        qual += " AND NOT (1 > 2)";
        break;
    }
  }
  return qual;
}

void BM_NoisyQualQuery(benchmark::State& state, bool rewrite) {
  auto session = MakeFilmDb(2000);
  std::string query =
      "SELECT Title FROM FILM WHERE " + NoisyQual(
          static_cast<int>(state.range(0)));
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Noisy_Raw(benchmark::State& state) {
  BM_NoisyQualQuery(state, false);
}
void BM_Noisy_Simplified(benchmark::State& state) {
  BM_NoisyQualQuery(state, true);
}
BENCHMARK(BM_Noisy_Raw)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_Noisy_Simplified)->Arg(2)->Arg(8)->Arg(32);

// Contradictions short-circuit execution entirely.
void BM_Contradiction(benchmark::State& state, bool rewrite) {
  auto session = MakeFilmDb(static_cast<int>(state.range(0)));
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Title FROM FILM WHERE Numf > 10 AND Numf <= 10", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Contradiction_Raw(benchmark::State& state) {
  BM_Contradiction(state, false);
}
void BM_Contradiction_Simplified(benchmark::State& state) {
  BM_Contradiction(state, true);
}
BENCHMARK(BM_Contradiction_Raw)->Arg(1000)->Arg(20000);
BENCHMARK(BM_Contradiction_Simplified)->Arg(1000)->Arg(20000);

// Pure rewriter cost on the simplification block alone (no execution):
// saturation over growing conjunctions.
void BM_SimplifyRewriteCost(benchmark::State& state) {
  eds::catalog::Catalog catalog;
  eds::rewrite::BuiltinRegistry registry;
  registry.InstallStandard();
  eds::rules::InstallSemanticBuiltins(&registry);
  auto program = eds::ruledsl::CompileRuleSource(
      std::string(eds::rules::SimplifyRuleSource()) +
          eds::rules::SemanticMethodRuleSource(),
      registry);
  Check(program.status(), "compile");
  eds::rewrite::Engine engine(&catalog, &registry, std::move(*program));
  std::string qual = "x0() = x0()";
  for (int i = 1; i < state.range(0); ++i) {
    qual += " AND (" + std::to_string(i) + " + 1 > " + std::to_string(i) +
            ")";
  }
  auto term = eds::term::ParseTerm(qual);
  Check(term.status(), "parse");
  for (auto _ : state) {
    auto out = engine.Rewrite(*term);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    state.counters["rule_apps"] =
        static_cast<double>(out->stats.applications);
  }
}
BENCHMARK(BM_SimplifyRewriteCost)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
