// Governor overhead A/B: the same rewrite and end-to-end query workloads
// with no guard (the shipping default), with a guard armed on limits far
// too generous to trip, and — for the rewrite — with a cancellation token
// attached. The guard-off variants must track the pre-governor numbers
// (every chokepoint is one branch on a null guard pointer) and guard-on
// must stay within noise (≤2% on rewrite_ns): the expensive probes are
// stride-amortized. BENCH_4.json records the claim; the smoke run wired
// into ctest (label `smokebench;chaos`) keeps it from silently rotting.
#include "benchutil.h"
#include "gov/governor.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeFilmDb;
using eds::benchutil::MakeGraphDb;

std::unique_ptr<eds::exec::Session> MakeNestedDb(int films) {
  auto session = MakeFilmDb(films);
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"),
        "nested view");
  return session;
}

// Ceilings no workload here approaches: the guard arms, probes, and never
// trips, which is the production steady state being priced.
eds::gov::GovernorLimits GenerousLimits() {
  eds::gov::GovernorLimits limits;
  limits.deadline_ms = 600000;
  limits.max_term_nodes = 1u << 30;
  limits.max_rows = 1u << 30;
  return limits;
}

enum class Mode { kOff, kGuarded, kGuardedCancelToken };

// Rewrite phase only, nested-view plan: the guard is checked at every
// rule-candidate consideration, the engine's innermost loop.
void BM_RewriteGov(benchmark::State& state, Mode mode) {
  auto session = MakeNestedDb(50);
  auto plan = CheckResult(
      session->Translate(
          "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', "
          "Categories) AND ALL(Salary(Actors) > 10000)"),
      "translate");
  eds::gov::CancelToken token;
  eds::gov::GovernorLimits limits = GenerousLimits();
  if (mode == Mode::kGuardedCancelToken) limits.cancel = &token;
  eds::gov::QueryGuard guard;
  eds::rewrite::RewriteOptions options;
  if (mode != Mode::kOff) options.guard = &guard;
  for (auto _ : state) {
    if (mode != Mode::kOff) guard.Arm(limits);
    auto out = session->Rewrite(plan, options);
    Check(out.status(), "rewrite");
    if (out->stats.trip.tripped()) {
      state.SkipWithError("guard tripped on generous limits");
      return;
    }
    benchmark::DoNotOptimize(out->term);
  }
}
void BM_Rewrite_NoGuard(benchmark::State& state) {
  BM_RewriteGov(state, Mode::kOff);
}
void BM_Rewrite_Guarded(benchmark::State& state) {
  BM_RewriteGov(state, Mode::kGuarded);
}
void BM_Rewrite_GuardedCancel(benchmark::State& state) {
  BM_RewriteGov(state, Mode::kGuardedCancelToken);
}
BENCHMARK(BM_Rewrite_NoGuard);
BENCHMARK(BM_Rewrite_Guarded);
BENCHMARK(BM_Rewrite_GuardedCancel);

// End to end on the Fig. 5 transitive closure: per-operator checks and
// per-output-row accounting are the executor-side governor costs.
void BM_QueryGov(benchmark::State& state, Mode mode) {
  auto session = MakeGraphDb(60);
  eds::gov::CancelToken token;
  eds::exec::QueryOptions options;
  if (mode != Mode::kOff) {
    options.limits = GenerousLimits();
    if (mode == Mode::kGuardedCancelToken) options.limits.cancel = &token;
  }
  for (auto _ : state) {
    auto result =
        session->Query("SELECT L FROM BETTER_THAN WHERE W = 1", options);
    Check(result.status(), "query");
    if (!result->warnings.empty()) {
      state.SkipWithError("governed query warned on generous limits");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Query_NoGuard(benchmark::State& state) {
  BM_QueryGov(state, Mode::kOff);
}
void BM_Query_Guarded(benchmark::State& state) {
  BM_QueryGov(state, Mode::kGuarded);
}
void BM_Query_GuardedCancel(benchmark::State& state) {
  BM_QueryGov(state, Mode::kGuardedCancelToken);
}
BENCHMARK(BM_Query_NoGuard);
BENCHMARK(BM_Query_Guarded);
BENCHMARK(BM_Query_GuardedCancel);

}  // namespace

BENCHMARK_MAIN();
