// Experiment Fig. 4 — the nested view (GROUP BY + MakeSet -> NEST) and the
// ALL quantifier: query cost with and without the rewriter's nest
// pushdown, swept over database size.
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;

std::unique_ptr<eds::exec::Session> MakeNestedDb(int films) {
  auto session = MakeFilmDb(films);
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"),
        "nested view");
  return session;
}

// The Fig. 4 query verbatim: quantifier over the nested set.
void BM_Fig4Query(benchmark::State& state, bool rewrite) {
  auto session = MakeNestedDb(static_cast<int>(state.range(0)));
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) "
        "AND ALL(Salary(Actors) > 10000)",
        options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Fig4_Raw(benchmark::State& state) { BM_Fig4Query(state, false); }
void BM_Fig4_Rewritten(benchmark::State& state) { BM_Fig4Query(state, true); }
BENCHMARK(BM_Fig4_Raw)->Arg(100)->Arg(500)->Arg(2000);
BENCHMARK(BM_Fig4_Rewritten)->Arg(100)->Arg(500)->Arg(2000);

// A selective query on the view's non-nested key: pushdown below the NEST
// skips grouping almost all rows.
void BM_SelectiveNested(benchmark::State& state, bool rewrite) {
  auto session = MakeFilmDb(static_cast<int>(state.range(0)));
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmCast (Numf, Actors) AS
      SELECT Numf, MakeSet(Refactor) FROM APPEARS_IN GROUP BY Numf;
  )"),
        "view");
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(
        "SELECT Numf FROM FilmCast WHERE Numf = 1", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_SelectiveNested_Raw(benchmark::State& state) {
  BM_SelectiveNested(state, false);
}
void BM_SelectiveNested_Pushed(benchmark::State& state) {
  BM_SelectiveNested(state, true);
}
BENCHMARK(BM_SelectiveNested_Raw)->Arg(500)->Arg(5000);
BENCHMARK(BM_SelectiveNested_Pushed)->Arg(500)->Arg(5000);

// Quantifier evaluation itself (the exec substrate): ALL vs EXIST over the
// nested sets, full scan.
void BM_Quantifier(benchmark::State& state, bool universal) {
  auto session = MakeNestedDb(500);
  eds::exec::QueryOptions options;
  std::string query =
      universal
          ? "SELECT Title FROM FilmActors WHERE ALL(Salary(Actors) > 1)"
          : "SELECT Title FROM FilmActors WHERE EXIST(Salary(Actors) > "
            "19999)";
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
  }
}
void BM_Quantifier_All(benchmark::State& state) {
  BM_Quantifier(state, true);
}
void BM_Quantifier_Exist(benchmark::State& state) {
  BM_Quantifier(state, false);
}
BENCHMARK(BM_Quantifier_All);
BENCHMARK(BM_Quantifier_Exist);

// Rewrite phase only: a tower of stacked views (each selecting from the
// previous) expands into a deeply nested SEARCH plan; the engine's
// restart-from-root search makes this the worst case for per-step rescans.
// Translation happens once outside the timed loop — the counter is pure
// Engine::Rewrite cost.
void BM_RewritePhase_DeepNestedView(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto session = MakeNestedDb(50);
  for (int i = 1; i <= depth; ++i) {
    std::string prev =
        i == 1 ? "FILM" : ("NV" + std::to_string(i - 1));
    std::string cols = i == 1 ? "Numf, Numf" : "A, B";
    Check(session->ExecuteScript(
              "CREATE VIEW NV" + std::to_string(i) + " (A, B) AS SELECT " +
              cols + " FROM " + prev + " WHERE " +
              (i == 1 ? "Numf" : "A") + " > " + std::to_string(i) + ";"),
          "stacked view");
  }
  auto plan = eds::benchutil::CheckResult(
      session->Translate("SELECT A FROM NV" + std::to_string(depth) +
                         " WHERE A = 5 AND B > 0"),
      "translate");
  size_t applications = 0, checks = 0;
  for (auto _ : state) {
    auto out = session->Rewrite(plan);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    applications = out->stats.applications;
    checks = out->stats.condition_checks;
  }
  state.counters["rewrites"] = static_cast<double>(applications);
  state.counters["cond_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_RewritePhase_DeepNestedView)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
