// Experiment Fig. 9 / §5.3 — fixpoint reduction: the query
// σ(L = n)(BETTER_THAN) over the transitive closure of a chain graph,
// swept over graph size, in three configurations:
//   naive      no rewriting, naive fixpoint iteration
//   seminaive  no rewriting, semi-naive iteration (executor ablation)
//   magic      Fig. 9 rewriting (Alexander/Magic) + semi-naive
// The paper's claim: focusing the recursion on relevant facts dominates;
// the chain's full closure is O(n^2) tuples while the focused cone is O(n).
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeGraphDb;

enum class Mode { kNaive, kSeminaive, kMagic };

void BM_ClosureQuery(benchmark::State& state, Mode mode) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(nodes);
  std::string query =
      "SELECT W FROM BETTER_THAN WHERE L = " + std::to_string(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = mode == Mode::kMagic;
  options.exec_options.seminaive = mode != Mode::kNaive;
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    if (result->rows.size() != static_cast<size_t>(nodes - 1)) {
      state.SkipWithError("wrong closure result");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}

void BM_Closure_Naive(benchmark::State& state) {
  BM_ClosureQuery(state, Mode::kNaive);
}
void BM_Closure_Seminaive(benchmark::State& state) {
  BM_ClosureQuery(state, Mode::kSeminaive);
}
void BM_Closure_Magic(benchmark::State& state) {
  BM_ClosureQuery(state, Mode::kMagic);
}
BENCHMARK(BM_Closure_Naive)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_Closure_Seminaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Closure_Magic)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Denser graphs: skip edges multiply paths; magic still computes only the
// target cone.
void BM_DenseClosure(benchmark::State& state, bool magic) {
  const int nodes = 32;
  auto session = MakeGraphDb(nodes, /*extra_edges=*/nodes / 2);
  std::string query =
      "SELECT W FROM BETTER_THAN WHERE L = " + std::to_string(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = magic;
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Dense_Unfocused(benchmark::State& state) {
  BM_DenseClosure(state, false);
}
void BM_Dense_Magic(benchmark::State& state) { BM_DenseClosure(state, true); }
BENCHMARK(BM_Dense_Unfocused);
BENCHMARK(BM_Dense_Magic);

// Forward adornment (W bound) uses the forward seeded closure.
void BM_ForwardBound(benchmark::State& state, bool magic) {
  const int nodes = 48;
  auto session = MakeGraphDb(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = magic;
  for (auto _ : state) {
    auto result =
        session->Query("SELECT L FROM BETTER_THAN WHERE W = 1", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Forward_Unfocused(benchmark::State& state) {
  BM_ForwardBound(state, false);
}
void BM_Forward_Magic(benchmark::State& state) {
  BM_ForwardBound(state, true);
}
BENCHMARK(BM_Forward_Unfocused);
BENCHMARK(BM_Forward_Magic);

// Free query (no bound column): Fig. 9's rule must not fire, and the cost
// is the full closure either way — the "rewriting cannot help here" floor.
void BM_FullClosure(benchmark::State& state) {
  const int nodes = 24;
  auto session = MakeGraphDb(nodes);
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN");
    Check(result.status(), "query");
    if (result->rewrite_stats.applications_by_rule.count(
            "push_search_fixpoint") != 0) {
      state.SkipWithError("magic fired without a bound column");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
BENCHMARK(BM_FullClosure);

}  // namespace

BENCHMARK_MAIN();
