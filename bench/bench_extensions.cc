// Ablation — the extension rule library (rules/extensions.h): what the
// optional rules buy on set-operation-heavy and disjunctive queries, and
// what the larger rule set costs in rewrite time (more rules = more
// condition checks per node, the §4.2 accounting).
#include "benchutil.h"

#include "rewrite/engine.h"
#include "rules/extensions.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "ruledsl/compiler.h"
#include "term/parser.h"

namespace {

using eds::benchutil::Check;
using eds::value::Value;

std::unique_ptr<eds::exec::Session> MakeOrdersDb(int rows) {
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE ORDERS (Id : INT, Amount : INT);
    CREATE TABLE CANCELLED (Id : INT, Amount : INT);
  )"),
        "schema");
  for (int i = 0; i < rows; ++i) {
    Check(session->InsertRow("ORDERS", {Value::Int(i), Value::Int(i % 97)}),
          "order");
    if (i % 3 == 0) {
      Check(session->InsertRow("CANCELLED",
                               {Value::Int(i), Value::Int(i % 97)}),
            "cancelled");
    }
  }
  return session;
}

std::unique_ptr<eds::rewrite::Engine> MakeEngine(
    const eds::catalog::Catalog* catalog,
    eds::rewrite::BuiltinRegistry* registry, bool with_extensions) {
  registry->InstallStandard();
  std::string source =
      std::string(eds::rules::MergingRuleSource()) +
      eds::rules::PermutationRuleSource();
  std::string block_rules =
      "search_merge, union_merge, union_collapse, push_search_union";
  if (with_extensions) {
    source += eds::rules::ExtensionRuleSource();
    block_rules +=
        ", push_search_difference, push_search_intersect, or_to_union, "
        "intersect_self, difference_self";
  }
  source += "block(main, {" + block_rules + "}, inf) ;\nseq({main}, 2) ;";
  auto program = eds::ruledsl::CompileRuleSource(source, *registry);
  Check(program.status(), "compile");
  return std::make_unique<eds::rewrite::Engine>(catalog, registry,
                                                std::move(*program));
}

// Selective filter over a DIFFERENCE: with the extension rules the filter
// lands on both sides before the set compare.
void BM_DifferenceQuery(benchmark::State& state, bool extensions) {
  auto session = MakeOrdersDb(static_cast<int>(state.range(0)));
  eds::rewrite::BuiltinRegistry registry;
  auto engine = MakeEngine(&session->catalog(), &registry, extensions);
  auto raw = eds::term::ParseTerm(
      "SEARCH(LIST(DIFFERENCE(RELATION('ORDERS'), RELATION('CANCELLED'))), "
      "($1.2 = 7), LIST($1.1))");
  Check(raw.status(), "parse");
  auto rewritten = engine->Rewrite(*raw);
  Check(rewritten.status(), "rewrite");
  for (auto _ : state) {
    eds::exec::ExecStats stats;
    auto rows = session->Run(rewritten->term, {}, &stats);
    Check(rows.status(), "run");
    benchmark::DoNotOptimize(*rows);
    state.counters["qual_evals"] =
        static_cast<double>(stats.qual_evaluations);
    state.counters["rows_out"] = static_cast<double>(rows->size());
  }
}
void BM_Difference_Base(benchmark::State& state) {
  BM_DifferenceQuery(state, false);
}
void BM_Difference_Extended(benchmark::State& state) {
  BM_DifferenceQuery(state, true);
}
BENCHMARK(BM_Difference_Base)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Difference_Extended)->Arg(1000)->Arg(10000);

// Rewrite-time cost of the larger rule set on a plain query that none of
// the extension rules touch: the price of a bigger knowledge base.
void BM_RuleSetOverhead(benchmark::State& state, bool extensions) {
  auto session = MakeOrdersDb(10);
  eds::rewrite::BuiltinRegistry registry;
  auto engine = MakeEngine(&session->catalog(), &registry, extensions);
  auto raw = eds::term::ParseTerm(
      "SEARCH(LIST(SEARCH(LIST(RELATION('ORDERS')), ($1.2 > 5), "
      "LIST($1.1, $1.2))), ($1.1 < 100), LIST($1.1))");
  Check(raw.status(), "parse");
  for (auto _ : state) {
    auto out = engine->Rewrite(*raw);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    state.counters["cond_checks"] =
        static_cast<double>(out->stats.condition_checks);
  }
}
void BM_Overhead_Base(benchmark::State& state) {
  BM_RuleSetOverhead(state, false);
}
void BM_Overhead_Extended(benchmark::State& state) {
  BM_RuleSetOverhead(state, true);
}
BENCHMARK(BM_Overhead_Base);
BENCHMARK(BM_Overhead_Extended);

}  // namespace

BENCHMARK_MAIN();
