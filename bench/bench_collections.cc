// Experiment Fig. 1 — the generic collection ADT library: costs of the
// builtin collection functions over growing collections (the substrate
// every qualification with MEMBER/UNION/... pays per tuple).
#include <random>

#include "benchutil.h"
#include "value/collection_lib.h"

namespace {

using eds::value::FunctionLibrary;
using eds::value::Value;

Value RandomSet(int size, int seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> elem(0, size * 4);
  std::vector<Value> elems;
  elems.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) elems.push_back(Value::Int(elem(rng)));
  return Value::Set(std::move(elems));
}

void BM_Member(benchmark::State& state) {
  Value set = RandomSet(static_cast<int>(state.range(0)), 1);
  Value probe = Value::Int(7);
  const FunctionLibrary& lib = FunctionLibrary::Default();
  for (auto _ : state) {
    auto r = lib.Call("MEMBER", {probe, set});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Member)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_SetUnion(benchmark::State& state) {
  Value a = RandomSet(static_cast<int>(state.range(0)), 1);
  Value b = RandomSet(static_cast<int>(state.range(0)), 2);
  const FunctionLibrary& lib = FunctionLibrary::Default();
  for (auto _ : state) {
    auto r = lib.Call("UNION", {a, b});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SetUnion)->Arg(8)->Arg(64)->Arg(512);

void BM_Intersection(benchmark::State& state) {
  Value a = RandomSet(static_cast<int>(state.range(0)), 1);
  Value b = RandomSet(static_cast<int>(state.range(0)), 2);
  const FunctionLibrary& lib = FunctionLibrary::Default();
  for (auto _ : state) {
    auto r = lib.Call("INTERSECTION", {a, b});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Intersection)->Arg(8)->Arg(64)->Arg(512);

void BM_Include(benchmark::State& state) {
  Value big = RandomSet(static_cast<int>(state.range(0)), 1);
  Value small = RandomSet(static_cast<int>(state.range(0)) / 4 + 1, 1);
  const FunctionLibrary& lib = FunctionLibrary::Default();
  for (auto _ : state) {
    auto r = lib.Call("INCLUDE", {small, big});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Include)->Arg(8)->Arg(64)->Arg(512);

void BM_MakeSetCanonicalization(benchmark::State& state) {
  // Set construction sorts + dedups: the canonical-form cost.
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> elem(0, 1000);
  std::vector<Value> elems;
  for (int i = 0; i < state.range(0); ++i) {
    elems.push_back(Value::Int(elem(rng)));
  }
  for (auto _ : state) {
    Value s = Value::Set(elems);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_MakeSetCanonicalization)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_ConvertBagToSet(benchmark::State& state) {
  std::vector<Value> elems;
  for (int i = 0; i < state.range(0); ++i) {
    elems.push_back(Value::Int(i % 16));
  }
  Value bag = Value::Bag(std::move(elems));
  const FunctionLibrary& lib = FunctionLibrary::Default();
  for (auto _ : state) {
    auto r = lib.Call("TOSET", {bag});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConvertBagToSet)->Arg(64)->Arg(512);

void BM_DeepCompareNested(benchmark::State& state) {
  // Nested collections: LIST of SETs, the worst case for row dedup.
  std::vector<Value> rows_a, rows_b;
  for (int i = 0; i < state.range(0); ++i) {
    rows_a.push_back(RandomSet(16, i));
    rows_b.push_back(RandomSet(16, i));
  }
  Value a = Value::List(rows_a), b = Value::List(rows_b);
  for (auto _ : state) {
    int c = eds::value::Compare(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_DeepCompareNested)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
