// Executor substrate A/B: the row engine vs the columnar batch kernels on
// exec-dominated plans (docs/executor.md). Every workload appears twice —
// _Row forces ExecOptions::vectorized = false (the oracle), _Vec leaves the
// default on — so the BENCH trajectory carries the speedup explicitly.
// Rewrite is off throughout: these measure the execution phase, and the
// exec_ns counter is the wall time of the last Run() for exactly that
// phase (ns/op includes it plus result teardown).
#include "benchutil.h"
#include "obs/trace.h"
#include "term/parser.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeGraphDb;
using eds::value::Value;

eds::term::TermRef Plan(const std::string& text) {
  return CheckResult(eds::term::ParseTerm(text), "plan");
}

void ReportRunWork(benchmark::State& state, const eds::exec::Rows& rows,
                   const eds::exec::ExecStats& stats, uint64_t exec_ns) {
  state.counters["rows_out"] = static_cast<double>(rows.size());
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["qual_evals"] =
      static_cast<double>(stats.qual_evaluations);
  state.counters["batches"] = static_cast<double>(stats.batches);
  state.counters["vec_fallbacks"] =
      static_cast<double>(stats.vec_fallbacks);
  state.counters["value_copies"] = static_cast<double>(stats.value_copies);
  state.counters["exec_ns"] = static_cast<double>(exec_ns);
}

// One Run() per iteration against a prebuilt session; the helper drives
// both variants so Row/Vec differ in exactly one option bit.
void RunPlanBench(benchmark::State& state, eds::exec::Session* session,
                  const eds::term::TermRef& plan, bool vectorized,
                  size_t expected_rows) {
  eds::exec::ExecOptions options;
  options.vectorized = vectorized;
  for (auto _ : state) {
    eds::exec::ExecStats stats;
    const uint64_t t0 = eds::obs::NowNs();
    auto rows = session->Run(plan, options, &stats);
    const uint64_t exec_ns = eds::obs::NowNs() - t0;
    Check(rows.status(), "run");
    if (rows->size() != expected_rows) {
      state.SkipWithError("wrong result size");
      return;
    }
    benchmark::DoNotOptimize(*rows);
    ReportRunWork(state, *rows, stats, exec_ns);
  }
}

// ---------------- scan + filter + project ----------------

std::unique_ptr<eds::exec::Session> MakeNumsDb(int rows) {
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(
            "CREATE TABLE NUMS (A : INT, B : INT, C : INT);"),
        "nums schema");
  for (int i = 0; i < rows; ++i) {
    Check(session->InsertRow("NUMS", {Value::Int(i), Value::Int(i % 997),
                                      Value::Int((i * 3) % 10007)}),
          "nums row");
  }
  return session;
}

constexpr int kNumsRows = 100000;
const char* kScanPlan =
    "SEARCH(LIST(RELATION('NUMS')), (($1.2 > 100) AND ($1.1 < 60000)), "
    "LIST($1.1, $1.3))";

size_t ScanExpected() {
  size_t n = 0;
  for (int i = 0; i < kNumsRows; ++i) {
    if (i % 997 > 100 && i < 60000) ++n;
  }
  return n;
}

void BM_ScanFilterProject_Row(benchmark::State& state) {
  auto session = MakeNumsDb(kNumsRows);
  RunPlanBench(state, session.get(), Plan(kScanPlan), false, ScanExpected());
}
void BM_ScanFilterProject_Vec(benchmark::State& state) {
  auto session = MakeNumsDb(kNumsRows);
  RunPlanBench(state, session.get(), Plan(kScanPlan), true, ScanExpected());
}
BENCHMARK(BM_ScanFilterProject_Row);
BENCHMARK(BM_ScanFilterProject_Vec);

// ---------------- equi join ----------------

// 2000 x 2000 rows, 1000 shared keys appearing twice per side: 4000 output
// pairs. The row engine probes all 4M pairings; the hash kernel builds
// once and probes 2000 times.
std::unique_ptr<eds::exec::Session> MakeJoinDb(int rows, int keys) {
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE LTAB (K : INT, P : INT);
    CREATE TABLE RTAB (K : INT, Q : INT);
  )"),
        "join schema");
  for (int i = 0; i < rows; ++i) {
    Check(session->InsertRow("LTAB", {Value::Int(i % keys), Value::Int(i)}),
          "ltab row");
    Check(session->InsertRow("RTAB", {Value::Int(i % keys),
                                      Value::Int(i * 2)}),
          "rtab row");
  }
  return session;
}

constexpr int kJoinRows = 2000;
constexpr int kJoinKeys = 1000;
const char* kJoinPlan =
    "SEARCH(LIST(RELATION('LTAB'), RELATION('RTAB')), ($1.1 = $2.1), "
    "LIST($1.2, $2.2))";

void BM_EquiJoin_Row(benchmark::State& state) {
  auto session = MakeJoinDb(kJoinRows, kJoinKeys);
  RunPlanBench(state, session.get(), Plan(kJoinPlan), false,
               static_cast<size_t>(kJoinRows) * kJoinRows / kJoinKeys);
}
void BM_EquiJoin_Vec(benchmark::State& state) {
  auto session = MakeJoinDb(kJoinRows, kJoinKeys);
  RunPlanBench(state, session.get(), Plan(kJoinPlan), true,
               static_cast<size_t>(kJoinRows) * kJoinRows / kJoinKeys);
}
BENCHMARK(BM_EquiJoin_Row);
BENCHMARK(BM_EquiJoin_Vec);

// ---------------- dedup ----------------

// 100k rows, 20 copies each of 5000 distinct pairs: the row engine sorts
// with per-value Compare calls, the kernel hash-groups column-major.
std::unique_ptr<eds::exec::Session> MakeDupsDb(int rows, int distinct) {
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript("CREATE TABLE DUPS (A : INT, B : INT);"),
        "dups schema");
  for (int i = 0; i < rows; ++i) {
    Check(session->InsertRow("DUPS",
                             {Value::Int(i % distinct),
                              Value::Int((i * 7) % distinct)}),
          "dups row");
  }
  return session;
}

constexpr int kDupRows = 100000;
constexpr int kDupDistinct = 5000;

void BM_Dedup_Row(benchmark::State& state) {
  auto session = MakeDupsDb(kDupRows, kDupDistinct);
  RunPlanBench(state, session.get(), Plan("DEDUP(RELATION('DUPS'))"), false,
               kDupDistinct);
}
void BM_Dedup_Vec(benchmark::State& state) {
  auto session = MakeDupsDb(kDupRows, kDupDistinct);
  RunPlanBench(state, session.get(), Plan("DEDUP(RELATION('DUPS'))"), true,
               kDupDistinct);
}
BENCHMARK(BM_Dedup_Row);
BENCHMARK(BM_Dedup_Vec);

// ---------------- transitive closure ----------------

// The Fig. 5 recursive view end to end: semi-naive deltas flow through the
// vectorized SEARCH as batches. Rewrite off, full pipeline otherwise.
void BM_Closure(benchmark::State& state, bool vectorized) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = false;
  options.exec_options.vectorized = vectorized;
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN", options);
    Check(result.status(), "query");
    const size_t expected = static_cast<size_t>(nodes) * (nodes - 1) / 2;
    if (result->rows.size() != expected) {
      state.SkipWithError("wrong closure size");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
    state.counters["batches"] =
        static_cast<double>(result->exec_stats.batches);
    state.counters["vec_fallbacks"] =
        static_cast<double>(result->exec_stats.vec_fallbacks);
    state.counters["value_copies"] =
        static_cast<double>(result->exec_stats.value_copies);
  }
}
void BM_TransitiveClosure_Row(benchmark::State& state) {
  BM_Closure(state, false);
}
void BM_TransitiveClosure_Vec(benchmark::State& state) {
  BM_Closure(state, true);
}
BENCHMARK(BM_TransitiveClosure_Row)->Arg(32)->Arg(48);
BENCHMARK(BM_TransitiveClosure_Vec)->Arg(32)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
