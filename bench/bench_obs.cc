// Observability overhead A/B: the same rewrite and end-to-end query
// workloads with tracing/profiling off (the shipping default), with
// per-rule profiling, and with a live span sink. The "off" variants must
// track the pre-obs numbers — every instrumentation site is one branch on
// a null sink pointer — and the smoke run wired into ctest (label
// `smokebench;obs`) keeps that claim tested.
#include "benchutil.h"
#include "obs/trace.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeFilmDb;
using eds::benchutil::MakeGraphDb;

std::unique_ptr<eds::exec::Session> MakeNestedDb(int films) {
  auto session = MakeFilmDb(films);
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"),
        "nested view");
  return session;
}

enum class Mode { kOff, kProfile, kTrace };

// Rewrite phase only, nested-view plan: off vs profile_rules vs span sink.
void BM_RewriteObs(benchmark::State& state, Mode mode) {
  auto session = MakeNestedDb(50);
  auto plan = CheckResult(
      session->Translate(
          "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', "
          "Categories) AND ALL(Salary(Actors) > 10000)"),
      "translate");
  eds::obs::TraceSink sink;
  eds::rewrite::RewriteOptions options;
  if (mode == Mode::kProfile) options.profile_rules = true;
  if (mode == Mode::kTrace) options.trace_sink = &sink;
  for (auto _ : state) {
    sink.Clear();
    auto out = session->Rewrite(plan, options);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
  }
}
void BM_Rewrite_Plain(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kOff);
}
void BM_Rewrite_Profiled(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kProfile);
}
void BM_Rewrite_Traced(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kTrace);
}
BENCHMARK(BM_Rewrite_Plain);
BENCHMARK(BM_Rewrite_Profiled);
BENCHMARK(BM_Rewrite_Traced);

// End to end on the Fig. 5 transitive closure: per-operator and
// per-fixpoint-round spans are the executor's hot instrumentation sites.
void BM_QueryObs(benchmark::State& state, Mode mode) {
  auto session = MakeGraphDb(60);
  eds::obs::TraceSink sink;
  if (mode == Mode::kTrace) session->set_trace_sink(&sink);
  eds::exec::QueryOptions options;
  if (mode == Mode::kProfile) options.rewrite_options.profile_rules = true;
  for (auto _ : state) {
    sink.Clear();
    auto result =
        session->Query("SELECT L FROM BETTER_THAN WHERE W = 1", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Query_Plain(benchmark::State& state) {
  BM_QueryObs(state, Mode::kOff);
}
void BM_Query_Profiled(benchmark::State& state) {
  BM_QueryObs(state, Mode::kProfile);
}
void BM_Query_Traced(benchmark::State& state) {
  BM_QueryObs(state, Mode::kTrace);
}
BENCHMARK(BM_Query_Plain);
BENCHMARK(BM_Query_Profiled);
BENCHMARK(BM_Query_Traced);

}  // namespace

BENCHMARK_MAIN();
