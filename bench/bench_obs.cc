// Observability overhead A/B: the same rewrite and end-to-end query
// workloads with tracing/profiling off (the shipping default), with
// per-rule profiling, and with a live span sink. The "off" variants must
// track the pre-obs numbers — every instrumentation site is one branch on
// a null sink pointer — and the smoke run wired into ctest (label
// `smokebench;obs`) keeps that claim tested.
#include <limits>

#include "benchutil.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "srv/service.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeFilmDb;
using eds::benchutil::MakeGraphDb;

std::unique_ptr<eds::exec::Session> MakeNestedDb(int films) {
  auto session = MakeFilmDb(films);
  Check(session->ExecuteScript(R"(
    CREATE VIEW FilmActors (Title, Categories, Actors) AS
      SELECT Title, Categories, MakeSet(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
      GROUP BY Title, Categories;
  )"),
        "nested view");
  return session;
}

enum class Mode { kOff, kProfile, kTrace };

// Rewrite phase only, nested-view plan: off vs profile_rules vs span sink.
void BM_RewriteObs(benchmark::State& state, Mode mode) {
  auto session = MakeNestedDb(50);
  auto plan = CheckResult(
      session->Translate(
          "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', "
          "Categories) AND ALL(Salary(Actors) > 10000)"),
      "translate");
  eds::obs::TraceSink sink;
  eds::rewrite::RewriteOptions options;
  if (mode == Mode::kProfile) options.profile_rules = true;
  if (mode == Mode::kTrace) options.trace_sink = &sink;
  for (auto _ : state) {
    sink.Clear();
    auto out = session->Rewrite(plan, options);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
  }
}
void BM_Rewrite_Plain(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kOff);
}
void BM_Rewrite_Profiled(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kProfile);
}
void BM_Rewrite_Traced(benchmark::State& state) {
  BM_RewriteObs(state, Mode::kTrace);
}
BENCHMARK(BM_Rewrite_Plain);
BENCHMARK(BM_Rewrite_Profiled);
BENCHMARK(BM_Rewrite_Traced);

// End to end on the Fig. 5 transitive closure: per-operator and
// per-fixpoint-round spans are the executor's hot instrumentation sites.
void BM_QueryObs(benchmark::State& state, Mode mode) {
  auto session = MakeGraphDb(60);
  eds::obs::TraceSink sink;
  if (mode == Mode::kTrace) session->set_trace_sink(&sink);
  eds::exec::QueryOptions options;
  if (mode == Mode::kProfile) options.rewrite_options.profile_rules = true;
  for (auto _ : state) {
    sink.Clear();
    auto result =
        session->Query("SELECT L FROM BETTER_THAN WHERE W = 1", options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Query_Plain(benchmark::State& state) {
  BM_QueryObs(state, Mode::kOff);
}
void BM_Query_Profiled(benchmark::State& state) {
  BM_QueryObs(state, Mode::kProfile);
}
void BM_Query_Traced(benchmark::State& state) {
  BM_QueryObs(state, Mode::kTrace);
}
BENCHMARK(BM_Query_Plain);
BENCHMARK(BM_Query_Profiled);
BENCHMARK(BM_Query_Traced);

// Serving-telemetry overhead A/B on the hottest serve path (the same
// query repeated: L0 hits after the first). Off must track the pre-PR-8
// serve cost — telemetry off is one null branch — while On prices the
// histogram records + flight-recorder append, and OnSlowCapture adds the
// per-query scratch span tracing that slow-query capture arms (threshold
// set to never fire, so this is the steady-state cost, not JSON
// serialization).
enum class TelemetryMode { kOff, kOn, kOnSlowCapture };

void BM_ServeTelemetry(benchmark::State& state, TelemetryMode mode) {
  auto session = MakeGraphDb(60);
  eds::srv::ServiceOptions options;
  options.workers = 0;  // pumped on this thread: no scheduler noise
  options.telemetry = mode != TelemetryMode::kOff;
  if (mode == TelemetryMode::kOnSlowCapture) {
    options.slow_query_ns = std::numeric_limits<uint64_t>::max();
  }
  eds::srv::QueryService service(session.get(), options);
  Check(service.Start(), "start");
  const std::string query = "SELECT L FROM BETTER_THAN WHERE W = 1";
  for (auto _ : state) {
    auto future = service.Submit(query);
    service.ServeQueuedForTesting();
    auto served = future.get();
    Check(served.status(), "serve");
    benchmark::DoNotOptimize(served->serve_ns);
  }
  service.Stop();
}
void BM_Serve_TelemetryOff(benchmark::State& state) {
  BM_ServeTelemetry(state, TelemetryMode::kOff);
}
void BM_Serve_TelemetryOn(benchmark::State& state) {
  BM_ServeTelemetry(state, TelemetryMode::kOn);
}
void BM_Serve_TelemetryOnSlowCapture(benchmark::State& state) {
  BM_ServeTelemetry(state, TelemetryMode::kOnSlowCapture);
}
BENCHMARK(BM_Serve_TelemetryOff);
BENCHMARK(BM_Serve_TelemetryOn);
BENCHMARK(BM_Serve_TelemetryOnSlowCapture);

// The histogram record itself: a bucket-index computation plus relaxed
// atomic adds on a per-thread shard. Values walk an LCG so bucket indices
// vary like real latencies.
void BM_Histogram_Record(benchmark::State& state) {
  eds::obs::Histogram histogram;
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value);
    value = (value * 1664525 + 1013904223) & ((1ULL << 30) - 1);
  }
  benchmark::DoNotOptimize(histogram.Snapshot().count);
}
BENCHMARK(BM_Histogram_Record);

}  // namespace

BENCHMARK_MAIN();
