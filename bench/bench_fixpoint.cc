// Experiment Fig. 5 — the recursive view itself: computing the full
// BETTER_THAN closure through the FIX operator, naive vs semi-naive
// iteration (the executor substrate ablation the rewriting experiments
// build on), over chain and cyclic graphs.
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeGraphDb;
using eds::value::Value;

void BM_FullClosure(benchmark::State& state, bool seminaive) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = false;  // measure the raw fixpoint substrate
  options.exec_options.seminaive = seminaive;
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN", options);
    Check(result.status(), "query");
    const size_t expected =
        static_cast<size_t>(nodes) * (nodes - 1) / 2;
    if (result->rows.size() != expected) {
      state.SkipWithError("wrong closure size");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
  state.SetComplexityN(nodes);
}
void BM_Closure_NaiveIteration(benchmark::State& state) {
  BM_FullClosure(state, false);
}
void BM_Closure_SeminaiveIteration(benchmark::State& state) {
  BM_FullClosure(state, true);
}
BENCHMARK(BM_Closure_NaiveIteration)->Arg(8)->Arg(16)->Arg(24)->Complexity();
BENCHMARK(BM_Closure_SeminaiveIteration)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Complexity();

// Cyclic graphs stress the dedup-based termination.
void BM_CyclicClosure(benchmark::State& state, bool seminaive) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE BEATS (Winner : INT, Loser : INT);
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"),
        "schema");
  for (int i = 0; i < nodes; ++i) {
    Check(session->InsertRow(
              "BEATS", {Value::Int(i), Value::Int((i + 1) % nodes)}),
          "edge");
  }
  eds::exec::QueryOptions options;
  options.rewrite = false;
  options.exec_options.seminaive = seminaive;
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN", options);
    Check(result.status(), "query");
    if (result->rows.size() != static_cast<size_t>(nodes) * nodes) {
      state.SkipWithError("wrong cyclic closure size");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Cycle_Naive(benchmark::State& state) {
  BM_CyclicClosure(state, false);
}
void BM_Cycle_Seminaive(benchmark::State& state) {
  BM_CyclicClosure(state, true);
}
BENCHMARK(BM_Cycle_Naive)->Arg(8)->Arg(12);
BENCHMARK(BM_Cycle_Seminaive)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
