// Experiment Fig. 5 — the recursive view itself: computing the full
// BETTER_THAN closure through the FIX operator, naive vs semi-naive
// iteration (the executor substrate ablation the rewriting experiments
// build on), over chain and cyclic graphs.
#include "benchutil.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeGraphDb;
using eds::value::Value;

void BM_FullClosure(benchmark::State& state, bool seminaive) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(nodes);
  eds::exec::QueryOptions options;
  options.rewrite = false;  // measure the raw fixpoint substrate
  options.exec_options.seminaive = seminaive;
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN", options);
    Check(result.status(), "query");
    const size_t expected =
        static_cast<size_t>(nodes) * (nodes - 1) / 2;
    if (result->rows.size() != expected) {
      state.SkipWithError("wrong closure size");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
  state.SetComplexityN(nodes);
}
void BM_Closure_NaiveIteration(benchmark::State& state) {
  BM_FullClosure(state, false);
}
void BM_Closure_SeminaiveIteration(benchmark::State& state) {
  BM_FullClosure(state, true);
}
BENCHMARK(BM_Closure_NaiveIteration)->Arg(8)->Arg(16)->Arg(24)->Complexity();
BENCHMARK(BM_Closure_SeminaiveIteration)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Complexity();

// Cyclic graphs stress the dedup-based termination.
void BM_CyclicClosure(benchmark::State& state, bool seminaive) {
  const int nodes = static_cast<int>(state.range(0));
  auto session = std::make_unique<eds::exec::Session>();
  Check(session->ExecuteScript(R"(
    CREATE TABLE BEATS (Winner : INT, Loser : INT);
    CREATE VIEW BETTER_THAN (W, L) AS (
      SELECT Winner, Loser FROM BEATS
      UNION
      SELECT B1.W, B2.L FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.L = B2.W );
  )"),
        "schema");
  for (int i = 0; i < nodes; ++i) {
    Check(session->InsertRow(
              "BEATS", {Value::Int(i), Value::Int((i + 1) % nodes)}),
          "edge");
  }
  eds::exec::QueryOptions options;
  options.rewrite = false;
  options.exec_options.seminaive = seminaive;
  for (auto _ : state) {
    auto result = session->Query("SELECT W, L FROM BETTER_THAN", options);
    Check(result.status(), "query");
    if (result->rows.size() != static_cast<size_t>(nodes) * nodes) {
      state.SkipWithError("wrong cyclic closure size");
      return;
    }
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}
void BM_Cycle_Naive(benchmark::State& state) {
  BM_CyclicClosure(state, false);
}
void BM_Cycle_Seminaive(benchmark::State& state) {
  BM_CyclicClosure(state, true);
}
BENCHMARK(BM_Cycle_Naive)->Arg(8)->Arg(12);
BENCHMARK(BM_Cycle_Seminaive)->Arg(8)->Arg(16);

// Rewrite phase only: an n-way self-join of the recursive view expands into
// n identical copies of the FIX subplan. The copies are structurally equal,
// so canonical-term sharing makes or breaks the engine's rescan cost here.
void BM_RewritePhase_FixpointSelfJoin(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  auto session = MakeGraphDb(8);
  std::string from, where;
  for (int i = 1; i <= joins; ++i) {
    if (i > 1) {
      from += ", ";
      where += " AND B" + std::to_string(i - 1) + ".L = B" +
               std::to_string(i) + ".W";
    }
    from += "BETTER_THAN B" + std::to_string(i);
  }
  std::string query = "SELECT B1.W, B" + std::to_string(joins) +
                      ".L FROM " + from + " WHERE B" + std::to_string(joins) +
                      ".L = 5" + where;
  auto plan = eds::benchutil::CheckResult(session->Translate(query),
                                          "translate");
  size_t applications = 0, checks = 0;
  for (auto _ : state) {
    auto out = session->Rewrite(plan);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    applications = out->stats.applications;
    checks = out->stats.condition_checks;
  }
  state.counters["rewrites"] = static_cast<double>(applications);
  state.counters["cond_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_RewritePhase_FixpointSelfJoin)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
