// The serving layer: cold vs warm plan cache (the A/B the cache exists
// for — warm serves skip the rewrite phase entirely) and worker-pool
// throughput at 1 vs N workers. On a single-core box the N-worker runs
// measure queueing/locking overhead, not parallel speedup; the cpus
// counter records what the machine offered so BENCH trajectories stay
// comparable across hosts.
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.h"
#include "srv/service.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;
using eds::srv::QueryService;
using eds::srv::ServiceOptions;
using eds::srv::ServedQuery;

// Literal-variant workload over a handful of templates: after one miss per
// template, every query is a cache hit.
std::string WorkloadQuery(size_t i) {
  switch (i % 3) {
    case 0:
      return "SELECT Title FROM FILM WHERE Numf > " +
             std::to_string(i % 40) + " AND Numf < " +
             std::to_string(60 + (i % 40));
    case 1:
      return "SELECT Numf FROM FILM WHERE MEMBER('Adventure', Categories) "
             "AND Numf < " +
             std::to_string(20 + (i % 30));
    default:
      return "SELECT F.Title FROM FILM F, APPEARS_IN A WHERE "
             "F.Numf = A.Numf AND F.Numf = " +
             std::to_string(1 + (i % 50));
  }
}

// One query at a time through the service (workers=0, pumped inline), cache
// on or off: isolates the per-serve cost of the cache itself — cold runs
// pay fingerprint + template rewrite + insert; warm runs pay fingerprint +
// lookup + instantiate and skip the rewrite.
void BM_ServeCacheAB(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  auto session = MakeFilmDb(100);
  ServiceOptions options;
  options.workers = 0;
  options.use_cache = use_cache;
  QueryService service(session.get(), options);
  Check(service.Start(), "start");
  size_t i = 0;
  for (auto _ : state) {
    auto future = service.Submit(WorkloadQuery(i++));
    if (!service.ServeQueuedForTesting()) {
      throw std::runtime_error("queue unexpectedly empty");
    }
    auto served = future.get();
    Check(served.status(), "serve");
    benchmark::DoNotOptimize(served->result.rows);
    state.counters["rewrite_ns"] =
        static_cast<double>(served->result.phase_times.rewrite_ns);
  }
  auto cs = service.cache().GetStats();
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["cache_misses"] = static_cast<double>(cs.misses);
  state.counters["hit_rate"] =
      cs.hits + cs.misses > 0
          ? static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses)
          : 0.0;
  service.Stop();
}
BENCHMARK(BM_ServeCacheAB)
    ->Arg(0)  // cold path every time: cache disabled
    ->Arg(1)  // warm after the first 3 serves
    ->ArgNames({"cache"});

// Throughput with a real worker pool: submit a batch of futures, drain
// them, count queries/sec. Compare workers=1 against workers=4 (and see
// the cpus counter for how much parallelism the host could give).
void BM_ServeThroughput(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  auto session = MakeFilmDb(100);
  ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = 256;
  QueryService service(session.get(), options);
  Check(service.Start(), "start");
  const size_t kBatch = 64;
  size_t served_total = 0;
  for (auto _ : state) {
    std::vector<std::future<eds::Result<ServedQuery>>> futures;
    futures.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      futures.push_back(service.Submit(WorkloadQuery(i)));
    }
    for (auto& f : futures) {
      auto r = f.get();
      Check(r.status(), "serve");
      benchmark::DoNotOptimize(r->result.rows);
    }
    served_total += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(served_total));
  state.counters["cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  auto cs = service.cache().GetStats();
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  auto ss = service.GetStats();
  state.counters["rejected"] = static_cast<double>(ss.rejected);
  service.Stop();
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->UseRealTime();

// Admission-control overhead: a full queue shedding every submission. The
// cost of a rejection must stay trivial (a mutex, a string) — load shed is
// the cheap path by design.
void BM_ServeLoadShedRejection(benchmark::State& state) {
  auto session = MakeFilmDb(10);
  ServiceOptions options;
  options.workers = 0;  // nothing drains: the queue stays full
  options.queue_capacity = 4;
  QueryService service(session.get(), options);
  Check(service.Start(), "start");
  for (size_t i = 0; i < options.queue_capacity; ++i) {
    service.Submit(WorkloadQuery(i));  // fill; futures intentionally dropped
  }
  for (auto _ : state) {
    auto r = service.Submit("SELECT Numf FROM FILM").get();
    if (r.ok()) throw std::runtime_error("expected load shed");
    benchmark::DoNotOptimize(r.status());
  }
  service.Stop();
}
BENCHMARK(BM_ServeLoadShedRejection);

}  // namespace

BENCHMARK_MAIN();
