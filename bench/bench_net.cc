// The wire front end: connection setup cost (TCP + HELLO handshake),
// query round-trip latency over loopback TCP vs the in-process Submit
// path (the framing + syscall + render tax the protocol adds), and
// N-client throughput against one server. All runs are loopback on one
// host, so the numbers measure the protocol stack, not a network; the
// cpus counter records what the machine offered so BENCH trajectories
// stay comparable across hosts.
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.h"
#include "net/client.h"
#include "net/server.h"
#include "srv/service.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::CheckResult;
using eds::benchutil::MakeFilmDb;
using eds::net::Client;
using eds::net::ResultMsg;
using eds::net::Server;
using eds::net::ServerOptions;
using eds::srv::QueryService;
using eds::srv::ServedQuery;
using eds::srv::ServiceOptions;

// Same literal-variant workload shape as bench_serve: a handful of
// templates so the plan cache warms after the first few serves and the
// steady state measures the serving/protocol path, not the rewriter.
std::string WorkloadQuery(size_t i) {
  switch (i % 3) {
    case 0:
      return "SELECT Title FROM FILM WHERE Numf > " +
             std::to_string(i % 40) + " AND Numf < " +
             std::to_string(60 + (i % 40));
    case 1:
      return "SELECT Numf FROM FILM WHERE MEMBER('Adventure', Categories) "
             "AND Numf < " +
             std::to_string(20 + (i % 30));
    default:
      return "SELECT F.Title FROM FILM F, APPEARS_IN A WHERE "
             "F.Numf = A.Numf AND F.Numf = " +
             std::to_string(1 + (i % 50));
  }
}

// A started service + server on an ephemeral loopback port, torn down in
// reverse order.
struct Stack {
  std::unique_ptr<eds::exec::Session> session;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  explicit Stack(size_t workers, int films = 100) {
    session = MakeFilmDb(films);
    ServiceOptions options;
    options.workers = workers;
    options.queue_capacity = 256;
    service = std::make_unique<QueryService>(session.get(), options);
    Check(service->Start(), "service start");
    ServerOptions sopts;
    sopts.max_connections = 64;
    server = std::make_unique<Server>(service.get(), sopts);
    Check(server->Start(), "server start");
  }
  ~Stack() {
    server->Shutdown(/*drain=*/true);
    service->Stop();
  }

  std::unique_ptr<Client> Dial() {
    Client::Options copts;
    copts.port = server->port();
    copts.client_name = "bench";
    return CheckResult(Client::Connect(copts), "connect");
  }
};

// TCP connect + HELLO/HELLO_OK + GOODBYE per iteration: what a
// non-pooling client pays before its first query.
void BM_NetConnectionSetup(benchmark::State& state) {
  Stack stack(/*workers=*/1);
  for (auto _ : state) {
    auto client = stack.Dial();
    Check(client->Goodbye(), "goodbye");
  }
  state.counters["accepted"] =
      static_cast<double>(stack.server->GetStats().accepted);
}
BENCHMARK(BM_NetConnectionSetup);

// One warm query per iteration through the full protocol stack: encode,
// send, serve, render rows to strings, frame the RESULT, read it back.
// Compare against BM_NetInProcessSubmit below for the protocol tax.
void BM_NetRoundTrip(benchmark::State& state) {
  Stack stack(/*workers=*/1);
  auto client = stack.Dial();
  size_t i = 0;
  size_t rows = 0;
  for (auto _ : state) {
    ResultMsg r = CheckResult(client->Query(WorkloadQuery(i++)), "query");
    if (!r.ok) throw std::runtime_error("query failed: " + r.error);
    rows += r.rows.size();
    benchmark::DoNotOptimize(r.rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.counters["rows"] = static_cast<double>(rows);
  Check(client->Goodbye(), "goodbye");
}
BENCHMARK(BM_NetRoundTrip);

// The same workload through Submit() directly — no sockets, no string
// rendering of rows. The delta against BM_NetRoundTrip is the wire tax.
void BM_NetInProcessSubmit(benchmark::State& state) {
  Stack stack(/*workers=*/1);
  size_t i = 0;
  for (auto _ : state) {
    auto served = stack.service->Submit(WorkloadQuery(i++)).get();
    Check(served.status(), "serve");
    benchmark::DoNotOptimize(served->result.rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_NetInProcessSubmit);

// N concurrent clients, each its own connection and thread, all hammering
// one server: aggregate queries/sec. On a single-core box this measures
// the poller + worker handoff under contention, not parallel speedup.
void BM_NetThroughput(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t kPerClient = 32;
  Stack stack(/*workers=*/4);
  size_t served_total = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&stack, c] {
        auto client = stack.Dial();
        for (size_t i = 0; i < kPerClient; ++i) {
          ResultMsg r = CheckResult(
              client->Query(WorkloadQuery(c * kPerClient + i)), "query");
          if (!r.ok) throw std::runtime_error("query failed: " + r.error);
          benchmark::DoNotOptimize(r.rows);
        }
        Check(client->Goodbye(), "goodbye");
      });
    }
    for (auto& t : threads) t.join();
    served_total += clients * kPerClient;
  }
  state.SetItemsProcessed(static_cast<int64_t>(served_total));
  state.counters["cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["net_queries"] =
      static_cast<double>(stack.server->GetStats().queries);
}
BENCHMARK(BM_NetThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"clients"})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
