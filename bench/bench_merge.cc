// Experiment Fig. 7 — operation merging: queries over stacks of views
// (each view a SEARCH over the previous) executed with and without the
// merging rules. Merging removes the intermediate materializations
// ("unnecessary temporary relations are removed", §5.1) and its own cost
// (rewrite time) stays small and linear in the stack depth.
#include "benchutil.h"

#include "lera/lera.h"

namespace {

using eds::benchutil::Check;
using eds::benchutil::MakeFilmDb;

// Builds a stack of `depth` filtering views over FILM; the query selects
// from the top.
std::unique_ptr<eds::exec::Session> MakeViewStack(int films, int depth) {
  auto session = MakeFilmDb(films);
  std::string prev = "FILM";
  for (int d = 0; d < depth; ++d) {
    std::string name = "V" + std::to_string(d);
    // Each layer keeps Numf and Title and narrows the range a little.
    Check(session->ExecuteScript(
              "CREATE VIEW " + name + " (Numf, Title) AS SELECT Numf, Title "
              "FROM " + prev + " WHERE Numf > " + std::to_string(d) + ";"),
          "view layer");
    prev = name;
  }
  return session;
}

void BM_ViewStackQuery(benchmark::State& state, bool rewrite) {
  const int depth = static_cast<int>(state.range(0));
  const int films = 400;
  auto session = MakeViewStack(films, depth);
  std::string query = "SELECT Title FROM V" + std::to_string(depth - 1) +
                      " WHERE Numf = " + std::to_string(films / 2);
  eds::exec::QueryOptions options;
  options.rewrite = rewrite;
  for (auto _ : state) {
    auto result = session->Query(query, options);
    Check(result.status(), "query");
    benchmark::DoNotOptimize(result->rows);
    eds::benchutil::ReportExecWork(state, *result);
  }
}

void BM_ViewStack_Raw(benchmark::State& state) {
  BM_ViewStackQuery(state, /*rewrite=*/false);
}
void BM_ViewStack_Merged(benchmark::State& state) {
  BM_ViewStackQuery(state, /*rewrite=*/true);
}
BENCHMARK(BM_ViewStack_Raw)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ViewStack_Merged)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Rewrite-time only: the cost of merging grows linearly with the depth of
// the view stack (each layer is one search_merge application).
void BM_ViewStack_RewriteCost(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto session = MakeViewStack(50, depth);
  std::string query = "SELECT Title FROM V" + std::to_string(depth - 1) +
                      " WHERE Numf = 25";
  auto raw = session->Translate(query);
  Check(raw.status(), "translate");
  for (auto _ : state) {
    auto out = session->Rewrite(*raw);
    Check(out.status(), "rewrite");
    benchmark::DoNotOptimize(out->term);
    state.counters["rule_apps"] =
        static_cast<double>(out->stats.applications);
    state.counters["cond_checks"] =
        static_cast<double>(out->stats.condition_checks);
  }
}
BENCHMARK(BM_ViewStack_RewriteCost)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

// Merged plans collapse to a single SEARCH regardless of depth: verify the
// shape once per run (correctness guard inside the harness).
void BM_ViewStack_ShapeCheck(benchmark::State& state) {
  auto session = MakeViewStack(50, 8);
  auto raw = session->Translate("SELECT Title FROM V7 WHERE Numf = 10");
  Check(raw.status(), "translate");
  for (auto _ : state) {
    auto out = session->Rewrite(*raw);
    Check(out.status(), "rewrite");
    if (!eds::lera::IsSearch(out->term)) {
      state.SkipWithError("merged plan is not a single SEARCH");
      return;
    }
    auto inputs = eds::lera::SearchInputs(out->term);
    if (!inputs.ok() || inputs->size() != 1 ||
        !eds::lera::IsRelation((*inputs)[0])) {
      state.SkipWithError("merged plan did not flatten to the base table");
      return;
    }
  }
}
BENCHMARK(BM_ViewStack_ShapeCheck);

}  // namespace

BENCHMARK_MAIN();
