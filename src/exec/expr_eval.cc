#include "exec/expr_eval.h"

#include "lera/lera.h"

namespace eds::exec {

using term::TermRef;
using value::Value;
using value::ValueKind;

namespace {

Result<Value> Deref(const Value& v, const Database* db) {
  if (v.kind() != ValueKind::kObjectRef) {
    return Status::TypeError("VALUE applied to a non-object: " +
                             v.ToString());
  }
  if (db == nullptr) {
    return Status::RuntimeError("no database bound for object dereference");
  }
  EDS_ASSIGN_OR_RETURN(const StoredObject* obj, db->heap().Get(v.AsObjectRef()));
  return obj->state;
}

}  // namespace

Result<value::Value> EvalExpr(const term::TermRef& expr, EvalContext* ctx) {
  if (expr->is_constant()) return expr->constant();
  if (expr->is_variable() || expr->is_collection_variable()) {
    return Status::RuntimeError("unbound rule variable reached execution: " +
                                expr->ToString());
  }
  const std::string& f = expr->functor();

  if (lera::IsAttr(expr)) {
    EDS_ASSIGN_OR_RETURN(lera::AttrRef a, lera::GetAttr(expr));
    if (a.input < 1 ||
        static_cast<size_t>(a.input) > ctx->current.size() ||
        ctx->current[static_cast<size_t>(a.input) - 1] == nullptr) {
      return Status::RuntimeError("ATTR input out of range: " +
                                  expr->ToString());
    }
    const Row& row = *ctx->current[static_cast<size_t>(a.input) - 1];
    if (a.column < 1 || static_cast<size_t>(a.column) > row.size()) {
      return Status::RuntimeError("ATTR column out of range: " +
                                  expr->ToString());
    }
    return row[static_cast<size_t>(a.column) - 1];
  }

  if (f == lera::kElem && expr->arity() == 0) {
    if (ctx->elem_stack.empty()) {
      return Status::RuntimeError("ELEM() outside a quantifier");
    }
    return ctx->elem_stack.back();
  }

  if (f == lera::kValueOf && expr->arity() == 1) {
    EDS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr->arg(0), ctx));
    if (v.is_null()) return Value::Null();
    return Deref(v, ctx->db);
  }

  if (f == lera::kField && expr->arity() == 2 &&
      expr->arg(1)->is_constant()) {
    EDS_ASSIGN_OR_RETURN(Value base, EvalExpr(expr->arg(0), ctx));
    if (base.is_null()) return Value::Null();
    // Auto-dereference object references: the "appropriate type conversion"
    // the system applies when an attribute name is used as a function.
    if (base.kind() == ValueKind::kObjectRef) {
      EDS_ASSIGN_OR_RETURN(base, Deref(base, ctx->db));
    }
    const std::string& name = expr->arg(1)->constant().AsString();
    if (base.kind() != ValueKind::kTuple) {
      return Status::TypeError("FIELD('" + name + "') on non-tuple value " +
                               base.ToString());
    }
    const Value* found = base.FindField(name);
    if (found == nullptr) {
      return Status::RuntimeError("no attribute '" + name + "' in " +
                                  base.ToString());
    }
    return *found;
  }

  if ((f == lera::kForAll || f == lera::kExists) && expr->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(Value coll, EvalExpr(expr->arg(0), ctx));
    if (coll.is_null()) return Value::Null();
    if (!coll.is_collection()) {
      return Status::TypeError(f + (": quantifier domain is not a "
                                    "collection: " +
                                    coll.ToString()));
    }
    const bool universal = f == lera::kForAll;
    for (const Value& elem : coll.elements()) {
      ctx->elem_stack.push_back(elem);
      Result<Value> body = EvalExpr(expr->arg(1), ctx);
      ctx->elem_stack.pop_back();
      EDS_RETURN_IF_ERROR(body.status());
      const Value& b = *body;
      bool truth = b.kind() == ValueKind::kBool && b.AsBool();
      if (universal && !truth) return Value::Bool(false);
      if (!universal && truth) return Value::Bool(true);
    }
    return Value::Bool(universal);
  }

  // Short-circuit logical connectives (three-valued).
  if (f == term::kAnd && expr->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(Value a, EvalExpr(expr->arg(0), ctx));
    if (a.kind() == ValueKind::kBool && !a.AsBool()) {
      return Value::Bool(false);
    }
    EDS_ASSIGN_OR_RETURN(Value b, EvalExpr(expr->arg(1), ctx));
    if (b.kind() == ValueKind::kBool && !b.AsBool()) {
      return Value::Bool(false);
    }
    if (a.is_null() || b.is_null()) return Value::Null();
    if (a.kind() != ValueKind::kBool || b.kind() != ValueKind::kBool) {
      return Status::TypeError("AND over non-boolean operands");
    }
    return Value::Bool(true);
  }
  if (f == term::kOr && expr->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(Value a, EvalExpr(expr->arg(0), ctx));
    if (a.kind() == ValueKind::kBool && a.AsBool()) return Value::Bool(true);
    EDS_ASSIGN_OR_RETURN(Value b, EvalExpr(expr->arg(1), ctx));
    if (b.kind() == ValueKind::kBool && b.AsBool()) return Value::Bool(true);
    if (a.is_null() || b.is_null()) return Value::Null();
    if (a.kind() != ValueKind::kBool || b.kind() != ValueKind::kBool) {
      return Status::TypeError("OR over non-boolean operands");
    }
    return Value::Bool(false);
  }

  // Structural literals evaluate their elements.
  if (f == term::kSet || f == "BAG" || f == term::kList ||
      f == term::kTuple) {
    std::vector<Value> elems;
    elems.reserve(expr->arity());
    for (const TermRef& a : expr->args()) {
      EDS_ASSIGN_OR_RETURN(Value v, EvalExpr(a, ctx));
      elems.push_back(std::move(v));
    }
    if (f == term::kSet) return Value::Set(std::move(elems));
    if (f == "BAG") return Value::Bag(std::move(elems));
    if (f == term::kList) return Value::List(std::move(elems));
    return Value::Tuple(std::move(elems));
  }

  // Everything else dispatches through the function library.
  if (ctx->library == nullptr) {
    return Status::RuntimeError("no function library bound");
  }
  std::vector<Value> args;
  args.reserve(expr->arity());
  for (const TermRef& a : expr->args()) {
    EDS_ASSIGN_OR_RETURN(Value v, EvalExpr(a, ctx));
    args.push_back(std::move(v));
  }
  return ctx->library->Call(f, args);
}

Result<bool> EvalPredicate(const term::TermRef& qual, EvalContext* ctx) {
  EDS_ASSIGN_OR_RETURN(value::Value v, EvalExpr(qual, ctx));
  if (v.is_null()) return false;
  if (v.kind() != ValueKind::kBool) {
    return Status::TypeError("qualification did not evaluate to a boolean: " +
                             qual->ToString());
  }
  return v.AsBool();
}

}  // namespace eds::exec
