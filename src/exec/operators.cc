#include <algorithm>
#include <functional>
#include <map>

#include "exec/executor.h"
#include "lera/lera.h"

namespace eds::exec {

using term::TermList;
using term::TermRef;
using value::Value;

namespace {

// Largest input index referenced by an expression (0 if none).
int64_t MaxInputIndex(const TermRef& expr) {
  std::vector<lera::AttrRef> attrs;
  lera::CollectAttrs(expr, &attrs);
  int64_t max = 0;
  for (const lera::AttrRef& a : attrs) max = std::max(max, a.input);
  return max;
}

}  // namespace

Result<Rows> Executor::EvalSearch(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(TermList input_terms, lera::SearchInputs(t));
  // Constant-FALSE qualifications short-circuit before any input is
  // materialized: this is how statically-detected inconsistencies pay off.
  EDS_ASSIGN_OR_RETURN(TermRef qual, lera::SearchQual(t));
  if (qual->is_constant() &&
      qual->constant().kind() == value::ValueKind::kBool &&
      !qual->constant().AsBool()) {
    return Rows{};
  }
  // Stored inputs are borrowed straight from the table (or fixpoint
  // binding); only derived inputs are materialized into `owned`, whose
  // reserve keeps the borrowed pointers stable. Borrowed tables carry
  // their cached columnar image for the vectorized path.
  std::vector<Rows> owned;
  owned.reserve(input_terms.size());
  std::vector<const Rows*> inputs;
  inputs.reserve(input_terms.size());
  std::vector<const vec::Batch*> batches;
  batches.reserve(input_terms.size());
  for (const TermRef& in : input_terms) {
    const vec::Batch* batch = nullptr;
    if (const Rows* stored = TryBorrowStoredRows(in, env, &batch)) {
      inputs.push_back(stored);
      batches.push_back(batch);
      continue;
    }
    EDS_ASSIGN_OR_RETURN(Rows rows, Eval(in, env));
    owned.push_back(std::move(rows));
    inputs.push_back(&owned.back());
    batches.push_back(nullptr);
  }
  return SearchWithInputsMaybeVec(t, inputs, batches);
}

Result<Rows> Executor::EvalSearchWithInputs(
    const term::TermRef& search, const std::vector<const Rows*>& inputs) {
  EDS_ASSIGN_OR_RETURN(TermRef qual, lera::SearchQual(search));
  EDS_ASSIGN_OR_RETURN(TermList projections,
                       lera::SearchProjections(search));

  // Tuple-substitution nested loops with eager conjunct evaluation: each
  // conjunct runs as soon as every input it references is bound, pruning
  // partial combinations early.
  const size_t n = inputs.size();
  std::vector<TermList> conjuncts_at(n + 1);
  for (const TermRef& c : term::Conjuncts(qual)) {
    int64_t level = MaxInputIndex(c);
    if (level < 0 || static_cast<size_t>(level) > n) {
      return Status::RuntimeError("qualification references input beyond " +
                                  std::to_string(n));
    }
    conjuncts_at[static_cast<size_t>(level)].push_back(c);
  }

  EvalContext ctx = MakeExprContext();
  ctx.current.assign(n, nullptr);
  Rows out;

  // Level-0 conjuncts are input-independent; evaluate once.
  for (const TermRef& c : conjuncts_at[0]) {
    ++stats_.qual_evaluations;
    EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(c, &ctx));
    if (!ok) return out;
  }

  // Recursive nested loop; input counts are small, rows are not.
  std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
    if (depth == n) {
      Row row;
      row.reserve(projections.size());
      for (const TermRef& p : projections) {
        Result<Value> v = EvalExpr(p, &ctx);
        EDS_RETURN_IF_ERROR(v.status());
        row.push_back(std::move(*v));
      }
      out.push_back(std::move(row));
      return Status::OK();
    }
    for (const Row& candidate : *inputs[depth]) {
      ctx.current[depth] = &candidate;
      bool pruned = false;
      for (const TermRef& c : conjuncts_at[depth + 1]) {
        ++stats_.qual_evaluations;
        EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(c, &ctx));
        if (!ok) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      EDS_RETURN_IF_ERROR(recurse(depth + 1));
    }
    ctx.current[depth] = nullptr;
    return Status::OK();
  };
  EDS_RETURN_IF_ERROR(recurse(0));
  return out;
}

Result<Rows> Executor::EvalUnion(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(TermList inputs, lera::UnionInputs(t));
  Rows out;
  for (const TermRef& in : inputs) {
    EDS_ASSIGN_OR_RETURN(Rows rows, Eval(in, env));
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  DedupMaybeVec(&out);
  return out;
}

Result<Rows> Executor::EvalSetOp(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows a, Eval(t->arg(0), env));
  EDS_ASSIGN_OR_RETURN(Rows b, Eval(t->arg(1), env));
  DedupMaybeVec(&a);
  DedupMaybeVec(&b);
  Rows out;
  const bool difference = t->functor() == lera::kDifference;
  for (Row& row : a) {
    bool in_b = std::binary_search(
        b.begin(), b.end(), row, [](const Row& x, const Row& y) {
          return CompareRows(x, y) < 0;
        });
    if (in_b != difference) out.push_back(std::move(row));
  }
  return out;
}

Result<Rows> Executor::EvalFilter(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows input, Eval(t->arg(0), env));
  EvalContext ctx = MakeExprContext();
  ctx.current.assign(1, nullptr);
  Rows out;
  for (Row& row : input) {
    ctx.current[0] = &row;
    ++stats_.qual_evaluations;
    EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(t->arg(1), &ctx));
    if (ok) out.push_back(std::move(row));
  }
  return out;
}

Result<Rows> Executor::EvalProject(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows input, Eval(t->arg(0), env));
  if (!t->arg(1)->IsApply(term::kList)) {
    return Status::InvalidArgument("malformed PROJECT");
  }
  const TermList& projections = t->arg(1)->args();
  EvalContext ctx = MakeExprContext();
  ctx.current.assign(1, nullptr);
  Rows out;
  out.reserve(input.size());
  for (const Row& row : input) {
    ctx.current[0] = &row;
    Row projected;
    projected.reserve(projections.size());
    for (const TermRef& p : projections) {
      EDS_ASSIGN_OR_RETURN(Value v, EvalExpr(p, &ctx));
      projected.push_back(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<Rows> Executor::EvalJoin(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows a, Eval(t->arg(0), env));
  EDS_ASSIGN_OR_RETURN(Rows b, Eval(t->arg(1), env));
  EvalContext ctx = MakeExprContext();
  ctx.current.assign(2, nullptr);
  Rows out;
  for (const Row& ra : a) {
    ctx.current[0] = &ra;
    for (const Row& rb : b) {
      ctx.current[1] = &rb;
      ++stats_.qual_evaluations;
      EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(t->arg(2), &ctx));
      if (!ok) continue;
      Row row;
      row.reserve(ra.size() + rb.size());
      row.insert(row.end(), ra.begin(), ra.end());
      row.insert(row.end(), rb.begin(), rb.end());
      out.push_back(std::move(row));
    }
  }
  return out;
}

Result<Rows> Executor::EvalNest(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows input, Eval(t->arg(0), env));
  if (!t->arg(1)->IsApply(term::kList)) {
    return Status::InvalidArgument("malformed NEST");
  }
  std::vector<size_t> nested;
  for (const TermRef& c : t->arg(1)->args()) {
    if (!c->is_constant() ||
        c->constant().kind() != value::ValueKind::kInt) {
      return Status::InvalidArgument("NEST column must be an integer");
    }
    nested.push_back(static_cast<size_t>(c->constant().AsInt()));
  }
  // Group by the non-nested columns, preserving first-seen group order.
  // Keys live once, in the map; the order index borrows map iterators
  // instead of copying each key two more times.
  using GroupMap =
      std::map<Row, std::vector<Value>, bool (*)(const Row&, const Row&)>;
  GroupMap groups(+[](const Row& a, const Row& b) {
    return CompareRows(a, b) < 0;
  });
  std::vector<GroupMap::iterator> order;
  for (Row& row : input) {
    Row key;
    std::vector<Value> collected;
    for (size_t i = 0; i < row.size(); ++i) {
      if (std::find(nested.begin(), nested.end(), i + 1) != nested.end()) {
        collected.push_back(std::move(row[i]));
      } else {
        key.push_back(std::move(row[i]));
      }
    }
    Value elem = collected.size() == 1 ? std::move(collected[0])
                                       : Value::Tuple(std::move(collected));
    auto [it, inserted] = groups.emplace(std::move(key), std::vector<Value>{});
    if (inserted) order.push_back(it);
    it->second.push_back(std::move(elem));
  }
  Rows out;
  out.reserve(order.size());
  for (GroupMap::iterator it : order) {
    Row row = it->first;
    row.push_back(Value::Set(std::move(it->second)));
    out.push_back(std::move(row));
  }
  return out;
}

Result<Rows> Executor::EvalUnnest(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(Rows input, Eval(t->arg(0), env));
  if (!t->arg(1)->is_constant() ||
      t->arg(1)->constant().kind() != value::ValueKind::kInt) {
    return Status::InvalidArgument("malformed UNNEST");
  }
  size_t col = static_cast<size_t>(t->arg(1)->constant().AsInt());
  Rows out;
  for (const Row& row : input) {
    if (col < 1 || col > row.size()) {
      return Status::RuntimeError("UNNEST column out of range");
    }
    const Value& coll = row[col - 1];
    if (!coll.is_collection()) {
      return Status::TypeError("UNNEST over non-collection value " +
                               coll.ToString());
    }
    for (const Value& elem : coll.elements()) {
      Row expanded;
      expanded.reserve(row.size() +
                       (elem.kind() == value::ValueKind::kTuple
                            ? elem.tuple().values.size()
                            : 1) -
                       1);
      for (size_t i = 0; i < row.size(); ++i) {
        if (i + 1 == col) {
          if (elem.kind() == value::ValueKind::kTuple) {
            for (const Value& v : elem.tuple().values) {
              expanded.push_back(v);
            }
          } else {
            expanded.push_back(elem);
          }
        } else {
          expanded.push_back(row[i]);
        }
      }
      out.push_back(std::move(expanded));
    }
  }
  return out;
}

}  // namespace eds::exec
