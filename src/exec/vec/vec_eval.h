#ifndef EDS_EXEC_VEC_VEC_EVAL_H_
#define EDS_EXEC_VEC_VEC_EVAL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/expr_eval.h"
#include "exec/vec/column.h"
#include "term/term.h"

namespace eds::exec::vec {

// Shared so ATTR references can alias a batch column without copying it.
using ColumnPtr = std::shared_ptr<const ColumnVector>;

// Batch evaluation context: one combined batch whose columns are the
// concatenated columns of the operator's bound inputs. Input i (1-based)
// owns columns [offsets[i-1], offsets[i]), so ATTR(i, j) resolves to
// column offsets[i-1] + j - 1.
struct ExprFrame {
  const Batch* batch = nullptr;
  std::vector<uint32_t> offsets;  // size = bound inputs + 1; offsets[0] == 0
  const Database* db = nullptr;
  const value::FunctionLibrary* library = nullptr;
};

// Evaluates a scalar expression over every row of the frame's batch.
// Comparisons and AND/OR/NOT run as columnar kernels; constants broadcast;
// ATTR aliases the input column zero-copy; everything else (FIELD, VALUE,
// quantifiers, function calls, collection literals) evaluates per row
// through the scalar EvalExpr, so semantics cannot drift. Errors make the
// calling operator fall back to the row path, which reproduces the precise
// per-row diagnostic; note a batched AND/OR evaluates both operands, so a
// row the scalar path would have short-circuited past can surface an error
// here — the fallback then yields the scalar path's (error-free) answer.
Result<ColumnPtr> EvalExprBatch(const term::TermRef& expr,
                                const ExprFrame& frame);

// Qualification semantics over a whole batch: the selection of rows whose
// predicate is a valid TRUE (NULL counts as false, non-boolean is a
// TypeError), ascending.
Result<SelectionVector> EvalPredicateBatch(const term::TermRef& qual,
                                           const ExprFrame& frame);

}  // namespace eds::exec::vec

#endif  // EDS_EXEC_VEC_VEC_EVAL_H_
