#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "exec/executor.h"
#include "exec/vec/kernels.h"
#include "exec/vec/vec_eval.h"
#include "lera/lera.h"

// Vectorized implementations of the executor's relational operators.
// Contract with the row path: results (rows, values, ordering, errors the
// user sees) are byte-identical. Anything a kernel cannot reproduce —
// ragged intermediates, hash-incompatible join keys, per-row errors,
// output blow-ups past the batch caps — returns a non-OK status and the
// caller reruns the row-path oracle. Only ResourceExhausted (a governor
// trip) is final.

namespace eds::exec {

using term::TermList;
using term::TermRef;
using value::Value;

namespace {

// Pair-count caps: past these a batched join materializes index vectors
// large enough that the row path's streaming loop is the safer choice.
constexpr size_t kMaxCrossPairs = size_t{1} << 22;
constexpr size_t kMaxJoinPairs = size_t{1} << 24;

// Largest input index referenced by an expression (0 if none); mirrors the
// helper in operators.cc.
int64_t MaxInputIndex(const TermRef& expr) {
  std::vector<lera::AttrRef> attrs;
  lera::CollectAttrs(expr, &attrs);
  int64_t max = 0;
  for (const lera::AttrRef& a : attrs) max = std::max(max, a.input);
  return max;
}

struct StageCtx {
  const Database* db = nullptr;
  const value::FunctionLibrary* library = nullptr;
  ExecStats* stats = nullptr;
};

// A frame where input `k` is the only bound input, mapped onto a
// standalone batch (inputs 1..k-1 get zero-width ranges, so a stray
// reference to them errors instead of aliasing the wrong column).
vec::ExprFrame RightFrame(const vec::Batch* batch, size_t k,
                          const StageCtx& sc) {
  vec::ExprFrame frame;
  frame.batch = batch;
  frame.offsets.assign(k, 0);
  frame.offsets.push_back(static_cast<uint32_t>(batch->cols.size()));
  frame.db = sc.db;
  frame.library = sc.library;
  return frame;
}

// One nested-loop level, vectorized: extends the combination batch `left`
// (columns of inputs 1..k-1, rows in lexicographic combination order) with
// input k. `conjuncts` are this level's conjuncts (every one references
// input k and nothing higher). They split into
//   - rhs-only conjuncts (reference input k alone): pre-filter input k;
//   - equi conjuncts (EQ with one side over inputs 1..k-1 and the other
//     over input k, hash-compatible keys): one multi-key hash join;
//   - everything else: residual columnar filters over the joined batch.
// The hash join emits pairs in (left asc, right asc) order, so the
// combined batch stays in exactly the row engine's emission order.
// `offsets` (size k) gains input k's width on return.
Result<vec::Batch> JoinStage(const vec::Batch& left,
                             std::vector<uint32_t>* offsets,
                             const vec::Batch& right, size_t k,
                             const TermList& conjuncts, const StageCtx& sc) {
  TermList rhs_only, residual;
  std::vector<std::array<TermRef, 2>> equi;  // {prev-side, k-side}
  for (const TermRef& c : conjuncts) {
    std::vector<lera::AttrRef> attrs;
    lera::CollectAttrs(c, &attrs);
    bool refs_prev = false;
    for (const lera::AttrRef& a : attrs) {
      if (a.input < static_cast<int64_t>(k)) {
        refs_prev = true;
        break;
      }
    }
    if (!refs_prev) {
      rhs_only.push_back(c);
      continue;
    }
    bool is_equi = false;
    if (c->is_apply() && c->functor() == term::kEq && c->args().size() == 2) {
      auto side = [&](const TermRef& s) {
        std::vector<lera::AttrRef> sa;
        lera::CollectAttrs(s, &sa);
        bool prev = false, cur = false;
        for (const lera::AttrRef& a : sa) {
          if (a.input == static_cast<int64_t>(k)) {
            cur = true;
          } else {
            prev = true;
          }
        }
        return prev ? (cur ? 3 : 1) : (cur ? 2 : 0);
      };
      const int lc = side(c->arg(0)), rc = side(c->arg(1));
      if (lc == 1 && rc == 2) {
        equi.push_back({c->arg(0), c->arg(1)});
        is_equi = true;
      } else if (lc == 2 && rc == 1) {
        equi.push_back({c->arg(1), c->arg(0)});
        is_equi = true;
      }
    }
    if (!is_equi) residual.push_back(c);
  }

  const uint32_t right_width = static_cast<uint32_t>(right.cols.size());
  vec::Batch filtered;
  const vec::Batch* rightp = &right;
  for (const TermRef& c : rhs_only) {
    vec::ExprFrame rf = RightFrame(rightp, k, sc);
    sc.stats->qual_evaluations += rightp->rows;
    EDS_ASSIGN_OR_RETURN(vec::SelectionVector sel,
                         vec::EvalPredicateBatch(c, rf));
    ++sc.stats->batches;
    sc.stats->vec_rows += rightp->rows;
    vec::Batch next = rightp->GatherRows(sel);
    filtered = std::move(next);
    rightp = &filtered;
  }

  vec::JoinPairs pairs;
  if (left.rows != 0 && rightp->rows != 0) {
    std::vector<vec::ColumnPtr> lcols, rcols;
    std::vector<const vec::ColumnVector*> lraw, rraw;
    std::vector<vec::HashClass> classes;
    if (!equi.empty()) {
      vec::ExprFrame lf;
      lf.batch = &left;
      lf.offsets = *offsets;
      lf.db = sc.db;
      lf.library = sc.library;
      vec::ExprFrame rf = RightFrame(rightp, k, sc);
      for (const auto& [prev_side, cur_side] : equi) {
        EDS_ASSIGN_OR_RETURN(vec::ColumnPtr lc,
                             vec::EvalExprBatch(prev_side, lf));
        EDS_ASSIGN_OR_RETURN(vec::ColumnPtr rc,
                             vec::EvalExprBatch(cur_side, rf));
        const vec::HashClass ca = vec::ClassifyKey(*lc);
        const vec::HashClass cb = vec::ClassifyKey(*rc);
        if (!vec::HashCompatible(ca, cb)) {
          // Tuples or mixed-kind keys: compare pairwise instead.
          residual.push_back(term::Term::Apply(
              term::kEq, {prev_side, cur_side}));
          continue;
        }
        // Charged as logical qualification applications — the pairings the
        // row engine would have probed (|left| x |right|) — not the O(n+m)
        // hash-join work, so cost comparisons against the row path (e.g.
        // semi-naive vs naive deltas) stay meaningful.
        sc.stats->qual_evaluations += left.rows * rightp->rows;
        lcols.push_back(lc);
        rcols.push_back(rc);
        lraw.push_back(lc.get());
        rraw.push_back(rc.get());
        classes.push_back(vec::CombineClasses(ca, cb));
      }
    }
    if (!lraw.empty()) {
      EDS_ASSIGN_OR_RETURN(pairs,
                           vec::HashJoin(lraw, rraw, classes, left.rows,
                                         rightp->rows, kMaxJoinPairs));
    } else {
      EDS_ASSIGN_OR_RETURN(
          pairs, vec::CrossPairs(left.rows, rightp->rows, kMaxCrossPairs));
    }
  }
  ++sc.stats->batches;
  sc.stats->vec_rows += pairs.left.size();

  vec::Batch combined;
  combined.rows = pairs.left.size();
  combined.cols.reserve(left.cols.size() + right_width);
  for (const vec::ColumnVector& c : left.cols) {
    combined.cols.push_back(c.Gather(pairs.left));
  }
  for (const vec::ColumnVector& c : rightp->cols) {
    combined.cols.push_back(c.Gather(pairs.right));
  }
  offsets->push_back(offsets->back() + right_width);

  for (const TermRef& c : residual) {
    vec::ExprFrame cf;
    cf.batch = &combined;
    cf.offsets = *offsets;
    cf.db = sc.db;
    cf.library = sc.library;
    sc.stats->qual_evaluations += combined.rows;
    EDS_ASSIGN_OR_RETURN(vec::SelectionVector sel,
                         vec::EvalPredicateBatch(c, cf));
    ++sc.stats->batches;
    sc.stats->vec_rows += combined.rows;
    vec::Batch next = combined.GatherRows(sel);
    combined = std::move(next);
  }
  return combined;
}

}  // namespace

Result<Rows> Executor::SearchWithInputsMaybeVec(
    const term::TermRef& search, const std::vector<const Rows*>& inputs,
    const std::vector<const vec::Batch*>& batches) {
  if (options_.vectorized) {
    ExecStats saved = stats_;
    Result<Rows> out = EvalSearchWithInputsVec(search, inputs, batches);
    if (out.ok() || out.status().code() == StatusCode::kResourceExhausted) {
      return out;
    }
    stats_ = saved;
    ++stats_.vec_fallbacks;
  }
  return EvalSearchWithInputs(search, inputs);
}

Result<Rows> Executor::EvalSearchWithInputsVec(
    const term::TermRef& search, const std::vector<const Rows*>& inputs,
    const std::vector<const vec::Batch*>& batches) {
  EDS_ASSIGN_OR_RETURN(TermRef qual, lera::SearchQual(search));
  EDS_ASSIGN_OR_RETURN(TermList projections, lera::SearchProjections(search));
  const size_t n = inputs.size();
  std::vector<TermList> conjuncts_at(n + 1);
  for (const TermRef& c : term::Conjuncts(qual)) {
    const int64_t level = MaxInputIndex(c);
    if (level < 0 || static_cast<size_t>(level) > n) {
      return Status::RuntimeError("qualification references input beyond " +
                                  std::to_string(n));
    }
    conjuncts_at[static_cast<size_t>(level)].push_back(c);
  }

  // Level-0 conjuncts are input-independent: evaluated once, scalar,
  // exactly as the row path does (including its errors, which are real).
  EvalContext ctx0 = MakeExprContext();
  ctx0.current.assign(n, nullptr);
  for (const TermRef& c : conjuncts_at[0]) {
    ++stats_.qual_evaluations;
    EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(c, &ctx0));
    if (!ok) return Rows{};
  }

  // Columnar images of the inputs: stored tables arrive as cached batches,
  // everything else (fixpoint deltas, materialized subtrees) converts here.
  std::vector<vec::Batch> converted(n);
  std::vector<const vec::Batch*> in_batches(n);
  for (size_t i = 0; i < n; ++i) {
    if (batches[i] != nullptr) {
      in_batches[i] = batches[i];
      continue;
    }
    if (!vec::Batch::FromRows(*inputs[i], &converted[i])) {
      return Status::Unsupported("ragged input rows");
    }
    in_batches[i] = &converted[i];
  }
  for (size_t i = 0; i < n; ++i) {
    if (in_batches[i]->rows == 0) return Rows{};
  }

  // The combination batch: starts as the empty prefix (one row, no
  // columns), gains one input per stage.
  vec::Batch acc;
  acc.rows = 1;
  std::vector<uint32_t> offsets{0};
  StageCtx sc{db_, &catalog_->functions(), &stats_};
  for (size_t k = 1; k <= n; ++k) {
    if (options_.guard != nullptr && options_.guard->Check()) {
      return options_.guard->TripStatus();
    }
    EDS_ASSIGN_OR_RETURN(
        acc, JoinStage(acc, &offsets, *in_batches[k - 1], k,
                       conjuncts_at[k], sc));
    if (acc.rows == 0) return Rows{};
  }

  vec::ExprFrame pf;
  pf.batch = &acc;
  pf.offsets = offsets;
  pf.db = db_;
  pf.library = &catalog_->functions();
  std::vector<vec::ColumnPtr> outcols;
  outcols.reserve(projections.size());
  for (const TermRef& p : projections) {
    EDS_ASSIGN_OR_RETURN(vec::ColumnPtr col, vec::EvalExprBatch(p, pf));
    ++stats_.batches;
    stats_.vec_rows += acc.rows;
    outcols.push_back(std::move(col));
  }
  Rows out;
  out.reserve(acc.rows);
  for (size_t r = 0; r < acc.rows; ++r) {
    Row row;
    row.reserve(outcols.size());
    for (const vec::ColumnPtr& col : outcols) row.push_back(col->ValueAt(r));
    out.push_back(std::move(row));
  }
  return out;
}

Result<const Rows*> Executor::ChildRows(const term::TermRef& t,
                                        const FixEnv& env, Rows* owned,
                                        const vec::Batch** batch,
                                        bool* borrowed) {
  if (const Rows* stored = TryBorrowStoredRows(t, env, batch)) {
    *borrowed = true;
    return stored;
  }
  *batch = nullptr;
  *borrowed = false;
  Result<Rows> rows = Eval(t, env);
  EDS_RETURN_IF_ERROR(rows.status());
  *owned = std::move(*rows);
  return owned;
}

Result<Rows> Executor::EvalFilterVec(const term::TermRef& t,
                                     const FixEnv& env) {
  Rows owned;
  const vec::Batch* tb = nullptr;
  bool borrowed = false;
  EDS_ASSIGN_OR_RETURN(const Rows* child,
                       ChildRows(t->arg(0), env, &owned, &tb, &borrowed));
  vec::Batch conv;
  if (tb == nullptr) {
    if (!vec::Batch::FromRows(*child, &conv)) {
      return Status::Unsupported("ragged filter input");
    }
    tb = &conv;
  }
  vec::ExprFrame frame;
  frame.batch = tb;
  frame.offsets = {0, static_cast<uint32_t>(tb->cols.size())};
  frame.db = db_;
  frame.library = &catalog_->functions();
  stats_.qual_evaluations += tb->rows;
  EDS_ASSIGN_OR_RETURN(vec::SelectionVector sel,
                       vec::EvalPredicateBatch(t->arg(1), frame));
  ++stats_.batches;
  stats_.vec_rows += tb->rows;
  Rows out = tb->GatherRows(sel).ToRows();
  // The row path charges borrowed children through the child's Eval; the
  // vectorized path charges at the end so a fallback never double-counts.
  if (borrowed && options_.guard != nullptr &&
      options_.guard->AddRows(child->size())) {
    return options_.guard->TripStatus();
  }
  return out;
}

Result<Rows> Executor::EvalProjectVec(const term::TermRef& t,
                                      const FixEnv& env) {
  if (!t->arg(1)->IsApply(term::kList)) {
    return Status::InvalidArgument("malformed PROJECT");
  }
  Rows owned;
  const vec::Batch* tb = nullptr;
  bool borrowed = false;
  EDS_ASSIGN_OR_RETURN(const Rows* child,
                       ChildRows(t->arg(0), env, &owned, &tb, &borrowed));
  vec::Batch conv;
  if (tb == nullptr) {
    if (!vec::Batch::FromRows(*child, &conv)) {
      return Status::Unsupported("ragged project input");
    }
    tb = &conv;
  }
  const TermList& projections = t->arg(1)->args();
  vec::ExprFrame frame;
  frame.batch = tb;
  frame.offsets = {0, static_cast<uint32_t>(tb->cols.size())};
  frame.db = db_;
  frame.library = &catalog_->functions();
  std::vector<vec::ColumnPtr> cols;
  cols.reserve(projections.size());
  for (const TermRef& p : projections) {
    EDS_ASSIGN_OR_RETURN(vec::ColumnPtr col, vec::EvalExprBatch(p, frame));
    ++stats_.batches;
    stats_.vec_rows += tb->rows;
    cols.push_back(std::move(col));
  }
  Rows out;
  out.reserve(tb->rows);
  for (size_t r = 0; r < tb->rows; ++r) {
    Row row;
    row.reserve(cols.size());
    for (const vec::ColumnPtr& col : cols) row.push_back(col->ValueAt(r));
    out.push_back(std::move(row));
  }
  if (borrowed && options_.guard != nullptr &&
      options_.guard->AddRows(child->size())) {
    return options_.guard->TripStatus();
  }
  return out;
}

Result<Rows> Executor::EvalJoinVec(const term::TermRef& t, const FixEnv& env) {
  Rows owned_a, owned_b;
  const vec::Batch* ba = nullptr;
  const vec::Batch* bb = nullptr;
  bool borrowed_a = false, borrowed_b = false;
  EDS_ASSIGN_OR_RETURN(
      const Rows* a, ChildRows(t->arg(0), env, &owned_a, &ba, &borrowed_a));
  EDS_ASSIGN_OR_RETURN(
      const Rows* b, ChildRows(t->arg(1), env, &owned_b, &bb, &borrowed_b));
  vec::Batch conv_a, conv_b;
  if (ba == nullptr) {
    if (!vec::Batch::FromRows(*a, &conv_a)) {
      return Status::Unsupported("ragged join input");
    }
    ba = &conv_a;
  }
  if (bb == nullptr) {
    if (!vec::Batch::FromRows(*b, &conv_b)) {
      return Status::Unsupported("ragged join input");
    }
    bb = &conv_b;
  }

  Rows out;
  if (!a->empty() && !b->empty()) {
    std::vector<TermList> conjuncts_at(3);
    for (const TermRef& c : term::Conjuncts(t->arg(2))) {
      const int64_t level = MaxInputIndex(c);
      if (level < 0 || level > 2) {
        return Status::RuntimeError(
            "join qualification references input beyond 2");
      }
      conjuncts_at[static_cast<size_t>(level)].push_back(c);
    }
    EvalContext ctx0 = MakeExprContext();
    ctx0.current.assign(2, nullptr);
    bool level0_false = false;
    for (const TermRef& c : conjuncts_at[0]) {
      ++stats_.qual_evaluations;
      EDS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(c, &ctx0));
      if (!ok) {
        level0_false = true;
        break;
      }
    }
    if (!level0_false) {
      StageCtx sc{db_, &catalog_->functions(), &stats_};
      vec::Batch fa;
      const vec::Batch* leftp = ba;
      for (const TermRef& c : conjuncts_at[1]) {
        vec::ExprFrame lf = RightFrame(leftp, 1, sc);
        stats_.qual_evaluations += leftp->rows;
        EDS_ASSIGN_OR_RETURN(vec::SelectionVector sel,
                             vec::EvalPredicateBatch(c, lf));
        ++stats_.batches;
        stats_.vec_rows += leftp->rows;
        vec::Batch next = leftp->GatherRows(sel);
        fa = std::move(next);
        leftp = &fa;
      }
      std::vector<uint32_t> offsets{0,
                                    static_cast<uint32_t>(ba->cols.size())};
      EDS_ASSIGN_OR_RETURN(
          vec::Batch combined,
          JoinStage(*leftp, &offsets, *bb, 2, conjuncts_at[2], sc));
      out = combined.ToRows();
    }
  }
  const size_t charge =
      (borrowed_a ? a->size() : 0) + (borrowed_b ? b->size() : 0);
  if (charge > 0 && options_.guard != nullptr &&
      options_.guard->AddRows(charge)) {
    return options_.guard->TripStatus();
  }
  return out;
}

void Executor::DedupMaybeVec(Rows* rows) {
  const size_t before = rows->size();
  if (options_.vectorized && vec::VecDedupRows(rows, &stats_.batches)) {
    stats_.vec_rows += before;
    return;
  }
  DedupRows(rows);
}

}  // namespace eds::exec
