#ifndef EDS_EXEC_VEC_KERNELS_H_
#define EDS_EXEC_VEC_KERNELS_H_

#include <vector>

#include "common/result.h"
#include "exec/vec/column.h"

namespace eds::exec::vec {

// Batched primitives mirroring the scalar builtins exactly: same 3VL
// behaviour, same value::Compare ordering, same errors. Any error returned
// here makes the executor fall back to the row path for the operator, so
// kernels may report errors coarsely — the row path then reproduces the
// precise per-row diagnostic.

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// EQ/NE/LT/LE/GT/GE over two equal-length columns: NULL operand -> NULL,
// otherwise Bool(pred(value::Compare)). Never errors (comparisons are
// defined across kinds via the total order).
ColumnVector CompareColumns(CmpOp op, const ColumnVector& a,
                            const ColumnVector& b);

// Three-valued AND/OR/NOT over columns; errors when a row that is not
// decided by FALSE/TRUE-domination has a non-boolean operand (the scalar
// evaluator's TypeError).
Result<ColumnVector> AndColumns(const ColumnVector& a, const ColumnVector& b);
Result<ColumnVector> OrColumns(const ColumnVector& a, const ColumnVector& b);
Result<ColumnVector> NotColumn(const ColumnVector& a);

// WHERE semantics over a predicate column: row i selected iff the cell is
// a valid TRUE (NULL and FALSE dropped); a valid non-boolean cell is a
// TypeError, as in EvalPredicate.
Result<SelectionVector> SelectTrue(const ColumnVector& pred);

// Join-key hashability of a column: numeric lanes hash via the widened
// double (consistent with Int(2) == Real(2.0)), bool lanes directly,
// generic columns only when every non-null value is a string (resp. every
// non-null value numeric). kNone keys force the conjunct into the residual
// (nested-loop) filter.
// kAny marks a column with no non-null values (kNullOnly): its keys never
// match anything, so it is compatible with every class.
enum class HashClass { kNone, kNumeric, kBool, kString, kAny };
HashClass ClassifyKey(const ColumnVector& col);
// Compatible when both sides can hash equal values to equal hashes.
bool HashCompatible(HashClass a, HashClass b);
// The class HashJoin should hash a (left, right) key pair under: the
// concrete side's class when one side is kAny.
HashClass CombineClasses(HashClass a, HashClass b);
// Hash of a non-null cell under `cls` (caller guarantees !IsNull(i)).
uint64_t HashCell(const ColumnVector& col, size_t i, HashClass cls);

// Matched row-index pairs of a join stage, in (left asc, right asc)
// lexicographic order — exactly the row engine's nested-loop emission
// order.
struct JoinPairs {
  SelectionVector left, right;
};

// Hash equi-join over parallel key columns (all conjuncts must match; NULL
// keys never match). `classes[k]` is CombineClasses over the k-th key pair.
// Errors with Unsupported when the output would exceed `max_pairs` (caller
// falls back to the row path rather than materializing a blow-up).
Result<JoinPairs> HashJoin(const std::vector<const ColumnVector*>& left_keys,
                           const std::vector<const ColumnVector*>& right_keys,
                           const std::vector<HashClass>& classes,
                           size_t left_rows, size_t right_rows,
                           size_t max_pairs);

// Full cross product of row indices, same order/cap contract.
Result<JoinPairs> CrossPairs(size_t left_rows, size_t right_rows,
                             size_t max_pairs);

// Set-semantics dedup of `rows` in place (sorted output, identical to
// DedupRows) via columnar hash grouping. Returns false when the input is
// too small or ragged to be worth the conversion — the caller then runs
// the sort-based row dedup. `batches` (may be null) counts kernel batches.
bool VecDedupRows(std::vector<std::vector<value::Value>>* rows,
                  size_t* batches);

}  // namespace eds::exec::vec

#endif  // EDS_EXEC_VEC_KERNELS_H_
