#include "exec/vec/column.h"

namespace eds::exec::vec {

using value::Value;
using value::ValueKind;

void ColumnVector::PushValidity(bool valid) {
  size_t word = size_ >> 6;
  if (word >= valid_.size()) valid_.push_back(0);
  if (valid) {
    valid_[word] |= uint64_t{1} << (size_ & 63);
  } else {
    ++null_count_;
  }
}

void ColumnVector::Reserve(size_t n) {
  switch (lane_) {
    case Lane::kInt64: ints_.reserve(n); break;
    case Lane::kFloat64: reals_.reserve(n); break;
    case Lane::kBool: bools_.reserve(n); break;
    case Lane::kGeneric: generic_.reserve(n); break;
    case Lane::kNullOnly: break;
  }
}

void ColumnVector::DemoteToGeneric() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(ValueAt(i));
  generic_ = std::move(boxed);
  ints_.clear();
  reals_.clear();
  bools_.clear();
  valid_.clear();
  lane_ = Lane::kGeneric;
}

void ColumnVector::AppendNull() {
  if (lane_ == Lane::kGeneric) {
    generic_.push_back(Value::Null());
    ++null_count_;
  } else {
    PushValidity(false);
    switch (lane_) {
      case Lane::kInt64: ints_.push_back(0); break;
      case Lane::kFloat64: reals_.push_back(0); break;
      case Lane::kBool: bools_.push_back(0); break;
      default: break;
    }
  }
  ++size_;
}

void ColumnVector::AppendInt(int64_t v) {
  if (lane_ == Lane::kNullOnly) {
    lane_ = Lane::kInt64;
    ints_.assign(size_, 0);
  }
  if (lane_ == Lane::kInt64) {
    PushValidity(true);
    ints_.push_back(v);
  } else if (lane_ == Lane::kGeneric) {
    generic_.push_back(Value::Int(v));
  } else {
    DemoteToGeneric();
    generic_.push_back(Value::Int(v));
  }
  ++size_;
}

void ColumnVector::AppendReal(double v) {
  if (lane_ == Lane::kNullOnly) {
    lane_ = Lane::kFloat64;
    reals_.assign(size_, 0);
  }
  if (lane_ == Lane::kFloat64) {
    PushValidity(true);
    reals_.push_back(v);
  } else if (lane_ == Lane::kGeneric) {
    generic_.push_back(Value::Real(v));
  } else {
    DemoteToGeneric();
    generic_.push_back(Value::Real(v));
  }
  ++size_;
}

void ColumnVector::AppendBool(bool v) {
  if (lane_ == Lane::kNullOnly) {
    lane_ = Lane::kBool;
    bools_.assign(size_, 0);
  }
  if (lane_ == Lane::kBool) {
    PushValidity(true);
    bools_.push_back(v ? 1 : 0);
  } else if (lane_ == Lane::kGeneric) {
    generic_.push_back(Value::Bool(v));
  } else {
    DemoteToGeneric();
    generic_.push_back(Value::Bool(v));
  }
  ++size_;
}

void ColumnVector::AppendValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull: AppendNull(); return;
    case ValueKind::kInt: AppendInt(v.AsInt()); return;
    case ValueKind::kReal: AppendReal(v.AsReal()); return;
    case ValueKind::kBool: AppendBool(v.AsBool()); return;
    default: break;
  }
  if (lane_ != Lane::kGeneric) DemoteToGeneric();
  generic_.push_back(v);
  ++size_;
}

Value ColumnVector::ValueAt(size_t i) const {
  switch (lane_) {
    case Lane::kNullOnly: return Value::Null();
    case Lane::kGeneric: return generic_[i];
    case Lane::kInt64:
      return IsNull(i) ? Value::Null() : Value::Int(ints_[i]);
    case Lane::kFloat64:
      return IsNull(i) ? Value::Null() : Value::Real(reals_[i]);
    case Lane::kBool:
      return IsNull(i) ? Value::Null() : Value::Bool(bools_[i] != 0);
  }
  return Value::Null();
}

ColumnVector ColumnVector::Gather(const SelectionVector& sel) const {
  ColumnVector out;
  out.lane_ = lane_;
  out.Reserve(sel.size());
  switch (lane_) {
    case Lane::kNullOnly:
      out.size_ = sel.size();
      out.null_count_ = sel.size();
      return out;
    case Lane::kGeneric:
      for (uint32_t i : sel) {
        out.generic_.push_back(generic_[i]);
        if (generic_[i].is_null()) ++out.null_count_;
      }
      out.size_ = sel.size();
      return out;
    default:
      break;
  }
  out.valid_.resize((sel.size() + 63) >> 6, 0);
  if (all_valid()) {
    for (size_t w = 0; w < out.valid_.size(); ++w) out.valid_[w] = ~uint64_t{0};
  }
  for (size_t k = 0; k < sel.size(); ++k) {
    uint32_t i = sel[k];
    switch (lane_) {
      case Lane::kInt64: out.ints_.push_back(ints_[i]); break;
      case Lane::kFloat64: out.reals_.push_back(reals_[i]); break;
      case Lane::kBool: out.bools_.push_back(bools_[i]); break;
      default: break;
    }
    if (!all_valid()) {
      if (IsNull(i)) {
        ++out.null_count_;
      } else {
        out.valid_[k >> 6] |= uint64_t{1} << (k & 63);
      }
    }
  }
  out.size_ = sel.size();
  return out;
}

ColumnVector ColumnVector::FromBoolData(std::vector<uint8_t> data,
                                        std::vector<uint64_t> valid,
                                        size_t null_count) {
  ColumnVector out;
  out.lane_ = Lane::kBool;
  out.size_ = data.size();
  out.null_count_ = null_count;
  if (valid.empty()) {
    // Spare high bits of the last word are allowed to be set (IsNull only
    // ever reads bits below size_).
    valid.assign((data.size() + 63) >> 6, ~uint64_t{0});
  }
  out.bools_ = std::move(data);
  out.valid_ = std::move(valid);
  return out;
}

int ColumnVector::CompareCells(size_t i, const ColumnVector& other,
                               size_t j) const {
  // Fast paths for clean typed lanes; everything else reconstructs Values
  // so the result is value::Compare by construction.
  if (lane_ == Lane::kInt64 && other.lane_ == Lane::kInt64 && !IsNull(i) &&
      !other.IsNull(j)) {
    int64_t a = ints_[i], b = other.ints_[j];
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_numeric_lane() && other.is_numeric_lane() && !IsNull(i) &&
      !other.IsNull(j)) {
    double a = NumericAt(i), b = other.NumericAt(j);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return value::Compare(ValueAt(i), other.ValueAt(j));
}

bool Batch::FromRows(const std::vector<std::vector<Value>>& rows,
                     Batch* out) {
  out->rows = rows.size();
  out->cols.clear();
  if (rows.empty()) return true;
  const size_t width = rows[0].size();
  out->cols.resize(width);
  for (ColumnVector& c : out->cols) c.Reserve(rows.size());
  for (const std::vector<Value>& row : rows) {
    if (row.size() != width) return false;
    for (size_t c = 0; c < width; ++c) out->cols[c].AppendValue(row[c]);
  }
  return true;
}

std::vector<std::vector<Value>> Batch::ToRows() const {
  std::vector<std::vector<Value>> out;
  out.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(cols.size());
    for (const ColumnVector& c : cols) row.push_back(c.ValueAt(r));
    out.push_back(std::move(row));
  }
  return out;
}

Batch Batch::GatherRows(const SelectionVector& sel) const {
  Batch out;
  out.rows = sel.size();
  out.cols.reserve(cols.size());
  for (const ColumnVector& c : cols) out.cols.push_back(c.Gather(sel));
  return out;
}

}  // namespace eds::exec::vec
