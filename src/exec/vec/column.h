#ifndef EDS_EXEC_VEC_COLUMN_H_
#define EDS_EXEC_VEC_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "value/value.h"

namespace eds::exec::vec {

// Row indices selected out of a batch, always ascending, so every gather
// preserves the row order the row-at-a-time executor would have produced —
// the vectorized path must be byte-identical, ordering included.
using SelectionVector = std::vector<uint32_t>;

// Physical layout of one column. A column starts undecided (kNullOnly) and
// commits to a typed lane on its first non-null value; a later value of any
// other kind demotes the whole column to kGeneric (boxed Values, still O(1)
// to copy). Int and Real deliberately do NOT share a lane: reconstructed
// Values must match the row engine's exactly, and widening Int(2) to 2.0
// would change the output representation.
enum class Lane : uint8_t { kNullOnly, kInt64, kFloat64, kBool, kGeneric };

// One column of a batch: a typed data vector plus a validity bitmap (bit
// set = non-null). kGeneric columns carry nullness in the Values themselves
// and keep no bitmap.
class ColumnVector {
 public:
  ColumnVector() = default;

  Lane lane() const { return lane_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }
  bool all_valid() const { return null_count_ == 0; }
  bool is_numeric_lane() const {
    return lane_ == Lane::kInt64 || lane_ == Lane::kFloat64;
  }

  bool IsNull(size_t i) const {
    switch (lane_) {
      case Lane::kNullOnly: return true;
      case Lane::kGeneric: return generic_[i].is_null();
      default:
        return (valid_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
    }
  }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double RealAt(size_t i) const { return reals_[i]; }
  // Either numeric lane widened to double (callers check is_numeric_lane()).
  double NumericAt(size_t i) const {
    return lane_ == Lane::kInt64 ? static_cast<double>(ints_[i]) : reals_[i];
  }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  const value::Value& GenericAt(size_t i) const { return generic_[i]; }

  // Reconstructs the cell as a Value identical to what the row engine
  // would carry for it.
  value::Value ValueAt(size_t i) const;

  void Reserve(size_t n);
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendReal(double v);
  void AppendBool(bool v);
  void AppendValue(const value::Value& v);

  // New column holding rows sel[0..k) of this one.
  ColumnVector Gather(const SelectionVector& sel) const;

  // Bulk assembly of a kBool column from kernel output: `data` holds 0/1
  // per row, `valid` the packed bitmap (empty means every row valid; must
  // otherwise be (n+63)/64 words with `null_count` clear bits within n).
  static ColumnVector FromBoolData(std::vector<uint8_t> data,
                                   std::vector<uint64_t> valid,
                                   size_t null_count);

  // value::Compare over cell i of this and cell j of `other`.
  int CompareCells(size_t i, const ColumnVector& other, size_t j) const;

 private:
  void DemoteToGeneric();
  void PushValidity(bool valid);

  Lane lane_ = Lane::kNullOnly;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> reals_;
  std::vector<uint8_t> bools_;
  std::vector<value::Value> generic_;
  std::vector<uint64_t> valid_;  // bit set = non-null (typed lanes only)
};

// A batch: the columnar image of a Rows block. All columns share `rows`.
struct Batch {
  size_t rows = 0;
  std::vector<ColumnVector> cols;

  // False when the input is ragged (rows of differing arity) — stored
  // tables never are, but derived row sets can be.
  static bool FromRows(const std::vector<std::vector<value::Value>>& rows,
                       Batch* out);
  std::vector<std::vector<value::Value>> ToRows() const;
  Batch GatherRows(const SelectionVector& sel) const;
};

}  // namespace eds::exec::vec

#endif  // EDS_EXEC_VEC_COLUMN_H_
