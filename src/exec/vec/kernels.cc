#include "exec/vec/kernels.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "term/term.h"

namespace eds::exec::vec {
namespace {

using value::Value;
using value::ValueKind;

// splitmix64 finalizer: cheap, well-distributed, deterministic.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashDoubleBits(double d) {
  if (d == 0) d = 0;  // fold -0.0 onto +0.0, consistent with value::Compare
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

inline uint64_t HashStringBytes(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, then mixed
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

// Hash of a NULL cell; only compared against other NULLs of the same
// column, so any fixed constant works.
constexpr uint64_t kNullCellHash = 0x7fb5d329728ea185ULL;

constexpr uint64_t kRowHashSeed = 0x84222325cbf29ce4ULL;

template <typename Pred>
ColumnVector CompareImpl(const ColumnVector& a, const ColumnVector& b,
                         Pred pred) {
  const size_t n = a.size();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint64_t> valid;
  size_t nulls = 0;
  const bool clean = a.all_valid() && b.all_valid();
  if (clean && a.lane() == Lane::kInt64 && b.lane() == Lane::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      const int64_t x = a.IntAt(i), y = b.IntAt(i);
      out[i] = pred(x < y ? -1 : (x > y ? 1 : 0)) ? 1 : 0;
    }
  } else if (clean && a.is_numeric_lane() && b.is_numeric_lane()) {
    for (size_t i = 0; i < n; ++i) {
      const double x = a.NumericAt(i), y = b.NumericAt(i);
      out[i] = pred(x < y ? -1 : (x > y ? 1 : 0)) ? 1 : 0;
    }
  } else {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      if (a.IsNull(i) || b.IsNull(i)) {
        ++nulls;
        continue;
      }
      valid[i >> 6] |= uint64_t{1} << (i & 63);
      out[i] = pred(a.CompareCells(i, b, i)) ? 1 : 0;
    }
  }
  return ColumnVector::FromBoolData(std::move(out), std::move(valid), nulls);
}

}  // namespace

ColumnVector CompareColumns(CmpOp op, const ColumnVector& a,
                            const ColumnVector& b) {
  switch (op) {
    case CmpOp::kEq:
      return CompareImpl(a, b, [](int c) { return c == 0; });
    case CmpOp::kNe:
      return CompareImpl(a, b, [](int c) { return c != 0; });
    case CmpOp::kLt:
      return CompareImpl(a, b, [](int c) { return c < 0; });
    case CmpOp::kLe:
      return CompareImpl(a, b, [](int c) { return c <= 0; });
    case CmpOp::kGt:
      return CompareImpl(a, b, [](int c) { return c > 0; });
    case CmpOp::kGe:
      return CompareImpl(a, b, [](int c) { return c >= 0; });
  }
  return CompareImpl(a, b, [](int c) { return c == 0; });
}

Result<ColumnVector> AndColumns(const ColumnVector& a, const ColumnVector& b) {
  const size_t n = a.size();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint64_t> valid;
  size_t nulls = 0;
  if (a.lane() == Lane::kBool && b.lane() == Lane::kBool && a.all_valid() &&
      b.all_valid()) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = (a.BoolAt(i) && b.BoolAt(i)) ? 1 : 0;
    }
  } else if (a.lane() == Lane::kBool && b.lane() == Lane::kBool) {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      const bool an = a.IsNull(i), bn = b.IsNull(i);
      // FALSE dominates NULL, exactly as in the scalar LogicalAnd.
      if ((!an && !a.BoolAt(i)) || (!bn && !b.BoolAt(i))) {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
      } else if (an || bn) {
        ++nulls;
      } else {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
        out[i] = 1;
      }
    }
  } else {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      const Value x = a.ValueAt(i);
      const Value y = b.ValueAt(i);
      const bool has_false =
          (x.kind() == ValueKind::kBool && !x.AsBool()) ||
          (y.kind() == ValueKind::kBool && !y.AsBool());
      if (has_false) {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
        continue;
      }
      if (x.is_null() || y.is_null()) {
        ++nulls;
        continue;
      }
      if (x.kind() != ValueKind::kBool || y.kind() != ValueKind::kBool) {
        return Status::TypeError("AND requires boolean operands");
      }
      valid[i >> 6] |= uint64_t{1} << (i & 63);
      out[i] = 1;  // neither false, neither null, both bool => both true
    }
  }
  return ColumnVector::FromBoolData(std::move(out), std::move(valid), nulls);
}

Result<ColumnVector> OrColumns(const ColumnVector& a, const ColumnVector& b) {
  const size_t n = a.size();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint64_t> valid;
  size_t nulls = 0;
  if (a.lane() == Lane::kBool && b.lane() == Lane::kBool && a.all_valid() &&
      b.all_valid()) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = (a.BoolAt(i) || b.BoolAt(i)) ? 1 : 0;
    }
  } else if (a.lane() == Lane::kBool && b.lane() == Lane::kBool) {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      const bool an = a.IsNull(i), bn = b.IsNull(i);
      // TRUE dominates NULL, exactly as in the scalar LogicalOr.
      if ((!an && a.BoolAt(i)) || (!bn && b.BoolAt(i))) {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
        out[i] = 1;
      } else if (an || bn) {
        ++nulls;
      } else {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
      }
    }
  } else {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      const Value x = a.ValueAt(i);
      const Value y = b.ValueAt(i);
      const bool has_true = (x.kind() == ValueKind::kBool && x.AsBool()) ||
                            (y.kind() == ValueKind::kBool && y.AsBool());
      if (has_true) {
        valid[i >> 6] |= uint64_t{1} << (i & 63);
        out[i] = 1;
        continue;
      }
      if (x.is_null() || y.is_null()) {
        ++nulls;
        continue;
      }
      if (x.kind() != ValueKind::kBool || y.kind() != ValueKind::kBool) {
        return Status::TypeError("OR requires boolean operands");
      }
      valid[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  return ColumnVector::FromBoolData(std::move(out), std::move(valid), nulls);
}

Result<ColumnVector> NotColumn(const ColumnVector& a) {
  const size_t n = a.size();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint64_t> valid;
  size_t nulls = 0;
  if (a.lane() == Lane::kBool && a.all_valid()) {
    for (size_t i = 0; i < n; ++i) out[i] = a.BoolAt(i) ? 0 : 1;
  } else if (a.lane() == Lane::kBool || a.lane() == Lane::kNullOnly) {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      if (a.IsNull(i)) {
        ++nulls;
        continue;
      }
      valid[i >> 6] |= uint64_t{1} << (i & 63);
      out[i] = a.BoolAt(i) ? 0 : 1;
    }
  } else {
    valid.assign((n + 63) >> 6, 0);
    for (size_t i = 0; i < n; ++i) {
      const Value x = a.ValueAt(i);
      if (x.is_null()) {
        ++nulls;
        continue;
      }
      if (x.kind() != ValueKind::kBool) {
        return Status::TypeError("NOT requires a boolean operand");
      }
      valid[i >> 6] |= uint64_t{1} << (i & 63);
      out[i] = x.AsBool() ? 0 : 1;
    }
  }
  return ColumnVector::FromBoolData(std::move(out), std::move(valid), nulls);
}

Result<SelectionVector> SelectTrue(const ColumnVector& pred) {
  const size_t n = pred.size();
  SelectionVector sel;
  switch (pred.lane()) {
    case Lane::kNullOnly:
      return sel;  // all NULL: nothing selected
    case Lane::kBool:
      sel.reserve(n);
      if (pred.all_valid()) {
        for (size_t i = 0; i < n; ++i) {
          if (pred.BoolAt(i)) sel.push_back(static_cast<uint32_t>(i));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (!pred.IsNull(i) && pred.BoolAt(i)) {
            sel.push_back(static_cast<uint32_t>(i));
          }
        }
      }
      return sel;
    case Lane::kGeneric:
      for (size_t i = 0; i < n; ++i) {
        const Value& v = pred.GenericAt(i);
        if (v.is_null()) continue;
        if (v.kind() != ValueKind::kBool) {
          return Status::TypeError("qualification is not a boolean");
        }
        if (v.AsBool()) sel.push_back(static_cast<uint32_t>(i));
      }
      return sel;
    default:
      // A whole column of valid non-booleans: the scalar path would raise
      // the TypeError on the first row.
      if (n == 0 || pred.null_count() == n) return sel;
      return Status::TypeError("qualification is not a boolean");
  }
}

HashClass ClassifyKey(const ColumnVector& col) {
  switch (col.lane()) {
    case Lane::kInt64:
    case Lane::kFloat64:
      return HashClass::kNumeric;
    case Lane::kBool:
      return HashClass::kBool;
    case Lane::kNullOnly:
      return HashClass::kAny;
    case Lane::kGeneric:
      break;
  }
  HashClass cls = HashClass::kAny;
  for (size_t i = 0; i < col.size(); ++i) {
    const Value& v = col.GenericAt(i);
    HashClass want;
    switch (v.kind()) {
      case ValueKind::kNull:
        continue;
      case ValueKind::kInt:
      case ValueKind::kReal:
        want = HashClass::kNumeric;
        break;
      case ValueKind::kBool:
        want = HashClass::kBool;
        break;
      case ValueKind::kString:
        want = HashClass::kString;
        break;
      default:
        return HashClass::kNone;  // tuples/collections: residual compare
    }
    if (cls == HashClass::kAny) {
      cls = want;
    } else if (cls != want) {
      return HashClass::kNone;
    }
  }
  return cls;
}

bool HashCompatible(HashClass a, HashClass b) {
  if (a == HashClass::kNone || b == HashClass::kNone) return false;
  return a == b || a == HashClass::kAny || b == HashClass::kAny;
}

HashClass CombineClasses(HashClass a, HashClass b) {
  return a == HashClass::kAny ? b : a;
}

uint64_t HashCell(const ColumnVector& col, size_t i, HashClass cls) {
  switch (cls) {
    case HashClass::kNumeric: {
      const double d = col.is_numeric_lane() ? col.NumericAt(i)
                                             : col.GenericAt(i).AsReal();
      return HashDoubleBits(d);
    }
    case HashClass::kBool: {
      const bool v = col.lane() == Lane::kBool ? col.BoolAt(i)
                                               : col.GenericAt(i).AsBool();
      return Mix64(v ? 3 : 7);
    }
    case HashClass::kString:
      return HashStringBytes(col.GenericAt(i).AsString());
    default:
      return 0;  // kAny columns have no non-null cells; kNone never hashed
  }
}

Result<JoinPairs> HashJoin(const std::vector<const ColumnVector*>& left_keys,
                           const std::vector<const ColumnVector*>& right_keys,
                           const std::vector<HashClass>& classes,
                           size_t left_rows, size_t right_rows,
                           size_t max_pairs) {
  JoinPairs out;
  if (left_rows == 0 || right_rows == 0) return out;
  if (right_rows > (size_t{1} << 30) || left_rows > (size_t{1} << 30)) {
    return Status::Unsupported("hash join input too large");
  }
  const size_t nkeys = left_keys.size();
  size_t buckets = 16;
  while (buckets < right_rows * 2) buckets <<= 1;
  const uint64_t mask = buckets - 1;
  std::vector<int32_t> heads(buckets, -1);
  std::vector<int32_t> nxt(right_rows, -1);
  std::vector<uint64_t> rhash(right_rows, 0);
  std::vector<uint8_t> rnull(right_rows, 0);
  for (size_t j = 0; j < right_rows; ++j) {
    uint64_t h = kRowHashSeed;
    for (size_t k = 0; k < nkeys; ++k) {
      if (right_keys[k]->IsNull(j)) {
        rnull[j] = 1;
        break;
      }
      h = Mix64(h ^ HashCell(*right_keys[k], j, classes[k]));
    }
    rhash[j] = h;
  }
  // Insert build rows in reverse so each bucket chain is ascending; probe
  // traversal then emits matches in the row engine's nested-loop order.
  for (size_t j = right_rows; j-- > 0;) {
    if (rnull[j]) continue;
    const size_t b = rhash[j] & mask;
    nxt[j] = heads[b];
    heads[b] = static_cast<int32_t>(j);
  }
  for (size_t i = 0; i < left_rows; ++i) {
    uint64_t h = kRowHashSeed;
    bool any_null = false;
    for (size_t k = 0; k < nkeys; ++k) {
      if (left_keys[k]->IsNull(i)) {
        any_null = true;
        break;
      }
      h = Mix64(h ^ HashCell(*left_keys[k], i, classes[k]));
    }
    if (any_null) continue;
    for (int32_t j = heads[h & mask]; j >= 0; j = nxt[j]) {
      if (rhash[j] != h) continue;
      bool eq = true;
      for (size_t k = 0; k < nkeys; ++k) {
        if (left_keys[k]->CompareCells(i, *right_keys[k], j) != 0) {
          eq = false;
          break;
        }
      }
      if (!eq) continue;
      if (out.left.size() >= max_pairs) {
        return Status::Unsupported("hash join output exceeds batch cap");
      }
      out.left.push_back(static_cast<uint32_t>(i));
      out.right.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

Result<JoinPairs> CrossPairs(size_t left_rows, size_t right_rows,
                             size_t max_pairs) {
  JoinPairs out;
  if (left_rows == 0 || right_rows == 0) return out;
  if (left_rows > max_pairs / right_rows) {
    return Status::Unsupported("cross product exceeds batch cap");
  }
  out.left.reserve(left_rows * right_rows);
  out.right.reserve(left_rows * right_rows);
  for (size_t i = 0; i < left_rows; ++i) {
    for (size_t j = 0; j < right_rows; ++j) {
      out.left.push_back(static_cast<uint32_t>(i));
      out.right.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

bool VecDedupRows(std::vector<std::vector<value::Value>>* rows,
                  size_t* batches) {
  const size_t n = rows->size();
  if (n < 64 || n > (size_t{1} << 30)) return false;
  Batch b;
  if (!Batch::FromRows(*rows, &b)) return false;
  if (batches) ++*batches;
  // Row hashes, accumulated column-major. Each column uses one hashing
  // scheme for all its cells, so Compare-equal cells within a column hash
  // equal (generic columns go through HashConstantValue, which already
  // folds Int(2)/Real(2.0)).
  std::vector<uint64_t> h(n, kRowHashSeed);
  for (const ColumnVector& c : b.cols) {
    switch (c.lane()) {
      case Lane::kInt64:
        for (size_t i = 0; i < n; ++i) {
          const uint64_t cell =
              c.IsNull(i) ? kNullCellHash
                          : Mix64(static_cast<uint64_t>(c.IntAt(i)));
          h[i] = Mix64(h[i] ^ cell);
        }
        break;
      case Lane::kFloat64:
        for (size_t i = 0; i < n; ++i) {
          const uint64_t cell =
              c.IsNull(i) ? kNullCellHash : HashDoubleBits(c.RealAt(i));
          h[i] = Mix64(h[i] ^ cell);
        }
        break;
      case Lane::kBool:
        for (size_t i = 0; i < n; ++i) {
          const uint64_t cell =
              c.IsNull(i) ? kNullCellHash : Mix64(c.BoolAt(i) ? 3 : 7);
          h[i] = Mix64(h[i] ^ cell);
        }
        break;
      case Lane::kNullOnly:
        for (size_t i = 0; i < n; ++i) h[i] = Mix64(h[i] ^ kNullCellHash);
        break;
      case Lane::kGeneric:
        for (size_t i = 0; i < n; ++i) {
          const Value& v = c.GenericAt(i);
          const uint64_t cell =
              v.is_null() ? kNullCellHash : term::internal::HashConstantValue(v);
          h[i] = Mix64(h[i] ^ cell);
        }
        break;
    }
  }
  // Group by hash, keeping the first occurrence of each distinct row.
  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  const uint64_t mask = buckets - 1;
  std::vector<int32_t> heads(buckets, -1);
  std::vector<int32_t> nxt(n, -1);
  std::vector<uint32_t> survivors;
  survivors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t bkt = h[i] & mask;
    bool dup = false;
    for (int32_t j = heads[bkt]; j >= 0; j = nxt[j]) {
      if (h[j] != h[i]) continue;
      bool eq = true;
      for (const ColumnVector& c : b.cols) {
        if (c.CompareCells(i, c, j) != 0) {
          eq = false;
          break;
        }
      }
      if (eq) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      survivors.push_back(static_cast<uint32_t>(i));
      nxt[i] = heads[bkt];  // only survivors enter the chains
      heads[bkt] = static_cast<int32_t>(i);
    }
  }
  // Same sorted output as the row engine's DedupRows.
  std::sort(survivors.begin(), survivors.end(),
            [&](uint32_t x, uint32_t y) {
              for (const ColumnVector& c : b.cols) {
                const int cmp = c.CompareCells(x, c, y);
                if (cmp != 0) return cmp < 0;
              }
              return false;
            });
  std::vector<std::vector<Value>> out;
  out.reserve(survivors.size());
  for (uint32_t i : survivors) out.push_back(std::move((*rows)[i]));
  rows->swap(out);
  return true;
}

}  // namespace eds::exec::vec
