#include "exec/vec/vec_eval.h"

#include <string>
#include <utility>

#include "exec/vec/kernels.h"
#include "lera/lera.h"

namespace eds::exec::vec {

using term::TermRef;
using value::Value;

namespace {

Result<ColumnPtr> EvalAttr(const TermRef& expr, const ExprFrame& frame) {
  EDS_ASSIGN_OR_RETURN(lera::AttrRef a, lera::GetAttr(expr));
  if (a.input < 1 ||
      static_cast<size_t>(a.input) + 1 > frame.offsets.size()) {
    return Status::RuntimeError("ATTR input index out of range");
  }
  const uint32_t lo = frame.offsets[static_cast<size_t>(a.input) - 1];
  const uint32_t hi = frame.offsets[static_cast<size_t>(a.input)];
  if (a.column < 1 || static_cast<uint32_t>(a.column) > hi - lo) {
    return Status::RuntimeError("ATTR column index out of range");
  }
  const ColumnVector* col =
      &frame.batch->cols[lo + static_cast<uint32_t>(a.column) - 1];
  // Aliasing constructor: borrow the batch's column, no copy, no ownership.
  return ColumnPtr(ColumnPtr{}, col);
}

ColumnPtr Broadcast(const Value& v, size_t n) {
  auto col = std::make_shared<ColumnVector>();
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) col->AppendValue(v);
  return col;
}

// Slow lane: evaluate the expression with the scalar evaluator once per
// row, reconstructing each input's current row from the batch columns.
// Costs what the row engine costs, but keeps every expression form on the
// vectorized path with semantics identical by construction.
Result<ColumnPtr> EvalPerRow(const TermRef& expr, const ExprFrame& frame) {
  const size_t n = frame.batch->rows;
  const size_t inputs = frame.offsets.size() - 1;
  std::vector<Row> rows(inputs);
  EvalContext ctx;
  ctx.db = frame.db;
  ctx.library = frame.library;
  ctx.current.resize(inputs);
  for (size_t i = 0; i < inputs; ++i) ctx.current[i] = &rows[i];
  auto out = std::make_shared<ColumnVector>();
  out->Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < inputs; ++i) {
      rows[i].clear();
      for (uint32_t c = frame.offsets[i]; c < frame.offsets[i + 1]; ++c) {
        rows[i].push_back(frame.batch->cols[c].ValueAt(r));
      }
    }
    EDS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, &ctx));
    out->AppendValue(v);
  }
  return ColumnPtr(std::move(out));
}

bool CmpOpFor(const std::string& f, CmpOp* op) {
  if (f == term::kEq) *op = CmpOp::kEq;
  else if (f == term::kNe) *op = CmpOp::kNe;
  else if (f == term::kLt) *op = CmpOp::kLt;
  else if (f == term::kLe) *op = CmpOp::kLe;
  else if (f == term::kGt) *op = CmpOp::kGt;
  else if (f == term::kGe) *op = CmpOp::kGe;
  else return false;
  return true;
}

}  // namespace

Result<ColumnPtr> EvalExprBatch(const TermRef& expr, const ExprFrame& frame) {
  if (expr->is_constant()) {
    return Broadcast(expr->constant(), frame.batch->rows);
  }
  if (lera::IsAttr(expr)) return EvalAttr(expr, frame);
  if (expr->is_apply()) {
    const std::string& f = expr->functor();
    CmpOp op;
    if (CmpOpFor(f, &op) && expr->args().size() == 2) {
      EDS_ASSIGN_OR_RETURN(ColumnPtr a, EvalExprBatch(expr->arg(0), frame));
      EDS_ASSIGN_OR_RETURN(ColumnPtr b, EvalExprBatch(expr->arg(1), frame));
      return ColumnPtr(
          std::make_shared<ColumnVector>(CompareColumns(op, *a, *b)));
    }
    if ((f == term::kAnd || f == term::kOr) && expr->args().size() >= 2) {
      EDS_ASSIGN_OR_RETURN(ColumnPtr acc, EvalExprBatch(expr->arg(0), frame));
      for (size_t i = 1; i < expr->args().size(); ++i) {
        EDS_ASSIGN_OR_RETURN(ColumnPtr next,
                             EvalExprBatch(expr->arg(i), frame));
        Result<ColumnVector> combined = f == term::kAnd
                                            ? AndColumns(*acc, *next)
                                            : OrColumns(*acc, *next);
        EDS_RETURN_IF_ERROR(combined.status());
        acc = std::make_shared<ColumnVector>(std::move(*combined));
      }
      return acc;
    }
    if (f == term::kNot && expr->args().size() == 1) {
      EDS_ASSIGN_OR_RETURN(ColumnPtr a, EvalExprBatch(expr->arg(0), frame));
      EDS_ASSIGN_OR_RETURN(ColumnVector negated, NotColumn(*a));
      return ColumnPtr(std::make_shared<ColumnVector>(std::move(negated)));
    }
  }
  return EvalPerRow(expr, frame);
}

Result<SelectionVector> EvalPredicateBatch(const TermRef& qual,
                                           const ExprFrame& frame) {
  EDS_ASSIGN_OR_RETURN(ColumnPtr pred, EvalExprBatch(qual, frame));
  return SelectTrue(*pred);
}

}  // namespace eds::exec::vec
