#ifndef EDS_EXEC_STORAGE_H_
#define EDS_EXEC_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/vec/column.h"
#include "value/value.h"

namespace eds::exec {

// A relation row: one value per column, positionally matching the catalog
// schema of the relation.
using Row = std::vector<value::Value>;
using Rows = std::vector<Row>;

// In-memory stored table.
class Table {
 public:
  explicit Table(size_t column_count)
      : column_count_(column_count), cache_(new BatchCache) {}

  size_t column_count() const { return column_count_; }
  const Rows& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  Status Insert(Row row);
  void Clear() {
    rows_.clear();
    InvalidateBatch();
  }

  // Columnar image of rows(), built lazily on first use and cached until
  // the next Insert/Clear. Concurrent readers are safe (double-checked
  // build under a mutex); readers racing writers are excluded by the same
  // serving contract that already protects rows_ itself.
  const vec::Batch& batch() const;

 private:
  // Heap-held so Table stays movable (map emplacement) despite the mutex.
  struct BatchCache {
    std::mutex mu;
    std::atomic<bool> built{false};
    vec::Batch batch;
  };

  void InvalidateBatch();

  size_t column_count_;
  Rows rows_;
  std::unique_ptr<BatchCache> cache_;
};

// An object with identity: its dynamic type name and its tuple value (field
// names included, so FIELD access works without consulting the catalog).
struct StoredObject {
  std::string type_name;
  value::Value state;  // a named tuple
};

// The object heap: OIDs are dense and never reused; objects may be shared
// by reference from any number of rows (the paper's "only objects may be
// referentially shared using object identity").
class ObjectHeap {
 public:
  // Creates an object and returns its reference value.
  value::Value New(std::string type_name, value::Value state);

  Result<const StoredObject*> Get(uint64_t oid) const;

  // Replaces the state of an existing object (methods like
  // IncreaseSalary mutate through here).
  Status Update(uint64_t oid, value::Value state);

  size_t size() const { return objects_.size(); }

 private:
  std::vector<StoredObject> objects_;  // oid = index + 1
};

// A database instance: named tables plus the object heap. Schemas live in
// the catalog; storage only checks arity.
//
// Thread-safety: the tables_ *map* is guarded by an internal mutex so
// CREATE TABLE can run while serving threads resolve table names (std::map
// nodes are pointer-stable, so a Table* stays valid across later inserts;
// tables are never dropped). Table *contents* are not locked here — data
// writes are serialized against serving by QueryService's serve gate.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status CreateTable(const std::string& name, size_t column_count);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  ObjectHeap& heap() { return heap_; }
  const ObjectHeap& heap() const { return heap_; }

 private:
  mutable std::mutex map_mu_;            // guards tables_ map structure only
  std::map<std::string, Table> tables_;  // upper-cased keys
  ObjectHeap heap_;
};

}  // namespace eds::exec

#endif  // EDS_EXEC_STORAGE_H_
