#include "exec/storage.h"

#include "common/strings.h"

namespace eds::exec {

Status Table::Insert(Row row) {
  if (row.size() != column_count_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table expects " +
        std::to_string(column_count_));
  }
  rows_.push_back(std::move(row));
  InvalidateBatch();
  return Status::OK();
}

const vec::Batch& Table::batch() const {
  BatchCache* cache = cache_.get();
  if (!cache->built.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache->mu);
    if (!cache->built.load(std::memory_order_relaxed)) {
      vec::Batch built;
      vec::Batch::FromRows(rows_, &built);  // Insert enforces arity: never ragged
      // Keep the table's width visible even with no rows, so batch
      // consumers see the right arity.
      if (rows_.empty()) built.cols.resize(column_count_);
      cache->batch = std::move(built);
      cache->built.store(true, std::memory_order_release);
    }
  }
  return cache->batch;
}

void Table::InvalidateBatch() {
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->batch = vec::Batch();
  cache_->built.store(false, std::memory_order_release);
}

value::Value ObjectHeap::New(std::string type_name, value::Value state) {
  objects_.push_back(StoredObject{std::move(type_name), std::move(state)});
  return value::Value::ObjectRef(static_cast<uint64_t>(objects_.size()));
}

Result<const StoredObject*> ObjectHeap::Get(uint64_t oid) const {
  if (oid == 0 || oid > objects_.size()) {
    return Status::RuntimeError("dangling object reference <oid:" +
                                std::to_string(oid) + ">");
  }
  return &objects_[oid - 1];
}

Status ObjectHeap::Update(uint64_t oid, value::Value state) {
  if (oid == 0 || oid > objects_.size()) {
    return Status::RuntimeError("dangling object reference <oid:" +
                                std::to_string(oid) + ">");
  }
  objects_[oid - 1].state = std::move(state);
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, size_t column_count) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto [it, inserted] =
      tables_.emplace(ToUpperAscii(name), Table(column_count));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + name + "' already stored");
  }
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no stored table '" + name + "'");
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no stored table '" + name + "'");
  }
  return &it->second;
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return tables_.count(ToUpperAscii(name)) > 0;
}

}  // namespace eds::exec
