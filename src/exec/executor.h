#ifndef EDS_EXEC_EXECUTOR_H_
#define EDS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/expr_eval.h"
#include "exec/storage.h"
#include "gov/governor.h"
#include "term/term.h"

namespace eds::obs {
class TraceSink;
}  // namespace eds::obs

namespace eds::exec {

struct ExecOptions {
  // Semi-naive fixpoint evaluation for UNION-of-SEARCH bodies; false forces
  // naive iteration everywhere (the Fig. 5 / bench_fixpoint ablation).
  bool seminaive = true;
  // Safety valve for non-terminating recursions.
  size_t max_fix_iterations = 100000;
  // When set, Eval records one span per operator evaluation (named by
  // functor, relation scans by relation name) and EvalFix one per fixpoint
  // round. Null (the default) costs a single branch per Eval call.
  obs::TraceSink* trace_sink = nullptr;
  // Query governor (may be null, the default): checked at every operator
  // evaluation and fixpoint-round boundary, with every operator's output
  // rows charged against the row ceiling. Unlike the rewriter, execution
  // cannot degrade — a partial answer is a wrong answer — so a trip
  // surfaces as Status::ResourceExhausted; ExecStats keep their partial
  // values. Non-owning; must outlive the executor.
  gov::QueryGuard* guard = nullptr;
};

struct ExecStats {
  size_t rows_scanned = 0;       // input rows materialized from storage
  size_t qual_evaluations = 0;   // qualification probes (join work proxy)
  size_t rows_output = 0;        // rows produced by the top operator
  size_t fix_iterations = 0;     // fixpoint rounds across all FIX operators
  size_t fix_tuples = 0;         // tuples accumulated by FIX operators

  void Reset() { *this = ExecStats(); }
};

// Evaluates LERA trees over an in-memory database. Deliberately simple
// physical behaviour — tuple-substitution nested loops with eager conjunct
// evaluation, set-semantics UNION, semi-naive fixpoints — so benchmark
// deltas reflect the *logical* rewrites, which is what the paper is about.
//
// Views resolve through the catalog: a RELATION reference that names a view
// evaluates the view's stored definition (query modification happens in the
// rewriter; the executor fallback keeps unrewritten plans runnable as
// baselines).
class Executor {
 public:
  // All pointers must outlive the executor.
  Executor(const catalog::Catalog* cat, const Database* db,
           ExecOptions options = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Evaluates a relational plan to its rows. Stats accumulate across calls
  // until ResetStats().
  Result<Rows> Execute(const term::TermRef& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  // Names bound by enclosing FIX operators during iteration.
  using FixEnv = std::map<std::string, const Rows*>;

  // Wraps EvalDispatch in a per-operator span when tracing is on.
  Result<Rows> Eval(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalDispatch(const term::TermRef& t, const FixEnv& env);

  // Rows for `t` that are already materialized — a fixpoint binding or a
  // stored base table — borrowed without copying (counted as scanned just
  // like an evaluated scan). Null when `t` genuinely needs evaluation
  // (views, operator trees, unknown names: Eval reports those errors).
  // SEARCH feeds on borrowed inputs where it can so a scan over a stored
  // table never deep-copies the table first.
  const Rows* TryBorrowStoredRows(const term::TermRef& t, const FixEnv& env);

  // operators.cc
  Result<Rows> EvalSearch(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalSearchWithInputs(const term::TermRef& search,
                                    const std::vector<const Rows*>& inputs);
  Result<Rows> EvalUnion(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalSetOp(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalFilter(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalProject(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalJoin(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalNest(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalUnnest(const term::TermRef& t, const FixEnv& env);

  // fixpoint_eval.cc
  Result<Rows> EvalFix(const term::TermRef& t, const FixEnv& env);

  EvalContext MakeExprContext() const;

  const catalog::Catalog* catalog_;
  const Database* db_;
  ExecOptions options_;
  ExecStats stats_;
};

// Sorts rows lexicographically and removes duplicates (set semantics).
void DedupRows(Rows* rows);

// Lexicographic row comparison consistent with value::Compare.
int CompareRows(const Row& a, const Row& b);

}  // namespace eds::exec

#endif  // EDS_EXEC_EXECUTOR_H_
