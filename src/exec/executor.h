#ifndef EDS_EXEC_EXECUTOR_H_
#define EDS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/expr_eval.h"
#include "exec/storage.h"
#include "gov/governor.h"
#include "term/term.h"

namespace eds::obs {
class TraceSink;
}  // namespace eds::obs

namespace eds::exec {

struct ExecOptions {
  // Semi-naive fixpoint evaluation for UNION-of-SEARCH bodies; false forces
  // naive iteration everywhere (the Fig. 5 / bench_fixpoint ablation).
  bool seminaive = true;
  // Safety valve for non-terminating recursions.
  size_t max_fix_iterations = 100000;
  // When set, Eval records one span per operator evaluation (named by
  // functor, relation scans by relation name) and EvalFix one per fixpoint
  // round. Null (the default) costs a single branch per Eval call.
  obs::TraceSink* trace_sink = nullptr;
  // Query governor (may be null, the default): checked at every operator
  // evaluation and fixpoint-round boundary, with every operator's output
  // rows charged against the row ceiling. Unlike the rewriter, execution
  // cannot degrade — a partial answer is a wrong answer — so a trip
  // surfaces as Status::ResourceExhausted; ExecStats keep their partial
  // values. Non-owning; must outlive the executor.
  gov::QueryGuard* guard = nullptr;
  // Columnar batch execution for SEARCH/FILTER/PROJECT/JOIN/DEDUP (and the
  // dedups inside UNION, set ops and fixpoint rounds). Results are
  // byte-identical to the row path — operators the kernels cannot handle
  // fall back per operator (counted in ExecStats::vec_fallbacks). False
  // forces the row-at-a-time oracle everywhere.
  bool vectorized = true;
};

struct ExecStats {
  size_t rows_scanned = 0;       // input rows materialized from storage
  size_t qual_evaluations = 0;   // qualification probes (join work proxy)
  size_t rows_output = 0;        // rows produced by the top operator
  size_t fix_iterations = 0;     // fixpoint rounds across all FIX operators
  size_t fix_tuples = 0;         // tuples accumulated by FIX operators
  size_t batches = 0;            // vectorized kernel invocations
  size_t vec_rows = 0;           // rows pushed through vectorized kernels
  size_t vec_fallbacks = 0;      // operators that fell back to the row path
  size_t value_copies = 0;       // Value copy-constructions during Execute()

  void Reset() { *this = ExecStats(); }
};

// Evaluates LERA trees over an in-memory database. Deliberately simple
// physical behaviour — tuple-substitution nested loops with eager conjunct
// evaluation, set-semantics UNION, semi-naive fixpoints — so benchmark
// deltas reflect the *logical* rewrites, which is what the paper is about.
//
// Views resolve through the catalog: a RELATION reference that names a view
// evaluates the view's stored definition (query modification happens in the
// rewriter; the executor fallback keeps unrewritten plans runnable as
// baselines).
class Executor {
 public:
  // All pointers must outlive the executor.
  Executor(const catalog::Catalog* cat, const Database* db,
           ExecOptions options = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Evaluates a relational plan to its rows. Stats accumulate across calls
  // until ResetStats().
  Result<Rows> Execute(const term::TermRef& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  // Names bound by enclosing FIX operators during iteration.
  using FixEnv = std::map<std::string, const Rows*>;

  // Wraps EvalDispatch in a per-operator span when tracing is on.
  Result<Rows> Eval(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalDispatch(const term::TermRef& t, const FixEnv& env);

  // Rows for `t` that are already materialized — a fixpoint binding or a
  // stored base table — borrowed without copying (counted as scanned just
  // like an evaluated scan). Null when `t` genuinely needs evaluation
  // (views, operator trees, unknown names: Eval reports those errors).
  // SEARCH feeds on borrowed inputs where it can so a scan over a stored
  // table never deep-copies the table first. When `batch` is non-null it
  // receives the table's cached columnar image (null for fixpoint
  // bindings, which are row vectors).
  const Rows* TryBorrowStoredRows(const term::TermRef& t, const FixEnv& env,
                                  const vec::Batch** batch = nullptr);

  // operators.cc
  Result<Rows> EvalSearch(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalSearchWithInputs(const term::TermRef& search,
                                    const std::vector<const Rows*>& inputs);
  Result<Rows> EvalUnion(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalSetOp(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalFilter(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalProject(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalJoin(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalNest(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalUnnest(const term::TermRef& t, const FixEnv& env);

  // fixpoint_eval.cc
  Result<Rows> EvalFix(const term::TermRef& t, const FixEnv& env);

  // vec/vec_exec.cc — vectorized operators. Callers go through the
  // *MaybeVec wrappers: a vectorized attempt whose error is anything but
  // ResourceExhausted (a governor trip, always final) restores the stats
  // snapshot, counts a fallback and reruns the row-path oracle, which
  // reproduces the precise user-visible error or result.
  Result<Rows> SearchWithInputsMaybeVec(
      const term::TermRef& search, const std::vector<const Rows*>& inputs,
      const std::vector<const vec::Batch*>& batches);
  Result<Rows> EvalSearchWithInputsVec(
      const term::TermRef& search, const std::vector<const Rows*>& inputs,
      const std::vector<const vec::Batch*>& batches);
  Result<Rows> EvalFilterVec(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalProjectVec(const term::TermRef& t, const FixEnv& env);
  Result<Rows> EvalJoinVec(const term::TermRef& t, const FixEnv& env);
  // Sorted set-semantics dedup: vectorized hash grouping when profitable,
  // DedupRows otherwise; output identical either way.
  void DedupMaybeVec(Rows* rows);
  // Borrows `t`'s rows (setting *batch, *borrowed) or evaluates into
  // *owned. Used by the unary/binary vectorized operators.
  Result<const Rows*> ChildRows(const term::TermRef& t, const FixEnv& env,
                                Rows* owned, const vec::Batch** batch,
                                bool* borrowed);

  EvalContext MakeExprContext() const;

  const catalog::Catalog* catalog_;
  const Database* db_;
  ExecOptions options_;
  ExecStats stats_;
};

// Sorts rows lexicographically and removes duplicates (set semantics).
void DedupRows(Rows* rows);

// Lexicographic row comparison consistent with value::Compare.
int CompareRows(const Row& a, const Row& b);

}  // namespace eds::exec

#endif  // EDS_EXEC_EXECUTOR_H_
