#include "exec/session.h"

#include "exec/typecheck.h"

#include <iostream>

#include "esql/analyzer.h"
#include "esql/parser.h"
#include "esql/translator.h"
#include "common/strings.h"
#include "lera/printer.h"
#include "lera/schema.h"
#include "lint/lint.h"
#include "magic/magic.h"
#include "obs/trace.h"
#include "rules/semantic.h"
#include "verify/verify.h"

namespace eds::exec {

namespace {

// Builds a term from a constant ESQL expression (INSERT values): literals
// and pure function calls like MakeSet('a', 'b'); column references and
// quantifiers are rejected.
Result<term::TermRef> ConstantExprToTerm(const esql::ExprPtr& e) {
  switch (e->kind) {
    case esql::ExprKind::kLiteral:
      return term::Term::Constant(e->literal);
    case esql::ExprKind::kCall: {
      term::TermList args;
      args.reserve(e->args.size());
      for (const esql::ExprPtr& a : e->args) {
        EDS_ASSIGN_OR_RETURN(term::TermRef t, ConstantExprToTerm(a));
        args.push_back(std::move(t));
      }
      return term::Term::Apply(e->name, std::move(args));
    }
    default:
      return Status::InvalidArgument(
          "INSERT values must be constant expressions, got " + e->ToString());
  }
}

}  // namespace

Session::Session() : Session(rules::OptimizerOptions{}) {}

Session::Session(rules::OptimizerOptions optimizer_options)
    : optimizer_options_(optimizer_options) {}

Result<rules::Optimizer*> Session::optimizer() {
  if (optimizer_ == nullptr || optimizer_dirty_) {
    EDS_ASSIGN_OR_RETURN(
        optimizer_, rules::MakeDefaultOptimizer(&catalog_, optimizer_options_));
    optimizer_dirty_ = false;
  }
  return optimizer_.get();
}

Status Session::RebuildOptimizer() {
  optimizer_dirty_ = true;
  ++rules_epoch_;
  return optimizer().status();
}

Status Session::AddConstraint(const std::string& name,
                              const std::string& rule_text) {
  return AddConstraint(name, rule_text, ConstraintOptions{});
}

Status Session::AddConstraint(const std::string& name,
                              const std::string& rule_text,
                              const ConstraintOptions& options) {
  if (options.run_lint || options.run_verify) {
    // The same registry the generated optimizer will run the rules under.
    rewrite::BuiltinRegistry builtins;
    builtins.InstallStandard();
    magic::InstallMagicBuiltins(&builtins);
    rules::InstallSemanticBuiltins(&builtins);
    auto surface = [&](const lint::LintReport& report) {
      for (const lint::Diagnostic& d : report.diagnostics()) {
        if (options.diagnostics != nullptr) {
          options.diagnostics->Add(d);
        } else {
          std::cerr << "constraint '" << name << "': " << d.ToString()
                    << "\n";
        }
      }
    };
    if (options.run_lint) {
      lint::LintOptions lo;
      lo.catalog = &catalog_;
      surface(lint::LintSource(rule_text, builtins, lo));
    }
    if (options.run_verify) {
      verify::VerifyOptions vo = options.verify_options != nullptr
                                     ? *options.verify_options
                                     : verify::VerifyOptions{};
      lint::LintReport vreport =
          verify::VerifyLibrary(rule_text, builtins, vo);
      surface(vreport);
      if (vreport.has_errors()) {
        std::string ids;
        for (const lint::Diagnostic& d : vreport.diagnostics()) {
          if (d.severity != lint::Severity::kError) continue;
          if (!ids.empty()) ids += ", ";
          ids += d.id;
          if (!d.rule.empty()) ids += " (rule '" + d.rule + "')";
        }
        return Status::InvalidArgument("constraint '" + name +
                                       "' rejected: soundness verification "
                                       "failed: " +
                                       ids);
      }
    }
  }
  EDS_RETURN_IF_ERROR(
      catalog_.AddConstraint(catalog::ConstraintDef{name, rule_text}));
  optimizer_dirty_ = true;
  ++rules_epoch_;
  return Status::OK();
}

Status Session::ApplyStatement(const esql::Statement& stmt) {
  switch (stmt.kind) {
    case esql::StatementKind::kCreateType: {
      esql::Analyzer analyzer(&catalog_);
      return analyzer.ApplyCreateType(stmt);
    }
    case esql::StatementKind::kCreateTable: {
      esql::Analyzer analyzer(&catalog_);
      EDS_RETURN_IF_ERROR(analyzer.ApplyCreateTable(stmt));
      return db_.CreateTable(stmt.name, stmt.columns.size());
    }
    case esql::StatementKind::kCreateView: {
      esql::Translator translator(&catalog_);
      EDS_ASSIGN_OR_RETURN(catalog::ViewDef def, translator.BuildView(stmt));
      def.source_text = stmt.source;
      return catalog_.CreateView(std::move(def));
    }
    case esql::StatementKind::kInsert: {
      EDS_ASSIGN_OR_RETURN(Table* table, db_.GetTable(stmt.name));
      EDS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                           catalog_.FindTable(stmt.name));
      EvalContext ctx;
      ctx.db = &db_;
      ctx.library = &catalog_.functions();
      for (const std::vector<esql::ExprPtr>& row_exprs : stmt.insert_rows) {
        Row row;
        row.reserve(row_exprs.size());
        for (const esql::ExprPtr& e : row_exprs) {
          EDS_ASSIGN_OR_RETURN(term::TermRef t, ConstantExprToTerm(e));
          EDS_ASSIGN_OR_RETURN(value::Value v, EvalExpr(t, &ctx));
          row.push_back(std::move(v));
        }
        // §6.1: inserted data must satisfy the declared types (enumeration
        // domains included).
        EDS_RETURN_IF_ERROR(CheckRowAgainstSchema(
            row, def->columns, &db_.heap(), &catalog_.types()));
        EDS_RETURN_IF_ERROR(table->Insert(std::move(row)));
      }
      return Status::OK();
    }
    case esql::StatementKind::kSelect:
      return Status::OK();  // ExecuteScript skips SELECTs before dispatch
  }
  return Status::Internal("unreachable statement kind");
}

Status Session::Apply(const esql::Statement& stmt) {
  if (stmt.kind == esql::StatementKind::kSelect) {
    return Status::InvalidArgument(
        "Apply: SELECT is a query, not a DDL/INSERT statement");
  }
  return ApplyStatement(stmt);
}

Status Session::ExecuteScript(std::string_view esql) {
  EDS_ASSIGN_OR_RETURN(std::vector<esql::Statement> stmts,
                       esql::ParseScript(esql));
  for (const esql::Statement& stmt : stmts) {
    if (stmt.kind == esql::StatementKind::kSelect) {
      // Ignore SELECT results inside scripts.
      continue;
    }
    EDS_RETURN_IF_ERROR(ApplyStatement(stmt));
  }
  return Status::OK();
}

Result<term::TermRef> Session::Translate(std::string_view esql_select) {
  return TranslateTimed(esql_select, nullptr);
}

Result<term::TermRef> Session::TranslateTimed(std::string_view esql_select,
                                              PhaseTimes* times) {
  uint64_t t0 = obs::NowNs();
  esql::Statement stmt;
  {
    obs::Span span(trace_sink_, "phase.parse", "phase");
    EDS_ASSIGN_OR_RETURN(stmt, esql::ParseStatement(esql_select));
  }
  uint64_t t1 = obs::NowNs();
  if (times != nullptr) times->parse_ns = t1 - t0;
  if (stmt.kind != esql::StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  obs::Span span(trace_sink_, "phase.translate", "phase");
  esql::Translator translator(&catalog_);
  Result<term::TermRef> plan = translator.TranslateQuery(*stmt.select);
  if (times != nullptr) times->translate_ns = obs::NowNs() - t1;
  return plan;
}

Result<rewrite::RewriteOutcome> Session::Rewrite(
    const term::TermRef& plan, const rewrite::RewriteOptions& options) {
  EDS_ASSIGN_OR_RETURN(rules::Optimizer * opt, optimizer());
  rewrite::RewriteOptions effective = options;
  if (effective.trace_sink == nullptr) effective.trace_sink = trace_sink_;
  obs::Span span(effective.trace_sink, "phase.rewrite", "phase");
  return opt->Rewrite(plan, effective);
}

Result<Rows> Session::Run(const term::TermRef& plan,
                          const ExecOptions& options, ExecStats* stats_out) {
  ExecOptions effective = options;
  if (effective.trace_sink == nullptr) effective.trace_sink = trace_sink_;
  obs::Span span(effective.trace_sink, "phase.execute", "phase");
  Executor executor(&catalog_, &db_, effective);
  Result<Rows> rows = executor.Execute(plan);
  if (stats_out != nullptr) *stats_out = executor.stats();
  return rows;
}

Result<QueryResult> Session::Query(std::string_view esql,
                                   const QueryOptions& options) {
  uint64_t q0 = obs::NowNs();
  obs::Span query_span(trace_sink_, "session.query", "session");
  if (trace_sink_ != nullptr) {
    // A truncated copy of the query text labels the span in the timeline.
    std::string text(esql.substr(0, 120));
    query_span.Arg("esql", text);
  }
  QueryResult result;
  EDS_ASSIGN_OR_RETURN(term::TermRef raw,
                       TranslateTimed(esql, &result.phase_times));
  result.raw_plan = raw;
  // One guard spans the whole pipeline when limits are set. Sticky trips
  // give the right cross-phase semantics for free: a deadline blown (or a
  // cancellation observed) during rewrite degrades that phase AND fails
  // execution at its first chokepoint — time is up either way.
  gov::QueryGuard guard;
  const bool governed = options.limits.any();
  if (governed) guard.Arm(options.limits);
  term::TermRef plan = raw;
  uint64_t t0 = obs::NowNs();
  if (options.rewrite) {
    rewrite::RewriteOptions rw = options.rewrite_options;
    if (governed && rw.guard == nullptr) rw.guard = &guard;
    EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome, Rewrite(raw, rw));
    plan = outcome.term;
    result.rewrite_stats = outcome.stats;
    result.phase_times.rewrite_ns = obs::NowNs() - t0;
    if (outcome.stats.safety_stop) {
      result.warnings.push_back(
          "rewrite stopped early: max_applications (" +
          std::to_string(rw.max_applications) +
          ") reached; results are correct but the plan may be "
          "under-optimized");
    }
    if (outcome.stats.trip.tripped()) {
      result.rewrite_trip = outcome.stats.trip;
      result.warnings.push_back(
          "rewrite degraded by query governor (" +
          outcome.stats.trip.ToString() +
          "); best-so-far plan used, results are correct but the plan may "
          "be under-optimized");
    }
  }
  result.optimized_plan = plan;
  // A node-ceiling trip is a rewrite-phase budget: the plan stops improving
  // but the query still runs. Re-arm for the remaining phases without the
  // node ceiling (and with whatever wall-clock budget is left) — a sticky
  // node trip would otherwise fail execution over a resource it does not
  // consume.
  if (governed && guard.tripped() &&
      guard.trip().kind == gov::TripKind::kNodeCeiling) {
    gov::GovernorLimits rest = options.limits;
    rest.max_term_nodes = 0;
    if (rest.deadline_ms != 0) {
      uint64_t elapsed_ms = (obs::NowNs() - q0) / 1'000'000ULL;
      rest.deadline_ms = elapsed_ms < rest.deadline_ms
                             ? rest.deadline_ms - elapsed_ms
                             : 1;  // nearly spent: trip on the first probe
    }
    guard.Arm(rest);
  }
  uint64_t t1 = obs::NowNs();
  {
    obs::Span span(trace_sink_, "phase.schema", "phase");
    EDS_ASSIGN_OR_RETURN(
        lera::Schema schema,
        lera::InferSchema(plan, catalog_, nullptr, nullptr,
                          governed ? &guard : nullptr));
    for (const types::Field& f : schema) result.columns.push_back(f.name);
  }
  uint64_t t2 = obs::NowNs();
  result.phase_times.schema_ns = t2 - t1;
  ExecOptions exec_options = options.exec_options;
  if (governed && exec_options.guard == nullptr) exec_options.guard = &guard;
  EDS_ASSIGN_OR_RETURN(result.rows,
                       Run(plan, exec_options, &result.exec_stats));
  uint64_t t3 = obs::NowNs();
  result.phase_times.exec_ns = t3 - t2;
  result.phase_times.total_ns = t3 - q0;
  return result;
}

Result<value::Value> Session::NewObject(
    const std::string& type_name,
    std::vector<std::pair<std::string, value::Value>> fields) {
  EDS_ASSIGN_OR_RETURN(types::TypeRef type, catalog_.types().Find(type_name));
  if (!type->is_object()) {
    return Status::TypeError("'" + type_name + "' is not an object type");
  }
  std::vector<std::string> names;
  std::vector<value::Value> values;
  names.reserve(fields.size());
  values.reserve(fields.size());
  for (auto& [name, v] : fields) {
    if (type->FindField(name) == nullptr) {
      return Status::TypeError("object type " + type_name +
                               " has no attribute '" + name + "'");
    }
    names.push_back(name);
    values.push_back(std::move(v));
  }
  return db_.heap().New(type_name, value::Value::NamedTuple(
                                       std::move(names), std::move(values)));
}

Status Session::InsertRow(const std::string& table, Row row) {
  EDS_ASSIGN_OR_RETURN(Table* t, db_.GetTable(table));
  EDS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                       catalog_.FindTable(table));
  EDS_RETURN_IF_ERROR(CheckRowAgainstSchema(row, def->columns, &db_.heap(),
                                            &catalog_.types()));
  return t->Insert(std::move(row));
}

namespace {

// DDL text for a type's *structure* (not its name): used by DumpSchema,
// which cannot rely on Type::ToString for aliases (a named alias prints as
// its own name).
std::string TypeStructureDdl(const types::TypeRef& t) {
  using types::TypeKind;
  switch (t->kind()) {
    case TypeKind::kEnumeration: {
      std::string out = "ENUMERATION OF (";
      for (size_t i = 0; i < t->enum_values().size(); ++i) {
        if (i > 0) out += ", ";
        out += "'" + t->enum_values()[i] + "'";
      }
      return out + ")";
    }
    case TypeKind::kTuple:
    case TypeKind::kObject: {
      std::string out =
          t->kind() == TypeKind::kObject ? "OBJECT TUPLE (" : "TUPLE (";
      for (size_t i = 0; i < t->fields().size(); ++i) {
        if (i > 0) out += ", ";
        out += t->fields()[i].name + " : " + t->fields()[i].type->ToString();
      }
      return out + ")";
    }
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray:
      return std::string(types::TypeKindName(t->kind())) + " OF " +
             (t->element() != nullptr ? t->element()->ToString() : "ANY");
    default:
      return types::TypeKindName(t->kind());
  }
}

}  // namespace

std::string Session::DumpSchema() const {
  std::string out = "-- schema dump (regenerate a session with "
                    "ExecuteScript)\n";
  for (const std::string& name : catalog_.types().UserTypeNames()) {
    auto type = catalog_.types().Find(name);
    if (!type.ok()) continue;
    out += "TYPE " + name + " ";
    if ((*type)->is_object() && (*type)->supertype() != nullptr) {
      out += "SUBTYPE OF " + (*type)->supertype()->name() + " ";
    }
    out += TypeStructureDdl(*type);
    // Attach ADT function signatures whose receiver is this object type.
    if ((*type)->is_object()) {
      for (const auto& [key, sig] : catalog_.function_sigs()) {
        if (!sig.params.empty() && sig.params[0]->is_object() &&
            EqualsIgnoreCase(sig.params[0]->name(), name)) {
          out += "\n  FUNCTION " + sig.name + "(";
          for (size_t i = 0; i < sig.params.size(); ++i) {
            if (i > 0) out += ", ";
            out += "P" + std::to_string(i + 1) + " " +
                   sig.params[i]->ToString();
          }
          out += ")";
        }
      }
    }
    out += ";\n";
  }
  for (const std::string& name : catalog_.RelationNamesInOrder()) {
    if (catalog_.HasTable(name)) {
      auto table = catalog_.FindTable(name);
      if (!table.ok()) continue;
      out += "CREATE TABLE " + name + " (";
      for (size_t i = 0; i < (*table)->columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += (*table)->columns[i].name + " : " +
               (*table)->columns[i].type->ToString();
      }
      out += ");\n";
    } else if (catalog_.HasView(name)) {
      auto view = catalog_.FindView(name);
      if (!view.ok()) continue;
      if (!(*view)->source_text.empty()) {
        out += (*view)->source_text;
        if (out.back() != ';') out += ';';
        out += "\n";
      } else {
        out += "-- view " + name +
               " was created without ESQL source; LERA definition:\n-- " +
               (*view)->definition->ToString() + "\n";
      }
    }
  }
  return out;
}

Result<std::string> Session::Explain(std::string_view esql_select) {
  EDS_ASSIGN_OR_RETURN(term::TermRef raw, Translate(esql_select));
  rewrite::RewriteOptions options;
  options.collect_trace = true;
  EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                       Rewrite(raw, options));
  std::string out = "== raw plan ==\n" + lera::FormatPlan(raw);
  out += "== rewrite trace (" + std::to_string(outcome.trace.size()) +
         " applications, " + std::to_string(outcome.stats.condition_checks) +
         " condition checks) ==\n";
  for (const rewrite::TraceEntry& entry : outcome.trace) {
    out += "  [" + entry.block + "/" + entry.rule + "] " +
           entry.before->ToString() + "\n    --> " +
           entry.after->ToString() + "\n";
  }
  out += "== optimized plan ==\n" + lera::FormatPlan(outcome.term);
  return out;
}

}  // namespace eds::exec

