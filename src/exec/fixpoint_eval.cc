#include <algorithm>

#include "common/strings.h"
#include "exec/executor.h"
#include "gov/failpoint.h"
#include "lera/lera.h"
#include "magic/magic.h"
#include "obs/trace.h"

namespace eds::exec {

using term::TermList;
using term::TermRef;

namespace {

// True if `rows` (sorted) contains `row`.
bool ContainsRow(const Rows& sorted, const Row& row) {
  return std::binary_search(sorted.begin(), sorted.end(), row,
                            [](const Row& a, const Row& b) {
                              return CompareRows(a, b) < 0;
                            });
}

}  // namespace

// FIX(R, body) computes the least fixpoint R = body(R) by iteration.
//
// Semi-naive mode applies when the body is UNION(SET(branches...)) and
// every branch that references R is a SEARCH whose references to R are
// direct inputs: each round evaluates the recursive branches once per
// R-occurrence with that occurrence bound to the previous round's delta and
// the others to the full accumulated relation. Otherwise (or when
// options_.seminaive is false) naive iteration re-evaluates the whole body
// against the accumulated relation each round — the bench_fixpoint
// ablation's baseline.
Result<Rows> Executor::EvalFix(const term::TermRef& t, const FixEnv& env) {
  EDS_ASSIGN_OR_RETURN(std::string rel_name, lera::FixRelationName(t));
  EDS_ASSIGN_OR_RETURN(TermRef body, lera::FixBody(t));
  const std::string key = ToUpperAscii(rel_name);

  // Decide whether semi-naive evaluation applies.
  bool seminaive = options_.seminaive && lera::IsUnion(body);
  TermList branches;
  if (seminaive) {
    EDS_ASSIGN_OR_RETURN(branches, lera::UnionInputs(body));
    for (const TermRef& b : branches) {
      if (!magic::ReferencesRelation(b, rel_name)) continue;
      if (!lera::IsSearch(b)) {
        seminaive = false;
        break;
      }
      EDS_ASSIGN_OR_RETURN(TermList inputs, lera::SearchInputs(b));
      for (const TermRef& in : inputs) {
        // Every reference to R must be a direct input.
        if (magic::ReferencesRelation(in, rel_name) &&
            !lera::IsRelation(in)) {
          seminaive = false;
          break;
        }
      }
      if (!seminaive) break;
    }
  }

  Rows total;  // sorted, deduplicated accumulation
  if (!seminaive) {
    // Naive iteration: R_{i+1} = R_i ∪ body(R_i).
    for (size_t round = 0; round < options_.max_fix_iterations; ++round) {
      EDS_FAIL_POINT("exec.fix.round");
      if (options_.guard != nullptr && options_.guard->Check()) {
        return options_.guard->TripStatus();
      }
      ++stats_.fix_iterations;
      obs::Span round_span(options_.trace_sink, "exec.fix.round", "exec");
      if (options_.trace_sink != nullptr) {
        round_span.Arg("round", static_cast<int64_t>(round));
      }
      FixEnv inner = env;
      inner[key] = &total;
      EDS_ASSIGN_OR_RETURN(Rows produced, Eval(body, inner));
      size_t before = total.size();
      total.insert(total.end(), std::make_move_iterator(produced.begin()),
                   std::make_move_iterator(produced.end()));
      DedupMaybeVec(&total);
      stats_.fix_tuples += total.size() - before;
      if (options_.trace_sink != nullptr) {
        round_span.Arg("new_tuples",
                       static_cast<int64_t>(total.size() - before));
      }
      if (total.size() == before) return total;
    }
    return Status::ResourceExhausted("fixpoint " + rel_name +
                                     " exceeded max iterations");
  }

  // Semi-naive. Round 0: the full body against the empty relation seeds
  // both the total and the delta (recursive branches contribute nothing).
  Rows delta;
  {
    ++stats_.fix_iterations;
    FixEnv inner = env;
    inner[key] = &total;
    EDS_ASSIGN_OR_RETURN(Rows produced, Eval(body, inner));
    DedupMaybeVec(&produced);
    total = produced;
    delta = std::move(produced);
    stats_.fix_tuples += total.size();
  }

  for (size_t round = 0; !delta.empty(); ++round) {
    if (round >= options_.max_fix_iterations) {
      return Status::ResourceExhausted("fixpoint " + rel_name +
                                       " exceeded max iterations");
    }
    EDS_FAIL_POINT("exec.fix.round");
    if (options_.guard != nullptr && options_.guard->Check()) {
      return options_.guard->TripStatus();
    }
    ++stats_.fix_iterations;
    obs::Span round_span(options_.trace_sink, "exec.fix.round", "exec");
    if (options_.trace_sink != nullptr) {
      round_span.Arg("round", static_cast<int64_t>(round + 1));
      round_span.Arg("delta_in", static_cast<int64_t>(delta.size()));
    }
    Rows produced;
    for (const TermRef& branch : branches) {
      if (!magic::ReferencesRelation(branch, rel_name)) continue;
      EDS_ASSIGN_OR_RETURN(TermList input_terms, lera::SearchInputs(branch));
      // Occurrence positions of R among the branch inputs.
      std::vector<size_t> occurrences;
      for (size_t i = 0; i < input_terms.size(); ++i) {
        if (lera::IsRelation(input_terms[i])) {
          auto name = lera::RelationName(input_terms[i]);
          if (name.ok() && EqualsIgnoreCase(*name, rel_name)) {
            occurrences.push_back(i);
          }
        }
      }
      // One pass per occurrence: that occurrence sees the delta, the rest
      // see the full relation.
      for (size_t which : occurrences) {
        // Delta/total/stored inputs are borrowed, not copied, per round;
        // `owned` is reserved so pointers to its elements stay stable.
        // Delta/total bindings are row vectors, so their batch slot stays
        // null and the vectorized search converts them per round.
        std::vector<Rows> owned;
        owned.reserve(input_terms.size());
        std::vector<const Rows*> inputs;
        inputs.reserve(input_terms.size());
        std::vector<const vec::Batch*> batches;
        batches.reserve(input_terms.size());
        for (size_t i = 0; i < input_terms.size(); ++i) {
          if (i == which) {
            inputs.push_back(&delta);
            batches.push_back(nullptr);
            continue;
          }
          if (std::find(occurrences.begin(), occurrences.end(), i) !=
              occurrences.end()) {
            inputs.push_back(&total);
            batches.push_back(nullptr);
            continue;
          }
          FixEnv inner = env;
          inner[key] = &total;
          const vec::Batch* batch = nullptr;
          if (const Rows* stored =
                  TryBorrowStoredRows(input_terms[i], inner, &batch)) {
            inputs.push_back(stored);
            batches.push_back(batch);
            continue;
          }
          Result<Rows> rows = Eval(input_terms[i], inner);
          EDS_RETURN_IF_ERROR(rows.status());
          owned.push_back(std::move(*rows));
          inputs.push_back(&owned.back());
          batches.push_back(nullptr);
        }
        EDS_ASSIGN_OR_RETURN(Rows branch_rows,
                             SearchWithInputsMaybeVec(branch, inputs, batches));
        produced.insert(produced.end(),
                        std::make_move_iterator(branch_rows.begin()),
                        std::make_move_iterator(branch_rows.end()));
      }
    }
    DedupMaybeVec(&produced);
    Rows new_delta;
    for (Row& row : produced) {
      if (!ContainsRow(total, row)) new_delta.push_back(std::move(row));
    }
    DedupRows(&new_delta);
    if (new_delta.empty()) break;
    stats_.fix_tuples += new_delta.size();
    total.insert(total.end(), new_delta.begin(), new_delta.end());
    DedupRows(&total);
    delta = std::move(new_delta);
  }
  return total;
}

}  // namespace eds::exec
