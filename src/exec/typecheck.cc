#include "exec/typecheck.h"

#include <algorithm>

#include "common/strings.h"

namespace eds::exec {

using types::Type;
using types::TypeKind;
using types::TypeRef;
using value::Value;
using value::ValueKind;

namespace {

Status Mismatch(const Value& v, const TypeRef& type,
                const std::string& detail) {
  return Status::TypeError("value " + v.ToString() +
                           " does not conform to type " + type->ToString() +
                           (detail.empty() ? "" : " (" + detail + ")"));
}

bool KindMatchesCollection(ValueKind vk, TypeKind tk) {
  switch (tk) {
    case TypeKind::kSet: return vk == ValueKind::kSet;
    case TypeKind::kBag: return vk == ValueKind::kBag;
    case TypeKind::kList: return vk == ValueKind::kList;
    case TypeKind::kArray: return vk == ValueKind::kArray;
    case TypeKind::kCollection:
      return vk == ValueKind::kSet || vk == ValueKind::kBag ||
             vk == ValueKind::kList || vk == ValueKind::kArray;
    default: return false;
  }
}

}  // namespace

Status CheckValueAgainstType(const value::Value& v,
                             const types::TypeRef& type,
                             const ObjectHeap* heap,
                             const types::TypeRegistry* registry) {
  if (type == nullptr) return Status::Internal("null type in check");
  if (v.is_null()) return Status::OK();
  switch (type->kind()) {
    case TypeKind::kAny:
      return Status::OK();
    case TypeKind::kBool:
      if (v.kind() != ValueKind::kBool) return Mismatch(v, type, "");
      return Status::OK();
    case TypeKind::kInt:
      if (v.kind() != ValueKind::kInt) return Mismatch(v, type, "");
      return Status::OK();
    case TypeKind::kReal:
    case TypeKind::kNumeric:
      if (!v.is_numeric()) return Mismatch(v, type, "");
      return Status::OK();
    case TypeKind::kChar:
      if (v.kind() != ValueKind::kString) return Mismatch(v, type, "");
      return Status::OK();
    case TypeKind::kEnumeration: {
      if (v.kind() != ValueKind::kString) return Mismatch(v, type, "");
      const auto& domain = type->enum_values();
      if (std::find(domain.begin(), domain.end(), v.AsString()) ==
          domain.end()) {
        return Mismatch(v, type, "'" + v.AsString() +
                                     "' is not in the enumeration domain");
      }
      return Status::OK();
    }
    case TypeKind::kTuple: {
      if (v.kind() != ValueKind::kTuple) return Mismatch(v, type, "");
      const auto& fields = type->fields();
      const value::TupleData& data = v.tuple();
      if (data.values.size() != fields.size()) {
        return Mismatch(v, type, "arity " +
                                     std::to_string(data.values.size()) +
                                     " vs " + std::to_string(fields.size()));
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        const Value* field_value = nullptr;
        if (!data.names.empty()) {
          field_value = v.FindField(fields[i].name);
          if (field_value == nullptr) {
            return Mismatch(v, type,
                            "missing attribute '" + fields[i].name + "'");
          }
        } else {
          field_value = &data.values[i];
        }
        EDS_RETURN_IF_ERROR(CheckValueAgainstType(*field_value,
                                                  fields[i].type, heap,
                                                  registry));
      }
      return Status::OK();
    }
    case TypeKind::kCollection:
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray: {
      if (!KindMatchesCollection(v.kind(), type->kind())) {
        return Mismatch(v, type, "");
      }
      if (type->element() != nullptr) {
        for (const Value& elem : v.elements()) {
          EDS_RETURN_IF_ERROR(CheckValueAgainstType(elem, type->element(),
                                                    heap, registry));
        }
      }
      return Status::OK();
    }
    case TypeKind::kObject: {
      if (v.kind() != ValueKind::kObjectRef) return Mismatch(v, type, "");
      if (heap == nullptr || registry == nullptr) return Status::OK();
      EDS_ASSIGN_OR_RETURN(const StoredObject* obj,
                           heap->Get(v.AsObjectRef()));
      auto stored = registry->Find(obj->type_name);
      if (!stored.ok()) {
        return Mismatch(v, type, "object of unregistered type " +
                                     obj->type_name);
      }
      if (!types::Isa(*stored, type)) {
        return Mismatch(v, type, "object of type " + obj->type_name +
                                     " where " + type->name() +
                                     " expected");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable type kind");
}

Status CheckRowAgainstSchema(const Row& row,
                             const std::vector<types::Field>& schema,
                             const ObjectHeap* heap,
                             const types::TypeRegistry* registry) {
  if (row.size() != schema.size()) {
    return Status::TypeError("row has " + std::to_string(row.size()) +
                             " values, schema has " +
                             std::to_string(schema.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status s =
        CheckValueAgainstType(row[i], schema[i].type, heap, registry);
    if (!s.ok()) {
      return Status::TypeError("column '" + schema[i].name +
                               "': " + s.message());
    }
  }
  return Status::OK();
}

}  // namespace eds::exec
