#ifndef EDS_EXEC_TYPECHECK_H_
#define EDS_EXEC_TYPECHECK_H_

#include "common/result.h"
#include "exec/storage.h"
#include "types/registry.h"
#include "types/type.h"
#include "value/value.h"

namespace eds::exec {

// Checks that a runtime value conforms to a declared ESQL type — the
// insert-time half of §6.1's "an integrity constraint is an axiom that must
// be satisfied by all data inserted in the database":
//
//   * scalar kinds must agree (INT/REAL fit NUMERIC; any numeric fits REAL);
//   * enumeration values must be strings drawn from the declared domain;
//   * collections check kind and every element (COLLECTION accepts any
//     collection kind);
//   * tuples check arity and each field (by name when the value carries
//     names, positionally otherwise);
//   * object references dereference through `heap`, their stored type name
//     resolves through `registry`, and the dynamic type must be the
//     declared object type or a subtype of it (Isa);
//   * NULL is accepted for any type (1991-style unconstrained nulls).
//
// `heap` / `registry` may be null, in which case object references pass
// unchecked (only the value kind is verified).
Status CheckValueAgainstType(const value::Value& v,
                             const types::TypeRef& type,
                             const ObjectHeap* heap,
                             const types::TypeRegistry* registry);

// Checks a whole row against a relation schema (arity + per-column types).
Status CheckRowAgainstSchema(const Row& row,
                             const std::vector<types::Field>& schema,
                             const ObjectHeap* heap,
                             const types::TypeRegistry* registry);

}  // namespace eds::exec

#endif  // EDS_EXEC_TYPECHECK_H_
