#ifndef EDS_EXEC_EXPR_EVAL_H_
#define EDS_EXEC_EXPR_EVAL_H_

#include <vector>

#include "common/result.h"
#include "exec/storage.h"
#include "term/term.h"
#include "value/collection_lib.h"

namespace eds::exec {

// Per-tuple evaluation context for scalar LERA expressions.
struct EvalContext {
  // One current row per operator input; ATTR(i, j) reads current[i-1][j-1].
  std::vector<const Row*> current;
  // The database (for VALUE / FIELD object dereference).
  const Database* db = nullptr;
  // Pure function dispatch.
  const value::FunctionLibrary* library = nullptr;
  // Quantifier element stack; ELEM() reads the innermost.
  std::vector<value::Value> elem_stack;
};

// Evaluates a scalar expression term. Handles constants (including folded
// collection constants), ATTR, FIELD, VALUE, FORALL/EXISTS/ELEM,
// short-circuit three-valued AND/OR/NOT, and every function in the library.
Result<value::Value> EvalExpr(const term::TermRef& expr, EvalContext* ctx);

// Evaluates a qualification: a NULL result counts as false (SQL WHERE
// semantics).
Result<bool> EvalPredicate(const term::TermRef& qual, EvalContext* ctx);

}  // namespace eds::exec

#endif  // EDS_EXEC_EXPR_EVAL_H_
