#include "exec/executor.h"

#include <algorithm>

#include "common/strings.h"
#include "gov/failpoint.h"
#include "lera/lera.h"
#include "obs/trace.h"

namespace eds::exec {

Executor::Executor(const catalog::Catalog* cat, const Database* db,
                   ExecOptions options)
    : catalog_(cat), db_(db), options_(options) {}

EvalContext Executor::MakeExprContext() const {
  EvalContext ctx;
  ctx.db = db_;
  ctx.library = &catalog_->functions();
  return ctx;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

void DedupRows(Rows* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  rows->erase(std::unique(rows->begin(), rows->end(),
                          [](const Row& a, const Row& b) {
                            return CompareRows(a, b) == 0;
                          }),
              rows->end());
}

Result<Rows> Executor::Execute(const term::TermRef& plan) {
  FixEnv env;
  const uint64_t copies_before = value::ValueCopyCount();
  Result<Rows> out = Eval(plan, env);
  stats_.value_copies += value::ValueCopyCount() - copies_before;
  if (out.ok()) stats_.rows_output += out->size();
  return out;
}

const Rows* Executor::TryBorrowStoredRows(const term::TermRef& t,
                                          const FixEnv& env,
                                          const vec::Batch** batch) {
  if (batch != nullptr) *batch = nullptr;
  if (!lera::IsRelation(t)) return nullptr;
  Result<std::string> name = lera::RelationName(t);
  if (!name.ok()) return nullptr;
  // Fixpoint variables shadow stored relations, exactly as in Eval.
  auto it = env.find(ToUpperAscii(*name));
  if (it != env.end()) return it->second;
  if (!db_->HasTable(*name)) return nullptr;
  Result<const Table*> table = db_->GetTable(*name);
  if (!table.ok()) return nullptr;
  stats_.rows_scanned += (*table)->size();
  if (batch != nullptr && options_.vectorized) *batch = &(*table)->batch();
  return &(*table)->rows();
}

Result<Rows> Executor::Eval(const term::TermRef& t, const FixEnv& env) {
  // Operator entry doubles as the governor chokepoint: every operator in a
  // plan passes through here, including each body re-evaluation inside a
  // fixpoint round, so deadlines and cancellation are noticed even when a
  // single Execute() call runs long. Intermediate output rows are charged
  // against the row ceiling — a blown-up join trips before its parent
  // projection ever sees the rows.
  gov::QueryGuard* guard = options_.guard;
  if (guard != nullptr && guard->Check()) return guard->TripStatus();
  obs::TraceSink* sink = options_.trace_sink;
  Result<Rows> out = Rows{};
  if (sink == nullptr) {
    out = EvalDispatch(t, env);
  } else {
    // Per-operator spans, named by functor (relation scans carry the
    // relation name so view expansions and fixpoint bindings are
    // distinguishable in the timeline).
    std::string name = "exec.";
    if (lera::IsRelation(t)) {
      Result<std::string> rel = lera::RelationName(t);
      name += "RELATION ";
      name += rel.ok() ? *rel : std::string("?");
    } else if (t->is_apply()) {
      name += t->functor();
    } else {
      name += "term";
    }
    obs::Span span(sink, std::move(name), "exec");
    const size_t batches_before = stats_.batches;
    const size_t vec_rows_before = stats_.vec_rows;
    out = EvalDispatch(t, env);
    if (out.ok()) {
      span.Arg("rows", static_cast<int64_t>(out->size()));
      const size_t batch_count = stats_.batches - batches_before;
      if (batch_count > 0) {
        span.Arg("batch_count", static_cast<int64_t>(batch_count));
        span.Arg("rows_per_batch",
                 static_cast<int64_t>((stats_.vec_rows - vec_rows_before) /
                                      batch_count));
      }
    }
  }
  if (out.ok() && guard != nullptr && guard->AddRows(out->size())) {
    return guard->TripStatus();
  }
  return out;
}

Result<Rows> Executor::EvalDispatch(const term::TermRef& t,
                                    const FixEnv& env) {
  EDS_FAIL_POINT("exec.operator");
  if (lera::IsRelation(t)) {
    EDS_ASSIGN_OR_RETURN(std::string name, lera::RelationName(t));
    std::string key = ToUpperAscii(name);
    // Fixpoint variables shadow stored relations.
    auto it = env.find(key);
    if (it != env.end()) return *it->second;
    if (db_->HasTable(name)) {
      EDS_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(name));
      stats_.rows_scanned += table->size();
      return table->rows();
    }
    if (catalog_->HasView(name)) {
      EDS_ASSIGN_OR_RETURN(const catalog::ViewDef* view,
                           catalog_->FindView(name));
      return Eval(view->definition, env);
    }
    return Status::NotFound("relation '" + name + "' has no storage, view "
                            "definition or fixpoint binding");
  }
  if (!t->is_apply()) {
    return Status::InvalidArgument("not a relational term: " + t->ToString());
  }
  const std::string& f = t->functor();
  if (f == lera::kSearch) return EvalSearch(t, env);
  if (f == lera::kUnion) return EvalUnion(t, env);
  if (f == lera::kDifference || f == lera::kIntersect) {
    return EvalSetOp(t, env);
  }
  // FILTER/PROJECT/JOIN try the columnar kernels first; any failure other
  // than a governor trip restores the stats snapshot and reruns the row
  // path, which reproduces the precise result or user-visible error.
  if (f == lera::kFilter || f == lera::kProject || f == lera::kJoin) {
    if (options_.vectorized) {
      ExecStats saved = stats_;
      Result<Rows> out = f == lera::kFilter   ? EvalFilterVec(t, env)
                         : f == lera::kProject ? EvalProjectVec(t, env)
                                               : EvalJoinVec(t, env);
      if (out.ok() || out.status().code() == StatusCode::kResourceExhausted) {
        return out;
      }
      stats_ = saved;
      ++stats_.vec_fallbacks;
    }
    if (f == lera::kFilter) return EvalFilter(t, env);
    if (f == lera::kProject) return EvalProject(t, env);
    return EvalJoin(t, env);
  }
  if (f == lera::kNest) return EvalNest(t, env);
  if (f == lera::kDedup) {
    EDS_ASSIGN_OR_RETURN(Rows rows, Eval(t->arg(0), env));
    DedupMaybeVec(&rows);
    return rows;
  }
  if (f == lera::kUnnest) return EvalUnnest(t, env);
  if (f == lera::kFix) return EvalFix(t, env);
  return Status::Unsupported("executor does not implement operator " + f);
}

}  // namespace eds::exec
