#ifndef EDS_EXEC_SESSION_H_
#define EDS_EXEC_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/ast.h"
#include "exec/executor.h"
#include "exec/storage.h"
#include "rules/optimizer.h"
#include "term/term.h"

namespace eds::exec {

// Result of a query: column names, rows, and the plans/stats on both sides
// of the rewriter, so callers (and benchmarks) can inspect what the
// optimizer did.
struct QueryResult {
  std::vector<std::string> columns;
  Rows rows;
  term::TermRef raw_plan;        // straight ESQL -> LERA translation
  term::TermRef optimized_plan;  // after the rule-based rewriter
  rewrite::EngineStats rewrite_stats;
  ExecStats exec_stats;
};

struct QueryOptions {
  bool rewrite = true;  // run the rule-based rewriter before execution
  rewrite::RewriteOptions rewrite_options;
  ExecOptions exec_options;
};

// The user-facing facade: one catalog + one database + the generated
// optimizer. This is the "extensible database server" in miniature — DDL
// extends the catalog, integrity constraints and custom rules extend the
// optimizer, and queries flow parse -> translate -> rewrite -> execute.
class Session {
 public:
  Session();
  explicit Session(rules::OptimizerOptions optimizer_options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // Runs a script of DDL / INSERT / SELECT statements; SELECT results are
  // discarded (use Query for results).
  Status ExecuteScript(std::string_view esql);

  // Parses and runs one SELECT.
  Result<QueryResult> Query(std::string_view esql,
                            const QueryOptions& options = {});

  // Translation only: SELECT -> LERA (the rewriter's input).
  Result<term::TermRef> Translate(std::string_view esql_select);

  // Rewrites a LERA term with the session's generated optimizer.
  Result<rewrite::RewriteOutcome> Rewrite(
      const term::TermRef& plan, const rewrite::RewriteOptions& options = {});

  // Executes a LERA term directly.
  Result<Rows> Run(const term::TermRef& plan, const ExecOptions& options = {},
                   ExecStats* stats_out = nullptr);

  // Declares an integrity constraint (rule-language text, §6.1); the
  // optimizer is regenerated on next use.
  Status AddConstraint(const std::string& name, const std::string& rule_text);

  // Creates an object on the heap; `fields` become its named tuple state.
  // Returns the reference value to store in rows.
  Result<value::Value> NewObject(
      const std::string& type_name,
      std::vector<std::pair<std::string, value::Value>> fields);

  // Inserts a row into a stored table (bypassing ESQL, for data
  // generators).
  Status InsertRow(const std::string& table, Row row);

  // Emits the session's schema as a runnable ESQL script: user types (in
  // declaration order), tables, and views (verbatim source where the view
  // was created through this session). Integrity constraints are NOT part
  // of ESQL and are excluded — re-declare them via AddConstraint (they are
  // available from catalog().constraints()). A fresh session executing the
  // dump reproduces the catalog.
  std::string DumpSchema() const;

  // Formats a human-readable report for a SELECT: raw plan, rewrite trace,
  // optimized plan, and statistics. Does not execute the query.
  Result<std::string> Explain(std::string_view esql_select);

  // Forces optimizer regeneration (e.g. after registering custom rules or
  // builtins through optimizer()).
  Status RebuildOptimizer();

  // The generated optimizer (built on first use).
  Result<rules::Optimizer*> optimizer();

 private:
  Status ApplyStatement(const esql::Statement& stmt);

  catalog::Catalog catalog_;
  Database db_;
  rules::OptimizerOptions optimizer_options_;
  std::unique_ptr<rules::Optimizer> optimizer_;
  bool optimizer_dirty_ = true;
};

}  // namespace eds::exec

#endif  // EDS_EXEC_SESSION_H_
