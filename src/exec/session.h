#ifndef EDS_EXEC_SESSION_H_
#define EDS_EXEC_SESSION_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/ast.h"
#include "exec/executor.h"
#include "exec/storage.h"
#include "rules/optimizer.h"
#include "term/term.h"

namespace eds::obs {
class TraceSink;
}  // namespace eds::obs
namespace eds::lint {
class LintReport;
}  // namespace eds::lint
namespace eds::verify {
struct VerifyOptions;
}  // namespace eds::verify

namespace eds::exec {

// Steady-clock wall time of each pipeline phase for one Query() call,
// always filled (a handful of clock reads per query — not per node — so
// there is no "off" mode to manage). Benches surface these as counters so
// BENCH trajectories carry per-phase breakdowns.
struct PhaseTimes {
  uint64_t parse_ns = 0;      // ESQL text -> statement AST
  uint64_t translate_ns = 0;  // statement -> LERA term
  uint64_t rewrite_ns = 0;    // rule-based rewriter (0 when rewrite=false)
  uint64_t schema_ns = 0;     // output schema inference
  uint64_t exec_ns = 0;       // plan execution
  uint64_t total_ns = 0;      // whole Query() call
};

// Result of a query: column names, rows, and the plans/stats on both sides
// of the rewriter, so callers (and benchmarks) can inspect what the
// optimizer did.
struct QueryResult {
  std::vector<std::string> columns;
  Rows rows;
  term::TermRef raw_plan;        // straight ESQL -> LERA translation
  term::TermRef optimized_plan;  // after the rule-based rewriter
  rewrite::EngineStats rewrite_stats;
  ExecStats exec_stats;
  PhaseTimes phase_times;
  // Human-readable notes about silent degradation: the rewriter stopping at
  // a safety valve or a governor trip. The rows are still correct — these
  // flag that the plan may be under-optimized and why. Empty normally.
  std::vector<std::string> warnings;
  // The governor trip that cut the rewrite phase short, if any (execution
  // trips are errors, not degradation, so they never land here).
  gov::TripReason rewrite_trip;
};

struct QueryOptions {
  bool rewrite = true;  // run the rule-based rewriter before execution
  rewrite::RewriteOptions rewrite_options;
  ExecOptions exec_options;
  // Query governor budgets. When any limit is set, Query() arms a guard for
  // the whole pipeline: the rewrite and schema phases degrade on a trip
  // (best-so-far plan + QueryResult::warnings/rewrite_trip), execution
  // fails fast with ResourceExhausted. Ignored by phases whose options
  // already carry an explicit caller-owned guard.
  gov::GovernorLimits limits;
};

// Registration-time checking for AddConstraint. Lint findings are only
// surfaced (one line per EDS-Lxxx hit) — even unparseable text registers,
// exactly as before, and fails at optimizer build time. Soundness
// verification is opt-in and DOES reject: a constraint whose rules provably
// change query results (EDS-Sxxx errors, see src/verify/) is refused with
// InvalidArgument before it can poison the optimizer.
struct ConstraintOptions {
  bool run_lint = true;    // static lint of the rule text (never rejects)
  bool run_verify = false;  // bounded soundness check (rejects on errors)
  // Knobs for run_verify; defaults apply when null.
  const verify::VerifyOptions* verify_options = nullptr;
  // When non-null, findings are appended here; otherwise each finding is
  // printed as one warning line to stderr.
  lint::LintReport* diagnostics = nullptr;
};

// The user-facing facade: one catalog + one database + the generated
// optimizer. This is the "extensible database server" in miniature — DDL
// extends the catalog, integrity constraints and custom rules extend the
// optimizer, and queries flow parse -> translate -> rewrite -> execute.
class Session {
 public:
  Session();
  explicit Session(rules::OptimizerOptions optimizer_options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // Runs a script of DDL / INSERT / SELECT statements; SELECT results are
  // discarded (use Query for results).
  Status ExecuteScript(std::string_view esql);

  // Applies one parsed DDL / INSERT statement (SELECTs are rejected with
  // InvalidArgument). This is ExecuteScript's per-statement engine exposed
  // for callers that manage their own parsing and snapshot publication —
  // QueryService::ApplyDdl serializes calls and republishes the serving
  // snapshot afterwards.
  Status Apply(const esql::Statement& stmt);

  // Parses and runs one SELECT.
  Result<QueryResult> Query(std::string_view esql,
                            const QueryOptions& options = {});

  // Translation only: SELECT -> LERA (the rewriter's input).
  Result<term::TermRef> Translate(std::string_view esql_select);

  // Rewrites a LERA term with the session's generated optimizer.
  Result<rewrite::RewriteOutcome> Rewrite(
      const term::TermRef& plan, const rewrite::RewriteOptions& options = {});

  // Executes a LERA term directly.
  Result<Rows> Run(const term::TermRef& plan, const ExecOptions& options = {},
                   ExecStats* stats_out = nullptr);

  // Declares an integrity constraint (rule-language text, §6.1); the
  // optimizer is regenerated on next use. The default overload lints the
  // text and surfaces findings on stderr but accepts regardless; pass
  // ConstraintOptions to capture diagnostics or to opt into soundness
  // verification (which rejects unsound rule sets).
  Status AddConstraint(const std::string& name, const std::string& rule_text);
  Status AddConstraint(const std::string& name, const std::string& rule_text,
                       const ConstraintOptions& options);

  // Creates an object on the heap; `fields` become its named tuple state.
  // Returns the reference value to store in rows.
  Result<value::Value> NewObject(
      const std::string& type_name,
      std::vector<std::pair<std::string, value::Value>> fields);

  // Inserts a row into a stored table (bypassing ESQL, for data
  // generators).
  Status InsertRow(const std::string& table, Row row);

  // Emits the session's schema as a runnable ESQL script: user types (in
  // declaration order), tables, and views (verbatim source where the view
  // was created through this session). Integrity constraints are NOT part
  // of ESQL and are excluded — re-declare them via AddConstraint (they are
  // available from catalog().constraints()). A fresh session executing the
  // dump reproduces the catalog.
  std::string DumpSchema() const;

  // Formats a human-readable report for a SELECT: raw plan, rewrite trace,
  // optimized plan, and statistics. Does not execute the query.
  Result<std::string> Explain(std::string_view esql_select);

  // Forces optimizer regeneration (e.g. after registering custom rules or
  // builtins through optimizer()).
  Status RebuildOptimizer();

  // Monotonic counter bumped whenever the session's rule library changes
  // (AddConstraint, RebuildOptimizer). The rewritten-plan cache keys
  // entries on (catalog().epoch(), rules_epoch()) so plans rewritten under
  // a stale rule set are lazily invalidated; see src/srv/plan_cache.h.
  // Atomic for the same reason as Catalog::epoch(): serving threads poll it
  // to detect stale snapshots.
  uint64_t rules_epoch() const {
    return rules_epoch_.load(std::memory_order_relaxed);
  }

  // The options the session builds its optimizer with; serving snapshots
  // build their own optimizer against the cloned catalog with the same
  // options.
  const rules::OptimizerOptions& optimizer_options() const {
    return optimizer_options_;
  }

  // The generated optimizer (built on first use).
  Result<rules::Optimizer*> optimizer();

  // Session-wide trace sink (e.g. eds_shell --trace-out): when set, every
  // Translate/Rewrite/Query/Run records phase spans into it, and it is
  // propagated into rewrite/exec options that do not carry their own sink.
  // The sink must outlive the session or be reset to null first. Null (the
  // default) keeps the whole pipeline on its untraced fast path.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_sink_; }

 private:
  Status ApplyStatement(const esql::Statement& stmt);

  // Translate with the parse/translate split reported into `times`
  // (ignored when null). Query() uses this to fill PhaseTimes.
  Result<term::TermRef> TranslateTimed(std::string_view esql_select,
                                       PhaseTimes* times);

  catalog::Catalog catalog_;
  Database db_;
  rules::OptimizerOptions optimizer_options_;
  std::unique_ptr<rules::Optimizer> optimizer_;
  bool optimizer_dirty_ = true;
  std::atomic<uint64_t> rules_epoch_{0};
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace eds::exec

#endif  // EDS_EXEC_SESSION_H_
