#ifndef EDS_NET_CLIENT_H_
#define EDS_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/protocol.h"

namespace eds::net {

// Blocking client for the EDS wire protocol: one TCP connection, one
// outstanding HELLO handshake, then any mix of QUERY/EXEC/STATS/CANCEL.
// Not thread-safe — one Client per thread (the server happily serves many
// connections; that is the concurrency story).
//
// The synchronous helpers (Query/Exec/Stats/Goodbye) send and then read
// frames until the response with the matching request id arrives. The
// split pipelined surface (SendQuery/SendCancel/ReadResponse) exists for
// cancellation and multi-query-in-flight tests.
class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string client_name = "eds_client";
    std::string tenant;  // "" = default tenant
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  // TCP connect + HELLO/HELLO_OK handshake.
  static Result<std::unique_ptr<Client>> Connect(const Options& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t session_id() const { return hello_.session_id; }
  const HelloOk& hello() const { return hello_; }

  // Round-trip helpers.
  Result<ResultMsg> Query(const std::string& esql);
  Result<ResultMsg> Exec(const std::string& script);
  Result<std::string> Stats();  // Prometheus text
  Status Goodbye();             // waits for GOODBYE_OK, then closes

  // Pipelined surface: fire-and-forget sends plus an explicit read.
  Result<uint64_t> SendQuery(const std::string& esql);  // returns request id
  Status SendCancel(uint64_t request_id);
  struct Response {
    uint64_t request_id = 0;
    ResultMsg result;
  };
  // Next RESULT frame in arrival order (responses to pipelined queries may
  // arrive out of submission order).
  Result<Response> ReadResponse();

  // Test hook: raw bytes straight onto the socket (malformed-frame tests).
  Status SendRaw(std::string_view bytes);

  void Close();  // idempotent; further calls fail

 private:
  Client(int fd, Options options);
  Status WriteAll(std::string_view bytes);
  // Blocks until one complete frame is available. A server ERROR frame is
  // surfaced as an error Status (the server closes after sending it).
  Result<Frame> ReadFrame();
  // Reads frames until a RESULT for `request_id`; out-of-order RESULTs for
  // other requests are an error on the synchronous surface.
  Result<ResultMsg> AwaitResult(uint64_t request_id);

  int fd_;
  Options options_;
  HelloOk hello_;
  std::string inbuf_;
  uint64_t next_request_ = 1;
};

}  // namespace eds::net

#endif  // EDS_NET_CLIENT_H_
