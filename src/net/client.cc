#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace eds::net {

namespace {

Status Errno(const char* what) {
  return Status::RuntimeError(std::string(what) + ": " +
                              std::strerror(errno));
}

}  // namespace

Client::Client(int fd, Options options)
    : fd_(fd), options_(std::move(options)) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  std::unique_ptr<Client> client(new Client(fd, options));
  Hello hello;
  hello.version = kProtocolVersion;
  hello.client_name = options.client_name;
  hello.tenant = options.tenant;
  std::string frame;
  AppendFrame(MsgType::kHello, 0, EncodeHello(hello), &frame);
  EDS_RETURN_IF_ERROR(client->WriteAll(frame));
  EDS_ASSIGN_OR_RETURN(Frame reply, client->ReadFrame());
  if (reply.type != MsgType::kHelloOk) {
    return Status::RuntimeError("handshake: expected HELLO_OK");
  }
  EDS_ASSIGN_OR_RETURN(client->hello_, DecodeHelloOk(reply.body));
  return client;
}

Status Client::WriteAll(std::string_view bytes) {
  if (fd_ < 0) return Status::RuntimeError("client closed");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status Client::SendRaw(std::string_view bytes) { return WriteAll(bytes); }

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::RuntimeError("client closed");
  char buf[16384];
  for (;;) {
    Frame frame;
    std::string why;
    FrameStatus st =
        NextFrame(&inbuf_, options_.max_frame_bytes, &frame, &why);
    if (st == FrameStatus::kBad) {
      return Status::RuntimeError("bad frame from server: " + why);
    }
    if (st == FrameStatus::kOk) {
      if (frame.type == MsgType::kError) {
        std::string message = "server error";
        if (Result<ErrorMsg> err = DecodeError(frame.body); err.ok()) {
          message = "server error: " + err->message;
        }
        return Status::RuntimeError(message);
      }
      return frame;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::RuntimeError("server closed connection");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<ResultMsg> Client::AwaitResult(uint64_t request_id) {
  EDS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MsgType::kResult || frame.request_id != request_id) {
    return Status::RuntimeError(
        "unexpected frame while awaiting RESULT for request " +
        std::to_string(request_id));
  }
  return DecodeResult(frame.body);
}

Result<ResultMsg> Client::Query(const std::string& esql) {
  const uint64_t id = next_request_++;
  QueryMsg q;
  q.esql = esql;
  std::string frame;
  AppendFrame(MsgType::kQuery, id, EncodeQuery(q), &frame);
  EDS_RETURN_IF_ERROR(WriteAll(frame));
  return AwaitResult(id);
}

Result<ResultMsg> Client::Exec(const std::string& script) {
  const uint64_t id = next_request_++;
  ExecMsg e;
  e.script = script;
  std::string frame;
  AppendFrame(MsgType::kExec, id, EncodeExec(e), &frame);
  EDS_RETURN_IF_ERROR(WriteAll(frame));
  return AwaitResult(id);
}

Result<std::string> Client::Stats() {
  const uint64_t id = next_request_++;
  std::string frame;
  AppendFrame(MsgType::kStats, id, "", &frame);
  EDS_RETURN_IF_ERROR(WriteAll(frame));
  EDS_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != MsgType::kStatsResult || reply.request_id != id) {
    return Status::RuntimeError("expected STATS_RESULT");
  }
  EDS_ASSIGN_OR_RETURN(StatsResult sr, DecodeStatsResult(reply.body));
  return sr.prometheus;
}

Status Client::Goodbye() {
  const uint64_t id = next_request_++;
  std::string frame;
  AppendFrame(MsgType::kGoodbye, id, "", &frame);
  EDS_RETURN_IF_ERROR(WriteAll(frame));
  EDS_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != MsgType::kGoodbyeOk) {
    return Status::RuntimeError("expected GOODBYE_OK");
  }
  Close();
  return Status::OK();
}

Result<uint64_t> Client::SendQuery(const std::string& esql) {
  const uint64_t id = next_request_++;
  QueryMsg q;
  q.esql = esql;
  std::string frame;
  AppendFrame(MsgType::kQuery, id, EncodeQuery(q), &frame);
  EDS_RETURN_IF_ERROR(WriteAll(frame));
  return id;
}

Status Client::SendCancel(uint64_t request_id) {
  CancelMsg c;
  c.target_request = request_id;
  std::string frame;
  AppendFrame(MsgType::kCancel, next_request_++, EncodeCancel(c), &frame);
  return WriteAll(frame);
}

Result<Client::Response> Client::ReadResponse() {
  EDS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MsgType::kResult) {
    return Status::RuntimeError("expected RESULT frame");
  }
  Response r;
  r.request_id = frame.request_id;
  EDS_ASSIGN_OR_RETURN(r.result, DecodeResult(frame.body));
  return r;
}

}  // namespace eds::net
