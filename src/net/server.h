#ifndef EDS_NET_SERVER_H_
#define EDS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gov/governor.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "srv/service.h"

namespace eds::net {

// The wire front end: a TCP server speaking the framed protocol of
// net/protocol.h over a snapshot-isolated QueryService.
//
// Threading model — one poller, worker handoff:
//   * A single poller thread owns every socket: it accepts, reads, parses
//     frames, and handles the cheap messages (HELLO, CANCEL, STATS,
//     GOODBYE) inline. EXEC (DDL) also runs on the poller — by design it
//     only stalls *new* messages, never in-flight queries, because
//     QueryService::ApplyDdl publishes a new serving snapshot while old
//     queries drain on theirs.
//   * QUERY is handed to QueryService::SubmitWithCallback; the service's
//     worker pool serves it and the completion callback writes the RESULT
//     frame back from the worker thread (per-connection write mutex, so
//     concurrent results interleave at frame granularity, never byte
//     granularity). Sends carry a write deadline
//     (ServerOptions::write_timeout_ms): a slow or non-reading client
//     fails its send and loses the connection instead of pinning a worker
//     — or the poller, for the inline replies — indefinitely.
//   * CANCEL fires the gov::CancelToken of the named in-flight request;
//     closing a connection cancels everything still pending on it, so a
//     dead client stops consuming budget at the next governor chokepoint.
//
// Fail-point sites net.accept / net.read / net.write let the chaos suite
// kill connections mid-message; the contract under injection is: the
// affected connection closes, every pending query's token fires, no
// session state leaks (active_connections()/pending_queries() drain to 0),
// and the server keeps accepting.
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
  int backlog = 64;
  // Connections beyond this are accepted, told ERROR, and closed — the
  // wire analog of admission load-shedding.
  size_t max_connections = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // A send that makes no progress (EAGAIN) for this long fails and closes
  // the connection: a slow or non-reading client can stall one connection
  // for at most this window, never the poller or Shutdown(). 0 = no limit.
  uint64_t write_timeout_ms = 5000;
  // Shutdown(drain=true) waits at most this long for in-flight queries;
  // whatever is still pending afterwards is cancelled. 0 = wait forever
  // (drain is still guaranteed to make progress — new QUERYs are rejected
  // while draining — but individual queries may run long).
  uint64_t drain_timeout_ms = 30'000;
  std::string server_info = "eds";
  // When true the server records per-connection spans (net.connection) and
  // per-message spans into its own TraceSink (trace_sink()).
  bool collect_traces = false;
};

// Cumulative tallies, exported as net.* metrics.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t rejected = 0;  // over max_connections
  uint64_t frames_read = 0;
  uint64_t frames_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t queries = 0;
  uint64_t execs = 0;
  uint64_t cancels = 0;        // CANCELs that found their target in flight
  uint64_t cancel_misses = 0;  // CANCELs whose target was already done
  uint64_t stats_requests = 0;
  uint64_t protocol_errors = 0;  // malformed frames / bad handshakes
  uint64_t read_errors = 0;      // peer resets + injected net.read failures
  uint64_t write_errors = 0;     // send failures + injected net.write
  uint64_t accept_errors = 0;    // accept failures + injected net.accept
  uint64_t poll_errors = 0;      // poll() failures (backed off, not fatal)
  uint64_t drain_rejected = 0;   // QUERYs refused while draining for stop
};

class Server {
 public:
  // `service` must be Start()ed and must outlive the server.
  Server(srv::QueryService* service, const ServerOptions& options);
  ~Server();  // Shutdown(true) if still running; waits for callbacks

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the poller. Fails on bind/listen errors
  // (port in use, bad host).
  Status Start();

  // Graceful stop: stop accepting, optionally wait for in-flight queries
  // to drain (their RESULT frames are still written), then close every
  // connection and join the poller. While draining, new QUERY frames are
  // refused with a failed RESULT ("server draining") so the pending count
  // is monotonically decreasing — a client that keeps pipelining cannot
  // hold the drain open — and the wait is bounded by
  // ServerOptions::drain_timeout_ms (whatever remains is cancelled). With
  // drain=false pending queries are cancelled instead of awaited.
  // Idempotent. Either way, returns only once no completion callback can
  // still be in flight.
  void Shutdown(bool drain = true);

  // The bound port (resolves option port 0 to the kernel's choice).
  uint16_t port() const { return port_; }
  bool running() const;

  size_t active_connections() const;
  size_t pending_queries() const;  // submitted, RESULT not yet written
  ServerStats GetStats() const;

  // net.* metrics (connections gauge + the ServerStats counters).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  // Non-null only with options.collect_traces.
  const obs::TraceSink* trace_sink() const { return sink_.get(); }

 private:
  // One in-flight QUERY: the cancel token must outlive the service
  // callback, so it rides a shared_ptr captured by the callback itself.
  struct PendingQuery {
    gov::CancelToken token;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;  // session id, assigned at accept
    std::string peer;
    std::string inbuf;
    bool hello_done = false;
    std::string tenant;
    // Guards fd writes and the closed flag: a worker writing a RESULT and
    // the poller closing the socket never interleave.
    std::mutex write_mu;
    bool closed = false;
    // Poller sets true (e.g. after GOODBYE_OK or a write error) to have
    // the connection torn down on the next loop pass.
    std::atomic<bool> wants_close{false};
    // In-flight QUERYs by request id. Guarded by pending_mu (poller
    // inserts/cancels, worker callbacks erase).
    std::mutex pending_mu;
    std::map<uint64_t, std::shared_ptr<PendingQuery>> pending;
    uint64_t open_ns = 0;  // NowNs at accept (connection-lifetime span)
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void PollLoop();
  void AcceptReady();
  Status AcceptOne();  // EDS_FAIL_POINT("net.accept") lives here
  // Drains readable bytes into conn->inbuf; an error return means the
  // connection must close. EDS_FAIL_POINT("net.read") lives here.
  Status ReadAvailable(const ConnPtr& conn);
  // Parses + dispatches every complete frame in conn->inbuf. False: close.
  bool DrainFrames(const ConnPtr& conn);
  bool Dispatch(const ConnPtr& conn, const Frame& frame);  // false: close
  void HandleQuery(const ConnPtr& conn, const Frame& frame);
  // Writes one frame; thread-safe vs. Close. A failure counts a write
  // error and schedules the connection for teardown.
  Status SendFrame(const ConnPtr& conn, MsgType type, uint64_t request_id,
                   std::string_view body);
  // The raw write path. EDS_FAIL_POINT("net.write") lives here.
  Status SendFrameImpl(const ConnPtr& conn, MsgType type, uint64_t request_id,
                       std::string_view body);
  // Convenience: ERROR frame + schedule close (protocol_errors tally).
  void ProtocolError(const ConnPtr& conn, uint64_t request_id,
                     const std::string& message);
  void CloseConnection(const ConnPtr& conn);  // poller thread only
  void FinishPending(const ConnPtr& conn, uint64_t request_id);
  void WakePoller();
  std::string BuildStatsText() const;

  srv::QueryService* service_;
  ServerOptions options_;
  std::unique_ptr<obs::TraceSink> sink_;  // null unless collect_traces

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  uint16_t port_ = 0;
  std::thread poller_;

  mutable std::mutex mu_;  // state flags + conns_ + stats_
  bool running_ = false;
  bool accepting_ = false;
  bool stop_ = false;
  // Lock-free mirrors of the shutdown phases, readable from worker-thread
  // send paths and Dispatch without taking mu_: draining_ rejects new
  // QUERYs once Shutdown begins; stopping_ aborts any send still waiting
  // on a slow reader so the poller join can never wait behind one.
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::map<int, ConnPtr> conns_;  // by fd
  ServerStats stats_;
  uint64_t next_session_id_ = 1;

  // Drain accounting: callbacks outstanding across all connections.
  std::atomic<uint64_t> pending_total_{0};
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace eds::net

#endif  // EDS_NET_SERVER_H_
