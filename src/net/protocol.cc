#include "net/protocol.h"

#include <cstring>

#include "srv/codec.h"

namespace eds::net {

namespace {

// Bodies are already bounded by NextFrame's frame cap; this caps individual
// inner strings as defense in depth against a corrupt length prefix.
constexpr size_t kMaxStringBytes = kDefaultMaxFrameBytes;

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kError);
}

// The codec writes little-endian explicitly; mirror its decode so the peek
// at the length prefix stays correct on big-endian hosts.
uint32_t ReadLe32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

}  // namespace

void AppendFrame(MsgType type, uint64_t request_id, std::string_view body,
                 std::string* out) {
  std::string payload;
  payload.reserve(1 + 8 + body.size());
  srv::Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU64(request_id);
  payload.append(body.data(), body.size());
  srv::AppendRecord(payload, out);
}

FrameStatus NextFrame(std::string* buffer, size_t max_frame_bytes, Frame* out,
                      std::string* error) {
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return FrameStatus::kBad;
  };
  if (buffer->size() < 8) return FrameStatus::kNeedMore;
  const uint32_t len = ReadLe32(buffer->data());
  if (len > max_frame_bytes) return fail("oversize frame length");
  if (buffer->size() < 8u + len) return FrameStatus::kNeedMore;
  // The full record is buffered: let the codec verify the CRC.
  size_t pos = 0;
  srv::RecordRead rec = srv::ReadRecord(*buffer, &pos, max_frame_bytes);
  switch (rec.status) {
    case srv::RecordStatus::kOk:
      break;
    case srv::RecordStatus::kBadCrc:
      // Persist skips rotten records; a stream cannot — either the
      // connection desynced or the peer is corrupt, so the caller closes.
      return fail("frame CRC mismatch");
    default:
      return fail("torn frame");
  }
  srv::Decoder dec(rec.payload, kMaxStringBytes);
  Result<uint8_t> type = dec.GetU8();
  if (!type.ok()) return fail("frame too short for type");
  if (!ValidType(*type)) return fail("unknown message type");
  Result<uint64_t> request_id = dec.GetU64();
  if (!request_id.ok()) return fail("frame too short for request id");
  out->type = static_cast<MsgType>(*type);
  out->request_id = *request_id;
  out->body.assign(rec.payload.substr(1 + 8));
  buffer->erase(0, pos);
  return FrameStatus::kOk;
}

// ---- bodies ----

std::string EncodeHello(const Hello& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutU32(m.version);
  enc.PutString(m.client_name);
  enc.PutString(m.tenant);
  return out;
}

Result<Hello> DecodeHello(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  Hello m;
  EDS_ASSIGN_OR_RETURN(m.version, dec.GetU32());
  EDS_ASSIGN_OR_RETURN(m.client_name, dec.GetString());
  EDS_ASSIGN_OR_RETURN(m.tenant, dec.GetString());
  return m;
}

std::string EncodeHelloOk(const HelloOk& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutU32(m.version);
  enc.PutU64(m.session_id);
  enc.PutString(m.server_info);
  return out;
}

Result<HelloOk> DecodeHelloOk(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  HelloOk m;
  EDS_ASSIGN_OR_RETURN(m.version, dec.GetU32());
  EDS_ASSIGN_OR_RETURN(m.session_id, dec.GetU64());
  EDS_ASSIGN_OR_RETURN(m.server_info, dec.GetString());
  return m;
}

std::string EncodeQuery(const QueryMsg& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutString(m.esql);
  return out;
}

Result<QueryMsg> DecodeQuery(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  QueryMsg m;
  EDS_ASSIGN_OR_RETURN(m.esql, dec.GetString());
  return m;
}

std::string EncodeExec(const ExecMsg& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutString(m.script);
  return out;
}

Result<ExecMsg> DecodeExec(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  ExecMsg m;
  EDS_ASSIGN_OR_RETURN(m.script, dec.GetString());
  return m;
}

std::string EncodeCancel(const CancelMsg& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutU64(m.target_request);
  return out;
}

Result<CancelMsg> DecodeCancel(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  CancelMsg m;
  EDS_ASSIGN_OR_RETURN(m.target_request, dec.GetU64());
  return m;
}

std::string EncodeResult(const ResultMsg& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutU8(m.ok ? 1 : 0);
  if (!m.ok) {
    enc.PutString(m.error);
    return out;
  }
  enc.PutU8(m.l0_hit ? 1 : 0);
  enc.PutU8(m.cache_hit ? 1 : 0);
  enc.PutU64(m.catalog_epoch);
  enc.PutU64(m.rules_epoch);
  enc.PutU64(m.serve_ns);
  enc.PutU32(static_cast<uint32_t>(m.columns.size()));
  for (const std::string& c : m.columns) enc.PutString(c);
  enc.PutU32(static_cast<uint32_t>(m.rows.size()));
  // The decoder reads exactly columns.size() cells per row; a ragged row
  // written verbatim would silently desync every cell after it. Pad or
  // truncate so a malformed ResultMsg can never corrupt the stream.
  const size_t ncols = m.columns.size();
  for (const std::vector<std::string>& row : m.rows) {
    for (size_t c = 0; c < ncols; ++c) {
      enc.PutString(c < row.size() ? std::string_view(row[c])
                                   : std::string_view());
    }
  }
  return out;
}

Result<ResultMsg> DecodeResult(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  ResultMsg m;
  EDS_ASSIGN_OR_RETURN(uint8_t ok, dec.GetU8());
  m.ok = ok != 0;
  if (!m.ok) {
    EDS_ASSIGN_OR_RETURN(m.error, dec.GetString());
    return m;
  }
  EDS_ASSIGN_OR_RETURN(uint8_t l0, dec.GetU8());
  m.l0_hit = l0 != 0;
  EDS_ASSIGN_OR_RETURN(uint8_t ch, dec.GetU8());
  m.cache_hit = ch != 0;
  EDS_ASSIGN_OR_RETURN(m.catalog_epoch, dec.GetU64());
  EDS_ASSIGN_OR_RETURN(m.rules_epoch, dec.GetU64());
  EDS_ASSIGN_OR_RETURN(m.serve_ns, dec.GetU64());
  EDS_ASSIGN_OR_RETURN(uint32_t ncols, dec.GetU32());
  // A corrupt count cannot force a giant allocation: each cell is at least
  // a 4-byte length prefix, so a count past the actual byte span is a lie.
  if (ncols > body.size()) {
    return Status::RuntimeError("RESULT column count exceeds frame");
  }
  m.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    EDS_ASSIGN_OR_RETURN(std::string c, dec.GetString());
    m.columns.push_back(std::move(c));
  }
  EDS_ASSIGN_OR_RETURN(uint32_t nrows, dec.GetU32());
  if (nrows > body.size()) {
    return Status::RuntimeError("RESULT row count exceeds frame");
  }
  m.rows.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    std::vector<std::string> row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      EDS_ASSIGN_OR_RETURN(std::string cell, dec.GetString());
      row.push_back(std::move(cell));
    }
    m.rows.push_back(std::move(row));
  }
  if (!dec.done()) {
    return Status::RuntimeError("trailing bytes after RESULT body");
  }
  return m;
}

std::string EncodeStatsResult(const StatsResult& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutString(m.prometheus);
  return out;
}

Result<StatsResult> DecodeStatsResult(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  StatsResult m;
  EDS_ASSIGN_OR_RETURN(m.prometheus, dec.GetString());
  return m;
}

std::string EncodeError(const ErrorMsg& m) {
  std::string out;
  srv::Encoder enc(&out);
  enc.PutString(m.message);
  return out;
}

Result<ErrorMsg> DecodeError(std::string_view body) {
  srv::Decoder dec(body, kMaxStringBytes);
  ErrorMsg m;
  EDS_ASSIGN_OR_RETURN(m.message, dec.GetString());
  return m;
}

std::vector<std::string> RenderRow(const exec::Row& row) {
  std::vector<std::string> out;
  out.reserve(row.size());
  for (const value::Value& v : row) out.push_back(v.ToString());
  return out;
}

ResultMsg RenderServed(const srv::ServedQuery& served) {
  ResultMsg m;
  m.ok = true;
  m.columns = served.result.columns;
  m.rows.reserve(served.result.rows.size());
  for (const exec::Row& row : served.result.rows) {
    m.rows.push_back(RenderRow(row));
  }
  m.l0_hit = served.l0_hit;
  m.cache_hit = served.cache_hit;
  m.catalog_epoch = served.catalog_epoch;
  m.rules_epoch = served.rules_epoch;
  m.serve_ns = served.serve_ns;
  return m;
}

}  // namespace eds::net
