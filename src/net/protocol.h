#ifndef EDS_NET_PROTOCOL_H_
#define EDS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "srv/service.h"

namespace eds::net {

// The EDS wire protocol, v1. Every message is one frame using the persist
// codec's record framing (srv/codec.h):
//
//   [u32 payload_len][u32 payload_crc][payload]
//
// with payload = [u8 type][u64 request_id][body]. Integers are
// little-endian; strings are [u32 len][bytes] (codec Encoder/Decoder). The
// CRC is the same zlib-compatible CRC-32 the persist file uses, so a torn
// or bit-flipped frame is detected before any field is parsed. request_id
// is chosen by the client and echoed on the response; CANCEL names the
// request to cancel in its body. See docs/network.md for the full spec.
//
// Conversation shape:
//
//   client: HELLO(version, client_name, tenant)
//   server: HELLO_OK(version, session_id, server_info)   | ERROR + close
//   client: QUERY(esql) / EXEC(script) / STATS / CANCEL(id) ...
//   server: RESULT / STATS_RESULT (any order across requests)
//   client: GOODBYE          server: GOODBYE_OK + close

inline constexpr uint32_t kProtocolVersion = 1;
// Frames larger than this are a protocol error (connection closed): bounds
// both the server's per-connection buffering and the decoder's allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;
// Longest tenant id a HELLO may carry. Tenant ids key per-tenant server
// state (admission stats, weight lookups), so a client-chosen string
// must not be an unbounded memory-growth vector.
inline constexpr size_t kMaxTenantIdBytes = 128;

enum class MsgType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kQuery = 3,
  kResult = 4,
  kCancel = 5,
  kStats = 6,
  kStatsResult = 7,
  kExec = 8,
  kGoodbye = 9,
  kGoodbyeOk = 10,
  kError = 11,  // protocol-level failure; the server closes after sending
};

struct Hello {
  uint32_t version = kProtocolVersion;
  std::string client_name;
  std::string tenant;  // weighted admission id; "" = default tenant
};

struct HelloOk {
  uint32_t version = kProtocolVersion;
  uint64_t session_id = 0;
  std::string server_info;
};

struct QueryMsg {
  std::string esql;
};

struct ExecMsg {
  std::string script;  // DDL/INSERT batch for QueryService::ApplyDdl
};

struct CancelMsg {
  uint64_t target_request = 0;
};

// RESULT carries either an error string or the rendered result set plus
// serving metadata. Rows travel as text (Value::ToString per cell): the
// concurrent-client stress proves byte-identical bags against in-process
// serving rendered through the same function.
struct ResultMsg {
  bool ok = false;
  std::string error;  // set when !ok

  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  bool l0_hit = false;
  bool cache_hit = false;
  uint64_t catalog_epoch = 0;  // serving-snapshot epochs (snapshot pinning
  uint64_t rules_epoch = 0;    // is observable on the wire)
  uint64_t serve_ns = 0;
};

struct StatsResult {
  std::string prometheus;  // text exposition, same as eds_stat scrapes
};

struct ErrorMsg {
  std::string message;
};

// ---- frame assembly ----

// Appends one complete frame (codec record around [type][request_id][body])
// to `out`.
void AppendFrame(MsgType type, uint64_t request_id, std::string_view body,
                 std::string* out);

// One parsed frame.
struct Frame {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  std::string body;
};

enum class FrameStatus {
  kOk,        // *out filled; consumed bytes erased from *buffer
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kBad,       // malformed (oversize length, bad CRC, bad type): close
};

// Streaming extraction: pulls the first complete frame out of `buffer`
// (erasing its bytes) or reports kNeedMore/kBad. `error` (optional) gets a
// description on kBad. Tolerates arbitrary garbage without reading out of
// bounds — the codec chaos patterns (truncation, bit flips, giant lengths)
// land on exactly this function.
FrameStatus NextFrame(std::string* buffer, size_t max_frame_bytes, Frame* out,
                      std::string* error);

// ---- body encode/decode (bodies only; frame handled above) ----

std::string EncodeHello(const Hello& m);
std::string EncodeHelloOk(const HelloOk& m);
std::string EncodeQuery(const QueryMsg& m);
std::string EncodeExec(const ExecMsg& m);
std::string EncodeCancel(const CancelMsg& m);
std::string EncodeResult(const ResultMsg& m);
std::string EncodeStatsResult(const StatsResult& m);
std::string EncodeError(const ErrorMsg& m);
// HELLO/GOODBYE/STATS/GOODBYE_OK have empty bodies.

Result<Hello> DecodeHello(std::string_view body);
Result<HelloOk> DecodeHelloOk(std::string_view body);
Result<QueryMsg> DecodeQuery(std::string_view body);
Result<ExecMsg> DecodeExec(std::string_view body);
Result<CancelMsg> DecodeCancel(std::string_view body);
Result<ResultMsg> DecodeResult(std::string_view body);
Result<StatsResult> DecodeStatsResult(std::string_view body);
Result<ErrorMsg> DecodeError(std::string_view body);

// ---- result rendering ----

// Renders a served query into the wire form. Both the server and the
// byte-identical stress tests go through this one function, so "equal over
// the wire" and "equal in process" mean the same thing.
ResultMsg RenderServed(const srv::ServedQuery& served);

// Renders one executor row as text cells (Value::ToString per cell).
std::vector<std::string> RenderRow(const exec::Row& row);

}  // namespace eds::net

#endif  // EDS_NET_PROTOCOL_H_
