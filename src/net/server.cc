#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "gov/failpoint.h"

namespace eds::net {

namespace {

Status Errno(const char* what) {
  return Status::RuntimeError(std::string(what) + ": " +
                              std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

// EDS_FAIL_POINT returns from the *enclosing* function, so each site gets a
// tiny Status-returning wrapper the socket paths call.
Status FailAccept() {
  EDS_FAIL_POINT("net.accept");
  return Status::OK();
}
Status FailRead() {
  EDS_FAIL_POINT("net.read");
  return Status::OK();
}
Status FailWrite() {
  EDS_FAIL_POINT("net.write");
  return Status::OK();
}

const char* TypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kHelloOk: return "HELLO_OK";
    case MsgType::kQuery: return "QUERY";
    case MsgType::kResult: return "RESULT";
    case MsgType::kCancel: return "CANCEL";
    case MsgType::kStats: return "STATS";
    case MsgType::kStatsResult: return "STATS_RESULT";
    case MsgType::kExec: return "EXEC";
    case MsgType::kGoodbye: return "GOODBYE";
    case MsgType::kGoodbyeOk: return "GOODBYE_OK";
    case MsgType::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

Server::Server(srv::QueryService* service, const ServerOptions& options)
    : service_(service), options_(options) {
  if (options_.collect_traces) {
    sink_ = std::make_unique<obs::TraceSink>();
  }
}

Server::~Server() { Shutdown(true); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::InvalidArgument("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  auto fail = [&](Status s) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  };
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument("bad listen host: " + options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(Errno("bind"));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return fail(Errno("listen"));
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) <
      0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
  Status nb = SetNonBlocking(listen_fd_);
  if (!nb.ok()) return fail(nb);
  if (::pipe(wake_fds_) != 0) return fail(Errno("pipe"));
  (void)SetNonBlocking(wake_fds_[0]);
  (void)SetNonBlocking(wake_fds_[1]);
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
    accepting_ = true;
    stop_ = false;
    draining_.store(false);
    stopping_.store(false);
  }
  poller_ = std::thread(&Server::PollLoop, this);
  return Status::OK();
}

void Server::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    accepting_ = false;
  }
  // From here on new QUERY frames are refused with a failed RESULT, so
  // pending_total_ only decreases: a client that keeps pipelining cannot
  // hold the drain open.
  draining_.store(true);
  WakePoller();
  if (drain) {
    // Connections stay open while their admitted queries finish; the
    // RESULT frames are still delivered. The wait is bounded by
    // drain_timeout_ms — anything still pending afterwards is cancelled
    // by the stop path below.
    std::unique_lock<std::mutex> dlock(drain_mu_);
    auto drained = [&] { return pending_total_.load() == 0; };
    if (options_.drain_timeout_ms > 0) {
      (void)drain_cv_.wait_for(
          dlock, std::chrono::milliseconds(options_.drain_timeout_ms),
          drained);
    } else {
      drain_cv_.wait(dlock, drained);
    }
  }
  // Aborts any send still parked on a slow reader, so the poller join
  // below can never wait behind one.
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  WakePoller();
  if (poller_.joinable()) poller_.join();
  // The poller's exit path cancelled whatever was still pending (the
  // non-drain case); completion callbacks reference this object, so wait
  // them out before returning.
  {
    std::unique_lock<std::mutex> dlock(drain_mu_);
    drain_cv_.wait(dlock, [&] { return pending_total_.load() == 0; });
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) {
      ::close(wake_fds_[i]);
      wake_fds_[i] = -1;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Server::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

size_t Server::pending_queries() const { return pending_total_.load(); }

ServerStats Server::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Server::ExportMetrics(obs::MetricsRegistry* registry) const {
  ServerStats s;
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    active = conns_.size();
  }
  registry->Counter("net.accepted", s.accepted);
  registry->Counter("net.closed", s.closed);
  registry->Counter("net.rejected", s.rejected);
  registry->Counter("net.frames.read", s.frames_read);
  registry->Counter("net.frames.written", s.frames_written);
  registry->Counter("net.bytes.read", s.bytes_read);
  registry->Counter("net.bytes.written", s.bytes_written);
  registry->Counter("net.queries", s.queries);
  registry->Counter("net.execs", s.execs);
  registry->Counter("net.cancels", s.cancels);
  registry->Counter("net.cancel_misses", s.cancel_misses);
  registry->Counter("net.stats_requests", s.stats_requests);
  registry->Counter("net.protocol_errors", s.protocol_errors);
  registry->Counter("net.read_errors", s.read_errors);
  registry->Counter("net.write_errors", s.write_errors);
  registry->Counter("net.accept_errors", s.accept_errors);
  registry->Counter("net.poll_errors", s.poll_errors);
  registry->Counter("net.drain_rejected", s.drain_rejected);
  registry->Gauge("net.connections.active", static_cast<double>(active));
  registry->Gauge("net.queries.pending",
                  static_cast<double>(pending_total_.load()));
}

void Server::WakePoller() {
  if (wake_fds_[1] >= 0) {
    char b = 1;
    ssize_t ignored = ::write(wake_fds_[1], &b, 1);
    (void)ignored;  // a full pipe already guarantees a wakeup
  }
}

void Server::PollLoop() {
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<ConnPtr> polled;
    bool accepting = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
      accepting = accepting_;
      fds.push_back({wake_fds_[0], POLLIN, 0});
      if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
      polled.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) {
        fds.push_back({fd, POLLIN, 0});
        polled.push_back(conn);
      }
    }
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // A persistent failure (e.g. EINVAL once nfds exceeds the rlimit)
      // returns immediately; back off instead of busy-spinning the
      // rebuild-and-retry loop at 100% CPU.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.poll_errors;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    size_t base = 1;
    if (accepting) {
      if (fds[1].revents & POLLIN) AcceptReady();
      base = 2;
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const ConnPtr& conn = polled[i];
      const pollfd& p = fds[base + i];
      if (conn->wants_close.load()) {
        CloseConnection(conn);
        continue;
      }
      if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      Status read = ReadAvailable(conn);
      if (!read.ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.read_errors;
        }
        CloseConnection(conn);
        continue;
      }
      if (!DrainFrames(conn) || conn->wants_close.load()) {
        CloseConnection(conn);
      }
    }
  }
  // stop_: tear everything down. Closing cancels pending tokens; their
  // callbacks drain after the poller exits (Shutdown waits for them).
  std::vector<ConnPtr> rest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, conn] : conns_) rest.push_back(conn);
  }
  for (const ConnPtr& conn : rest) CloseConnection(conn);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptReady() {
  Status s = AcceptOne();
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accept_errors;
  }
}

Status Server::AcceptOne() {
  sockaddr_in addr{};
  socklen_t alen = sizeof(addr);
  int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    return Errno("accept");
  }
  // The fail point fires after accept so injection closes a real
  // connection (the client observes a reset, the chaos test's vantage
  // point) instead of busy-looping the listen socket.
  Status injected = FailAccept();
  if (!injected.ok()) {
    ::close(fd);
    return injected;
  }
  (void)SetNonBlocking(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  conn->peer = std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
  conn->open_ns = obs::NowNs();
  bool reject = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conns_.size() >= options_.max_connections) {
      reject = true;
      ++stats_.rejected;
    } else {
      conn->id = next_session_id_++;
      conns_[fd] = conn;
      ++stats_.accepted;
    }
  }
  if (reject) {
    ErrorMsg err;
    err.message = "server connection limit reached";
    std::string frame;
    AppendFrame(MsgType::kError, 0, EncodeError(err), &frame);
    (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
  return Status::OK();
}

Status Server::ReadAvailable(const ConnPtr& conn) {
  Status injected = FailRead();
  if (!injected.ok()) return injected;
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_read += static_cast<uint64_t>(n);
      continue;
    }
    if (n == 0) {
      // Clean EOF: whatever complete frames are buffered still dispatch,
      // then the connection closes.
      conn->wants_close.store(true);
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

bool Server::DrainFrames(const ConnPtr& conn) {
  for (;;) {
    Frame frame;
    std::string why;
    FrameStatus st =
        NextFrame(&conn->inbuf, options_.max_frame_bytes, &frame, &why);
    if (st == FrameStatus::kNeedMore) return true;
    if (st == FrameStatus::kBad) {
      ProtocolError(conn, 0, why);
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_read;
    }
    if (!Dispatch(conn, frame)) return false;
    if (conn->wants_close.load()) return true;
  }
}

bool Server::Dispatch(const ConnPtr& conn, const Frame& f) {
  std::unique_ptr<obs::Span> span;
  if (sink_ != nullptr) {
    span = std::make_unique<obs::Span>(
        sink_.get(), std::string("net.msg.") + TypeName(f.type), "net");
    span->Arg("session", conn->id);
    span->Arg("request", f.request_id);
  }
  if (!conn->hello_done && f.type != MsgType::kHello) {
    ProtocolError(conn, f.request_id, "HELLO required before any other message");
    return false;
  }
  switch (f.type) {
    case MsgType::kHello: {
      if (conn->hello_done) {
        ProtocolError(conn, f.request_id, "duplicate HELLO");
        return false;
      }
      Result<Hello> hello = DecodeHello(f.body);
      if (!hello.ok()) {
        ProtocolError(conn, f.request_id,
                      "bad HELLO: " + hello.status().message());
        return false;
      }
      if (hello->version != kProtocolVersion) {
        ProtocolError(conn, f.request_id,
                      "unsupported protocol version " +
                          std::to_string(hello->version) + " (server speaks " +
                          std::to_string(kProtocolVersion) + ")");
        return false;
      }
      // Tenant ids flow into per-tenant maps (admission stats, weights);
      // an unbounded client-chosen string is a memory-growth vector, so
      // the cap is enforced at the door.
      if (hello->tenant.size() > kMaxTenantIdBytes) {
        ProtocolError(conn, f.request_id,
                      "tenant id exceeds " +
                          std::to_string(kMaxTenantIdBytes) + " bytes");
        return false;
      }
      conn->hello_done = true;
      conn->tenant = hello->tenant;
      HelloOk ok;
      ok.version = kProtocolVersion;
      ok.session_id = conn->id;
      ok.server_info = options_.server_info;
      return SendFrame(conn, MsgType::kHelloOk, f.request_id, EncodeHelloOk(ok))
          .ok();
    }
    case MsgType::kQuery:
      if (draining_.load()) {
        // Shutdown in progress: refusing here keeps pending_total_
        // monotonically decreasing so the drain wait terminates. The
        // refusal travels as a failed RESULT (like any per-query error)
        // and the connection stays open for RESULTs still in flight.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.drain_rejected;
        }
        ResultMsg r;
        r.ok = false;
        r.error = "server draining: query rejected";
        (void)SendFrame(conn, MsgType::kResult, f.request_id,
                        EncodeResult(r));
        return true;
      }
      HandleQuery(conn, f);
      return true;
    case MsgType::kCancel: {
      Result<CancelMsg> c = DecodeCancel(f.body);
      if (!c.ok()) {
        ProtocolError(conn, f.request_id, "bad CANCEL: " + c.status().message());
        return false;
      }
      std::shared_ptr<PendingQuery> target;
      {
        std::lock_guard<std::mutex> lock(conn->pending_mu);
        auto it = conn->pending.find(c->target_request);
        if (it != conn->pending.end()) target = it->second;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (target != nullptr) {
          ++stats_.cancels;
        } else {
          ++stats_.cancel_misses;  // already finished: a benign race
        }
      }
      // No reply: the cancelled QUERY's own RESULT carries the outcome
      // (either rows, if it won the race, or the governor's cancel error).
      if (target != nullptr) target->token.Cancel();
      return true;
    }
    case MsgType::kStats: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stats_requests;
      }
      StatsResult sr;
      sr.prometheus = BuildStatsText();
      return SendFrame(conn, MsgType::kStatsResult, f.request_id,
                       EncodeStatsResult(sr))
          .ok();
    }
    case MsgType::kExec: {
      Result<ExecMsg> e = DecodeExec(f.body);
      if (!e.ok()) {
        ProtocolError(conn, f.request_id, "bad EXEC: " + e.status().message());
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.execs;
      }
      // Runs on the poller by design: DDL stalls only *new* messages.
      // Queries already admitted keep draining on the snapshot they
      // pinned; ApplyDdl publishes the successor before this returns.
      Status applied = service_->ApplyDdl(e->script);
      ResultMsg r;
      if (applied.ok()) {
        r.ok = true;
        if (srv::SnapshotRef snap = service_->current_snapshot()) {
          r.catalog_epoch = snap->catalog_epoch;
          r.rules_epoch = snap->rules_epoch;
        }
      } else {
        r.ok = false;
        r.error = applied.message();
      }
      return SendFrame(conn, MsgType::kResult, f.request_id, EncodeResult(r))
          .ok();
    }
    case MsgType::kGoodbye:
      (void)SendFrame(conn, MsgType::kGoodbyeOk, f.request_id, "");
      return false;  // orderly close
    default:
      ProtocolError(conn, f.request_id,
                    std::string("unexpected message type ") + TypeName(f.type));
      return false;
  }
}

void Server::HandleQuery(const ConnPtr& conn, const Frame& f) {
  Result<QueryMsg> q = DecodeQuery(f.body);
  if (!q.ok()) {
    ProtocolError(conn, f.request_id, "bad QUERY: " + q.status().message());
    return;
  }
  const uint64_t id = f.request_id;
  auto pending = std::make_shared<PendingQuery>();
  {
    std::lock_guard<std::mutex> lock(conn->pending_mu);
    if (!conn->pending.emplace(id, pending).second) {
      ProtocolError(conn, id, "duplicate request id");
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  pending_total_.fetch_add(1);
  srv::SubmitOptions opts;
  opts.cancel = &pending->token;
  opts.tenant = conn->tenant;
  // `pending` rides in the capture so the token outlives the query even if
  // the connection dies first; the callback runs on a service worker.
  service_->SubmitWithCallback(
      std::move(q->esql), opts,
      [this, conn, pending, id](Result<srv::ServedQuery> served) {
        ResultMsg msg;
        if (served.ok()) {
          msg = RenderServed(*served);
        } else {
          msg.ok = false;
          msg.error = served.status().message();
        }
        (void)SendFrame(conn, MsgType::kResult, id, EncodeResult(msg));
        FinishPending(conn, id);
      });
}

Status Server::SendFrame(const ConnPtr& conn, MsgType type,
                         uint64_t request_id, std::string_view body) {
  Status s = SendFrameImpl(conn, type, request_id, body);
  if (!s.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.write_errors;
    }
    conn->wants_close.store(true);
    WakePoller();
  }
  return s;
}

Status Server::SendFrameImpl(const ConnPtr& conn, MsgType type,
                             uint64_t request_id, std::string_view body) {
  Status injected = FailWrite();
  if (!injected.ok()) return injected;
  std::string frame;
  AppendFrame(type, request_id, body, &frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed) return Status::RuntimeError("connection closed");
  size_t off = 0;
  // Write deadline: a frame (up to max_frame_bytes) can exceed the socket
  // send buffer, and a client that simply stops reading would otherwise
  // park this thread in the EAGAIN loop forever — fatal when the caller
  // is the poller (inline HELLO_OK/ERROR/STATS_RESULT/EXEC replies).
  const uint64_t deadline_ns =
      options_.write_timeout_ms == 0
          ? 0
          : obs::NowNs() + options_.write_timeout_ms * 1'000'000ULL;
  while (off < frame.size()) {
    ssize_t n = ::send(conn->fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow reader: wait for writability in short slices so a poller
      // shutdown (which shuts the socket down first, failing this send)
      // never waits behind us for long.
      if (conn->wants_close.load() || stopping_.load()) {
        return Status::RuntimeError("connection closing");
      }
      if (deadline_ns != 0 && obs::NowNs() >= deadline_ns) {
        return Status::RuntimeError(
            "send timed out after " +
            std::to_string(options_.write_timeout_ms) +
            "ms: client not reading");
      }
      pollfd p{conn->fd, POLLOUT, 0};
      ::poll(&p, 1, 50);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  {
    std::lock_guard<std::mutex> slock(mu_);
    ++stats_.frames_written;
    stats_.bytes_written += frame.size();
  }
  return Status::OK();
}

void Server::ProtocolError(const ConnPtr& conn, uint64_t request_id,
                           const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.protocol_errors;
  }
  ErrorMsg err;
  err.message = message;
  (void)SendFrame(conn, MsgType::kError, request_id, EncodeError(err));
  conn->wants_close.store(true);
}

void Server::CloseConnection(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn->fd);
    if (it == conns_.end() || it->second != conn) return;  // already gone
    conns_.erase(it);
    ++stats_.closed;
  }
  // Everything still in flight gets cancelled; the service's callbacks
  // still fire (finding the socket closed) and drain pending_total_.
  std::vector<std::shared_ptr<PendingQuery>> inflight;
  {
    std::lock_guard<std::mutex> lock(conn->pending_mu);
    for (const auto& [id, p] : conn->pending) inflight.push_back(p);
    conn->pending.clear();
  }
  for (const auto& p : inflight) p->token.Cancel();
  conn->wants_close.store(true);
  // Shut down before taking write_mu: a worker blocked in send() wakes
  // with an error and releases the lock instead of stalling the poller.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->closed = true;
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (sink_ != nullptr) {
    sink_->RecordComplete("net.connection", "net", conn->open_ns, obs::NowNs(),
                          {{"peer", conn->peer},
                           {"session", std::to_string(conn->id)}});
  }
}

void Server::FinishPending(const ConnPtr& conn, uint64_t request_id) {
  {
    std::lock_guard<std::mutex> lock(conn->pending_mu);
    conn->pending.erase(request_id);
  }
  pending_total_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

std::string Server::BuildStatsText() const {
  obs::MetricsRegistry registry;
  service_->ExportMetrics(&registry);
  ExportMetrics(&registry);
  return registry.ToPrometheus();
}

}  // namespace eds::net
