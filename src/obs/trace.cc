#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace eds::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceSink::TraceSink() : origin_ns_(NowNs()) {}

Span::Span(TraceSink* sink, const char* name, const char* category)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  name_ = name;
  category_ = category;
  depth_ = sink_->depth_++;
  start_ns_ = NowNs();
}

Span::Span(TraceSink* sink, std::string name, const char* category)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  name_ = std::move(name);
  category_ = category;
  depth_ = sink_->depth_++;
  start_ns_ = NowNs();
}

void Span::Arg(const char* key, std::string value) {
  if (sink_ == nullptr) return;
  args_.emplace_back(key, std::move(value));
}

void Span::Arg(const char* key, int64_t value) {
  if (sink_ == nullptr) return;
  args_.emplace_back(key, std::to_string(value));
}

void Span::Finish() {
  if (sink_ == nullptr) return;
  const uint64_t end = NowNs();
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.start_ns = start_ns_ - sink_->origin_ns_;
  e.dur_ns = end - start_ns_;
  e.depth = depth_;
  e.args = std::move(args_);
  sink_->events_.push_back(std::move(e));
  --sink_->depth_;
  sink_ = nullptr;
}

void TraceSink::RecordComplete(
    std::string name, const char* category, uint64_t start_ns_abs,
    uint64_t end_ns_abs,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = category;
  e.start_ns = start_ns_abs - origin_ns_;
  e.dur_ns = end_ns_abs - start_ns_abs;
  e.depth = depth_;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceSink::AppendFrom(const TraceSink& other) {
  const uint64_t base = other.origin_ns_ - origin_ns_;
  events_.reserve(events_.size() + other.events_.size());
  for (const TraceEvent& e : other.events_) {
    TraceEvent copy = e;
    copy.start_ns = base + e.start_ns;
    events_.push_back(std::move(copy));
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceSink::WriteChromeTrace(std::ostream& os) const {
  // ts/dur are microseconds (doubles) in the trace-event format; emit with
  // three decimals so nanosecond spans stay distinguishable.
  auto us = [](uint64_t ns) {
    std::ostringstream o;
    o << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
      << static_cast<char>('0' + (ns % 100) / 10)
      << static_cast<char>('0' + ns % 10);
    return o.str();
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
       << JsonEscape(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
       << "\"ts\":" << us(e.start_ns) << ",\"dur\":" << us(e.dur_ns);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << JsonEscape(e.args[i].first) << "\":\""
           << JsonEscape(e.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::string TraceSink::ToChromeTraceJson() const {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

void WriteMergedChromeTrace(std::ostream& os,
                            const std::vector<SinkWithTid>& sinks) {
  // Rebase every sink onto the earliest origin so concurrent workers line
  // up on one timeline instead of each starting at ts=0.
  uint64_t min_origin = 0;
  bool have_origin = false;
  for (const SinkWithTid& s : sinks) {
    if (s.sink == nullptr) continue;
    if (!have_origin || s.sink->origin_ns() < min_origin) {
      min_origin = s.sink->origin_ns();
      have_origin = true;
    }
  }
  struct Flat {
    const TraceEvent* event;
    uint64_t abs_start_ns;
    int tid;
  };
  std::vector<Flat> flat;
  for (const SinkWithTid& s : sinks) {
    if (s.sink == nullptr) continue;
    const uint64_t base = s.sink->origin_ns() - min_origin;
    for (const TraceEvent& e : s.sink->events()) {
      flat.push_back({&e, base + e.start_ns, s.tid});
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const Flat& a, const Flat& b) {
                     return a.abs_start_ns < b.abs_start_ns;
                   });
  auto us = [](uint64_t ns) {
    std::ostringstream o;
    o << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
      << static_cast<char>('0' + (ns % 100) / 10)
      << static_cast<char>('0' + ns % 10);
    return o.str();
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Flat& f : flat) {
    const TraceEvent& e = *f.event;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
       << JsonEscape(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << f.tid << ",\"ts\":" << us(f.abs_start_ns)
       << ",\"dur\":" << us(e.dur_ns);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << JsonEscape(e.args[i].first) << "\":\""
           << JsonEscape(e.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace eds::obs
