#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eds::obs {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 2 * kSubCount) return static_cast<size_t>(value);
  const int exp = std::bit_width(value) - (kSubBits + 1);  // >= 1 here
  return static_cast<size_t>(exp) * kSubCount +
         static_cast<size_t>(value >> exp);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 2 * kSubCount) return index;
  const size_t exp = index / kSubCount - 1;
  const uint64_t mantissa = index - exp * kSubCount;  // in [kSubCount, 2*kSubCount)
  return mantissa << exp;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 2 * kSubCount) return index;
  const size_t exp = index / kSubCount - 1;
  const uint64_t mantissa = index - exp * kSubCount;
  // The top bucket's upper bound wraps to 2^64-1 via well-defined
  // unsigned arithmetic ((mantissa+1) << exp == 0 there).
  return ((mantissa + 1) << exp) - 1;
}

size_t Histogram::ShardSlot() {
  static std::atomic<size_t> next{0};
  // One round-robin assignment per thread: workers spread across shards
  // and then stay put, so a shard's counters live in that worker's cache.
  static thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[ShardSlot()];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.assign(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::ResetForTesting() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

}  // namespace eds::obs
