#ifndef EDS_OBS_TRACE_H_
#define EDS_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace eds::obs {

// Hierarchical timed spans for the query pipeline. One TraceSink collects
// the spans of a session (or a single query); Span is the RAII handle that
// instrumentation sites open around a phase, a rewrite pass/block, a fired
// rule, an executor operator, or a fixpoint round.
//
// The contract that keeps this near-free when tracing is off: every
// instrumentation site costs exactly one branch on a null sink pointer — no
// clock read, no allocation, no string construction. Sites that need a
// dynamic span name (rule names, relation names) must guard the name
// construction behind the same branch.
//
// Serialization targets the Chrome trace-event format ("traceEvents" with
// ph:"X" complete events, microsecond timestamps), which Perfetto and
// chrome://tracing load directly; see docs/observability.md.

// Monotonic nanoseconds (steady clock). Wall-clock time never appears in
// traces: spans must nest and subtract correctly even across NTP steps.
uint64_t NowNs();

// One completed span. `depth` is the sink's nesting depth at the time the
// span opened (root spans are depth 0); tests use it to check
// well-formedness, and the JSON writer does not need it (containment is
// implied by ts/dur on a single thread).
struct TraceEvent {
  std::string name;
  const char* category = "";  // static string: "phase", "rewrite", "rule", ...
  uint64_t start_ns = 0;      // relative to the sink's origin
  uint64_t dur_ns = 0;
  int depth = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Completed spans in order of *completion* (children precede parents).
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  int depth() const { return depth_; }
  void Clear() { events_.clear(); }

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  // Loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
  void WriteChromeTrace(std::ostream& os) const;
  std::string ToChromeTraceJson() const;

  // Steady-clock NowNs() at construction; event timestamps are relative to
  // this. Exposed so WriteMergedChromeTrace can rebase sinks created at
  // different times onto one timeline.
  uint64_t origin_ns() const { return origin_ns_; }

  // Records a pre-timed *leaf* event from absolute NowNs() readings. For
  // sites that already read the clock for aggregation (per-rule profiling)
  // and want the same interval in the trace without a second pair of reads.
  void RecordComplete(std::string name, const char* category,
                      uint64_t start_ns_abs, uint64_t end_ns_abs,
                      std::vector<std::pair<std::string, std::string>> args);

  // Copies every completed event of `other` into this sink, rebased from
  // `other`'s origin onto ours (both sinks read the same steady clock, so
  // the rebase is exact). Used by the serving layer's slow-query capture:
  // spans recorded into a per-query scratch sink are folded into the
  // worker's long-lived sink after the query completes.
  void AppendFrom(const TraceSink& other);

 private:
  friend class Span;
  std::vector<TraceEvent> events_;
  int depth_ = 0;
  uint64_t origin_ns_ = 0;  // NowNs() at construction; ts are relative
};

// RAII span: opens on construction, records a TraceEvent into the sink on
// Finish() / destruction. A null sink makes every member function a no-op
// after a single branch. Spans must be closed in LIFO order per sink (the
// natural shape of scoped instrumentation); the depth bookkeeping assumes
// it.
class Span {
 public:
  // `name`/`category` must outlive the span (string literals in practice).
  Span(TraceSink* sink, const char* name, const char* category);
  // Dynamic span name. Only call through a `if (sink != nullptr)` guard, or
  // the name string gets built even when tracing is off.
  Span(TraceSink* sink, std::string name, const char* category);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Finish(); }

  // Attaches a key/value pair rendered into the event's "args" object.
  void Arg(const char* key, std::string value);
  void Arg(const char* key, int64_t value);
  void Arg(const char* key, uint64_t value) {
    Arg(key, static_cast<int64_t>(value));
  }

  // Records the event now; later calls (and the destructor) do nothing.
  void Finish();

 private:
  TraceSink* sink_;  // null when tracing is off
  std::string name_;
  const char* category_ = "";
  uint64_t start_ns_ = 0;
  int depth_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, control characters). Shared by the trace and metrics
// writers.
std::string JsonEscape(const std::string& s);

// One sink plus the Chrome-trace thread id to emit its events under.
// WriteChromeTrace hardwires tid 1 (single-sink sessions); the merged
// writer gives each worker its own lane in the Perfetto timeline.
struct SinkWithTid {
  const TraceSink* sink = nullptr;
  int tid = 1;
};

// Merges several sinks into one Chrome trace: every event is rebased from
// its sink-relative timestamp onto the earliest origin_ns() across the
// sinks, sorted by absolute start time, and emitted with its sink's tid.
// Null sinks are skipped; an empty list yields a valid empty trace.
void WriteMergedChromeTrace(std::ostream& os,
                            const std::vector<SinkWithTid>& sinks);

}  // namespace eds::obs

#endif  // EDS_OBS_TRACE_H_
