#ifndef EDS_OBS_HISTOGRAM_H_
#define EDS_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace eds::obs {

// Log-bucketed (HDR-style) latency histogram for the serving hot path.
//
// Bucketing is log-linear: values below 2^kSubBits+1 land in exact unit
// buckets; above that, each power-of-two octave is split into kSubCount
// linear sub-buckets, so the relative quantile error is bounded by
// 1/kSubCount (~6% with kSubBits=4) across the full uint64 range. This is
// the classic HdrHistogram layout reduced to what a latency gauge needs:
// fixed memory, O(1) record, O(buckets) snapshot.
//
// Concurrency: recording is lock-free. Counters are relaxed atomics,
// sharded kShards ways with each shard on its own cache line set; a thread
// picks its shard once (thread-local round-robin), so the worker pool
// records without a shared lock OR a shared cache line. Snapshot() sums
// the shards with relaxed loads — it is a statistically consistent view,
// not a linearizable one, which is all a quantile gauge needs. The one
// cross-shard invariant tests may rely on: every Record() that
// happens-before a Snapshot() is fully visible in it (count, sum, and its
// bucket all move together per shard).
class Histogram;

// One merged view of a Histogram: bucket counts plus exact count/sum/max.
// Obtain via Histogram::Snapshot(); quantiles are extracted here so the
// walk happens once per export, never on the record path.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  // size Histogram::kBuckets
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  // Value at quantile q in [0,1]: the upper bound of the bucket holding
  // the ceil(q*count)-th smallest recorded value, clamped to the observed
  // max (so p100 == max exactly). Returns 0 on an empty snapshot.
  uint64_t ValueAtQuantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

class Histogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr size_t kSubCount = size_t{1} << kSubBits;
  // Unit buckets cover [0, 2*kSubCount); each further octave adds
  // kSubCount buckets up to 2^64-1. 59 octaves * 16 + 32 = 976.
  static constexpr size_t kBuckets = (63 - kSubBits) * kSubCount + 2 * kSubCount;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Lock-free; safe from any thread.
  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  // Zeroes every shard. NOT safe concurrently with Record (tests only).
  void ResetForTesting();

  // Bucket math, exposed for tests and the Prometheus exporter.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);  // inclusive

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  static size_t ShardSlot();

  std::array<Shard, kShards> shards_{};
};

}  // namespace eds::obs

#endif  // EDS_OBS_HISTOGRAM_H_
