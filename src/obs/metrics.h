#ifndef EDS_OBS_METRICS_H_
#define EDS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "gov/governor.h"
#include "rewrite/engine.h"
#include "term/interner.h"

namespace eds::obs {

// Unified metrics registry: one namespace of named counters/gauges covering
// every statistics producer in the system (rewrite EngineStats, executor
// ExecStats, the interner's hash-cons table, the expression-type memo), with
// one JSON export path and one text rendering. The dotted names
// ("rewrite.applications", "exec.rows_scanned", "interner.hits", ...) are
// the stable surface the shell's \metrics command, benches, and future
// dashboards key on; see docs/observability.md for the full catalog.
class MetricsRegistry {
 public:
  // Monotonic counts (sizes, event tallies). Setting an existing name
  // overwrites it — registries describe one snapshot, not a time series.
  void Counter(const std::string& name, uint64_t value);
  // Point-in-time measurements (ratios, nanosecond totals as doubles).
  void Gauge(const std::string& name, double value);

  // Snapshot in name order (deterministic output). Counters render without
  // a fractional part; gauges with one.
  const std::map<std::string, double>& values() const { return values_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  double Get(const std::string& name) const;

  // {"metrics":{"name":value,...}} — integers for counters.
  std::string ToJson() const;
  // Aligned "name value" lines for the shell.
  std::string ToText() const;

 private:
  std::map<std::string, double> values_;
  std::map<std::string, bool> is_counter_;
};

// Importers: each producer's stats become "prefix.field" entries.
void ExportEngineStats(const rewrite::EngineStats& stats,
                       MetricsRegistry* registry);
void ExportExecStats(const exec::ExecStats& stats, MetricsRegistry* registry);
void ExportInternerStats(const term::Interner::Stats& stats,
                         MetricsRegistry* registry);
// Query-governor trip tallies (cumulative across the process, like the
// interner's): gov.deadline_trips, gov.node_ceiling_trips,
// gov.row_ceiling_trips, gov.cancel_trips.
void ExportGovStats(const gov::TripCounters& counters,
                    MetricsRegistry* registry);

// Per-rule aggregates ranked by cumulative self time (descending; ties by
// name). The engine fills EngineStats::rule_profiles when
// RewriteOptions::profile_rules is on.
std::vector<std::pair<std::string, rewrite::RuleProfile>> RankRuleProfiles(
    const rewrite::EngineStats& stats);

// Renders the top `limit` rules as an aligned table (the shell's \profile).
std::string FormatRuleProfiles(const rewrite::EngineStats& stats,
                               size_t limit);

}  // namespace eds::obs

#endif  // EDS_OBS_METRICS_H_
