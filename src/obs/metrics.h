#ifndef EDS_OBS_METRICS_H_
#define EDS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "gov/governor.h"
#include "obs/histogram.h"
#include "rewrite/engine.h"
#include "term/interner.h"

namespace eds::obs {

// Unified metrics registry: one namespace of named counters/gauges covering
// every statistics producer in the system (rewrite EngineStats, executor
// ExecStats, the interner's hash-cons table, the expression-type memo), with
// one JSON export path and one text rendering. The dotted names
// ("rewrite.applications", "exec.rows_scanned", "interner.hits", ...) are
// the stable surface the shell's \metrics command, benches, and future
// dashboards key on; see docs/observability.md for the full catalog.
class MetricsRegistry {
 public:
  // Monotonic counts (sizes, event tallies). Setting an existing name
  // overwrites it — registries describe one snapshot, not a time series.
  void Counter(const std::string& name, uint64_t value);
  // Point-in-time measurements (ratios, nanosecond totals as doubles).
  void Gauge(const std::string& name, double value);
  // Full distribution (obs/histogram.h snapshot). Rendered only by
  // ToPrometheus(), as a proper histogram series (_bucket/_sum/_count);
  // register the quantiles you want in ToText/ToJson separately (see
  // ExportHistogramQuantiles, which does both).
  void Histogram(const std::string& name, HistogramSnapshot snapshot);

  // Snapshot in name order (deterministic output). Counters render without
  // a fractional part; gauges with one.
  const std::map<std::string, double>& values() const { return values_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  double Get(const std::string& name) const;

  // {"metrics":{"name":value,...}} — integers for counters, JSON-escaped
  // names, non-finite gauges rendered as null (NaN/Inf are not JSON).
  std::string ToJson() const;
  // Aligned "name value" lines for the shell.
  std::string ToText() const;
  // Prometheus text exposition format (version 0.0.4): one `# TYPE` line
  // per metric (counter/gauge/histogram), dotted names mapped to
  // underscore names, histograms as cumulative `_bucket{le="..."}` series
  // with `_sum`/`_count`. Empty buckets are elided (the `+Inf` bucket is
  // always present), so the output stays scrape-sized.
  std::string ToPrometheus() const;

 private:
  std::map<std::string, double> values_;
  std::map<std::string, bool> is_counter_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

// Registers `prefix`.p50/.p90/.p99 quantile gauges, `prefix`.max and
// `prefix`.mean gauges, and a `prefix`.count counter extracted from the
// snapshot, plus the full distribution for Prometheus exposition. The one
// call every latency exporter goes through, so \metrics, eds_stat, and
// the Prometheus snapshot cannot drift.
void ExportHistogramQuantiles(const std::string& prefix,
                              const HistogramSnapshot& snapshot,
                              MetricsRegistry* registry);

// Importers: each producer's stats become "prefix.field" entries.
void ExportEngineStats(const rewrite::EngineStats& stats,
                       MetricsRegistry* registry);
void ExportExecStats(const exec::ExecStats& stats, MetricsRegistry* registry);
void ExportInternerStats(const term::Interner::Stats& stats,
                         MetricsRegistry* registry);
// Query-governor trip tallies (cumulative across the process, like the
// interner's): gov.deadline_trips, gov.node_ceiling_trips,
// gov.row_ceiling_trips, gov.cancel_trips.
void ExportGovStats(const gov::TripCounters& counters,
                    MetricsRegistry* registry);

// Per-rule aggregates ranked by cumulative self time (descending; ties by
// name). The engine fills EngineStats::rule_profiles when
// RewriteOptions::profile_rules is on.
std::vector<std::pair<std::string, rewrite::RuleProfile>> RankRuleProfiles(
    const rewrite::EngineStats& stats);

// Renders the top `limit` rules as an aligned table (the shell's \profile).
std::string FormatRuleProfiles(const rewrite::EngineStats& stats,
                               size_t limit);

}  // namespace eds::obs

#endif  // EDS_OBS_METRICS_H_
