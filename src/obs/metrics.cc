#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.h"

namespace eds::obs {

void MetricsRegistry::Counter(const std::string& name, uint64_t value) {
  values_[name] = static_cast<double>(value);
  is_counter_[name] = true;
}

void MetricsRegistry::Gauge(const std::string& name, double value) {
  values_[name] = value;
  is_counter_[name] = false;
}

void MetricsRegistry::Histogram(const std::string& name,
                                HistogramSnapshot snapshot) {
  histograms_[name] = std::move(snapshot);
}

double MetricsRegistry::Get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":";
    if (is_counter_.at(name)) {
      os << static_cast<uint64_t>(value);
    } else if (!std::isfinite(value)) {
      os << "null";  // NaN/Inf are not JSON literals
    } else {
      os << value;
    }
  }
  os << "}}\n";
  return os.str();
}

namespace {

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; dotted registry
// names map onto that by replacing every other character with '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void AppendPrometheusValue(std::ostringstream& os, double value,
                           bool counter) {
  if (counter) {
    os << static_cast<uint64_t>(value);
  } else if (std::isnan(value)) {
    os << "NaN";
  } else if (std::isinf(value)) {
    os << (value > 0 ? "+Inf" : "-Inf");
  } else {
    os << value;
  }
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : values_) {
    const bool counter = is_counter_.at(name);
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << (counter ? " counter" : " gauge") << "\n"
       << prom << " ";
    AppendPrometheusValue(os, value, counter);
    os << "\n";
  }
  for (const auto& [name, snap] : histograms_) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      cumulative += snap.counts[i];
      // Qualified: inside MetricsRegistry the member Histogram() hides
      // the class name.
      os << prom << "_bucket{le=\"" << ::eds::obs::Histogram::BucketUpperBound(i)
         << "\"} " << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
       << prom << "_sum " << snap.sum << "\n"
       << prom << "_count " << snap.count << "\n";
  }
  return os.str();
}

void ExportHistogramQuantiles(const std::string& prefix,
                              const HistogramSnapshot& snapshot,
                              MetricsRegistry* registry) {
  registry->Gauge(prefix + ".p50",
                  static_cast<double>(snapshot.ValueAtQuantile(0.50)));
  registry->Gauge(prefix + ".p90",
                  static_cast<double>(snapshot.ValueAtQuantile(0.90)));
  registry->Gauge(prefix + ".p99",
                  static_cast<double>(snapshot.ValueAtQuantile(0.99)));
  registry->Gauge(prefix + ".max", static_cast<double>(snapshot.max));
  registry->Gauge(prefix + ".mean", snapshot.mean());
  registry->Counter(prefix + ".count", snapshot.count);
  registry->Histogram(prefix, snapshot);
}

std::string MetricsRegistry::ToText() const {
  size_t width = 0;
  for (const auto& [name, value] : values_) {
    width = std::max(width, name.size());
  }
  std::ostringstream os;
  for (const auto& [name, value] : values_) {
    os << name << std::string(width - name.size() + 2, ' ');
    if (is_counter_.at(name)) {
      os << static_cast<uint64_t>(value);
    } else {
      os << value;
    }
    os << "\n";
  }
  return os.str();
}

void ExportEngineStats(const rewrite::EngineStats& stats,
                       MetricsRegistry* registry) {
  registry->Counter("rewrite.applications", stats.applications);
  registry->Counter("rewrite.condition_checks", stats.condition_checks);
  registry->Counter("rewrite.passes", stats.passes);
  registry->Counter("rewrite.cycle_stops", stats.cycle_stops);
  registry->Counter("rewrite.match_attempts", stats.match_attempts);
  registry->Counter("rewrite.quick_rejects", stats.quick_rejects);
  registry->Counter("rewrite.normal_form_hits", stats.normal_form_hits);
  registry->Counter("rewrite.expr_type_hits", stats.expr_type_hits);
  registry->Counter("rewrite.expr_type_misses", stats.expr_type_misses);
  registry->Counter("rewrite.safety_stop", stats.safety_stop ? 1 : 0);
  registry->Counter("rewrite.tripped", stats.trip.tripped() ? 1 : 0);
  for (const auto& [rule, count] : stats.applications_by_rule) {
    registry->Counter("rewrite.rule." + rule + ".applications", count);
  }
  for (const auto& [rule, prof] : stats.rule_profiles) {
    registry->Counter("rewrite.rule." + rule + ".ns", prof.ns);
    registry->Counter("rewrite.rule." + rule + ".match_attempts",
                      prof.match_attempts);
    registry->Counter("rewrite.rule." + rule + ".quick_rejects",
                      prof.quick_rejects);
    registry->Gauge("rewrite.rule." + rule + ".nodes_delta",
                    static_cast<double>(prof.nodes_delta));
  }
}

void ExportExecStats(const exec::ExecStats& stats, MetricsRegistry* registry) {
  registry->Counter("exec.rows_scanned", stats.rows_scanned);
  registry->Counter("exec.qual_evaluations", stats.qual_evaluations);
  registry->Counter("exec.rows_output", stats.rows_output);
  registry->Counter("exec.fix_iterations", stats.fix_iterations);
  registry->Counter("exec.fix_tuples", stats.fix_tuples);
  registry->Counter("exec.batches", stats.batches);
  registry->Counter("exec.vec_rows", stats.vec_rows);
  registry->Counter("exec.vec_fallbacks", stats.vec_fallbacks);
  registry->Counter("exec.value_copies", stats.value_copies);
}

void ExportInternerStats(const term::Interner::Stats& stats,
                         MetricsRegistry* registry) {
  registry->Counter("interner.hits", stats.hits);
  registry->Counter("interner.misses", stats.misses);
  registry->Counter("interner.entries", stats.entries);
  registry->Counter("interner.sweeps", stats.sweeps);
}

void ExportGovStats(const gov::TripCounters& counters,
                    MetricsRegistry* registry) {
  registry->Counter("gov.deadline_trips", counters.deadline_trips);
  registry->Counter("gov.node_ceiling_trips", counters.node_ceiling_trips);
  registry->Counter("gov.row_ceiling_trips", counters.row_ceiling_trips);
  registry->Counter("gov.cancel_trips", counters.cancel_trips);
}

std::vector<std::pair<std::string, rewrite::RuleProfile>> RankRuleProfiles(
    const rewrite::EngineStats& stats) {
  std::vector<std::pair<std::string, rewrite::RuleProfile>> ranked(
      stats.rule_profiles.begin(), stats.rule_profiles.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.ns != b.second.ns) {
                       return a.second.ns > b.second.ns;
                     }
                     return a.first < b.first;
                   });
  return ranked;
}

std::string FormatRuleProfiles(const rewrite::EngineStats& stats,
                               size_t limit) {
  auto ranked = RankRuleProfiles(stats);
  if (ranked.size() > limit) ranked.resize(limit);
  size_t name_width = 4;
  for (const auto& [name, prof] : ranked) {
    name_width = std::max(name_width, name.size());
  }
  std::ostringstream os;
  auto pad = [&os](const std::string& s, size_t w) {
    os << s;
    if (s.size() < w) os << std::string(w - s.size(), ' ');
  };
  pad("rule", name_width + 2);
  os << "self_us   apps  attempts  rejects  nodes_delta\n";
  for (const auto& [name, prof] : ranked) {
    pad(name, name_width + 2);
    std::ostringstream us;
    us << prof.ns / 1000 << '.' << (prof.ns % 1000) / 100;
    pad(us.str(), 10);
    pad(std::to_string(prof.applications), 6);
    pad(std::to_string(prof.match_attempts), 10);
    pad(std::to_string(prof.quick_rejects), 9);
    os << prof.nodes_delta << "\n";
  }
  if (stats.rule_profiles.empty()) {
    os << "(no profile data: rewrite ran without profile_rules)\n";
  }
  return os.str();
}

}  // namespace eds::obs
