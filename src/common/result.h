#ifndef EDS_COMMON_RESULT_H_
#define EDS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace eds {

// Result<T> carries either a value or an error Status (never both), in the
// style of arrow::Result. Construction from T or from a non-OK Status is
// implicit so that `return value;` and `return Status::ParseError(...);`
// both work inside a function returning Result<T>.
template <typename T>
class Result {
 public:
  // Implicit: allows `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  // Implicit: allows `return Status::...;`. The status must be an error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result<T> built from OK status without a value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `alternative` if this holds an error.
  T value_or(T alternative) const& {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

// Assigns the value of a Result-returning expression to `lhs`, propagating
// errors. `lhs` may include a declaration: EDS_ASSIGN_OR_RETURN(auto x, F()).
#define EDS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define EDS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define EDS_ASSIGN_OR_RETURN_CONCAT(x, y) EDS_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define EDS_ASSIGN_OR_RETURN(lhs, expr)                                       \
  EDS_ASSIGN_OR_RETURN_IMPL(EDS_ASSIGN_OR_RETURN_CONCAT(_eds_res_, __LINE__), \
                            lhs, expr)

}  // namespace eds

#endif  // EDS_COMMON_RESULT_H_
