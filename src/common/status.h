#ifndef EDS_COMMON_STATUS_H_
#define EDS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace eds {

// Error categories used across the library. Mirrors the coarse failure modes
// of a query processor: what the user wrote (parse/type/plan errors), what the
// engine hit at run time, and internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // ESQL / rule-DSL / term text did not parse
  kTypeError,         // type checking or ISA failure
  kNotFound,          // catalog lookup miss (table, type, function, rule)
  kAlreadyExists,     // duplicate catalog registration
  kUnsupported,       // valid input outside the implemented subset
  kRuntimeError,      // execution-time failure (e.g. bad function args)
  kResourceExhausted, // budget / depth limits exceeded
  kInternal,          // invariant violation: a bug in this library
};

// Returns a stable human-readable name such as "ParseError".
const char* StatusCodeName(StatusCode code);

// Value-semantic error carrier, in the style of arrow::Status / rocksdb's
// Status. Functions that can fail return Status (or Result<T> below); there
// are no exceptions crossing the public API.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status RuntimeError(std::string m) {
    return Status(StatusCode::kRuntimeError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ParseError: unexpected token ')'".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Evaluates an expression returning Status and propagates failure.
#define EDS_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::eds::Status _eds_status = (expr);            \
    if (!_eds_status.ok()) return _eds_status;     \
  } while (false)

}  // namespace eds

#endif  // EDS_COMMON_STATUS_H_
