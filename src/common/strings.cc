#include "common/strings.h"

#include <cctype>

namespace eds {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace eds
