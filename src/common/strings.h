#ifndef EDS_COMMON_STRINGS_H_
#define EDS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace eds {

// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII-only case folding; ESQL keywords and function names are
// case-insensitive, identifiers are folded to the declared case by the
// catalog.
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

// True if both strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace eds

#endif  // EDS_COMMON_STRINGS_H_
