#include "srv/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "gov/failpoint.h"
#include "gov/governor.h"
#include "srv/fingerprint.h"
#include "term/parser.h"

namespace eds::srv {

namespace {

constexpr uint8_t kPlanRecord = 1;
constexpr uint8_t kL0Record = 2;

// Prints `t` and parses the text back, requiring the hash-consed pointer
// to survive the round trip. Terms that cannot (NULL constants, non-finite
// reals, collection constants — anything whose printed form is lossy or
// unparseable) yield nullopt and are skipped by the caller: the persisted
// file only ever contains text the parser provably maps back to the exact
// term that was cached.
std::optional<std::string> RoundTripText(const term::TermRef& t,
                                         size_t max_text_bytes) {
  if (t == nullptr) return std::nullopt;
  std::string text = t->ToString();
  if (text.size() > max_text_bytes) return std::nullopt;
  Result<term::TermRef> parsed = term::ParseTerm(text);
  if (!parsed.ok() || parsed.value().get() != t.get()) return std::nullopt;
  return text;
}

// Failpoint wrappers: EDS_FAIL_POINT returns out of its enclosing
// function, so each site lives in its own lambda-shaped function.
Status SaveFailPoint() {
  EDS_FAIL_POINT("persist.save");
  return Status::OK();
}
Status RenameFailPoint() {
  EDS_FAIL_POINT("persist.rename");
  return Status::OK();
}
Status LoadRecordFailPoint() {
  EDS_FAIL_POINT("persist.load.record");
  return Status::OK();
}

void EncodePlanRecord(const PersistedPlan& plan, std::string* payload) {
  Encoder enc(payload);
  enc.PutU8(kPlanRecord);
  enc.PutU64(plan.hits);
  enc.PutU64(plan.rewrite_ns);
  enc.PutString(plan.tmpl_text);
  enc.PutString(plan.nf_text);
  enc.PutU32(static_cast<uint32_t>(plan.param_texts.size()));
  for (const std::string& p : plan.param_texts) enc.PutString(p);
}

void EncodeL0Record(const PersistedL0& entry, std::string* payload) {
  Encoder enc(payload);
  enc.PutU8(kL0Record);
  enc.PutU64(entry.hits);
  enc.PutString(entry.key);
  enc.PutString(entry.raw_text);
  enc.PutString(entry.plan_text);
  enc.PutU32(static_cast<uint32_t>(entry.columns.size()));
  for (const std::string& c : entry.columns) enc.PutString(c);
}

// Decoders return Status so a malformed payload is one counted skip.
// `max_items` bounds the declared list lengths: each item costs >= 4 bytes
// on the wire, so the payload length already bounds real lists — the cap
// only defeats lengths that lie.
Status DecodePlanRecord(Decoder* dec, PersistedPlan* out) {
  EDS_ASSIGN_OR_RETURN(out->hits, dec->GetU64());
  EDS_ASSIGN_OR_RETURN(out->rewrite_ns, dec->GetU64());
  EDS_ASSIGN_OR_RETURN(out->tmpl_text, dec->GetString());
  EDS_ASSIGN_OR_RETURN(out->nf_text, dec->GetString());
  EDS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  if (n > dec->remaining() / 4 + 1) {
    return Status::InvalidArgument("persist: param count lies");
  }
  out->param_texts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    EDS_ASSIGN_OR_RETURN(std::string p, dec->GetString());
    out->param_texts.push_back(std::move(p));
  }
  if (!dec->done()) {
    return Status::InvalidArgument("persist: trailing bytes in plan record");
  }
  return Status::OK();
}

Status DecodeL0Record(Decoder* dec, PersistedL0* out) {
  EDS_ASSIGN_OR_RETURN(out->hits, dec->GetU64());
  EDS_ASSIGN_OR_RETURN(out->key, dec->GetString());
  EDS_ASSIGN_OR_RETURN(out->raw_text, dec->GetString());
  EDS_ASSIGN_OR_RETURN(out->plan_text, dec->GetString());
  EDS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  if (n > dec->remaining() / 4 + 1) {
    return Status::InvalidArgument("persist: column count lies");
  }
  out->columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    EDS_ASSIGN_OR_RETURN(std::string c, dec->GetString());
    out->columns.push_back(std::move(c));
  }
  if (!dec->done()) {
    return Status::InvalidArgument("persist: trailing bytes in L0 record");
  }
  return Status::OK();
}

void SortRows(exec::Rows* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const exec::Row& a, const exec::Row& b) {
              return exec::CompareRows(a, b) < 0;
            });
}

bool RowsEqual(const exec::Rows& a, const exec::Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (exec::CompareRows(a[i], b[i]) != 0) return false;
  }
  return true;
}

// Ground differential execution of two plans that must be equivalent.
// Returns true when a divergence is PROVEN (both sides executed cleanly
// and their sorted row bags differ); errors and budget trips on either
// side return false with *proven_clean=false (the caller counts the entry
// unverified and admits it — an overloaded verifier must not evict valid
// cache entries).
bool ProvenDivergent(exec::Session* session, const term::TermRef& lhs,
                     const term::TermRef& rhs,
                     const gov::GovernorLimits& limits, bool* proven_clean) {
  *proven_clean = false;
  gov::QueryGuard guard_l(limits);
  exec::ExecOptions opts;
  opts.guard = &guard_l;
  Result<exec::Rows> left = session->Run(lhs, opts);
  if (!left.ok()) return false;
  gov::QueryGuard guard_r(limits);
  opts.guard = &guard_r;
  Result<exec::Rows> right = session->Run(rhs, opts);
  if (!right.ok()) return false;
  exec::Rows ls = std::move(left).value();
  exec::Rows rs = std::move(right).value();
  SortRows(&ls);
  SortRows(&rs);
  if (RowsEqual(ls, rs)) {
    *proven_clean = true;
    return false;
  }
  return true;
}

// Parses persisted term text under the load-side paranoia caps.
Result<term::TermRef> ParseBounded(const std::string& text,
                                   const PersistOptions& options) {
  if (text.size() > options.max_text_bytes) {
    return Status::InvalidArgument("persist: term text exceeds cap");
  }
  EDS_ASSIGN_OR_RETURN(term::TermRef t, term::ParseTerm(text));
  if (t->node_count() > options.max_term_nodes) {
    return Status::ResourceExhausted("persist: term node count " +
                                     std::to_string(t->node_count()) +
                                     " exceeds cap");
  }
  return t;
}

}  // namespace

CacheImage BuildCacheImage(const PlanCache& cache, const L0Cache& l0,
                           const FileHeader& header,
                           const PersistOptions& options, SaveStats* stats) {
  SaveStats local;
  SaveStats* s = stats != nullptr ? stats : &local;
  CacheImage image;
  image.header = header;

  std::vector<PlanCache::SnapshotEntry> plans = cache.Snapshot();
  // Hottest first; the top-k cut then keeps the entries most worth the
  // restart's disk read.
  std::stable_sort(plans.begin(), plans.end(),
                   [](const PlanCache::SnapshotEntry& a,
                      const PlanCache::SnapshotEntry& b) {
                     return a.hits > b.hits;
                   });
  for (const PlanCache::SnapshotEntry& e : plans) {
    if (options.top_k != 0 && image.plans.size() >= options.top_k) break;
    if (e.catalog_epoch != header.catalog_epoch ||
        e.rules_epoch != header.rules_epoch) {
      ++s->stale;
      continue;
    }
    PersistedPlan plan;
    std::optional<std::string> tmpl =
        RoundTripText(e.tmpl, options.max_text_bytes);
    std::optional<std::string> nf =
        RoundTripText(e.normal_form, options.max_text_bytes);
    if (!tmpl.has_value() || !nf.has_value()) {
      ++s->skipped;
      continue;
    }
    bool params_ok = true;
    for (const term::TermRef& p : e.sample_params) {
      std::optional<std::string> pt =
          RoundTripText(p, options.max_text_bytes);
      if (!pt.has_value()) {
        params_ok = false;
        break;
      }
      plan.param_texts.push_back(std::move(*pt));
    }
    if (!params_ok) {
      ++s->skipped;
      continue;
    }
    plan.tmpl_text = std::move(*tmpl);
    plan.nf_text = std::move(*nf);
    plan.hits = e.hits;
    plan.rewrite_ns = e.rewrite_ns;
    image.plans.push_back(std::move(plan));
  }

  std::vector<L0Cache::SnapshotEntry> l0_entries = l0.Snapshot();
  std::stable_sort(l0_entries.begin(), l0_entries.end(),
                   [](const L0Cache::SnapshotEntry& a,
                      const L0Cache::SnapshotEntry& b) {
                     return a.hits > b.hits;
                   });
  for (const L0Cache::SnapshotEntry& e : l0_entries) {
    if (options.top_k != 0 && image.l0.size() >= options.top_k) break;
    if (e.entry.catalog_epoch != header.catalog_epoch ||
        e.entry.rules_epoch != header.rules_epoch) {
      ++s->stale;
      continue;
    }
    if (e.key.size() > options.max_text_bytes) {
      ++s->skipped;
      continue;
    }
    std::optional<std::string> raw =
        RoundTripText(e.entry.raw_plan, options.max_text_bytes);
    std::optional<std::string> plan =
        RoundTripText(e.entry.plan, options.max_text_bytes);
    if (!raw.has_value() || !plan.has_value()) {
      ++s->skipped;
      continue;
    }
    PersistedL0 out;
    out.key = e.key;
    out.raw_text = std::move(*raw);
    out.plan_text = std::move(*plan);
    out.columns = e.entry.columns;
    out.hits = e.hits;
    image.l0.push_back(std::move(out));
  }
  return image;
}

std::string EncodeCacheImage(const CacheImage& image,
                             const PersistOptions& options,
                             SaveStats* stats) {
  SaveStats local;
  SaveStats* s = stats != nullptr ? stats : &local;
  std::string out;
  EncodeFileHeader(image.header, &out);
  std::string payload;
  for (const PersistedPlan& plan : image.plans) {
    payload.clear();
    EncodePlanRecord(plan, &payload);
    if (payload.size() > options.max_record_bytes) {
      ++s->skipped;
      continue;
    }
    AppendRecord(payload, &out);
    ++s->plans;
  }
  for (const PersistedL0& entry : image.l0) {
    payload.clear();
    EncodeL0Record(entry, &payload);
    if (payload.size() > options.max_record_bytes) {
      ++s->skipped;
      continue;
    }
    AppendRecord(payload, &out);
    ++s->l0;
  }
  s->bytes = out.size();
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  EDS_RETURN_IF_ERROR(SaveFailPoint());
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::RuntimeError("persist: open(" + tmp +
                                ") failed: " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::RuntimeError("persist: write(" + tmp +
                                  ") failed: " + std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::RuntimeError("persist: fsync(" + tmp +
                                ") failed: " + std::strerror(saved));
  }
  if (::close(fd) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    return Status::RuntimeError("persist: close(" + tmp +
                                ") failed: " + std::strerror(saved));
  }
  Status renamed = RenameFailPoint();
  if (!renamed.ok()) {
    ::unlink(tmp.c_str());
    return renamed;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    return Status::RuntimeError("persist: rename(" + tmp + " -> " + path +
                                ") failed: " + std::strerror(saved));
  }
  // Durability of the rename itself: fsync the containing directory.
  // Best-effort — the data file is already durable, and a directory we
  // cannot open (exotic mounts) is not a save failure.
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status SavePersistFile(const std::string& path, const PlanCache& cache,
                       const L0Cache& l0, const FileHeader& header,
                       const PersistOptions& options, SaveStats* stats) {
  CacheImage image = BuildCacheImage(cache, l0, header, options, stats);
  std::string bytes = EncodeCacheImage(image, options, stats);
  return WriteFileAtomic(path, bytes);
}

Result<CacheImage> LoadPersistFile(const std::string& path,
                                   const PersistOptions& options,
                                   LoadStats* stats) {
  LoadStats local;
  LoadStats* s = stats != nullptr ? stats : &local;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("persist: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::RuntimeError("persist: read error on " + path);
  }
  std::string data = std::move(buf).str();

  CacheImage image;
  EDS_ASSIGN_OR_RETURN(image.header, DecodeFileHeader(data));
  size_t pos = FileHeader::kEncodedSize;
  for (;;) {
    RecordRead rec = ReadRecord(data, &pos, options.max_record_bytes);
    if (rec.status == RecordStatus::kEnd) break;
    if (rec.status == RecordStatus::kTorn) {
      // Everything before this frame is the surviving prefix; the tail is
      // a crash artifact (or vandalism) and is simply not there.
      s->torn_tail = true;
      break;
    }
    if (rec.status == RecordStatus::kBadCrc) {
      ++s->skipped;
      continue;
    }
    if (!LoadRecordFailPoint().ok()) {
      ++s->skipped;
      continue;
    }
    Decoder dec(rec.payload, options.max_text_bytes);
    Result<uint8_t> kind = dec.GetU8();
    if (!kind.ok()) {
      ++s->skipped;
      continue;
    }
    if (*kind == kPlanRecord) {
      PersistedPlan plan;
      if (!DecodePlanRecord(&dec, &plan).ok()) {
        ++s->skipped;
        continue;
      }
      image.plans.push_back(std::move(plan));
    } else if (*kind == kL0Record) {
      PersistedL0 entry;
      if (!DecodeL0Record(&dec, &entry).ok()) {
        ++s->skipped;
        continue;
      }
      image.l0.push_back(std::move(entry));
    } else {
      // A record kind this build does not know: written by a future
      // version within the same format, or rot that survived the CRC.
      ++s->skipped;
    }
  }
  return image;
}

size_t WarmServiceCaches(const CacheImage& image, exec::Session* session,
                         PlanCache* cache, L0Cache* l0,
                         uint64_t catalog_epoch, uint64_t rules_epoch,
                         const PersistOptions& options, LoadStats* stats) {
  LoadStats local;
  LoadStats* s = stats != nullptr ? stats : &local;
  if (image.header.catalog_epoch != catalog_epoch ||
      image.header.rules_epoch != rules_epoch) {
    // The file was written under a different catalog / rule library than
    // this session rebuilt; every plan in it was rewritten under
    // assumptions that no longer hold.
    s->stale += image.plans.size() + image.l0.size();
    return 0;
  }
  size_t installed = 0;

  for (const PersistedPlan& plan : image.plans) {
    Result<term::TermRef> tmpl = ParseBounded(plan.tmpl_text, options);
    Result<term::TermRef> nf = ParseBounded(plan.nf_text, options);
    if (!tmpl.ok() || !nf.ok()) {
      ++s->skipped;
      continue;
    }
    term::TermList params;
    bool params_ok = true;
    for (const std::string& pt : plan.param_texts) {
      Result<term::TermRef> p = ParseBounded(pt, options);
      if (!p.ok()) {
        params_ok = false;
        break;
      }
      params.push_back(std::move(p).value());
    }
    if (!params_ok) {
      ++s->skipped;
      continue;
    }
    if (options.verify_load && session != nullptr) {
      // Substitute the sample literals into both sides and require equal
      // results. Non-ground instantiations (a template persisted without
      // its literals) cannot be executed — admit unverified.
      Result<term::TermRef> raw = InstantiatePlan(*tmpl, params);
      Result<term::TermRef> opt = InstantiatePlan(*nf, params);
      if (!raw.ok() || !opt.ok()) {
        ++s->skipped;
        continue;
      }
      if (!(*raw)->ground() || !(*opt)->ground()) {
        ++s->unverified;
      } else {
        bool proven_clean = false;
        if (ProvenDivergent(session, *raw, *opt, options.verify_limits,
                            &proven_clean)) {
          ++s->rejected;
          continue;
        }
        if (!proven_clean) ++s->unverified;
      }
    }
    PlanCache::Key key;
    key.tmpl = std::move(tmpl).value();
    key.catalog_epoch = catalog_epoch;
    key.rules_epoch = rules_epoch;
    cache->Insert(key, std::move(nf).value(), plan.rewrite_ns,
                  std::move(params), plan.hits);
    ++s->ok;
    ++installed;
  }

  for (const PersistedL0& entry : image.l0) {
    if (entry.key.empty() || entry.key.size() > l0->max_key_bytes()) {
      ++s->skipped;
      continue;
    }
    Result<term::TermRef> raw = ParseBounded(entry.raw_text, options);
    Result<term::TermRef> plan = ParseBounded(entry.plan_text, options);
    if (!raw.ok() || !plan.ok()) {
      ++s->skipped;
      continue;
    }
    if (options.verify_load && session != nullptr) {
      if (!(*raw)->ground() || !(*plan)->ground()) {
        ++s->unverified;
      } else {
        bool proven_clean = false;
        if (ProvenDivergent(session, *raw, *plan, options.verify_limits,
                            &proven_clean)) {
          ++s->rejected;
          continue;
        }
        if (!proven_clean) ++s->unverified;
      }
    }
    L0Cache::Entry cached;
    cached.raw_plan = std::move(raw).value();
    cached.plan = std::move(plan).value();
    cached.columns = entry.columns;
    cached.catalog_epoch = catalog_epoch;
    cached.rules_epoch = rules_epoch;
    l0->Insert(entry.key, std::move(cached), entry.hits);
    ++s->ok;
    ++installed;
  }
  return installed;
}

}  // namespace eds::srv
