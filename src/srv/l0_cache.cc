#include "srv/l0_cache.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace eds::srv {

std::optional<L0Cache::Entry> L0Cache::Lookup(const std::string& normalized,
                                              uint64_t catalog_epoch,
                                              uint64_t rules_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (normalized.size() > max_key_bytes_) {
    ++stats_.oversize_rejects;
    ++stats_.misses;
    return std::nullopt;
  }
  auto it = index_.find(normalized);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  NodeList::iterator node = it->second;
  if (node->entry.catalog_epoch != catalog_epoch ||
      node->entry.rules_epoch != rules_epoch) {
    // DDL or a rule-library change happened since this entry was built;
    // drop it so the slot is free for the rebuilt plan.
    lru_.erase(node);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, node);  // bump to most-recent
  ++stats_.hits;
  ++node->hits;
  return node->entry;
}

void L0Cache::Insert(const std::string& normalized, Entry entry,
                     uint64_t seed_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.inserts;
  if (capacity_ == 0) return;
  if (normalized.size() > max_key_bytes_) {
    ++stats_.oversize_rejects;
    return;
  }
  auto it = index_.find(normalized);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    it->second->hits += seed_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{normalized, std::move(entry), seed_hits});
  index_.emplace(normalized, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<L0Cache::SnapshotEntry> L0Cache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(lru_.size());
  for (const Node& node : lru_) {
    out.push_back(SnapshotEntry{node.key, node.entry, node.hits});
  }
  return out;
}

void L0Cache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
}

L0Cache::Stats L0Cache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

std::string NormalizeQueryText(std::string_view esql, size_t max_bytes) {
  std::string out;
  out.reserve(std::min(esql.size(), max_bytes + 1));
  bool in_string = false;
  bool pending_space = false;  // a whitespace run awaits its single space
  const size_t n = esql.size();
  for (size_t i = 0; i < n; ++i) {
    // Stop once past the cap: the caller only needs to see that the
    // output is oversize, not the full normalization of a megaquery.
    if (out.size() > max_bytes) break;
    char c = esql[i];
    if (in_string) {
      // Verbatim through the closing quote; '' doubling toggles twice,
      // which copies both quotes and stays inside the literal.
      out += c;
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '-' && i + 1 < n && esql[i + 1] == '-') {
      // '--' line comment: consume to end of line, acts as whitespace.
      while (i < n && esql[i] != '\n') ++i;
      --i;  // the loop increment lands on the newline (or the end)
      pending_space = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space) {
      if (!out.empty()) out += ' ';  // no leading space
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
    } else {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  // A trailing pending_space is dropped: that trims the right edge.
  return out;
}

void ExportL0Stats(const L0Cache::Stats& stats,
                   obs::MetricsRegistry* registry) {
  registry->Counter("srv.l0.hits", stats.hits);
  registry->Counter("srv.l0.misses", stats.misses);
  registry->Counter("srv.l0.inserts", stats.inserts);
  registry->Counter("srv.l0.evictions", stats.evictions);
  registry->Counter("srv.l0.invalidations", stats.invalidations);
  registry->Counter("srv.l0.oversize_rejects", stats.oversize_rejects);
  registry->Counter("srv.l0.entries", stats.entries);
}

}  // namespace eds::srv
