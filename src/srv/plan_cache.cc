#include "srv/plan_cache.h"

#include <algorithm>
#include <utility>

#include "gov/failpoint.h"

namespace eds::srv {

namespace {

// 64-bit mix (splitmix64 finalizer) so epoch bits land in the shard-select
// high bits too.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PlanCache::PlanCache(const Config& config) {
  size_t shard_count = RoundUpPow2(std::max<size_t>(1, config.shards));
  shards_ = std::vector<Shard>(shard_count);
  nodes_per_shard_ =
      std::max<uint64_t>(1, config.max_nodes / shard_count);
}

uint64_t PlanCache::KeyHash(const Key& key) {
  uint64_t h = key.tmpl != nullptr ? key.tmpl->structural_hash() : 0;
  h = Mix(h ^ Mix(key.catalog_epoch) ^ (Mix(key.rules_epoch) << 1));
  return h;
}

bool PlanCache::KeyEquals(const Key& a, const Key& b) {
  if (a.catalog_epoch != b.catalog_epoch || a.rules_epoch != b.rules_epoch) {
    return false;
  }
  if (a.tmpl.get() == b.tmpl.get()) return true;
  // Hash-equal distinct nodes (value-equivalent constants interned apart,
  // or manufactured collisions in tests) fall back to the deep compare.
  return term::Equals(a.tmpl, b.tmpl);
}

std::optional<term::TermRef> PlanCache::Lookup(const Key& key) {
  const uint64_t hash = KeyHash(key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(hash);
  if (it != shard.index.end()) {
    for (EntryList::iterator eit : it->second) {
      if (KeyEquals(eit->key, key)) {
        ++shard.stats.hits;
        ++eit->hits;
        // Bump to most-recent.
        shard.entries.splice(shard.entries.begin(), shard.entries, eit);
        return eit->normal_form;
      }
    }
  }
  ++shard.stats.misses;
  return std::nullopt;
}

void PlanCache::EraseLocked(Shard& shard, uint64_t hash,
                            EntryList::iterator it) {
  auto idx = shard.index.find(hash);
  if (idx != shard.index.end()) {
    auto& vec = idx->second;
    vec.erase(std::remove(vec.begin(), vec.end(), it), vec.end());
    if (vec.empty()) shard.index.erase(idx);
  }
  shard.nodes -= it->charged_nodes;
  shard.entries.erase(it);
}

void PlanCache::Insert(const Key& key, term::TermRef normal_form,
                       uint64_t rewrite_ns, term::TermList sample_params,
                       uint64_t seed_hits) {
  if (key.tmpl == nullptr || normal_form == nullptr) return;
  const uint64_t hash = KeyHash(key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Chaos: a failed insert is a skipped insert — the entry simply is not
  // cached, so the next lookup misses and pays a normal rewrite. Inside
  // the lock so the stats bump is race-free; a lambda because
  // EDS_FAIL_POINT returns out of its enclosing function.
  auto injected = []() -> Status {
    EDS_FAIL_POINT("srv.cache.insert");
    return Status::OK();
  };
  if (!injected().ok()) {
    ++shard.stats.insert_failures;
    return;
  }
  // Refresh an existing entry in place (same key rewritten again, e.g.
  // after a racing double-miss).
  auto it = shard.index.find(hash);
  if (it != shard.index.end()) {
    for (EntryList::iterator eit : it->second) {
      if (KeyEquals(eit->key, key)) {
        shard.nodes -= eit->charged_nodes;
        eit->normal_form = std::move(normal_form);
        eit->charged_nodes =
            eit->key.tmpl->node_count() + eit->normal_form->node_count();
        eit->rewrite_ns = rewrite_ns;
        eit->sample_params = std::move(sample_params);
        eit->hits += seed_hits;
        shard.nodes += eit->charged_nodes;
        shard.entries.splice(shard.entries.begin(), shard.entries, eit);
        return;
      }
    }
  }
  Entry entry;
  entry.key = key;
  entry.charged_nodes = key.tmpl->node_count() + normal_form->node_count();
  entry.normal_form = std::move(normal_form);
  entry.hits = seed_hits;
  entry.rewrite_ns = rewrite_ns;
  entry.sample_params = std::move(sample_params);
  shard.nodes += entry.charged_nodes;
  shard.entries.push_front(std::move(entry));
  shard.index[hash].push_back(shard.entries.begin());
  ++shard.stats.inserts;
  ++shard.stats.entries;
  // Evict least-recently-used entries until back under the shard budget;
  // the entry just inserted survives even when it alone exceeds the budget
  // (a cache that cannot hold the working plan is useless, not wrong).
  while (shard.nodes > nodes_per_shard_ && shard.entries.size() > 1) {
    EntryList::iterator last = std::prev(shard.entries.end());
    EraseLocked(shard, KeyHash(last->key), last);
    ++shard.stats.evictions;
    --shard.stats.entries;
  }
}

std::vector<PlanCache::SnapshotEntry> PlanCache::Snapshot() const {
  std::vector<SnapshotEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& e : shard.entries) {
      SnapshotEntry s;
      s.tmpl = e.key.tmpl;
      s.normal_form = e.normal_form;
      s.catalog_epoch = e.key.catalog_epoch;
      s.rules_epoch = e.key.rules_epoch;
      s.hits = e.hits;
      s.rewrite_ns = e.rewrite_ns;
      s.sample_params = e.sample_params;
      out.push_back(std::move(s));
    }
  }
  return out;
}

void PlanCache::InvalidateAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.invalidations += shard.entries.size();
    shard.stats.entries = 0;
    shard.nodes = 0;
    shard.entries.clear();
    shard.index.clear();
  }
}

void PlanCache::DropStale(uint64_t catalog_epoch, uint64_t rules_epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->key.catalog_epoch == catalog_epoch &&
          it->key.rules_epoch == rules_epoch) {
        ++it;
        continue;
      }
      auto doomed = it++;
      EraseLocked(shard, KeyHash(doomed->key), doomed);
      ++shard.stats.invalidations;
      --shard.stats.entries;
    }
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.inserts += shard.stats.inserts;
    total.evictions += shard.stats.evictions;
    total.insert_failures += shard.stats.insert_failures;
    total.invalidations += shard.stats.invalidations;
    total.entries += shard.stats.entries;
    total.nodes += shard.nodes;
  }
  return total;
}

}  // namespace eds::srv
