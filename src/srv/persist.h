#ifndef EDS_SRV_PERSIST_H_
#define EDS_SRV_PERSIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/session.h"
#include "srv/codec.h"
#include "srv/l0_cache.h"
#include "srv/plan_cache.h"

namespace eds::srv {

// Crash-safe persistence of the serving caches: the hot entries of the
// structural plan cache (srv/plan_cache.h) and the L0 exact-text cache
// (srv/l0_cache.h) are written to a checksummed record log so a restarted
// service starts warm — repeated queries skip the rewrite phase on their
// first arrival instead of their second.
//
// Terms are serialized as their textual form (term::Term::ToString) and
// read back through the ordinary term parser, so the on-disk format is
// human-greppable and the parser — hardened against adversarial input
// elsewhere — is the only deserializer. At save time every term must
// survive the print->parse round trip back to the *identical* hash-consed
// pointer; entries that do not (NULL constants, non-finite reals,
// collection constants) are skipped and counted, never written wrong.
//
// File layout (all integers little-endian, see srv/codec.h):
//   FileHeader: magic "EDSC", version, flags, catalog epoch, rules epoch,
//     CRC32 of the preceding bytes.
//   Records: [u32 len][u32 payload CRC32][payload]*, payload kinds:
//     kPlanRecord: u8 kind, u64 hits, u64 rewrite_ns, str template,
//       str normal form, u32 n, n param strings.
//     kL0Record:  u8 kind, u64 hits, str normalized key, str raw plan,
//       str optimized plan, u32 n, n column names.
//
// Crash safety: SavePersistFile serializes to memory, writes `path`.tmp,
// fsyncs, and renames over `path` (then best-effort fsyncs the directory)
// — a crash at any point leaves either the complete old file or the
// complete new one. The loader additionally survives files that were NOT
// written this way (a torn tail from a copied or truncated file loads as
// its surviving prefix; a record whose CRC fails is skipped and the read
// continues at the next frame).
//
// Staleness: the header records the catalog/rules epochs the plans were
// rewritten under. A loader whose session reports different epochs counts
// every record as stale and loads nothing — epochs are in-memory counters,
// so warm restart requires the restarted process to replay the same DDL /
// constraint script (the deployment pattern this targets: a fleet booting
// a fixed schema).

// Caps applied when building and loading persisted images. The defaults
// are generous for real workloads and tight enough that a hostile file
// cannot balloon memory.
struct PersistOptions {
  // Keep only the top-k hottest entries of each cache (by per-entry hit
  // count); 0 keeps everything admitted by the size caps.
  size_t top_k = 0;
  // Terms whose printed form exceeds this are not persisted (save) and
  // records declaring longer strings are skipped (load).
  size_t max_text_bytes = 1 << 20;
  // Per-record payload ceiling; longer frames are torn (load stops).
  size_t max_record_bytes = 4u << 20;
  // Parsed terms above this node count are rejected at load (a nested-term
  // bomb parses cheaply but must not be admitted into the cache).
  size_t max_term_nodes = 1 << 17;
  // Re-verify each loaded plan by differential execution before admitting
  // it (LoadPersistFile ignores this; WarmServiceCaches honors it): the
  // persisted sample literals are substituted into both the template and
  // the normal form, both ground plans run under `verify_limits`, and the
  // sorted row bags must match. Only a proven divergence rejects; errors
  // and budget trips on either side admit the entry unverified (counted in
  // LoadStats::unverified).
  bool verify_load = false;
  gov::GovernorLimits verify_limits;
};

// One persisted structural-cache entry, still in textual form.
struct PersistedPlan {
  std::string tmpl_text;
  std::string nf_text;
  std::vector<std::string> param_texts;  // sample literals, index i == $CQi
  uint64_t hits = 0;
  uint64_t rewrite_ns = 0;
};

// One persisted L0 exact-text entry, still in textual form.
struct PersistedL0 {
  std::string key;  // NormalizeQueryText output
  std::string raw_text;
  std::string plan_text;
  std::vector<std::string> columns;
  uint64_t hits = 0;
};

// A decoded (or to-be-encoded) cache file.
struct CacheImage {
  FileHeader header;
  std::vector<PersistedPlan> plans;
  std::vector<PersistedL0> l0;
};

// Tallies from building/saving an image, exported as persist.save.*.
struct SaveStats {
  uint64_t plans = 0;     // plan records written
  uint64_t l0 = 0;        // L0 records written
  uint64_t skipped = 0;   // entries dropped: round-trip failure / size cap
  uint64_t stale = 0;     // entries dropped: epoch mismatch at snapshot
  uint64_t bytes = 0;     // encoded file size
};

// Tallies from loading a file, exported as persist.load.*.
struct LoadStats {
  uint64_t ok = 0;          // records admitted into the caches
  uint64_t skipped = 0;     // malformed / unparseable / oversized records
  uint64_t stale = 0;       // records dropped for epoch mismatch
  uint64_t rejected = 0;    // differential verification proved divergence
  uint64_t unverified = 0;  // verify requested but not provable (admitted)
  bool torn_tail = false;   // the file ended mid-record (prefix loaded)
};

// Snapshots both caches into a textual image under `header`'s epochs.
// Entries failing the print->parse round trip or the size caps are skipped
// (counted); entries built under other epochs are dropped as stale.
CacheImage BuildCacheImage(const PlanCache& cache, const L0Cache& l0,
                           const FileHeader& header,
                           const PersistOptions& options,
                           SaveStats* stats = nullptr);

// Encodes the image to the on-disk byte format.
std::string EncodeCacheImage(const CacheImage& image,
                             const PersistOptions& options,
                             SaveStats* stats = nullptr);

// Atomically replaces `path` with `bytes` (tmp file + fsync + rename).
// Fail points: "persist.save" (before the tmp write), "persist.rename"
// (after fsync, before the rename) — both leave the previous file intact.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

// BuildCacheImage + EncodeCacheImage + WriteFileAtomic.
Status SavePersistFile(const std::string& path, const PlanCache& cache,
                       const L0Cache& l0, const FileHeader& header,
                       const PersistOptions& options,
                       SaveStats* stats = nullptr);

// Reads and decodes `path` with maximal suspicion: header validated by
// magic + CRC + version; each record CRC-checked, bounds-checked, and
// length-capped before any allocation; malformed records are skipped and
// counted; a torn tail ends the read with everything before it intact.
// Fails (non-OK) only when the file is unreadable or its header is
// invalid — a file with a good header and a rotten body loads as an image
// with fewer records. The per-record fail point "persist.load.record"
// turns records into counted skips. Record payloads here are *text*; terms
// are not parsed yet (that happens in WarmServiceCaches, against a live
// session, or in eds_cachectl --verify).
Result<CacheImage> LoadPersistFile(const std::string& path,
                                   const PersistOptions& options,
                                   LoadStats* stats = nullptr);

// Parses a loaded image's terms and installs the entries that survive into
// the caches, seeding each with its persisted hit count. Records whose
// epochs (image header) differ from `catalog_epoch`/`rules_epoch` are
// counted stale and nothing is installed from them. With
// options.verify_load set, each plan additionally passes ground
// differential execution against `session` before admission (see
// PersistOptions::verify_load). Returns the number of entries installed.
size_t WarmServiceCaches(const CacheImage& image, exec::Session* session,
                         PlanCache* cache, L0Cache* l0,
                         uint64_t catalog_epoch, uint64_t rules_epoch,
                         const PersistOptions& options,
                         LoadStats* stats = nullptr);

}  // namespace eds::srv

#endif  // EDS_SRV_PERSIST_H_
