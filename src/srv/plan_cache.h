#ifndef EDS_SRV_PLAN_CACHE_H_
#define EDS_SRV_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "term/term.h"

namespace eds::srv {

// Sharded LRU cache of rewritten plans, keyed on the query's canonical
// template (srv/fingerprint.h) plus the catalog and rule-library epochs it
// was rewritten under. A hit skips the entire rewrite phase: the cached
// normal form is instantiated with the query's literals and goes straight
// to schema inference/execution.
//
// Keying and invalidation:
//   * The template TermRef in the key is hash-consed, and the entry keeps
//     it alive, so any later structurally identical template IS the same
//     pointer — equality is a pointer compare with a term::Equals fallback
//     for the testing-clone/hash-collision fringe.
//   * Epochs ride in the key (catalog::Catalog::epoch(),
//     exec::Session::rules_epoch()). DDL or a rule-library change bumps an
//     epoch, so every stale entry simply stops matching and ages out
//     through the LRU — invalidation is lazy and O(1). InvalidateAll()
//     drops everything eagerly (the shell's \cache clear).
//
// Concurrency: the table is sharded by key hash; each shard holds its own
// mutex, hash map, and LRU list, so worker threads serving different
// templates proceed without contention. Stats are per-shard and summed on
// read.
//
// Memory: each entry is charged its template + normal-form node counts
// against a node-count ceiling (split evenly across shards); inserting past
// the ceiling evicts least-recently-used entries of that shard. This is
// the same currency as the governor's interner-node budget, so operators
// reason about one unit ("term nodes") for both.
class PlanCache {
 public:
  struct Config {
    size_t shards = 8;          // rounded up to a power of two, >= 1
    uint64_t max_nodes = 1 << 20;  // node ceiling across all shards
  };

  struct Key {
    term::TermRef tmpl;
    uint64_t catalog_epoch = 0;
    uint64_t rules_epoch = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;       // LRU evictions under the node ceiling
    uint64_t insert_failures = 0; // chaos-injected insert skips
    uint64_t invalidations = 0;   // dropped by InvalidateAll/DropStale
    uint64_t entries = 0;         // live entries
    uint64_t nodes = 0;           // charged node count of live entries
  };

  // Nested-class NSDMIs are not parseable in a default argument here, so
  // the default config gets its own delegating constructor.
  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(const Config& config);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // One live entry plus its bookkeeping as Snapshot() reports it. `hits`
  // and `rewrite_ns` (what the original rewrite cost) are the
  // pg_query_rewrite-style per-entry counters the persistence layer ranks
  // hotness by; `sample_params` are the literals of the query that
  // populated the entry, kept so a loaded entry can be re-verified by
  // ground differential execution.
  struct SnapshotEntry {
    term::TermRef tmpl;
    term::TermRef normal_form;
    uint64_t catalog_epoch = 0;
    uint64_t rules_epoch = 0;
    uint64_t hits = 0;
    uint64_t rewrite_ns = 0;
    term::TermList sample_params;
  };

  // Returns the cached normal form and bumps the entry to most-recent, or
  // nullopt (counted as a miss).
  std::optional<term::TermRef> Lookup(const Key& key);

  // Inserts (or refreshes) the normal form for `key`, evicting LRU entries
  // until the shard is back under its node budget. The chaos site
  // "srv.cache.insert" (EDS_FAIL_POINT) turns the insert into a counted
  // no-op — a degraded miss on the next lookup, never a wrong plan.
  // `rewrite_ns` records what the rewrite that produced `normal_form`
  // cost, `sample_params` the literals it ran under, and `seed_hits`
  // pre-charges the hit counter (warm restore keeps persisted hotness).
  void Insert(const Key& key, term::TermRef normal_form,
              uint64_t rewrite_ns = 0, term::TermList sample_params = {},
              uint64_t seed_hits = 0);

  // Copies every live entry with its stats (shard by shard, each under its
  // own lock; most-recently-used first within a shard). The persistence
  // snapshot thread calls this off the serve path.
  std::vector<SnapshotEntry> Snapshot() const;

  // Eagerly drops every entry (epoch bumps make stale entries unreachable
  // even without this).
  void InvalidateAll();

  // Drops every entry whose key epochs differ from the given (current)
  // pair, counting each into `invalidations`. Stale entries are already
  // unreachable — their epochs stopped matching — so this only reclaims
  // their node charge promptly instead of waiting for LRU aging. The
  // service calls it once per snapshot publication, which is what makes
  // "each DDL invalidates a stale entry exactly once" an observable
  // contract rather than an accident of eviction order.
  void DropStale(uint64_t catalog_epoch, uint64_t rules_epoch);

  Stats GetStats() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    term::TermRef normal_form;
    uint64_t charged_nodes = 0;
    uint64_t hits = 0;
    uint64_t rewrite_ns = 0;
    term::TermList sample_params;
  };
  // LRU list, most-recent first; the map indexes into it.
  using EntryList = std::list<Entry>;

  struct Shard {
    mutable std::mutex mu;
    EntryList entries;
    std::unordered_map<uint64_t, std::vector<EntryList::iterator>> index;
    uint64_t nodes = 0;
    Stats stats;
  };

  static uint64_t KeyHash(const Key& key);
  static bool KeyEquals(const Key& a, const Key& b);
  // High bits pick the shard so the index map (which consumes the full
  // hash) stays decorrelated from the shard choice.
  Shard& ShardFor(uint64_t hash) {
    return shards_[(hash >> 48) & (shards_.size() - 1)];
  }
  // Unlinks `it` from its shard (list + index + node accounting).
  static void EraseLocked(Shard& shard, uint64_t hash,
                          EntryList::iterator it);

  std::vector<Shard> shards_;
  uint64_t nodes_per_shard_;  // config.max_nodes / shards, >= 1
};

}  // namespace eds::srv

#endif  // EDS_SRV_PLAN_CACHE_H_
