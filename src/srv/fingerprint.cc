#include "srv/fingerprint.h"

#include <string>
#include <utility>

#include "lera/lera.h"
#include "term/substitution.h"

namespace eds::srv {

const char kParamPrefix[] = "$CQ";

namespace {

// True for constants whose value is a query parameter candidate. Booleans
// and nulls are plan shape; collections/tuples/objects never appear as
// SELECT literals (and would be structural if they did).
bool IsParameterizableConstant(const term::TermRef& t) {
  if (!t->is_constant()) return false;
  switch (t->constant().kind()) {
    case value::ValueKind::kInt:
    case value::ValueKind::kReal:
    case value::ValueKind::kString:
      return true;
    default:
      return false;
  }
}

// Recursively parameterizes `t`, appending extracted literals to `params`.
// Reuses the original node whenever no descendant changed, so templates
// share structure with the raw plan.
term::TermRef Parameterize(const term::TermRef& t, term::TermList* params) {
  if (IsParameterizableConstant(t)) {
    params->push_back(t);
    return term::Term::Var(kParamPrefix + std::to_string(params->size() - 1));
  }
  if (!t->is_apply() || t->arity() == 0) return t;
  const std::string& f = t->functor();
  // Structural functors: constants among these argument positions name
  // schema objects (relations, attribute slots, tuple fields), never query
  // parameters.
  if (f == term::kRelation || f == term::kAttr) return t;
  size_t structural_from = t->arity();  // args >= this are structural
  if (f == lera::kField || f == lera::kUnnest || f == lera::kNest) {
    // FIELD(e, 'name'), UNNEST(input, idx), NEST(input, LIST(idx...), 'nm')
    structural_from = 1;
  }
  term::TermList args;
  bool changed = false;
  args.reserve(t->arity());
  for (size_t i = 0; i < t->arity(); ++i) {
    if (i >= structural_from) {
      args.push_back(t->arg(i));
      continue;
    }
    term::TermRef a = Parameterize(t->arg(i), params);
    changed = changed || a.get() != t->arg(i).get();
    args.push_back(std::move(a));
  }
  if (!changed) return t;
  return term::WithArgs(t, std::move(args));
}

// True when the plan contains a FIX anywhere (recursive view expansion).
bool ContainsFix(const term::TermRef& t) {
  if (t->IsApply(lera::kFix)) return true;
  if (!t->is_apply()) return false;
  for (const term::TermRef& a : t->args()) {
    if (ContainsFix(a)) return true;
  }
  return false;
}

}  // namespace

Fingerprint FingerprintPlan(const term::TermRef& raw) {
  Fingerprint fp;
  if (ContainsFix(raw)) {
    fp.tmpl = raw;
    fp.parameterized = false;
    return fp;
  }
  fp.tmpl = Parameterize(raw, &fp.params);
  fp.parameterized = !fp.params.empty();
  return fp;
}

Result<term::TermRef> InstantiatePlan(const term::TermRef& nf_tmpl,
                                      const term::TermList& params) {
  if (params.empty()) return nf_tmpl;
  term::Bindings env;
  for (size_t i = 0; i < params.size(); ++i) {
    env.SetVar(kParamPrefix + std::to_string(i), params[i]);
  }
  return term::ApplySubstitution(nf_tmpl, env);
}

}  // namespace eds::srv
