#ifndef EDS_SRV_SERVICE_H_
#define EDS_SRV_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/session.h"
#include "gov/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "srv/l0_cache.h"
#include "srv/persist.h"
#include "srv/plan_cache.h"
#include "srv/snapshot.h"
#include "srv/telemetry.h"

namespace eds::srv {

// The serving layer: a multi-threaded, in-process query service over one
// Session. Clients Submit() ESQL SELECTs and get a future; a bounded
// admission queue sheds load when full; a worker pool drains the queue,
// each admitted query running under a QueryGuard whose budgets are derived
// from the service's base limits scaled by the load observed at admission;
// and a sharded rewritten-plan cache (srv/plan_cache.h) in front of the
// workers lets structurally repeated queries skip the rewrite phase
// entirely. docs/server.md covers the architecture and policies.
//
// Concurrency contract: workers never read the live session catalog or
// optimizer — every admitted query pins the immutable ServingSnapshot
// (srv/snapshot.h) current at admission and serves entirely from it, so
// schema/rule DDL issued through ApplyDdl() while queries are in flight
// never blocks them: they drain on the old snapshot while new arrivals see
// the newly published one, and both plan-cache tiers key on the snapshot's
// epochs so invalidation follows publication. Data writes (INSERT) do
// stop the world briefly — ApplyDdl takes the serve gate exclusively for
// them, because table contents are shared, not snapshotted. Direct session
// mutation (ExecuteScript/AddConstraint on the wrapped session) remains
// legal only while no query is in flight; the next Submit() notices the
// epoch change and republishes. The service never touches the session's
// trace sink; per-worker sinks keep tracing safe under the pool
// (WriteMergedTrace).

// Serving metadata carried alongside the ordinary QueryResult.
struct ServedQuery {
  exec::QueryResult result;
  bool l0_hit = false;        // exact-text hit: parse through schema skipped
  bool cache_hit = false;     // rewrite phase skipped via the plan cache
  bool cache_stored = false;  // this query populated the cache
  bool cache_bypass = false;  // rewriter off / degraded rewrite: not cached
  uint64_t queue_ns = 0;      // admission -> dequeue wait
  uint64_t serve_ns = 0;      // dequeue -> completion
  gov::GovernorLimits granted;  // derived budget the query ran under
  size_t worker_id = 0;       // 0-based worker that served it
  // Structural hash of the fingerprint template (0 on the L0/uncached
  // paths, where no fingerprint is computed): the workload key the flight
  // recorder groups repeated query shapes by.
  uint64_t template_hash = 0;
  // Epochs of the serving snapshot this query was pinned to at admission;
  // the wire protocol reports them so clients (and the DDL-under-load
  // tests) can tell which schema/rule generation served them.
  uint64_t catalog_epoch = 0;
  uint64_t rules_epoch = 0;
  std::string tenant;  // tenant id carried on Submit ("" = default)
};

// Distinct tenant ids ServiceStats::tenant_admitted tracks individually
// before newcomers fold into the shared "other" bucket. Tenants with a
// configured weight (and the "" default) always get their own entry; the
// bound keeps client-supplied ids from growing the map — and every
// metrics export — without limit.
inline constexpr size_t kMaxTrackedTenants = 64;

// Cumulative service tallies, exported as srv.* metrics.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // load-shed at admission (queue full)
  uint64_t completed = 0;  // served with an OK result
  uint64_t failed = 0;     // served with an error (incl. governor trips)
  uint64_t max_queue_depth = 0;
  uint64_t ddl_applied = 0;  // successful ApplyDdl() calls
  // Admissions per tenant id ("" shows as "default" in metrics). Bounded:
  // past kMaxTrackedTenants distinct ids, unconfigured newcomers are
  // counted under "other".
  std::map<std::string, uint64_t> tenant_admitted;
};

struct ServiceOptions {
  // Worker threads; 0 means no threads are spawned and the owner pumps
  // queries with ServeQueuedForTesting() (deterministic admission tests).
  size_t workers = 4;
  // Bounded admission queue; a Submit() finding it full is rejected
  // immediately with ResourceExhausted ("load shed").
  size_t queue_capacity = 64;
  // Per-query budget template. Admission derives each query's actual
  // GovernorLimits from this via DeriveLimits(); zero fields stay
  // unlimited. The cancel field is ignored (cancellation is per-Submit).
  gov::GovernorLimits base_limits;
  // When false, admitted queries always get the base limits verbatim.
  bool load_adaptive = true;
  // Per-tenant admission weights (satellite of the snapshot-server PR): a
  // tenant with weight w sees the queue as if it were w times larger, so
  // under pressure a weight-2 tenant keeps roughly twice the budget share
  // of a weight-1 tenant before both bottom out at 25%. Unknown tenants
  // (and the "" default tenant) get default_tenant_weight. Weight 1.0
  // reproduces the unweighted policy bit-for-bit.
  std::map<std::string, double> tenant_weights;
  double default_tenant_weight = 1.0;
  // Rewritten-plan cache; use_cache=false serves every query through a
  // full rewrite (A/B baseline).
  bool use_cache = true;
  PlanCache::Config cache;
  // Level-0 exact-text cache in front of the parser (srv/l0_cache.h);
  // use_l0=false serves every query through the full front half.
  bool use_l0 = true;
  size_t l0_capacity = 256;
  // When true each worker records phase spans into its own TraceSink;
  // WriteMergedTrace() merges them by timestamp into one Chrome trace.
  bool collect_traces = false;
  // Applied to every served query's rewrite phase (trace/profile knobs are
  // overridden per worker; the guard field is owned by the service).
  rewrite::RewriteOptions rewrite_options;
  exec::ExecOptions exec_options;
  bool rewrite = true;  // run the rewriter at all (false: raw plans)

  // --- Serving telemetry (srv/telemetry.h) ---
  // Master switch. Off, the serve path pays exactly one null-pointer
  // branch per query (the PR-3 discipline) and RecentQueries()/
  // ExportMetrics() latency sections are empty.
  bool telemetry = true;
  // Flight recorder depth: last N served queries kept as QueryRecords.
  size_t flight_recorder_capacity = 128;
  // Slow-query thresholds; a query is "slow" when either fires. The
  // absolute one is in nanoseconds of serve time; the relative one marks
  // queries slower than `multiple` times the trailing p99 of serve time
  // (only once >= 32 samples exist, so a cold start can't flag everything).
  // 0 disables each. Slow queries get their span trace captured
  // retroactively and attached to their QueryRecord.
  uint64_t slow_query_ns = 0;
  double slow_query_p99_multiple = 0.0;
  // When set, every slow query is also appended to this JSONL file (one
  // QueryRecordToJson line per query, trace included).
  std::string slow_query_log_path;
  // When set, a background thread writes a Prometheus text-format metrics
  // snapshot (ExportMetrics + MetricsRegistry::ToPrometheus) to this path
  // every interval, and once more at Stop().
  std::string telemetry_export_path;
  uint64_t telemetry_export_interval_ms = 1000;
  // Deterministic latency injection for tests and demos: a query whose
  // text contains the marker sleeps test_delay_ns inside a traced
  // "srv.injected_delay" span before serving begins. The serving analog of
  // the gov fail points (which can only inject errors, not latency).
  std::string test_delay_marker;
  uint64_t test_delay_ns = 0;

  // --- Plan-cache persistence (srv/persist.h) ---
  // When set, Start() warms both caches from this file (a missing file is
  // a cold start, not an error) and Stop() snapshots the hot entries back
  // to it; see docs/persistence.md. Empty disables persistence.
  std::string persist_path;
  // Background snapshot cadence between Start and Stop; 0 means only the
  // final write at Stop(). The snapshot thread mirrors the telemetry
  // exporter: its own mutex/cv, never on the serve path.
  uint64_t persist_interval_ms = 0;
  // Hottest entries (by per-entry hit count) kept per cache at each
  // snapshot; 0 persists everything the size caps admit.
  size_t persist_top_k = 256;
  // Paranoia caps and optional load-time differential re-verification
  // (PersistOptions::verify_load); top_k here is overridden by
  // persist_top_k.
  PersistOptions persist;
};

// Admission policy: scales the base deadline and term-node budgets by the
// queue depth observed at admission — full budget when idle, shrinking
// linearly to 25% when the queue is full — so background pressure tightens
// every query's leash instead of letting tail queries starve. The row
// ceiling is NOT scaled (it bounds result size, a correctness-adjacent
// limit, not a load knob). `tenant_weight` divides the observed load: a
// weight-w tenant experiences depth/w, so heavier tenants keep more budget
// under the same pressure (weight 1.0 = the unweighted policy; weights
// <= 0 are treated as 1.0). Exposed for tests and docs.
gov::GovernorLimits DeriveLimits(const gov::GovernorLimits& base,
                                 size_t queue_depth, size_t queue_capacity,
                                 bool load_adaptive,
                                 double tenant_weight = 1.0);

// Per-submit parameters beyond the query text.
struct SubmitOptions {
  // Cooperative cancellation; when set it must outlive the query's
  // completion. Cancels at the governor's chokepoints.
  const gov::CancelToken* cancel = nullptr;
  // Tenant id for weighted admission ("" = default tenant). Carried on the
  // wire by HELLO and surfaced in ServedQuery::tenant.
  std::string tenant;
};

class QueryService {
 public:
  // `session` must outlive the service. The service does not own it.
  QueryService(exec::Session* session, const ServiceOptions& options);
  ~QueryService();  // Stop()s if still running

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Prebuilds the session's optimizer, publishes the initial serving
  // snapshot, and spawns the worker pool. Must be called before Submit().
  Status Start();

  // Stops admission, drains queued work to promises with RuntimeError,
  // finishes in-flight queries, and joins the workers. Idempotent.
  void Stop();

  // Submits one SELECT. Returns a future resolving to the served result or
  // an error (parse errors, execution errors, governor trips, load-shed
  // rejections, shutdown). `cancel` may be null; when set it must outlive
  // the returned future's completion and cancels the query cooperatively
  // at the governor's chokepoints.
  std::future<Result<ServedQuery>> Submit(
      std::string esql, const gov::CancelToken* cancel = nullptr);
  std::future<Result<ServedQuery>> Submit(std::string esql,
                                          const SubmitOptions& opts);

  // Callback flavor of Submit for callers that must not park a thread per
  // query (the network server's response writers). `done` is invoked
  // exactly once — from a worker thread normally, or inline from this call
  // on rejection (shed/not-started) — and must not re-enter the service.
  void SubmitWithCallback(std::string esql, const SubmitOptions& opts,
                          std::function<void(Result<ServedQuery>)> done);

  // Applies a DDL/INSERT script against the wrapped session and publishes
  // a fresh serving snapshot, all without blocking in-flight queries
  // (INSERT excepted: data writes take the serve gate exclusively, since
  // table contents are shared rather than snapshotted). Serialized against
  // concurrent ApplyDdl calls; SELECTs in the script are rejected. Safe to
  // call while N clients are submitting — this is the "DDL under load"
  // entry point the wire protocol's EXEC message lands on.
  Status ApplyDdl(const std::string& script);

  // The snapshot new arrivals are currently pinned to (null before
  // Start()). Exposed for tests and the shell.
  SnapshotRef current_snapshot() const { return snapshots_.Current(); }

  // Snapshot publications since construction (>= 1 once Start() ran).
  uint64_t snapshot_publishes() const { return snapshots_.publish_count(); }

  // Serves one queued query on the calling thread (workers == 0 test
  // pump). Returns false when the queue is empty.
  bool ServeQueuedForTesting();

  ServiceStats GetStats() const;
  PlanCache& cache() { return cache_; }
  const PlanCache& cache() const { return cache_; }
  L0Cache& l0_cache() { return l0_; }
  const L0Cache& l0_cache() const { return l0_; }
  const ServiceOptions& options() const { return options_; }

  // Per-worker sinks (non-null only with collect_traces), for merging with
  // a session-level sink; index == worker id.
  std::vector<const obs::TraceSink*> worker_sinks() const;

  // Merges every worker sink into one Chrome trace (tid = worker id + 2;
  // tid 1 is conventionally the submitting thread).
  void WriteMergedTrace(std::ostream& os) const;

  // Flight recorder queries (empty when telemetry is off). Recent() is
  // newest first; Slowest() ranks the retained window by serve time.
  std::vector<QueryRecord> RecentQueries(size_t limit = 0) const;
  std::vector<QueryRecord> SlowestQueries(size_t limit) const;
  bool telemetry_enabled() const { return telemetry_ != nullptr; }
  // Lines appended to the slow-query log so far (0 without a log path).
  uint64_t slow_queries_logged() const;

  // One-stop metrics export: srv.* service tallies, srv.queue_depth (the
  // current queue depth, a gauge), cache.* plan-cache stats, srv.l0.*
  // exact-text stats, gov.* trip counters, and — with telemetry on — the
  // srv.latency.* histograms (quantile gauges + Prometheus distributions).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  // Renders ExportMetrics() as Prometheus text exposition into `path`
  // (truncating). The telemetry_export_path background tick calls this.
  Status WriteTelemetrySnapshot(const std::string& path) const;

  // Snapshots both caches to options.persist_path right now (crash-atomic;
  // see srv/persist.h). The periodic persist tick and Stop() call this;
  // exposed so operators (eds_shell \persist) can force a write. Error
  // when persistence is not configured or the write fails.
  Status SavePersistNow();

  // Cumulative persistence tallies (what ExportMetrics reports as
  // persist.*): load stats from the Start() warm-up, save stats summed
  // over every snapshot written so far.
  LoadStats persist_load_stats() const;
  SaveStats persist_save_stats() const;

 private:
  struct Item {
    std::string esql;
    const gov::CancelToken* cancel = nullptr;
    // Completion callback (a promise-filling lambda for the future flavor).
    std::function<void(Result<ServedQuery>)> done;
    uint64_t enqueue_ns = 0;
    gov::GovernorLimits granted;
    SnapshotRef snapshot;  // pinned at admission; serves entirely from it
    std::string tenant;
  };

  // Everything the recorder/histograms/slow-log need, allocated only when
  // options.telemetry is set; a null pointer is the entire off cost.
  struct TelemetryState;

  void WorkerLoop(size_t worker_id);
  void ServeItem(Item item, size_t worker_id);
  // Builds the QueryRecord for one served (or failed) query, records the
  // latency histograms, applies the slow-query policy (trace attach + log
  // append), and adds the record to the flight recorder.
  void RecordTelemetry(const std::string& esql,
                       const Result<ServedQuery>& served,
                       const gov::GovernorLimits& granted, uint64_t queue_ns,
                       uint64_t serve_ns, size_t worker_id,
                       const obs::TraceSink* scratch);
  void ExportLoop();
  void PersistLoop();
  // Warms the caches from options.persist_path at Start(); a missing or
  // header-corrupt file is a counted cold start, never a Start() failure.
  void WarmFromDisk();
  // The cached pipeline: translate -> fingerprint -> cache lookup or
  // template rewrite + insert -> schema -> execute. Reads schema and rule
  // state only from `snap`.
  Result<ServedQuery> ServeNow(const std::string& esql,
                               const ServingSnapshot& snap,
                               const gov::GovernorLimits& granted,
                               const gov::CancelToken* cancel,
                               obs::TraceSink* sink, size_t worker_id);
  // Rebuilds + publishes the snapshot if the session's epochs moved (the
  // direct-session-DDL-while-idle compatibility path). Cheap no-op when
  // clean: two relaxed loads + one shared_ptr copy.
  Status MaybeRefreshSnapshot();
  // As above but assumes ddl_mu_ is held; always rebuilds when epochs
  // differ from the current snapshot.
  Status RefreshSnapshotLocked();

  exec::Session* session_;
  ServiceOptions options_;
  PlanCache cache_;
  L0Cache l0_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool started_ = false;
  bool stopping_ = false;
  ServiceStats stats_;

  // Snapshot machinery. ddl_mu_ serializes snapshot builds and session
  // mutation (ApplyDdl vs the MaybeRefreshSnapshot compatibility path);
  // serve_gate_ is held shared by every serving worker and exclusively by
  // ApplyDdl's INSERT application only — schema/rule DDL never takes it
  // exclusively, which is precisely what keeps DDL non-blocking.
  SnapshotPublisher snapshots_;
  std::mutex ddl_mu_;
  std::shared_mutex serve_gate_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<obs::TraceSink>> sinks_;  // per worker

  std::unique_ptr<TelemetryState> telemetry_;  // null: telemetry off
  // The export tick gets its own mutex/cv: sharing cv_ would let the
  // exporter consume a notify_one meant for a worker and stall a queued
  // query.
  std::thread export_thread_;
  mutable std::mutex export_mu_;
  std::condition_variable export_cv_;
  bool export_stop_ = false;

  // Persistence snapshot tick, same shape as the export tick (own cv so a
  // notify meant for a worker is never consumed here). persist_io_mu_
  // serializes actual file writes (periodic tick vs an explicit
  // SavePersistNow vs the final Stop() write); persist_stats_mu_ guards
  // the cumulative tallies.
  std::thread persist_thread_;
  mutable std::mutex persist_mu_;
  std::condition_variable persist_cv_;
  bool persist_stop_ = false;
  std::mutex persist_io_mu_;
  mutable std::mutex persist_stats_mu_;
  LoadStats persist_load_stats_;
  SaveStats persist_save_stats_;
  uint64_t persist_saves_ = 0;          // successful snapshot writes
  uint64_t persist_save_failures_ = 0;  // failed snapshot writes
};

// Metrics importers, mirroring the obs:: exporters: cache.* and srv.*.
void ExportCacheStats(const PlanCache::Stats& stats,
                      obs::MetricsRegistry* registry);
void ExportServiceStats(const ServiceStats& stats,
                        obs::MetricsRegistry* registry);

}  // namespace eds::srv

#endif  // EDS_SRV_SERVICE_H_
