#include "srv/service.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>
#include <utility>

#include "esql/parser.h"
#include "esql/translator.h"
#include "exec/executor.h"
#include "lera/schema.h"
#include "rules/optimizer.h"
#include "srv/fingerprint.h"
#include "term/term.h"

namespace eds::srv {

namespace {
// Flight-recorder text truncation: enough to recognize the query, bounded
// so the ring's memory stays O(capacity).
constexpr size_t kRecordTextLimit = 200;
// Minimum serve-time samples before the trailing-p99 slow threshold can
// fire; below this the p99 estimate is noise.
constexpr uint64_t kSlowP99MinSamples = 32;
}  // namespace

// All telemetry state lives behind one pointer so that telemetry=false
// costs the serve path a single null branch.
struct QueryService::TelemetryState {
  LatencyHistograms latency;
  FlightRecorder recorder;
  std::unique_ptr<SlowQueryLog> slow_log;  // null without a log path
  // Any slow threshold configured: per-query scratch tracing is on so a
  // slow query's spans can be kept retroactively.
  bool capture_slow = false;
  // Per-worker scratch sinks (index == worker id; one extra covers the
  // workers==0 test pump). Cleared before each query; a slow query's
  // contents are serialized into its QueryRecord before the clear.
  std::vector<std::unique_ptr<obs::TraceSink>> scratch;

  explicit TelemetryState(const ServiceOptions& options)
      : recorder(options.flight_recorder_capacity),
        capture_slow(options.slow_query_ns != 0 ||
                     options.slow_query_p99_multiple > 0.0) {
    if (!options.slow_query_log_path.empty()) {
      slow_log = std::make_unique<SlowQueryLog>(options.slow_query_log_path);
    }
    if (capture_slow) {
      const size_t n = std::max<size_t>(options.workers, 1);
      scratch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        scratch.push_back(std::make_unique<obs::TraceSink>());
      }
    }
  }
};

gov::GovernorLimits DeriveLimits(const gov::GovernorLimits& base,
                                 size_t queue_depth, size_t queue_capacity,
                                 bool load_adaptive, double tenant_weight) {
  gov::GovernorLimits derived = base;
  derived.cancel = nullptr;  // cancellation is wired per-Submit
  if (!load_adaptive || queue_capacity == 0) return derived;
  const double weight = tenant_weight > 0.0 ? tenant_weight : 1.0;
  // A weight-w tenant experiences the queue as if it were w times larger;
  // weight 1.0 reproduces the unweighted policy exactly.
  const double load =
      std::min(1.0, static_cast<double>(queue_depth) /
                        (static_cast<double>(queue_capacity) * weight));
  const double scale = 1.0 - 0.75 * load;  // full budget idle, 25% saturated
  auto scaled = [scale](uint64_t v) -> uint64_t {
    if (v == 0) return 0;  // unlimited stays unlimited
    return std::max<uint64_t>(1, static_cast<uint64_t>(v * scale));
  };
  derived.deadline_ms = scaled(base.deadline_ms);
  derived.max_term_nodes = scaled(base.max_term_nodes);
  // max_rows deliberately unscaled; see header.
  return derived;
}

QueryService::QueryService(exec::Session* session,
                           const ServiceOptions& options)
    : session_(session),
      options_(options),
      cache_(options.cache),
      l0_(options.use_l0 ? options.l0_capacity : 0),
      telemetry_(options.telemetry ? std::make_unique<TelemetryState>(options)
                                   : nullptr) {}

QueryService::~QueryService() { Stop(); }

Status QueryService::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::RuntimeError("service already started");
    started_ = true;
    stopping_ = false;
  }
  // Build the session's optimizer (persistence warm-up re-verifies loaded
  // entries through the session) and publish the initial serving snapshot
  // workers will pin.
  EDS_RETURN_IF_ERROR(session_->optimizer().status());
  {
    std::lock_guard<std::mutex> ddl(ddl_mu_);
    EDS_RETURN_IF_ERROR(RefreshSnapshotLocked());
  }
  // Warm restart: load the persisted caches before any worker exists, so
  // the first query already sees them. A missing or corrupt file is a cold
  // start, never a Start() failure.
  if (!options_.persist_path.empty()) {
    WarmFromDisk();
    if (options_.persist_interval_ms != 0) {
      {
        std::lock_guard<std::mutex> lock(persist_mu_);
        persist_stop_ = false;
      }
      persist_thread_ = std::thread([this] { PersistLoop(); });
    }
  }
  sinks_.clear();
  for (size_t i = 0; i < options_.workers; ++i) {
    sinks_.push_back(options_.collect_traces
                         ? std::make_unique<obs::TraceSink>()
                         : nullptr);
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (telemetry_ != nullptr && !options_.telemetry_export_path.empty()) {
    {
      std::lock_guard<std::mutex> lock(export_mu_);
      export_stop_ = false;
    }
    export_thread_ = std::thread([this] { ExportLoop(); });
  }
  return Status::OK();
}

void QueryService::Stop() {
  std::deque<Item> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    orphaned.swap(queue_);
    cv_.notify_all();
  }
  for (Item& item : orphaned) {
    item.done(Status::RuntimeError("query service stopping"));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Stop the export tick after the workers have drained so its final
  // snapshot (ExportLoop writes once more on shutdown) sees final tallies.
  if (export_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(export_mu_);
      export_stop_ = true;
    }
    export_cv_.notify_all();
    export_thread_.join();
  }
  // Persist after the workers have drained: the final snapshot is the
  // cache state the next process warms from, so it must include every
  // query served before shutdown.
  if (persist_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(persist_mu_);
      persist_stop_ = true;
    }
    persist_cv_.notify_all();
    persist_thread_.join();
  }
  if (!options_.persist_path.empty()) {
    (void)SavePersistNow();  // failures are counted, never block shutdown
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

std::future<Result<ServedQuery>> QueryService::Submit(
    std::string esql, const gov::CancelToken* cancel) {
  SubmitOptions opts;
  opts.cancel = cancel;
  return Submit(std::move(esql), opts);
}

std::future<Result<ServedQuery>> QueryService::Submit(
    std::string esql, const SubmitOptions& opts) {
  auto promise = std::make_shared<std::promise<Result<ServedQuery>>>();
  std::future<Result<ServedQuery>> future = promise->get_future();
  SubmitWithCallback(std::move(esql), opts,
                     [promise](Result<ServedQuery> served) {
                       promise->set_value(std::move(served));
                     });
  return future;
}

void QueryService::SubmitWithCallback(
    std::string esql, const SubmitOptions& opts,
    std::function<void(Result<ServedQuery>)> done) {
  // Compatibility path for direct session DDL while the service was idle:
  // republish before admitting so this query sees the new schema. A no-op
  // (two relaxed loads + a shared_ptr copy) when the epochs are clean.
  const Status refreshed = MaybeRefreshSnapshot();
  Status reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (!started_ || stopping_) {
      reject = Status::RuntimeError("query service is not accepting work");
    } else if (!refreshed.ok()) {
      reject = refreshed;
    } else if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      reject = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) +
          " queued): load shed");
    } else {
      Item item;
      item.esql = std::move(esql);
      item.cancel = opts.cancel;
      item.done = std::move(done);
      item.enqueue_ns = obs::NowNs();
      double weight = options_.default_tenant_weight;
      auto it = options_.tenant_weights.find(opts.tenant);
      if (it != options_.tenant_weights.end()) weight = it->second;
      item.granted =
          DeriveLimits(options_.base_limits, queue_.size(),
                       options_.queue_capacity, options_.load_adaptive,
                       weight);
      item.granted.cancel = opts.cancel;
      item.snapshot = snapshots_.Current();
      item.tenant = opts.tenant;
      queue_.push_back(std::move(item));
      ++stats_.admitted;
      // Bounded per-tenant tally: tenant ids arrive from clients (HELLO),
      // so an attacker minting unique ids must not grow this map — and
      // every metrics export — without limit. Configured tenants and the
      // "" default always track; past kMaxTrackedTenants distinct ids,
      // newcomers fold into "other".
      const bool tracked =
          opts.tenant.empty() ||
          options_.tenant_weights.count(opts.tenant) > 0 ||
          stats_.tenant_admitted.count(opts.tenant) > 0 ||
          stats_.tenant_admitted.size() < kMaxTrackedTenants;
      ++stats_.tenant_admitted[tracked ? opts.tenant : "other"];
      stats_.max_queue_depth =
          std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
    }
  }
  if (!reject.ok()) {
    // Invoked outside mu_ so the callback may take its own locks.
    done(std::move(reject));
    return;
  }
  cv_.notify_one();
}

Status QueryService::MaybeRefreshSnapshot() {
  SnapshotRef cur = snapshots_.Current();
  if (cur == nullptr) return Status::OK();  // not started: Start() publishes
  if (cur->catalog_epoch == session_->catalog().epoch() &&
      cur->rules_epoch == session_->rules_epoch()) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> ddl(ddl_mu_);
  return RefreshSnapshotLocked();
}

Status QueryService::RefreshSnapshotLocked() {
  SnapshotRef cur = snapshots_.Current();
  if (cur != nullptr && cur->catalog_epoch == session_->catalog().epoch() &&
      cur->rules_epoch == session_->rules_epoch()) {
    return Status::OK();
  }
  EDS_ASSIGN_OR_RETURN(
      SnapshotRef snap,
      BuildSnapshot(session_->catalog(), session_->optimizer_options(),
                    session_->rules_epoch()));
  const uint64_t catalog_epoch = snap->catalog_epoch;
  const uint64_t rules_epoch = snap->rules_epoch;
  snapshots_.Publish(std::move(snap));
  // Entries keyed under the superseded epochs stopped matching the moment
  // the publish landed; sweep them now so each DDL counts one invalidation
  // per stale entry instead of leaving them to age out silently. (A query
  // still draining on its pinned old snapshot may re-insert afterwards —
  // harmless: that entry serves its fellow pinned queries and the next
  // publish sweeps it.)
  cache_.DropStale(catalog_epoch, rules_epoch);
  return Status::OK();
}

Status QueryService::ApplyDdl(const std::string& script) {
  // One DDL batch at a time; snapshot builds share the same mutex, so the
  // live catalog is never read while a statement mutates it.
  std::lock_guard<std::mutex> ddl(ddl_mu_);
  EDS_ASSIGN_OR_RETURN(std::vector<esql::Statement> stmts,
                       esql::ParseScript(script));
  for (const esql::Statement& stmt : stmts) {
    if (stmt.kind == esql::StatementKind::kSelect) {
      return Status::InvalidArgument(
          "ApplyDdl: SELECT belongs on Submit(), not in a DDL script");
    }
  }
  for (const esql::Statement& stmt : stmts) {
    if (stmt.kind == esql::StatementKind::kInsert) {
      // Data writes mutate shared table storage, which snapshots do not
      // copy: exclude serving for this one statement. Schema/rule DDL
      // below never takes the gate — that is what keeps DDL non-blocking
      // for in-flight queries.
      std::unique_lock<std::shared_mutex> gate(serve_gate_);
      EDS_RETURN_IF_ERROR(session_->Apply(stmt));
    } else {
      EDS_RETURN_IF_ERROR(session_->Apply(stmt));
    }
  }
  // Publish the post-DDL snapshot (a no-op if the script was all INSERTs
  // and the epochs did not move). In-flight queries keep their pinned
  // snapshots; new arrivals see this one.
  EDS_RETURN_IF_ERROR(RefreshSnapshotLocked());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.ddl_applied;
  return Status::OK();
}

void QueryService::WorkerLoop(size_t worker_id) {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeItem(std::move(item), worker_id);
  }
}

bool QueryService::ServeQueuedForTesting() {
  Item item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  ServeItem(std::move(item), 0);
  return true;
}

void QueryService::ServeItem(Item item, size_t worker_id) {
  const uint64_t dequeue_ns = obs::NowNs();
  obs::TraceSink* worker_sink =
      worker_id < sinks_.size() ? sinks_[worker_id].get() : nullptr;
  // With slow-query capture on, the query's spans go to a per-worker
  // scratch sink so they can be kept retroactively if it turns out slow;
  // otherwise straight to the long-lived worker sink (or nowhere).
  obs::TraceSink* scratch = nullptr;
  if (telemetry_ != nullptr && telemetry_->capture_slow &&
      worker_id < telemetry_->scratch.size()) {
    scratch = telemetry_->scratch[worker_id].get();
    scratch->Clear();
  }
  obs::TraceSink* sink = scratch != nullptr ? scratch : worker_sink;
  Result<ServedQuery> served = [&]() -> Result<ServedQuery> {
    if (item.snapshot == nullptr) {
      return Status::Internal("no serving snapshot pinned (service bug)");
    }
    // Shared hold for the whole serve: only ApplyDdl's INSERT application
    // takes this exclusively. Schema/rule DDL republishes the snapshot
    // without touching the gate, so it never waits on us.
    std::shared_lock<std::shared_mutex> gate(serve_gate_);
    return ServeNow(item.esql, *item.snapshot, item.granted, item.cancel,
                    sink, worker_id);
  }();
  const uint64_t serve_ns = obs::NowNs() - dequeue_ns;
  const uint64_t queue_ns = dequeue_ns - item.enqueue_ns;
  if (served.ok()) {
    served->queue_ns = queue_ns;
    served->serve_ns = serve_ns;
    served->granted = item.granted;
    served->worker_id = worker_id;
    served->tenant = item.tenant;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (served.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  if (telemetry_ != nullptr) {
    RecordTelemetry(item.esql, served, item.granted, queue_ns, serve_ns,
                    worker_id, scratch);
    // Scratch traces detoured around the worker sink; fold them back in so
    // collect_traces sees the same merged timeline either way.
    if (scratch != nullptr && worker_sink != nullptr) {
      worker_sink->AppendFrom(*scratch);
    }
  }
  item.done(std::move(served));
}

void QueryService::RecordTelemetry(const std::string& esql,
                                   const Result<ServedQuery>& served,
                                   const gov::GovernorLimits& granted,
                                   uint64_t queue_ns, uint64_t serve_ns,
                                   size_t worker_id,
                                   const obs::TraceSink* scratch) {
  TelemetryState& tel = *telemetry_;

  QueryRecord rec;
  rec.text = esql.substr(0, kRecordTextLimit);
  rec.queue_ns = queue_ns;
  rec.serve_ns = serve_ns;
  rec.worker_id = worker_id;
  rec.base = options_.base_limits;
  rec.base.cancel = nullptr;
  rec.granted = granted;
  rec.granted.cancel = nullptr;
  if (served.ok()) {
    const ServedQuery& q = *served;
    rec.template_hash = q.template_hash;
    rec.phases = q.result.phase_times;
    rec.l0_hit = q.l0_hit;
    rec.cache_hit = q.cache_hit;
    rec.cache_stored = q.cache_stored;
    rec.cache_bypass = q.cache_bypass;
    rec.rows = q.result.rows.size();
    if (q.result.rewrite_trip.tripped()) {
      rec.trip = q.result.rewrite_trip.ToString();
    }
  } else {
    rec.ok = false;
    rec.error = served.status().ToString();
  }

  // Slow decision first, against the p99 of *prior* queries: recording the
  // current sample before snapshotting would let an extreme outlier raise
  // the very threshold it is judged by.
  bool slow = options_.slow_query_ns != 0 && serve_ns >= options_.slow_query_ns;
  if (!slow && options_.slow_query_p99_multiple > 0.0) {
    const obs::HistogramSnapshot prior = tel.latency.serve.Snapshot();
    if (prior.count >= kSlowP99MinSamples) {
      const double threshold =
          options_.slow_query_p99_multiple *
          static_cast<double>(prior.ValueAtQuantile(0.99));
      slow = static_cast<double>(serve_ns) >= threshold;
    }
  }
  rec.slow = slow;
  if (slow && scratch != nullptr) {
    rec.trace_json = scratch->ToChromeTraceJson();
  }

  tel.latency.queue.Record(queue_ns);
  tel.latency.serve.Record(serve_ns);
  if (rec.ok) {
    // Phase histograms record only phases that actually ran: an L0 hit
    // skips parse, a template hit skips rewrite, and folding their zeros
    // in would fake an impossibly fast phase.
    if (!rec.l0_hit) {
      tel.latency.parse.Record(rec.phases.parse_ns);
      if (options_.rewrite && !rec.cache_hit) {
        tel.latency.rewrite.Record(rec.phases.rewrite_ns);
      }
    }
    tel.latency.execute.Record(rec.phases.exec_ns);
    if (rec.l0_hit) {
      tel.latency.serve_l0_hit.Record(serve_ns);
    } else if (rec.cache_hit) {
      tel.latency.serve_tmpl_hit.Record(serve_ns);
    } else {
      tel.latency.serve_miss.Record(serve_ns);
    }
  }

  const bool log_slow = slow && tel.slow_log != nullptr;
  QueryRecord for_log;
  if (log_slow) for_log = rec;
  const uint64_t seq = tel.recorder.Add(std::move(rec));
  if (log_slow) {
    for_log.seq = seq;
    (void)tel.slow_log->Append(for_log);  // sink errors must not fail serving
  }
}

Result<ServedQuery> QueryService::ServeNow(const std::string& esql,
                                           const ServingSnapshot& snap,
                                           const gov::GovernorLimits& granted,
                                           const gov::CancelToken* cancel,
                                           obs::TraceSink* sink,
                                           size_t worker_id) {
  ServedQuery served;
  served.catalog_epoch = snap.catalog_epoch;
  served.rules_epoch = snap.rules_epoch;
  exec::QueryResult& result = served.result;
  const uint64_t q0 = obs::NowNs();
  obs::Span query_span(sink, "srv.query", "session");
  if (sink != nullptr) {
    query_span.Arg("esql", std::string(esql.substr(0, 120)));
    query_span.Arg("worker", static_cast<int64_t>(worker_id));
  }

  // Fail fast on work that was cancelled while it sat in the queue.
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::ResourceExhausted(
        "query governor: cancelled: cancelled while queued");
  }

  // Deterministic latency injection (tests/demos): see ServiceOptions.
  if (options_.test_delay_ns != 0 && !options_.test_delay_marker.empty() &&
      esql.find(options_.test_delay_marker) != std::string::npos) {
    obs::Span delay_span(sink, "srv.injected_delay", "srv");
    if (sink != nullptr) {
      delay_span.Arg("delay_ns", options_.test_delay_ns);
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.test_delay_ns));
  }

  // Level 0: exact-text lookup before the parser runs. A hit replays the
  // fully instantiated plan and its columns — parse, translate, rewrite
  // and schema inference are all skipped (their phase times stay 0) and
  // the query goes straight to governed execution.
  std::string l0_key;
  if (options_.use_l0) {
    l0_key = NormalizeQueryText(esql);
    std::optional<L0Cache::Entry> hit =
        l0_.Lookup(l0_key, snap.catalog_epoch, snap.rules_epoch);
    if (hit.has_value()) {
      obs::Span l0_span(sink, "srv.l0.replay", "srv");
      served.l0_hit = true;
      result.raw_plan = hit->raw_plan;
      result.optimized_plan = hit->plan;
      result.columns = hit->columns;
      gov::QueryGuard guard;
      if (granted.any()) guard.Arm(granted);
      exec::ExecOptions exec_options = options_.exec_options;
      exec_options.trace_sink = sink;
      if (granted.any() && exec_options.guard == nullptr) {
        exec_options.guard = &guard;
      }
      uint64_t e0 = obs::NowNs();
      {
        obs::Span span(sink, "phase.execute", "phase");
        exec::Executor executor(snap.catalog.get(), &session_->db(),
                                exec_options);
        Result<exec::Rows> rows = executor.Execute(hit->plan);
        result.exec_stats = executor.stats();
        if (!rows.ok()) return rows.status();
        result.rows = *std::move(rows);
      }
      uint64_t end = obs::NowNs();
      result.phase_times.exec_ns = end - e0;
      result.phase_times.total_ns = end - q0;
      return served;
    }
  }

  // Parse + translate. The session's TranslateTimed is bypassed so no
  // worker ever touches the session-level trace sink.
  uint64_t t0 = obs::NowNs();
  esql::Statement stmt;
  {
    obs::Span span(sink, "phase.parse", "phase");
    EDS_ASSIGN_OR_RETURN(stmt, esql::ParseStatement(esql));
  }
  uint64_t t1 = obs::NowNs();
  result.phase_times.parse_ns = t1 - t0;
  if (stmt.kind != esql::StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  term::TermRef raw;
  {
    obs::Span span(sink, "phase.translate", "phase");
    esql::Translator translator(snap.catalog.get());
    EDS_ASSIGN_OR_RETURN(raw, translator.TranslateQuery(*stmt.select));
  }
  result.phase_times.translate_ns = obs::NowNs() - t1;
  result.raw_plan = raw;

  gov::QueryGuard guard;
  const bool governed = granted.any();
  if (governed) guard.Arm(granted);

  const rules::Optimizer* optimizer = snap.optimizer.get();

  term::TermRef plan = raw;
  uint64_t rw0 = obs::NowNs();
  if (options_.rewrite && options_.use_cache) {
    // Cached path: fingerprint, then hit->replay / miss->rewrite+insert.
    Fingerprint fp;
    {
      obs::Span span(sink, "srv.fingerprint", "srv");
      fp = FingerprintPlan(raw);
    }
    if (telemetry_ != nullptr) {
      served.template_hash = term::Hash(fp.tmpl);
    }
    PlanCache::Key key{fp.tmpl, snap.catalog_epoch, snap.rules_epoch};
    std::optional<term::TermRef> cached = cache_.Lookup(key);
    if (cached.has_value()) {
      obs::Span span(sink, "srv.cache.replay", "srv");
      Result<term::TermRef> replayed = InstantiatePlan(*cached, fp.params);
      if (replayed.ok()) {
        plan = *replayed;
        served.cache_hit = true;
        // rewrite_ns stays 0: the rewrite phase never ran.
      }
      // A malformed entry falls through to the miss path below.
    }
    if (!served.cache_hit) {
      rewrite::RewriteOptions rw = options_.rewrite_options;
      rw.trace_sink = sink;
      if (governed && rw.guard == nullptr) rw.guard = &guard;
      obs::Span span(sink, "phase.rewrite", "phase");
      // Rewrite the *template*: parameter variables are opaque to every
      // value-inspecting rule method, so the normal form is valid for any
      // literal instantiation (srv/fingerprint.h).
      EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                           optimizer->Rewrite(fp.tmpl, rw));
      result.rewrite_stats = outcome.stats;
      Result<term::TermRef> instantiated =
          InstantiatePlan(outcome.term, fp.params);
      if (!instantiated.ok()) {
        // A template normal form that cannot be re-instantiated (a rule
        // moved a parameter into a context substitution rejects) is
        // uncacheable: degrade to a plain rewrite of the raw plan.
        served.cache_bypass = true;
        EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome direct,
                             optimizer->Rewrite(raw, rw));
        result.rewrite_stats = direct.stats;
        plan = direct.term;
      } else {
        plan = *instantiated;
        // Degraded rewrites (governor trip / safety valve) are correct but
        // under-optimized — never cache them, so a future uncontended run
        // gets the chance to do better.
        if (!outcome.stats.trip.tripped() && !outcome.stats.safety_stop) {
          // The entry carries what this rewrite cost and the literals it
          // ran under: persistence ranks hotness by hits and re-verifies
          // loaded entries by re-executing with these sample literals.
          cache_.Insert(key, outcome.term, obs::NowNs() - rw0, fp.params);
          served.cache_stored = true;
        } else {
          served.cache_bypass = true;
        }
      }
    }
    result.phase_times.rewrite_ns =
        served.cache_hit ? 0 : obs::NowNs() - rw0;
  } else if (options_.rewrite) {
    rewrite::RewriteOptions rw = options_.rewrite_options;
    rw.trace_sink = sink;
    if (governed && rw.guard == nullptr) rw.guard = &guard;
    obs::Span span(sink, "phase.rewrite", "phase");
    EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                         optimizer->Rewrite(raw, rw));
    result.rewrite_stats = outcome.stats;
    plan = outcome.term;
    served.cache_bypass = true;
    result.phase_times.rewrite_ns = obs::NowNs() - rw0;
  }
  if (result.rewrite_stats.safety_stop) {
    result.warnings.push_back(
        "rewrite stopped early: max_applications reached; results are "
        "correct but the plan may be under-optimized");
  }
  if (result.rewrite_stats.trip.tripped()) {
    result.rewrite_trip = result.rewrite_stats.trip;
    result.warnings.push_back(
        "rewrite degraded by query governor (" +
        result.rewrite_stats.trip.ToString() +
        "); best-so-far plan used, results are correct but the plan may "
        "be under-optimized");
  }
  result.optimized_plan = plan;

  // Mirror Session::Query's re-arm: a node-ceiling trip is a rewrite-phase
  // budget, not an execution death sentence.
  if (governed && guard.tripped() &&
      guard.trip().kind == gov::TripKind::kNodeCeiling) {
    gov::GovernorLimits rest = granted;
    rest.max_term_nodes = 0;
    if (rest.deadline_ms != 0) {
      uint64_t elapsed_ms = (obs::NowNs() - q0) / 1'000'000ULL;
      rest.deadline_ms = elapsed_ms < rest.deadline_ms
                             ? rest.deadline_ms - elapsed_ms
                             : 1;
    }
    guard.Arm(rest);
  }

  uint64_t s0 = obs::NowNs();
  {
    obs::Span span(sink, "phase.schema", "phase");
    EDS_ASSIGN_OR_RETURN(
        lera::Schema schema,
        lera::InferSchema(plan, *snap.catalog, nullptr, nullptr,
                          governed ? &guard : nullptr));
    for (const types::Field& f : schema) result.columns.push_back(f.name);
  }
  uint64_t e0 = obs::NowNs();
  result.phase_times.schema_ns = e0 - s0;

  // Populate L0 only with full-fidelity plans: a governor-degraded or
  // safety-stopped rewrite is correct but under-optimized, and an L0 hit
  // would replay it verbatim forever.
  if (options_.use_l0 && !result.rewrite_stats.trip.tripped() &&
      !result.rewrite_stats.safety_stop) {
    L0Cache::Entry entry;
    entry.raw_plan = raw;
    entry.plan = plan;
    entry.columns = result.columns;
    entry.catalog_epoch = snap.catalog_epoch;
    entry.rules_epoch = snap.rules_epoch;
    l0_.Insert(l0_key, std::move(entry));
  }

  exec::ExecOptions exec_options = options_.exec_options;
  exec_options.trace_sink = sink;
  if (governed && exec_options.guard == nullptr) exec_options.guard = &guard;
  {
    obs::Span span(sink, "phase.execute", "phase");
    exec::Executor executor(snap.catalog.get(), &session_->db(),
                            exec_options);
    Result<exec::Rows> rows = executor.Execute(plan);
    result.exec_stats = executor.stats();
    if (!rows.ok()) return rows.status();
    result.rows = *std::move(rows);
  }
  uint64_t end = obs::NowNs();
  result.phase_times.exec_ns = end - e0;
  result.phase_times.total_ns = end - q0;
  return served;
}

ServiceStats QueryService::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<const obs::TraceSink*> QueryService::worker_sinks() const {
  std::vector<const obs::TraceSink*> out;
  out.reserve(sinks_.size());
  for (const auto& sink : sinks_) out.push_back(sink.get());
  return out;
}

void QueryService::WriteMergedTrace(std::ostream& os) const {
  std::vector<obs::SinkWithTid> sinks;
  for (size_t i = 0; i < sinks_.size(); ++i) {
    if (sinks_[i] != nullptr) {
      sinks.push_back({sinks_[i].get(), static_cast<int>(i) + 2});
    }
  }
  obs::WriteMergedChromeTrace(os, sinks);
}

std::vector<QueryRecord> QueryService::RecentQueries(size_t limit) const {
  if (telemetry_ == nullptr) return {};
  return telemetry_->recorder.Recent(limit);
}

std::vector<QueryRecord> QueryService::SlowestQueries(size_t limit) const {
  if (telemetry_ == nullptr) return {};
  return telemetry_->recorder.Slowest(limit);
}

uint64_t QueryService::slow_queries_logged() const {
  if (telemetry_ == nullptr || telemetry_->slow_log == nullptr) return 0;
  return telemetry_->slow_log->appended();
}

void QueryService::ExportMetrics(obs::MetricsRegistry* registry) const {
  ExportServiceStats(GetStats(), registry);
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry->Gauge("srv.queue_depth", static_cast<double>(queue_.size()));
  }
  registry->Counter("srv.snapshot.publishes", snapshot_publishes());
  ExportCacheStats(cache_.GetStats(), registry);
  ExportL0Stats(l0_.GetStats(), registry);
  obs::ExportGovStats(gov::CumulativeTripCounters(), registry);
  if (telemetry_ != nullptr) {
    ExportLatencyMetrics(telemetry_->latency, registry);
    registry->Counter("srv.flight_recorder.total",
                      telemetry_->recorder.total_added());
    registry->Counter("srv.slow_queries.logged", slow_queries_logged());
  }
  if (!options_.persist_path.empty()) {
    std::lock_guard<std::mutex> lock(persist_stats_mu_);
    registry->Counter("persist.load.ok", persist_load_stats_.ok);
    registry->Counter("persist.load.skipped", persist_load_stats_.skipped);
    registry->Counter("persist.load.stale", persist_load_stats_.stale);
    registry->Counter("persist.load.rejected", persist_load_stats_.rejected);
    registry->Counter("persist.load.unverified",
                      persist_load_stats_.unverified);
    registry->Counter("persist.save.plans", persist_save_stats_.plans);
    registry->Counter("persist.save.l0", persist_save_stats_.l0);
    registry->Counter("persist.save.skipped", persist_save_stats_.skipped);
    registry->Counter("persist.save.stale", persist_save_stats_.stale);
    registry->Counter("persist.save.bytes", persist_save_stats_.bytes);
    registry->Counter("persist.save.count", persist_saves_);
    registry->Counter("persist.save.failures", persist_save_failures_);
  }
}

Status QueryService::WriteTelemetrySnapshot(const std::string& path) const {
  obs::MetricsRegistry registry;
  ExportMetrics(&registry);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::RuntimeError("cannot open telemetry export " + path);
  }
  out << registry.ToPrometheus();
  out.flush();
  if (!out) {
    return Status::RuntimeError("telemetry export write failed: " + path);
  }
  return Status::OK();
}

void QueryService::WarmFromDisk() {
  PersistOptions opts = options_.persist;
  opts.top_k = options_.persist_top_k;
  LoadStats stats;
  Result<CacheImage> image =
      LoadPersistFile(options_.persist_path, opts, &stats);
  if (image.ok()) {
    WarmServiceCaches(*image, session_, &cache_, &l0_,
                      session_->catalog().epoch(), session_->rules_epoch(),
                      opts, &stats);
  }
  std::lock_guard<std::mutex> lock(persist_stats_mu_);
  persist_load_stats_ = stats;
}

Status QueryService::SavePersistNow() {
  if (options_.persist_path.empty()) {
    return Status::InvalidArgument(
        "persistence is not configured (persist_path is empty)");
  }
  PersistOptions opts = options_.persist;
  opts.top_k = options_.persist_top_k;
  FileHeader header;
  // Stamp the file with the serving snapshot's epochs: cache contents are
  // keyed by what serving pinned, which during a concurrent DDL batch can
  // trail the session's live counters.
  SnapshotRef snap = snapshots_.Current();
  header.catalog_epoch =
      snap != nullptr ? snap->catalog_epoch : session_->catalog().epoch();
  header.rules_epoch =
      snap != nullptr ? snap->rules_epoch : session_->rules_epoch();
  SaveStats stats;
  Status saved;
  {
    // One write at a time: the periodic tick, an operator-forced save, and
    // the final Stop() write must not interleave their tmp files.
    std::lock_guard<std::mutex> io(persist_io_mu_);
    saved = SavePersistFile(options_.persist_path, cache_, l0_, header, opts,
                            &stats);
  }
  std::lock_guard<std::mutex> lock(persist_stats_mu_);
  if (saved.ok()) {
    persist_save_stats_.plans += stats.plans;
    persist_save_stats_.l0 += stats.l0;
    persist_save_stats_.skipped += stats.skipped;
    persist_save_stats_.stale += stats.stale;
    persist_save_stats_.bytes = stats.bytes;  // size of the latest file
    ++persist_saves_;
  } else {
    ++persist_save_failures_;
  }
  return saved;
}

LoadStats QueryService::persist_load_stats() const {
  std::lock_guard<std::mutex> lock(persist_stats_mu_);
  return persist_load_stats_;
}

SaveStats QueryService::persist_save_stats() const {
  std::lock_guard<std::mutex> lock(persist_stats_mu_);
  return persist_save_stats_;
}

void QueryService::PersistLoop() {
  const auto interval = std::chrono::milliseconds(
      std::max<uint64_t>(1, options_.persist_interval_ms));
  std::unique_lock<std::mutex> lock(persist_mu_);
  for (;;) {
    const bool stop =
        persist_cv_.wait_for(lock, interval, [this] { return persist_stop_; });
    if (stop) return;  // Stop() writes the final snapshot after the drain
    lock.unlock();
    (void)SavePersistNow();
    lock.lock();
  }
}

void QueryService::ExportLoop() {
  const auto interval = std::chrono::milliseconds(
      std::max<uint64_t>(1, options_.telemetry_export_interval_ms));
  std::unique_lock<std::mutex> lock(export_mu_);
  for (;;) {
    const bool stop =
        export_cv_.wait_for(lock, interval, [this] { return export_stop_; });
    lock.unlock();
    // Written outside the lock: the snapshot takes mu_ (queue depth) and
    // does file I/O, neither of which should ever block Stop().
    (void)WriteTelemetrySnapshot(options_.telemetry_export_path);
    if (stop) return;
    lock.lock();
  }
}

void ExportCacheStats(const PlanCache::Stats& stats,
                      obs::MetricsRegistry* registry) {
  registry->Counter("cache.hits", stats.hits);
  registry->Counter("cache.misses", stats.misses);
  registry->Counter("cache.inserts", stats.inserts);
  registry->Counter("cache.evictions", stats.evictions);
  registry->Counter("cache.insert_failures", stats.insert_failures);
  registry->Counter("cache.invalidations", stats.invalidations);
  registry->Counter("cache.entries", stats.entries);
  registry->Counter("cache.nodes", stats.nodes);
}

void ExportServiceStats(const ServiceStats& stats,
                        obs::MetricsRegistry* registry) {
  registry->Counter("srv.submitted", stats.submitted);
  registry->Counter("srv.admitted", stats.admitted);
  registry->Counter("srv.rejected", stats.rejected);
  registry->Counter("srv.completed", stats.completed);
  registry->Counter("srv.failed", stats.failed);
  registry->Counter("srv.max_queue_depth", stats.max_queue_depth);
  registry->Counter("srv.ddl.applied", stats.ddl_applied);
  for (const auto& [tenant, admitted] : stats.tenant_admitted) {
    // Family documented as srv.tenant.admitted.<tenant> in
    // docs/observability.md; built away from the Counter call because the
    // metric-doc checker only scans literal names.
    std::string name = "srv.tenant.admitted.";
    name += tenant.empty() ? "default" : tenant;
    registry->Counter(name, admitted);
  }
}

}  // namespace eds::srv
